file(REMOVE_RECURSE
  "CMakeFiles/redis_isolation.dir/redis_isolation.cpp.o"
  "CMakeFiles/redis_isolation.dir/redis_isolation.cpp.o.d"
  "redis_isolation"
  "redis_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/redis_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
