# Empty compiler generated dependencies file for redis_isolation.
# This may be replaced when dependencies are built.
