# Empty dependencies file for msgqueue_pipeline.
# This may be replaced when dependencies are built.
