file(REMOVE_RECURSE
  "CMakeFiles/msgqueue_pipeline.dir/msgqueue_pipeline.cpp.o"
  "CMakeFiles/msgqueue_pipeline.dir/msgqueue_pipeline.cpp.o.d"
  "msgqueue_pipeline"
  "msgqueue_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msgqueue_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
