# Empty compiler generated dependencies file for safety_demo.
# This may be replaced when dependencies are built.
