file(REMOVE_RECURSE
  "CMakeFiles/safety_demo.dir/safety_demo.cpp.o"
  "CMakeFiles/safety_demo.dir/safety_demo.cpp.o.d"
  "safety_demo"
  "safety_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/safety_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
