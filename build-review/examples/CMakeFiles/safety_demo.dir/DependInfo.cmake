
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/safety_demo.cpp" "examples/CMakeFiles/safety_demo.dir/safety_demo.cpp.o" "gcc" "examples/CMakeFiles/safety_demo.dir/safety_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/flexos_apps.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_fs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_libc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_sched.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_alloc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_vmem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_hw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_fault.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
