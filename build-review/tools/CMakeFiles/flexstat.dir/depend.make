# Empty dependencies file for flexstat.
# This may be replaced when dependencies are built.
