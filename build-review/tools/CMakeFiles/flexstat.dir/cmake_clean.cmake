file(REMOVE_RECURSE
  "CMakeFiles/flexstat.dir/flexstat.cc.o"
  "CMakeFiles/flexstat.dir/flexstat.cc.o.d"
  "flexstat"
  "flexstat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexstat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
