file(REMOVE_RECURSE
  "CMakeFiles/flexbench.dir/flexbench.cc.o"
  "CMakeFiles/flexbench.dir/flexbench.cc.o.d"
  "flexbench"
  "flexbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
