# Empty dependencies file for flexbench.
# This may be replaced when dependencies are built.
