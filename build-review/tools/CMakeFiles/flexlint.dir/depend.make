# Empty dependencies file for flexlint.
# This may be replaced when dependencies are built.
