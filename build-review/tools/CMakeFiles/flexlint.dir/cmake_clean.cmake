file(REMOVE_RECURSE
  "CMakeFiles/flexlint.dir/flexlint.cc.o"
  "CMakeFiles/flexlint.dir/flexlint.cc.o.d"
  "flexlint"
  "flexlint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexlint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
