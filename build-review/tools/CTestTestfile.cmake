# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-review/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(flexlint_examples "/root/repo/build-review/tools/flexlint" "/root/repo/examples/configs/iperf_mpk.conf" "/root/repo/examples/configs/redis_vm.conf" "/root/repo/examples/configs/webserver_cfi.conf")
set_tests_properties(flexlint_examples PROPERTIES  LABELS "lint;smoke" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;21;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(flexlint_examples_json "/root/repo/build-review/tools/flexlint" "--json" "/root/repo/examples/configs/iperf_mpk.conf" "/root/repo/examples/configs/redis_vm.conf" "/root/repo/examples/configs/webserver_cfi.conf")
set_tests_properties(flexlint_examples_json PROPERTIES  LABELS "lint;smoke" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(flexlint_undeclared_call "/root/repo/build-review/tools/flexlint" "/root/repo/tests/lint_fixtures/undeclared_call.conf")
set_tests_properties(flexlint_undeclared_call PROPERTIES  LABELS "lint;smoke" WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(flexlint_requires_violation "/root/repo/build-review/tools/flexlint" "/root/repo/tests/lint_fixtures/requires_violation.conf")
set_tests_properties(flexlint_requires_violation PROPERTIES  LABELS "lint;smoke" WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;28;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(flexstat_iperf_mpk "/root/repo/build-review/tools/flexstat" "--bytes" "65536" "/root/repo/examples/configs/iperf_mpk.conf")
set_tests_properties(flexstat_iperf_mpk PROPERTIES  LABELS "obs;smoke" PASS_REGULAR_EXPRESSION "p50\\(ns\\)" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;40;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(flexstat_trace_export "/root/repo/build-review/tools/flexstat" "--bytes" "65536" "--trace" "/root/repo/build-review/tools/flexstat_trace.json" "--metrics" "/root/repo/build-review/tools/flexstat_metrics.json" "/root/repo/examples/configs/iperf_mpk.conf")
set_tests_properties(flexstat_trace_export PROPERTIES  LABELS "obs;smoke" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;43;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(flexstat_request_breakdown "/root/repo/build-review/tools/flexstat" "--bytes" "65536" "--request" "all" "/root/repo/examples/configs/iperf_mpk.conf")
set_tests_properties(flexstat_request_breakdown PROPERTIES  LABELS "obs;smoke" PASS_REGULAR_EXPRESSION "tcp:5001" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;59;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(flexstat_flame "/root/repo/build-review/tools/flexstat" "--bytes" "65536" "--flame" "-" "/root/repo/examples/configs/iperf_mpk.conf")
set_tests_properties(flexstat_flame PROPERTIES  LABELS "obs;smoke" PASS_REGULAR_EXPRESSION "iperf-server;app;net" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;65;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(flexbench_check "/root/repo/build-review/tools/flexbench" "--smoke" "--bindir" "/root/repo/build-review/bench" "--baseline" "/root/repo/bench/baselines/smoke.json" "--out" "/root/repo/build-review/tools/flexbench_smoke_run.json")
set_tests_properties(flexbench_check PROPERTIES  LABELS "bench" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;75;add_test;/root/repo/tools/CMakeLists.txt;0;")
