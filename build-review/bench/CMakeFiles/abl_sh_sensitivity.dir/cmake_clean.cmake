file(REMOVE_RECURSE
  "CMakeFiles/abl_sh_sensitivity.dir/abl_sh_sensitivity.cc.o"
  "CMakeFiles/abl_sh_sensitivity.dir/abl_sh_sensitivity.cc.o.d"
  "abl_sh_sensitivity"
  "abl_sh_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sh_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
