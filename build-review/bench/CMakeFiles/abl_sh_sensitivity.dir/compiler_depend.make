# Empty compiler generated dependencies file for abl_sh_sensitivity.
# This may be replaced when dependencies are built.
