# Empty dependencies file for abl_coloring.
# This may be replaced when dependencies are built.
