file(REMOVE_RECURSE
  "CMakeFiles/abl_coloring.dir/abl_coloring.cc.o"
  "CMakeFiles/abl_coloring.dir/abl_coloring.cc.o.d"
  "abl_coloring"
  "abl_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
