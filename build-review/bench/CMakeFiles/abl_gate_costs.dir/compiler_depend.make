# Empty compiler generated dependencies file for abl_gate_costs.
# This may be replaced when dependencies are built.
