file(REMOVE_RECURSE
  "CMakeFiles/abl_gate_costs.dir/abl_gate_costs.cc.o"
  "CMakeFiles/abl_gate_costs.dir/abl_gate_costs.cc.o.d"
  "abl_gate_costs"
  "abl_gate_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gate_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
