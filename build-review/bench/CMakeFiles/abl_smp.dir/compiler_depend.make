# Empty compiler generated dependencies file for abl_smp.
# This may be replaced when dependencies are built.
