file(REMOVE_RECURSE
  "CMakeFiles/abl_smp.dir/abl_smp.cc.o"
  "CMakeFiles/abl_smp.dir/abl_smp.cc.o.d"
  "abl_smp"
  "abl_smp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
