# Empty compiler generated dependencies file for sched_ctxswitch.
# This may be replaced when dependencies are built.
