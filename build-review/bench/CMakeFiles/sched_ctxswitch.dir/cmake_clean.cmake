file(REMOVE_RECURSE
  "CMakeFiles/sched_ctxswitch.dir/sched_ctxswitch.cc.o"
  "CMakeFiles/sched_ctxswitch.dir/sched_ctxswitch.cc.o.d"
  "sched_ctxswitch"
  "sched_ctxswitch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_ctxswitch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
