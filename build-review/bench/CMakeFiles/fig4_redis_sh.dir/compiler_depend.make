# Empty compiler generated dependencies file for fig4_redis_sh.
# This may be replaced when dependencies are built.
