file(REMOVE_RECURSE
  "CMakeFiles/fig4_redis_sh.dir/fig4_redis_sh.cc.o"
  "CMakeFiles/fig4_redis_sh.dir/fig4_redis_sh.cc.o.d"
  "fig4_redis_sh"
  "fig4_redis_sh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_redis_sh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
