file(REMOVE_RECURSE
  "CMakeFiles/fig5_redis_mpk.dir/fig5_redis_mpk.cc.o"
  "CMakeFiles/fig5_redis_mpk.dir/fig5_redis_mpk.cc.o.d"
  "fig5_redis_mpk"
  "fig5_redis_mpk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_redis_mpk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
