# Empty compiler generated dependencies file for fig5_redis_mpk.
# This may be replaced when dependencies are built.
