file(REMOVE_RECURSE
  "CMakeFiles/tab1_iperf_sh.dir/tab1_iperf_sh.cc.o"
  "CMakeFiles/tab1_iperf_sh.dir/tab1_iperf_sh.cc.o.d"
  "tab1_iperf_sh"
  "tab1_iperf_sh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_iperf_sh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
