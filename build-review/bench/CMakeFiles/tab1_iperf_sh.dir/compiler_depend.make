# Empty compiler generated dependencies file for tab1_iperf_sh.
# This may be replaced when dependencies are built.
