# Empty compiler generated dependencies file for abl_fault_recovery.
# This may be replaced when dependencies are built.
