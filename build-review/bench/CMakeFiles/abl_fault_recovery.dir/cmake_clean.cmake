file(REMOVE_RECURSE
  "CMakeFiles/abl_fault_recovery.dir/abl_fault_recovery.cc.o"
  "CMakeFiles/abl_fault_recovery.dir/abl_fault_recovery.cc.o.d"
  "abl_fault_recovery"
  "abl_fault_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fault_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
