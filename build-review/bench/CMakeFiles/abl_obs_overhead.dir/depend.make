# Empty dependencies file for abl_obs_overhead.
# This may be replaced when dependencies are built.
