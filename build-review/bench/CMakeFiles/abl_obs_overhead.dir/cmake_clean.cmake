file(REMOVE_RECURSE
  "CMakeFiles/abl_obs_overhead.dir/abl_obs_overhead.cc.o"
  "CMakeFiles/abl_obs_overhead.dir/abl_obs_overhead.cc.o.d"
  "abl_obs_overhead"
  "abl_obs_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_obs_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
