# Empty dependencies file for abl_gate_dispatch.
# This may be replaced when dependencies are built.
