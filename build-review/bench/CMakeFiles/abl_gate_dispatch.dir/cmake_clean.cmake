file(REMOVE_RECURSE
  "CMakeFiles/abl_gate_dispatch.dir/abl_gate_dispatch.cc.o"
  "CMakeFiles/abl_gate_dispatch.dir/abl_gate_dispatch.cc.o.d"
  "abl_gate_dispatch"
  "abl_gate_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_gate_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
