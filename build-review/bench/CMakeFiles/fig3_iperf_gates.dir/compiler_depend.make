# Empty compiler generated dependencies file for fig3_iperf_gates.
# This may be replaced when dependencies are built.
