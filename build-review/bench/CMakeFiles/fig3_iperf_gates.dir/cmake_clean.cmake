file(REMOVE_RECURSE
  "CMakeFiles/fig3_iperf_gates.dir/fig3_iperf_gates.cc.o"
  "CMakeFiles/fig3_iperf_gates.dir/fig3_iperf_gates.cc.o.d"
  "fig3_iperf_gates"
  "fig3_iperf_gates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_iperf_gates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
