# Empty dependencies file for abl_link_model.
# This may be replaced when dependencies are built.
