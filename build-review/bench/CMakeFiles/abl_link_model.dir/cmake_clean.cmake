file(REMOVE_RECURSE
  "CMakeFiles/abl_link_model.dir/abl_link_model.cc.o"
  "CMakeFiles/abl_link_model.dir/abl_link_model.cc.o.d"
  "abl_link_model"
  "abl_link_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_link_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
