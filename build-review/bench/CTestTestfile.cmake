# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build-review/bench
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_gate_dispatch "/root/repo/build-review/bench/abl_gate_dispatch" "--smoke")
set_tests_properties(bench_smoke_gate_dispatch PROPERTIES  LABELS "bench;smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;22;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig3 "/root/repo/build-review/bench/fig3_iperf_gates" "--smoke")
set_tests_properties(bench_smoke_fig3 PROPERTIES  LABELS "bench;smoke" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;23;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_obs_overhead "/root/repo/build-review/bench/abl_obs_overhead" "--smoke")
set_tests_properties(bench_smoke_obs_overhead PROPERTIES  LABELS "bench;smoke;obs" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;24;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fault_recovery "/root/repo/build-review/bench/abl_fault_recovery" "--smoke")
set_tests_properties(bench_smoke_fault_recovery PROPERTIES  LABELS "bench;smoke;fault" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;25;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_smp "/root/repo/build-review/bench/abl_smp" "--smoke")
set_tests_properties(bench_smoke_smp PROPERTIES  LABELS "bench;smoke;smp" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;26;add_test;/root/repo/bench/CMakeLists.txt;0;")
