# Empty dependencies file for flexos_support.
# This may be replaced when dependencies are built.
