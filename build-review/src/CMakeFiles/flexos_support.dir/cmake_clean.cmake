file(REMOVE_RECURSE
  "CMakeFiles/flexos_support.dir/support/log.cc.o"
  "CMakeFiles/flexos_support.dir/support/log.cc.o.d"
  "CMakeFiles/flexos_support.dir/support/panic.cc.o"
  "CMakeFiles/flexos_support.dir/support/panic.cc.o.d"
  "CMakeFiles/flexos_support.dir/support/status.cc.o"
  "CMakeFiles/flexos_support.dir/support/status.cc.o.d"
  "CMakeFiles/flexos_support.dir/support/strings.cc.o"
  "CMakeFiles/flexos_support.dir/support/strings.cc.o.d"
  "libflexos_support.a"
  "libflexos_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexos_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
