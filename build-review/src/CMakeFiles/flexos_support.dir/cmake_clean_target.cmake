file(REMOVE_RECURSE
  "libflexos_support.a"
)
