file(REMOVE_RECURSE
  "CMakeFiles/flexos_net.dir/net/arp.cc.o"
  "CMakeFiles/flexos_net.dir/net/arp.cc.o.d"
  "CMakeFiles/flexos_net.dir/net/checksum.cc.o"
  "CMakeFiles/flexos_net.dir/net/checksum.cc.o.d"
  "CMakeFiles/flexos_net.dir/net/link.cc.o"
  "CMakeFiles/flexos_net.dir/net/link.cc.o.d"
  "CMakeFiles/flexos_net.dir/net/netstack.cc.o"
  "CMakeFiles/flexos_net.dir/net/netstack.cc.o.d"
  "CMakeFiles/flexos_net.dir/net/nic.cc.o"
  "CMakeFiles/flexos_net.dir/net/nic.cc.o.d"
  "CMakeFiles/flexos_net.dir/net/remote_tcp.cc.o"
  "CMakeFiles/flexos_net.dir/net/remote_tcp.cc.o.d"
  "CMakeFiles/flexos_net.dir/net/tcp.cc.o"
  "CMakeFiles/flexos_net.dir/net/tcp.cc.o.d"
  "CMakeFiles/flexos_net.dir/net/udp.cc.o"
  "CMakeFiles/flexos_net.dir/net/udp.cc.o.d"
  "CMakeFiles/flexos_net.dir/net/virtio_queue.cc.o"
  "CMakeFiles/flexos_net.dir/net/virtio_queue.cc.o.d"
  "CMakeFiles/flexos_net.dir/net/wire.cc.o"
  "CMakeFiles/flexos_net.dir/net/wire.cc.o.d"
  "libflexos_net.a"
  "libflexos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
