file(REMOVE_RECURSE
  "libflexos_net.a"
)
