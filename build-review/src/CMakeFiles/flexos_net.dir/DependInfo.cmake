
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/arp.cc" "src/CMakeFiles/flexos_net.dir/net/arp.cc.o" "gcc" "src/CMakeFiles/flexos_net.dir/net/arp.cc.o.d"
  "/root/repo/src/net/checksum.cc" "src/CMakeFiles/flexos_net.dir/net/checksum.cc.o" "gcc" "src/CMakeFiles/flexos_net.dir/net/checksum.cc.o.d"
  "/root/repo/src/net/link.cc" "src/CMakeFiles/flexos_net.dir/net/link.cc.o" "gcc" "src/CMakeFiles/flexos_net.dir/net/link.cc.o.d"
  "/root/repo/src/net/netstack.cc" "src/CMakeFiles/flexos_net.dir/net/netstack.cc.o" "gcc" "src/CMakeFiles/flexos_net.dir/net/netstack.cc.o.d"
  "/root/repo/src/net/nic.cc" "src/CMakeFiles/flexos_net.dir/net/nic.cc.o" "gcc" "src/CMakeFiles/flexos_net.dir/net/nic.cc.o.d"
  "/root/repo/src/net/remote_tcp.cc" "src/CMakeFiles/flexos_net.dir/net/remote_tcp.cc.o" "gcc" "src/CMakeFiles/flexos_net.dir/net/remote_tcp.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/CMakeFiles/flexos_net.dir/net/tcp.cc.o" "gcc" "src/CMakeFiles/flexos_net.dir/net/tcp.cc.o.d"
  "/root/repo/src/net/udp.cc" "src/CMakeFiles/flexos_net.dir/net/udp.cc.o" "gcc" "src/CMakeFiles/flexos_net.dir/net/udp.cc.o.d"
  "/root/repo/src/net/virtio_queue.cc" "src/CMakeFiles/flexos_net.dir/net/virtio_queue.cc.o" "gcc" "src/CMakeFiles/flexos_net.dir/net/virtio_queue.cc.o.d"
  "/root/repo/src/net/wire.cc" "src/CMakeFiles/flexos_net.dir/net/wire.cc.o" "gcc" "src/CMakeFiles/flexos_net.dir/net/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/flexos_libc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_sched.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_alloc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_vmem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_hw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_fault.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
