# Empty compiler generated dependencies file for flexos_net.
# This may be replaced when dependencies are built.
