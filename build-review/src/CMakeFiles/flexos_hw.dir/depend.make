# Empty dependencies file for flexos_hw.
# This may be replaced when dependencies are built.
