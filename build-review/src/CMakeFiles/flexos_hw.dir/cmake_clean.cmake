file(REMOVE_RECURSE
  "CMakeFiles/flexos_hw.dir/hw/clock.cc.o"
  "CMakeFiles/flexos_hw.dir/hw/clock.cc.o.d"
  "CMakeFiles/flexos_hw.dir/hw/cost_model.cc.o"
  "CMakeFiles/flexos_hw.dir/hw/cost_model.cc.o.d"
  "CMakeFiles/flexos_hw.dir/hw/machine.cc.o"
  "CMakeFiles/flexos_hw.dir/hw/machine.cc.o.d"
  "CMakeFiles/flexos_hw.dir/hw/pkru.cc.o"
  "CMakeFiles/flexos_hw.dir/hw/pkru.cc.o.d"
  "CMakeFiles/flexos_hw.dir/hw/trap.cc.o"
  "CMakeFiles/flexos_hw.dir/hw/trap.cc.o.d"
  "libflexos_hw.a"
  "libflexos_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexos_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
