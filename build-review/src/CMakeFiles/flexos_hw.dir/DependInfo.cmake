
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/clock.cc" "src/CMakeFiles/flexos_hw.dir/hw/clock.cc.o" "gcc" "src/CMakeFiles/flexos_hw.dir/hw/clock.cc.o.d"
  "/root/repo/src/hw/cost_model.cc" "src/CMakeFiles/flexos_hw.dir/hw/cost_model.cc.o" "gcc" "src/CMakeFiles/flexos_hw.dir/hw/cost_model.cc.o.d"
  "/root/repo/src/hw/machine.cc" "src/CMakeFiles/flexos_hw.dir/hw/machine.cc.o" "gcc" "src/CMakeFiles/flexos_hw.dir/hw/machine.cc.o.d"
  "/root/repo/src/hw/pkru.cc" "src/CMakeFiles/flexos_hw.dir/hw/pkru.cc.o" "gcc" "src/CMakeFiles/flexos_hw.dir/hw/pkru.cc.o.d"
  "/root/repo/src/hw/trap.cc" "src/CMakeFiles/flexos_hw.dir/hw/trap.cc.o" "gcc" "src/CMakeFiles/flexos_hw.dir/hw/trap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/flexos_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_fault.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
