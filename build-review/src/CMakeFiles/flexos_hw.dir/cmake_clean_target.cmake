file(REMOVE_RECURSE
  "libflexos_hw.a"
)
