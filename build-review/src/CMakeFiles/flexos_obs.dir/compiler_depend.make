# Empty compiler generated dependencies file for flexos_obs.
# This may be replaced when dependencies are built.
