file(REMOVE_RECURSE
  "CMakeFiles/flexos_obs.dir/obs/attrib.cc.o"
  "CMakeFiles/flexos_obs.dir/obs/attrib.cc.o.d"
  "CMakeFiles/flexos_obs.dir/obs/export.cc.o"
  "CMakeFiles/flexos_obs.dir/obs/export.cc.o.d"
  "CMakeFiles/flexos_obs.dir/obs/metrics.cc.o"
  "CMakeFiles/flexos_obs.dir/obs/metrics.cc.o.d"
  "CMakeFiles/flexos_obs.dir/obs/names.cc.o"
  "CMakeFiles/flexos_obs.dir/obs/names.cc.o.d"
  "CMakeFiles/flexos_obs.dir/obs/trace.cc.o"
  "CMakeFiles/flexos_obs.dir/obs/trace.cc.o.d"
  "libflexos_obs.a"
  "libflexos_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexos_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
