file(REMOVE_RECURSE
  "libflexos_obs.a"
)
