file(REMOVE_RECURSE
  "libflexos_alloc.a"
)
