file(REMOVE_RECURSE
  "CMakeFiles/flexos_alloc.dir/alloc/allocator_registry.cc.o"
  "CMakeFiles/flexos_alloc.dir/alloc/allocator_registry.cc.o.d"
  "CMakeFiles/flexos_alloc.dir/alloc/buddy_allocator.cc.o"
  "CMakeFiles/flexos_alloc.dir/alloc/buddy_allocator.cc.o.d"
  "CMakeFiles/flexos_alloc.dir/alloc/freelist_heap.cc.o"
  "CMakeFiles/flexos_alloc.dir/alloc/freelist_heap.cc.o.d"
  "CMakeFiles/flexos_alloc.dir/alloc/hardened_heap.cc.o"
  "CMakeFiles/flexos_alloc.dir/alloc/hardened_heap.cc.o.d"
  "CMakeFiles/flexos_alloc.dir/alloc/region_allocator.cc.o"
  "CMakeFiles/flexos_alloc.dir/alloc/region_allocator.cc.o.d"
  "libflexos_alloc.a"
  "libflexos_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexos_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
