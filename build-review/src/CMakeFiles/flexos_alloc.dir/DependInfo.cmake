
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/allocator_registry.cc" "src/CMakeFiles/flexos_alloc.dir/alloc/allocator_registry.cc.o" "gcc" "src/CMakeFiles/flexos_alloc.dir/alloc/allocator_registry.cc.o.d"
  "/root/repo/src/alloc/buddy_allocator.cc" "src/CMakeFiles/flexos_alloc.dir/alloc/buddy_allocator.cc.o" "gcc" "src/CMakeFiles/flexos_alloc.dir/alloc/buddy_allocator.cc.o.d"
  "/root/repo/src/alloc/freelist_heap.cc" "src/CMakeFiles/flexos_alloc.dir/alloc/freelist_heap.cc.o" "gcc" "src/CMakeFiles/flexos_alloc.dir/alloc/freelist_heap.cc.o.d"
  "/root/repo/src/alloc/hardened_heap.cc" "src/CMakeFiles/flexos_alloc.dir/alloc/hardened_heap.cc.o" "gcc" "src/CMakeFiles/flexos_alloc.dir/alloc/hardened_heap.cc.o.d"
  "/root/repo/src/alloc/region_allocator.cc" "src/CMakeFiles/flexos_alloc.dir/alloc/region_allocator.cc.o" "gcc" "src/CMakeFiles/flexos_alloc.dir/alloc/region_allocator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/flexos_vmem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_hw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_fault.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
