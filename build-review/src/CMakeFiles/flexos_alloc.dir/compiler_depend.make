# Empty compiler generated dependencies file for flexos_alloc.
# This may be replaced when dependencies are built.
