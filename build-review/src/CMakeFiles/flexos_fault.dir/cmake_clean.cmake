file(REMOVE_RECURSE
  "CMakeFiles/flexos_fault.dir/fault/fault.cc.o"
  "CMakeFiles/flexos_fault.dir/fault/fault.cc.o.d"
  "CMakeFiles/flexos_fault.dir/fault/injector.cc.o"
  "CMakeFiles/flexos_fault.dir/fault/injector.cc.o.d"
  "libflexos_fault.a"
  "libflexos_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexos_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
