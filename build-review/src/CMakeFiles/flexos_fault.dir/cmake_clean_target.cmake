file(REMOVE_RECURSE
  "libflexos_fault.a"
)
