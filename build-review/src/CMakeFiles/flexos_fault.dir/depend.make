# Empty dependencies file for flexos_fault.
# This may be replaced when dependencies are built.
