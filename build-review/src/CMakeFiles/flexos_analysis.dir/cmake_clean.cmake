file(REMOVE_RECURSE
  "CMakeFiles/flexos_analysis.dir/analysis/flexlint.cc.o"
  "CMakeFiles/flexos_analysis.dir/analysis/flexlint.cc.o.d"
  "libflexos_analysis.a"
  "libflexos_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexos_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
