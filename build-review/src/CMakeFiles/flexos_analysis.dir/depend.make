# Empty dependencies file for flexos_analysis.
# This may be replaced when dependencies are built.
