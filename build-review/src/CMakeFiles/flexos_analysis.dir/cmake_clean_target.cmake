file(REMOVE_RECURSE
  "libflexos_analysis.a"
)
