file(REMOVE_RECURSE
  "CMakeFiles/flexos_fs.dir/fs/ramfs.cc.o"
  "CMakeFiles/flexos_fs.dir/fs/ramfs.cc.o.d"
  "libflexos_fs.a"
  "libflexos_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexos_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
