file(REMOVE_RECURSE
  "libflexos_fs.a"
)
