# Empty compiler generated dependencies file for flexos_fs.
# This may be replaced when dependencies are built.
