file(REMOVE_RECURSE
  "libflexos_vmem.a"
)
