file(REMOVE_RECURSE
  "CMakeFiles/flexos_vmem.dir/vmem/access.cc.o"
  "CMakeFiles/flexos_vmem.dir/vmem/access.cc.o.d"
  "CMakeFiles/flexos_vmem.dir/vmem/address_space.cc.o"
  "CMakeFiles/flexos_vmem.dir/vmem/address_space.cc.o.d"
  "CMakeFiles/flexos_vmem.dir/vmem/shadow.cc.o"
  "CMakeFiles/flexos_vmem.dir/vmem/shadow.cc.o.d"
  "libflexos_vmem.a"
  "libflexos_vmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexos_vmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
