# Empty compiler generated dependencies file for flexos_vmem.
# This may be replaced when dependencies are built.
