file(REMOVE_RECURSE
  "CMakeFiles/flexos_core.dir/core/coloring.cc.o"
  "CMakeFiles/flexos_core.dir/core/coloring.cc.o.d"
  "CMakeFiles/flexos_core.dir/core/compartment.cc.o"
  "CMakeFiles/flexos_core.dir/core/compartment.cc.o.d"
  "CMakeFiles/flexos_core.dir/core/compat.cc.o"
  "CMakeFiles/flexos_core.dir/core/compat.cc.o.d"
  "CMakeFiles/flexos_core.dir/core/config_parser.cc.o"
  "CMakeFiles/flexos_core.dir/core/config_parser.cc.o.d"
  "CMakeFiles/flexos_core.dir/core/explorer.cc.o"
  "CMakeFiles/flexos_core.dir/core/explorer.cc.o.d"
  "CMakeFiles/flexos_core.dir/core/gate.cc.o"
  "CMakeFiles/flexos_core.dir/core/gate.cc.o.d"
  "CMakeFiles/flexos_core.dir/core/image.cc.o"
  "CMakeFiles/flexos_core.dir/core/image.cc.o.d"
  "CMakeFiles/flexos_core.dir/core/image_builder.cc.o"
  "CMakeFiles/flexos_core.dir/core/image_builder.cc.o.d"
  "CMakeFiles/flexos_core.dir/core/metadata.cc.o"
  "CMakeFiles/flexos_core.dir/core/metadata.cc.o.d"
  "CMakeFiles/flexos_core.dir/core/mpk_gate.cc.o"
  "CMakeFiles/flexos_core.dir/core/mpk_gate.cc.o.d"
  "CMakeFiles/flexos_core.dir/core/sh_transform.cc.o"
  "CMakeFiles/flexos_core.dir/core/sh_transform.cc.o.d"
  "CMakeFiles/flexos_core.dir/core/vm_gate.cc.o"
  "CMakeFiles/flexos_core.dir/core/vm_gate.cc.o.d"
  "CMakeFiles/flexos_core.dir/fault/supervisor.cc.o"
  "CMakeFiles/flexos_core.dir/fault/supervisor.cc.o.d"
  "libflexos_core.a"
  "libflexos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
