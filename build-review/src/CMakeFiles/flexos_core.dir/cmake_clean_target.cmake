file(REMOVE_RECURSE
  "libflexos_core.a"
)
