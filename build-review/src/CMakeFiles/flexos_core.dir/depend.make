# Empty dependencies file for flexos_core.
# This may be replaced when dependencies are built.
