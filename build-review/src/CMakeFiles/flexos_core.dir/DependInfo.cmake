
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coloring.cc" "src/CMakeFiles/flexos_core.dir/core/coloring.cc.o" "gcc" "src/CMakeFiles/flexos_core.dir/core/coloring.cc.o.d"
  "/root/repo/src/core/compartment.cc" "src/CMakeFiles/flexos_core.dir/core/compartment.cc.o" "gcc" "src/CMakeFiles/flexos_core.dir/core/compartment.cc.o.d"
  "/root/repo/src/core/compat.cc" "src/CMakeFiles/flexos_core.dir/core/compat.cc.o" "gcc" "src/CMakeFiles/flexos_core.dir/core/compat.cc.o.d"
  "/root/repo/src/core/config_parser.cc" "src/CMakeFiles/flexos_core.dir/core/config_parser.cc.o" "gcc" "src/CMakeFiles/flexos_core.dir/core/config_parser.cc.o.d"
  "/root/repo/src/core/explorer.cc" "src/CMakeFiles/flexos_core.dir/core/explorer.cc.o" "gcc" "src/CMakeFiles/flexos_core.dir/core/explorer.cc.o.d"
  "/root/repo/src/core/gate.cc" "src/CMakeFiles/flexos_core.dir/core/gate.cc.o" "gcc" "src/CMakeFiles/flexos_core.dir/core/gate.cc.o.d"
  "/root/repo/src/core/image.cc" "src/CMakeFiles/flexos_core.dir/core/image.cc.o" "gcc" "src/CMakeFiles/flexos_core.dir/core/image.cc.o.d"
  "/root/repo/src/core/image_builder.cc" "src/CMakeFiles/flexos_core.dir/core/image_builder.cc.o" "gcc" "src/CMakeFiles/flexos_core.dir/core/image_builder.cc.o.d"
  "/root/repo/src/core/metadata.cc" "src/CMakeFiles/flexos_core.dir/core/metadata.cc.o" "gcc" "src/CMakeFiles/flexos_core.dir/core/metadata.cc.o.d"
  "/root/repo/src/core/mpk_gate.cc" "src/CMakeFiles/flexos_core.dir/core/mpk_gate.cc.o" "gcc" "src/CMakeFiles/flexos_core.dir/core/mpk_gate.cc.o.d"
  "/root/repo/src/core/sh_transform.cc" "src/CMakeFiles/flexos_core.dir/core/sh_transform.cc.o" "gcc" "src/CMakeFiles/flexos_core.dir/core/sh_transform.cc.o.d"
  "/root/repo/src/core/vm_gate.cc" "src/CMakeFiles/flexos_core.dir/core/vm_gate.cc.o" "gcc" "src/CMakeFiles/flexos_core.dir/core/vm_gate.cc.o.d"
  "/root/repo/src/fault/supervisor.cc" "src/CMakeFiles/flexos_core.dir/fault/supervisor.cc.o" "gcc" "src/CMakeFiles/flexos_core.dir/fault/supervisor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/flexos_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_libc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_sched.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_alloc.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_vmem.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_hw.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_fault.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_support.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/flexos_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
