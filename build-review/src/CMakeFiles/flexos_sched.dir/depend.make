# Empty dependencies file for flexos_sched.
# This may be replaced when dependencies are built.
