file(REMOVE_RECURSE
  "libflexos_sched.a"
)
