file(REMOVE_RECURSE
  "CMakeFiles/flexos_sched.dir/sched/coop_scheduler.cc.o"
  "CMakeFiles/flexos_sched.dir/sched/coop_scheduler.cc.o.d"
  "CMakeFiles/flexos_sched.dir/sched/thread.cc.o"
  "CMakeFiles/flexos_sched.dir/sched/thread.cc.o.d"
  "CMakeFiles/flexos_sched.dir/sched/verified_scheduler.cc.o"
  "CMakeFiles/flexos_sched.dir/sched/verified_scheduler.cc.o.d"
  "CMakeFiles/flexos_sched.dir/sched/wait_queue.cc.o"
  "CMakeFiles/flexos_sched.dir/sched/wait_queue.cc.o.d"
  "libflexos_sched.a"
  "libflexos_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexos_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
