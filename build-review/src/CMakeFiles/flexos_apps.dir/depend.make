# Empty dependencies file for flexos_apps.
# This may be replaced when dependencies are built.
