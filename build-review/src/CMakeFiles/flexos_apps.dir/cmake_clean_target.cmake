file(REMOVE_RECURSE
  "libflexos_apps.a"
)
