file(REMOVE_RECURSE
  "CMakeFiles/flexos_apps.dir/apps/http_server.cc.o"
  "CMakeFiles/flexos_apps.dir/apps/http_server.cc.o.d"
  "CMakeFiles/flexos_apps.dir/apps/iperf_client.cc.o"
  "CMakeFiles/flexos_apps.dir/apps/iperf_client.cc.o.d"
  "CMakeFiles/flexos_apps.dir/apps/iperf_server.cc.o"
  "CMakeFiles/flexos_apps.dir/apps/iperf_server.cc.o.d"
  "CMakeFiles/flexos_apps.dir/apps/redis_client.cc.o"
  "CMakeFiles/flexos_apps.dir/apps/redis_client.cc.o.d"
  "CMakeFiles/flexos_apps.dir/apps/redis_server.cc.o"
  "CMakeFiles/flexos_apps.dir/apps/redis_server.cc.o.d"
  "CMakeFiles/flexos_apps.dir/apps/testbed.cc.o"
  "CMakeFiles/flexos_apps.dir/apps/testbed.cc.o.d"
  "libflexos_apps.a"
  "libflexos_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexos_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
