file(REMOVE_RECURSE
  "libflexos_libc.a"
)
