file(REMOVE_RECURSE
  "CMakeFiles/flexos_libc.dir/libc/format.cc.o"
  "CMakeFiles/flexos_libc.dir/libc/format.cc.o.d"
  "CMakeFiles/flexos_libc.dir/libc/gstring.cc.o"
  "CMakeFiles/flexos_libc.dir/libc/gstring.cc.o.d"
  "CMakeFiles/flexos_libc.dir/libc/msg_queue.cc.o"
  "CMakeFiles/flexos_libc.dir/libc/msg_queue.cc.o.d"
  "CMakeFiles/flexos_libc.dir/libc/ring_buffer.cc.o"
  "CMakeFiles/flexos_libc.dir/libc/ring_buffer.cc.o.d"
  "CMakeFiles/flexos_libc.dir/libc/semaphore.cc.o"
  "CMakeFiles/flexos_libc.dir/libc/semaphore.cc.o.d"
  "libflexos_libc.a"
  "libflexos_libc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flexos_libc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
