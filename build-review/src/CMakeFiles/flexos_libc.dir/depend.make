# Empty dependencies file for flexos_libc.
# This may be replaced when dependencies are built.
