file(REMOVE_RECURSE
  "CMakeFiles/net_wire_test.dir/net_wire_test.cc.o"
  "CMakeFiles/net_wire_test.dir/net_wire_test.cc.o.d"
  "net_wire_test"
  "net_wire_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_wire_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
