# Empty compiler generated dependencies file for netstack_test.
# This may be replaced when dependencies are built.
