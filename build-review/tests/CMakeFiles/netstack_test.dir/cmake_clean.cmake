file(REMOVE_RECURSE
  "CMakeFiles/netstack_test.dir/netstack_test.cc.o"
  "CMakeFiles/netstack_test.dir/netstack_test.cc.o.d"
  "netstack_test"
  "netstack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netstack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
