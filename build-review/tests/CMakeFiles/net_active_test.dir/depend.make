# Empty dependencies file for net_active_test.
# This may be replaced when dependencies are built.
