file(REMOVE_RECURSE
  "CMakeFiles/net_active_test.dir/net_active_test.cc.o"
  "CMakeFiles/net_active_test.dir/net_active_test.cc.o.d"
  "net_active_test"
  "net_active_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_active_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
