file(REMOVE_RECURSE
  "CMakeFiles/sh_transform_test.dir/sh_transform_test.cc.o"
  "CMakeFiles/sh_transform_test.dir/sh_transform_test.cc.o.d"
  "sh_transform_test"
  "sh_transform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sh_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
