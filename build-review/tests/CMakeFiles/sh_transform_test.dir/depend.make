# Empty dependencies file for sh_transform_test.
# This may be replaced when dependencies are built.
