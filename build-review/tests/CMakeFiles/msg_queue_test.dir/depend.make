# Empty dependencies file for msg_queue_test.
# This may be replaced when dependencies are built.
