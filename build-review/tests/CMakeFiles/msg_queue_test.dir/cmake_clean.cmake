file(REMOVE_RECURSE
  "CMakeFiles/msg_queue_test.dir/msg_queue_test.cc.o"
  "CMakeFiles/msg_queue_test.dir/msg_queue_test.cc.o.d"
  "msg_queue_test"
  "msg_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msg_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
