# Empty dependencies file for vmem_test.
# This may be replaced when dependencies are built.
