file(REMOVE_RECURSE
  "CMakeFiles/vmem_test.dir/vmem_test.cc.o"
  "CMakeFiles/vmem_test.dir/vmem_test.cc.o.d"
  "vmem_test"
  "vmem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vmem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
