file(REMOVE_RECURSE
  "CMakeFiles/sched_primitives_test.dir/sched_primitives_test.cc.o"
  "CMakeFiles/sched_primitives_test.dir/sched_primitives_test.cc.o.d"
  "sched_primitives_test"
  "sched_primitives_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
