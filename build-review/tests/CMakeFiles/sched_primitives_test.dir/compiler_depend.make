# Empty compiler generated dependencies file for sched_primitives_test.
# This may be replaced when dependencies are built.
