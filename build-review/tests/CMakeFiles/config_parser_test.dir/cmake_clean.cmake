file(REMOVE_RECURSE
  "CMakeFiles/config_parser_test.dir/config_parser_test.cc.o"
  "CMakeFiles/config_parser_test.dir/config_parser_test.cc.o.d"
  "config_parser_test"
  "config_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
