# Empty dependencies file for config_parser_test.
# This may be replaced when dependencies are built.
