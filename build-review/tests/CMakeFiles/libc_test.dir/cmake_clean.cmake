file(REMOVE_RECURSE
  "CMakeFiles/libc_test.dir/libc_test.cc.o"
  "CMakeFiles/libc_test.dir/libc_test.cc.o.d"
  "libc_test"
  "libc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
