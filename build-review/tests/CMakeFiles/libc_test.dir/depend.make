# Empty dependencies file for libc_test.
# This may be replaced when dependencies are built.
