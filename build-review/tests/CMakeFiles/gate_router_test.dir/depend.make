# Empty dependencies file for gate_router_test.
# This may be replaced when dependencies are built.
