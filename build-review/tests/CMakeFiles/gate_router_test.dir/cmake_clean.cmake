file(REMOVE_RECURSE
  "CMakeFiles/gate_router_test.dir/gate_router_test.cc.o"
  "CMakeFiles/gate_router_test.dir/gate_router_test.cc.o.d"
  "gate_router_test"
  "gate_router_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
