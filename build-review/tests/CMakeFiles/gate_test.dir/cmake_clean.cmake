file(REMOVE_RECURSE
  "CMakeFiles/gate_test.dir/gate_test.cc.o"
  "CMakeFiles/gate_test.dir/gate_test.cc.o.d"
  "gate_test"
  "gate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
