# Empty dependencies file for gate_test.
# This may be replaced when dependencies are built.
