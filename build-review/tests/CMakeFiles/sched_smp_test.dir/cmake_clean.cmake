file(REMOVE_RECURSE
  "CMakeFiles/sched_smp_test.dir/sched_smp_test.cc.o"
  "CMakeFiles/sched_smp_test.dir/sched_smp_test.cc.o.d"
  "sched_smp_test"
  "sched_smp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_smp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
