# Empty dependencies file for sched_smp_test.
# This may be replaced when dependencies are built.
