file(REMOVE_RECURSE
  "CMakeFiles/attack_matrix_test.dir/attack_matrix_test.cc.o"
  "CMakeFiles/attack_matrix_test.dir/attack_matrix_test.cc.o.d"
  "attack_matrix_test"
  "attack_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
