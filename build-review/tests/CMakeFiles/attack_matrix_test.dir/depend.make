# Empty dependencies file for attack_matrix_test.
# This may be replaced when dependencies are built.
