# Empty dependencies file for virtio_queue_test.
# This may be replaced when dependencies are built.
