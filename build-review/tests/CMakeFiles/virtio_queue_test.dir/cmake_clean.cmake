file(REMOVE_RECURSE
  "CMakeFiles/virtio_queue_test.dir/virtio_queue_test.cc.o"
  "CMakeFiles/virtio_queue_test.dir/virtio_queue_test.cc.o.d"
  "virtio_queue_test"
  "virtio_queue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/virtio_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
