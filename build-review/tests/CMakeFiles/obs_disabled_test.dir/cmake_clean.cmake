file(REMOVE_RECURSE
  "CMakeFiles/obs_disabled_test.dir/obs_disabled_test.cc.o"
  "CMakeFiles/obs_disabled_test.dir/obs_disabled_test.cc.o.d"
  "obs_disabled_test"
  "obs_disabled_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_disabled_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
