# Empty dependencies file for obs_disabled_test.
# This may be replaced when dependencies are built.
