#!/usr/bin/env sh
# Observability smoke under ASan+UBSan: build with FLEXOS_SANITIZE=address
# and run the obs- and watch-labeled ctest targets (metrics, tracer,
# attributor, flexwatch timeseries + SLO watchdogs, and the disabled-stub
# contract). flexwatch's capture path is allocation-free in steady state
# but its rebind/snapshot/export paths allocate — this is the leak- and
# overflow-check for those. TSan coverage for the same labels lives in
# scripts/tsan_smoke.sh.
#
# Usage: scripts/obs_smoke.sh [build-dir]   (default: build-asan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-asan"}

echo "== obs_smoke: configure + build (FLEXOS_SANITIZE=address)"
cmake -S "$repo_root" -B "$build_dir" -DFLEXOS_SANITIZE=address
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

echo "== obs_smoke: obs- and watch-labeled tests"
ctest --test-dir "$build_dir" -L "obs|watch" --output-on-failure

echo "== obs_smoke: abl_obs_overhead --smoke (identity + timeline gates)"
"$build_dir/bench/abl_obs_overhead" --smoke

echo "== obs_smoke: clean under ASan"
