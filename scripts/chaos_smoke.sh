#!/usr/bin/env sh
# Chaos smoke under sanitizers: build with FLEXOS_SANITIZE=ON (ASan +
# UBSan) and run the fault-injection test surface — the `fault`-labeled
# ctest targets (fault_test unit suite + the abl_fault_recovery soak) plus
# the flexbench --chaos profile. Deterministic injection means a sanitizer
# hit here is a real bug on the recovery path (heap reset, init hooks,
# quarantine bookkeeping), not noise.
#
# Usage: scripts/chaos_smoke.sh [build-dir]   (default: build-asan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-asan"}

echo "== chaos_smoke: configure + build (FLEXOS_SANITIZE=ON)"
cmake -S "$repo_root" -B "$build_dir" -DFLEXOS_SANITIZE=ON
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

echo "== chaos_smoke: fault-labeled tests"
ctest --test-dir "$build_dir" -L fault --output-on-failure

echo "== chaos_smoke: flexbench --chaos --smoke"
"$build_dir/tools/flexbench" --chaos --smoke --bindir "$build_dir/bench"

echo "== chaos_smoke: clean under ASan/UBSan"
