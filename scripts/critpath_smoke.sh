#!/usr/bin/env sh
# flexpath smoke under sanitizers: the critical-path profiler is offline
# analysis (Build() walks the attributor, metrics registry, and trace
# snapshot after a run), so its failure modes are host-level — allocation
# churn while assembling paths/segments and reads of the tracer ring /
# registry. Two passes:
#   1. ASan+UBSan over the obs- and critpath-labeled ctest targets plus the
#      flexstat --critpath/--advise e2e runs (leaks + overflow in the DAG
#      assembly and JSON emitters).
#   2. TSan over the critpath- and smp-labeled targets (the SMP edge stamps
#      — sched.ready / sched.steal / sched.ipi — write the shared tracer
#      ring from scheduler and machine code paths).
#
# Usage: scripts/critpath_smoke.sh [asan-dir [tsan-dir]]
#        (defaults: build-asan, build-tsan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
asan_dir=${1:-"$repo_root/build-asan"}
tsan_dir=${2:-"$repo_root/build-tsan"}
jobs=$(nproc 2>/dev/null || echo 4)

echo "== critpath_smoke: configure + build (FLEXOS_SANITIZE=address)"
cmake -S "$repo_root" -B "$asan_dir" -DFLEXOS_SANITIZE=address
cmake --build "$asan_dir" -j "$jobs"

echo "== critpath_smoke: obs- and critpath-labeled tests under ASan"
ctest --test-dir "$asan_dir" -L "obs|critpath" --output-on-failure

echo "== critpath_smoke: abl_obs_overhead --smoke (identity + reconcile gates)"
"$asan_dir/bench/abl_obs_overhead" --smoke

echo "== critpath_smoke: configure + build (FLEXOS_SANITIZE=thread)"
cmake -S "$repo_root" -B "$tsan_dir" -DFLEXOS_SANITIZE=thread
cmake --build "$tsan_dir" -j "$jobs"

echo "== critpath_smoke: critpath- and smp-labeled tests under TSan"
ctest --test-dir "$tsan_dir" -L "critpath|smp" --output-on-failure

echo "== critpath_smoke: clean under ASan and TSan"
