#!/usr/bin/env sh
# flexadapt smoke under sanitizers: the policy engine runs host-level
# analysis at every window close (snapshot parsing, decision-log strings,
# re-linting the live image) and the swap protocol mutates boundary state
# shared with the dispatch fast path. Two passes:
#   1. ASan+UBSan over the adapt-labeled ctest targets plus the
#      abl_adaptive --smoke self-gates (leaks + overflow in the snapshot
#      walk, JSON emitter, and the lint model rebuilt per veto check).
#   2. TSan over the adapt- and smp-labeled targets (backend swaps touch
#      the same BoundaryRuntime nodes the multi-vCPU scheduler dispatches
#      through).
#
# Usage: scripts/adapt_smoke.sh [asan-dir [tsan-dir]]
#        (defaults: build-asan, build-tsan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
asan_dir=${1:-"$repo_root/build-asan"}
tsan_dir=${2:-"$repo_root/build-tsan"}
jobs=$(nproc 2>/dev/null || echo 4)

echo "== adapt_smoke: configure + build (FLEXOS_SANITIZE=address)"
cmake -S "$repo_root" -B "$asan_dir" -DFLEXOS_SANITIZE=address
cmake --build "$asan_dir" -j "$jobs"

echo "== adapt_smoke: adapt-labeled tests under ASan"
ctest --test-dir "$asan_dir" -L "adapt" --output-on-failure

echo "== adapt_smoke: abl_adaptive --smoke (replay + tracking + veto gates)"
"$asan_dir/bench/abl_adaptive" --smoke

echo "== adapt_smoke: configure + build (FLEXOS_SANITIZE=thread)"
cmake -S "$repo_root" -B "$tsan_dir" -DFLEXOS_SANITIZE=thread
cmake --build "$tsan_dir" -j "$jobs"

echo "== adapt_smoke: adapt- and smp-labeled tests under TSan"
ctest --test-dir "$tsan_dir" -L "adapt|smp" --output-on-failure

echo "== adapt_smoke: clean under ASan and TSan"
