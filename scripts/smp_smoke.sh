#!/usr/bin/env sh
# SMP smoke under sanitizers: build with FLEXOS_SANITIZE=ON (ASan + UBSan)
# and run the multi-vCPU test surface — the `smp`-labeled ctest targets
# (sched_smp_test + the abl_smp scaling/replay gates) plus an explicit
# abl_smp point at each vCPU count. Everything here is modeled and
# deterministic, so a sanitizer hit is a real bug in the per-vCPU run
# queues, lane attribution, or clock-merge bookkeeping, not noise.
#
# Usage: scripts/smp_smoke.sh [build-dir]   (default: build-asan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-asan"}

echo "== smp_smoke: configure + build (FLEXOS_SANITIZE=ON)"
cmake -S "$repo_root" -B "$build_dir" -DFLEXOS_SANITIZE=ON
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

echo "== smp_smoke: smp-labeled tests"
ctest --test-dir "$build_dir" -L smp --output-on-failure

echo "== smp_smoke: abl_smp single points at 1, 2, 4 vCPUs"
for n in 1 2 4; do
  "$build_dir/bench/abl_smp" --smoke --vcpus "$n"
done

echo "== smp_smoke: clean under ASan/UBSan"
