#!/usr/bin/env sh
# Regenerate the checked-in flexbench baselines and the PR bench report.
#
# Run this after an intentional cost-model or benchmark change, then review
# the baseline diff like any other code change. The modeled numbers are
# deterministic, so the diff shows exactly which metrics moved.
#
# Usage: scripts/bench_snapshot.sh [build-dir]   (default: build)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
flexbench="$build_dir/tools/flexbench"
bindir="$build_dir/bench"

if [ ! -x "$flexbench" ]; then
  echo "bench_snapshot: $flexbench not found; build first:" >&2
  echo "  cmake -B \"$build_dir\" -S \"$repo_root\" && cmake --build \"$build_dir\" -j" >&2
  exit 2
fi

echo "== snapshot: smoke baseline"
"$flexbench" --smoke --bindir "$bindir" \
    --write-baseline "$repo_root/bench/baselines/smoke.json"

echo "== snapshot: full baseline"
"$flexbench" --bindir "$bindir" \
    --write-baseline "$repo_root/bench/baselines/full.json"

echo "== verify: full run against fresh baseline (must be zero-drift)"
"$flexbench" --bindir "$bindir" \
    --baseline "$repo_root/bench/baselines/full.json" \
    --out "$repo_root/BENCH_PR10.json"

echo "== done: bench/baselines/{smoke,full}.json and BENCH_PR10.json updated"
