#!/usr/bin/env sh
# ThreadSanitizer smoke: build with FLEXOS_SANITIZE=thread and run the
# observability + multi-vCPU test surface (obs-, smp-, and race-labeled
# ctest targets). The scheduler registers every ucontext stack as a TSan
# fiber (src/sched/coop_scheduler.cc), so TSan follows virtual threads
# across swapcontext instead of flagging each switch as a data race.
# Everything modeled here runs on one host thread; a TSan hit means real
# unsynchronized host-level sharing (tracer ring, metrics registry), not
# modeled-race noise — modeled races are flexrace's job (tests/race_test.cc).
#
# Usage: scripts/tsan_smoke.sh [build-dir]   (default: build-tsan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-tsan"}

echo "== tsan_smoke: configure + build (FLEXOS_SANITIZE=thread)"
cmake -S "$repo_root" -B "$build_dir" -DFLEXOS_SANITIZE=thread
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

echo "== tsan_smoke: obs-, smp-, race-, and watch-labeled tests"
ctest --test-dir "$build_dir" -L "obs|smp|race|watch" --output-on-failure

echo "== tsan_smoke: clean under TSan"
