// Quickstart: build a FlexOS image with the network stack isolated behind
// MPK gates, run an iperf-style transfer through it, and inspect what the
// image did. Start here.
#include <cstdio>

#include "apps/iperf_client.h"
#include "apps/iperf_server.h"
#include "apps/testbed.h"

using namespace flexos;

int main() {
  // 1. Describe the image: two compartments — the untrusted network stack
  //    alone, everything else together — joined by MPK shared-stack gates.
  TestbedConfig config;
  config.image.backend = IsolationBackend::kMpkSharedStack;
  config.image.compartments = {
      {std::string(kLibNet)},
      {std::string(kLibApp), std::string(kLibSched), std::string(kLibLibc),
       std::string(kLibAlloc)}};

  // 2. Boot it.
  Testbed bed(config);
  std::printf("%s\n", bed.image().Describe().c_str());

  // 3. Run an iperf-style sink fed by a remote client over the modeled
  //    10 GbE link.
  IperfServerResult server_result;
  IperfServerOptions options;
  options.recv_buffer_bytes = 16 * 1024;
  SpawnIperfServer(bed, options, &server_result);

  IperfRemoteClient client(/*total_bytes=*/1 << 20);
  RemoteTcpPeer peer(bed.machine(), bed.link(), RemoteTcpConfig{}, client);
  bed.AddPeer(&peer);
  peer.Connect();

  const Status status = bed.Run();
  if (!status.ok()) {
    std::printf("run failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 4. Results: application-level numbers plus what the isolation cost.
  const double seconds = bed.machine().clock().NowSeconds();
  std::printf("transferred      : %llu bytes in %.3f ms (virtual)\n",
              static_cast<unsigned long long>(server_result.bytes_received),
              seconds * 1e3);
  std::printf("throughput       : %.2f Gb/s\n",
              static_cast<double>(server_result.bytes_received) * 8 /
                  seconds / 1e9);
  std::printf("recv() calls     : %llu\n",
              static_cast<unsigned long long>(server_result.recv_calls));
  const ImageStats& stats = bed.image().stats();
  std::printf("gate crossings   : %llu cross-compartment, %llu within\n",
              static_cast<unsigned long long>(stats.cross_compartment_calls),
              static_cast<unsigned long long>(stats.same_compartment_calls));
  std::printf("WRPKRU executed  : %llu\n",
              static_cast<unsigned long long>(
                  bed.machine().stats().wrpkru_count));
  std::printf("gate traffic per boundary:\n%s",
              bed.DescribeCrossings().c_str());
  return 0;
}
