// Redis under different trust models: the paper's four Fig. 5
// compartmentalizations, switchable by recompile... or here, by a loop.
// Demonstrates how FlexOS turns "which components do I trust?" into a
// build-time knob.
#include <cstdio>

#include "apps/redis_client.h"
#include "apps/redis_server.h"
#include "apps/testbed.h"

using namespace flexos;

namespace {

double RunOnce(const ImageConfig& image, const char* label) {
  TestbedConfig config;
  config.image = image;
  Testbed bed(config);

  RedisServerResult server_result;
  SpawnRedisServer(bed, RedisServerOptions{}, &server_result);

  RedisWorkload workload;
  workload.measure_gets = true;
  workload.warmup_sets = 16;
  workload.key_space = 16;
  workload.measured_ops = 200;
  workload.payload_bytes = 50;
  RedisRemoteClient client(bed.machine(), workload);
  RemoteTcpConfig peer_config;
  peer_config.server_port = 6379;
  RemoteTcpPeer peer(bed.machine(), bed.link(), peer_config, client);
  bed.AddPeer(&peer);
  peer.Connect();

  const Status status = bed.Run();
  const double kops = client.MeasuredOpsPerSec() / 1e3;
  std::printf("%-28s %8.1f kreq/s   %llu crossings   %s\n", label, kops,
              static_cast<unsigned long long>(
                  bed.image().stats().cross_compartment_calls),
              status.ok() ? "" : status.ToString().c_str());
  return kops;
}

}  // namespace

int main() {
  std::printf("Redis-lite, 200 GETs of 50 B each, per trust model:\n\n");

  ImageConfig none = BaselineConfig(DefaultLibs());
  RunOnce(none, "no isolation");

  ImageConfig nw_only;
  nw_only.backend = IsolationBackend::kMpkSharedStack;
  nw_only.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  RunOnce(nw_only, "{NW | rest} MPK-shared");

  ImageConfig nw_sched_rest = nw_only;
  nw_sched_rest.compartments = {{"net"}, {"sched"}, {"app", "libc", "alloc"}};
  RunOnce(nw_sched_rest, "{NW | sched | rest}");

  ImageConfig merged = nw_only;
  merged.compartments = {{"net", "sched"}, {"app", "libc", "alloc"}};
  RunOnce(merged, "{NW+sched | rest}");

  ImageConfig vm = nw_only;
  vm.backend = IsolationBackend::kVmRpc;
  RunOnce(vm, "{NW | rest} VM-RPC");

  std::printf(
      "\nNote how {NW+sched} does not beat {NW | sched}: wait-queue\n"
      "semaphores live in the LibC compartment, so the hot path still\n"
      "crosses a gate — the paper's Fig. 5 observation.\n");
  return 0;
}
