// A static web server with the filesystem in its own compartment: the
// paper's follow-up work compartmentalizes exactly this pairing (ramfs +
// network stack). Requests flow app -> net gates one way and app -> fs
// gates the other; the example prints what each trust model costs.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/http_server.h"

using namespace flexos;

namespace {

class HttpLoadClient final : public RemoteApp {
 public:
  HttpLoadClient(std::string request, int count)
      : request_(std::move(request)), remaining_(count) {}
  size_t ProduceData(uint8_t* out, size_t max) override {
    if (pending_.empty()) {
      if (remaining_ == 0 || awaiting_) {
        return 0;
      }
      pending_ = request_;
      awaiting_ = true;
      --remaining_;
    }
    const size_t n = std::min(max, pending_.size());
    std::memcpy(out, pending_.data(), n);
    pending_.erase(0, n);
    return n;
  }
  bool Finished() const override {
    return remaining_ == 0 && !awaiting_;
  }
  void OnReceive(const uint8_t* data, size_t len) override {
    rx_.append(reinterpret_cast<const char*>(data), len);
    // One response per request: find the header, then wait for the body.
    for (;;) {
      const size_t head_end = rx_.find("\r\n\r\n");
      if (head_end == std::string::npos) {
        return;
      }
      const size_t length_at = rx_.find("Content-Length: ");
      if (length_at == std::string::npos || length_at > head_end) {
        return;
      }
      const size_t body_len = static_cast<size_t>(
          std::strtoull(rx_.c_str() + length_at + 16, nullptr, 10));
      if (rx_.size() < head_end + 4 + body_len) {
        return;
      }
      rx_.erase(0, head_end + 4 + body_len);
      ++completed_;
      awaiting_ = false;
    }
  }
  int completed() const { return completed_; }

 private:
  std::string request_;
  std::string pending_;
  std::string rx_;
  int remaining_;
  bool awaiting_ = false;
  int completed_ = 0;
};

double Serve(const ImageConfig& image, const char* label) {
  TestbedConfig config;
  config.image = image;
  Testbed bed(config);

  RamFs fs(bed.machine(), bed.image().SpaceOf(kLibFs),
           bed.image().AllocatorOf(kLibFs), &bed.image());
  FLEXOS_CHECK(fs.WriteFileFromHost("index.html",
                                    std::string(2048, 'p')).ok(),
               "doc load failed");

  HttpServerResult server_result;
  SpawnHttpServer(bed, fs, HttpServerOptions{}, &server_result);

  HttpLoadClient client("GET /index.html HTTP/1.0\r\n\r\n", 200);
  RemoteTcpConfig peer_config;
  peer_config.server_port = 8080;
  RemoteTcpPeer peer(bed.machine(), bed.link(), peer_config, client);
  bed.AddPeer(&peer);
  peer.Connect();

  const Status status = bed.Run();
  FLEXOS_CHECK(status.ok(), "run failed: %s", status.ToString().c_str());
  FLEXOS_CHECK(client.completed() == 200, "requests lost");

  const double seconds = bed.machine().clock().NowSeconds();
  const double rps = 200.0 / seconds;
  std::printf("%-34s %8.0f req/s   %8llu crossings\n", label, rps,
              static_cast<unsigned long long>(
                  bed.image().stats().cross_compartment_calls));
  return rps;
}

}  // namespace

int main() {
  std::printf("Static web server, 200 GETs of a 2 KiB page, per trust "
              "model:\n\n");
  Serve(BaselineConfig(DefaultLibs()), "no isolation");

  ImageConfig fs_isolated;
  fs_isolated.backend = IsolationBackend::kMpkSharedStack;
  fs_isolated.compartments = {
      {"fs"}, {"app", "net", "sched", "libc", "alloc"}};
  Serve(fs_isolated, "{fs | rest} MPK-shared");

  ImageConfig net_isolated;
  net_isolated.backend = IsolationBackend::kMpkSharedStack;
  net_isolated.compartments = {
      {"net"}, {"app", "fs", "sched", "libc", "alloc"}};
  Serve(net_isolated, "{net | rest} MPK-shared");

  ImageConfig both;
  both.backend = IsolationBackend::kMpkSwitchedStack;
  both.compartments = {
      {"fs"}, {"net"}, {"app", "sched", "libc", "alloc"}};
  Serve(both, "{fs | net | rest} MPK-switched");

  std::printf(
      "\nThe file system is a cold boundary (one gate pair per request);\n"
      "the network stack is a hot one (gates per packet, per lock, per\n"
      "semaphore) — which is why the paper isolates the *network stack*\n"
      "in its headline experiments and why per-boundary choice matters.\n");
  return 0;
}
