// The automation story (paper §2): from per-library metadata to a ranked
// list of deployable configurations. Parses the paper's own metadata
// examples, derives compatibility conflicts, enumerates SH variants,
// colors the conflict graph, and answers both exploration queries.
#include <cstdio>

#include "core/explorer.h"

using namespace flexos;

namespace {

void PrintTop(const std::vector<RankedConfig>& ranked,
              const std::vector<std::string>& names, size_t limit) {
  for (size_t i = 0; i < ranked.size() && i < limit; ++i) {
    const RankedConfig& candidate = ranked[i];
    std::printf("  %2zu. %-58s  %9.0f cyc/op  security %.1f\n", i + 1,
                candidate.config.Describe(names).c_str(),
                candidate.estimate.cycles_per_op,
                candidate.estimate.security_score);
  }
}

}  // namespace

int main() {
  // The image's libraries, including a legacy unsafe C component (the
  // paper's running example).
  std::vector<LibraryMeta> libs = {AppMeta("app"), NetStackMeta(),
                                   SchedulerMeta(), LibcMeta(), AllocMeta(),
                                   UnsafeCLibMeta("legacy")};
  std::vector<std::string> names;
  for (const LibraryMeta& lib : libs) {
    names.push_back(lib.name);
  }

  std::printf("Library metadata (the paper's DSL):\n");
  for (const LibraryMeta& lib : libs) {
    std::printf("--- %s ---\n%s", lib.name.c_str(), lib.ToString().c_str());
  }

  const auto edges = ConflictEdges(libs);
  std::printf("\nConflict edges (cannot share a compartment):\n");
  for (const auto& [a, b] : edges) {
    std::printf("  %s <-> %s\n", names[static_cast<size_t>(a)].c_str(),
                names[static_cast<size_t>(b)].c_str());
  }

  ShAnalysis analysis;
  analysis.cfi_call_targets = {"libc::memcpy", "alloc::malloc",
                               "alloc::free"};
  WorkloadProfile profile;
  profile.cross_lib_calls_per_op = 16;
  profile.memop_bytes_per_op = {256, 1460, 0, 2920, 64, 128};
  profile.allocs_per_op = 3;

  const std::vector<IsolationBackend> backends = {
      IsolationBackend::kNone, IsolationBackend::kMpkSharedStack,
      IsolationBackend::kMpkSwitchedStack, IsolationBackend::kVmRpc};

  // Strategy 2: best performance among safety-compliant configurations.
  ExplorationQuery fastest;
  auto ranked =
      ExploreDesignSpace(libs, analysis, backends, profile, CostModel{},
                         fastest);
  std::printf("\nFastest safety-compliant configurations:\n");
  PrintTop(ranked, names, 8);

  // Strategy 1: max security within a performance budget.
  ExplorationQuery budget;
  budget.max_cycles_per_op = ranked.empty()
                                 ? 50'000
                                 : ranked.front().estimate.cycles_per_op * 3;
  auto secure = ExploreDesignSpace(libs, analysis, backends, profile,
                                   CostModel{}, budget);
  std::printf("\nMost secure within %.0f cyc/op:\n",
              *budget.max_cycles_per_op);
  PrintTop(secure, names, 8);
  return 0;
}
