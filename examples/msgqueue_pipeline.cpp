// A producer/consumer pipeline over the message-queue micro-library — the
// third micro-lib the paper names alongside the scheduler and allocator.
// The queue's storage sits in the shared region; the blocking semaphores
// live in LibC; so under MPK isolation every send/recv pays real gate
// crossings, which this example measures per backend.
#include <cstdio>

#include "apps/testbed.h"
#include "libc/msg_queue.h"

using namespace flexos;

namespace {

double RunPipeline(IsolationBackend backend, const char* label) {
  TestbedConfig config;
  if (backend == IsolationBackend::kNone) {
    config.image = BaselineConfig(DefaultLibs());
  } else {
    config.image.backend = backend;
    config.image.compartments = {
        {std::string(kLibNet)},
        {std::string(kLibSched)},
        {std::string(kLibApp), std::string(kLibLibc),
         std::string(kLibAlloc)}};
  }
  Testbed bed(config);
  Machine& machine = bed.machine();

  constexpr uint32_t kMessages = 2000;
  constexpr uint32_t kMsgBytes = 64;

  Result<std::unique_ptr<MsgQueue>> queue =
      MsgQueue::Create(bed.scheduler(), bed.image().shared_allocator(),
                       "pipeline", 8, kMsgBytes, &bed.image());
  FLEXOS_CHECK(queue.ok(), "queue create failed");
  const Gaddr out_buf = bed.AllocShared(kMsgBytes);
  const Gaddr in_buf = bed.AllocShared(kMsgBytes);

  uint64_t checksum = 0;
  bed.SpawnApp("consumer", [&] {
    for (uint32_t i = 0; i < kMessages; ++i) {
      Result<uint32_t> size = (*queue)->Recv(in_buf, kMsgBytes);
      FLEXOS_CHECK(size.ok(), "recv failed");
      checksum +=
          bed.image().SpaceOf(kLibApp).ReadT<uint32_t>(in_buf);
    }
  });
  bed.SpawnApp("producer", [&] {
    for (uint32_t i = 0; i < kMessages; ++i) {
      bed.image().SpaceOf(kLibApp).WriteT<uint32_t>(out_buf, i);
      FLEXOS_CHECK((*queue)->Send(out_buf, kMsgBytes).ok(), "send failed");
    }
  });

  const Status status = bed.Run();
  FLEXOS_CHECK(status.ok(), "run failed: %s", status.ToString().c_str());
  FLEXOS_CHECK(checksum ==
                   static_cast<uint64_t>(kMessages) * (kMessages - 1) / 2,
               "payload corruption");

  const double seconds = machine.clock().NowSeconds();
  const double msgs_per_sec = kMessages / seconds;
  std::printf("%-24s %10.0f kmsg/s   %8llu crossings   %6llu ctx switches\n",
              label, msgs_per_sec / 1e3,
              static_cast<unsigned long long>(
                  bed.image().stats().cross_compartment_calls),
              static_cast<unsigned long long>(
                  bed.scheduler().context_switches()));
  return msgs_per_sec;
}

}  // namespace

int main() {
  std::printf("Message-queue pipeline: 2000 x 64 B messages, producer -> "
              "consumer\n\n");
  RunPipeline(IsolationBackend::kNone, "no isolation");
  RunPipeline(IsolationBackend::kMpkSharedStack, "MPK shared-stack");
  RunPipeline(IsolationBackend::kMpkSwitchedStack, "MPK switched-stack");
  std::printf(
      "\nThe queue itself is shared memory; what costs is the *blocking*:\n"
      "each Send/Recv takes LibC semaphores, and those take scheduler\n"
      "wait queues — compartment crossings either way (Fig. 5's lesson).\n");
  return 0;
}
