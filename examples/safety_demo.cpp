// Safety demo: the protection mechanisms actually enforcing. Four attacks,
// four different FlexOS defenses catching them:
//   1. cross-compartment write          -> MPK protection fault
//   2. heap buffer overflow             -> ASAN-lite redzone
//   3. use-after-free                   -> ASAN-lite quarantine
//   4. jump to a non-exported function  -> CFI check at the gate
//   5. double thread_add                -> verified-scheduler contract
#include <cstdio>

#include "core/image_builder.h"
#include "sched/verified_scheduler.h"

using namespace flexos;

namespace {

void Expect(const char* what, const std::function<void()>& attack) {
  try {
    attack();
    std::printf("  [MISSED] %s was NOT caught\n", what);
  } catch (const TrapException& trap) {
    std::printf("  [caught] %-34s -> %s\n", what,
                trap.info().ToString().c_str());
  }
}

}  // namespace

int main() {
  Machine machine;
  ImageBuilder builder(machine);

  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  config.hardened_libs = {"net"};
  config.cfi_libs = {"sched"};
  config.apis["sched"] = {"thread_add", "thread_rm", "yield"};
  auto image = builder.Build(config).value();
  std::printf("%s\nAttacks:\n", image->Describe().c_str());

  // 1. The app tries to scribble over the network stack's heap.
  const Gaddr net_secret = image->AllocatorOf("net").Allocate(64).value();
  Expect("cross-compartment write", [&] {
    image->Call(kLibPlatform, "app", [&] {
      uint8_t evil = 0x41;
      image->SpaceOf("app").Write(net_secret, &evil, 1);
    });
  });

  // 2. Overflow a hardened-compartment buffer past its redzone.
  const Gaddr buffer = image->AllocatorOf("net").Allocate(32).value();
  Expect("heap buffer overflow (ASAN)", [&] {
    image->Call(kLibPlatform, "net", [&] {
      uint8_t payload[40] = {};
      image->SpaceOf("net").Write(buffer, payload, sizeof(payload));
    });
  });

  // 3. Use a freed allocation (quarantine keeps it poisoned).
  const Gaddr stale = image->AllocatorOf("net").Allocate(32).value();
  FLEXOS_CHECK(image->AllocatorOf("net").Free(stale).ok(), "free failed");
  Expect("use-after-free (ASAN quarantine)", [&] {
    image->Call(kLibPlatform, "net", [&] {
      uint8_t byte = 0;
      image->SpaceOf("net").Read(stale, &byte, 1);
    });
  });

  // 4. Call an entry point the scheduler never exported.
  Expect("CFI: jump past declared API", [&] {
    image->CallNamed("app", "sched", "corrupt_runqueue", [] {});
  });

  // 5. Violate the verified scheduler's thread_add precondition.
  VerifiedScheduler sched(machine);
  Thread* thread = sched.Spawn("victim", [] {}).value();
  Expect("double thread_add (contract)", [&] { (void)sched.Add(thread); });

  std::printf("\nEach attack was stopped by a *different* mechanism — all "
              "selected at image build time.\n");
  return 0;
}
