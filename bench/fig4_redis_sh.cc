// Figure 4 reproduction: Redis throughput under software-hardening
// configurations and the verified scheduler.
//
//   Paper observations: hardening the network stack costs ~1.45x with a
//   single global allocator but only ~1.24x with a dedicated local
//   allocator for the hardened compartment; the verified scheduler stays
//   within 6% of the C scheduler end to end.
#include <cstdio>

#include "bench_util.h"

namespace flexos {
namespace {

constexpr uint64_t kOps = 120;  // Per connection; 8 connections per run.

double Measure(bool harden_net, bool local_allocators, bool verified_sched,
               bool is_get, uint64_t payload) {
  TestbedConfig config;
  config.image = bench::NetOnlyConfig(IsolationBackend::kNone);
  if (harden_net) {
    config.image.hardened_libs = {std::string(kLibNet)};
  }
  config.image.per_compartment_allocators = local_allocators;
  config.verified_scheduler = verified_sched;

  RedisWorkload workload;
  workload.measure_gets = is_get;
  workload.warmup_sets = is_get ? 32 : 0;
  workload.key_space = 32;
  workload.measured_ops = kOps;
  workload.payload_bytes = payload;
  return bench::RunRedisMulti(config, workload, 8).kops;
}

}  // namespace
}  // namespace flexos

int main() {
  using namespace flexos;
  std::printf("# Figure 4: Redis throughput (kreq/s), SH configs and the "
              "verified scheduler\n");
  std::printf("%-8s %-5s %12s %14s %14s %14s\n", "payload", "op", "baseline",
              "SH-global-all", "SH-local-all", "verified-sch");
  for (uint64_t payload : {5ull, 50ull, 500ull}) {
    for (bool is_get : {false, true}) {
      const double baseline =
          Measure(false, true, false, is_get, payload);
      const double sh_global =
          Measure(true, false, false, is_get, payload);
      const double sh_local = Measure(true, true, false, is_get, payload);
      const double verified =
          Measure(false, true, true, is_get, payload);
      std::printf("%-8llu %-5s %12.1f %14.1f %14.1f %14.1f\n",
                  static_cast<unsigned long long>(payload),
                  is_get ? "GET" : "SET", baseline, sh_global, sh_local,
                  verified);
    }
  }

  const double baseline = Measure(false, true, false, false, 50);
  const double sh_global = Measure(true, false, false, false, 50);
  const double sh_local = Measure(true, true, false, false, 50);
  const double verified = Measure(false, true, true, false, 50);
  std::printf("\n# Reproduction checks (50B SET):\n");
  std::printf("  SH(net) w/ global allocator: %.2fx slowdown (paper 1.45x)\n",
              baseline / sh_global);
  std::printf("  SH(net) w/ local allocators: %.2fx slowdown (paper 1.24x)\n",
              baseline / sh_local);
  std::printf("  verified scheduler overhead: %.1f%% (paper <6%%)\n",
              (baseline / verified - 1.0) * 100.0);
  return 0;
}
