// Figure 5 reproduction: Redis throughput under MPK isolation strategies.
//
//   Paper compartmentalizations: {NW | rest} ("NW-only"),
//   {NW | sched | rest} ("NW/Sched/Rest"), {NW+sched | rest}
//   ("NW+Sched/Rest"), each with shared-stack (Sh.) and switched-stack
//   (Sw.) MPK gates, vs. a no-isolation baseline.
//   Expected shape: NW-only ~17% slower; adding the scheduler costs 1.4x
//   (Sh.) / 2.25x (Sw.); merging NW+sched does NOT recover the loss
//   because semaphores live in LibC (another compartment); overheads
//   shrink as the request payload grows.
#include <cstdio>

#include "bench_util.h"

namespace flexos {
namespace {

constexpr uint64_t kOps = 120;  // Per connection; 8 connections per run.

double Measure(const ImageConfig& image, uint64_t payload) {
  TestbedConfig config;
  config.image = image;
  RedisWorkload workload;
  workload.measure_gets = true;
  workload.warmup_sets = 32;
  workload.key_space = 32;
  workload.measured_ops = kOps;
  workload.payload_bytes = payload;
  return bench::RunRedisMulti(config, workload, 8).kops;
}

}  // namespace
}  // namespace flexos

int main() {
  using namespace flexos;
  std::printf("# Figure 5: Redis GET throughput (kreq/s) with MPK "
              "isolation\n");
  std::printf("%-8s %10s | %10s %10s | %10s %10s | %10s %10s\n", "payload",
              "no-isol", "NWonly-Sh", "NWonly-Sw", "NWSR-Sh", "NWSR-Sw",
              "NW+S-Sh", "NW+S-Sw");
  for (uint64_t payload : {5ull, 50ull, 500ull}) {
    const double none =
        Measure(BaselineConfig(DefaultLibs()), payload);
    const double nw_sh = Measure(
        bench::NetOnlyConfig(IsolationBackend::kMpkSharedStack), payload);
    const double nw_sw = Measure(
        bench::NetOnlyConfig(IsolationBackend::kMpkSwitchedStack), payload);
    const double nsr_sh = Measure(
        bench::NetSchedRestConfig(IsolationBackend::kMpkSharedStack),
        payload);
    const double nsr_sw = Measure(
        bench::NetSchedRestConfig(IsolationBackend::kMpkSwitchedStack),
        payload);
    const double merged_sh = Measure(
        bench::NetPlusSchedConfig(IsolationBackend::kMpkSharedStack),
        payload);
    const double merged_sw = Measure(
        bench::NetPlusSchedConfig(IsolationBackend::kMpkSwitchedStack),
        payload);
    std::printf("%-8llu %10.1f | %10.1f %10.1f | %10.1f %10.1f | %10.1f "
                "%10.1f\n",
                static_cast<unsigned long long>(payload), none, nw_sh,
                nw_sw, nsr_sh, nsr_sw, merged_sh, merged_sw);
  }

  std::printf("\n# Reproduction checks (5B GET):\n");
  const double none = Measure(BaselineConfig(DefaultLibs()), 5);
  const double nw_sh =
      Measure(bench::NetOnlyConfig(IsolationBackend::kMpkSharedStack), 5);
  const double nsr_sh = Measure(
      bench::NetSchedRestConfig(IsolationBackend::kMpkSharedStack), 5);
  const double nsr_sw = Measure(
      bench::NetSchedRestConfig(IsolationBackend::kMpkSwitchedStack), 5);
  const double merged_sh = Measure(
      bench::NetPlusSchedConfig(IsolationBackend::kMpkSharedStack), 5);
  std::printf("  NW-only slowdown:        %.0f%% (paper ~17%%)\n",
              (none / nw_sh - 1.0) * 100.0);
  std::printf("  NW/Sched/Rest shared:    %.2fx (paper ~1.4x)\n",
              none / nsr_sh);
  std::printf("  NW/Sched/Rest switched:  %.2fx (paper ~2.25x)\n",
              none / nsr_sw);
  std::printf("  merging NW+Sched helps?  %.2fx vs %.2fx (paper: no "
              "improvement, semaphores live in LibC)\n",
              none / merged_sh, none / nsr_sh);
  return 0;
}
