// §4 microbenchmark reproduction: context-switch latency of the C
// scheduler vs. the verified (contract-checked) scheduler.
//   Paper: 76.6 ns (C) vs 218.6 ns (verified), ~3x.
#include <cstdio>

#include "sched/coop_scheduler.h"
#include "sched/verified_scheduler.h"

namespace flexos {
namespace {

constexpr int kSwitches = 100'000;

double MeasureNsPerSwitch(bool verified) {
  Machine machine;
  std::unique_ptr<CoopScheduler> sched;
  if (verified) {
    sched = std::make_unique<VerifiedScheduler>(machine);
  } else {
    sched = std::make_unique<CoopScheduler>(machine);
  }
  auto ping_pong = [&sched] {
    for (int i = 0; i < kSwitches / 2; ++i) {
      sched->Yield();
    }
  };
  FLEXOS_CHECK(sched->Spawn("ping", ping_pong).ok(), "spawn failed");
  FLEXOS_CHECK(sched->Spawn("pong", ping_pong).ok(), "spawn failed");
  const uint64_t cycles_before = machine.clock().cycles();
  FLEXOS_CHECK(sched->Run().ok(), "run failed");
  const uint64_t cycles = machine.clock().cycles() - cycles_before;
  const uint64_t switches = sched->context_switches();
  return static_cast<double>(cycles) / static_cast<double>(switches) * 1e9 /
         static_cast<double>(machine.clock().freq_hz());
}

}  // namespace
}  // namespace flexos

int main() {
  using namespace flexos;
  const double c_ns = MeasureNsPerSwitch(false);
  const double verified_ns = MeasureNsPerSwitch(true);
  std::printf("# Context-switch latency (paper §4 microbenchmark)\n");
  std::printf("%-24s %10s %10s\n", "scheduler", "ns/switch", "paper");
  std::printf("%-24s %10.1f %10s\n", "C scheduler", c_ns, "76.6");
  std::printf("%-24s %10.1f %10s\n", "verified (contracts)", verified_ns,
              "218.6");
  std::printf("ratio: %.2fx (paper ~2.85x)\n", verified_ns / c_ns);
  return 0;
}
