// Figure 3 reproduction: iperf throughput vs. recv-buffer size for the
// paper's isolation configurations.
//
//   Paper series: KVM baseline, MPK-Sha (KVM), MPK-Sw (KVM), SH (KVM),
//                 Xen baseline, VM RPC (Xen).
//   Expected shape: SH and MPK 2-3x slower at small buffers, converging to
//   the baseline around 1 KiB; the VM backend needs ~32 KiB to catch up;
//   Xen series sit below their KVM counterparts.
#include <cstdio>
#include <cstring>

#include "bench_util.h"

namespace flexos {
namespace {

using bench::NetOnlyConfig;
using bench::RunIperf;

// --smoke shrinks the transfer so CI can exercise the full pipeline in a
// few seconds; the default run is unchanged.
uint64_t g_total_bytes = 4ull << 20;

double Measure(IsolationBackend backend, bool harden_net, bool xen_costs,
               uint64_t recv_buffer) {
  TestbedConfig config;
  if (backend == IsolationBackend::kNone) {
    config.image = BaselineConfig(DefaultLibs());
  } else {
    config.image = NetOnlyConfig(backend);
  }
  if (harden_net) {
    config.image.hardened_libs = {std::string(kLibNet)};
  }
  if (xen_costs) {
    config.costs = bench::XenPlatformCosts();
  }
  return RunIperf(config, g_total_bytes, recv_buffer).gbps;
}

}  // namespace
}  // namespace flexos

int main(int argc, char** argv) {
  using namespace flexos;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  if (smoke) {
    g_total_bytes = 64ull << 10;
  }
  std::printf("# Figure 3: iperf throughput (Gb/s), payload = recv buffer "
              "size\n");
  std::printf("# series: KVM-baseline, MPK-Sha(KVM), MPK-Sw(KVM), SH(KVM), "
              "Xen-baseline, VM-RPC(Xen)\n");
  std::printf("%-10s %12s %12s %12s %12s %12s %12s\n", "buf(B)", "KVM-base",
              "MPK-Sha", "MPK-Sw", "SH", "Xen-base", "VM-RPC");
  const int max_power = smoke ? 10 : 20;
  for (int power = 6; power <= max_power; power += 2) {
    const uint64_t buffer = 1ull << power;
    const double kvm_base =
        Measure(IsolationBackend::kNone, false, false, buffer);
    const double mpk_sha =
        Measure(IsolationBackend::kMpkSharedStack, false, false, buffer);
    const double mpk_sw =
        Measure(IsolationBackend::kMpkSwitchedStack, false, false, buffer);
    const double sh = Measure(IsolationBackend::kNone, true, false, buffer);
    const double xen_base =
        Measure(IsolationBackend::kNone, false, true, buffer);
    const double vm_rpc =
        Measure(IsolationBackend::kVmRpc, false, true, buffer);
    std::printf("%-10llu %12.3f %12.3f %12.3f %12.3f %12.3f %12.3f\n",
                static_cast<unsigned long long>(buffer), kvm_base, mpk_sha,
                mpk_sw, sh, xen_base, vm_rpc);
  }
  if (smoke) {
    return 0;  // Skip the (slow) reproduction checks in smoke mode.
  }
  std::printf("\n# Reproduction checks (paper shape):\n");
  const double base_small =
      Measure(IsolationBackend::kNone, false, false, 64);
  const double mpk_small =
      Measure(IsolationBackend::kMpkSwitchedStack, false, false, 64);
  const double base_big =
      Measure(IsolationBackend::kNone, false, false, 64 * 1024);
  const double mpk_big =
      Measure(IsolationBackend::kMpkSwitchedStack, false, false, 64 * 1024);
  std::printf("  small-buffer MPK slowdown: %.2fx (paper: 2-3x)\n",
              base_small / mpk_small);
  std::printf("  large-buffer MPK slowdown: %.2fx (paper: ~1x)\n",
              base_big / mpk_big);
  return 0;
}
