// Ablation: raw gate round-trip costs per backend vs. argument size — the
// per-crossing prices that drive Fig. 3's crossover behavior.
#include <cstdio>

#include "core/gate.h"
#include "core/mpk_gate.h"
#include "core/vm_gate.h"

namespace flexos {
namespace {

uint64_t MeasureRoundTrip(Gate& gate, Machine& machine,
                          uint64_t arg_bytes) {
  ExecContext target;
  target.compartment = 1;
  target.pkru = Pkru::DenyAll().WithAccess(1, true, true);
  const GateCrossing crossing{.target_context = &target,
                              .arg_bytes = arg_bytes,
                              .ret_bytes = 16};
  const uint64_t before = machine.clock().cycles();
  gate.Cross(machine, crossing, [] {});
  return machine.clock().cycles() - before;
}

}  // namespace
}  // namespace flexos

int main() {
  using namespace flexos;
  Machine machine;
  DirectGate direct;
  MpkSharedStackGate mpk_shared;
  MpkSwitchedStackGate mpk_switched;
  VmRpcGate vm_rpc;

  std::printf("# Gate round-trip cost (cycles) vs. by-value argument size\n");
  std::printf("%-10s %10s %12s %14s %10s\n", "args(B)", "direct",
              "mpk-shared", "mpk-switched", "vm-rpc");
  for (uint64_t args : {0ull, 16ull, 64ull, 256ull, 1024ull, 4096ull}) {
    std::printf("%-10llu %10llu %12llu %14llu %10llu\n",
                static_cast<unsigned long long>(args),
                static_cast<unsigned long long>(
                    MeasureRoundTrip(direct, machine, args)),
                static_cast<unsigned long long>(
                    MeasureRoundTrip(mpk_shared, machine, args)),
                static_cast<unsigned long long>(
                    MeasureRoundTrip(mpk_switched, machine, args)),
                static_cast<unsigned long long>(
                    MeasureRoundTrip(vm_rpc, machine, args)));
  }
  const double ns_per_cycle =
      1e9 / static_cast<double>(machine.clock().freq_hz());
  std::printf("\n# 1 cycle = %.3f ns at %.1f GHz (paper testbed: Xeon "
              "Silver 4110)\n",
              ns_per_cycle,
              static_cast<double>(machine.clock().freq_hz()) / 1e9);
  return 0;
}
