// Ablation: observability overhead on the gate dispatch fast path.
//
// PR 3's deal is that metrics are always on (plain counter bumps through
// route-resolved pointers) and tracing costs one relaxed atomic load when
// disabled; PR 4 adds the request attributor and flexwatch adds windowed
// time-series capture, all under the same contract. This bench verifies
// every half across five variants — observability off, tracing on,
// tracing + cycle profiler on, the full flexwatch stack (windowing + SLO
// watchdogs), and the flexpath critical-path profiler (tracing + attributor
// + an offline CriticalPath::Build after the timed loop):
//   model cyc/call — must be bit-identical across all five variants in
//                    fresh machines: recording, attribution, window
//                    capture, and critical-path reconstruction happen
//                    outside the cost model, so observability can never
//                    perturb a result. Hard-gated in every mode, including
//                    --smoke.
//   wall ns/call   — observability-off dispatch must stay within noise of
//                    the cached-route fast path (abl_gate_dispatch.cc's
//                    "cached" column); traced/profiled/watched runs may
//                    pay the ring write and snapshot bookkeeping. Loosely
//                    gated, full runs only (wall clock is noisy).
// A second hard gate replays the watch variant twice on one backend and
// requires the exported JSON timelines to be byte-identical: window
// closes are driven by virtual time, so same seed means same timeline.
// A third hard gate (critpath variant, enabled builds) requires the
// critical path to reconcile exactly against the gate.latency_ns.*
// histograms AND self-calibrate: every boundary's recorded gate
// nanoseconds must equal crossings x CyclesToNanos(PredictedCrossingCycles)
// for that backend — the profiler's view and the cost model's prediction
// are the same number, not merely close.
// Pass --smoke for a fast CI run with tiny iteration counts.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "core/gate_costs.h"
#include "core/image_builder.h"
#include "obs/critpath.h"
#include "obs/export.h"
#include "obs/timeseries.h"

namespace {

// Window short enough that even --smoke iteration counts close windows on
// every backend (a `none` crossing charges only a handful of cycles).
constexpr uint64_t kWatchWindowCycles = 1000;

// Every window with any gate traffic violates this on purpose, so the
// watchdog evaluation path (measure, compare, count, trace) runs at
// steady state rather than never.
constexpr const char* kWatchdogSpec = "gate.crossings.* value < 1";

}  // namespace

int main(int argc, char** argv) {
  using namespace flexos;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const uint64_t kIters = smoke ? 2000 : 400000;

  std::printf("# Observability overhead ablation: net -> app cached-route "
              "crossing, %llu calls per variant%s\n",
              static_cast<unsigned long long>(kIters),
              smoke ? " (smoke)" : "");
  std::printf("%-14s %10s %10s %10s %10s %10s %12s %14s %9s\n", "backend",
              "obs-off", "trace-on", "profile-on", "watch-on", "critpath",
              "obs-off", "cycles", "wall");
  std::printf("%-14s %10s %10s %10s %10s %10s %12s %14s %9s\n", "",
              "(ns/call)", "(ns/call)", "(ns/call)", "(ns/call)",
              "(ns/call)", "(cyc/call)", "identical?", "ratio");

  bool cycles_ok = true;
  bool watch_ok = true;
  bool critpath_ok = true;
  double max_wall_ratio = 0;
  constexpr IsolationBackend kBackends[] = {
      IsolationBackend::kNone, IsolationBackend::kMpkSharedStack,
      IsolationBackend::kMpkSwitchedStack, IsolationBackend::kVmRpc};
  for (IsolationBackend backend : kBackends) {
    // Five identical machines: one never enables observability (the
    // production default), one traces throughout, one traces and runs the
    // cycle attributor, one adds flexwatch windowing with an SLO watchdog
    // that fires every window, and one runs the flexpath inputs (tracing +
    // attributor) and reconstructs the critical path offline afterwards.
    // Their charged cycles must agree exactly — observability lives
    // outside the cost model. Every variant's measured body polls the
    // time series so the disabled-path cost of the poll itself is part of
    // the obs-off column.
    bench::LoopSample variants[5];
    for (int variant = 0; variant < 5; ++variant) {
      Machine machine;
      machine.tracer().SetEnabled(variant >= 1);
      if (variant >= 2) {
        machine.attrib().SetEnabled(true, machine.clock().cycles());
      }
      if (variant == 3) {
        machine.timeseries().Enable(kWatchWindowCycles);
        obs::SloSpec spec;
        std::string error;
        if (!obs::ParseSloSpec(kWatchdogSpec, &spec, &error)) {
          std::fprintf(stderr, "bad watchdog spec: %s\n", error.c_str());
          return 1;
        }
        machine.timeseries().AddWatchdog(spec);
      }
      ImageBuilder builder(machine);
      auto image = builder.Build(bench::NetOnlyConfig(backend)).value();
      uint64_t sink = 0;
      const auto body = [&sink] { ++sink; };
      const RouteHandle route = image->Resolve(kLibNet, kLibApp);
      for (int i = 0; i < 256; ++i) {
        image->Call(route, body);  // Warm caches before timing.
      }
      variants[variant] = bench::MeasureLoop(machine, kIters, [&] {
        image->Call(route, body);
        machine.PollTimeSeries();
      });
#ifndef FLEXOS_OBS_DISABLED
      if (variant == 3 &&
          (machine.timeseries().windows_captured() == 0 ||
           machine.timeseries().violations_total() == 0)) {
        std::fprintf(stderr,
                     "watch variant captured %llu windows, %llu violations "
                     "(expected both > 0)\n",
                     static_cast<unsigned long long>(
                         machine.timeseries().windows_captured()),
                     static_cast<unsigned long long>(
                         machine.timeseries().violations_total()));
        watch_ok = false;
      }
      if (variant == 4) {
        // Offline critical-path reconstruction: must reconcile exactly
        // against the gate histograms, and every boundary must
        // self-calibrate against the cost model's predicted per-crossing
        // cost (uniform 64/16-byte gate frames on this path).
        machine.SyncAttribution();
        obs::CriticalPath critpath;
        const Clock& clock = machine.clock();
        critpath.Build(
            machine.attrib(), machine.metrics(), machine.tracer().Snapshot(),
            [&clock](uint64_t cycles) { return clock.CyclesToNanos(cycles); },
            machine.costs().ipi);
        if (!critpath.reconciled()) {
          std::fprintf(stderr, "critpath variant (%s): %s\n",
                       std::string(IsolationBackendName(backend)).c_str(),
                       critpath.reconcile_detail().c_str());
          critpath_ok = false;
        }
        const uint64_t predicted_ns = clock.CyclesToNanos(
            PredictedCrossingCycles(machine.costs(), backend, kGateArgBytes,
                                    kGateRetBytes));
        bool any_boundary = false;
        for (const obs::BoundaryShare& share : critpath.boundaries()) {
          any_boundary = true;
          if (share.gate_ns != share.crossings * predicted_ns) {
            std::fprintf(stderr,
                         "critpath variant (%s): boundary %s recorded "
                         "%llu ns over %llu crossings, cost model predicts "
                         "%llu ns/crossing\n",
                         std::string(IsolationBackendName(backend)).c_str(),
                         share.boundary.c_str(),
                         static_cast<unsigned long long>(share.gate_ns),
                         static_cast<unsigned long long>(share.crossings),
                         static_cast<unsigned long long>(predicted_ns));
            critpath_ok = false;
          }
        }
        if (!any_boundary) {
          std::fprintf(stderr,
                       "critpath variant (%s): no gate boundaries found\n",
                       std::string(IsolationBackendName(backend)).c_str());
          critpath_ok = false;
        }
      }
#endif
    }
    const bench::LoopSample& off = variants[0];
    const bench::LoopSample& traced = variants[1];
    const bench::LoopSample& profiled = variants[2];
    const bench::LoopSample& watched = variants[3];
    const bench::LoopSample& critpathed = variants[4];

    const bool identical =
        off.model_cycles_total == traced.model_cycles_total &&
        off.model_cycles_total == profiled.model_cycles_total &&
        off.model_cycles_total == watched.model_cycles_total &&
        off.model_cycles_total == critpathed.model_cycles_total;
    cycles_ok = cycles_ok && identical;
    const double wall_ratio =
        traced.wall_ns > 0 ? off.wall_ns / traced.wall_ns : 0;
    max_wall_ratio = std::max(max_wall_ratio, wall_ratio);
    std::printf("%-14s %10.1f %10.1f %10.1f %10.1f %10.1f %12.1f %14s "
                "%8.2fx\n",
                std::string(IsolationBackendName(backend)).c_str(),
                off.wall_ns, traced.wall_ns, profiled.wall_ns,
                watched.wall_ns, critpathed.wall_ns,
                off.CyclesPerCall(kIters), identical ? "yes" : "NO",
                wall_ratio);
  }

  // Timeline determinism: two fresh machines, same config, same call
  // count, flexwatch on — the exported JSON timelines must match byte for
  // byte. Windows close on virtual-time boundaries and capture modeled
  // counters only, so any divergence means wall-clock state leaked into
  // the window pipeline.
  bool timeline_ok = true;
  {
    const uint64_t kTimelineCalls = smoke ? 1000 : 20000;
    std::string timelines[2];
    for (int run = 0; run < 2; ++run) {
      Machine machine;
      machine.tracer().SetEnabled(true);
      machine.timeseries().Enable(kWatchWindowCycles);
      obs::SloSpec spec;
      std::string error;
      obs::ParseSloSpec(kWatchdogSpec, &spec, &error);
      machine.timeseries().AddWatchdog(spec);
      ImageBuilder builder(machine);
      auto image = builder
                       .Build(bench::NetOnlyConfig(
                           IsolationBackend::kMpkSwitchedStack))
                       .value();
      uint64_t sink = 0;
      const auto body = [&sink] { ++sink; };
      const RouteHandle route = image->Resolve(kLibNet, kLibApp);
      for (uint64_t i = 0; i < kTimelineCalls; ++i) {
        image->Call(route, body);
        machine.PollTimeSeries();
      }
      machine.timeseries().FinalizeTail(machine.max_cycles());
      timelines[run] =
          obs::TimelineToJson(machine.timeseries().Snapshot(),
                              machine.timeseries().window_cycles());
    }
    timeline_ok = !timelines[0].empty() && timelines[0] == timelines[1];
  }

  std::printf("\n# Checks:\n");
  std::printf("  modeled cycles identical with observability off / tracing "
              "on / profiler on / flexwatch on / critpath on: %s "
              "(hard-gated)\n",
              cycles_ok ? "yes" : "NO");
  std::printf("  flexwatch captured windows and watchdog violations: %s "
              "(hard-gated unless built with FLEXOS_OBS_DISABLED)\n",
              watch_ok ? "yes" : "NO");
  std::printf("  critical path reconciled and self-calibrated against the "
              "cost model on every backend: %s (hard-gated unless built "
              "with FLEXOS_OBS_DISABLED)\n",
              critpath_ok ? "yes" : "NO");
  std::printf("  same-seed flexwatch JSON timelines byte-identical: %s "
              "(hard-gated)\n",
              timeline_ok ? "yes" : "NO");
  std::printf("  observability-off dispatch vs tracing-on wall clock: worst "
              "off/on ratio %.2fx (full runs gate <= 1.25x; disabled "
              "tracing must not be slower than enabled)\n",
              max_wall_ratio);
  if (!cycles_ok || !watch_ok || !critpath_ok || !timeline_ok) {
    return 1;
  }
  // Wall-clock gate only on full runs: smoke iteration counts are too
  // short for stable ratios. The disabled path doing meaningfully *more*
  // work than the enabled path would mean the enabled() check is not the
  // first thing on the record path.
  return (smoke || max_wall_ratio <= 1.25) ? 0 : 1;
}
