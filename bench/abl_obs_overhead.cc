// Ablation: observability overhead on the gate dispatch fast path.
//
// PR 3's deal is that metrics are always on (plain counter bumps through
// route-resolved pointers) and tracing costs one relaxed atomic load when
// disabled. This bench verifies both halves:
//   model cyc/call — must be bit-identical with tracing on, off, and in a
//                    fresh machine: recording happens outside the cost
//                    model, so observability can never perturb a result.
//                    Hard-gated in every mode, including --smoke.
//   wall ns/call   — tracing-off dispatch must stay within noise of the
//                    cached-route fast path (abl_gate_dispatch.cc's
//                    "cached" column); tracing-on may pay the ring write.
//                    Loosely gated, full runs only (wall clock is noisy).
// Pass --smoke for a fast CI run with tiny iteration counts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "core/image_builder.h"

namespace flexos {
namespace {

struct Sample {
  double wall_ns = 0;
  uint64_t model_cycles_total = 0;
};

const char* BackendName(IsolationBackend backend) {
  switch (backend) {
    case IsolationBackend::kNone:
      return "none";
    case IsolationBackend::kMpkSharedStack:
      return "mpk-shared";
    case IsolationBackend::kMpkSwitchedStack:
      return "mpk-switched";
    case IsolationBackend::kVmRpc:
      return "vm-rpc";
  }
  return "?";
}

ImageConfig TwoCompartments(IsolationBackend backend) {
  ImageConfig config;
  config.backend = backend;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  return config;
}

// Best-of-3 wall time (least noise-polluted); total charged cycles from the
// last repetition (deterministic, any repetition serves).
template <typename Fn>
Sample MeasureLoop(Machine& machine, uint64_t iters, Fn&& fn) {
  Sample best;
  for (int rep = 0; rep < 3; ++rep) {
    const uint64_t cycles_before = machine.clock().cycles();
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < iters; ++i) {
      fn();
    }
    const auto stop = std::chrono::steady_clock::now();
    const uint64_t cycles_after = machine.clock().cycles();
    const double wall_ns =
        std::chrono::duration<double, std::nano>(stop - start).count() /
        static_cast<double>(iters);
    if (rep == 0 || wall_ns < best.wall_ns) {
      best.wall_ns = wall_ns;
    }
    best.model_cycles_total = cycles_after - cycles_before;
  }
  return best;
}

}  // namespace
}  // namespace flexos

int main(int argc, char** argv) {
  using namespace flexos;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const uint64_t kIters = smoke ? 2000 : 400000;

  std::printf("# Observability overhead ablation: net -> app cached-route "
              "crossing, %llu calls per variant%s\n",
              static_cast<unsigned long long>(kIters),
              smoke ? " (smoke)" : "");
  std::printf("%-14s %12s %12s %12s %14s %9s\n", "backend", "trace-off",
              "trace-on", "trace-off", "cycles", "wall");
  std::printf("%-14s %12s %12s %12s %14s %9s\n", "", "(ns/call)",
              "(ns/call)", "(cyc/call)", "identical?", "ratio");

  bool cycles_ok = true;
  double max_wall_ratio = 0;
  constexpr IsolationBackend kBackends[] = {
      IsolationBackend::kNone, IsolationBackend::kMpkSharedStack,
      IsolationBackend::kMpkSwitchedStack, IsolationBackend::kVmRpc};
  for (IsolationBackend backend : kBackends) {
    // Two identical machines: one never enables tracing (the production
    // default), one traces throughout. Their charged cycles must agree
    // exactly — observability lives outside the cost model.
    Sample off, on;
    for (int traced = 0; traced < 2; ++traced) {
      Machine machine;
      machine.tracer().SetEnabled(traced != 0);
      ImageBuilder builder(machine);
      auto image = builder.Build(TwoCompartments(backend)).value();
      uint64_t sink = 0;
      const auto body = [&sink] { ++sink; };
      const RouteHandle route = image->Resolve(kLibNet, kLibApp);
      for (int i = 0; i < 256; ++i) {
        image->Call(route, body);  // Warm caches before timing.
      }
      const Sample sample =
          MeasureLoop(machine, kIters, [&] { image->Call(route, body); });
      (traced != 0 ? on : off) = sample;
    }

    const bool identical = off.model_cycles_total == on.model_cycles_total;
    cycles_ok = cycles_ok && identical;
    const double wall_ratio = on.wall_ns > 0 ? off.wall_ns / on.wall_ns : 0;
    max_wall_ratio = std::max(max_wall_ratio, wall_ratio);
    std::printf("%-14s %12.1f %12.1f %12.1f %14s %8.2fx\n",
                BackendName(backend), off.wall_ns, on.wall_ns,
                static_cast<double>(off.model_cycles_total) /
                    static_cast<double>(kIters),
                identical ? "yes" : "NO", wall_ratio);
  }

  std::printf("\n# Checks:\n");
  std::printf("  modeled cycles identical with tracing on/off: %s "
              "(hard-gated)\n",
              cycles_ok ? "yes" : "NO");
  std::printf("  tracing-off dispatch vs tracing-on wall clock: worst "
              "off/on ratio %.2fx (full runs gate <= 1.25x; disabled "
              "tracing must not be slower than enabled)\n",
              max_wall_ratio);
  if (!cycles_ok) {
    return 1;
  }
  // Wall-clock gate only on full runs: smoke iteration counts are too
  // short for stable ratios. The disabled path doing meaningfully *more*
  // work than the enabled path would mean the enabled() check is not the
  // first thing on the record path.
  return (smoke || max_wall_ratio <= 1.25) ? 0 : 1;
}
