// Ablation: observability overhead on the gate dispatch fast path.
//
// PR 3's deal is that metrics are always on (plain counter bumps through
// route-resolved pointers) and tracing costs one relaxed atomic load when
// disabled; PR 4 adds the request attributor under the same contract. This
// bench verifies both halves across three variants — observability off,
// tracing on, and tracing + cycle profiler on:
//   model cyc/call — must be bit-identical across all three variants in
//                    fresh machines: recording and attribution happen
//                    outside the cost model, so observability can never
//                    perturb a result. Hard-gated in every mode,
//                    including --smoke.
//   wall ns/call   — observability-off dispatch must stay within noise of
//                    the cached-route fast path (abl_gate_dispatch.cc's
//                    "cached" column); traced/profiled runs may pay the
//                    ring write and frame bookkeeping. Loosely gated, full
//                    runs only (wall clock is noisy).
// Pass --smoke for a fast CI run with tiny iteration counts.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "core/image_builder.h"

int main(int argc, char** argv) {
  using namespace flexos;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const uint64_t kIters = smoke ? 2000 : 400000;

  std::printf("# Observability overhead ablation: net -> app cached-route "
              "crossing, %llu calls per variant%s\n",
              static_cast<unsigned long long>(kIters),
              smoke ? " (smoke)" : "");
  std::printf("%-14s %12s %12s %12s %12s %14s %9s\n", "backend", "obs-off",
              "trace-on", "profile-on", "obs-off", "cycles", "wall");
  std::printf("%-14s %12s %12s %12s %12s %14s %9s\n", "", "(ns/call)",
              "(ns/call)", "(ns/call)", "(cyc/call)", "identical?", "ratio");

  bool cycles_ok = true;
  double max_wall_ratio = 0;
  constexpr IsolationBackend kBackends[] = {
      IsolationBackend::kNone, IsolationBackend::kMpkSharedStack,
      IsolationBackend::kMpkSwitchedStack, IsolationBackend::kVmRpc};
  for (IsolationBackend backend : kBackends) {
    // Three identical machines: one never enables observability (the
    // production default), one traces throughout, one traces and runs the
    // cycle attributor. Their charged cycles must agree exactly —
    // observability lives outside the cost model.
    bench::LoopSample variants[3];
    for (int variant = 0; variant < 3; ++variant) {
      Machine machine;
      machine.tracer().SetEnabled(variant >= 1);
      if (variant >= 2) {
        machine.attrib().SetEnabled(true, machine.clock().cycles());
      }
      ImageBuilder builder(machine);
      auto image = builder.Build(bench::NetOnlyConfig(backend)).value();
      uint64_t sink = 0;
      const auto body = [&sink] { ++sink; };
      const RouteHandle route = image->Resolve(kLibNet, kLibApp);
      for (int i = 0; i < 256; ++i) {
        image->Call(route, body);  // Warm caches before timing.
      }
      variants[variant] = bench::MeasureLoop(
          machine, kIters, [&] { image->Call(route, body); });
    }
    const bench::LoopSample& off = variants[0];
    const bench::LoopSample& traced = variants[1];
    const bench::LoopSample& profiled = variants[2];

    const bool identical =
        off.model_cycles_total == traced.model_cycles_total &&
        off.model_cycles_total == profiled.model_cycles_total;
    cycles_ok = cycles_ok && identical;
    const double wall_ratio =
        traced.wall_ns > 0 ? off.wall_ns / traced.wall_ns : 0;
    max_wall_ratio = std::max(max_wall_ratio, wall_ratio);
    std::printf("%-14s %12.1f %12.1f %12.1f %12.1f %14s %8.2fx\n",
                std::string(IsolationBackendName(backend)).c_str(),
                off.wall_ns, traced.wall_ns, profiled.wall_ns,
                off.CyclesPerCall(kIters), identical ? "yes" : "NO",
                wall_ratio);
  }

  std::printf("\n# Checks:\n");
  std::printf("  modeled cycles identical with observability off / tracing "
              "on / profiler on: %s (hard-gated)\n",
              cycles_ok ? "yes" : "NO");
  std::printf("  observability-off dispatch vs tracing-on wall clock: worst "
              "off/on ratio %.2fx (full runs gate <= 1.25x; disabled "
              "tracing must not be slower than enabled)\n",
              max_wall_ratio);
  if (!cycles_ok) {
    return 1;
  }
  // Wall-clock gate only on full runs: smoke iteration counts are too
  // short for stable ratios. The disabled path doing meaningfully *more*
  // work than the enabled path would mean the enabled() check is not the
  // first thing on the record path.
  return (smoke || max_wall_ratio <= 1.25) ? 0 : 1;
}
