// Ablation: fault injection, containment, and crash recovery (flexfault).
//
// Three phases, all modeled (deterministic):
//   soak  — a redis SET testbed under a chaos plan mixing three fault
//           kinds: MPK protection faults at the gate into the net
//           compartment (trap-class, contained + restarted), one heap
//           corruption inside the app compartment (trap-class, contained;
//           the connection dies, the server survives), and NIC packet
//           drops/delays (absorb-class, recovered by TCP retransmission).
//           The whole phase runs twice with the same seed; the injector's
//           event logs must be element-wise identical, and the metrics
//           must reconcile (injected == trapped + dropped).
//   iperf — a bulk transfer under NIC-only chaos; every byte must still
//           arrive (TCP reliability absorbs the loss model).
//   ident — supervision compiled in + an empty plan must be modeled-cycle
//           bit-identical to an unsupervised run (hard gate, like
//           abl_obs_overhead: the fault layer may cost nothing when quiet).
// Pass --smoke for a fast CI-sized run.
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fault/fault.h"

namespace flexos {
namespace {

struct SoakOutcome {
  ErrorCode run_status = ErrorCode::kOk;
  uint64_t completed_ops = 0;
  uint64_t server_commands = 0;
  uint64_t contained_faults = 0;
  uint64_t unavailable_errors = 0;
  uint64_t injected = 0;
  uint64_t trapped = 0;
  uint64_t dropped = 0;
  int net_restarts = 0;
  int app_restarts = 0;
  uint64_t leak_bytes = UINT64_MAX;  // App-heap bytes after crash recovery.
  double max_recovery_ms = 0;
  uint64_t final_cycles = 0;
  bool any_failed = false;  // Some compartment exhausted its budget.
  std::vector<fault::InjectionEvent> events;
};

fault::FaultPlan ChaosPlan() {
  fault::FaultPlan plan;
  plan.seed = 2026;
  // Gate protection faults crossing into the net compartment (comp 0 in
  // NetOnlyConfig). Trap-class: contained by the supervisor, the handler's
  // retry loop rides out the quarantine, the compartment restarts.
  fault::FaultRule gate;
  gate.site = fault::FaultSite::kGateCross;
  gate.kind = fault::FaultKind::kProtectionFault;
  gate.compartment = 0;
  gate.after = 60;
  gate.every = 200;
  gate.count = 3;
  // One heap corruption in the app compartment (comp 1): the redis SET
  // path allocates from the app heap inside a supervised handler thread.
  fault::FaultRule heap;
  heap.site = fault::FaultSite::kAlloc;
  heap.kind = fault::FaultKind::kHeapCorruption;
  heap.compartment = 1;
  heap.after = 150;
  heap.count = 1;
  // NIC chaos: seeded-probabilistic drops plus fixed delays (absorb-class).
  fault::FaultRule drop;
  drop.site = fault::FaultSite::kNicTx;
  drop.kind = fault::FaultKind::kPacketDrop;
  drop.every = 3;
  drop.count = 40;
  drop.probability = 0.25;
  fault::FaultRule delay;
  delay.site = fault::FaultSite::kNicRx;
  delay.kind = fault::FaultKind::kPacketDelay;
  delay.every = 11;
  delay.count = 25;
  delay.arg = 200'000;  // 200 us.
  plan.rules = {gate, heap, drop, delay};
  return plan;
}

SoakOutcome RunSoak(uint64_t ops_per_conn) {
  constexpr int kConns = 4;
  TestbedConfig config;
  config.image = bench::NetOnlyConfig(IsolationBackend::kMpkSharedStack);
  config.supervise = true;
  config.restart_policy.backoff_ns = 2'000'000;
  config.restart_policy.backoff_multiplier = 2.0;
  config.restart_policy.restart_budget = 4;
  // The net compartment's heap holds live TCP connection rings: restart it
  // in place (reset_heap=false). The app compartment gets the full
  // treatment — wholesale heap reset plus the redis store-clear hook.
  config.restart_policy.reset_heap = false;
  config.fault_plan = ChaosPlan();

  Testbed bed(config);
  const int net_comp = bed.image().CompartmentOf(kLibNet);
  const int app_comp = bed.image().CompartmentOf(kLibApp);
  fault::RestartPolicy app_policy = config.restart_policy;
  app_policy.reset_heap = true;
  bed.supervisor()->SetPolicy(app_comp, app_policy);

  RedisServerResult server_result;
  RedisServerOptions options;
  options.max_conns = kConns;
  SpawnRedisServer(bed, options, &server_result);

  RedisWorkload workload;
  workload.measure_gets = false;  // SET-heavy: every op hits the app heap.
  workload.measured_ops = ops_per_conn;
  workload.key_space = 16;
  workload.payload_bytes = 32;

  RemoteHub hub(bed.link());
  std::vector<std::unique_ptr<RedisRemoteClient>> clients;
  std::vector<std::unique_ptr<RemoteTcpPeer>> peers;
  for (int i = 0; i < kConns; ++i) {
    RedisWorkload per_client = workload;
    per_client.key_prefix = StrFormat("k%d", i);
    clients.push_back(
        std::make_unique<RedisRemoteClient>(bed.machine(), per_client));
    RemoteTcpConfig peer_config;
    peer_config.server_port = options.port;
    peer_config.local_port = static_cast<Port>(41000 + i);
    peers.push_back(std::make_unique<RemoteTcpPeer>(
        bed.machine(), bed.link(), peer_config, *clients.back(),
        /*attach=*/false));
    hub.Register(peers.back().get());
    bed.AddPeer(peers.back().get());
    peers.back()->Connect();
  }

  SoakOutcome out;
  out.run_status = bed.Run().code();

  // Crash recovery epilogue: the corrupted app compartment sits in
  // quarantine (no platform->app crossing re-admitted it mid-run). Jump
  // past the backoff window and knock: the supervisor must restart it —
  // heap reset, store-clear hook — and the reset must reclaim every byte
  // the crashed compartment leaked.
  fault::CompartmentSupervisor& sup = *bed.supervisor();
  if (sup.health(app_comp) == fault::CompartmentHealth::kQuarantined) {
    const uint64_t deadline = sup.NextRestartCycles();
    if (deadline != fault::CompartmentSupervisor::kNoRestartPending &&
        deadline > bed.machine().clock().cycles()) {
      bed.machine().clock().AdvanceTo(deadline);
    }
    (void)bed.image().TryCall(bed.image().Resolve(kLibPlatform, kLibApp),
                              [] {});
  }
  if (sup.health(app_comp) == fault::CompartmentHealth::kHealthy) {
    out.leak_bytes = bed.image().AllocatorOf(kLibApp).stats().bytes_in_use;
  }

  for (const auto& client : clients) {
    out.completed_ops += client->measured_completed();
  }
  out.server_commands = server_result.commands;
  out.contained_faults = server_result.contained_faults;
  out.unavailable_errors = server_result.unavailable_errors;
  out.injected = bed.machine().injector().injected();
  out.trapped = sup.trapped();
  out.dropped = bed.machine().injector().dropped();
  out.net_restarts = sup.restarts(net_comp);
  out.app_restarts = sup.restarts(app_comp);
  out.any_failed =
      sup.health(net_comp) == fault::CompartmentHealth::kFailed ||
      sup.health(app_comp) == fault::CompartmentHealth::kFailed;
  for (const fault::RecoveryEpisode& ep : sup.episodes()) {
    if (ep.restart_number > 0 && ep.restart_cycles > ep.trap_cycles) {
      const double ms =
          static_cast<double>(ep.restart_cycles - ep.trap_cycles) /
          static_cast<double>(bed.machine().clock().freq_hz()) * 1e3;
      if (ms > out.max_recovery_ms) {
        out.max_recovery_ms = ms;
      }
    }
  }
  out.final_cycles = bed.machine().clock().cycles();
  out.events = bed.machine().injector().events();
  return out;
}

struct IdentPoint {
  double kops = 0;
  uint64_t cycles = 0;
};

IdentPoint RunIdent(bool supervise, uint64_t ops) {
  TestbedConfig config;
  config.image = bench::NetOnlyConfig(IsolationBackend::kMpkSharedStack);
  config.supervise = supervise;  // Empty plan either way.

  Testbed bed(config);
  RedisServerResult server_result;
  SpawnRedisServer(bed, RedisServerOptions{}, &server_result);

  RedisWorkload workload;
  workload.measure_gets = true;
  workload.warmup_sets = 16;
  workload.key_space = 8;
  workload.measured_ops = ops;
  workload.payload_bytes = 16;
  RedisRemoteClient client(bed.machine(), workload);
  RemoteTcpConfig peer_config;
  peer_config.server_port = 6379;
  RemoteTcpPeer peer(bed.machine(), bed.link(), peer_config, client);
  bed.AddPeer(&peer);
  peer.Connect();

  IdentPoint point;
  const Status status = bed.Run();
  if (!status.ok() || client.measured_completed() != workload.measured_ops) {
    std::fprintf(stderr, "WARNING: ident run incomplete (%s)\n",
                 status.ToString().c_str());
  }
  point.kops = client.MeasuredOpsPerSec() / 1e3;
  point.cycles = bed.machine().clock().cycles();
  return point;
}

}  // namespace
}  // namespace flexos

int main(int argc, char** argv) {
  using namespace flexos;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const uint64_t kSoakOps = smoke ? 80 : 250;     // Per connection, 4 conns.
  const uint64_t kIperfBytes = smoke ? 200'000 : 2'000'000;
  const uint64_t kIdentOps = smoke ? 40 : 120;

  std::printf("# Fault-recovery ablation: chaos soak + NIC chaos + "
              "empty-plan bit-identity%s\n",
              smoke ? " (smoke)" : "");

  // --- Phase 1: redis chaos soak, twice with the same seed ----------------
  const SoakOutcome first = RunSoak(kSoakOps);
  const SoakOutcome second = RunSoak(kSoakOps);

  const bool replay_identical =
      first.events.size() == second.events.size() &&
      std::equal(first.events.begin(), first.events.end(),
                 second.events.begin()) &&
      first.final_cycles == second.final_cycles &&
      first.completed_ops == second.completed_ops &&
      first.run_status == second.run_status;

  std::set<fault::FaultKind> kinds;
  for (const fault::InjectionEvent& event : first.events) {
    kinds.insert(event.kind);
  }
  const bool three_kinds =
      kinds.count(fault::FaultKind::kProtectionFault) != 0 &&
      kinds.count(fault::FaultKind::kHeapCorruption) != 0 &&
      kinds.count(fault::FaultKind::kPacketDrop) != 0;

  const uint64_t total_ops = kSoakOps * 4;
  const bool served = first.completed_ops * 2 >= total_ops &&
                      first.server_commands > 0;
  const bool reconciled =
      first.injected > 0 && first.injected == first.trapped + first.dropped;
  const bool recovered = !first.any_failed && first.net_restarts >= 1 &&
                         first.app_restarts >= 1 && first.leak_bytes == 0 &&
                         first.run_status != ErrorCode::kBadState;
  // Recovery-time invariant: worst trap-to-restart latency stays under a
  // virtual-time bound. The bound covers the full escalated backoff ladder
  // plus the soak's lazy re-admission tail; blowing it means a quarantine
  // was never re-admitted (a livelock, not a policy artifact).
  constexpr double kRecoveryBoundMs = 1000.0;
  const bool timely = first.max_recovery_ms > 0 &&
                      first.max_recovery_ms <= kRecoveryBoundMs;

  std::printf("\n%-6s %10s %10s %9s %9s %9s %8s %8s %6s %12s\n", "phase",
              "completed", "commands", "injected", "trapped", "dropped",
              "net-rst", "app-rst", "leakB", "recovery-ms");
  std::printf("%-6s %10llu %10llu %9llu %9llu %9llu %8d %8d %6llu %12.3f\n",
              "soak",
              static_cast<unsigned long long>(first.completed_ops),
              static_cast<unsigned long long>(first.server_commands),
              static_cast<unsigned long long>(first.injected),
              static_cast<unsigned long long>(first.trapped),
              static_cast<unsigned long long>(first.dropped),
              first.net_restarts, first.app_restarts,
              static_cast<unsigned long long>(first.leak_bytes),
              first.max_recovery_ms);

  // --- Phase 2: iperf under NIC-only chaos --------------------------------
  TestbedConfig iperf_config;
  iperf_config.image =
      bench::NetOnlyConfig(IsolationBackend::kMpkSharedStack);
  fault::FaultPlan nic_plan;
  nic_plan.seed = 99;
  fault::FaultRule drop;
  drop.site = fault::FaultSite::kNicTx;
  drop.kind = fault::FaultKind::kPacketDrop;
  drop.every = 2;
  drop.count = 30;
  drop.probability = 0.1;
  fault::FaultRule delay;
  delay.site = fault::FaultSite::kNicRx;
  delay.kind = fault::FaultKind::kPacketDelay;
  delay.every = 9;
  delay.count = 30;
  delay.arg = 150'000;
  fault::FaultRule corrupt;
  corrupt.site = fault::FaultSite::kNicTx;
  corrupt.kind = fault::FaultKind::kPacketCorrupt;
  corrupt.every = 50;
  corrupt.count = 5;
  corrupt.arg = 3;
  nic_plan.rules = {drop, delay, corrupt};
  iperf_config.fault_plan = nic_plan;
  const bench::IperfPoint iperf =
      bench::RunIperf(iperf_config, kIperfBytes, 16384);
  // Injector totals for the iperf machine are not visible here (RunIperf
  // owns the testbed), so the gate is the workload invariant itself: every
  // byte arrived despite drops, delays, and payload corruption.
  std::printf("%-6s %10.3f %10llu\n", "iperf", iperf.gbps,
              static_cast<unsigned long long>(iperf.bytes));

  // --- Phase 3: empty plan + supervision must cost zero modeled cycles ----
  const IdentPoint base = RunIdent(/*supervise=*/false, kIdentOps);
  const IdentPoint supervised = RunIdent(/*supervise=*/true, kIdentOps);
  const bool ident =
      base.cycles == supervised.cycles && base.kops == supervised.kops;
  std::printf("%-6s %12.3f %12.3f\n", "ident", base.kops, supervised.kops);

  std::printf("\n# Checks:\n");
  std::printf("  same seed, same plan -> identical event log + final "
              "cycles: %s (hard-gated)\n",
              replay_identical ? "yes" : "NO");
  std::printf("  >= 3 fault kinds injected (protection fault, heap "
              "corruption, packet drop): %s\n",
              three_kinds ? "yes" : "NO");
  std::printf("  image kept serving under chaos (>= 50%% of %llu ops, "
              "no fatal trap): %s\n",
              static_cast<unsigned long long>(total_ops),
              served ? "yes" : "NO");
  std::printf("  metrics reconcile (injected == trapped + dropped): %s\n",
              reconciled ? "yes" : "NO");
  std::printf("  compartments restarted within budget, zero leaked bytes "
              "after app heap reset: %s\n",
              recovered ? "yes" : "NO");
  std::printf("  worst trap-to-restart latency %.3f ms within %.0f ms "
              "bound: %s\n",
              first.max_recovery_ms, kRecoveryBoundMs, timely ? "yes" : "NO");
  std::printf("  iperf complete under NIC chaos: %s\n",
              iperf.ok ? "yes" : "NO");
  std::printf("  supervision + empty plan bit-identical to unsupervised "
              "run: %s (hard-gated)\n",
              ident ? "yes" : "NO");

  const bool pass = replay_identical && three_kinds && served &&
                    reconciled && recovered && timely && iperf.ok && ident;
  return pass ? 0 : 1;
}
