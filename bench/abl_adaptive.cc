// Ablation: runtime-adaptive isolation (flexadapt, DESIGN.md §16).
//
// A three-phase shifting workload over the paper's basic two-compartment
// split ({net} | {rest}), app -> net crossings driven directly:
//   chatty  — small bodies (300 cyc) behind every crossing: gate cost
//             dominates the window, so the engine should demote the
//             boundary one rung (mpk-switched -> mpk-shared) and then have
//             its follow-up proposal (mpk-shared -> none) vetoed by the
//             lint gate (net and the app/alloc group may not share trust).
//   compute — large bodies (120k cyc): gate share collapses below the
//             demote threshold, so hysteresis must hold the placement.
//   fault   — medium bodies (2k cyc) plus one injected protection fault at
//             the gate into net: the supervisor contains it and the trap
//             observer must promote the boundary back up
//             (mpk-shared -> mpk-switched), paying the isolation premium
//             for the rest of the phase.
// The same workload (and the same fault plan) runs under three static
// placements — mpk-shared, mpk-switched, vm-rpc — and under the adaptive
// engine starting from mpk-switched. `none` is deliberately not a static
// contender: it is not a legal placement for this pair (exactly why the
// engine vetoes it), so it cannot serve as the comparison floor.
//
// Hard gates:
//   * replay      — the adaptive run executes twice; the flexos-adapt-v1
//                   decision logs must be byte-identical and the per-phase
//                   modeled cycles must match exactly.
//   * tracking    — per phase, adaptive cycles <= 1.10x the best static
//                   and strictly below the worst static.
//   * veto safety — at least one veto is recorded and none is applied.
//   * reconcile   — every realized decision's per-crossing cost matches
//                   the model's prediction within the documented 1 ns
//                   rounding bound (adapt.h).
// Pass --smoke for a fast CI-sized run.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "adapt/adapt.h"
#include "bench_util.h"
#include "core/gate_costs.h"
#include "fault/fault.h"
#include "fault/supervisor.h"

namespace flexos {
namespace {

// Per-op compute charged inside the net compartment, per phase.
constexpr uint64_t kChattyCompute = 300;
constexpr uint64_t kBulkCompute = 120'000;
constexpr uint64_t kFaultCompute = 2'000;

struct PhaseOps {
  uint64_t chatty = 0;
  uint64_t compute = 0;
  uint64_t faulty = 0;
};

struct RunOutcome {
  bool ok = true;
  uint64_t phase_cycles[3] = {0, 0, 0};
  uint64_t total_cycles = 0;
  uint64_t trapped = 0;
  // Adaptive runs only.
  std::string decision_json;
  uint64_t windows = 0;
  uint64_t promotions = 0;
  uint64_t demotions = 0;
  uint64_t vetoes = 0;
  uint64_t flaps = 0;
  bool veto_applied = false;
  bool any_realized = false;
  bool reconcile_ok = true;
};

RunOutcome RunConfig(bool adaptive, IsolationBackend backend,
                     const PhaseOps& ops, uint64_t window_cycles) {
  Machine machine;
  ImageConfig config = bench::NetOnlyConfig(backend);
  if (adaptive) {
    config.adapt.enabled = true;
    config.adapt.cooldown_windows = 2;
    config.adapt.min_crossings = 32;
    config.adapt.demote_share = 0.25;
    config.adapt.min_delta_frac = 0.10;
    // NetOnlyConfig order: {net} = c0, {app, sched, libc, alloc} = c1.
    // Bless the demotion floor for the exercised boundary, plus a
    // deliberately illegal trusted-call row the lint gate must veto.
    config.adapt.allow.push_back(
        {/*from=*/1, /*to=*/0, IsolationBackend::kMpkSharedStack});
    config.adapt.allow.push_back(
        {/*from=*/1, /*to=*/0, IsolationBackend::kNone});
  }
  ImageBuilder builder(machine);
  auto image = builder.Build(config).value();
  const int net_comp = image->CompartmentOf(kLibNet);

  fault::RestartPolicy policy;
  policy.backoff_ns = 2'000'000;
  fault::CompartmentSupervisor supervisor(*image, policy);
  image->SetFaultHandler(&supervisor);

  // One protection fault at the gate into net, landing ~10% into the fault
  // phase (`after` is the 1-based crossing index; the chatty and compute
  // phases cross once per op).
  fault::FaultPlan plan;
  fault::FaultRule rule;
  rule.site = fault::FaultSite::kGateCross;
  rule.kind = fault::FaultKind::kProtectionFault;
  rule.compartment = net_comp;
  rule.after = ops.chatty + ops.compute + ops.faulty / 10;
  rule.count = 1;
  plan.rules = {rule};
  machine.injector().LoadPlan(plan);

  std::unique_ptr<adapt::AdaptiveIsolationEngine> engine;
  if (adaptive) {
    machine.timeseries().Enable(window_cycles);
    engine =
        std::make_unique<adapt::AdaptiveIsolationEngine>(*image, config.adapt);
    machine.timeseries().SetWindowHook(
        [&engine](const obs::WindowSnapshot& snapshot) {
          engine->OnWindow(snapshot);
        });
    supervisor.SetTrapObserver([&engine](int from_comp, int to_comp) {
      engine->OnContainedTrap(from_comp, to_comp);
    });
  }

  RunOutcome out;
  const RouteHandle route = image->Resolve(kLibApp, kLibNet);
  const auto run_phase = [&](uint64_t n, uint64_t compute) {
    const uint64_t start = machine.clock().cycles();
    uint64_t done = 0;
    uint64_t attempts = 0;
    while (done < n && attempts < n * 8 + 64) {
      ++attempts;
      const Status status = image->TryCall(
          route, [&machine, compute] { machine.ChargeCompute(compute); });
      machine.PollTimeSeries();
      if (status.ok()) {
        ++done;
        continue;
      }
      // Contained trap or quarantine refusal: jump virtual time across the
      // backoff window so the lazy restart can re-admit the next call.
      const uint64_t deadline = supervisor.NextRestartCycles();
      if (deadline != fault::CompartmentSupervisor::kNoRestartPending &&
          deadline > machine.clock().cycles()) {
        machine.clock().AdvanceTo(deadline);
        machine.PollTimeSeries();
      }
      if (supervisor.health(net_comp) == fault::CompartmentHealth::kFailed) {
        break;
      }
    }
    if (done != n) {
      out.ok = false;
    }
    return machine.clock().cycles() - start;
  };
  out.phase_cycles[0] = run_phase(ops.chatty, kChattyCompute);
  out.phase_cycles[1] = run_phase(ops.compute, kBulkCompute);
  out.phase_cycles[2] = run_phase(ops.faulty, kFaultCompute);
  out.total_cycles = machine.clock().cycles();
  out.trapped = supervisor.trapped();
  if (out.trapped != 1) {
    out.ok = false;  // The plan injects exactly one trap, in every config.
  }

  if (adaptive) {
    machine.timeseries().FinalizeTail(machine.max_cycles());
    out.decision_json = engine->ToJson();
    out.windows = machine.timeseries().windows_captured();
    out.promotions = engine->promotions();
    out.demotions = engine->demotions();
    out.vetoes = engine->vetoes();
    out.flaps = engine->flaps();
    for (const adapt::AdaptDecision& d : engine->decisions()) {
      if (d.kind == adapt::DecisionKind::kVeto && d.applied) {
        out.veto_applied = true;
      }
      if (d.realized) {
        out.any_realized = true;
        const int64_t diff =
            static_cast<int64_t>(d.realized_new_per_cross_ns) -
            static_cast<int64_t>(d.predicted_new_per_cross_ns);
        if (diff > 1 || diff < -1) {
          out.reconcile_ok = false;
        }
      }
    }
  }
  return out;
}

uint64_t Fnv1a(const std::string& data) {
  uint64_t hash = 1469598103934665603ULL;
  for (const char c : data) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

void PrintRow(const char* label, const RunOutcome& out) {
  std::printf("%-13s %14llu %14llu %14llu %14llu\n", label,
              static_cast<unsigned long long>(out.phase_cycles[0]),
              static_cast<unsigned long long>(out.phase_cycles[1]),
              static_cast<unsigned long long>(out.phase_cycles[2]),
              static_cast<unsigned long long>(out.total_cycles));
}

}  // namespace
}  // namespace flexos

int main(int argc, char** argv) {
  using namespace flexos;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  PhaseOps ops;
  ops.chatty = smoke ? 600 : 4000;
  ops.compute = smoke ? 60 : 400;
  ops.faulty = smoke ? 300 : 2000;
  // Short enough that the chatty phase closes windows with well over
  // min_crossings crossings each, even in smoke.
  const uint64_t kWindowCycles = smoke ? 40'000 : 200'000;

  std::printf("# Adaptive-isolation ablation: chatty -> compute -> fault "
              "phases, static placements vs flexadapt%s\n",
              smoke ? " (smoke)" : "");
  std::printf("%-13s %14s %14s %14s %14s\n", "config", "chatty-cyc",
              "compute-cyc", "fault-cyc", "total-cyc");

  constexpr IsolationBackend kStatics[] = {IsolationBackend::kMpkSharedStack,
                                           IsolationBackend::kMpkSwitchedStack,
                                           IsolationBackend::kVmRpc};
  std::vector<RunOutcome> statics;
  bool runs_ok = true;
  for (IsolationBackend backend : kStatics) {
    statics.push_back(RunConfig(/*adaptive=*/false, backend, ops,
                                kWindowCycles));
    runs_ok = runs_ok && statics.back().ok;
    PrintRow(std::string(IsolationBackendName(backend)).c_str(),
             statics.back());
  }
  const RunOutcome adaptive =
      RunConfig(/*adaptive=*/true, IsolationBackend::kMpkSwitchedStack, ops,
                kWindowCycles);
  const RunOutcome replay =
      RunConfig(/*adaptive=*/true, IsolationBackend::kMpkSwitchedStack, ops,
                kWindowCycles);
  runs_ok = runs_ok && adaptive.ok && replay.ok;
  PrintRow("adaptive", adaptive);
  std::printf("%-13s %14llu %14llu %14llu %14llu\n", "adapt-events",
              static_cast<unsigned long long>(adaptive.promotions),
              static_cast<unsigned long long>(adaptive.demotions),
              static_cast<unsigned long long>(adaptive.vetoes),
              static_cast<unsigned long long>(adaptive.flaps));
  std::printf("# adapt-events columns: promotions demotions vetoes flaps\n");
  std::printf("# decision-log fnv1a: 0x%016llx (%llu windows)\n",
              static_cast<unsigned long long>(Fnv1a(adaptive.decision_json)),
              static_cast<unsigned long long>(adaptive.windows));

  // --- Gates ----------------------------------------------------------------
  const bool replay_identical =
      !adaptive.decision_json.empty() &&
      adaptive.decision_json == replay.decision_json &&
      adaptive.total_cycles == replay.total_cycles &&
      adaptive.phase_cycles[0] == replay.phase_cycles[0] &&
      adaptive.phase_cycles[1] == replay.phase_cycles[1] &&
      adaptive.phase_cycles[2] == replay.phase_cycles[2];

  const bool engine_exercised = adaptive.windows > 0 &&
                                adaptive.demotions >= 1 &&
                                adaptive.promotions >= 1 &&
                                adaptive.vetoes >= 1;
  const bool veto_safety = adaptive.vetoes >= 1 && !adaptive.veto_applied;

  bool tracking = true;
  bool beats_worst = true;
  double worst_margin = 0;
  for (int p = 0; p < 3; ++p) {
    uint64_t best = UINT64_MAX;
    uint64_t worst = 0;
    for (const RunOutcome& s : statics) {
      best = std::min(best, s.phase_cycles[p]);
      worst = std::max(worst, s.phase_cycles[p]);
    }
    const double margin = static_cast<double>(adaptive.phase_cycles[p]) /
                          static_cast<double>(best);
    worst_margin = std::max(worst_margin, margin);
    if (margin > 1.10) {
      tracking = false;
    }
    if (adaptive.phase_cycles[p] >= worst) {
      beats_worst = false;
    }
  }
  const bool reconciled = adaptive.any_realized && adaptive.reconcile_ok;

  std::printf("\n# Checks:\n");
  std::printf("  every run completed its ops and contained exactly one "
              "injected trap: %s\n",
              runs_ok ? "yes" : "NO");
  std::printf("  same seed -> byte-identical decision log + identical "
              "per-phase cycles: %s (hard-gated)\n",
              replay_identical ? "yes" : "NO");
  std::printf("  engine exercised (windows > 0, >= 1 demotion, >= 1 trap "
              "promotion, >= 1 veto): %s\n",
              engine_exercised ? "yes" : "NO");
  std::printf("  no vetoed transition was applied: %s (hard-gated)\n",
              veto_safety ? "yes" : "NO");
  std::printf("  adaptive within 1.10x of best static per phase (worst "
              "margin %.3fx): %s (hard-gated)\n",
              worst_margin, tracking ? "yes" : "NO");
  std::printf("  adaptive strictly below the worst static per phase: %s "
              "(hard-gated)\n",
              beats_worst ? "yes" : "NO");
  std::printf("  realized per-crossing cost within 1 ns of prediction for "
              "every realized decision: %s (hard-gated)\n",
              reconciled ? "yes" : "NO");

  const bool pass = runs_ok && replay_identical && engine_exercised &&
                    veto_safety && tracking && beats_worst && reconciled;
  return pass ? 0 : 1;
}
