// Table 1 reproduction: iperf throughput with software hardening applied to
// individual components.
//
//   Paper rows (single compartment, SH per micro-library):
//     component C     | SH: all but C | SH: C only
//     Scheduler       | 496 Mb/s      | 2.90 Gb/s   (~1% slowdown)
//     Network stack   | 631 Mb/s      | 2.76 Gb/s   (~6%)
//     LibC            | 1.47 Gb/s     | 1.25 Gb/s   (~2.3x)
//     Rest of system  | 1.08 Gb/s     | 2.50 Gb/s   (~18%)
//     Entire system   | 2.94 Gb/s (baseline) | 489 Mb/s (all SH, ~6x)
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "bench_util.h"

namespace flexos {
namespace {

constexpr uint64_t kTotalBytes = 4ull << 20;
constexpr uint64_t kRecvBuffer = 16 * 1024;

double MeasureWithSh(const std::set<std::string>& hardened) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  config.image.hardened_libs = hardened;
  return bench::RunIperf(config, kTotalBytes, kRecvBuffer).gbps;
}

}  // namespace
}  // namespace flexos

int main() {
  using namespace flexos;
  // "Rest of the system" = the app plus everything not in the named three.
  const std::map<std::string, std::set<std::string>> components = {
      {"Scheduler", {"sched"}},
      {"Network stack", {"net"}},
      {"LibC", {"libc"}},
      {"Rest of the system", {"app", "alloc"}},
  };
  std::set<std::string> all;
  for (const auto& [name, libs] : components) {
    all.insert(libs.begin(), libs.end());
  }

  const double baseline = MeasureWithSh({});
  const double all_sh = MeasureWithSh(all);

  std::printf("# Table 1: iperf throughput with SH on various components\n");
  std::printf("# (recv buffer %llu B, %llu MiB transfer)\n",
              static_cast<unsigned long long>(kRecvBuffer),
              static_cast<unsigned long long>(kTotalBytes >> 20));
  std::printf("%-20s %16s %16s %14s\n", "Component C", "SH: all but C",
              "SH: C only", "C-only slowdn");
  for (const auto& [name, libs] : components) {
    std::set<std::string> all_but_c = all;
    for (const std::string& lib : libs) {
      all_but_c.erase(lib);
    }
    const double sh_all_but_c = MeasureWithSh(all_but_c);
    const double sh_c_only = MeasureWithSh(libs);
    std::printf("%-20s %16s %16s %13.2fx\n", name.c_str(),
                bench::FormatRate(sh_all_but_c).c_str(),
                bench::FormatRate(sh_c_only).c_str(),
                baseline / sh_c_only);
  }
  std::printf("%-20s %16s %16s %13.2fx\n", "Entire system",
              bench::FormatRate(baseline).c_str(),
              bench::FormatRate(all_sh).c_str(), baseline / all_sh);
  std::printf("\n# paper: sched ~1%%, net ~6%%, libc ~2.3x, rest ~18%%, "
              "entire ~6x\n");
  return 0;
}
