// Ablation: compartment derivation quality/cost — DSATUR vs. exact
// branch-and-bound coloring on random conflict graphs of LibOS scale
// (supports the paper's §2 automation claim).
#include <chrono>
#include <cstdio>

#include "core/coloring.h"
#include "support/rng.h"

namespace flexos {
namespace {

struct Sample {
  double avg_greedy = 0;
  double avg_exact = 0;
  double exact_ms = 0;
};

Sample RunTrials(int n, double density, int trials) {
  Rng rng(static_cast<uint64_t>(n) * 1000 +
          static_cast<uint64_t>(density * 100));
  Sample sample;
  double exact_ms_total = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<std::pair<int, int>> edges;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (rng.NextBool(density)) {
          edges.emplace_back(a, b);
        }
      }
    }
    sample.avg_greedy += ColorGraphDsatur(n, edges).num_colors;
    const auto start = std::chrono::steady_clock::now();
    sample.avg_exact += ColorGraphExact(n, edges).num_colors;
    const auto end = std::chrono::steady_clock::now();
    exact_ms_total +=
        std::chrono::duration<double, std::milli>(end - start).count();
  }
  sample.avg_greedy /= trials;
  sample.avg_exact /= trials;
  sample.exact_ms = exact_ms_total / trials;
  return sample;
}

}  // namespace
}  // namespace flexos

int main() {
  using namespace flexos;
  std::printf("# Compartment derivation: DSATUR vs exact coloring on random "
              "conflict graphs\n");
  std::printf("%-6s %-9s %10s %10s %12s\n", "libs", "density", "greedy",
              "exact", "exact(ms)");
  for (int n : {6, 10, 14, 18, 22}) {
    for (double density : {0.2, 0.5, 0.8}) {
      const Sample sample = RunTrials(n, density, 10);
      std::printf("%-6d %-9.1f %10.2f %10.2f %12.3f\n", n, density,
                  sample.avg_greedy, sample.avg_exact, sample.exact_ms);
    }
  }
  std::printf("\n# exact <= greedy always; both trivially fast at "
              "LibOS scale (tens of micro-libraries)\n");
  return 0;
}
