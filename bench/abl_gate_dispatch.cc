// Ablation: gate dispatch overhead on the simulator's own hot path —
// string-keyed lookup vs. a cached RouteHandle vs. batched crossings, per
// isolation backend. Two metrics per variant:
//   wall ns/call — real time the simulator spends dispatching (steady_clock);
//                  this is the cost the route cache eliminates.
//   model cyc/call — charged guest cycles; identical for string vs. cached
//                  (dispatch is free in the model), lower for batched (one
//                  entry/exit pair amortized over the whole batch).
// Pass --smoke for a fast CI run with tiny iteration counts.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "core/image_builder.h"

namespace flexos {
namespace {

struct Sample {
  double wall_ns = 0;
  double model_cycles = 0;
};

const char* BackendName(IsolationBackend backend) {
  switch (backend) {
    case IsolationBackend::kNone:
      return "none";
    case IsolationBackend::kMpkSharedStack:
      return "mpk-shared";
    case IsolationBackend::kMpkSwitchedStack:
      return "mpk-switched";
    case IsolationBackend::kVmRpc:
      return "vm-rpc";
  }
  return "?";
}

ImageConfig TwoCompartments(IsolationBackend backend) {
  ImageConfig config;
  config.backend = backend;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  return config;
}

// Best-of-3 repetitions: the min wall time is the least noise-polluted
// estimate; modeled cycles are deterministic so any repetition serves.
template <typename Fn>
Sample MeasureLoop(Machine& machine, uint64_t iters, Fn&& fn) {
  Sample best;
  for (int rep = 0; rep < 3; ++rep) {
    const uint64_t cycles_before = machine.clock().cycles();
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < iters; ++i) {
      fn();
    }
    const auto stop = std::chrono::steady_clock::now();
    const uint64_t cycles_after = machine.clock().cycles();
    const double wall_ns =
        std::chrono::duration<double, std::nano>(stop - start).count() /
        static_cast<double>(iters);
    if (rep == 0 || wall_ns < best.wall_ns) {
      best.wall_ns = wall_ns;
    }
    best.model_cycles = static_cast<double>(cycles_after - cycles_before) /
                        static_cast<double>(iters);
  }
  return best;
}

}  // namespace
}  // namespace flexos

int main(int argc, char** argv) {
  using namespace flexos;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const uint64_t kIters = smoke ? 2000 : 400000;
  const uint64_t kBatchLen = 64;

  std::printf("# Gate dispatch ablation: net -> app crossing, %llu calls "
              "per variant%s\n",
              static_cast<unsigned long long>(kIters),
              smoke ? " (smoke)" : "");
  std::printf("%-14s %10s %10s %10s %12s %12s %12s %9s %9s\n", "backend",
              "string", "cached", "batched", "string", "cached", "batched",
              "cache", "batch");
  std::printf("%-14s %10s %10s %10s %12s %12s %12s %9s %9s\n", "",
              "(ns/call)", "(ns/call)", "(ns/call)", "(cyc/call)",
              "(cyc/call)", "(cyc/call)", "speedup", "speedup");

  double min_cache_speedup = 1e30;
  constexpr IsolationBackend kBackends[] = {
      IsolationBackend::kNone, IsolationBackend::kMpkSharedStack,
      IsolationBackend::kMpkSwitchedStack, IsolationBackend::kVmRpc};
  for (IsolationBackend backend : kBackends) {
    Machine machine;
    ImageBuilder builder(machine);
    auto image = builder.Build(TwoCompartments(backend)).value();
    uint64_t sink = 0;
    const auto body = [&sink] { ++sink; };
    const RouteHandle route = image->Resolve(kLibNet, kLibApp);

    // Warm up caches (hash tables, branch predictors) before timing.
    for (int i = 0; i < 256; ++i) {
      image->Call(kLibNet, kLibApp, body);
      image->Call(route, body);
    }

    const Sample by_name = MeasureLoop(
        machine, kIters, [&] { image->Call(kLibNet, kLibApp, body); });
    const Sample cached =
        MeasureLoop(machine, kIters, [&] { image->Call(route, body); });
    Sample batched = MeasureLoop(machine, kIters / kBatchLen, [&] {
      GateBatch batch(*image, route);
      for (uint64_t j = 0; j < kBatchLen; ++j) {
        batch.Run(body);
      }
    });
    batched.wall_ns /= static_cast<double>(kBatchLen);
    batched.model_cycles /= static_cast<double>(kBatchLen);

    const double cache_speedup = by_name.wall_ns / cached.wall_ns;
    const double batch_speedup = by_name.wall_ns / batched.wall_ns;
    min_cache_speedup = std::min(min_cache_speedup, cache_speedup);
    std::printf("%-14s %10.1f %10.1f %10.1f %12.1f %12.1f %12.1f %8.2fx "
                "%8.2fx\n",
                BackendName(backend), by_name.wall_ns, cached.wall_ns,
                batched.wall_ns, by_name.model_cycles, cached.model_cycles,
                batched.model_cycles, cache_speedup, batch_speedup);
  }

  std::printf("\n# Checks:\n");
  std::printf("  cached vs string wall-clock speedup (worst backend): "
              "%.2fx (target: >=2x)\n",
              min_cache_speedup);
  std::printf("  string and cached charge identical model cycles; batched "
              "amortizes one entry/exit pair over %llu bodies\n",
              static_cast<unsigned long long>(kBatchLen));
  // Smoke runs are too short for stable wall-clock ratios; only gate the
  // exit code on the full run.
  return (smoke || min_cache_speedup >= 2.0) ? 0 : 1;
}
