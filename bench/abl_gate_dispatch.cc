// Ablation: gate dispatch overhead on the simulator's own hot path —
// string-keyed lookup vs. a cached RouteHandle vs. batched crossings, per
// isolation backend. Two metrics per variant:
//   wall ns/call — real time the simulator spends dispatching (steady_clock);
//                  this is the cost the route cache eliminates.
//   model cyc/call — charged guest cycles; identical for string vs. cached
//                  (dispatch is free in the model), lower for batched (one
//                  entry/exit pair amortized over the whole batch).
// Pass --smoke for a fast CI run with tiny iteration counts.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench_util.h"
#include "core/image_builder.h"

int main(int argc, char** argv) {
  using namespace flexos;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const uint64_t kIters = smoke ? 2000 : 400000;
  const uint64_t kBatchLen = 64;

  std::printf("# Gate dispatch ablation: net -> app crossing, %llu calls "
              "per variant%s\n",
              static_cast<unsigned long long>(kIters),
              smoke ? " (smoke)" : "");
  std::printf("%-14s %10s %10s %10s %12s %12s %12s %9s %9s\n", "backend",
              "string", "cached", "batched", "string", "cached", "batched",
              "cache", "batch");
  std::printf("%-14s %10s %10s %10s %12s %12s %12s %9s %9s\n", "",
              "(ns/call)", "(ns/call)", "(ns/call)", "(cyc/call)",
              "(cyc/call)", "(cyc/call)", "speedup", "speedup");

  double min_cache_speedup = 1e30;
  constexpr IsolationBackend kBackends[] = {
      IsolationBackend::kNone, IsolationBackend::kMpkSharedStack,
      IsolationBackend::kMpkSwitchedStack, IsolationBackend::kVmRpc};
  for (IsolationBackend backend : kBackends) {
    Machine machine;
    ImageBuilder builder(machine);
    auto image = builder.Build(bench::NetOnlyConfig(backend)).value();
    uint64_t sink = 0;
    const auto body = [&sink] { ++sink; };
    const RouteHandle route = image->Resolve(kLibNet, kLibApp);

    // Warm up caches (hash tables, branch predictors) before timing.
    for (int i = 0; i < 256; ++i) {
      image->Call(kLibNet, kLibApp, body);
      image->Call(route, body);
    }

    const bench::LoopSample by_name = bench::MeasureLoop(
        machine, kIters, [&] { image->Call(kLibNet, kLibApp, body); });
    const bench::LoopSample cached = bench::MeasureLoop(
        machine, kIters, [&] { image->Call(route, body); });
    bench::LoopSample batched =
        bench::MeasureLoop(machine, kIters / kBatchLen, [&] {
          GateBatch batch(*image, route);
          for (uint64_t j = 0; j < kBatchLen; ++j) {
            batch.Run(body);
          }
        });
    batched.wall_ns /= static_cast<double>(kBatchLen);
    // The batched loop ran (kIters / kBatchLen) * kBatchLen bodies.
    const uint64_t batched_bodies = (kIters / kBatchLen) * kBatchLen;

    const double cache_speedup = by_name.wall_ns / cached.wall_ns;
    const double batch_speedup = by_name.wall_ns / batched.wall_ns;
    min_cache_speedup = std::min(min_cache_speedup, cache_speedup);
    std::printf("%-14s %10.1f %10.1f %10.1f %12.1f %12.1f %12.1f %8.2fx "
                "%8.2fx\n",
                std::string(IsolationBackendName(backend)).c_str(),
                by_name.wall_ns, cached.wall_ns, batched.wall_ns,
                by_name.CyclesPerCall(kIters), cached.CyclesPerCall(kIters),
                batched.CyclesPerCall(batched_bodies), cache_speedup,
                batch_speedup);
  }

  std::printf("\n# Checks:\n");
  std::printf("  cached vs string wall-clock speedup (worst backend): "
              "%.2fx (target: >=2x)\n",
              min_cache_speedup);
  std::printf("  string and cached charge identical model cycles; batched "
              "amortizes one entry/exit pair over %llu bodies\n",
              static_cast<unsigned long long>(kBatchLen));
  // Smoke runs are too short for stable wall-clock ratios; only gate the
  // exit code on the full run.
  return (smoke || min_cache_speedup >= 2.0) ? 0 : 1;
}
