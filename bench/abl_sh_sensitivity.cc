// Ablation: how Table 1's headline ratios move with the modeled
// instrumentation multiplier — the calibration sensitivity DESIGN.md §9
// discloses. The *ordering* (libc >> rest > net > sched) must hold at
// every plausible multiplier; only magnitudes scale.
#include <cstdio>

#include "bench_util.h"

namespace flexos {
namespace {

constexpr uint64_t kTotalBytes = 2ull << 20;
constexpr uint64_t kRecvBuffer = 16 * 1024;

double Measure(double multiplier, const std::set<std::string>& hardened) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  config.image.hardened_libs = hardened;
  config.costs.sh_mem_multiplier = multiplier;
  return bench::RunIperf(config, kTotalBytes, kRecvBuffer).gbps;
}

}  // namespace
}  // namespace flexos

int main() {
  using namespace flexos;
  std::printf("# SH-multiplier sensitivity: iperf slowdown per hardened "
              "component\n");
  std::printf("%-12s %10s %10s %10s %10s %10s\n", "multiplier", "sched",
              "net", "libc", "rest", "entire");
  for (double multiplier : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    const double baseline = Measure(multiplier, {});
    std::printf("%-12.1f %9.2fx %9.2fx %9.2fx %9.2fx %9.2fx\n", multiplier,
                baseline / Measure(multiplier, {"sched"}),
                baseline / Measure(multiplier, {"net"}),
                baseline / Measure(multiplier, {"libc"}),
                baseline / Measure(multiplier, {"app", "alloc"}),
                baseline / Measure(multiplier,
                                   {"sched", "net", "libc", "app", "alloc"}));
  }
  std::printf("\n# paper's measured row (KASAN-class): sched 1.01x, net "
              "1.06x, libc 2.35x, rest 1.18x, entire ~6x\n");
  return 0;
}
