// Bench manifest: the single source of truth for which benchmark binaries
// flexbench runs and how their table output maps to comparable metrics.
// Header-checked by both sides — the bench suite (via CMake) and
// tools/flexbench.cc include this file, so the runner and the benches can
// never disagree about what is measured or which columns are deterministic.
//
// Output contract every listed binary follows (see fig3_iperf_gates.cc et
// al.): lines starting with '#' are comments, a line with no numeric token
// is a header, and every other line is a data row — leading non-numeric
// tokens form the row label, the remaining numeric tokens are the row's
// metric columns in order. Tokens with unit suffixes parse as numbers
// ("2.91x" -> 2.91, "10.0GbE" -> 10.0); a "Mb/s" token downscales the
// preceding value to Gb/s so a rate crossing the FormatRate threshold stays
// comparable.
#ifndef FLEXOS_BENCH_BENCH_MANIFEST_H_
#define FLEXOS_BENCH_BENCH_MANIFEST_H_

#include <cstddef>
#include <string_view>

namespace flexos {
namespace bench {

// Schema tag stamped into every flexbench report and required of every
// baseline it loads. Bump on any breaking change to the JSON layout; the
// loader rejects mismatches with a regeneration hint instead of silently
// misreading fields.
inline constexpr std::string_view kBenchSchema = "flexos-bench-v1";

struct BenchSpec {
  std::string_view name;    // Metric prefix + JSON key.
  std::string_view binary;  // Executable name in the bench build dir.
  // Accepts --smoke for a fast CI-sized run.
  bool has_smoke = false;
  // Whether numeric output is modeled (deterministic) and compared against
  // the baseline. Wall-clock benches run gate-only: flexbench requires exit
  // status 0 but records no metrics (their self-checks are the gate).
  bool compare = true;
  // Part of the chaos profile (flexbench --chaos): soaks the image under a
  // fault-injection plan and self-gates on recovery/leak invariants.
  bool chaos = false;
  // Accepts --vcpus N to shard across simulated vCPUs; flexbench forwards
  // its --vcpus option to these binaries only.
  bool smp = false;
  // Part of the adaptive profile (flexbench --adapt): exercises the
  // flexadapt policy engine and self-gates on its replay/placement bounds.
  bool adapt = false;
  // Per-row numeric column indices excluded from metrics (wall-clock
  // columns inside otherwise-deterministic tables).
  int drop_cols[4] = {-1, -1, -1, -1};

  bool Drops(int col) const {
    for (const int c : drop_cols) {
      if (c == col) {
        return true;
      }
    }
    return false;
  }
};

// Relative noise tolerance for baseline comparison. Modeled results are
// bit-deterministic on one tree, but the tolerance leaves headroom for
// intentional cost-model tuning to be reviewed via baseline regeneration
// rather than tripping on round-off from table formatting (3 printed
// digits).
inline constexpr double kBenchDefaultTolerance = 0.05;

inline constexpr BenchSpec kBenchManifest[] = {
    // Paper-figure reproductions: fully modeled, deterministic tables.
    {.name = "fig3", .binary = "fig3_iperf_gates", .has_smoke = true},
    {.name = "fig4", .binary = "fig4_redis_sh"},
    {.name = "fig5", .binary = "fig5_redis_mpk"},
    {.name = "tab1", .binary = "tab1_iperf_sh"},
    {.name = "sched_ctxswitch", .binary = "sched_ctxswitch"},
    // Ablations with modeled output.
    {.name = "abl_gate_costs", .binary = "abl_gate_costs"},
    {.name = "abl_link_model", .binary = "abl_link_model"},
    {.name = "abl_sh_sensitivity", .binary = "abl_sh_sensitivity"},
    // Deterministic except the exact-solver wall-time column (the last of
    // the 4 value columns; the lib count is the row label).
    {.name = "abl_coloring",
     .binary = "abl_coloring",
     .drop_cols = {3, -1, -1, -1}},
    // Wall-clock ablations: self-gating (non-zero exit on violation);
    // their ns/call numbers are host noise, not comparable metrics.
    {.name = "abl_gate_dispatch",
     .binary = "abl_gate_dispatch",
     .has_smoke = true,
     .compare = false},
    {.name = "abl_obs_overhead",
     .binary = "abl_obs_overhead",
     .has_smoke = true,
     .compare = false},
    // Chaos harness: modeled and deterministic (seeded injection), so the
    // table is comparable; the recovery/identity invariants self-gate.
    {.name = "abl_fault_recovery",
     .binary = "abl_fault_recovery",
     .has_smoke = true,
     .chaos = true},
    // Multi-vCPU scaling sweep: fully modeled and deterministic (virtual
    // clocks, seeded workload); self-gates on near-linear scaling and
    // same-seed replay identity.
    {.name = "abl_smp",
     .binary = "abl_smp",
     .has_smoke = true,
     .smp = true},
    // Runtime-adaptive isolation ablation (DESIGN.md §16): shifting
    // three-phase workload under static placements vs the flexadapt engine.
    // Fully modeled and deterministic; self-gates on replay-identical
    // decision logs, per-phase tracking bounds, and zero applied vetoes.
    {.name = "abl_adaptive",
     .binary = "abl_adaptive",
     .has_smoke = true,
     .adapt = true},
};

inline constexpr size_t kBenchManifestSize =
    sizeof(kBenchManifest) / sizeof(kBenchManifest[0]);

}  // namespace bench
}  // namespace flexos

#endif  // FLEXOS_BENCH_BENCH_MANIFEST_H_
