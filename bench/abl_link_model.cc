// Ablation: sensitivity of the Fig. 3 baseline to the link model — shows
// when the virtual server CPU (not the modeled wire) is the bottleneck,
// which is the regime every paper experiment runs in.
#include <cstdio>

#include "bench_util.h"

namespace flexos {
namespace {

double Measure(double bandwidth_gbps, uint64_t latency_us) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  config.link.bandwidth_bps = bandwidth_gbps * 1e9;
  config.link.latency_ns = latency_us * 1000;
  return bench::RunIperf(config, 2ull << 20, 16 * 1024).gbps;
}

}  // namespace
}  // namespace flexos

int main() {
  using namespace flexos;
  std::printf("# iperf baseline (Gb/s) vs. link bandwidth and latency\n");
  std::printf("%-14s %10s %10s %10s\n", "bandwidth", "lat=1us", "lat=5us",
              "lat=50us");
  for (double gbps : {1.0, 2.5, 10.0, 40.0}) {
    std::printf("%-11.1fGbE %10.3f %10.3f %10.3f\n", gbps, Measure(gbps, 1),
                Measure(gbps, 5), Measure(gbps, 50));
  }
  std::printf("\n# Above ~10 GbE the server CPU is the bottleneck and the "
              "curves flatten;\n"
              "# at 1-2.5 GbE the wire caps throughput instead. TCP "
              "windows (64 KiB max,\n"
              "# no scaling) also bound the high-latency column.\n");
  return 0;
}
