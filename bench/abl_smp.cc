// Ablation: multi-vCPU scaling on an embarrassingly-parallel server
// workload (DESIGN.md §12). One pinned worker per vCPU runs a shard of
// redis/iperf-like operations — an app->net MPK gate crossing, payload
// marshalling, and fixed protocol compute per op — and throughput is
// total ops over the furthest-ahead vCPU clock. Two hard gates:
//   * scaling — >= 1.8x at 2 vCPUs and >= 3x at 4 vCPUs vs 1 vCPU;
//   * determinism — every point runs twice with the same seed and must
//     produce an identical event log (vCPU clocks, context switches,
//     machine stats, and the full trace-event stream hash together);
//   * validator transparency — each point also runs with the flexrace
//     happens-before validator enabled (DESIGN.md §13); it must report
//     zero races and leave the modeled run bit-identical (cycles, clocks,
//     stats, checksum — the trace stream is excluded, since the validator
//     adds cat=race instants to it by design).
// Pass --smoke for a fast CI-sized run, --vcpus N for a single point
// (replay- and validator-gated only; scaling needs the full sweep).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"

namespace {

using namespace flexos;

// SplitMix64: per-shard deterministic op-size stream.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d4a77c621f47b5ULL;
  return z ^ (z >> 31);
}

struct SmpPoint {
  uint64_t ops = 0;
  uint64_t cycles = 0;    // max over vCPU clocks, boot excluded.
  uint64_t event_hash = 0;  // FNV-1a over the merged event log.
  uint64_t model_hash = 0;  // Same, minus the trace stream (validator gate).
  uint64_t checksum = 0;    // Workload payload checksum (PRNG coverage).
  uint64_t races = 0;       // flexrace findings (validator runs only).
};

// One full run at `vcpus`; everything that feeds the returned struct is
// modeled, so two calls with the same arguments must return identical
// values — that is the replay gate.
SmpPoint RunPoint(int vcpus, uint64_t total_ops, uint64_t seed,
                  bool race_detect = false) {
  TestbedConfig config;
  config.image = bench::NetOnlyConfig(IsolationBackend::kMpkSharedStack);
  config.vcpus = vcpus;
  config.race_detect = race_detect;
  Testbed bed(config);
  Machine& machine = bed.machine();
  machine.tracer().SetEnabled(true);

  SmpPoint point;
  point.ops = total_ops - total_ops % static_cast<uint64_t>(vcpus);
  const uint64_t shard_ops = point.ops / static_cast<uint64_t>(vcpus);
  const RouteHandle route = bed.image().Resolve(kLibApp, kLibNet);
  uint64_t checksum = 0;

  for (int v = 0; v < vcpus; ++v) {
    uint64_t prng = seed ^ (0x51edULL * static_cast<uint64_t>(v + 1));
    bed.SpawnApp(
        "smp-worker-" + std::to_string(v),
        [&bed, &machine, &route, &checksum, prng, shard_ops]() mutable {
          for (uint64_t op = 0; op < shard_ops; ++op) {
            // Payload between 64 B (redis-like op) and ~MTU (iperf-like).
            const uint64_t payload = 64 + SplitMix64(&prng) % 1397;
            bed.image().Call(route, [&machine, payload] {
              machine.ChargeMemOp(payload);   // Marshal into the stack.
              machine.ChargeCompute(1200);    // Protocol processing.
            });
            checksum += payload;
            if ((op & 15) == 15) {
              bed.scheduler().Yield();  // Cooperative server loop.
            }
          }
        },
        /*affinity=*/v);
  }

  const uint64_t start_cycles = machine.max_cycles();
  const Status status = bed.Run();
  if (!status.ok()) {
    std::fprintf(stderr, "run failed at %d vCPUs: %s\n", vcpus,
                 status.ToString().c_str());
    std::exit(1);
  }
  point.cycles = machine.max_cycles() - start_cycles;
  point.checksum = checksum;

  // The merged event log: every per-vCPU clock, the scheduler switch
  // count, the machine stat counters, and the full trace stream.
  uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  for (int v = 0; v < vcpus; ++v) {
    mix(machine.clock_of(v).cycles());
  }
  mix(bed.scheduler().context_switches());
  mix(machine.stats().wrpkru_count);
  mix(machine.stats().gate_crossings);
  mix(machine.stats().ipi_count);
  mix(point.checksum);
  point.model_hash = h;  // Model-only prefix: no trace stream mixed yet.
  for (const obs::TraceEvent& event : machine.tracer().Snapshot()) {
    mix(event.ts_ns);
    mix(event.dur_ns);
    mix(event.a0);
    mix(event.a1);
    mix(static_cast<uint64_t>(event.tid));
    mix(event.vcpu);
    mix(static_cast<uint64_t>(event.cat) << 8 |
        static_cast<uint64_t>(event.phase));
    for (const char* c = event.name; c != nullptr && *c != '\0'; ++c) {
      mix(static_cast<uint64_t>(static_cast<unsigned char>(*c)));
    }
  }
  point.event_hash = h;
  point.races = machine.race().races_found();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flexos;
  bool smoke = false;
  int only_vcpus = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--vcpus") == 0 && i + 1 < argc) {
      only_vcpus = std::atoi(argv[++i]);
    }
  }
  const uint64_t kSeed = 42;
  const uint64_t kTotalOps = smoke ? 4800 : 48000;
  const double kFreqGhz = static_cast<double>(Clock::kDefaultFreqHz) / 1e9;

  std::printf("# SMP scaling ablation: %llu ops sharded across pinned "
              "workers, mpk-shared-stack app->net gate per op%s\n",
              static_cast<unsigned long long>(kTotalOps),
              smoke ? " (smoke)" : "");
  std::printf("# each point runs twice with the same seed; replay=1 means "
              "the event logs were identical\n");
  std::printf("# a third run enables the flexrace validator; valid=1 means "
              "zero races and bit-identical modeled results\n");
  std::printf("%-6s %10s %10s %10s %9s %7s %6s\n", "vcpus", "ops", "virt_ms",
              "mops_s", "speedup", "replay", "valid");

  const int kPoints[] = {1, 2, 4};
  double base_mops = 0;
  double speedup2 = 0;
  double speedup4 = 0;
  bool replay_ok = true;
  bool validator_ok = true;
  for (const int vcpus : kPoints) {
    if (only_vcpus != 0 && vcpus != only_vcpus) {
      continue;
    }
    const SmpPoint first = RunPoint(vcpus, kTotalOps, kSeed);
    const SmpPoint second = RunPoint(vcpus, kTotalOps, kSeed);
    const bool identical = first.event_hash == second.event_hash &&
                           first.cycles == second.cycles &&
                           first.checksum == second.checksum;
    replay_ok = replay_ok && identical;
    // Validator transparency: detection on must not perturb the model.
    // Compare the model-only hash — the validator's own cat=race trace
    // instants legitimately change the full event stream.
    const SmpPoint checked =
        RunPoint(vcpus, kTotalOps, kSeed, /*race_detect=*/true);
    const bool transparent = checked.races == 0 &&
                             checked.cycles == first.cycles &&
                             checked.model_hash == first.model_hash &&
                             checked.checksum == first.checksum;
    validator_ok = validator_ok && transparent;
    const double virt_ms =
        static_cast<double>(first.cycles) / (kFreqGhz * 1e6);
    const double mops =
        static_cast<double>(first.ops) / (static_cast<double>(first.cycles) /
                                          (kFreqGhz * 1e3));
    if (vcpus == 1) {
      base_mops = mops;
    }
    const double speedup = base_mops > 0 ? mops / base_mops : 1.0;
    if (vcpus == 2) {
      speedup2 = speedup;
    } else if (vcpus == 4) {
      speedup4 = speedup;
    }
    std::printf("%-6d %10llu %10.3f %10.3f %8.2fx %7d %6d\n", vcpus,
                static_cast<unsigned long long>(first.ops), virt_ms, mops,
                speedup, identical ? 1 : 0, transparent ? 1 : 0);
  }

  std::printf("\n# Checks:\n");
  std::printf("  replay identity (same seed -> same event log): %s\n",
              replay_ok ? "ok" : "FAILED");
  std::printf("  validator transparency (flexrace on: 0 races, identical "
              "model): %s\n",
              validator_ok ? "ok" : "FAILED");
  if (only_vcpus == 0) {
    std::printf("  speedup at 2 vCPUs: %.2fx (target >= 1.8x), at 4 vCPUs: "
                "%.2fx (target >= 3x)\n",
                speedup2, speedup4);
    return (replay_ok && validator_ok && speedup2 >= 1.8 && speedup4 >= 3.0)
               ? 0
               : 1;
  }
  return (replay_ok && validator_ok) ? 0 : 1;
}
