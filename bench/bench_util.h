// Shared plumbing for the paper-reproduction benchmarks: canned image
// configurations, iperf/redis run helpers, and table printing.
#ifndef FLEXOS_BENCH_BENCH_UTIL_H_
#define FLEXOS_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>

#include "apps/iperf_client.h"
#include "apps/iperf_server.h"
#include "apps/redis_client.h"
#include "apps/redis_server.h"
#include "apps/testbed.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "support/strings.h"

namespace flexos {
namespace bench {

// {net} | {rest}: the paper's basic two-compartment model.
inline ImageConfig NetOnlyConfig(IsolationBackend backend) {
  ImageConfig config;
  config.backend = backend;
  config.compartments = {
      {std::string(kLibNet)},
      {std::string(kLibApp), std::string(kLibSched), std::string(kLibLibc),
       std::string(kLibAlloc)}};
  return config;
}

// {net} | {sched} | {rest} (Fig. 5 "NW/Sched/Rest").
inline ImageConfig NetSchedRestConfig(IsolationBackend backend) {
  ImageConfig config;
  config.backend = backend;
  config.compartments = {
      {std::string(kLibNet)},
      {std::string(kLibSched)},
      {std::string(kLibApp), std::string(kLibLibc), std::string(kLibAlloc)}};
  return config;
}

// {net, sched} | {rest} (Fig. 5 "NW+Sched/Rest").
inline ImageConfig NetPlusSchedConfig(IsolationBackend backend) {
  ImageConfig config;
  config.backend = backend;
  config.compartments = {
      {std::string(kLibNet), std::string(kLibSched)},
      {std::string(kLibApp), std::string(kLibLibc), std::string(kLibAlloc)}};
  return config;
}

// The paper's testbed ran Unikraft v0.4 on Xen without optimization;
// platform I/O paths cost noticeably more than on KVM. Model that as a tax
// on per-packet processing.
inline CostModel XenPlatformCosts() {
  CostModel costs;
  costs.pkt_rx_fixed = static_cast<uint64_t>(costs.pkt_rx_fixed * 2.2);
  costs.pkt_tx_fixed = static_cast<uint64_t>(costs.pkt_tx_fixed * 2.2);
  costs.syscall_ish *= 2;
  return costs;
}

struct IperfPoint {
  double gbps = 0;
  uint64_t bytes = 0;
  bool ok = false;
};

inline IperfPoint RunIperf(const TestbedConfig& config, uint64_t total_bytes,
                           uint64_t recv_buffer) {
  Testbed bed(config);
  IperfServerResult server_result;
  IperfServerOptions options;
  options.recv_buffer_bytes = recv_buffer;
  SpawnIperfServer(bed, options, &server_result);

  IperfRemoteClient client(total_bytes);
  RemoteTcpPeer peer(bed.machine(), bed.link(), RemoteTcpConfig{}, client);
  bed.AddPeer(&peer);
  peer.Connect();

  IperfPoint point;
  const Status status = bed.Run();
  // The registry's TCP byte counter (PR 3) is the reported number; the
  // app-level count cross-checks that instrumentation and workload agree.
  point.bytes = bed.machine().metrics().CounterValue(obs::kMetricTcpBytesRx);
  point.ok = status.ok() && server_result.bytes_received == total_bytes &&
             point.bytes == server_result.bytes_received;
  const double seconds = bed.machine().clock().NowSeconds();
  if (seconds > 0) {
    point.gbps =
        static_cast<double>(server_result.bytes_received) * 8.0 / seconds /
        1e9;
  }
  if (!point.ok) {
    std::fprintf(stderr, "WARNING: iperf run incomplete (%s, %llu/%llu B)\n",
                 status.ToString().c_str(),
                 static_cast<unsigned long long>(point.bytes),
                 static_cast<unsigned long long>(total_bytes));
  }
  return point;
}

struct RedisPoint {
  double kops = 0;  // Measured requests/s (thousands).
  bool ok = false;
};

inline RedisPoint RunRedis(const TestbedConfig& config,
                           const RedisWorkload& workload) {
  Testbed bed(config);
  RedisServerResult server_result;
  SpawnRedisServer(bed, RedisServerOptions{}, &server_result);

  RedisRemoteClient client(bed.machine(), workload);
  RemoteTcpConfig peer_config;
  peer_config.server_port = 6379;
  RemoteTcpPeer peer(bed.machine(), bed.link(), peer_config, client);
  bed.AddPeer(&peer);
  peer.Connect();

  RedisPoint point;
  const Status status = bed.Run();
  point.ok = status.ok() &&
             client.measured_completed() == workload.measured_ops &&
             client.errors() == 0;
  point.kops = client.MeasuredOpsPerSec() / 1e3;
  if (!point.ok) {
    std::fprintf(stderr, "WARNING: redis run incomplete (%s, %llu ops)\n",
                 status.ToString().c_str(),
                 static_cast<unsigned long long>(client.measured_completed()));
  }
  return point;
}

// Multi-connection redis run: `conns` concurrent closed-loop clients (the
// redis-benchmark model), aggregate measured throughput.
inline RedisPoint RunRedisMulti(const TestbedConfig& config,
                                const RedisWorkload& base_workload,
                                int conns) {
  Testbed bed(config);
  RedisServerResult server_result;
  RedisServerOptions options;
  options.max_conns = conns;
  SpawnRedisServer(bed, options, &server_result);

  RemoteHub hub(bed.link());
  std::vector<std::unique_ptr<RedisRemoteClient>> clients;
  std::vector<std::unique_ptr<RemoteTcpPeer>> peers;
  for (int i = 0; i < conns; ++i) {
    RedisWorkload workload = base_workload;
    workload.key_prefix = StrFormat("k%d", i);
    clients.push_back(
        std::make_unique<RedisRemoteClient>(bed.machine(), workload));
    RemoteTcpConfig peer_config;
    peer_config.server_port = options.port;
    peer_config.local_port = static_cast<Port>(40000 + i);
    peers.push_back(std::make_unique<RemoteTcpPeer>(
        bed.machine(), bed.link(), peer_config, *clients.back(),
        /*attach=*/false));
    hub.Register(peers.back().get());
    bed.AddPeer(peers.back().get());
    peers.back()->Connect();
  }

  RedisPoint point;
  const Status status = bed.Run();
  uint64_t total_ops = 0;
  uint64_t errors = 0;
  uint64_t min_start = UINT64_MAX;
  uint64_t max_end = 0;
  for (const auto& client : clients) {
    total_ops += client->measured_completed();
    errors += client->errors();
    if (client->measure_start_cycles() != 0) {
      min_start = std::min(min_start, client->measure_start_cycles());
    }
    max_end = std::max(max_end, client->measure_end_cycles());
  }
  point.ok = status.ok() && errors == 0 &&
             total_ops ==
                 base_workload.measured_ops * static_cast<uint64_t>(conns);
  if (max_end > min_start && total_ops > 0) {
    const double seconds =
        static_cast<double>(max_end - min_start) /
        static_cast<double>(bed.machine().clock().freq_hz());
    point.kops = static_cast<double>(total_ops) / seconds / 1e3;
  }
  if (!point.ok) {
    std::fprintf(stderr,
                 "WARNING: redis multi run incomplete (%s, %llu ops, %llu "
                 "errors)\n",
                 status.ToString().c_str(),
                 static_cast<unsigned long long>(total_ops),
                 static_cast<unsigned long long>(errors));
  }
  return point;
}

// Best-of-3 wall-time measurement for the dispatch ablations. The min wall
// time is the least noise-polluted estimate; the charged model cycles are
// deterministic, so the last repetition serves for all three.
struct LoopSample {
  double wall_ns = 0;               // Per-call wall time, best of 3 reps.
  uint64_t model_cycles_total = 0;  // Charged cycles for one repetition.

  double CyclesPerCall(uint64_t iters) const {
    return static_cast<double>(model_cycles_total) /
           static_cast<double>(iters);
  }
};

template <typename Fn>
LoopSample MeasureLoop(Machine& machine, uint64_t iters, Fn&& fn) {
  LoopSample best;
  for (int rep = 0; rep < 3; ++rep) {
    const uint64_t cycles_before = machine.clock().cycles();
    const auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < iters; ++i) {
      fn();
    }
    const auto stop = std::chrono::steady_clock::now();
    const uint64_t cycles_after = machine.clock().cycles();
    const double wall_ns =
        std::chrono::duration<double, std::nano>(stop - start).count() /
        static_cast<double>(iters);
    if (rep == 0 || wall_ns < best.wall_ns) {
      best.wall_ns = wall_ns;
    }
    best.model_cycles_total = cycles_after - cycles_before;
  }
  return best;
}

inline std::string FormatRate(double gbps) {
  if (gbps >= 1.0) {
    return StrFormat("%.2f Gb/s", gbps);
  }
  return StrFormat("%.0f Mb/s", gbps * 1e3);
}

}  // namespace bench
}  // namespace flexos

#endif  // FLEXOS_BENCH_BENCH_UTIL_H_
