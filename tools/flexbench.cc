// flexbench: the continuous perf-regression harness (DESIGN.md §8). Runs
// the benchmark binaries listed in bench/bench_manifest.h, parses their
// table output into named metrics, and either
//   * writes a baseline JSON (--write-baseline FILE), or
//   * compares against a checked-in baseline (--baseline FILE) with a
//     relative noise tolerance, exiting non-zero on any drift.
//
// Modeled results are deterministic, so "drift" means a code change moved a
// modeled number — intentional changes are reviewed by regenerating the
// baseline (scripts/bench_snapshot.sh), accidental ones fail CI. Wall-clock
// benches (compare=false in the manifest) run gate-only: their own internal
// checks decide pass/fail via exit status.
//
//   flexbench --bindir DIR [--smoke] [--chaos] [--adapt] [--baseline FILE]
//             [--out FILE] [--write-baseline FILE] [--tolerance X]
//   flexbench --diff OLD.json NEW.json
//
// The --chaos profile restricts the run to the manifest's chaos-tagged
// benches: deterministic fault-injection soaks whose exit status gates the
// recovery-time and zero-leak invariants (see bench/abl_fault_recovery.cc).
// The --adapt profile does the same for the adapt-tagged benches: the
// flexadapt policy ablation whose exit status gates replay-identical
// decision logs and per-phase placement tracking (bench/abl_adaptive.cc).
//
// --diff runs no benches: it loads two flexos-bench-v1 result sets,
// prints a per-entry delta table, and attributes the modeled-number delta
// to isolation backends by scanning the changed metric keys for backend
// tokens (DESIGN.md §15) — so a perf regression arrives pre-root-caused to
// a boundary class, not as a bare FAIL.
//
// On baseline drift the per-entry delta table (metric, baseline, run,
// abs/rel delta) prints before the FAIL summary.
//
// JSON schema ("flexos-bench-v1", documented in DESIGN.md §8) is shared by
// baselines and run reports (BENCH_PR5.json); a baseline is a run report
// with kind "baseline".
//
// Exit status: 0 all benches passed (and matched the baseline, if given),
// 1 on bench failure or drift, 2 on usage / I/O errors, 3 on baseline
// schema errors (malformed JSON, wrong schema string, mode mismatch) — so
// CI can tell "numbers moved" from "the comparison never happened".
#include <sys/wait.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_manifest.h"
#include "obs/json.h"

namespace flexos {
namespace bench {
namespace {

struct Options {
  std::string bindir = "bench";
  std::string baseline_path;
  std::string out_path;
  std::string write_baseline_path;
  double tolerance = kBenchDefaultTolerance;
  bool smoke = false;
  bool chaos = false;
  bool adapt = false;
  // Forwarded to smp-tagged benches as --vcpus N; 0 leaves them on their
  // default scaling sweep (1/2/4).
  int vcpus = 0;
  // --diff OLD NEW: offline differential mode, runs no benches.
  std::string diff_old_path;
  std::string diff_new_path;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: flexbench --bindir DIR [--smoke] [--chaos] [--adapt]\n"
      "                 [--baseline FILE] [--out FILE] "
      "[--write-baseline FILE]\n"
      "                 [--tolerance X] [--vcpus N]\n"
      "       flexbench --diff OLD.json NEW.json\n"
      "  --chaos runs only the fault-injection soak benches (self-gating\n"
      "  recovery/leak invariants); combine with --smoke for the CI-sized "
      "run\n"
      "  --adapt runs only the flexadapt policy benches (self-gating\n"
      "  replay-identity and placement-tracking invariants)\n"
      "  --vcpus N pins the smp-tagged benches to one vCPU count instead\n"
      "  of their default 1/2/4 scaling sweep\n"
      "  --diff compares two flexos-bench-v1 result sets and attributes\n"
      "  the modeled-number delta to isolation backends\n");
  return 2;
}

// ---------------------------------------------------------------------------
// Bench-table parsing (the output contract in bench_manifest.h).

// Numeric token with an optional benign unit suffix: "2.91x", "10.0GbE",
// "2.1%". Anything else non-numeric is skipped.
bool ParseNumericToken(const std::string& token, double* out) {
  if (token.empty()) {
    return false;
  }
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str()) {
    return false;
  }
  const std::string rest(end);
  if (rest.empty() || rest == "x" || rest == "GbE" || rest == "%") {
    *out = value;
    return true;
  }
  return false;
}

std::string SanitizeLabel(const std::string& raw) {
  std::string out;
  for (const char c : raw) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '-' ||
            c == '_')
               ? c
               : '_';
  }
  return out;
}

// metric name ("r<row>.<label>.c<col>") -> value, insertion-ordered by the
// sorted map so JSON output is deterministic.
using MetricMap = std::map<std::string, double>;

MetricMap ParseBenchOutput(const BenchSpec& spec, const std::string& text) {
  MetricMap metrics;
  std::istringstream lines(text);
  std::string line;
  int row = 0;
  while (std::getline(lines, line)) {
    std::istringstream tokens(line);
    std::string token;
    std::vector<std::string> labels;
    std::vector<double> values;
    bool comment = false;
    while (tokens >> token) {
      if (labels.empty() && values.empty() && token[0] == '#') {
        comment = true;
        break;
      }
      double value = 0;
      if (token == "Mb/s") {
        // FormatRate unit: downscale the preceding value to Gb/s so a rate
        // crossing the 1 Gb/s print threshold stays comparable.
        if (!values.empty()) {
          values.back() /= 1000.0;
        }
      } else if (ParseNumericToken(token, &value)) {
        values.push_back(value);
      } else if (values.empty()) {
        labels.push_back(token);
      }
      // Non-numeric tokens after the first value ("Gb/s", "yes") skipped.
    }
    if (comment || values.empty()) {
      continue;  // Comment, header, or blank line.
    }
    std::string label;
    if (labels.empty()) {
      // Numeric-first rows (fig3 buffer sizes): the first value is the row
      // key, not a metric.
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", values.front());
      label = buf;
      values.erase(values.begin());
    } else {
      for (const std::string& part : labels) {
        if (!label.empty()) {
          label += '_';
        }
        label += SanitizeLabel(part);
      }
    }
    for (size_t col = 0; col < values.size(); ++col) {
      if (spec.Drops(static_cast<int>(col))) {
        continue;
      }
      char key[96];
      std::snprintf(key, sizeof(key), "r%d.%s.c%zu", row, label.c_str(), col);
      metrics[key] = values[col];
    }
    ++row;
  }
  return metrics;
}

// ---------------------------------------------------------------------------
// Running benches.

struct BenchRun {
  int exit_code = -1;
  MetricMap metrics;
};

bool RunBench(const Options& opts, const BenchSpec& spec, BenchRun* out) {
  std::string cmd = opts.bindir + "/" + std::string(spec.binary);
  if (opts.smoke && spec.has_smoke) {
    cmd += " --smoke";
  }
  if (opts.vcpus > 0 && spec.smp) {
    cmd += " --vcpus " + std::to_string(opts.vcpus);
  }
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    std::fprintf(stderr, "flexbench: cannot run %s\n", cmd.c_str());
    return false;
  }
  std::string text;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    text.append(buf, n);
  }
  const int status = pclose(pipe);
  out->exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
  if (spec.compare) {
    out->metrics = ParseBenchOutput(spec, text);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Baseline loading (JSON parsing via the shared obs/json.h reader).

using obs::JsonReader;
using obs::JsonValue;

struct Baseline {
  std::string mode;  // "full" | "smoke"
  std::map<std::string, MetricMap> benches;
  std::map<std::string, int> exit_codes;
};

// I/O failures (exit 2) are environment problems; schema failures (exit 3)
// mean the file exists but is not a usable flexos-bench-v1 document.
enum class LoadResult { kOk, kIoError, kSchemaError };

LoadResult LoadBaseline(const std::string& path, Baseline* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "flexbench: cannot read baseline %s\n",
                 path.c_str());
    return LoadResult::kIoError;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  JsonValue root;
  if (!JsonReader(text).Parse(&root) || root.kind != JsonValue::kObject) {
    std::fprintf(stderr, "flexbench: %s: malformed JSON\n", path.c_str());
    return LoadResult::kSchemaError;
  }
  // Schema drift fails loudly here, not as a silent field mismatch later.
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr) {
    std::fprintf(stderr,
                 "flexbench: %s: no \"schema\" field (expected \"%.*s\"); "
                 "not a flexbench baseline?\n",
                 path.c_str(), static_cast<int>(bench::kBenchSchema.size()),
                 bench::kBenchSchema.data());
    return LoadResult::kSchemaError;
  }
  if (schema->str != bench::kBenchSchema) {
    std::fprintf(stderr,
                 "flexbench: %s: schema \"%s\" does not match this binary's "
                 "\"%.*s\"; regenerate the baseline with --report\n",
                 path.c_str(), schema->str.c_str(),
                 static_cast<int>(bench::kBenchSchema.size()),
                 bench::kBenchSchema.data());
    return LoadResult::kSchemaError;
  }
  if (const JsonValue* mode = root.Find("mode"); mode != nullptr) {
    out->mode = mode->str;
  }
  const JsonValue* benches = root.Find("benches");
  if (benches == nullptr || benches->kind != JsonValue::kObject) {
    std::fprintf(stderr, "flexbench: %s: missing benches object\n",
                 path.c_str());
    return LoadResult::kSchemaError;
  }
  for (const auto& [name, bench] : benches->object) {
    if (const JsonValue* code = bench.Find("exit_code"); code != nullptr) {
      out->exit_codes[name] = static_cast<int>(code->number);
    }
    MetricMap& metrics = out->benches[name];
    if (const JsonValue* m = bench.Find("metrics");
        m != nullptr && m->kind == JsonValue::kObject) {
      for (const auto& [key, value] : m->object) {
        metrics[key] = value.number;
      }
    }
  }
  return LoadResult::kOk;
}

// ---------------------------------------------------------------------------
// Report writing.

void AppendNumber(std::string* out, double v) {
  char buf[40];
  // %.10g round-trips every table value (<= 3 printed decimals) exactly.
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  *out += buf;
}

struct Drift {
  std::string bench;
  std::string metric;
  double baseline = 0;
  double run = 0;
  bool missing = false;  // In baseline but not in this run.
  bool added = false;    // In this run but not in the baseline.
};

std::string BuildReport(const Options& opts, const char* kind,
                        const std::vector<std::pair<std::string, BenchRun>>&
                            runs,
                        const std::vector<Drift>* drifts, bool pass) {
  std::string out = "{\n  \"schema\": \"";
  out += bench::kBenchSchema;
  out += "\",\n  \"kind\": \"";
  out += kind;
  out += "\",\n  \"mode\": \"";
  out += opts.smoke ? "smoke" : "full";
  // Self-describing baselines: the vCPU pin the smp benches ran with
  // (0 = their default 1/2/4 sweep).
  out += "\",\n  \"vcpus\": ";
  AppendNumber(&out, opts.vcpus);
  out += ",\n  \"tolerance\": ";
  AppendNumber(&out, opts.tolerance);
  out += ",\n  \"benches\": {\n";
  bool first_bench = true;
  for (const auto& [name, run] : runs) {
    if (!first_bench) {
      out += ",\n";
    }
    first_bench = false;
    out += "    \"" + name + "\": {\"exit_code\": ";
    AppendNumber(&out, run.exit_code);
    out += ", \"metrics\": {";
    bool first_metric = true;
    for (const auto& [key, value] : run.metrics) {
      if (!first_metric) {
        out += ", ";
      }
      first_metric = false;
      out += "\"" + key + "\": ";
      AppendNumber(&out, value);
    }
    out += "}}";
  }
  out += "\n  }";
  if (drifts != nullptr) {
    out += ",\n  \"comparison\": {\n    \"baseline\": \"";
    out += opts.baseline_path;
    out += "\",\n    \"status\": \"";
    out += pass ? "pass" : "fail";
    out += "\",\n    \"regressions\": [";
    bool first = true;
    for (const Drift& drift : *drifts) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += "\n      {\"bench\": \"" + drift.bench + "\", \"metric\": \"" +
             drift.metric + "\", ";
      if (drift.missing) {
        out += "\"missing\": true, ";
      }
      if (drift.added) {
        out += "\"added\": true, ";
      }
      out += "\"baseline\": ";
      AppendNumber(&out, drift.baseline);
      out += ", \"run\": ";
      AppendNumber(&out, drift.run);
      out += "}";
    }
    out += first ? "]" : "\n    ]";
    out += "\n  }";
  }
  out += "\n}\n";
  return out;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << content;
  return out.good();
}

// ---------------------------------------------------------------------------
// Differential mode (--diff OLD.json NEW.json).

// Backend-token match with word boundaries: a token matches only when
// delimited by characters outside [a-zA-Z0-9-], so "mpk-shared" never fires
// inside "mpk-switched" and "none" matches the label "backend_none" but not
// "nonempty". Longest-first order below is belt-and-braces on top of that.
bool KeyHasBackendToken(const std::string& key, std::string_view token) {
  size_t pos = 0;
  while ((pos = key.find(token.data(), pos, token.size())) !=
         std::string::npos) {
    const bool left_ok =
        pos == 0 ||
        (std::isalnum(static_cast<unsigned char>(key[pos - 1])) == 0 &&
         key[pos - 1] != '-');
    const size_t end = pos + token.size();
    const bool right_ok =
        end == key.size() ||
        (std::isalnum(static_cast<unsigned char>(key[end])) == 0 &&
         key[end] != '-');
    if (left_ok && right_ok) {
      return true;
    }
    ++pos;
  }
  return false;
}

int RunDiff(const Options& opts) {
  Baseline old_doc;
  Baseline new_doc;
  for (const auto& [path, doc] :
       {std::pair<const std::string&, Baseline*>{opts.diff_old_path, &old_doc},
        std::pair<const std::string&, Baseline*>{opts.diff_new_path,
                                                 &new_doc}}) {
    const LoadResult loaded = LoadBaseline(path, doc);
    if (loaded != LoadResult::kOk) {
      return loaded == LoadResult::kIoError ? 2 : 3;
    }
  }
  std::printf("flexbench: diff %s -> %s\n", opts.diff_old_path.c_str(),
              opts.diff_new_path.c_str());

  // Longest token first so the per-key scan reads naturally in the output;
  // matching itself is boundary-exact (see KeyHasBackendToken).
  static constexpr std::string_view kBackendTokens[] = {
      "mpk-switched", "mpk-shared", "vm-rpc", "none"};
  // backend -> accumulated |relative delta| over changed entries whose key
  // names that backend. Relative (not absolute) so a 5-cycle boundary and an
  // 8000-cycle boundary compete on movement, not scale.
  std::map<std::string, double, std::less<>> backend_signal;

  // Union of bench names, then union of metric keys per bench; both sides
  // are std::map so iteration (and the table) is deterministic.
  std::vector<std::string> bench_names;
  for (const auto& [name, metrics] : old_doc.benches) {
    bench_names.push_back(name);
  }
  for (const auto& [name, metrics] : new_doc.benches) {
    if (old_doc.benches.find(name) == old_doc.benches.end()) {
      bench_names.push_back(name);
    }
  }

  size_t changed = 0;
  bool header_printed = false;
  auto print_header = [&]() {
    if (!header_printed) {
      std::printf("  %-20s %-34s %14s %14s %14s %10s\n", "bench", "metric",
                  "old", "new", "delta", "rel");
      header_printed = true;
    }
  };
  static const MetricMap kEmpty;
  for (const std::string& name : bench_names) {
    auto old_it = old_doc.benches.find(name);
    auto new_it = new_doc.benches.find(name);
    const MetricMap& old_metrics =
        old_it != old_doc.benches.end() ? old_it->second : kEmpty;
    const MetricMap& new_metrics =
        new_it != new_doc.benches.end() ? new_it->second : kEmpty;
    for (const auto& [key, old_value] : old_metrics) {
      auto it = new_metrics.find(key);
      if (it == new_metrics.end()) {
        print_header();
        std::printf("  %-20s %-34s %14.6g %14s %14s %10s\n", name.c_str(),
                    key.c_str(), old_value, "-", "-", "removed");
        ++changed;
        continue;
      }
      const double new_value = it->second;
      if (new_value == old_value) {
        continue;
      }
      const double delta = new_value - old_value;
      const double rel_mag =
          std::fabs(delta) / std::max(std::fabs(old_value), 1e-9);
      print_header();
      std::printf("  %-20s %-34s %14.6g %14.6g %+14.6g %+9.3f%%\n",
                  name.c_str(), key.c_str(), old_value, new_value, delta,
                  delta / std::max(std::fabs(old_value), 1e-9) * 100.0);
      ++changed;
      const std::string qualified = name + "." + key;
      for (const std::string_view token : kBackendTokens) {
        if (KeyHasBackendToken(qualified, token)) {
          backend_signal[std::string(token)] += rel_mag;
        }
      }
    }
    for (const auto& [key, new_value] : new_metrics) {
      if (old_metrics.find(key) == old_metrics.end()) {
        print_header();
        std::printf("  %-20s %-34s %14s %14.6g %14s %10s\n", name.c_str(),
                    key.c_str(), "-", new_value, "-", "added");
        ++changed;
      }
    }
  }

  if (changed == 0) {
    std::printf("flexbench: no differences\n");
    return 0;
  }
  std::printf("flexbench: %zu differing entries\n", changed);
  if (backend_signal.empty()) {
    std::printf("flexbench: dominant boundary signal: unattributed "
                "(no backend token in any changed metric key)\n");
    return 0;
  }
  std::printf("flexbench: boundary attribution (sum of |rel delta| over "
              "changed metrics naming each backend):\n");
  const std::pair<const std::string, double>* dominant = nullptr;
  for (const auto& entry : backend_signal) {
    std::printf("  %-14s %10.4f\n", entry.first.c_str(), entry.second);
    if (dominant == nullptr || entry.second > dominant->second) {
      dominant = &entry;
    }
  }
  std::printf("flexbench: dominant boundary signal: %s\n",
              dominant->first.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--bindir") {
      const char* v = next_value();
      if (v == nullptr) {
        return Usage();
      }
      opts.bindir = v;
    } else if (arg == "--baseline") {
      const char* v = next_value();
      if (v == nullptr) {
        return Usage();
      }
      opts.baseline_path = v;
    } else if (arg == "--out") {
      const char* v = next_value();
      if (v == nullptr) {
        return Usage();
      }
      opts.out_path = v;
    } else if (arg == "--write-baseline") {
      const char* v = next_value();
      if (v == nullptr) {
        return Usage();
      }
      opts.write_baseline_path = v;
    } else if (arg == "--tolerance") {
      const char* v = next_value();
      if (v == nullptr) {
        return Usage();
      }
      opts.tolerance = std::strtod(v, nullptr);
    } else if (arg == "--smoke") {
      opts.smoke = true;
    } else if (arg == "--chaos") {
      opts.chaos = true;
    } else if (arg == "--adapt") {
      opts.adapt = true;
    } else if (arg == "--vcpus") {
      const char* v = next_value();
      if (v == nullptr) {
        return Usage();
      }
      opts.vcpus = std::atoi(v);
    } else if (arg == "--diff") {
      const char* old_path = next_value();
      const char* new_path = next_value();
      if (old_path == nullptr || new_path == nullptr) {
        return Usage();
      }
      opts.diff_old_path = old_path;
      opts.diff_new_path = new_path;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::fprintf(stderr, "flexbench: unknown argument %s\n", arg.c_str());
      return Usage();
    }
  }

  if (!opts.diff_old_path.empty()) {
    return RunDiff(opts);
  }

  Baseline baseline;
  const bool checking = !opts.baseline_path.empty();
  if (checking) {
    const LoadResult loaded = LoadBaseline(opts.baseline_path, &baseline);
    if (loaded != LoadResult::kOk) {
      return loaded == LoadResult::kIoError ? 2 : 3;
    }
  }
  const char* mode = opts.smoke ? "smoke" : "full";
  if (checking && !baseline.mode.empty() && baseline.mode != mode) {
    std::fprintf(stderr,
                 "flexbench: baseline %s is a %s-mode snapshot but this is "
                 "a %s run\n",
                 opts.baseline_path.c_str(), baseline.mode.c_str(), mode);
    return 3;
  }

  std::vector<std::pair<std::string, BenchRun>> runs;
  std::vector<Drift> drifts;
  bool benches_ok = true;
  for (const BenchSpec& spec : kBenchManifest) {
    if (opts.chaos && !spec.chaos) {
      continue;
    }
    if (opts.adapt && !spec.adapt) {
      continue;
    }
    BenchRun run;
    if (!RunBench(opts, spec, &run)) {
      return 2;
    }
    const bool ok = run.exit_code == 0;
    benches_ok = benches_ok && ok;
    std::printf("flexbench: %-20s exit=%d %s%zu metrics\n",
                std::string(spec.name).c_str(), run.exit_code,
                ok ? "" : "FAILED ", run.metrics.size());
    if (checking && spec.compare) {
      auto base_it = baseline.benches.find(std::string(spec.name));
      if (base_it == baseline.benches.end()) {
        std::fprintf(stderr,
                     "flexbench: bench %s missing from baseline — "
                     "regenerate with scripts/bench_snapshot.sh\n",
                     std::string(spec.name).c_str());
        drifts.push_back(Drift{std::string(spec.name), "*", 0, 0,
                               /*missing=*/true, /*added=*/false});
      } else {
        const MetricMap& base = base_it->second;
        for (const auto& [key, base_value] : base) {
          auto it = run.metrics.find(key);
          if (it == run.metrics.end()) {
            drifts.push_back(Drift{std::string(spec.name), key, base_value,
                                   0, /*missing=*/true, /*added=*/false});
            continue;
          }
          const double run_value = it->second;
          const double scale = std::max(std::fabs(base_value), 1e-9);
          if (std::fabs(run_value - base_value) / scale > opts.tolerance) {
            drifts.push_back(Drift{std::string(spec.name), key, base_value,
                                   run_value, false, false});
          }
        }
        for (const auto& [key, run_value] : run.metrics) {
          if (base.find(key) == base.end()) {
            drifts.push_back(Drift{std::string(spec.name), key, 0, run_value,
                                   /*missing=*/false, /*added=*/true});
          }
        }
      }
    }
    runs.emplace_back(std::string(spec.name), std::move(run));
  }

  const bool pass = benches_ok && drifts.empty();
  if (!drifts.empty()) {
    std::fprintf(stderr, "flexbench: %zu drifted entries (tolerance %.3g):\n",
                 drifts.size(), opts.tolerance);
    std::fprintf(stderr, "  %-20s %-34s %14s %14s %14s %10s\n", "bench",
                 "metric", "baseline", "run", "delta", "rel");
    for (const Drift& drift : drifts) {
      if (drift.missing) {
        std::fprintf(stderr, "  %-20s %-34s %14.6g %14s %14s %10s\n",
                     drift.bench.c_str(), drift.metric.c_str(), drift.baseline,
                     "-", "-", "missing");
      } else if (drift.added) {
        std::fprintf(stderr, "  %-20s %-34s %14s %14.6g %14s %10s\n",
                     drift.bench.c_str(), drift.metric.c_str(), "-", drift.run,
                     "-", "added");
      } else {
        const double delta = drift.run - drift.baseline;
        const double rel =
            delta / std::max(std::fabs(drift.baseline), 1e-9) * 100.0;
        std::fprintf(stderr, "  %-20s %-34s %14.6g %14.6g %+14.6g %+9.3f%%\n",
                     drift.bench.c_str(), drift.metric.c_str(), drift.baseline,
                     drift.run, delta, rel);
      }
    }
  }

  if (!opts.write_baseline_path.empty()) {
    const std::string report =
        BuildReport(opts, "baseline", runs, nullptr, pass);
    if (!WriteFile(opts.write_baseline_path, report)) {
      std::fprintf(stderr, "flexbench: cannot write %s\n",
                   opts.write_baseline_path.c_str());
      return 2;
    }
  }
  if (!opts.out_path.empty()) {
    const std::string report = BuildReport(
        opts, "run", runs, checking ? &drifts : nullptr, pass);
    if (!WriteFile(opts.out_path, report)) {
      std::fprintf(stderr, "flexbench: cannot write %s\n",
                   opts.out_path.c_str());
      return 2;
    }
  }

  if (!benches_ok) {
    std::fprintf(stderr, "flexbench: FAIL (bench exited non-zero)\n");
    return 1;
  }
  if (!drifts.empty()) {
    std::fprintf(stderr,
                 "flexbench: FAIL (%zu drifted metrics; intentional? "
                 "regenerate with scripts/bench_snapshot.sh)\n",
                 drifts.size());
    return 1;
  }
  std::printf("flexbench: PASS (%zu benches%s)\n", runs.size(),
              checking ? ", baseline matched" : "");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace flexos

int main(int argc, char** argv) {
  return flexos::bench::Run(argc, argv);
}
