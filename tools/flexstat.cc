// flexstat CLI: boots a FlexOS image configuration, drives an iperf-style
// transfer through it, and reports what the observability layer saw — a
// per-boundary table (gate crossings, batch hit rate, marshalled bytes,
// p50/p99 gate overhead) plus optional JSON metric and Chrome-trace dumps.
//
//   flexstat [options] <config.conf>
//     --bytes N        total bytes to transfer (default 1 MiB)
//     --buffer N       server recv-buffer bytes (default 16 KiB)
//     --batch          enable net->libc signal batching (GateBatch)
//     --json           print the metrics registry as JSON instead of a table
//     --metrics FILE   also write the metrics JSON to FILE
//     --trace FILE     enable tracing; write Chrome trace-event JSON to FILE
//                      (load in Perfetto or chrome://tracing; gate spans
//                      carry a "req" arg linking them to their request)
//     --request SPEC   enable the attributor; print per-request latency
//                      breakdowns. SPEC = "all" for the summary table or a
//                      request id for the per-compartment/per-boundary view
//     --flame FILE     enable the attributor; write collapsed-stack cycles
//                      ("stack count" lines for flamegraph.pl / Speedscope)
//                      to FILE, or to stdout when FILE is "-"
//     --vcpus N        boot N simulated vCPUs (default 1); the boundary
//                      table grows a per-vCPU crossing breakdown column
//     --vcpu ID        with --vcpus, restrict the per-vCPU column to one
//                      vCPU's crossings
//     --watch          enable flexwatch windowing; print a per-window table
//                      (crossings, gate p99, per-vCPU utilization)
//     --window N       flexwatch window length in cycles (default 1 ms of
//                      virtual time); implies --watch
//     --timeline FILE  write the retained windows as flexos-timeline-v1
//                      JSON to FILE; implies --watch
//     --slo            print the SLO watchdog report (the config declares
//                      watchdogs with "slo <pattern> <stat> <op> <value>")
//     --prom FILE      write the end-of-run metrics in Prometheus text
//                      exposition format to FILE (serve via a textfile
//                      collector)
//     --critpath       enable the attributor + tracer and print the
//                      critical-path decomposition: per-boundary share of
//                      end-to-end path time, per-request segment breakdown,
//                      and the scheduler edge counts recovered from the
//                      trace. With --json, prints the flexos-critpath-v1
//                      document INSTEAD of the metrics JSON (byte-identical
//                      across same-seed replays)
//     --whatif B=BACKEND  predict the end-to-end effect of re-isolating
//                      boundary B (a "c0.c1" suffix or full metric name)
//                      with BACKEND (none|mpk-shared|mpk-switched|vm-rpc);
//                      repeatable; implies --critpath
//     --advise         rank every boundary x backend re-placement by
//                      predicted end-to-end savings (promote = stronger
//                      isolation, demote = weaker); implies --critpath
//     --adapt          enable the flexadapt policy engine ("adapt on", with
//                      the config's other adapt knobs) and print its
//                      decision log after the run. With --json, prints the
//                      flexos-adapt-v1 document INSTEAD of the metrics JSON
//                      (byte-identical across same-seed replays)
//
// Exit status: 0 on a complete run, 1 when the workload fails, 2 on usage
// or I/O errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "apps/iperf_client.h"
#include "apps/iperf_server.h"
#include "apps/testbed.h"
#include "core/config_parser.h"
#include "core/gate_costs.h"
#include "obs/critpath.h"
#include "obs/export.h"
#include "obs/names.h"
#include "support/strings.h"

namespace flexos {
namespace {

struct Options {
  uint64_t total_bytes = 1ull << 20;
  uint64_t recv_buffer = 16ull << 10;
  bool batch = false;
  bool json = false;
  std::string metrics_path;
  std::string trace_path;
  std::string request_spec;  // "all" or a request id; empty = off.
  std::string flame_path;    // "-" = stdout; empty = off.
  std::string config_path;
  int vcpus = 1;
  int vcpu_filter = -1;  // -1 = show all vCPUs in the per-vCPU column.
  bool watch = false;
  uint64_t window_cycles = 0;  // 0 = the 1 ms default.
  std::string timeline_path;
  bool slo_report = false;
  std::string prom_path;
  bool critpath = false;
  bool advise = false;
  bool adapt = false;
  // --whatif entries as (boundary, backend-name), validated after the run.
  std::vector<std::pair<std::string, std::string>> whatifs;
};

int Usage() {
  std::fprintf(stderr,
               "usage: flexstat [--bytes N] [--buffer N] [--batch] [--json]\n"
               "                [--metrics FILE] [--trace FILE]\n"
               "                [--request all|ID] [--flame FILE|-]\n"
               "                [--vcpus N] [--vcpu ID]\n"
               "                [--watch] [--window N] [--timeline FILE]\n"
               "                [--slo] [--prom FILE] [--critpath]\n"
               "                [--whatif BOUNDARY=BACKEND] [--advise]\n"
               "                [--adapt] <config.conf>\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out << content;
  return out.good();
}

// One table row per (backend, from, to) boundary, assembled from the
// gate.* metric families (obs/names.h).
struct BoundaryRow {
  std::string backend;
  std::string from;
  std::string to;
  uint64_t crossings = 0;
  uint64_t batched = 0;
  uint64_t bytes = 0;
  // Per-vCPU crossing counts, sized vcpus when the machine boots more than
  // one vCPU (the `gate.crossings.<...>.v<id>` counters), else empty.
  std::vector<uint64_t> per_vcpu;
  const obs::LatencyHistogram* latency = nullptr;
};

std::vector<BoundaryRow> CollectBoundaries(
    const obs::MetricsRegistry& registry, int vcpus) {
  std::map<std::string, BoundaryRow> rows;  // key: backend.from.to
  for (const obs::MetricsRegistry::Entry& entry : registry.Entries()) {
    obs::GateMetricParts parts;
    if (!obs::ParseGateMetricName(entry.name, &parts)) {
      continue;
    }
    const std::string key = std::string(parts.backend) + "." +
                            std::string(parts.from) + "." +
                            std::string(parts.to);
    BoundaryRow& row = rows[key];
    row.backend = parts.backend;
    row.from = parts.from;
    row.to = parts.to;
    if (parts.family == "crossings" && entry.counter != nullptr) {
      row.crossings = entry.counter->value();
    } else if (parts.family == "batched" && entry.counter != nullptr) {
      row.batched = entry.counter->value();
    } else if (parts.family == "bytes" && entry.counter != nullptr) {
      row.bytes = entry.counter->value();
    } else if (parts.family == "latency_ns" && entry.histogram != nullptr) {
      row.latency = entry.histogram;
    }
  }
  std::vector<BoundaryRow> out;
  for (auto& [key, row] : rows) {
    if (vcpus > 1) {
      // The per-vCPU counters use a 5th dot-field ("...v<id>") so the
      // generic parse above skips them; fetch them by exact name.
      for (int v = 0; v < vcpus; ++v) {
        const std::string name = "gate.crossings." + row.backend + "." +
                                 row.from + "." + row.to + ".v" +
                                 std::to_string(v);
        row.per_vcpu.push_back(registry.CounterValue(name));
      }
    }
    out.push_back(row);
  }
  return out;
}

void PrintTable(const std::vector<BoundaryRow>& rows, const Machine& machine,
                uint64_t bytes_received, double seconds, int vcpu_filter) {
  const bool smp = !rows.empty() && !rows[0].per_vcpu.empty();
  std::printf("%-18s %-12s %10s %10s %6s %12s %9s %9s%s\n", "boundary",
              "backend", "crossings", "batched", "hit%", "bytes", "p50(ns)",
              "p99(ns)", smp ? "  per-vcpu" : "");
  for (const BoundaryRow& row : rows) {
    // Batch hit rate: share of recorded bodies that rode a batched
    // crossing (batched bodies vs. batched + solo crossings).
    const uint64_t bodies = row.crossings + row.batched;
    const double hit =
        bodies == 0 ? 0.0
                    : 100.0 * static_cast<double>(row.batched) /
                          static_cast<double>(bodies);
    const uint64_t p50 = row.latency ? row.latency->Percentile(50) : 0;
    const uint64_t p99 = row.latency ? row.latency->Percentile(99) : 0;
    std::string per_vcpu;
    for (size_t v = 0; v < row.per_vcpu.size(); ++v) {
      if (vcpu_filter >= 0 && static_cast<size_t>(vcpu_filter) != v) {
        continue;
      }
      if (!per_vcpu.empty()) {
        per_vcpu += " ";
      }
      per_vcpu += "v" + std::to_string(v) + ":" +
                  std::to_string(row.per_vcpu[v]);
    }
    std::printf("%-18s %-12s %10llu %10llu %5.1f%% %12llu %9llu %9llu%s%s\n",
                (row.from + " -> " + row.to).c_str(), row.backend.c_str(),
                static_cast<unsigned long long>(row.crossings),
                static_cast<unsigned long long>(row.batched), hit,
                static_cast<unsigned long long>(row.bytes),
                static_cast<unsigned long long>(p50),
                static_cast<unsigned long long>(p99),
                per_vcpu.empty() ? "" : "  ", per_vcpu.c_str());
  }
  if (rows.empty()) {
    std::printf("(no cross-compartment boundaries: single-compartment "
                "image)\n");
  }
  const obs::MetricsRegistry& metrics = machine.metrics();
  std::printf("\n");
  std::printf("transfer: %llu bytes in %.3f virtual ms (%.2f Gb/s)\n",
              static_cast<unsigned long long>(bytes_received),
              seconds * 1e3,
              seconds > 0
                  ? static_cast<double>(bytes_received) * 8.0 / seconds / 1e9
                  : 0.0);
  std::printf("tcp: %llu seg rx, %llu seg tx, %llu retransmits\n",
              static_cast<unsigned long long>(
                  metrics.CounterValue(obs::kMetricTcpSegmentsRx)),
              static_cast<unsigned long long>(
                  metrics.CounterValue(obs::kMetricTcpSegmentsTx)),
              static_cast<unsigned long long>(
                  metrics.CounterValue(obs::kMetricTcpRetransmits)));
  std::printf("sched: %llu context switches; alloc: %llu allocations\n",
              static_cast<unsigned long long>(
                  metrics.CounterValue(obs::kMetricContextSwitches)),
              static_cast<unsigned long long>(
                  metrics.CounterValue(obs::kMetricAllocCount)));
}

// ns rendered as ms with enough digits for microsecond-scale gates.
double Ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

// Per-window view of one WindowSnapshot: gate traffic and per-vCPU
// utilization (busy / (busy + idle) over that window's counter deltas).
void PrintWatchTable(const Machine& machine) {
  const obs::TimeSeries& timeseries = machine.timeseries();
  const std::vector<obs::WindowSnapshot> windows = timeseries.Snapshot();
  const Clock& clock = machine.clock_of(0);
  std::printf("\n# flexwatch: %llu windows captured (%llu cycles each), "
              "showing last %zu\n",
              static_cast<unsigned long long>(timeseries.windows_captured()),
              static_cast<unsigned long long>(timeseries.window_cycles()),
              windows.size());
  std::printf("%5s %10s %10s %10s %12s", "win", "start(ms)", "span(ms)",
              "crossings", "gate p99(ns)");
  for (int v = 0; v < machine.vcpu_count(); ++v) {
    std::printf(" %7s", ("util v" + std::to_string(v)).c_str());
  }
  std::printf("\n");
  for (const obs::WindowSnapshot& window : windows) {
    uint64_t crossings = 0;
    for (const obs::WindowCounterSample& sample : window.counters) {
      obs::GateMetricParts parts;
      if (obs::ParseGateMetricName(sample.name, &parts) &&
          parts.family == "crossings") {
        crossings += sample.delta;
      }
    }
    uint64_t gate_p99 = 0;
    for (const obs::WindowHistSample& sample : window.histograms) {
      obs::GateMetricParts parts;
      if (obs::ParseGateMetricName(sample.name, &parts) &&
          parts.family == "latency_ns") {
        const uint64_t p99 = sample.delta.Percentile(99);
        if (p99 > gate_p99) {
          gate_p99 = p99;
        }
      }
    }
    std::printf("%5llu %10.3f %10.3f %10llu %12llu",
                static_cast<unsigned long long>(window.seq),
                Ms(clock.CyclesToNanos(window.start_cycles)),
                Ms(clock.CyclesToNanos(window.end_cycles -
                                       window.start_cycles)),
                static_cast<unsigned long long>(crossings),
                static_cast<unsigned long long>(gate_p99));
    for (int v = 0; v < machine.vcpu_count(); ++v) {
      uint64_t busy = 0;
      uint64_t idle = 0;
      const std::string busy_name =
          obs::SchedVCpuMetricName(v, obs::kVCpuBusyCycles);
      const std::string idle_name =
          obs::SchedVCpuMetricName(v, obs::kVCpuIdleCycles);
      for (const obs::WindowCounterSample& sample : window.counters) {
        if (sample.name == busy_name) {
          busy = sample.delta;
        } else if (sample.name == idle_name) {
          idle = sample.delta;
        }
      }
      const uint64_t total = busy + idle;
      std::printf(" %6.1f%%", total == 0 ? 0.0
                                         : 100.0 * static_cast<double>(busy) /
                                               static_cast<double>(total));
    }
    std::printf("\n");
  }
  if (windows.empty()) {
    std::printf("(no windows closed: run shorter than one window)\n");
  }
}

void PrintSloReport(const Machine& machine) {
  const obs::TimeSeries& timeseries = machine.timeseries();
  std::printf("\n# slo report: %llu violations across %llu windows\n",
              static_cast<unsigned long long>(timeseries.violations_total()),
              static_cast<unsigned long long>(timeseries.windows_captured()));
  for (const obs::SloSpec& spec : timeseries.watchdogs()) {
    const uint64_t violations = machine.metrics().CounterValue(
        std::string(obs::kMetricSloViolationsPrefix) + spec.EffectiveName());
    std::printf("%-8s slo %s  (%llu violations)\n",
                violations == 0 ? "OK" : "VIOLATED",
                obs::SloSpecToString(spec).c_str(),
                static_cast<unsigned long long>(violations));
  }
  if (timeseries.watchdogs().empty()) {
    std::printf("(no watchdogs declared: add \"slo <pattern> <stat> <op> "
                "<value>\" lines to the config)\n");
  }
}

void PrintRequestSummary(const obs::Attributor& attrib,
                         const Clock& clock) {
  std::printf("\n%-5s %-14s %10s %10s %10s %10s %10s %10s\n", "id", "name",
              "start(ms)", "wall(ms)", "exec(ms)", "wait(ms)", "gate(ms)",
              "crossings");
  for (const obs::RequestRecord* rec : attrib.Requests()) {
    std::printf("%-5llu %-14s %10.3f %10s %10.3f %10.3f %10.3f %10llu\n",
                static_cast<unsigned long long>(rec->id), rec->name.c_str(),
                Ms(rec->start_ns),
                rec->open ? "open"
                          : StrFormat("%.3f", Ms(rec->WallNanos())).c_str(),
                Ms(clock.CyclesToNanos(rec->execute_cycles)),
                Ms(clock.CyclesToNanos(rec->queue_wait_cycles)),
                Ms(clock.CyclesToNanos(rec->gate_cycles)),
                static_cast<unsigned long long>(rec->crossings));
  }
  if (attrib.Requests().empty()) {
    std::printf("(no requests recorded)\n");
  }
}

int PrintRequestDetail(const obs::Attributor& attrib, const Clock& clock,
                       uint64_t id) {
  const obs::RequestRecord* rec = attrib.FindRequest(id);
  if (rec == nullptr) {
    std::fprintf(stderr, "flexstat: no request with id %llu\n",
                 static_cast<unsigned long long>(id));
    return 2;
  }
  std::printf("\nrequest %llu (%s)%s\n",
              static_cast<unsigned long long>(rec->id), rec->name.c_str(),
              rec->open ? " [still open]" : "");
  if (!rec->open) {
    std::printf("  span: %.3f ms .. %.3f ms  (wall %.3f ms)\n",
                Ms(rec->start_ns), Ms(rec->end_ns), Ms(rec->WallNanos()));
  }
  std::printf("  execute: %.3f ms (%llu cycles), queue wait: %.3f ms, gate "
              "overhead: %.3f ms over %llu crossings\n",
              Ms(clock.CyclesToNanos(rec->execute_cycles)),
              static_cast<unsigned long long>(rec->execute_cycles),
              Ms(clock.CyclesToNanos(rec->queue_wait_cycles)),
              Ms(clock.CyclesToNanos(rec->gate_cycles)),
              static_cast<unsigned long long>(rec->crossings));
  std::printf("  per-compartment cycles:\n");
  for (const auto& [comp, cycles] : rec->comp_cycles) {
    std::printf("    %-10s %14llu cycles  (%.3f ms)\n",
                obs::CompartmentLabel(comp).c_str(),
                static_cast<unsigned long long>(cycles),
                Ms(clock.CyclesToNanos(cycles)));
  }
  std::printf("  per-boundary gate overhead:\n");
  for (const auto& [boundary, ns] : rec->boundary_gate_ns) {
    std::printf("    %-44s %12llu ns\n", boundary.c_str(),
                static_cast<unsigned long long>(ns));
  }
  if (rec->boundary_gate_ns.empty()) {
    std::printf("    (none)\n");
  }
  return 0;
}

// Isolation strength order for promote/demote labels: none < mpk-shared <
// mpk-switched < vm-rpc (the enum's declaration order).
int IsolationStrength(IsolationBackend backend) {
  return static_cast<int>(backend);
}

void PrintCritpath(const obs::CriticalPath& critpath) {
  std::printf("\n# critical path: total %.3f ms, %s (queue edges %llu, "
              "steals %llu, ipis %llu)\n",
              Ms(critpath.total_path_ns()),
              critpath.reconciled()
                  ? "reconciled against gate.latency_ns.*"
                  : ("NOT RECONCILED: " + critpath.reconcile_detail())
                        .c_str(),
              static_cast<unsigned long long>(critpath.queue_edges()),
              static_cast<unsigned long long>(critpath.steals()),
              static_cast<unsigned long long>(critpath.ipis()));
  std::printf("%-18s %-12s %10s %12s %12s %7s\n", "boundary", "backend",
              "crossings", "gate(ns)", "unattrib(ns)", "share");
  for (const obs::BoundaryShare& share : critpath.boundaries()) {
    std::printf("%-18s %-12s %10llu %12llu %12llu %6.2f%%\n",
                (share.from + " -> " + share.to).c_str(),
                share.backend.c_str(),
                static_cast<unsigned long long>(share.crossings),
                static_cast<unsigned long long>(share.gate_ns),
                static_cast<unsigned long long>(share.unattributed_gate_ns),
                100.0 * share.critpath_share);
  }
  if (critpath.boundaries().empty()) {
    std::printf("(no cross-compartment boundaries)\n");
  }
  for (const obs::RequestPath& path : critpath.requests()) {
    if (path.id == obs::kUnattributedRequestId) {
      std::printf("request -     (unattributed)  gate %.3f ms over %llu "
                  "crossings\n",
                  Ms(path.gate_ns),
                  static_cast<unsigned long long>(path.crossings));
      continue;
    }
    std::string vcpus;
    for (const int v : path.vcpus) {
      if (!vcpus.empty()) {
        vcpus += ",";
      }
      vcpus += std::to_string(v);
    }
    std::printf("request %-5llu %-14s wall %.3f ms = exec %.3f + gate %.3f "
                "(ipi %.3f) + wait %.3f + slack %.3f  [vcpus %s]\n",
                static_cast<unsigned long long>(path.id), path.name.c_str(),
                Ms(path.wall_ns), Ms(path.execute_ns), Ms(path.gate_ns),
                Ms(path.ipi_ns), Ms(path.queue_wait_ns), Ms(path.slack_ns),
                vcpus.empty() ? "-" : vcpus.c_str());
  }
}

int PrintWhatIf(const obs::CriticalPath& critpath, const CostModel& costs,
                const std::string& boundary, const std::string& backend_name) {
  IsolationBackend backend;
  if (!IsolationBackendFromName(backend_name, &backend)) {
    std::fprintf(stderr,
                 "flexstat: --whatif backend \"%s\" is not one of none, "
                 "mpk-shared, mpk-switched, vm-rpc\n",
                 backend_name.c_str());
    return 2;
  }
  // Accept both the metric-suffix spelling ("c0.c1") and the table's
  // display spelling ("c0 -> c1").
  std::string lookup = boundary;
  if (const size_t arrow = lookup.find(" -> "); arrow != std::string::npos) {
    lookup.replace(arrow, 4, ".");
  }
  const obs::BoundaryShare* share = critpath.FindBoundary(lookup);
  if (share == nullptr) {
    std::fprintf(stderr, "flexstat: --whatif boundary \"%s\" not found\n",
                 boundary.c_str());
    return 2;
  }
  const uint64_t predicted_cycles = PredictedCrossingCycles(
      costs, backend, kGateArgBytes, kGateRetBytes);
  const uint64_t total = critpath.total_path_ns();
  const uint64_t whatif =
      critpath.WhatIfTotalNs(share->boundary, predicted_cycles);
  const double delta_ms = Ms(total) - Ms(whatif);
  std::printf("whatif %s -> %s: %s %.3f ms -> %.3f ms (%s%.3f ms, %+.1f%%)\n",
              (share->from + "." + share->to).c_str(), backend_name.c_str(),
              share->backend.c_str(), Ms(total), Ms(whatif),
              delta_ms >= 0 ? "save " : "cost ",
              delta_ms >= 0 ? delta_ms : -delta_ms,
              total > 0 ? 100.0 * (static_cast<double>(whatif) -
                                   static_cast<double>(total)) /
                              static_cast<double>(total)
                        : 0.0);
  return 0;
}

void PrintAdvise(const obs::CriticalPath& critpath, const CostModel& costs) {
  static constexpr IsolationBackend kBackends[] = {
      IsolationBackend::kNone, IsolationBackend::kMpkSharedStack,
      IsolationBackend::kMpkSwitchedStack, IsolationBackend::kVmRpc};
  struct Advice {
    const obs::BoundaryShare* share;
    IsolationBackend backend;
    uint64_t whatif_ns;
    int64_t delta_ns;  // whatif - total; negative = faster.
  };
  std::vector<Advice> advice;
  for (const obs::BoundaryShare& share : critpath.boundaries()) {
    IsolationBackend current;
    if (!IsolationBackendFromName(share.backend, &current)) {
      continue;
    }
    for (const IsolationBackend backend : kBackends) {
      if (backend == current) {
        continue;
      }
      const uint64_t cycles = PredictedCrossingCycles(
          costs, backend, kGateArgBytes, kGateRetBytes);
      const uint64_t whatif = critpath.WhatIfTotalNs(share.boundary, cycles);
      advice.push_back(
          Advice{&share, backend, whatif,
                 static_cast<int64_t>(whatif) -
                     static_cast<int64_t>(critpath.total_path_ns())});
    }
  }
  // Biggest predicted savings first; ties broken by boundary name then
  // backend order so the report is deterministic.
  std::stable_sort(advice.begin(), advice.end(),
                   [](const Advice& a, const Advice& b) {
                     if (a.delta_ns != b.delta_ns) {
                       return a.delta_ns < b.delta_ns;
                     }
                     if (a.share->boundary != b.share->boundary) {
                       return a.share->boundary < b.share->boundary;
                     }
                     return static_cast<int>(a.backend) <
                            static_cast<int>(b.backend);
                   });
  std::printf("\n# advisor: re-placements ranked by predicted end-to-end "
              "delta (total %.3f ms)\n",
              Ms(critpath.total_path_ns()));
  std::printf("%-8s %-18s %-12s %-12s %12s %9s\n", "action", "boundary",
              "from", "to", "delta(ms)", "new(ms)");
  for (const Advice& entry : advice) {
    IsolationBackend current;
    IsolationBackendFromName(entry.share->backend, &current);
    const char* action = IsolationStrength(entry.backend) >
                                 IsolationStrength(current)
                             ? "promote"
                             : "demote";
    std::printf("%-8s %-18s %-12s %-12s %+12.3f %9.3f\n", action,
                (entry.share->from + " -> " + entry.share->to).c_str(),
                entry.share->backend.c_str(),
                std::string(IsolationBackendName(entry.backend)).c_str(),
                static_cast<double>(entry.delta_ns) / 1e6,
                Ms(entry.whatif_ns));
  }
  if (advice.empty()) {
    std::printf("(no boundaries to advise on)\n");
  }
}

int Run(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "flexstat: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--bytes") {
      const char* v = next_value("--bytes");
      if (v == nullptr) {
        return Usage();
      }
      opts.total_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--buffer") {
      const char* v = next_value("--buffer");
      if (v == nullptr) {
        return Usage();
      }
      opts.recv_buffer = std::strtoull(v, nullptr, 10);
    } else if (arg == "--batch") {
      opts.batch = true;
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--metrics") {
      const char* v = next_value("--metrics");
      if (v == nullptr) {
        return Usage();
      }
      opts.metrics_path = v;
    } else if (arg == "--trace") {
      const char* v = next_value("--trace");
      if (v == nullptr) {
        return Usage();
      }
      opts.trace_path = v;
    } else if (arg == "--request") {
      const char* v = next_value("--request");
      if (v == nullptr) {
        return Usage();
      }
      opts.request_spec = v;
    } else if (arg == "--flame") {
      const char* v = next_value("--flame");
      if (v == nullptr) {
        return Usage();
      }
      opts.flame_path = v;
    } else if (arg == "--vcpus") {
      const char* v = next_value("--vcpus");
      if (v == nullptr) {
        return Usage();
      }
      opts.vcpus = std::atoi(v);
      if (opts.vcpus < 1) {
        std::fprintf(stderr, "flexstat: --vcpus wants a positive count\n");
        return 2;
      }
    } else if (arg == "--vcpu") {
      const char* v = next_value("--vcpu");
      if (v == nullptr) {
        return Usage();
      }
      opts.vcpu_filter = std::atoi(v);
    } else if (arg == "--watch") {
      opts.watch = true;
    } else if (arg == "--window") {
      const char* v = next_value("--window");
      if (v == nullptr) {
        return Usage();
      }
      opts.window_cycles = std::strtoull(v, nullptr, 10);
      if (opts.window_cycles == 0) {
        std::fprintf(stderr, "flexstat: --window wants a positive cycle "
                     "count\n");
        return 2;
      }
      opts.watch = true;
    } else if (arg == "--timeline") {
      const char* v = next_value("--timeline");
      if (v == nullptr) {
        return Usage();
      }
      opts.timeline_path = v;
      opts.watch = true;
    } else if (arg == "--slo") {
      opts.slo_report = true;
    } else if (arg == "--critpath") {
      opts.critpath = true;
    } else if (arg == "--whatif") {
      const char* v = next_value("--whatif");
      if (v == nullptr) {
        return Usage();
      }
      const std::string spec = v;
      const size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
        std::fprintf(stderr,
                     "flexstat: --whatif wants BOUNDARY=BACKEND (e.g. "
                     "c0.c1=mpk-shared)\n");
        return 2;
      }
      opts.whatifs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
      opts.critpath = true;
    } else if (arg == "--advise") {
      opts.advise = true;
      opts.critpath = true;
    } else if (arg == "--adapt") {
      opts.adapt = true;
    } else if (arg == "--prom") {
      const char* v = next_value("--prom");
      if (v == nullptr) {
        return Usage();
      }
      opts.prom_path = v;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "flexstat: unknown flag %s\n", arg.c_str());
      return Usage();
    } else if (opts.config_path.empty()) {
      opts.config_path = arg;
    } else {
      return Usage();
    }
  }
  if (opts.config_path.empty() || opts.total_bytes == 0 ||
      opts.recv_buffer == 0) {
    return Usage();
  }

  std::string text;
  if (!ReadFile(opts.config_path, &text)) {
    std::fprintf(stderr, "flexstat: cannot read %s\n",
                 opts.config_path.c_str());
    return 2;
  }
  Result<ImageConfig> config = ParseImageConfig(text);
  if (!config.ok()) {
    std::fprintf(stderr, "flexstat: %s: %s\n", opts.config_path.c_str(),
                 config.status().ToString().c_str());
    return 2;
  }

  TestbedConfig bed_config;
  bed_config.image = config.value();
  if (opts.adapt) {
    // Force the policy engine on; the config's other adapt knobs (cooldown,
    // thresholds, allow list) still apply.
    bed_config.image.adapt.enabled = true;
  }
  bed_config.tcp.batch_crossings = opts.batch;
  bed_config.profile = !opts.request_spec.empty() ||
                       !opts.flame_path.empty() || opts.critpath;
  bed_config.watch = opts.watch || opts.slo_report;
  bed_config.window_cycles = opts.window_cycles;
  bed_config.vcpus = opts.vcpus;
  if (opts.vcpus > 1) {
    // Spread the workload off the boot vCPU so the per-vCPU column has
    // something to show: app threads start on the last vCPU, devices and
    // the platform stay on vCPU 0.
    bed_config.app_affinity = opts.vcpus - 1;
  }
  if (opts.vcpu_filter >= opts.vcpus) {
    std::fprintf(stderr, "flexstat: --vcpu %d out of range (machine has %d "
                 "vCPUs)\n", opts.vcpu_filter, opts.vcpus);
    return 2;
  }
  Testbed bed(bed_config);
  if (!opts.trace_path.empty() || opts.critpath) {
    // critpath needs the sched/gate trace stream for its queue-wait, steal,
    // and IPI edges. Tracing observes the clock, never charges it.
    bed.machine().tracer().SetEnabled(true);
  }

  IperfServerResult server_result;
  IperfServerOptions server_options;
  server_options.recv_buffer_bytes = opts.recv_buffer;
  SpawnIperfServer(bed, server_options, &server_result);

  IperfRemoteClient client(opts.total_bytes);
  RemoteTcpPeer peer(bed.machine(), bed.link(), RemoteTcpConfig{}, client);
  bed.AddPeer(&peer);
  peer.Connect();

  const Status status = bed.Run();
  const bool complete =
      status.ok() && server_result.bytes_received == opts.total_bytes;
  if (!complete) {
    std::fprintf(stderr,
                 "flexstat: workload incomplete (%s, %llu/%llu bytes)\n",
                 status.ToString().c_str(),
                 static_cast<unsigned long long>(server_result.bytes_received),
                 static_cast<unsigned long long>(opts.total_bytes));
  }

  Machine& machine = bed.machine();
  if (bed_config.profile) {
    // Charge the tail slice on every lane so flame/request totals cover
    // the whole run regardless of which vCPU a thread last ran on.
    machine.SyncAttribution();
  }
  if (machine.timeseries().enabled()) {
    // Close the trailing partial window so totals cover the whole run.
    machine.timeseries().FinalizeTail(machine.max_cycles());
  }
  if (!opts.timeline_path.empty()) {
    const std::string timeline_json = obs::TimelineToJson(
        machine.timeseries().Snapshot(), machine.timeseries().window_cycles());
    if (!WriteFile(opts.timeline_path, timeline_json)) {
      std::fprintf(stderr, "flexstat: cannot write %s\n",
                   opts.timeline_path.c_str());
      return 2;
    }
  }
  if (!opts.prom_path.empty() &&
      !WriteFile(opts.prom_path, obs::MetricsToPrometheus(machine.metrics()))) {
    std::fprintf(stderr, "flexstat: cannot write %s\n", opts.prom_path.c_str());
    return 2;
  }
  const std::string metrics_json = obs::MetricsToJson(machine.metrics());
  if (!opts.metrics_path.empty() &&
      !WriteFile(opts.metrics_path, metrics_json)) {
    std::fprintf(stderr, "flexstat: cannot write %s\n",
                 opts.metrics_path.c_str());
    return 2;
  }
  if (!opts.trace_path.empty()) {
    const std::string trace_json =
        obs::TraceToChromeJson(machine.tracer().Snapshot());
    if (!WriteFile(opts.trace_path, trace_json)) {
      std::fprintf(stderr, "flexstat: cannot write %s\n",
                   opts.trace_path.c_str());
      return 2;
    }
    const uint64_t dropped = machine.tracer().DroppedEvents();
    if (dropped > 0) {
      std::fprintf(stderr,
                   "flexstat: note: ring wrapped, %llu oldest events "
                   "dropped from %s\n",
                   static_cast<unsigned long long>(dropped),
                   opts.trace_path.c_str());
    }
  }

  if (!opts.flame_path.empty()) {
    const std::string collapsed = machine.attrib().CollapsedStacks();
    if (opts.flame_path == "-") {
      std::fputs(collapsed.c_str(), stdout);
    } else if (!WriteFile(opts.flame_path, collapsed)) {
      std::fprintf(stderr, "flexstat: cannot write %s\n",
                   opts.flame_path.c_str());
      return 2;
    }
  }

  obs::CriticalPath critpath;
  if (opts.critpath) {
    const Clock& clock = machine.clock_of(0);
    critpath.Build(
        machine.attrib(), machine.metrics(), machine.tracer().Snapshot(),
        [&clock](uint64_t cycles) { return clock.CyclesToNanos(cycles); },
        machine.costs().ipi);
  }

  if (opts.json) {
    // --critpath/--adapt with --json print their deterministic documents
    // alone: the byte-identity contract (same seed -> same bytes) would not
    // survive interleaving with other output.
    if (opts.adapt) {
      std::fputs(bed.adapt_engine()->ToJson().c_str(), stdout);
    } else if (opts.critpath) {
      std::fputs(critpath.ToJson().c_str(), stdout);
    } else {
      std::fputs(metrics_json.c_str(), stdout);
    }
    std::fputc('\n', stdout);
  } else {
    std::printf("# %s (backend %s, %llu bytes, %llu B recv buffer%s%s)\n",
                opts.config_path.c_str(),
                std::string(IsolationBackendName(bed_config.image.backend))
                    .c_str(),
                static_cast<unsigned long long>(opts.total_bytes),
                static_cast<unsigned long long>(opts.recv_buffer),
                opts.batch ? ", batching" : "",
                opts.vcpus > 1
                    ? (", " + std::to_string(opts.vcpus) + " vcpus").c_str()
                    : "");
    PrintTable(CollectBoundaries(machine.metrics(), machine.vcpu_count()),
               machine, server_result.bytes_received,
               machine.clock().NowSeconds(), opts.vcpu_filter);
  }

  if (opts.watch && !opts.json) {
    PrintWatchTable(machine);
  }
  if (opts.slo_report) {
    PrintSloReport(machine);
  }

  if (opts.critpath && !opts.json) {
    PrintCritpath(critpath);
    for (const auto& [boundary, backend] : opts.whatifs) {
      const int rc = PrintWhatIf(critpath, machine.costs(), boundary, backend);
      if (rc != 0) {
        return rc;
      }
    }
    if (opts.advise) {
      PrintAdvise(critpath, machine.costs());
    }
  }

  if (opts.adapt && !opts.json) {
    std::fputs(bed.adapt_engine()->ToTable().c_str(), stdout);
  }

  if (!opts.request_spec.empty()) {
    if (opts.request_spec == "all") {
      PrintRequestSummary(machine.attrib(), machine.clock());
    } else {
      char* end = nullptr;
      const uint64_t id = std::strtoull(opts.request_spec.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "flexstat: --request wants 'all' or an id\n");
        return 2;
      }
      const int rc = PrintRequestDetail(machine.attrib(), machine.clock(), id);
      if (rc != 0) {
        return rc;
      }
    }
  }
  return complete ? 0 : 1;
}

}  // namespace
}  // namespace flexos

int main(int argc, char** argv) { return flexos::Run(argc, argv); }
