// flexlint CLI: lints FlexOS image configurations and per-library metadata
// DSL files against the rule catalog in DESIGN.md §6.
//
//   flexlint [--json] <config.conf>...          lint image configs
//   flexlint [--json] --meta <lib> <file>...    lint metadata DSL files
//
// Exit status: 0 when no error-severity finding was produced, 1 when at
// least one was, 2 on usage or I/O errors. Warnings never fail the run.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/flexlint.h"
#include "core/config_parser.h"

namespace flexos {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: flexlint [--json] <config.conf>...\n"
               "       flexlint [--json] --meta <lib> <metafile>...\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

LintReport LintConfigText(const std::string& text) {
  Result<ImageConfig> config = ParseImageConfig(text);
  if (!config.ok()) {
    LintReport report;
    report.diagnostics.push_back(LintDiagnostic{
        std::string(kRuleParse), LintSeverity::kError, "config",
        "config does not parse: " + config.status().ToString(),
        "fix the config syntax (see src/core/config_parser.h)"});
    return report;
  }
  return LintConfig(config.value());
}

int Run(int argc, char** argv) {
  bool json = false;
  bool meta_mode = false;
  std::string meta_lib;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--meta") {
      if (i + 1 >= argc) {
        return Usage();
      }
      meta_mode = true;
      meta_lib = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "flexlint: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    return Usage();
  }

  bool any_errors = false;
  std::string json_out = "[";
  for (size_t i = 0; i < files.size(); ++i) {
    const std::string& path = files[i];
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "flexlint: cannot read %s\n", path.c_str());
      return 2;
    }
    const LintReport report =
        meta_mode ? LintMetaText(meta_lib, text) : LintConfigText(text);
    any_errors = any_errors || report.HasErrors();
    if (json) {
      if (i > 0) {
        json_out += ',';
      }
      json_out += "{\"file\":\"" + path +
                  "\",\"diagnostics\":" + report.ToJson();
      if (!meta_mode) {
        // The observability contract for this config: every boundary the
        // declared call graph crosses, with the gate.* metric names a
        // built image will emit for it (obs/names.h).
        Result<ImageConfig> config = ParseImageConfig(text);
        if (config.ok()) {
          json_out += ",\"boundaries\":" +
                      BoundaryMetricNamesJson(
                          ExtractModel(config.value(), BuiltinMetaResolver()));
        }
      }
      json_out += "}";
    } else {
      std::printf("== %s: %zu finding(s)\n", path.c_str(),
                  report.diagnostics.size());
      std::fputs(report.ToText().c_str(), stdout);
    }
  }
  if (json) {
    json_out += "]\n";
    std::fputs(json_out.c_str(), stdout);
  }
  return any_errors ? 1 : 0;
}

}  // namespace
}  // namespace flexos

int main(int argc, char** argv) { return flexos::Run(argc, argv); }
