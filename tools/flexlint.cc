// flexlint CLI: lints FlexOS image configurations and per-library metadata
// DSL files against the rule catalog in DESIGN.md §6.
//
//   flexlint [--json] <config.conf>...          lint image configs
//   flexlint [--json] --meta <lib> <file>...    lint metadata DSL files
//   flexlint [--json] --races <trace.json>...   replay traces for data races
//
// --races replays the cat=race events of a captured Chrome trace (flexstat
// --trace, or any obs::TraceToChromeJson export from a run with race
// detection on) through the flexrace happens-before detector offline,
// reaching the same verdict as the in-situ validator (DESIGN.md §13).
//
// Exit status: 0 when no error-severity finding (or race) was produced, 1
// when at least one was, 2 on usage or I/O errors. Warnings never fail the
// run.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/flexlint.h"
#include "analysis/race_replay.h"
#include "core/config_parser.h"

namespace flexos {
namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: flexlint [--json] <config.conf>...\n"
               "       flexlint [--json] --meta <lib> <metafile>...\n"
               "       flexlint [--json] --races <trace.json>...\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

LintReport LintConfigText(const std::string& text) {
  Result<ImageConfig> config = ParseImageConfig(text);
  if (!config.ok()) {
    LintReport report;
    report.diagnostics.push_back(LintDiagnostic{
        std::string(kRuleParse), LintSeverity::kError, "config",
        "config does not parse: " + config.status().ToString(),
        "fix the config syntax (see src/core/config_parser.h)"});
    return report;
  }
  return LintConfig(config.value());
}

// Replays captured traces for data races; the --races mode main loop.
int RunRaceReplay(const std::vector<std::string>& files, bool json) {
  bool any_races = false;
  std::string json_out = "[";
  for (size_t i = 0; i < files.size(); ++i) {
    std::string text;
    if (!ReadFile(files[i], &text)) {
      std::fprintf(stderr, "flexlint: cannot read %s\n", files[i].c_str());
      return 2;
    }
    const Result<analysis::RaceReplayResult> replay =
        analysis::ReplayRaces(text);
    if (!replay.ok()) {
      std::fprintf(stderr, "flexlint: %s: %s\n", files[i].c_str(),
                   replay.status().ToString().c_str());
      return 2;
    }
    any_races = any_races || !replay->races.empty();
    if (json) {
      if (i > 0) {
        json_out += ',';
      }
      json_out += "{\"file\":\"" + files[i] +
                  "\",\"replay\":" + analysis::RaceReplayToJson(*replay) +
                  "}";
    } else {
      std::printf("== %s\n", files[i].c_str());
      std::fputs(analysis::RaceReplayToText(*replay).c_str(), stdout);
    }
  }
  if (json) {
    json_out += "]\n";
    std::fputs(json_out.c_str(), stdout);
  }
  return any_races ? 1 : 0;
}

int Run(int argc, char** argv) {
  bool json = false;
  bool meta_mode = false;
  bool races_mode = false;
  std::string meta_lib;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--meta") {
      if (i + 1 >= argc) {
        return Usage();
      }
      meta_mode = true;
      meta_lib = argv[++i];
    } else if (arg == "--races") {
      races_mode = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "flexlint: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty() || (meta_mode && races_mode)) {
    return Usage();
  }
  if (races_mode) {
    return RunRaceReplay(files, json);
  }

  bool any_errors = false;
  std::string json_out = "[";
  for (size_t i = 0; i < files.size(); ++i) {
    const std::string& path = files[i];
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "flexlint: cannot read %s\n", path.c_str());
      return 2;
    }
    const LintReport report =
        meta_mode ? LintMetaText(meta_lib, text) : LintConfigText(text);
    any_errors = any_errors || report.HasErrors();
    if (json) {
      if (i > 0) {
        json_out += ',';
      }
      json_out += "{\"file\":\"" + path +
                  "\",\"diagnostics\":" + report.ToJson();
      if (!meta_mode) {
        // The observability contract for this config: every boundary the
        // declared call graph crosses, with the gate.* metric names a
        // built image will emit for it (obs/names.h).
        Result<ImageConfig> config = ParseImageConfig(text);
        if (config.ok()) {
          json_out += ",\"boundaries\":" +
                      BoundaryMetricNamesJson(
                          ExtractModel(config.value(), BuiltinMetaResolver()));
        }
      }
      json_out += "}";
    } else {
      std::printf("== %s: %zu finding(s)\n", path.c_str(),
                  report.diagnostics.size());
      std::fputs(report.ToText().c_str(), stdout);
    }
  }
  if (json) {
    json_out += "]\n";
    std::fputs(json_out.c_str(), stdout);
  }
  return any_errors ? 1 : 0;
}

}  // namespace
}  // namespace flexos

int main(int argc, char** argv) { return flexos::Run(argc, argv); }
