// FunctionRef: a non-owning, non-allocating reference to a callable — two
// words (object pointer + trampoline), trivially copyable. The gate dispatch
// path takes bodies by FunctionRef instead of std::function so that every
// cross-compartment call is free of heap allocation and type-erasure
// overhead; the referenced callable only needs to outlive the call, which
// holds for the synchronous gate crossings this codebase performs.
#ifndef FLEXOS_SUPPORT_FUNCTION_REF_H_
#define FLEXOS_SUPPORT_FUNCTION_REF_H_

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace flexos {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& callable) noexcept  // NOLINT(google-explicit-constructor)
      : object_(const_cast<void*>(
            static_cast<const void*>(std::addressof(callable)))),
        invoke_([](void* object, Args... args) -> R {
          return std::invoke(
              *static_cast<std::remove_reference_t<F>*>(object),
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return invoke_(object_, std::forward<Args>(args)...);
  }

 private:
  void* object_;
  R (*invoke_)(void*, Args...);
};

}  // namespace flexos

#endif  // FLEXOS_SUPPORT_FUNCTION_REF_H_
