// A doubly-linked intrusive list. Nodes embed a ListNode member; the list
// never allocates. Used by the scheduler run queue and wait queues, where
// the owner of the element controls its lifetime (Core Guidelines R.3: these
// are non-owning links).
#ifndef FLEXOS_SUPPORT_INTRUSIVE_LIST_H_
#define FLEXOS_SUPPORT_INTRUSIVE_LIST_H_

#include <cstddef>

#include "support/panic.h"

namespace flexos {

struct ListNode {
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  bool linked() const { return prev != nullptr; }

  void Unlink() {
    FLEXOS_DCHECK(linked(), "Unlink of unlinked node");
    prev->next = next;
    next->prev = prev;
    prev = nullptr;
    next = nullptr;
  }
};

// T must have a `ListNode` member; `kNodeMember` selects which one.
template <typename T, ListNode T::* kNodeMember>
class IntrusiveList {
 public:
  IntrusiveList() {
    sentinel_.prev = &sentinel_;
    sentinel_.next = &sentinel_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool empty() const { return sentinel_.next == &sentinel_; }

  size_t size() const {
    size_t n = 0;
    for (const ListNode* node = sentinel_.next; node != &sentinel_;
         node = node->next) {
      ++n;
    }
    return n;
  }

  void PushBack(T* element) { InsertBefore(&sentinel_, element); }
  void PushFront(T* element) { InsertBefore(sentinel_.next, element); }

  T* Front() { return empty() ? nullptr : FromNode(sentinel_.next); }
  T* Back() { return empty() ? nullptr : FromNode(sentinel_.prev); }

  T* PopFront() {
    if (empty()) {
      return nullptr;
    }
    T* element = FromNode(sentinel_.next);
    (element->*kNodeMember).Unlink();
    return element;
  }

  void Remove(T* element) { (element->*kNodeMember).Unlink(); }

  bool Contains(const T* element) const {
    for (const ListNode* node = sentinel_.next; node != &sentinel_;
         node = node->next) {
      if (node == &(element->*kNodeMember)) {
        return true;
      }
    }
    return false;
  }

  // Minimal forward iterator over elements.
  class Iterator {
   public:
    Iterator(ListNode* node, const ListNode* sentinel)
        : node_(node), sentinel_(sentinel) {}
    T& operator*() const { return *FromNode(node_); }
    T* operator->() const { return FromNode(node_); }
    Iterator& operator++() {
      node_ = node_->next;
      return *this;
    }
    bool operator!=(const Iterator& other) const {
      return node_ != other.node_;
    }

   private:
    ListNode* node_;
    const ListNode* sentinel_;
  };

  Iterator begin() { return Iterator(sentinel_.next, &sentinel_); }
  Iterator end() { return Iterator(&sentinel_, &sentinel_); }

 private:
  static T* FromNode(ListNode* node) {
    // Standard container_of: offset of the node member within T.
    const auto offset = reinterpret_cast<size_t>(
        &(reinterpret_cast<T*>(0)->*kNodeMember));
    return reinterpret_cast<T*>(reinterpret_cast<char*>(node) - offset);
  }

  void InsertBefore(ListNode* position, T* element) {
    ListNode* node = &(element->*kNodeMember);
    FLEXOS_DCHECK(!node->linked(), "element already on a list");
    node->prev = position->prev;
    node->next = position;
    position->prev->next = node;
    position->prev = node;
  }

  ListNode sentinel_;
};

}  // namespace flexos

#endif  // FLEXOS_SUPPORT_INTRUSIVE_LIST_H_
