#include "support/log.h"

#include <cstdarg>
#include <cstdio>

namespace flexos {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level; }

void SetLogLevel(LogLevel level) { g_level = level; }

void LogImpl(LogLevel level, const char* file, int line, const char* format,
             ...) {
  // Strip directories for compact output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  std::fprintf(stderr, "[%s %s:%d] ", LevelTag(level), base, line);
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace flexos
