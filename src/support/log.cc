#include "support/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

#include "obs/trace.h"

namespace flexos {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::atomic<LogSinkFn> g_sink{nullptr};
std::atomic<void*> g_sink_ctx{nullptr};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "T";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kNone:
      return "?";
  }
  return "?";
}

void StderrSink(const LogRecord& record, void* /*ctx*/) {
  std::fprintf(stderr, "[%s %s:%d] %.*s\n", LevelTag(record.level),
               record.file, record.line,
               static_cast<int>(record.message.size()),
               record.message.data());
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void SetLogSink(LogSinkFn fn, void* ctx) {
  g_sink_ctx.store(ctx, std::memory_order_relaxed);
  g_sink.store(fn, std::memory_order_release);
}

void LogImpl(LogLevel level, const char* file, int line, const char* format,
             ...) {
  // Strip directories for compact output.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  char buf[512];
  va_list args;
  va_start(args, format);
  const int n = std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  const std::string_view message(
      buf, n < 0 ? 0
                 : (static_cast<size_t>(n) < sizeof(buf)
                        ? static_cast<size_t>(n)
                        : sizeof(buf) - 1));

  const LogRecord record{level, base, line, message};
  const LogSinkFn sink = g_sink.load(std::memory_order_acquire);
  if (sink != nullptr) {
    sink(record, g_sink_ctx.load(std::memory_order_relaxed));
  } else {
    StderrSink(record, nullptr);
  }

  // Mirror warn+ into the trace so warnings show up on the timeline.
  // No-op when tracing is off or compiled out.
  if (level >= LogLevel::kWarn) {
    obs::TraceLogMessage(level == LogLevel::kError ? "ERROR" : "WARN",
                         message);
  }
}

}  // namespace flexos
