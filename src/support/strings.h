// Small string helpers used by the metadata parser and protocol code.
#ifndef FLEXOS_SUPPORT_STRINGS_H_
#define FLEXOS_SUPPORT_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace flexos {

// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view text);

// Splits on `sep`; empty pieces are kept. Split("a,,b", ',') = {"a","","b"}.
std::vector<std::string_view> SplitString(std::string_view text, char sep);

// Splits and trims each piece, dropping pieces that become empty.
std::vector<std::string_view> SplitAndTrim(std::string_view text, char sep);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Parses a base-10 unsigned integer; rejects trailing garbage.
std::optional<uint64_t> ParseU64(std::string_view text);

// Joins pieces with `sep`.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace flexos

#endif  // FLEXOS_SUPPORT_STRINGS_H_
