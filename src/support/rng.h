// Deterministic PRNGs for reproducible simulation. SplitMix64 seeds
// Xoshiro256** (Blackman & Vigna); both are tiny, fast, and well-distributed.
#ifndef FLEXOS_SUPPORT_RNG_H_
#define FLEXOS_SUPPORT_RNG_H_

#include <cstdint>

#include "support/panic.h"

namespace flexos {

// One 64-bit step of SplitMix64. Useful standalone for hashing.
constexpr uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Xoshiro256** PRNG; deterministic given the seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t sm = seed;
    for (uint64_t& word : state_) {
      word = SplitMix64(sm);
    }
  }

  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    FLEXOS_DCHECK(bound > 0, "NextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = -bound % bound;
    for (;;) {
      const uint64_t sample = NextU64();
      if (sample >= threshold) {
        return sample % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  uint64_t NextInRange(uint64_t lo, uint64_t hi) {
    FLEXOS_DCHECK(lo <= hi, "NextInRange: lo > hi");
    return lo + NextBelow(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  bool NextBool(double probability_true) {
    return NextDouble() < probability_true;
  }

 private:
  static constexpr uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace flexos

#endif  // FLEXOS_SUPPORT_RNG_H_
