// Status and Result<T>: the error-handling vocabulary for all expected errors
// in FlexOS. Simulated CPU traps (protection faults etc.) are the only place
// exceptions are used; see hw/trap.h.
#ifndef FLEXOS_SUPPORT_STATUS_H_
#define FLEXOS_SUPPORT_STATUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "support/panic.h"

namespace flexos {

enum class ErrorCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfMemory,
  kOutOfRange,
  kPermissionDenied,
  kFailedPrecondition,
  kResourceExhausted,
  kTimedOut,
  kWouldBlock,
  kConnectionReset,
  kConnectionRefused,
  kNotConnected,
  kBadState,
  kUnavailable,
  kUnimplemented,
  kInternal,
};

// Human-readable name of an error code, e.g. "OUT_OF_MEMORY".
std::string_view ErrorCodeName(ErrorCode code);

// A cheap, value-semantic status. An empty message is the common case and
// allocates nothing.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code) : code_(code) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_;
  std::string message_;
};

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : repr_(std::move(value)) {}
  Result(Status status) : repr_(std::move(status)) {
    FLEXOS_CHECK(!std::get<Status>(repr_).ok(),
                 "Result<T> constructed from OK status");
  }
  Result(ErrorCode code) : Result(Status(code)) {}

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  ErrorCode code() const {
    return ok() ? ErrorCode::kOk : std::get<Status>(repr_).code();
  }

  T& value() & {
    FLEXOS_CHECK(ok(), "Result::value() on error: %s",
                 status().ToString().c_str());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    FLEXOS_CHECK(ok(), "Result::value() on error: %s",
                 status().ToString().c_str());
    return std::get<T>(repr_);
  }
  T&& value() && {
    FLEXOS_CHECK(ok(), "Result::value() on error: %s",
                 status().ToString().c_str());
    return std::get<T>(std::move(repr_));
  }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(repr_) : std::move(fallback);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

// Propagates a non-OK status out of the enclosing function.
#define FLEXOS_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::flexos::Status status_ = (expr);        \
    if (!status_.ok()) {                      \
      return status_;                         \
    }                                         \
  } while (0)

// Assigns the value of a Result expression or propagates its status.
#define FLEXOS_ASSIGN_OR_RETURN(lhs, expr)                 \
  FLEXOS_ASSIGN_OR_RETURN_IMPL_(                           \
      FLEXOS_STATUS_CONCAT_(result_, __LINE__), lhs, expr)
#define FLEXOS_STATUS_CONCAT_INNER_(a, b) a##b
#define FLEXOS_STATUS_CONCAT_(a, b) FLEXOS_STATUS_CONCAT_INNER_(a, b)
#define FLEXOS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) {                                    \
    return tmp.status();                              \
  }                                                   \
  lhs = std::move(tmp).value()

}  // namespace flexos

#endif  // FLEXOS_SUPPORT_STATUS_H_
