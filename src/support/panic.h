// Panic and assertion machinery. A FLEXOS_CHECK failure is a bug in the
// simulator or its caller, never a modeled guest fault (those go through
// hw/trap.h).
#ifndef FLEXOS_SUPPORT_PANIC_H_
#define FLEXOS_SUPPORT_PANIC_H_

namespace flexos {

// Prints the formatted message with source location and aborts.
[[noreturn]] void PanicImpl(const char* file, int line, const char* format,
                            ...) __attribute__((format(printf, 3, 4)));

}  // namespace flexos

#define FLEXOS_PANIC(...) ::flexos::PanicImpl(__FILE__, __LINE__, __VA_ARGS__)

#define FLEXOS_CHECK(cond, fmt, ...)                                          \
  do {                                                                        \
    if (__builtin_expect(!(cond), 0)) {                                       \
      ::flexos::PanicImpl(__FILE__, __LINE__, "CHECK failed: %s; " fmt,       \
                          #cond __VA_OPT__(, ) __VA_ARGS__);                  \
    }                                                                         \
  } while (0)

#ifdef NDEBUG
#define FLEXOS_DCHECK(cond, ...) \
  do {                           \
    (void)sizeof(cond);          \
  } while (0)
#else
#define FLEXOS_DCHECK(cond, ...) FLEXOS_CHECK(cond, __VA_ARGS__)
#endif

#endif  // FLEXOS_SUPPORT_PANIC_H_
