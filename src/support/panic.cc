#include "support/panic.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace flexos {

void PanicImpl(const char* file, int line, const char* format, ...) {
  std::fprintf(stderr, "\n*** FLEXOS PANIC at %s:%d: ", file, line);
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fprintf(stderr, " ***\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace flexos
