#include "support/strings.h"

#include <cstdarg>
#include <cstdio>

namespace flexos {
namespace {

bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::string_view TrimWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && IsSpace(text[begin])) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin && IsSpace(text[end - 1])) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> SplitString(std::string_view text, char sep) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      pieces.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::vector<std::string_view> SplitAndTrim(std::string_view text, char sep) {
  std::vector<std::string_view> pieces;
  for (std::string_view piece : SplitString(text, sep)) {
    std::string_view trimmed = TrimWhitespace(piece);
    if (!trimmed.empty()) {
      pieces.push_back(trimmed);
    }
  }
  return pieces;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<uint64_t> ParseU64(std::string_view text) {
  if (text.empty()) {
    return std::nullopt;
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return std::nullopt;  // Overflow.
    }
    value = value * 10 + digit;
  }
  return value;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += pieces[i];
  }
  return out;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace flexos
