// GateRouter: the seam between micro-libraries and FlexOS gates. Substrate
// code (netstack, libc, apps) never calls another micro-library directly; it
// routes the call through this interface, naming the source and target
// libraries — the runtime analog of the paper's `uk_gate_r` placeholders.
//
// At image-build time core/image_builder.cc installs a router that maps
// library names to compartments and charges/performs the configured gate
// (direct call, MPK shared-stack, MPK switched-stack, VM RPC) plus the
// matching ExecContext switch. The default DirectGateRouter models the
// everything-in-one-compartment baseline.
#ifndef FLEXOS_SUPPORT_GATE_ROUTER_H_
#define FLEXOS_SUPPORT_GATE_ROUTER_H_

#include <functional>
#include <string_view>

namespace flexos {

// Well-known micro-library names used by the in-tree components. Metadata
// and image configs refer to libraries by these strings.
inline constexpr std::string_view kLibApp = "app";
inline constexpr std::string_view kLibNet = "net";
inline constexpr std::string_view kLibSched = "sched";
inline constexpr std::string_view kLibLibc = "libc";
inline constexpr std::string_view kLibAlloc = "alloc";
inline constexpr std::string_view kLibFs = "fs";
inline constexpr std::string_view kLibPlatform = "platform";

class GateRouter {
 public:
  virtual ~GateRouter() = default;

  // Executes `body` as a call from micro-library `from` into `to`,
  // performing whatever domain transition the image configuration dictates.
  virtual void Call(std::string_view from, std::string_view to,
                    const std::function<void()>& body) = 0;

  // Executes `body` as a call into a *leaf routine* of library `to`
  // (memcpy-class functions): such code is statically linked into every
  // compartment, so it runs in the CALLER's protection domain — no gate,
  // no domain switch — but carries the target library's instrumentation
  // (a hardened libc means an instrumented memcpy everywhere it is
  // inlined). Stateful services (semaphores, scheduler queues) must use
  // Call instead.
  virtual void CallLeaf(std::string_view from, std::string_view to,
                        const std::function<void()>& body) {
    (void)from;
    (void)to;
    body();
  }

  // Convenience wrapper for calls that produce a value.
  template <typename T>
  T CallR(std::string_view from, std::string_view to,
          const std::function<T()>& body) {
    alignas(T) unsigned char storage[sizeof(T)];
    T* slot = nullptr;
    Call(from, to, [&] { slot = new (storage) T(body()); });
    T result = std::move(*slot);
    slot->~T();
    return result;
  }
};

// No isolation: every cross-library call is a plain function call.
class DirectGateRouter final : public GateRouter {
 public:
  void Call(std::string_view from, std::string_view to,
            const std::function<void()>& body) override {
    (void)from;
    (void)to;
    body();
  }
};

}  // namespace flexos

#endif  // FLEXOS_SUPPORT_GATE_ROUTER_H_
