// GateRouter: the seam between micro-libraries and FlexOS gates. Substrate
// code (netstack, libc, apps) never calls another micro-library directly; it
// routes the call through this interface, naming the source and target
// libraries — the runtime analog of the paper's `uk_gate_r` placeholders.
//
// At image-build time core/image_builder.cc installs a router that maps
// library names to compartments and charges/performs the configured gate
// (direct call, MPK shared-stack, MPK switched-stack, VM RPC) plus the
// matching ExecContext switch. The default DirectGateRouter models the
// everything-in-one-compartment baseline.
//
// Dispatch fast path (see DESIGN.md "Gate dispatch fast path"):
//   * Bodies are passed by FunctionRef — no heap allocation, no
//     type-erasure storage, per call.
//   * Hot components resolve a RouteHandle once (Resolve) and dispatch
//     through it, replacing per-call string-keyed lookups with a pointer
//     chase.
//   * GateBatch amortizes a burst of calls to one target over a single
//     gate entry/exit pair (one crossing, N bodies), the way a shared-ring
//     RPC amortizes notifications.
#ifndef FLEXOS_SUPPORT_GATE_ROUTER_H_
#define FLEXOS_SUPPORT_GATE_ROUTER_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>

#include "support/function_ref.h"
#include "support/panic.h"
#include "support/status.h"

namespace flexos {

struct ExecContext;      // hw/machine.h
class Gate;              // core/gate.h
struct BoundaryRuntime;  // core/image.h

namespace obs {
struct BoundaryRecorder;  // obs/metrics.h
}  // namespace obs

// Well-known micro-library names used by the in-tree components. Metadata
// and image configs refer to libraries by these strings.
inline constexpr std::string_view kLibApp = "app";
inline constexpr std::string_view kLibNet = "net";
inline constexpr std::string_view kLibSched = "sched";
inline constexpr std::string_view kLibLibc = "libc";
inline constexpr std::string_view kLibAlloc = "alloc";
inline constexpr std::string_view kLibFs = "fs";
inline constexpr std::string_view kLibPlatform = "platform";

// A resolved source->target route: everything the router needs to dispatch
// a call without touching its name tables. Plain data, resolved once
// (Resolve) against state that is fixed at image-build time, so components
// can cache handles at construction. The default-constructed handle is the
// direct no-isolation route (what DirectGateRouter resolves everything to).
struct RouteHandle {
  // Source/target library names, kept for diagnostics and so routers that
  // only implement the string-keyed virtuals still see route-keyed calls
  // (the base class falls back through them). Callers must pass names that
  // outlive the handle — the kLib* constants above do.
  std::string_view from;
  std::string_view to;
  // Execution context of the target library (owned by the router); null for
  // the default direct route, which performs no context swap.
  const ExecContext* target_exec = nullptr;
  // Gate implementing the boundary for cross-compartment routes.
  Gate* gate = nullptr;
  int from_comp = -1;
  int to_comp = -1;
  bool cross = false;        // Crosses a compartment boundary.
  bool hardened = false;     // Target library is SH-instrumented.
  bool vm_local = false;     // VM-replicated target: leaf-local (kVmRpc).
  bool to_platform = false;  // Target is the platform pseudo-library.
  // Per-boundary metrics for cross routes, resolved once with the route so
  // the dispatch fast path records counters through pointers instead of a
  // per-call map lookup (owned by the router; null on non-cross routes).
  const obs::BoundaryRecorder* obs = nullptr;
  // Route-cache epoch stamped at Resolve time. A router that re-places
  // boundary backends at runtime (flexadapt, DESIGN.md §16) bumps its epoch
  // on every swap; a held handle whose epoch is stale transparently
  // re-resolves on the next dispatch instead of using a retired gate.
  uint64_t epoch = 0;
  // Per-boundary runtime state for cross routes (owned by the router; null
  // on non-cross routes and on routers without runtime re-placement).
  BoundaryRuntime* boundary = nullptr;
};

class GateBatch;

class GateRouter {
 public:
  virtual ~GateRouter() = default;

  // Executes `body` as a call from micro-library `from` into `to`,
  // performing whatever domain transition the image configuration dictates.
  virtual void Call(std::string_view from, std::string_view to,
                    FunctionRef<void()> body) = 0;

  // Executes `body` as a call into a *leaf routine* of library `to`
  // (memcpy-class functions): such code is statically linked into every
  // compartment, so it runs in the CALLER's protection domain — no gate,
  // no domain switch — but carries the target library's instrumentation
  // (a hardened libc means an instrumented memcpy everywhere it is
  // inlined). Stateful services (semaphores, scheduler queues) must use
  // Call instead.
  virtual void CallLeaf(std::string_view from, std::string_view to,
                        FunctionRef<void()> body) {
    (void)from;
    (void)to;
    body();
  }

  // --- Route-cached fast path --------------------------------------------

  // Resolves the route `from` -> `to` once; the handle stays valid for the
  // router's lifetime. The base router keeps only the names, so
  // route-keyed calls funnel back through the string-keyed virtuals and
  // subclasses that never override the fast path still behave identically.
  virtual RouteHandle Resolve(std::string_view from, std::string_view to) {
    RouteHandle route;
    route.from = from;
    route.to = to;
    return route;
  }

  // Call/CallLeaf through a resolved route: semantically identical to the
  // string-keyed forms (same modeled charges), minus the name lookups.
  virtual void Call(const RouteHandle& route, FunctionRef<void()> body) {
    if (!route.to.empty()) {
      Call(route.from, route.to, body);
    } else {
      body();
    }
  }
  virtual void CallLeaf(const RouteHandle& route, FunctionRef<void()> body) {
    if (!route.to.empty()) {
      CallLeaf(route.from, route.to, body);
    } else {
      body();
    }
  }

  // Like Call, but a router that supervises isolating boundaries (an Image
  // with a fault handler installed, fault/supervisor.h) may refuse the
  // crossing — quarantined or permanently failed target compartment — or
  // convert a trap the gate contained into an error Status instead of
  // unwinding the caller. The base router dispatches plainly: the body
  // always runs and traps propagate, so substrate code calling TryCall
  // behaves identically to Call on unsupervised images.
  virtual Status TryCall(const RouteHandle& route, FunctionRef<void()> body) {
    Call(route, body);
    return Status::Ok();
  }

  // --- Batched crossings (driven by GateBatch) ---------------------------
  //
  // A batch enters the target domain once, runs N bodies, and exits once:
  // one modeled gate entry/exit pair per batch plus per-item marshalling.
  // Routers without batch support degrade to one full call per item.
  virtual void BatchEnter(const RouteHandle& route, GateBatch& batch) {
    (void)route;
    (void)batch;
  }
  virtual void BatchItem(const RouteHandle& route, GateBatch& batch,
                         FunctionRef<void()> body) {
    (void)batch;
    Call(route, body);
  }
  virtual void BatchExit(const RouteHandle& route, GateBatch& batch) {
    (void)route;
    (void)batch;
  }

  // Convenience wrapper for calls that produce a value. Exception-safe: the
  // result lives in a std::optional, so a throwing body or move leaves
  // nothing leaked, and a router that fails to run the body panics instead
  // of moving from uninitialized storage.
  template <typename T>
  T CallR(std::string_view from, std::string_view to,
          FunctionRef<T()> body) {
    std::optional<T> slot;
    Call(from, to, [&] { slot.emplace(body()); });
    FLEXOS_CHECK(slot.has_value(), "CallR body did not run");
    return *std::move(slot);
  }

  template <typename T>
  T CallR(const RouteHandle& route, FunctionRef<T()> body) {
    std::optional<T> slot;
    Call(route, [&] { slot.emplace(body()); });
    FLEXOS_CHECK(slot.has_value(), "CallR body did not run");
    return *std::move(slot);
  }
};

// A burst of calls to one target through a single crossing: the router
// enters the target domain on the first Run and exits at Flush/destruction,
// charging one gate entry/exit pair for the whole batch. Between items the
// caller's code keeps running under its own context; each body executes
// under the target's. Used by the netstack for semaphore signal storms
// (see TcpConfig::batch_crossings).
class GateBatch {
 public:
  GateBatch(GateRouter& router, const RouteHandle& route)
      : router_(router), route_(route) {}
  ~GateBatch() { Flush(); }

  GateBatch(const GateBatch&) = delete;
  GateBatch& operator=(const GateBatch&) = delete;

  // Runs `body` inside the batched crossing, entering the target domain on
  // the first item.
  void Run(FunctionRef<void()> body) {
    if (!entered_) {
      router_.BatchEnter(route_, *this);
      entered_ = true;
    }
    ++items_;
    router_.BatchItem(route_, *this, body);
  }

  // Ends the batch, charging the exit half of the crossing. Idempotent; an
  // empty batch charges nothing.
  void Flush() {
    if (entered_) {
      entered_ = false;
      router_.BatchExit(route_, *this);
    }
  }

  uint64_t items() const { return items_; }
  const RouteHandle& route() const { return route_; }

  // Opaque per-batch storage for the router: the image parks the saved
  // caller context plus the gate/backend pinned for the batch's lifetime
  // here between BatchEnter and BatchExit.
  static constexpr size_t kSessionBytes = 128;
  void* session() { return session_; }

 private:
  GateRouter& router_;
  RouteHandle route_;
  bool entered_ = false;
  uint64_t items_ = 0;
  alignas(alignof(std::max_align_t)) unsigned char session_[kSessionBytes];
};

// No isolation: every cross-library call is a plain function call.
class DirectGateRouter final : public GateRouter {
 public:
  using GateRouter::Call;
  using GateRouter::CallLeaf;

  void Call(std::string_view from, std::string_view to,
            FunctionRef<void()> body) override {
    (void)from;
    (void)to;
    body();
  }
};

}  // namespace flexos

#endif  // FLEXOS_SUPPORT_GATE_ROUTER_H_
