// Minimal leveled logging. The level is a process-global runtime knob
// (atomic — schedulers and tests flip it while fiber stacks are live);
// benchmarks default to kWarn so modeled hot paths stay quiet.
//
// Output goes through a pluggable sink (default: stderr). Independently of
// the sink, warn+ messages are mirrored into the active trace-event buffer
// when tracing is on, so a Perfetto timeline shows warnings in context.
#ifndef FLEXOS_SUPPORT_LOG_H_
#define FLEXOS_SUPPORT_LOG_H_

#include <string_view>

namespace flexos {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kNone = 5,
};

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

// A fully formatted log line, before presentation.
struct LogRecord {
  LogLevel level;
  const char* file;  // Basename only.
  int line;
  std::string_view message;  // Formatted body, no trailing newline.
};

// Replaces the output sink; fn == nullptr restores the default stderr
// sink. The ctx pointer is passed back on every call. The trace-event
// mirror is unaffected by the sink choice.
using LogSinkFn = void (*)(const LogRecord& record, void* ctx);
void SetLogSink(LogSinkFn fn, void* ctx);

void LogImpl(LogLevel level, const char* file, int line, const char* format,
             ...) __attribute__((format(printf, 4, 5)));

}  // namespace flexos

#define FLEXOS_LOG(level, ...)                                        \
  do {                                                                \
    if (static_cast<int>(level) >=                                    \
        static_cast<int>(::flexos::GetLogLevel())) {                  \
      ::flexos::LogImpl(level, __FILE__, __LINE__, __VA_ARGS__);      \
    }                                                                 \
  } while (0)

#define FLEXOS_TRACE(...) FLEXOS_LOG(::flexos::LogLevel::kTrace, __VA_ARGS__)
#define FLEXOS_DEBUG(...) FLEXOS_LOG(::flexos::LogLevel::kDebug, __VA_ARGS__)
#define FLEXOS_INFO(...) FLEXOS_LOG(::flexos::LogLevel::kInfo, __VA_ARGS__)
#define FLEXOS_WARN(...) FLEXOS_LOG(::flexos::LogLevel::kWarn, __VA_ARGS__)
#define FLEXOS_ERROR(...) FLEXOS_LOG(::flexos::LogLevel::kError, __VA_ARGS__)

#endif  // FLEXOS_SUPPORT_LOG_H_
