// Minimal leveled logging to stderr. The level is a process-global runtime
// knob; benchmarks default to kWarn so modeled hot paths stay quiet.
#ifndef FLEXOS_SUPPORT_LOG_H_
#define FLEXOS_SUPPORT_LOG_H_

namespace flexos {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kNone = 5,
};

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

void LogImpl(LogLevel level, const char* file, int line, const char* format,
             ...) __attribute__((format(printf, 4, 5)));

}  // namespace flexos

#define FLEXOS_LOG(level, ...)                                        \
  do {                                                                \
    if (static_cast<int>(level) >=                                    \
        static_cast<int>(::flexos::GetLogLevel())) {                  \
      ::flexos::LogImpl(level, __FILE__, __LINE__, __VA_ARGS__);      \
    }                                                                 \
  } while (0)

#define FLEXOS_TRACE(...) FLEXOS_LOG(::flexos::LogLevel::kTrace, __VA_ARGS__)
#define FLEXOS_DEBUG(...) FLEXOS_LOG(::flexos::LogLevel::kDebug, __VA_ARGS__)
#define FLEXOS_INFO(...) FLEXOS_LOG(::flexos::LogLevel::kInfo, __VA_ARGS__)
#define FLEXOS_WARN(...) FLEXOS_LOG(::flexos::LogLevel::kWarn, __VA_ARGS__)
#define FLEXOS_ERROR(...) FLEXOS_LOG(::flexos::LogLevel::kError, __VA_ARGS__)

#endif  // FLEXOS_SUPPORT_LOG_H_
