#include "fault/fault.h"

#include <cstdlib>
#include <sstream>

#include "support/strings.h"

namespace flexos {
namespace fault {

std::string_view FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kGateCross:
      return "gate";
    case FaultSite::kAlloc:
      return "alloc";
    case FaultSite::kFree:
      return "free";
    case FaultSite::kNicTx:
      return "nic-tx";
    case FaultSite::kNicRx:
      return "nic-rx";
    case FaultSite::kSchedActivate:
      return "sched";
  }
  return "unknown-site";
}

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kProtectionFault:
      return "protection-fault";
    case FaultKind::kHeapCorruption:
      return "heap-corruption";
    case FaultKind::kPageFault:
      return "page-fault";
    case FaultKind::kRpcTimeout:
      return "rpc-timeout";
    case FaultKind::kAllocFail:
      return "alloc-fail";
    case FaultKind::kPacketDrop:
      return "packet-drop";
    case FaultKind::kPacketCorrupt:
      return "packet-corrupt";
    case FaultKind::kPacketDelay:
      return "packet-delay";
    case FaultKind::kSchedDelay:
      return "sched-delay";
  }
  return "unknown-kind";
}

std::optional<FaultSite> FaultSiteFromName(std::string_view name) {
  for (int s = 0; s < kNumFaultSites; ++s) {
    const FaultSite site = static_cast<FaultSite>(s);
    if (FaultSiteName(site) == name) {
      return site;
    }
  }
  return std::nullopt;
}

std::optional<FaultKind> FaultKindFromName(std::string_view name) {
  for (int k = 0; k <= static_cast<int>(FaultKind::kSchedDelay); ++k) {
    const FaultKind kind = static_cast<FaultKind>(k);
    if (FaultKindName(kind) == name) {
      return kind;
    }
  }
  return std::nullopt;
}

bool IsTrapFault(FaultKind kind) {
  switch (kind) {
    case FaultKind::kProtectionFault:
    case FaultKind::kHeapCorruption:
    case FaultKind::kPageFault:
    case FaultKind::kRpcTimeout:
      return true;
    case FaultKind::kAllocFail:
    case FaultKind::kPacketDrop:
    case FaultKind::kPacketCorrupt:
    case FaultKind::kPacketDelay:
    case FaultKind::kSchedDelay:
      return false;
  }
  return false;
}

std::string InjectionEvent::ToString() const {
  return StrFormat("#%llu %s@%s comp=%d occ=%llu cyc=%llu",
                   static_cast<unsigned long long>(seq),
                   std::string(FaultKindName(kind)).c_str(),
                   std::string(FaultSiteName(site)).c_str(), compartment,
                   static_cast<unsigned long long>(occurrence),
                   static_cast<unsigned long long>(cycles));
}

namespace {

// Parses "key=value"; returns false if there is no '='.
bool SplitKeyValue(const std::string& token, std::string* key,
                   std::string* value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos) {
    return false;
  }
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  if (text.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return end == text.c_str() + text.size();
}

Status ParseInjectLine(const std::string& line, int line_no, FaultRule* rule) {
  std::istringstream tokens(line);
  std::string token;
  tokens >> token;  // Consume "inject".
  bool have_site = false;
  bool have_kind = false;
  while (tokens >> token) {
    std::string key;
    std::string value;
    if (!SplitKeyValue(token, &key, &value)) {
      return Status(ErrorCode::kInvalidArgument,
                    StrFormat("plan line %d: expected key=value, got '%s'",
                              line_no, token.c_str()));
    }
    if (key == "site") {
      const auto site = FaultSiteFromName(value);
      if (!site.has_value()) {
        return Status(ErrorCode::kInvalidArgument,
                      StrFormat("plan line %d: unknown site '%s'", line_no,
                                value.c_str()));
      }
      rule->site = *site;
      have_site = true;
    } else if (key == "kind") {
      const auto kind = FaultKindFromName(value);
      if (!kind.has_value()) {
        return Status(ErrorCode::kInvalidArgument,
                      StrFormat("plan line %d: unknown kind '%s'", line_no,
                                value.c_str()));
      }
      rule->kind = *kind;
      have_kind = true;
    } else if (key == "comp") {
      rule->compartment = std::atoi(value.c_str());
    } else if (key == "prob") {
      rule->probability = std::strtod(value.c_str(), nullptr);
      if (rule->probability < 0.0 || rule->probability > 1.0) {
        return Status(ErrorCode::kOutOfRange,
                      StrFormat("plan line %d: prob must be in [0,1]",
                                line_no));
      }
    } else {
      uint64_t number = 0;
      if (!ParseU64(value, &number)) {
        return Status(ErrorCode::kInvalidArgument,
                      StrFormat("plan line %d: bad number '%s' for %s",
                                line_no, value.c_str(), key.c_str()));
      }
      if (key == "after") {
        if (number == 0) {
          return Status(ErrorCode::kOutOfRange,
                        StrFormat("plan line %d: after is 1-based", line_no));
        }
        rule->after = number;
      } else if (key == "every") {
        if (number == 0) {
          return Status(ErrorCode::kOutOfRange,
                        StrFormat("plan line %d: every must be >= 1",
                                  line_no));
        }
        rule->every = number;
      } else if (key == "count") {
        rule->count = number;
      } else if (key == "arg") {
        rule->arg = number;
      } else {
        return Status(ErrorCode::kInvalidArgument,
                      StrFormat("plan line %d: unknown key '%s'", line_no,
                                key.c_str()));
      }
    }
  }
  if (!have_site || !have_kind) {
    return Status(ErrorCode::kInvalidArgument,
                  StrFormat("plan line %d: inject needs site= and kind=",
                            line_no));
  }
  return Status::Ok();
}

}  // namespace

Result<FaultPlan> ParseFaultPlan(std::string_view text) {
  FaultPlan plan;
  std::istringstream lines{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream probe(line);
    std::string word;
    if (!(probe >> word)) {
      continue;  // Blank or comment-only.
    }
    if (word == "seed") {
      uint64_t seed = 0;
      std::string value;
      if (!(probe >> value) || !ParseU64(value, &seed)) {
        return Status(ErrorCode::kInvalidArgument,
                      StrFormat("plan line %d: seed needs a number",
                                line_no));
      }
      plan.seed = seed;
    } else if (word == "inject") {
      FaultRule rule;
      FLEXOS_RETURN_IF_ERROR(ParseInjectLine(line, line_no, &rule));
      plan.rules.push_back(rule);
    } else {
      return Status(ErrorCode::kInvalidArgument,
                    StrFormat("plan line %d: unknown directive '%s'", line_no,
                              word.c_str()));
    }
  }
  return plan;
}

std::string FaultPlanToString(const FaultPlan& plan) {
  std::string out = StrFormat("seed %llu\n",
                              static_cast<unsigned long long>(plan.seed));
  for (const FaultRule& rule : plan.rules) {
    out += StrFormat("inject site=%s kind=%s",
                     std::string(FaultSiteName(rule.site)).c_str(),
                     std::string(FaultKindName(rule.kind)).c_str());
    if (rule.compartment >= 0) {
      out += StrFormat(" comp=%d", rule.compartment);
    }
    if (rule.after != 1) {
      out += StrFormat(" after=%llu",
                       static_cast<unsigned long long>(rule.after));
    }
    if (rule.every != 1) {
      out += StrFormat(" every=%llu",
                       static_cast<unsigned long long>(rule.every));
    }
    if (rule.count != std::numeric_limits<uint64_t>::max()) {
      out += StrFormat(" count=%llu",
                       static_cast<unsigned long long>(rule.count));
    }
    if (rule.probability != 1.0) {
      out += StrFormat(" prob=%g", rule.probability);
    }
    if (rule.arg != 0) {
      out += StrFormat(" arg=%llu", static_cast<unsigned long long>(rule.arg));
    }
    out += '\n';
  }
  return out;
}

}  // namespace fault
}  // namespace flexos
