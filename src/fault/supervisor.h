// CompartmentSupervisor: per-compartment fault handling and crash recovery
// (DESIGN.md §11). Installed on an Image via SetFaultHandler, it receives
// every trap that a supervised (isolating) gate crossing contains, moves
// the faulting compartment through a healthy -> quarantined -> healthy (or
// -> failed) state machine, and rebuilds the compartment on re-admission:
// heap reset through the AllocatorRegistry, registered init hooks re-run,
// exponential backoff between attempts, and a hard restart budget after
// which callers permanently see kUnavailable.
//
// Modeled after CompartOS's per-compartment recovery policies and
// LibrettOS's surviving server restarts; the paper's threat model is kept
// intact — trusted function-call boundaries (backend "none") are never
// supervised, so a trap there still unwinds to the scheduler trampoline.
#ifndef FLEXOS_FAULT_SUPERVISOR_H_
#define FLEXOS_FAULT_SUPERVISOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "fault/fault.h"
#include "hw/trap.h"
#include "obs/metrics.h"

namespace flexos {

class Image;

namespace fault {

// Restart policy for one compartment (or the supervisor-wide default).
struct RestartPolicy {
  uint64_t backoff_ns = 1'000'000;  // First quarantine window (1 ms).
  double backoff_multiplier = 2.0;  // Escalation per successive restart.
  int restart_budget = 3;           // Restarts before permanent failure.
  bool reset_heap = true;           // Reset the dedicated heap on restart.
};

enum class CompartmentHealth : uint8_t {
  kHealthy,
  kQuarantined,  // Trapped; waiting out its backoff window.
  kFailed,       // Restart budget exhausted; permanently unavailable.
};

std::string_view CompartmentHealthName(CompartmentHealth health);

// One contained trap and (if reached) the restart that recovered from it.
struct RecoveryEpisode {
  int compartment = -1;
  TrapKind trap = TrapKind::kPageFault;
  uint64_t trap_cycles = 0;
  uint64_t restart_cycles = 0;  // 0 while still quarantined/failed.
  int restart_number = 0;       // 1-based; 0 while no restart happened.
};

class CompartmentSupervisor : public FaultDomainHandler {
 public:
  explicit CompartmentSupervisor(Image& image,
                                 RestartPolicy default_policy = {});

  CompartmentSupervisor(const CompartmentSupervisor&) = delete;
  CompartmentSupervisor& operator=(const CompartmentSupervisor&) = delete;

  // Per-compartment policy override (e.g. reset_heap=false for a stateful
  // compartment that must survive its own restart).
  void SetPolicy(int comp, RestartPolicy policy);

  // Init hooks re-run (in registration order) when `comp` restarts. A hook
  // returning non-OK re-quarantines the compartment with escalated backoff.
  void RegisterInitHook(int comp, std::string name,
                        std::function<Status()> hook);

  // --- FaultDomainHandler -------------------------------------------------
  Status Admit(int to_comp) override;
  Status OnTrap(int from_comp, int to_comp, const TrapInfo& info) override;
  bool HasInitHook(int comp) const override;

  // flexwatch notification (DESIGN.md §14): an SLO watchdog tripped at a
  // window close. Advisory only — an SLO miss is a performance signal, not
  // a fault, so it is counted and logged but never quarantines anything.
  // The testbed wires TimeSeries::SetViolationHook here.
  void OnSloViolation(std::string_view slo_name);

  // Called after every contained trap is quarantined (not when the
  // compartment is already permanently failed), with the faulting boundary's
  // (from, to). The testbed wires the flexadapt engine here so a trap can
  // trigger an isolation promotion (DESIGN.md §16).
  void SetTrapObserver(std::function<void(int from_comp, int to_comp)> cb) {
    trap_observer_ = std::move(cb);
  }

  // --- Introspection ------------------------------------------------------
  CompartmentHealth health(int comp) const;
  int restarts(int comp) const;
  uint64_t trapped() const { return trapped_; }
  uint64_t total_restarts() const { return total_restarts_; }
  uint64_t slo_notices() const { return slo_notices_; }
  const std::vector<RecoveryEpisode>& episodes() const { return episodes_; }

  // Earliest cycle at which some quarantined compartment becomes
  // restartable; UINT64_MAX when nothing is waiting. Idle loops
  // (Testbed::OnIdle) include this in their next-event computation so
  // virtual time can jump across a backoff window instead of spinning.
  uint64_t NextRestartCycles() const;

  static constexpr uint64_t kNoRestartPending =
      std::numeric_limits<uint64_t>::max();

 private:
  struct Hook {
    std::string name;
    std::function<Status()> fn;
  };

  struct DomainState {
    CompartmentHealth health = CompartmentHealth::kHealthy;
    RestartPolicy policy;
    uint64_t next_backoff_ns = 0;    // Escalates per restart attempt.
    uint64_t deadline_cycles = 0;    // Quarantine expiry (absolute cycles).
    int restarts_used = 0;
    std::vector<Hook> hooks;
    size_t open_episode = 0;  // Index+1 into episodes_; 0 = none open.
  };

  DomainState& StateFor(int comp);
  const DomainState* FindState(int comp) const;

  // Quarantines `state` (idempotent for an already-quarantined domain,
  // escalating its backoff) starting at `now_cycles`.
  void Quarantine(int comp, DomainState& state, uint64_t now_cycles);

  // Attempts the restart sequence for an expired quarantine; returns kOk on
  // success (domain healthy again) or the admission error.
  Status Restart(int comp, DomainState& state);

  Image& image_;
  RestartPolicy default_policy_;
  std::map<int, DomainState> domains_;
  uint64_t trapped_ = 0;
  uint64_t total_restarts_ = 0;
  uint64_t slo_notices_ = 0;
  std::vector<RecoveryEpisode> episodes_;
  std::function<void(int, int)> trap_observer_;

  obs::Counter* trapped_counter_ = nullptr;
  obs::Counter* restarts_counter_ = nullptr;
  obs::Counter* slo_notices_counter_ = nullptr;
  obs::Gauge* quarantined_gauge_ = nullptr;
};

}  // namespace fault
}  // namespace flexos

#endif  // FLEXOS_FAULT_SUPERVISOR_H_
