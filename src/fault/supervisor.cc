#include "fault/supervisor.h"

#include "core/image.h"
#include "obs/names.h"
#include "support/log.h"
#include "support/strings.h"

namespace flexos {
namespace fault {

std::string_view CompartmentHealthName(CompartmentHealth health) {
  switch (health) {
    case CompartmentHealth::kHealthy:
      return "healthy";
    case CompartmentHealth::kQuarantined:
      return "quarantined";
    case CompartmentHealth::kFailed:
      return "failed";
  }
  return "?";
}

CompartmentSupervisor::CompartmentSupervisor(Image& image,
                                             RestartPolicy default_policy)
    : image_(image), default_policy_(default_policy) {
  obs::MetricsRegistry& metrics = image_.machine().metrics();
  trapped_counter_ = &metrics.GetCounter(obs::kMetricFaultTrapped);
  restarts_counter_ = &metrics.GetCounter(obs::kMetricFaultRestarts);
  slo_notices_counter_ = &metrics.GetCounter(obs::kMetricFaultSloNotices);
  quarantined_gauge_ = &metrics.GetGauge(obs::kMetricFaultQuarantined);
}

void CompartmentSupervisor::OnSloViolation(std::string_view slo_name) {
  ++slo_notices_;
  slo_notices_counter_->Add();
  FLEXOS_WARN("supervisor: SLO violated: %.*s",
              static_cast<int>(slo_name.size()), slo_name.data());
}

void CompartmentSupervisor::SetPolicy(int comp, RestartPolicy policy) {
  DomainState& state = StateFor(comp);
  state.policy = policy;
  state.next_backoff_ns = 0;  // Re-derive from the new policy on next trap.
}

void CompartmentSupervisor::RegisterInitHook(int comp, std::string name,
                                             std::function<Status()> hook) {
  StateFor(comp).hooks.push_back(Hook{std::move(name), std::move(hook)});
}

bool CompartmentSupervisor::HasInitHook(int comp) const {
  const DomainState* state = FindState(comp);
  return state != nullptr && !state->hooks.empty();
}

CompartmentSupervisor::DomainState& CompartmentSupervisor::StateFor(
    int comp) {
  auto it = domains_.find(comp);
  if (it == domains_.end()) {
    DomainState state;
    state.policy = default_policy_;
    it = domains_.emplace(comp, std::move(state)).first;
  }
  return it->second;
}

const CompartmentSupervisor::DomainState* CompartmentSupervisor::FindState(
    int comp) const {
  const auto it = domains_.find(comp);
  return it == domains_.end() ? nullptr : &it->second;
}

CompartmentHealth CompartmentSupervisor::health(int comp) const {
  const DomainState* state = FindState(comp);
  return state == nullptr ? CompartmentHealth::kHealthy : state->health;
}

int CompartmentSupervisor::restarts(int comp) const {
  const DomainState* state = FindState(comp);
  return state == nullptr ? 0 : state->restarts_used;
}

uint64_t CompartmentSupervisor::NextRestartCycles() const {
  uint64_t next = kNoRestartPending;
  for (const auto& [comp, state] : domains_) {
    if (state.health == CompartmentHealth::kQuarantined &&
        state.deadline_cycles < next) {
      next = state.deadline_cycles;
    }
  }
  return next;
}

void CompartmentSupervisor::Quarantine(int comp, DomainState& state,
                                       uint64_t now_cycles) {
  if (state.health == CompartmentHealth::kHealthy) {
    quarantined_gauge_->Add(1);
  }
  state.health = CompartmentHealth::kQuarantined;
  if (state.next_backoff_ns == 0) {
    state.next_backoff_ns = state.policy.backoff_ns;
  }
  const Clock& clock = image_.machine().clock();
  state.deadline_cycles =
      now_cycles + clock.NanosToCycles(state.next_backoff_ns);
  FLEXOS_WARN("supervisor: compartment %d quarantined for %llu ns "
              "(restarts used %d/%d)",
              comp, static_cast<unsigned long long>(state.next_backoff_ns),
              state.restarts_used, state.policy.restart_budget);
  state.next_backoff_ns = static_cast<uint64_t>(
      static_cast<double>(state.next_backoff_ns) *
      state.policy.backoff_multiplier);
}

Status CompartmentSupervisor::Admit(int to_comp) {
  if (to_comp < 0) {
    return Status::Ok();  // The platform is never supervised.
  }
  DomainState& state = StateFor(to_comp);
  switch (state.health) {
    case CompartmentHealth::kHealthy:
      return Status::Ok();
    case CompartmentHealth::kFailed:
      return Status(ErrorCode::kUnavailable,
                    StrFormat("compartment %d permanently failed "
                              "(restart budget %d exhausted)",
                              to_comp, state.policy.restart_budget));
    case CompartmentHealth::kQuarantined:
      break;
  }
  if (image_.machine().clock().cycles() < state.deadline_cycles) {
    return Status(ErrorCode::kUnavailable,
                  StrFormat("compartment %d quarantined", to_comp));
  }
  return Restart(to_comp, state);
}

Status CompartmentSupervisor::Restart(int comp, DomainState& state) {
  if (state.restarts_used >= state.policy.restart_budget) {
    state.health = CompartmentHealth::kFailed;
    FLEXOS_WARN("supervisor: compartment %d failed permanently "
                "(restart budget %d exhausted)",
                comp, state.policy.restart_budget);
    return Status(ErrorCode::kUnavailable,
                  StrFormat("compartment %d permanently failed "
                            "(restart budget %d exhausted)",
                            comp, state.policy.restart_budget));
  }
  ++state.restarts_used;
  ++total_restarts_;
  restarts_counter_->Add();
  Clock& clock = image_.machine().clock();

  if (state.policy.reset_heap) {
    const Status reset = image_.ResetCompartmentHeap(comp);
    if (!reset.ok()) {
      // A shared/global heap cannot be reset per-compartment; restart
      // anyway — the init hooks own whatever state matters.
      FLEXOS_WARN("supervisor: heap reset for compartment %d skipped: %s",
                  comp, reset.ToString().c_str());
    }
  }
  for (const Hook& hook : state.hooks) {
    const Status status = hook.fn();
    if (!status.ok()) {
      FLEXOS_WARN("supervisor: init hook '%s' for compartment %d failed "
                  "(%s); re-quarantining",
                  hook.name.c_str(), comp, status.ToString().c_str());
      Quarantine(comp, state, clock.cycles());
      return Status(ErrorCode::kUnavailable,
                    StrFormat("compartment %d restart failed in init hook "
                              "'%s'",
                              comp, hook.name.c_str()));
    }
  }

  state.health = CompartmentHealth::kHealthy;
  quarantined_gauge_->Add(-1);
  if (state.open_episode != 0) {
    RecoveryEpisode& episode = episodes_[state.open_episode - 1];
    episode.restart_cycles = clock.cycles();
    episode.restart_number = state.restarts_used;
    state.open_episode = 0;
  }
  FLEXOS_INFO("supervisor: compartment %d restarted (restart %d/%d)", comp,
              state.restarts_used, state.policy.restart_budget);
  return Status::Ok();
}

Status CompartmentSupervisor::OnTrap(int from_comp, int to_comp,
                                     const TrapInfo& info) {
  ++trapped_;
  trapped_counter_->Add();
  DomainState& state = StateFor(to_comp);
  FLEXOS_WARN("supervisor: contained %s in compartment %d (caller %d)",
              std::string(TrapKindName(info.kind)).c_str(), to_comp,
              from_comp);
  if (state.health == CompartmentHealth::kFailed) {
    return Status(ErrorCode::kUnavailable,
                  StrFormat("compartment %d permanently failed", to_comp));
  }
  RecoveryEpisode episode;
  episode.compartment = to_comp;
  episode.trap = info.kind;
  episode.trap_cycles = image_.machine().clock().cycles();
  episodes_.push_back(episode);
  state.open_episode = episodes_.size();
  Quarantine(to_comp, state, episode.trap_cycles);
  if (trap_observer_) {
    trap_observer_(from_comp, to_comp);
  }
  return Status(ErrorCode::kUnavailable,
                StrFormat("compartment %d trapped: %s", to_comp,
                          std::string(TrapKindName(info.kind)).c_str()));
}

}  // namespace fault
}  // namespace flexos
