// FaultInjector: the deterministic injection engine (DESIGN.md §11). The
// Machine owns one; probe sites (gate dispatch, allocators, the virtual
// link, the scheduler) call Check() and apply whatever decision comes back.
// Everything a plan does is reproducible from (seed, rules, workload): rule
// matching is counter-based, the only RNG draws are for probability-gated
// rules, and every firing is appended to an ordered event log that two runs
// with the same seed must reproduce element-wise.
//
// Cost discipline: with no plan loaded, armed() is a single relaxed load of
// a zero mask — no RNG draws, no metric registrations, no trace events —
// which is what keeps fig3/4/5 and abl_gate_dispatch bit-identical when
// injection is compiled in but idle (bench/abl_fault_recovery.cc gates it).
#ifndef FLEXOS_FAULT_INJECTOR_H_
#define FLEXOS_FAULT_INJECTOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/rng.h"

namespace flexos {
namespace fault {

class FaultInjector {
 public:
  using CycleSourceFn = uint64_t (*)(void* ctx);

  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Wired by the Machine at construction. The cycle source stamps event-log
  // entries; obs sinks receive fault.injected / fault.dropped and the
  // per-injection trace instants (TraceCat::kFault).
  void BindObs(obs::MetricsRegistry* metrics, obs::Tracer* tracer) {
    metrics_ = metrics;
    tracer_ = tracer;
  }
  void SetCycleSource(CycleSourceFn fn, void* ctx) {
    cycle_fn_ = fn;
    cycle_ctx_ = ctx;
  }

  // Installs a plan: reseeds the RNG, zeroes all rule counters and the
  // event log, and arms the referenced sites. Metrics are resolved here
  // (lazily) so runs that never load a plan register nothing.
  void LoadPlan(FaultPlan plan);

  // Back to the empty plan (all sites disarmed). Keeps the event log of the
  // previous plan readable until the next LoadPlan.
  void Disarm() { armed_mask_ = 0; }

  bool enabled() const { return armed_mask_ != 0; }
  bool armed(FaultSite site) const {
    return (armed_mask_ & (1u << static_cast<int>(site))) != 0;
  }

  // The probe. Counts one occurrence at `site` for compartment
  // `compartment` (-1 when the site has no compartment notion) against
  // every matching rule and returns the first decision that fires, if any.
  // The *site* applies the effect; the injector only decides and records.
  // Callers must guard with armed(site) — Check on a disarmed site is legal
  // but wastes the rule scan.
  std::optional<FaultDecision> Check(FaultSite site, int compartment);

  const FaultPlan& plan() const { return plan_; }
  uint64_t injected() const { return injected_; }
  uint64_t dropped() const { return dropped_; }
  const std::vector<InjectionEvent>& events() const { return events_; }

 private:
  struct RuleState {
    FaultRule rule;
    uint64_t occurrences = 0;
    uint64_t fired = 0;
  };

  FaultPlan plan_;
  std::vector<RuleState> states_;
  uint32_t armed_mask_ = 0;
  Rng rng_{0};
  uint64_t injected_ = 0;
  uint64_t dropped_ = 0;
  std::vector<InjectionEvent> events_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* injected_counter_ = nullptr;
  obs::Counter* dropped_counter_ = nullptr;
  CycleSourceFn cycle_fn_ = nullptr;
  void* cycle_ctx_ = nullptr;
};

}  // namespace fault
}  // namespace flexos

#endif  // FLEXOS_FAULT_INJECTOR_H_
