#include "fault/injector.h"

#include "obs/names.h"

namespace flexos {
namespace fault {

void FaultInjector::LoadPlan(FaultPlan plan) {
  plan_ = std::move(plan);
  states_.clear();
  states_.reserve(plan_.rules.size());
  armed_mask_ = 0;
  for (const FaultRule& rule : plan_.rules) {
    states_.push_back(RuleState{rule});
    armed_mask_ |= 1u << static_cast<int>(rule.site);
  }
  rng_ = Rng(plan_.seed);
  injected_ = 0;
  dropped_ = 0;
  events_.clear();
  if (!plan_.rules.empty() && metrics_ != nullptr) {
    injected_counter_ = &metrics_->GetCounter(obs::kMetricFaultInjected);
    dropped_counter_ = &metrics_->GetCounter(obs::kMetricFaultDropped);
  }
}

std::optional<FaultDecision> FaultInjector::Check(FaultSite site,
                                                  int compartment) {
  std::optional<FaultDecision> decision;
  uint64_t fired_occurrence = 0;
  const FaultRule* fired_rule = nullptr;
  // Every matching rule counts the occurrence (so rule triggers are
  // independent of each other); the first eligible firing wins.
  for (RuleState& state : states_) {
    const FaultRule& rule = state.rule;
    if (rule.site != site ||
        (rule.compartment >= 0 && rule.compartment != compartment)) {
      continue;
    }
    ++state.occurrences;
    if (decision.has_value() || state.fired >= rule.count ||
        state.occurrences < rule.after ||
        (state.occurrences - rule.after) % rule.every != 0) {
      continue;
    }
    if (rule.probability < 1.0 && !rng_.NextBool(rule.probability)) {
      continue;
    }
    ++state.fired;
    decision = FaultDecision{rule.kind, rule.arg};
    fired_occurrence = state.occurrences;
    fired_rule = &rule;
  }
  if (!decision.has_value()) {
    return decision;
  }

  ++injected_;
  if (injected_counter_ != nullptr) {
    injected_counter_->Add();
  }
  if (!IsTrapFault(decision->kind)) {
    // Absorb-class faults never reach the supervisor; count them here so
    // injected == trapped + dropped reconciles. Trap-class firings are
    // counted as fault.trapped by whoever contains the trap.
    ++dropped_;
    if (dropped_counter_ != nullptr) {
      dropped_counter_->Add();
    }
  }
  InjectionEvent event;
  event.seq = injected_;
  event.site = site;
  event.kind = fired_rule->kind;
  event.compartment = compartment;
  event.occurrence = fired_occurrence;
  event.cycles = cycle_fn_ != nullptr ? cycle_fn_(cycle_ctx_) : 0;
  events_.push_back(event);
  if (tracer_ != nullptr) {
    // FaultKindName returns views of string literals, so .data() is a
    // NUL-terminated string that outlives the tracer.
    tracer_->RecordInstant(obs::TraceCat::kFault,
                           FaultKindName(event.kind).data(), compartment + 1,
                           static_cast<uint64_t>(site), event.occurrence);
  }
  return decision;
}

}  // namespace fault
}  // namespace flexos
