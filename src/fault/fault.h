// flexfault: the fault-domain vocabulary (DESIGN.md §11). A FaultPlan is a
// deterministic list of injection rules; the FaultInjector (injector.h)
// evaluates it at fixed probe sites, and the CompartmentSupervisor
// (supervisor.h) turns the resulting traps into quarantine + restart instead
// of a process abort. This header is the shared vocabulary: it depends only
// on support/ so every layer (hw, alloc, net, sched, core) can name sites
// and kinds without cycles.
#ifndef FLEXOS_FAULT_FAULT_H_
#define FLEXOS_FAULT_FAULT_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace flexos {

struct TrapInfo;  // hw/trap.h

namespace fault {

// Where a probe lives. Each site is one Check() call on the hot path,
// guarded by an armed-bitmask test so an empty plan costs one load.
enum class FaultSite : uint8_t {
  kGateCross = 0,   // core/image.cc, before gate Enter on a crossing
  kAlloc,           // alloc/, on Allocate
  kFree,            // alloc/, on Free
  kNicTx,           // net/link.cc, frames leaving the guest NIC
  kNicRx,           // net/link.cc, frames toward the guest NIC
  kSchedActivate,   // sched/coop_scheduler.cc, on thread activation
};
inline constexpr int kNumFaultSites = 6;

// What happens when a rule fires. Trap-class kinds raise a TrapException at
// the site (and are expected to be contained by a supervisor on isolating
// boundaries); absorb-class kinds degrade service without trapping and are
// counted as fault.dropped.
enum class FaultKind : uint8_t {
  kProtectionFault,  // trap: MPK/PKRU violation at a gate crossing
  kHeapCorruption,   // trap: redzone hit (ASAN_VIOLATION) in the allocator
  kPageFault,        // trap: wild access to an unmapped page
  kRpcTimeout,       // trap: vm-rpc crossing times out (charges arg ns first)
  kAllocFail,        // absorb: Allocate returns kOutOfMemory
  kPacketDrop,       // absorb: frame silently dropped on the link
  kPacketCorrupt,    // absorb: one payload byte flipped in flight
  kPacketDelay,      // absorb: frame arrival delayed by arg ns
  kSchedDelay,       // absorb: activation charged arg ns of extra latency
};

std::string_view FaultSiteName(FaultSite site);
std::string_view FaultKindName(FaultKind kind);
std::optional<FaultSite> FaultSiteFromName(std::string_view name);
std::optional<FaultKind> FaultKindFromName(std::string_view name);

// True if the kind's effect is raising a trap (vs. absorbing the fault at
// the site). Trap-class injections must be reconciled against fault.trapped;
// absorb-class ones against fault.dropped.
bool IsTrapFault(FaultKind kind);

// One injection rule. A rule matches a probe when the site matches and the
// compartment filter passes; it *fires* on the `after`-th matching
// occurrence and every `every`-th after that, at most `count` times, each
// time gated by `probability` (1.0 = always; anything else draws from the
// plan's seeded RNG, so firing is still reproducible).
struct FaultRule {
  FaultSite site = FaultSite::kGateCross;
  FaultKind kind = FaultKind::kProtectionFault;
  int compartment = -1;  // -1 = any compartment.
  uint64_t after = 1;    // 1-based occurrence index of the first firing.
  uint64_t every = 1;
  uint64_t count = std::numeric_limits<uint64_t>::max();
  double probability = 1.0;
  uint64_t arg = 0;  // Kind-specific: delay/timeout ns, corrupt byte offset.
};

struct FaultPlan {
  uint64_t seed = 42;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }
};

// Plan text format, one directive per line ('#' comments):
//   seed 7
//   inject site=gate kind=protection-fault comp=1 after=100 every=50
//   inject site=nic-tx kind=packet-drop count=3 prob=0.5 arg=1000000
// Only site= and kind= are mandatory. Unknown keys or names are errors.
Result<FaultPlan> ParseFaultPlan(std::string_view text);

// Serializes a plan back into the text format (parses to an equal plan).
std::string FaultPlanToString(const FaultPlan& plan);

// What the probe site must do. The injector never applies effects itself —
// the site owns the mechanism (RaiseTrap, Status return, drop, charge), the
// injector owns the policy (when, what, reproducibly).
struct FaultDecision {
  FaultKind kind;
  uint64_t arg = 0;
};

// One fired injection, recorded in order. Two runs with the same (seed,
// plan, workload) must produce element-wise identical logs — the chaos
// harness asserts exactly that.
struct InjectionEvent {
  uint64_t seq = 0;
  FaultSite site = FaultSite::kGateCross;
  FaultKind kind = FaultKind::kProtectionFault;
  int compartment = -1;
  uint64_t occurrence = 0;  // The matching-occurrence index that fired.
  uint64_t cycles = 0;      // Virtual time of the injection.

  bool operator==(const InjectionEvent& other) const {
    return seq == other.seq && site == other.site && kind == other.kind &&
           compartment == other.compartment &&
           occurrence == other.occurrence && cycles == other.cycles;
  }
  std::string ToString() const;
};

// The containment interface core/image.cc dispatches through on supervised
// crossings. Implemented by CompartmentSupervisor (fault/supervisor.h);
// declared here so Image can hold a pointer without a dependency cycle.
class FaultDomainHandler {
 public:
  virtual ~FaultDomainHandler() = default;

  // Called before dispatching into `to_comp` on a supervised boundary.
  // kOk admits the call; kUnavailable (quarantined / permanently failed)
  // becomes the caller's TryCall result without crossing the gate.
  virtual Status Admit(int to_comp) = 0;

  // Called when a supervised crossing into `to_comp` raised a trap that the
  // gate contained. Returns the Status the caller sees (never kOk).
  virtual Status OnTrap(int from_comp, int to_comp, const TrapInfo& info) = 0;

  // True if `comp` has a registered init hook to re-run on restart.
  // flexlint's FL009 consults this on built images.
  virtual bool HasInitHook(int /*comp*/) const { return false; }
};

}  // namespace fault
}  // namespace flexos

#endif  // FLEXOS_FAULT_FAULT_H_
