// Guest address spaces. Every guest page carries an MPK protection key and a
// writable bit; every access is checked against the machine's current PKRU
// and (when the executing code is instrumented) against ASAN-lite shadow
// memory. Pages are reference-counted so a region can be mapped into several
// address spaces at the same guest address — the mechanism behind the
// VM-backend shared heap.
#ifndef FLEXOS_VMEM_ADDRESS_SPACE_H_
#define FLEXOS_VMEM_ADDRESS_SPACE_H_

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/machine.h"
#include "hw/trap.h"
#include "support/status.h"

namespace flexos {

using Gaddr = uint64_t;

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kShadowGranule = 8;
inline constexpr uint64_t kShadowPerPage = kPageSize / kShadowGranule;

// Shadow byte encodings (subset of ASAN's).
inline constexpr uint8_t kShadowAddressable = 0x00;
inline constexpr uint8_t kShadowHeapRedzone = 0xfa;
inline constexpr uint8_t kShadowFreed = 0xfd;
inline constexpr uint8_t kShadowStackGuard = 0xfe;

// Backing storage of one guest page, shareable across address spaces.
struct PageData {
  std::array<uint8_t, kPageSize> bytes{};
  std::array<uint8_t, kShadowPerPage> shadow{};
};

struct PageEntry {
  std::shared_ptr<PageData> data;  // Null when unmapped.
  Pkey key = 0;
  bool writable = true;
  bool guard = false;  // Guard pages trap on any access (stack overflow).

  bool mapped() const { return data != nullptr; }
};

class AddressSpace {
 public:
  // `size_bytes` must be page-aligned. `name` is used in fault diagnostics.
  AddressSpace(Machine& machine, std::string name, uint64_t size_bytes);

  AddressSpace(const AddressSpace&) = delete;
  AddressSpace& operator=(const AddressSpace&) = delete;

  Machine& machine() { return machine_; }
  const std::string& name() const { return name_; }
  uint64_t size_bytes() const { return pages_.size() * kPageSize; }

  // --- Mapping -----------------------------------------------------------

  // Maps fresh zeroed pages at [addr, addr+size) with the given key.
  Status Map(Gaddr addr, uint64_t size, Pkey key, bool writable = true);

  // Maps the same physical pages that `source` has at [src_addr, ...) into
  // this space at [dst_addr, ...). Used for VM shared regions; the paper
  // maps the shared area at an identical address in all compartments, and
  // callers here should do the same so guest pointers stay valid.
  Status MapAlias(Gaddr dst_addr, AddressSpace& source, Gaddr src_addr,
                  uint64_t size);

  // Marks [addr, addr+size) as guard pages (any access traps).
  Status MapGuard(Gaddr addr, uint64_t size);

  Status Unmap(Gaddr addr, uint64_t size);

  // Retags mapped pages with a new protection key.
  Status SetKey(Gaddr addr, uint64_t size, Pkey key);

  // Returns the key of the page containing addr (page must be mapped).
  Result<Pkey> KeyOf(Gaddr addr) const;

  bool IsMapped(Gaddr addr) const;

  // --- Checked access (charges cycles, enforces PKRU + shadow) -----------

  void Read(Gaddr addr, void* dst, uint64_t size);
  void Write(Gaddr addr, const void* src, uint64_t size);
  void Fill(Gaddr addr, uint8_t value, uint64_t size);

  // Guest-to-guest copy within this space.
  void Copy(Gaddr dst, Gaddr src, uint64_t size);

  template <typename T>
  T ReadT(Gaddr addr) {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    Read(addr, &value, sizeof(T));
    return value;
  }

  template <typename T>
  void WriteT(Gaddr addr, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Write(addr, &value, sizeof(T));
  }

  // --- ASAN-lite shadow --------------------------------------------------

  // Marks [addr, addr+size) as poisoned with `code`. Byte-granular: the
  // granule containing a partial head/tail is handled per ASAN's partial
  // encoding where possible and conservatively otherwise.
  void Poison(Gaddr addr, uint64_t size, uint8_t code);

  // Marks [addr, addr+size) addressable.
  void Unpoison(Gaddr addr, uint64_t size);

  // True if any byte of [addr, addr+size) is poisoned.
  bool IsPoisoned(Gaddr addr, uint64_t size);

  // --- Unchecked access (host-side test/bench plumbing only) -------------

  // Reads without PKRU/shadow checks or cycle charges. For assertions in
  // tests and loaders; modeled guest code must use Read/Write.
  void ReadUnchecked(Gaddr addr, void* dst, uint64_t size);
  void WriteUnchecked(Gaddr addr, const void* src, uint64_t size);

 private:
  enum class CheckMode { kChecked, kUnchecked };

  // Resolves one page and enforces mapping/PKRU/guard checks.
  PageData& ResolvePage(Gaddr addr, AccessKind access, CheckMode mode);

  // Enforces shadow validity for an in-page span, if instrumentation is on.
  void CheckShadow(PageData& page, Gaddr addr, uint64_t in_page_off,
                   uint64_t span, AccessKind access);

  // Walks [addr, addr+size) page by page invoking fn(page, in_page_off, n).
  template <typename Fn>
  void ForEachChunk(Gaddr addr, uint64_t size, AccessKind access,
                    CheckMode mode, Fn&& fn);

  [[noreturn]] void FaultUnmapped(Gaddr addr, AccessKind access);

  Machine& machine_;
  std::string name_;
  std::vector<PageEntry> pages_;
};

}  // namespace flexos

#endif  // FLEXOS_VMEM_ADDRESS_SPACE_H_
