// Helpers around ASAN-lite shadow codes (diagnostics, test inspection).
#ifndef FLEXOS_VMEM_SHADOW_H_
#define FLEXOS_VMEM_SHADOW_H_

#include <cstdint>
#include <string_view>

namespace flexos {

// Human-readable name of a shadow byte, e.g. "heap-redzone".
std::string_view ShadowCodeName(uint8_t code);

}  // namespace flexos

#endif  // FLEXOS_VMEM_SHADOW_H_
