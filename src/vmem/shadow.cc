#include "vmem/shadow.h"

#include "vmem/address_space.h"

namespace flexos {

std::string_view ShadowCodeName(uint8_t code) {
  if (code == kShadowAddressable) {
    return "addressable";
  }
  if (code < kShadowGranule) {
    return "partially-addressable";
  }
  switch (code) {
    case kShadowHeapRedzone:
      return "heap-redzone";
    case kShadowFreed:
      return "heap-freed";
    case kShadowStackGuard:
      return "stack-guard";
    default:
      return "poisoned";
  }
}

}  // namespace flexos
