#include "vmem/address_space.h"

#include <algorithm>
#include <cstring>

#include "support/strings.h"

namespace flexos {
namespace {

constexpr bool PageAligned(uint64_t value) { return value % kPageSize == 0; }

}  // namespace

AddressSpace::AddressSpace(Machine& machine, std::string name,
                           uint64_t size_bytes)
    : machine_(machine), name_(std::move(name)) {
  FLEXOS_CHECK(PageAligned(size_bytes), "address space size not page-aligned");
  pages_.resize(size_bytes / kPageSize);
}

Status AddressSpace::Map(Gaddr addr, uint64_t size, Pkey key, bool writable) {
  if (!PageAligned(addr) || !PageAligned(size) || size == 0) {
    return Status(ErrorCode::kInvalidArgument, "Map: unaligned range");
  }
  if (addr / kPageSize + size / kPageSize > pages_.size()) {
    return Status(ErrorCode::kOutOfRange, "Map: beyond address space");
  }
  if (key >= kNumPkeys) {
    return Status(ErrorCode::kInvalidArgument, "Map: bad pkey");
  }
  const uint64_t first = addr / kPageSize;
  const uint64_t count = size / kPageSize;
  for (uint64_t i = first; i < first + count; ++i) {
    if (pages_[i].mapped() || pages_[i].guard) {
      return Status(ErrorCode::kAlreadyExists,
                    StrFormat("Map: page 0x%llx already mapped",
                              static_cast<unsigned long long>(i * kPageSize)));
    }
  }
  for (uint64_t i = first; i < first + count; ++i) {
    pages_[i].data = std::make_shared<PageData>();
    pages_[i].key = key;
    pages_[i].writable = writable;
    pages_[i].guard = false;
  }
  return Status::Ok();
}

Status AddressSpace::MapAlias(Gaddr dst_addr, AddressSpace& source,
                              Gaddr src_addr, uint64_t size) {
  if (!PageAligned(dst_addr) || !PageAligned(src_addr) || !PageAligned(size) ||
      size == 0) {
    return Status(ErrorCode::kInvalidArgument, "MapAlias: unaligned range");
  }
  if (dst_addr / kPageSize + size / kPageSize > pages_.size() ||
      src_addr / kPageSize + size / kPageSize > source.pages_.size()) {
    return Status(ErrorCode::kOutOfRange, "MapAlias: beyond address space");
  }
  const uint64_t count = size / kPageSize;
  for (uint64_t i = 0; i < count; ++i) {
    const PageEntry& src = source.pages_[src_addr / kPageSize + i];
    PageEntry& dst = pages_[dst_addr / kPageSize + i];
    if (!src.mapped()) {
      return Status(ErrorCode::kNotFound, "MapAlias: source page unmapped");
    }
    if (dst.mapped() || dst.guard) {
      return Status(ErrorCode::kAlreadyExists, "MapAlias: dest page mapped");
    }
  }
  for (uint64_t i = 0; i < count; ++i) {
    const PageEntry& src = source.pages_[src_addr / kPageSize + i];
    PageEntry& dst = pages_[dst_addr / kPageSize + i];
    dst.data = src.data;  // Shared backing: writes are visible in both.
    dst.key = src.key;
    dst.writable = src.writable;
    dst.guard = false;
  }
  return Status::Ok();
}

Status AddressSpace::MapGuard(Gaddr addr, uint64_t size) {
  if (!PageAligned(addr) || !PageAligned(size) || size == 0) {
    return Status(ErrorCode::kInvalidArgument, "MapGuard: unaligned range");
  }
  if (addr / kPageSize + size / kPageSize > pages_.size()) {
    return Status(ErrorCode::kOutOfRange, "MapGuard: beyond address space");
  }
  const uint64_t first = addr / kPageSize;
  const uint64_t count = size / kPageSize;
  for (uint64_t i = first; i < first + count; ++i) {
    if (pages_[i].mapped()) {
      return Status(ErrorCode::kAlreadyExists, "MapGuard: page mapped");
    }
    pages_[i].guard = true;
  }
  return Status::Ok();
}

Status AddressSpace::Unmap(Gaddr addr, uint64_t size) {
  if (!PageAligned(addr) || !PageAligned(size) || size == 0) {
    return Status(ErrorCode::kInvalidArgument, "Unmap: unaligned range");
  }
  if (addr / kPageSize + size / kPageSize > pages_.size()) {
    return Status(ErrorCode::kOutOfRange, "Unmap: beyond address space");
  }
  const uint64_t first = addr / kPageSize;
  const uint64_t count = size / kPageSize;
  for (uint64_t i = first; i < first + count; ++i) {
    pages_[i] = PageEntry{};
  }
  return Status::Ok();
}

Status AddressSpace::SetKey(Gaddr addr, uint64_t size, Pkey key) {
  if (!PageAligned(addr) || !PageAligned(size) || size == 0) {
    return Status(ErrorCode::kInvalidArgument, "SetKey: unaligned range");
  }
  if (key >= kNumPkeys) {
    return Status(ErrorCode::kInvalidArgument, "SetKey: bad pkey");
  }
  if (addr / kPageSize + size / kPageSize > pages_.size()) {
    return Status(ErrorCode::kOutOfRange, "SetKey: beyond address space");
  }
  const uint64_t first = addr / kPageSize;
  const uint64_t count = size / kPageSize;
  for (uint64_t i = first; i < first + count; ++i) {
    if (!pages_[i].mapped()) {
      return Status(ErrorCode::kNotFound, "SetKey: page unmapped");
    }
  }
  for (uint64_t i = first; i < first + count; ++i) {
    pages_[i].key = key;
  }
  return Status::Ok();
}

Result<Pkey> AddressSpace::KeyOf(Gaddr addr) const {
  const uint64_t index = addr / kPageSize;
  if (index >= pages_.size() || !pages_[index].mapped()) {
    return Status(ErrorCode::kNotFound, "KeyOf: page unmapped");
  }
  return pages_[index].key;
}

bool AddressSpace::IsMapped(Gaddr addr) const {
  const uint64_t index = addr / kPageSize;
  return index < pages_.size() && pages_[index].mapped();
}

void AddressSpace::FaultUnmapped(Gaddr addr, AccessKind access) {
  ++machine_.stats().traps;
  RaiseTrap(TrapInfo{.kind = TrapKind::kPageFault,
                     .access = access,
                     .guest_addr = addr,
                     .pkru = machine_.context().pkru.raw(),
                     .detail = StrFormat("space '%s'", name_.c_str())});
}

PageData& AddressSpace::ResolvePage(Gaddr addr, AccessKind access,
                                    CheckMode mode) {
  const uint64_t index = addr / kPageSize;
  if (index >= pages_.size()) {
    FaultUnmapped(addr, access);
  }
  PageEntry& page = pages_[index];
  if (page.guard && mode == CheckMode::kChecked) {
    ++machine_.stats().traps;
    RaiseTrap(TrapInfo{.kind = TrapKind::kStackOverflow,
                       .access = access,
                       .guest_addr = addr,
                       .detail = StrFormat("guard page in '%s'",
                                           name_.c_str())});
  }
  if (!page.mapped()) {
    FaultUnmapped(addr, access);
  }
  if (mode == CheckMode::kChecked) {
    const Pkru pkru = machine_.context().pkru;
    const bool allowed = access == AccessKind::kWrite
                             ? (page.writable && pkru.CanWrite(page.key))
                             : pkru.CanRead(page.key);
    if (!allowed) {
      ++machine_.stats().traps;
      RaiseTrap(TrapInfo{.kind = TrapKind::kProtectionFault,
                         .access = access,
                         .guest_addr = addr,
                         .pkey = page.key,
                         .pkru = pkru.raw(),
                         .detail = StrFormat("space '%s'", name_.c_str())});
    }
  }
  return *page.data;
}

void AddressSpace::CheckShadow(PageData& page, Gaddr addr,
                               uint64_t in_page_off, uint64_t span,
                               AccessKind access) {
  const uint64_t first_granule = in_page_off / kShadowGranule;
  const uint64_t last_granule = (in_page_off + span - 1) / kShadowGranule;
  for (uint64_t g = first_granule; g <= last_granule; ++g) {
    const uint8_t shadow = page.shadow[g];
    if (shadow == kShadowAddressable) {
      continue;
    }
    // Bytes of this access that fall inside granule g.
    const uint64_t granule_begin = g * kShadowGranule;
    const uint64_t begin = std::max(in_page_off, granule_begin);
    const uint64_t end =
        std::min(in_page_off + span, granule_begin + kShadowGranule);
    if (shadow < kShadowGranule) {
      // Partially addressable: first `shadow` bytes of the granule OK.
      if (end - granule_begin <= shadow) {
        continue;
      }
    }
    ++machine_.stats().traps;
    RaiseTrap(TrapInfo{
        .kind = TrapKind::kAsanViolation,
        .access = access,
        .guest_addr = addr - in_page_off + begin,
        .pkru = machine_.context().pkru.raw(),
        .detail = StrFormat("shadow=0x%02x in '%s'", shadow, name_.c_str())});
  }
}

template <typename Fn>
void AddressSpace::ForEachChunk(Gaddr addr, uint64_t size, AccessKind access,
                                CheckMode mode, Fn&& fn) {
  if (size == 0) {
    return;
  }
  if (mode == CheckMode::kChecked) {
    machine_.ChargeMemOp(size);
  }
  uint64_t done = 0;
  while (done < size) {
    const Gaddr current = addr + done;
    const uint64_t in_page_off = current % kPageSize;
    const uint64_t span = std::min(size - done, kPageSize - in_page_off);
    PageData& page = ResolvePage(current, access, mode);
    if (mode == CheckMode::kChecked && machine_.context().shadow_checks) {
      CheckShadow(page, current, in_page_off, span, access);
    }
    if (mode == CheckMode::kChecked && machine_.race_detection() &&
        access != AccessKind::kExecute) {
      // flexrace probe: key-0 pages are the shared region — the only memory
      // visible from more than one compartment (and hence more than one
      // vCPU). Immutable pages cannot race.
      const PageEntry& entry = pages_[current / kPageSize];
      if (entry.key == 0 && entry.writable) {
        machine_.ProbeSharedAccess(current, span,
                                   access == AccessKind::kWrite);
      }
    }
    fn(page, in_page_off, span, done);
    done += span;
  }
}

void AddressSpace::Read(Gaddr addr, void* dst, uint64_t size) {
  ForEachChunk(addr, size, AccessKind::kRead, CheckMode::kChecked,
               [&](PageData& page, uint64_t off, uint64_t span,
                   uint64_t done) {
                 std::memcpy(static_cast<uint8_t*>(dst) + done,
                             page.bytes.data() + off, span);
               });
}

void AddressSpace::Write(Gaddr addr, const void* src, uint64_t size) {
  ForEachChunk(addr, size, AccessKind::kWrite, CheckMode::kChecked,
               [&](PageData& page, uint64_t off, uint64_t span,
                   uint64_t done) {
                 std::memcpy(page.bytes.data() + off,
                             static_cast<const uint8_t*>(src) + done, span);
               });
}

void AddressSpace::Fill(Gaddr addr, uint8_t value, uint64_t size) {
  ForEachChunk(addr, size, AccessKind::kWrite, CheckMode::kChecked,
               [&](PageData& page, uint64_t off, uint64_t span, uint64_t) {
                 std::memset(page.bytes.data() + off, value, span);
               });
}

void AddressSpace::Copy(Gaddr dst, Gaddr src, uint64_t size) {
  // Bounce through a host buffer page by page; charges both sides.
  uint8_t buffer[kPageSize];
  uint64_t done = 0;
  while (done < size) {
    const uint64_t span = std::min<uint64_t>(size - done, kPageSize);
    Read(src + done, buffer, span);
    Write(dst + done, buffer, span);
    done += span;
  }
}

void AddressSpace::Poison(Gaddr addr, uint64_t size, uint8_t code) {
  if (size == 0) {
    return;
  }
  uint64_t done = 0;
  while (done < size) {
    const Gaddr current = addr + done;
    const uint64_t in_page_off = current % kPageSize;
    const uint64_t span = std::min(size - done, kPageSize - in_page_off);
    PageData& page =
        ResolvePage(current, AccessKind::kWrite, CheckMode::kUnchecked);
    // Poison whole granules; a partial head/tail granule is poisoned
    // conservatively only when fully covered, else left as-is (the allocator
    // aligns redzones to the granule so this path is exact in practice).
    uint64_t begin = in_page_off;
    uint64_t end = in_page_off + span;
    uint64_t g_begin = (begin + kShadowGranule - 1) / kShadowGranule;
    uint64_t g_end = end / kShadowGranule;
    for (uint64_t g = g_begin; g < g_end; ++g) {
      page.shadow[g] = code;
    }
    done += span;
  }
}

void AddressSpace::Unpoison(Gaddr addr, uint64_t size) {
  if (size == 0) {
    return;
  }
  uint64_t done = 0;
  while (done < size) {
    const Gaddr current = addr + done;
    const uint64_t in_page_off = current % kPageSize;
    const uint64_t span = std::min(size - done, kPageSize - in_page_off);
    PageData& page =
        ResolvePage(current, AccessKind::kWrite, CheckMode::kUnchecked);
    const uint64_t begin = in_page_off;
    const uint64_t end = in_page_off + span;
    for (uint64_t g = begin / kShadowGranule;
         g <= (end - 1) / kShadowGranule; ++g) {
      const uint64_t granule_begin = g * kShadowGranule;
      const uint64_t granule_end = granule_begin + kShadowGranule;
      if (begin <= granule_begin && end >= granule_end) {
        page.shadow[g] = kShadowAddressable;
      } else if (begin <= granule_begin && end > granule_begin) {
        // Partial tail: first (end - granule_begin) bytes addressable.
        page.shadow[g] = static_cast<uint8_t>(end - granule_begin);
      }
      // A partial head (begin inside the granule) cannot be represented by
      // ASAN's encoding; leave the existing shadow byte untouched.
    }
    done += span;
  }
}

bool AddressSpace::IsPoisoned(Gaddr addr, uint64_t size) {
  bool poisoned = false;
  uint64_t done = 0;
  while (done < size && !poisoned) {
    const Gaddr current = addr + done;
    const uint64_t in_page_off = current % kPageSize;
    const uint64_t span = std::min(size - done, kPageSize - in_page_off);
    PageData& page =
        ResolvePage(current, AccessKind::kRead, CheckMode::kUnchecked);
    const uint64_t first = in_page_off / kShadowGranule;
    const uint64_t last = (in_page_off + span - 1) / kShadowGranule;
    for (uint64_t g = first; g <= last; ++g) {
      const uint8_t shadow = page.shadow[g];
      if (shadow == kShadowAddressable) {
        continue;
      }
      const uint64_t granule_begin = g * kShadowGranule;
      const uint64_t begin = std::max(in_page_off, granule_begin);
      const uint64_t end =
          std::min(in_page_off + span, granule_begin + kShadowGranule);
      if (shadow < kShadowGranule && end - granule_begin <= shadow) {
        continue;
      }
      (void)begin;
      poisoned = true;
      break;
    }
    done += span;
  }
  return poisoned;
}

void AddressSpace::ReadUnchecked(Gaddr addr, void* dst, uint64_t size) {
  ForEachChunk(addr, size, AccessKind::kRead, CheckMode::kUnchecked,
               [&](PageData& page, uint64_t off, uint64_t span,
                   uint64_t done) {
                 std::memcpy(static_cast<uint8_t*>(dst) + done,
                             page.bytes.data() + off, span);
               });
}

void AddressSpace::WriteUnchecked(Gaddr addr, const void* src, uint64_t size) {
  ForEachChunk(addr, size, AccessKind::kWrite, CheckMode::kUnchecked,
               [&](PageData& page, uint64_t off, uint64_t span,
                   uint64_t done) {
                 std::memcpy(page.bytes.data() + off,
                             static_cast<const uint8_t*>(src) + done, span);
               });
}

}  // namespace flexos
