#include "vmem/access.h"

namespace flexos {

GuestSlice GuestSlice::Sub(uint64_t offset, uint64_t length) const {
  FLEXOS_CHECK(offset <= size_ && length <= size_ - offset,
               "GuestSlice::Sub out of bounds (off=%llu len=%llu size=%llu)",
               static_cast<unsigned long long>(offset),
               static_cast<unsigned long long>(length),
               static_cast<unsigned long long>(size_));
  return GuestSlice(*space_, addr_ + offset, length);
}

void GuestSlice::ReadAt(uint64_t offset, void* dst, uint64_t length) const {
  FLEXOS_CHECK(offset <= size_ && length <= size_ - offset,
               "GuestSlice::ReadAt out of bounds");
  space_->Read(addr_ + offset, dst, length);
}

void GuestSlice::WriteAt(uint64_t offset, const void* src,
                         uint64_t length) const {
  FLEXOS_CHECK(offset <= size_ && length <= size_ - offset,
               "GuestSlice::WriteAt out of bounds");
  space_->Write(addr_ + offset, src, length);
}

std::vector<uint8_t> GuestSlice::ToVector() const {
  std::vector<uint8_t> out(size_);
  if (size_ != 0) {
    space_->Read(addr_, out.data(), size_);
  }
  return out;
}

}  // namespace flexos
