// GuestSlice: a bounds-checked view of guest memory (space + address +
// length). The network stack and applications pass these instead of raw
// guest addresses so every consumer inherits the bounds check.
#ifndef FLEXOS_VMEM_ACCESS_H_
#define FLEXOS_VMEM_ACCESS_H_

#include <cstdint>
#include <vector>

#include "vmem/address_space.h"

namespace flexos {

class GuestSlice {
 public:
  GuestSlice() : space_(nullptr), addr_(0), size_(0) {}
  GuestSlice(AddressSpace& space, Gaddr addr, uint64_t size)
      : space_(&space), addr_(addr), size_(size) {}

  AddressSpace* space() const { return space_; }
  Gaddr addr() const { return addr_; }
  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Sub-slice [offset, offset+length); bounds-checked.
  GuestSlice Sub(uint64_t offset, uint64_t length) const;

  void ReadAt(uint64_t offset, void* dst, uint64_t length) const;
  void WriteAt(uint64_t offset, const void* src, uint64_t length) const;

  template <typename T>
  T ReadTAt(uint64_t offset) const {
    T value;
    ReadAt(offset, &value, sizeof(T));
    return value;
  }

  template <typename T>
  void WriteTAt(uint64_t offset, const T& value) const {
    WriteAt(offset, &value, sizeof(T));
  }

  // Copies the whole slice into a host vector (checked, charged).
  std::vector<uint8_t> ToVector() const;

 private:
  AddressSpace* space_;
  Gaddr addr_;
  uint64_t size_;
};

}  // namespace flexos

#endif  // FLEXOS_VMEM_ACCESS_H_
