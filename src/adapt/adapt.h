// flexadapt (DESIGN.md §16): runtime-adaptive isolation. The paper's thesis
// is that isolation placement is a build-time knob; flexwatch (§14) and
// flexpath (§15) made the cost of a placement observable per window and per
// boundary. This engine closes the loop: at every flexwatch window close it
// consumes the window's gate.latency_ns.* deltas — the same per-boundary
// rows the critpath advisor ranks offline (obs::BoundaryShare) — and
// re-places individual boundary backends live through
// Image::SetBoundaryBackend:
//
//   * demotion (cheaper gate) when a boundary's crossing cost dominates the
//     window: one rung down the ladder vm-rpc -> mpk-switched -> mpk-shared
//     (-> none only when an "adapt allow" row explicitly blesses it), gated
//     by predicted saving > min_delta_frac of the boundary's window gate
//     time AND > the modeled transition cost (TransitionCycles).
//   * promotion (stronger isolation) when the fault supervisor contains a
//     trap on the boundary: one rung up none -> mpk-shared -> mpk-switched,
//     immediately, ignoring cooldown and the allow list — safety beats
//     hysteresis.
//
// Safety gating: every proposed demotion is re-linted before it is applied.
// The engine extracts the live image's model (analysis/flexlint.h), re-runs
// the rule set with the proposed backend, and vetoes the move iff the
// proposal introduces error diagnostics the current placement does not have
// (e.g. FL003 when demoting to a trusted function call between libraries
// whose metadata forbids shared trust). Vetoed moves are counted
// (adapt.vetoes) and logged, never applied.
//
// Hysteresis: per-boundary cooldown windows between moves, a min_crossings
// floor so idle boundaries never thrash, and a flap counter — a move that
// reverses the boundary's previous move is a flap; max_flaps of them freeze
// the boundary for the rest of the run (adapt.flaps counts).
//
// Determinism: decisions are a pure function of the deterministic window
// snapshot stream, the cost model, and the config, so the same seed yields
// a byte-identical decision log (ToJson, schema flexos-adapt-v1) — the
// bench/abl_adaptive.cc replay gate locks this.
//
// Predicted vs realized accounting: a decision records the measured
// per-crossing cost under the old backend and the model's predicted
// per-crossing cost under the new one; the first later window in which the
// re-placed boundary crosses again fills in the realized per-crossing cost.
// Because the gates charge exactly the modeled sequences and the one-time
// transition cost is charged to the clock (never to the latency
// histograms), realized and predicted per-crossing costs differ only by
// integer ns rounding of the histogram mean: |realized - predicted| <= 1 ns
// per crossing, the documented reconciliation bound.
#ifndef FLEXOS_ADAPT_ADAPT_H_
#define FLEXOS_ADAPT_ADAPT_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/image.h"
#include "core/image_builder.h"
#include "obs/timeseries.h"

namespace flexos {
namespace adapt {

inline constexpr std::string_view kAdaptSchema = "flexos-adapt-v1";

enum class DecisionKind : uint8_t {
  kDemote,   // Window policy picked a cheaper gate.
  kPromote,  // Contained trap forced a stronger gate.
  kVeto,     // Demotion proposed, refused by the lint gate. Never applied.
};

std::string_view DecisionKindName(DecisionKind kind);

// One policy decision, in decision order. All integer fields are exact;
// the JSON log (ToJson) renders them digit-for-digit, so a replay of the
// same seed produces a byte-identical log.
struct AdaptDecision {
  uint64_t window_seq = 0;  // Window that triggered it (traps: last seen).
  int from = -1;
  int to = -1;
  DecisionKind kind = DecisionKind::kDemote;
  IsolationBackend old_backend = IsolationBackend::kNone;
  IsolationBackend new_backend = IsolationBackend::kNone;

  uint64_t crossings = 0;  // Window crossings backing the decision (0 for
                           // trap promotions: the trap itself is the
                           // evidence).
  uint64_t gate_ns = 0;    // Window gate time under old_backend.

  // Per-crossing accounting (ns). measured_old is gate_ns / crossings for
  // window-driven decisions and the model's prediction for trap
  // promotions; predicted_new always comes from PredictedCrossingCycles.
  uint64_t measured_old_per_cross_ns = 0;
  uint64_t predicted_new_per_cross_ns = 0;
  uint64_t realized_new_per_cross_ns = 0;  // Filled by a later window.
  bool realized = false;                   // realized_* fields valid.

  // Projected window deltas (positive = predicted saving): per-crossing
  // delta scaled by `crossings` (by 1 for trap promotions).
  int64_t predicted_delta_ns = 0;
  int64_t realized_delta_ns = 0;  // Valid iff `realized`.

  uint64_t transition_cost_ns = 0;  // TransitionCycles, in ns.
  bool applied = false;    // False for vetoes and failed swaps.
  bool deferred = false;   // Swap parked behind in-flight crossings.
  std::string reason;      // "crossing-cost", "trap", "veto:FL003", ...
};

// The policy engine. Owned by the Testbed when the image config says
// "adapt on"; wired to TimeSeries::SetWindowHook and
// CompartmentSupervisor::SetTrapObserver.
class AdaptiveIsolationEngine {
 public:
  AdaptiveIsolationEngine(Image& image, const AdaptConfig& config);

  AdaptiveIsolationEngine(const AdaptiveIsolationEngine&) = delete;
  AdaptiveIsolationEngine& operator=(const AdaptiveIsolationEngine&) = delete;

  // Window-close feed (TimeSeries::SetWindowHook). Fills realized deltas
  // for earlier decisions, then evaluates demotions over this window's
  // per-boundary gate rows.
  void OnWindow(const obs::WindowSnapshot& snapshot);

  // Fault-supervisor feed (SetTrapObserver): a trap was contained crossing
  // (from, to). Promotes the boundary one rung immediately.
  void OnContainedTrap(int from_comp, int to_comp);

  // --- Introspection ------------------------------------------------------
  const std::vector<AdaptDecision>& decisions() const { return decisions_; }
  uint64_t promotions() const { return promotions_; }
  uint64_t demotions() const { return demotions_; }
  uint64_t vetoes() const { return vetoes_; }
  uint64_t flaps() const { return flaps_; }
  uint64_t windows_seen() const { return last_window_seq_; }

  // flexos-adapt-v1: byte-deterministic decision log (same seed ->
  // identical bytes). flexstat --adapt --json emits this.
  std::string ToJson() const;

  // Human-readable decision table (flexstat --adapt).
  std::string ToTable() const;

 private:
  // Per-boundary hysteresis state.
  struct BoundaryState {
    uint64_t last_transition_window = 0;
    bool transitioned = false;  // last_transition_window is meaningful.
    int flap_count = 0;
    bool frozen = false;
    // Previous applied move, for flap detection (a move reversing it).
    IsolationBackend prev_old = IsolationBackend::kNone;
    IsolationBackend prev_new = IsolationBackend::kNone;
  };

  // One merged per-boundary row of a window (BoundaryShare's window-delta
  // analogue, recovered from gate.latency_ns.* histogram deltas).
  struct WindowRow {
    int from = -1;
    int to = -1;
    IsolationBackend backend = IsolationBackend::kNone;
    uint64_t crossings = 0;
    uint64_t gate_ns = 0;
  };

  std::vector<WindowRow> RowsFrom(const obs::WindowSnapshot& snapshot) const;
  void FillRealized(const obs::WindowSnapshot& snapshot);
  bool AllowedByList(int from, int to, IsolationBackend target) const;
  // Lint the live image with `target` in place of the current placement;
  // returns the first NEW error rule id, or "" when the move is clean.
  std::string LintVeto(IsolationBackend target) const;
  void RecordTransition(BoundaryState& state, const AdaptDecision& decision);
  void EmitInstant(const char* name, const AdaptDecision& decision);
  uint64_t PredictedPerCrossNs(IsolationBackend backend) const;

  Image& image_;
  AdaptConfig config_;
  std::map<std::pair<int, int>, BoundaryState> states_;
  std::vector<AdaptDecision> decisions_;
  uint64_t last_window_seq_ = 0;
  uint64_t promotions_ = 0;
  uint64_t demotions_ = 0;
  uint64_t vetoes_ = 0;
  uint64_t flaps_ = 0;

  obs::Counter* promotions_counter_ = nullptr;
  obs::Counter* demotions_counter_ = nullptr;
  obs::Counter* vetoes_counter_ = nullptr;
  obs::Counter* flaps_counter_ = nullptr;
};

}  // namespace adapt
}  // namespace flexos

#endif  // FLEXOS_ADAPT_ADAPT_H_
