#include "adapt/adapt.h"

#include <optional>
#include <set>
#include <utility>

#include "analysis/flexlint.h"
#include "core/gate_costs.h"
#include "obs/names.h"
#include "support/log.h"
#include "support/strings.h"

namespace flexos {
namespace adapt {
namespace {

// "c3" -> 3, "platform" -> -1, anything else -> nullopt.
std::optional<int> CompFromLabel(std::string_view label) {
  if (label == "platform") {
    return -1;
  }
  if (label.size() < 2 || label[0] != 'c') {
    return std::nullopt;
  }
  const std::optional<uint64_t> id = ParseU64(label.substr(1));
  if (!id.has_value()) {
    return std::nullopt;
  }
  return static_cast<int>(*id);
}

// One rung down the demotion ladder; nullopt from the bottom.
std::optional<IsolationBackend> NextDown(IsolationBackend backend) {
  switch (backend) {
    case IsolationBackend::kVmRpc:
      return IsolationBackend::kMpkSwitchedStack;
    case IsolationBackend::kMpkSwitchedStack:
      return IsolationBackend::kMpkSharedStack;
    case IsolationBackend::kMpkSharedStack:
      return IsolationBackend::kNone;
    case IsolationBackend::kNone:
      return std::nullopt;
  }
  return std::nullopt;
}

// One rung up the promotion ladder. Promotion stops at mpk-switched: the
// trap is already being contained by an MPK gate there, and moving a
// boundary into a VM at runtime is a deployment decision, not a reflex.
std::optional<IsolationBackend> NextUp(IsolationBackend backend) {
  switch (backend) {
    case IsolationBackend::kNone:
      return IsolationBackend::kMpkSharedStack;
    case IsolationBackend::kMpkSharedStack:
      return IsolationBackend::kMpkSwitchedStack;
    case IsolationBackend::kMpkSwitchedStack:
    case IsolationBackend::kVmRpc:
      return std::nullopt;
  }
  return std::nullopt;
}

const char* BoolName(bool value) { return value ? "true" : "false"; }

}  // namespace

std::string_view DecisionKindName(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::kDemote:
      return "demote";
    case DecisionKind::kPromote:
      return "promote";
    case DecisionKind::kVeto:
      return "veto";
  }
  return "?";
}

AdaptiveIsolationEngine::AdaptiveIsolationEngine(Image& image,
                                                const AdaptConfig& config)
    : image_(image), config_(config) {
  obs::MetricsRegistry& metrics = image_.machine().metrics();
  promotions_counter_ = &metrics.GetCounter(obs::kMetricAdaptPromotions);
  demotions_counter_ = &metrics.GetCounter(obs::kMetricAdaptDemotions);
  vetoes_counter_ = &metrics.GetCounter(obs::kMetricAdaptVetoes);
  flaps_counter_ = &metrics.GetCounter(obs::kMetricAdaptFlaps);
}

uint64_t AdaptiveIsolationEngine::PredictedPerCrossNs(
    IsolationBackend backend) const {
  return image_.machine().clock().CyclesToNanos(
      PredictedCrossingCycles(image_.machine().costs(), backend,
                              kGateArgBytes, kGateRetBytes));
}

std::vector<AdaptiveIsolationEngine::WindowRow>
AdaptiveIsolationEngine::RowsFrom(const obs::WindowSnapshot& snapshot) const {
  // Histograms arrive name-sorted and each (backend, from, to) latency
  // histogram appears at most once per window, so the row order — and
  // therefore the decision order — is deterministic.
  std::vector<WindowRow> rows;
  for (const obs::WindowHistSample& sample : snapshot.histograms) {
    obs::GateMetricParts parts;
    if (!obs::ParseGateMetricName(sample.name, &parts) ||
        parts.family != "latency_ns") {
      continue;
    }
    const std::optional<int> from = CompFromLabel(parts.from);
    const std::optional<int> to = CompFromLabel(parts.to);
    if (!from.has_value() || !to.has_value() || *from < 0 || *to < 0) {
      // The platform entry edge (SpawnApp's platform->app route) is boot
      // plumbing, not a placement the spec declared; leave it alone.
      continue;
    }
    WindowRow row;
    row.from = *from;
    row.to = *to;
    if (!IsolationBackendFromName(parts.backend, &row.backend)) {
      continue;
    }
    row.crossings = sample.delta.count();
    row.gate_ns = sample.delta.sum();
    if (row.crossings > 0) {
      rows.push_back(row);
    }
  }
  return rows;
}

void AdaptiveIsolationEngine::FillRealized(
    const obs::WindowSnapshot& snapshot) {
  for (AdaptDecision& decision : decisions_) {
    if (decision.realized || (!decision.applied && !decision.deferred)) {
      continue;
    }
    const std::string metric = obs::GateMetricName(
        "latency_ns", IsolationBackendName(decision.new_backend),
        decision.from, decision.to);
    for (const obs::WindowHistSample& sample : snapshot.histograms) {
      if (sample.name != metric || sample.delta.count() == 0) {
        continue;
      }
      decision.realized_new_per_cross_ns =
          sample.delta.sum() / sample.delta.count();
      const uint64_t basis =
          decision.kind == DecisionKind::kPromote ? 1 : decision.crossings;
      decision.realized_delta_ns =
          (static_cast<int64_t>(decision.measured_old_per_cross_ns) -
           static_cast<int64_t>(decision.realized_new_per_cross_ns)) *
          static_cast<int64_t>(basis);
      decision.realized = true;
      break;
    }
  }
}

bool AdaptiveIsolationEngine::AllowedByList(int from, int to,
                                            IsolationBackend target) const {
  for (const AdaptAllowRule& rule : config_.allow) {
    if (rule.from == from && rule.to == to && rule.target == target) {
      return true;
    }
  }
  // Demoting to a trusted function call erases the boundary's protection;
  // that always needs an explicit "adapt allow" blessing. Everything else
  // defaults to allowed when no whitelist was declared.
  if (target == IsolationBackend::kNone) {
    return false;
  }
  return config_.allow.empty();
}

std::string AdaptiveIsolationEngine::LintVeto(IsolationBackend target) const {
  LintModel model = ExtractModel(image_, BuiltinMetaResolver());
  const LintReport base = RunRules(model);
  std::set<std::pair<std::string, std::string>> known;
  for (const LintDiagnostic& diagnostic : base.diagnostics) {
    if (diagnostic.severity == LintSeverity::kError) {
      known.emplace(diagnostic.rule, diagnostic.entity);
    }
  }
  model.backend = target;
  const LintReport proposed = RunRules(model);
  for (const LintDiagnostic& diagnostic : proposed.diagnostics) {
    if (diagnostic.severity == LintSeverity::kError &&
        known.count({diagnostic.rule, diagnostic.entity}) == 0) {
      return diagnostic.rule;
    }
  }
  return "";
}

void AdaptiveIsolationEngine::EmitInstant(const char* name,
                                          const AdaptDecision& decision) {
  image_.machine().tracer().RecordInstant(
      obs::TraceCat::kAdapt, name, /*tid=*/0, decision.window_seq,
      (static_cast<uint64_t>(static_cast<uint32_t>(decision.from)) << 32) |
          static_cast<uint32_t>(decision.to));
}

void AdaptiveIsolationEngine::RecordTransition(BoundaryState& state,
                                               const AdaptDecision& decision) {
  if (state.transitioned && decision.old_backend == state.prev_new &&
      decision.new_backend == state.prev_old) {
    ++state.flap_count;
    ++flaps_;
    flaps_counter_->Add();
    EmitInstant("adapt.flap", decision);
    if (state.flap_count >= config_.max_flaps) {
      state.frozen = true;
      FLEXOS_WARN("flexadapt: boundary c%d->c%d frozen after %d flaps",
                  decision.from, decision.to, state.flap_count);
    }
  }
  state.prev_old = decision.old_backend;
  state.prev_new = decision.new_backend;
  state.last_transition_window = decision.window_seq;
  state.transitioned = true;
}

void AdaptiveIsolationEngine::OnWindow(const obs::WindowSnapshot& snapshot) {
  last_window_seq_ = snapshot.seq;
  FillRealized(snapshot);

  const uint64_t window_ns = image_.machine().clock().CyclesToNanos(
      snapshot.end_cycles - snapshot.start_cycles);
  if (window_ns == 0) {
    return;
  }

  for (const WindowRow& row : RowsFrom(snapshot)) {
    if (row.crossings < config_.min_crossings) {
      continue;
    }
    // Only act on the boundary's *current* placement: right after a swap
    // the same window can still carry a row under the old backend's name.
    if (row.backend != image_.BoundaryBackend(row.from, row.to)) {
      continue;
    }
    BoundaryState& state = states_[{row.from, row.to}];
    if (state.frozen) {
      continue;
    }
    if (state.transitioned &&
        snapshot.seq - state.last_transition_window <=
            static_cast<uint64_t>(config_.cooldown_windows)) {
      continue;
    }
    if (static_cast<double>(row.gate_ns) <
        config_.demote_share * static_cast<double>(window_ns)) {
      continue;
    }
    const std::optional<IsolationBackend> target = NextDown(row.backend);
    if (!target.has_value() ||
        !AllowedByList(row.from, row.to, *target)) {
      continue;
    }

    AdaptDecision decision;
    decision.window_seq = snapshot.seq;
    decision.from = row.from;
    decision.to = row.to;
    decision.old_backend = row.backend;
    decision.new_backend = *target;
    decision.crossings = row.crossings;
    decision.gate_ns = row.gate_ns;
    decision.measured_old_per_cross_ns = row.gate_ns / row.crossings;
    decision.predicted_new_per_cross_ns = PredictedPerCrossNs(*target);
    decision.predicted_delta_ns =
        (static_cast<int64_t>(decision.measured_old_per_cross_ns) -
         static_cast<int64_t>(decision.predicted_new_per_cross_ns)) *
        static_cast<int64_t>(row.crossings);
    decision.transition_cost_ns = image_.machine().clock().CyclesToNanos(
        TransitionCycles(image_.machine().costs(), row.backend, *target));

    if (decision.predicted_delta_ns <=
            static_cast<int64_t>(static_cast<double>(row.gate_ns) *
                                 config_.min_delta_frac) ||
        decision.predicted_delta_ns <=
            static_cast<int64_t>(decision.transition_cost_ns)) {
      continue;  // Saving too small to be worth a move.
    }

    const std::string veto_rule = LintVeto(*target);
    if (!veto_rule.empty()) {
      decision.kind = DecisionKind::kVeto;
      decision.reason = "veto:" + veto_rule;
      ++vetoes_;
      vetoes_counter_->Add();
      EmitInstant("adapt.veto", decision);
      decisions_.push_back(std::move(decision));
      continue;
    }

    decision.kind = DecisionKind::kDemote;
    decision.reason = "crossing-cost";
    decision.applied =
        image_.SetBoundaryBackend(row.from, row.to, *target);
    decision.deferred = !decision.applied;
    ++demotions_;
    demotions_counter_->Add();
    EmitInstant("adapt.demote", decision);
    RecordTransition(state, decision);
    FLEXOS_INFO(
        "flexadapt: window %llu demote c%d->c%d %s => %s "
        "(predicted saving %lld ns)",
        static_cast<unsigned long long>(snapshot.seq), row.from, row.to,
        std::string(IsolationBackendName(row.backend)).c_str(),
        std::string(IsolationBackendName(*target)).c_str(),
        static_cast<long long>(decision.predicted_delta_ns));
    decisions_.push_back(std::move(decision));
  }
}

void AdaptiveIsolationEngine::OnContainedTrap(int from_comp, int to_comp) {
  if (from_comp < 0 || to_comp < 0) {
    return;  // Platform edges are boot plumbing; never re-placed.
  }
  const IsolationBackend current =
      image_.BoundaryBackend(from_comp, to_comp);
  const std::optional<IsolationBackend> target = NextUp(current);
  if (!target.has_value()) {
    return;  // Already at the promotion ceiling.
  }

  AdaptDecision decision;
  decision.window_seq = last_window_seq_;
  decision.from = from_comp;
  decision.to = to_comp;
  decision.kind = DecisionKind::kPromote;
  decision.old_backend = current;
  decision.new_backend = *target;
  decision.measured_old_per_cross_ns = PredictedPerCrossNs(current);
  decision.predicted_new_per_cross_ns = PredictedPerCrossNs(*target);
  decision.predicted_delta_ns =
      static_cast<int64_t>(decision.measured_old_per_cross_ns) -
      static_cast<int64_t>(decision.predicted_new_per_cross_ns);
  decision.transition_cost_ns = image_.machine().clock().CyclesToNanos(
      TransitionCycles(image_.machine().costs(), current, *target));
  decision.reason = "trap";
  // Safety beats hysteresis: promotions ignore cooldown, freeze, and the
  // allow list, and are never lint-vetoed (stronger isolation cannot
  // introduce a sharing violation).
  decision.applied =
      image_.SetBoundaryBackend(from_comp, to_comp, *target);
  decision.deferred = !decision.applied;
  ++promotions_;
  promotions_counter_->Add();
  EmitInstant("adapt.promote", decision);
  RecordTransition(states_[{from_comp, to_comp}], decision);
  FLEXOS_WARN("flexadapt: trap on c%d->c%d promotes %s => %s", from_comp,
              to_comp, std::string(IsolationBackendName(current)).c_str(),
              std::string(IsolationBackendName(*target)).c_str());
  decisions_.push_back(std::move(decision));
}

std::string AdaptiveIsolationEngine::ToJson() const {
  std::string out = StrFormat(
      "{\"schema\":\"%s\",\"promotions\":%llu,\"demotions\":%llu,"
      "\"vetoes\":%llu,\"flaps\":%llu,\"decisions\":[",
      std::string(kAdaptSchema).c_str(),
      static_cast<unsigned long long>(promotions_),
      static_cast<unsigned long long>(demotions_),
      static_cast<unsigned long long>(vetoes_),
      static_cast<unsigned long long>(flaps_));
  for (size_t i = 0; i < decisions_.size(); ++i) {
    const AdaptDecision& d = decisions_[i];
    if (i > 0) {
      out += ',';
    }
    out += StrFormat(
        "{\"window\":%llu,\"from\":\"%s\",\"to\":\"%s\",\"kind\":\"%s\","
        "\"old\":\"%s\",\"new\":\"%s\",\"crossings\":%llu,"
        "\"gate_ns\":%llu,\"measured_old_per_cross_ns\":%llu,"
        "\"predicted_new_per_cross_ns\":%llu,"
        "\"realized_new_per_cross_ns\":%llu,\"realized\":%s,"
        "\"predicted_delta_ns\":%lld,\"realized_delta_ns\":%lld,"
        "\"transition_cost_ns\":%llu,\"applied\":%s,\"deferred\":%s,"
        "\"reason\":\"%s\"}",
        static_cast<unsigned long long>(d.window_seq),
        obs::CompartmentLabel(d.from).c_str(),
        obs::CompartmentLabel(d.to).c_str(),
        std::string(DecisionKindName(d.kind)).c_str(),
        std::string(IsolationBackendName(d.old_backend)).c_str(),
        std::string(IsolationBackendName(d.new_backend)).c_str(),
        static_cast<unsigned long long>(d.crossings),
        static_cast<unsigned long long>(d.gate_ns),
        static_cast<unsigned long long>(d.measured_old_per_cross_ns),
        static_cast<unsigned long long>(d.predicted_new_per_cross_ns),
        static_cast<unsigned long long>(d.realized_new_per_cross_ns),
        BoolName(d.realized), static_cast<long long>(d.predicted_delta_ns),
        static_cast<long long>(d.realized_delta_ns),
        static_cast<unsigned long long>(d.transition_cost_ns),
        BoolName(d.applied), BoolName(d.deferred), d.reason.c_str());
  }
  out += "]}";
  return out;
}

std::string AdaptiveIsolationEngine::ToTable() const {
  std::string out = StrFormat(
      "flexadapt: %llu decision(s), %llu demotion(s), %llu promotion(s), "
      "%llu veto(es), %llu flap(s)\n",
      static_cast<unsigned long long>(decisions_.size()),
      static_cast<unsigned long long>(demotions_),
      static_cast<unsigned long long>(promotions_),
      static_cast<unsigned long long>(vetoes_),
      static_cast<unsigned long long>(flaps_));
  if (decisions_.empty()) {
    return out;
  }
  out += StrFormat("%-8s %-8s %-14s %-28s %14s %14s %-9s %s\n", "window",
                   "kind", "boundary", "backend", "predicted_ns",
                   "realized_ns", "applied", "reason");
  for (const AdaptDecision& d : decisions_) {
    const std::string boundary = obs::CompartmentLabel(d.from) + "->" +
                                 obs::CompartmentLabel(d.to);
    const std::string change =
        std::string(IsolationBackendName(d.old_backend)) + " => " +
        std::string(IsolationBackendName(d.new_backend));
    const std::string realized =
        d.realized
            ? StrFormat("%lld", static_cast<long long>(d.realized_delta_ns))
            : std::string("-");
    const char* applied = "deferred";
    if (d.applied) {
      applied = "yes";
    } else if (d.kind == DecisionKind::kVeto) {
      applied = "vetoed";
    }
    out += StrFormat(
        "%-8llu %-8s %-14s %-28s %14lld %14s %-9s %s\n",
        static_cast<unsigned long long>(d.window_seq),
        std::string(DecisionKindName(d.kind)).c_str(), boundary.c_str(),
        change.c_str(), static_cast<long long>(d.predicted_delta_ns),
        realized.c_str(), applied, d.reason.c_str());
  }
  return out;
}

}  // namespace adapt
}  // namespace flexos
