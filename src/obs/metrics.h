// MetricsRegistry: the unified runtime-metrics layer (DESIGN.md §7). Named
// counters, gauges, and log-bucketed latency histograms, owned by the
// Machine so every run — test, benchmark, or flexstat — reads its numbers
// from one place instead of per-component ad-hoc structs.
//
// Design constraints:
//   * No allocation on the record path. Registration (GetCounter etc.)
//     allocates once; instrumented components resolve their metrics at
//     construction and record through stable pointers.
//   * Histograms are HDR-style fixed-size arrays: values 0..7 get exact
//     buckets, larger values land in 4 log sub-buckets per power of two up
//     to 2^41 ns (~36 min), then one overflow bucket. Record() is a few
//     shifts and an increment.
//   * Single-writer semantics: the multi-vCPU machine (DESIGN.md §12) is
//     still one host thread — vCPUs are per-vCPU virtual clocks the
//     scheduler multiplexes, never concurrent writers — so counters stay
//     plain uint64_t (the lock-free multi-producer story lives in
//     obs/trace.h where real threads genuinely coexist, e.g. under TSan).
//
// The obs layer sits below support/ — it must not include any other flexos
// header, because hw/machine.h and support/log.cc both build on it.
#ifndef FLEXOS_OBS_METRICS_H_
#define FLEXOS_OBS_METRICS_H_

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/vcpu.h"

namespace flexos {
namespace obs {

class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }
  void Reset() { value_ = 0; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(int64_t value) { value_ = value; }
  void Add(int64_t delta) { value_ += delta; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Log-bucketed latency histogram. Bucket layout (kSubBits = 2):
//   index 0..7            exact values 0..7
//   index 8 + 4e' + s     values [2^e + s*2^(e-2), 2^e + (s+1)*2^(e-2)),
//                         e in [3, kMaxExp], e' = e - 3, s in [0, 3]
//   index kOverflowBucket values >= 2^(kMaxExp+1)
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 2;
  static constexpr int kSubBuckets = 1 << kSubBits;     // 4
  static constexpr int kFirstExp = 3;                   // 2^3 = 8
  static constexpr int kMaxExp = 40;                    // < 2^41 ns tracked
  static constexpr int kLinearBuckets = 1 << kFirstExp;  // 8 exact buckets
  static constexpr int kOverflowBucket =
      kLinearBuckets + (kMaxExp - kFirstExp + 1) * kSubBuckets;
  static constexpr int kBucketCount = kOverflowBucket + 1;

  static constexpr int BucketIndex(uint64_t value) {
    if (value < kLinearBuckets) {
      return static_cast<int>(value);
    }
    // e = floor(log2(value)); value >= kLinearBuckets > 0 here. A single
    // lzcnt — Record sits on the gate-dispatch fast path, where a
    // shift-loop equivalent costs more than the whole rest of the dispatch.
    const int e = 63 - std::countl_zero(value);
    if (e > kMaxExp) {
      return kOverflowBucket;
    }
    const int sub =
        static_cast<int>((value >> (e - kSubBits)) & (kSubBuckets - 1));
    return kLinearBuckets + (e - kFirstExp) * kSubBuckets + sub;
  }

  // Inclusive lower bound of bucket `index` (the value Percentile reports
  // for ranks landing in it).
  static constexpr uint64_t BucketLowerBound(int index) {
    if (index < kLinearBuckets) {
      return static_cast<uint64_t>(index);
    }
    if (index >= kOverflowBucket) {
      return uint64_t{1} << (kMaxExp + 1);
    }
    const int e = kFirstExp + (index - kLinearBuckets) / kSubBuckets;
    const int sub = (index - kLinearBuckets) % kSubBuckets;
    return (uint64_t{1} << e) +
           static_cast<uint64_t>(sub) * (uint64_t{1} << (e - kSubBits));
  }

  void Record(uint64_t value) {
    ++buckets_[BucketIndex(value)];
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) {
      min_ = value;
    }
    if (value > max_) {
      max_ = value;
    }
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  uint64_t overflow() const { return buckets_[kOverflowBucket]; }
  uint64_t bucket(int index) const { return buckets_[index]; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Value at percentile p (0..100]: the lower bound of the bucket holding
  // the rank-ceil(p/100 * count) sample — a floor of the true percentile,
  // never more than one sub-bucket below it. Ranks landing in the overflow
  // bucket report the exact max. 0 when empty.
  uint64_t Percentile(double p) const;

  void Reset();

  // Window arithmetic for obs/timeseries.h: the histogram holding only the
  // samples recorded between snapshots `prev` and `cur` of the same
  // histogram. Buckets/count/sum subtract exactly; min/max are exact when
  // the window moved the cumulative extreme (a new extreme must have
  // arrived this window) and bucket-bounded otherwise. A cur with fewer
  // samples than prev was Reset() in between and is returned as-is.
  static LatencyHistogram Delta(const LatencyHistogram& cur,
                                const LatencyHistogram& prev);

 private:
  uint64_t buckets_[kBucketCount] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

// Per-boundary gate metrics, resolved once at route resolution and carried
// in RouteHandle so the dispatch fast path records through four pointer
// dereferences (PR 1 paid a std::map lookup per call for the same
// counters).
struct BoundaryRecorder {
  Counter* crossings = nullptr;   // Gate entry/exit pairs.
  Counter* batched = nullptr;     // Bodies run inside batched crossings.
  Counter* bytes = nullptr;       // Marshalled argument + return bytes.
  LatencyHistogram* latency_ns = nullptr;  // Gate overhead per crossing
                                           // (entry+exit halves, body
                                           // excluded), in virtual ns.
  // Per-vCPU crossing split (gate.crossings.<...>.v<id>), populated only
  // on multi-vCPU machines; all null at one vCPU so the fast path pays a
  // single null check.
  Counter* vcpu_crossings[kMaxVCpus] = {};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. References stay valid for the registry's lifetime
  // (node-stable maps). Requesting the same name with a different metric
  // type creates an independent metric; don't do that.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  LatencyHistogram& GetHistogram(std::string_view name);

  // Read-only lookups; nullptr when the metric was never registered.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const LatencyHistogram* FindHistogram(std::string_view name) const;

  // Convenience: counter value or 0 when absent.
  uint64_t CounterValue(std::string_view name) const {
    const Counter* counter = FindCounter(name);
    return counter == nullptr ? 0 : counter->value();
  }

  // One row per metric, sorted by name (counters, then gauges, then
  // histograms interleave per the name ordering within each kind's map;
  // Entries() itself returns all kinds merged and name-sorted).
  struct Entry {
    std::string_view name;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const LatencyHistogram* histogram = nullptr;
  };
  std::vector<Entry> Entries() const;

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  // std::map: node-based, so element addresses are stable across inserts.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, LatencyHistogram, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace flexos

#endif  // FLEXOS_OBS_METRICS_H_
