// Event tracer (DESIGN.md §7): per-thread lock-free ring buffers of
// fixed-size TraceEvents, recording gate crossings, batch spans, scheduler
// run slices, allocator traffic, netstack polls, and warn+ log messages.
// Export to Chrome trace-event JSON (Perfetto-loadable) lives in
// obs/export.h.
//
// Cost story, in layers:
//   * Compile time: building with -DFLEXOS_OBS_DISABLED swaps Tracer for an
//     all-inline no-op stub — call sites compile to nothing. The stub and
//     the real class live in distinct inline namespaces (obs_enabled /
//     obs_disabled) so a stub-compiled TU can link against the enabled
//     library without ODR violations; only the active variant is reachable
//     as flexos::obs::Tracer in any given TU.
//   * Runtime: tracing defaults OFF. Every record call first checks one
//     relaxed atomic bool; bench/abl_obs_overhead.cc asserts this check
//     keeps gate dispatch cost-identical to the PR 1 fast path.
//   * Record path (tracing on): resolve the calling thread's ring through a
//     generation-checked thread-local cache, then one
//     slot write + relaxed index bump. No locks, no allocation.
//
// Rings keep the most recent kDefaultCapacity events per thread; older
// events are overwritten and counted as dropped (trace.dropped_events).
// Timestamps come from a pluggable time source — the Machine wires in its
// virtual Clock, so traces are deterministic modeled time, not wall time.
#ifndef FLEXOS_OBS_TRACE_H_
#define FLEXOS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

namespace flexos {
namespace obs {

enum class TraceCat : uint8_t {
  kGate = 0,
  kSched = 1,
  kAlloc = 2,
  kNet = 3,
  kLog = 4,
  kFault = 5,
  kRace = 6,  // flexrace HB edges + shared-region access probes (obs/race.h).
  kSlo = 7,   // flexwatch SLO violation instants (obs/timeseries.h).
  kAdapt = 8,  // flexadapt decision instants (src/adapt/adapt.h).
};

// Subset of Chrome trace-event phases we emit. Spans are always recorded as
// complete ("X") events at their end — begin/end pairs would be torn when
// the ring wraps between the two halves.
enum class TracePhase : uint8_t {
  kComplete = 0,  // "X": ts + dur
  kInstant = 1,   // "i": point event
};

struct TraceEvent {
  uint64_t ts_ns = 0;   // Virtual time at event start.
  uint64_t dur_ns = 0;  // Span length; 0 for instants.
  uint64_t a0 = 0;      // Event args (bytes, sizes, ids — per event type).
  uint64_t a1 = 0;
  uint64_t req = 0;     // Request id (obs::TraceContext); 0 = unattributed.
  const char* name = nullptr;  // Must outlive the tracer (literal or
                               // component-owned string).
  char text[48] = {};          // Inline payload for log messages.
  int32_t tid = 0;             // Track id: compartment + 1; 0 = platform.
  uint16_t vcpu = 0;           // vCPU the event was recorded on.
  TraceCat cat = TraceCat::kGate;
  TracePhase phase = TracePhase::kInstant;

  void SetText(std::string_view s) {
    const size_t n = s.size() < sizeof(text) - 1 ? s.size() : sizeof(text) - 1;
    std::memcpy(text, s.data(), n);
    text[n] = '\0';
  }
};

// Single-producer ring. The producer is the owning OS thread; readers
// (Snapshot) run when the producer is quiescent, which the single-vCPU
// simulator guarantees at export time.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity) : slots_(capacity) {}

  void Push(const TraceEvent& event) {
    const uint64_t seq = next_.load(std::memory_order_relaxed);
    slots_[seq % slots_.size()] = event;
    next_.store(seq + 1, std::memory_order_release);
  }

  size_t capacity() const { return slots_.size(); }
  uint64_t pushed() const { return next_.load(std::memory_order_acquire); }
  uint64_t dropped() const {
    const uint64_t n = pushed();
    return n > slots_.size() ? n - slots_.size() : 0;
  }

  // Retained events, oldest first.
  void AppendTo(std::vector<TraceEvent>* out) const {
    const uint64_t n = pushed();
    const uint64_t cap = slots_.size();
    const uint64_t first = n > cap ? n - cap : 0;
    for (uint64_t seq = first; seq < n; ++seq) {
      out->push_back(slots_[seq % cap]);
    }
  }

 private:
  std::vector<TraceEvent> slots_;
  std::atomic<uint64_t> next_{0};
};

#ifndef FLEXOS_OBS_DISABLED

inline namespace obs_enabled {

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 16384;

  using TimeSourceFn = uint64_t (*)(void* ctx);

  explicit Tracer(size_t capacity_per_thread = kDefaultCapacity);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Runtime knob. All record paths check this first.
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Virtual-clock hook; defaults to 0 until the Machine installs one.
  void SetTimeSource(TimeSourceFn fn, void* ctx) {
    time_fn_ = fn;
    time_ctx_ = ctx;
  }
  uint64_t NowNs() const { return time_fn_ ? time_fn_(time_ctx_) : 0; }

  // The Machine updates this on every vCPU switch; events are stamped with
  // it so exports can separate per-vCPU timelines. Always 0 at N=1.
  void SetCurrentVCpu(int32_t v) { current_vcpu_ = static_cast<uint16_t>(v); }

  void RecordComplete(TraceCat cat, const char* name, uint64_t ts_ns,
                      uint64_t dur_ns, int32_t tid, uint64_t a0 = 0,
                      uint64_t a1 = 0, uint64_t req = 0) {
    if (!enabled()) {
      return;
    }
    TraceEvent event;
    event.ts_ns = ts_ns;
    event.dur_ns = dur_ns;
    event.a0 = a0;
    event.a1 = a1;
    event.req = req;
    event.name = name;
    event.tid = tid;
    event.vcpu = current_vcpu_;
    event.cat = cat;
    event.phase = TracePhase::kComplete;
    Buffer().Push(event);
  }

  void RecordInstant(TraceCat cat, const char* name, int32_t tid,
                     uint64_t a0 = 0, uint64_t a1 = 0) {
    if (!enabled()) {
      return;
    }
    TraceEvent event;
    event.ts_ns = NowNs();
    event.a0 = a0;
    event.a1 = a1;
    event.name = name;
    event.tid = tid;
    event.vcpu = current_vcpu_;
    event.cat = cat;
    event.phase = TracePhase::kInstant;
    Buffer().Push(event);
  }

  // Instant event carrying inline text (log-message bridge).
  void RecordMessage(TraceCat cat, const char* name, std::string_view text,
                     int32_t tid) {
    if (!enabled()) {
      return;
    }
    TraceEvent event;
    event.ts_ns = NowNs();
    event.name = name;
    event.tid = tid;
    event.vcpu = current_vcpu_;
    event.cat = cat;
    event.phase = TracePhase::kInstant;
    event.SetText(text);
    Buffer().Push(event);
  }

  // All retained events across threads, merged and sorted by timestamp.
  std::vector<TraceEvent> Snapshot() const;

  // Events overwritten by ring wraparound, summed across threads.
  uint64_t DroppedEvents() const;

  size_t buffer_count() const;

  // Process-global tracer used by the log bridge (support/log.cc) and any
  // call site without a Machine reference. The Machine installs its tracer
  // on construction; nullptr when none is live.
  static Tracer* Active() {
    return g_active.load(std::memory_order_acquire);
  }
  static void SetActive(Tracer* tracer) {
    g_active.store(tracer, std::memory_order_release);
  }

 private:
  TraceBuffer& Buffer();
  TraceBuffer* RegisterThreadBuffer();

  const size_t capacity_per_thread_;
  const uint64_t generation_;  // Invalidates stale thread-local caches.
  std::atomic<bool> enabled_{false};
  TimeSourceFn time_fn_ = nullptr;
  void* time_ctx_ = nullptr;
  uint16_t current_vcpu_ = 0;

  mutable std::mutex register_mu_;  // Guards buffers_ growth only.
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;

  static std::atomic<Tracer*> g_active;
};

// Records a warn+ log line as a trace event on the active tracer, if any.
// Out-of-line so support/log.cc needs no tracer internals.
void TraceLogMessage(std::string_view severity, std::string_view message);

}  // inline namespace obs_enabled

#else  // FLEXOS_OBS_DISABLED

inline namespace obs_disabled {

// Zero-cost stub: same surface as the enabled Tracer, every member inline
// and empty, so instrumented call sites disappear at -O1.
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 16384;
  using TimeSourceFn = uint64_t (*)(void* ctx);

  explicit Tracer(size_t = kDefaultCapacity) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void SetEnabled(bool) {}
  bool enabled() const { return false; }
  void SetTimeSource(TimeSourceFn, void*) {}
  uint64_t NowNs() const { return 0; }
  void SetCurrentVCpu(int32_t) {}
  void RecordComplete(TraceCat, const char*, uint64_t, uint64_t, int32_t,
                      uint64_t = 0, uint64_t = 0, uint64_t = 0) {}
  void RecordInstant(TraceCat, const char*, int32_t, uint64_t = 0,
                     uint64_t = 0) {}
  void RecordMessage(TraceCat, const char*, std::string_view, int32_t) {}
  std::vector<TraceEvent> Snapshot() const { return {}; }
  uint64_t DroppedEvents() const { return 0; }
  size_t buffer_count() const { return 0; }
  static Tracer* Active() { return nullptr; }
  static void SetActive(Tracer*) {}
};

inline void TraceLogMessage(std::string_view, std::string_view) {}

}  // inline namespace obs_disabled

#endif  // FLEXOS_OBS_DISABLED

}  // namespace obs
}  // namespace flexos

#endif  // FLEXOS_OBS_TRACE_H_
