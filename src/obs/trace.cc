#ifndef FLEXOS_OBS_DISABLED

#include "obs/trace.h"

#include <algorithm>

namespace flexos {
namespace obs {
inline namespace obs_enabled {

namespace {

// Bumped per Tracer construction; lets the thread-local cache detect both
// "different tracer" and "same address, reconstructed tracer".
std::atomic<uint64_t> g_generation{0};

struct ThreadCache {
  const Tracer* owner = nullptr;
  uint64_t generation = 0;
  TraceBuffer* buffer = nullptr;
};

thread_local ThreadCache t_cache;

}  // namespace

std::atomic<Tracer*> Tracer::g_active{nullptr};

Tracer::Tracer(size_t capacity_per_thread)
    : capacity_per_thread_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      generation_(g_generation.fetch_add(1, std::memory_order_relaxed) + 1) {}

Tracer::~Tracer() {
  if (Active() == this) {
    SetActive(nullptr);
  }
}

TraceBuffer& Tracer::Buffer() {
  if (t_cache.owner == this && t_cache.generation == generation_) {
    return *t_cache.buffer;
  }
  TraceBuffer* buffer = RegisterThreadBuffer();
  t_cache.owner = this;
  t_cache.generation = generation_;
  t_cache.buffer = buffer;
  return *buffer;
}

TraceBuffer* Tracer::RegisterThreadBuffer() {
  std::lock_guard<std::mutex> lock(register_mu_);
  buffers_.push_back(std::make_unique<TraceBuffer>(capacity_per_thread_));
  return buffers_.back().get();
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(register_mu_);
    for (const auto& buffer : buffers_) {
      buffer->AppendTo(&out);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

uint64_t Tracer::DroppedEvents() const {
  std::lock_guard<std::mutex> lock(register_mu_);
  uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    total += buffer->dropped();
  }
  return total;
}

size_t Tracer::buffer_count() const {
  std::lock_guard<std::mutex> lock(register_mu_);
  return buffers_.size();
}

void TraceLogMessage(std::string_view severity, std::string_view message) {
  Tracer* tracer = Tracer::Active();
  if (tracer == nullptr || !tracer->enabled()) {
    return;
  }
  // Name must be a stable literal; severity comes from log.cc's static
  // level-name table.
  const char* name =
      severity == "WARN" ? "log.warn"
                         : (severity == "ERROR" ? "log.error" : "log.message");
  tracer->RecordMessage(TraceCat::kLog, name, message, /*tid=*/0);
}

}  // inline namespace obs_enabled
}  // namespace obs
}  // namespace flexos

#endif  // FLEXOS_OBS_DISABLED
