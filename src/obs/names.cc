#include "obs/names.h"

namespace flexos {
namespace obs {

std::string CompartmentLabel(int comp) {
  if (comp < 0) {
    return "platform";
  }
  return "c" + std::to_string(comp);
}

std::string GateMetricName(std::string_view family, std::string_view backend,
                           int from_comp, int to_comp) {
  std::string name = "gate.";
  name += family;
  name += '.';
  name += backend;
  name += '.';
  name += CompartmentLabel(from_comp);
  name += '.';
  name += CompartmentLabel(to_comp);
  return name;
}

std::string SchedVCpuMetricName(int vcpu, std::string_view family) {
  std::string name = "sched.vcpu";
  name += std::to_string(vcpu);
  name += '.';
  name += family;
  return name;
}

bool ParseGateMetricName(std::string_view name, GateMetricParts* out) {
  constexpr std::string_view kPrefix = "gate.";
  if (name.substr(0, kPrefix.size()) != kPrefix) {
    return false;
  }
  std::string_view rest = name.substr(kPrefix.size());
  // family and backend never contain '.', and from/to are single labels, so
  // the name splits into exactly four '.'-separated fields.
  std::string_view fields[4];
  for (int i = 0; i < 4; ++i) {
    const size_t dot = rest.find('.');
    if (i < 3) {
      if (dot == std::string_view::npos) {
        return false;
      }
      fields[i] = rest.substr(0, dot);
      rest = rest.substr(dot + 1);
    } else {
      if (dot != std::string_view::npos) {
        return false;
      }
      fields[i] = rest;
    }
    if (fields[i].empty()) {
      return false;
    }
  }
  out->family = fields[0];
  out->backend = fields[1];
  out->from = fields[2];
  out->to = fields[3];
  return true;
}

}  // namespace obs
}  // namespace flexos
