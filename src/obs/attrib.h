// Attributor: exact per-compartment cycle attribution and request-scoped
// latency accounting (DESIGN.md §8). Two views over one event stream:
//
//   * Cycle profiler — every scheduler activation, library call frame, and
//     gate Enter/Exit charges the virtual cycles since the previous event to
//     the currently-running frame stack. No sampling: the simulator is a
//     single-vCPU virtual-time machine, so the attribution is exact by
//     construction (sum of all flame buckets == cycles elapsed while
//     enabled). Output is collapsed-stack lines consumable by flamegraph.pl
//     and Speedscope.
//
//   * Request tracker — TraceContexts minted at request entry (TCP accept)
//     bind to the thread that runs them; cycles charged while a bound thread
//     runs accrue to the request (split per compartment and into
//     execute vs. gate overhead), cycles spent descheduled accrue as queue
//     wait. Gate crossings report their modeled overhead per boundary, so a
//     request's boundary sums reconcile exactly against the
//     gate.latency_ns.* histograms (crossings outside any request charge the
//     reserved unattributed record, id 0).
//
// The attributor observes the clock; it never charges it. Enabling it must
// not change modeled cycles (hard-gated by bench/abl_obs_overhead).
//
// Like the tracer, the real implementation lives in inline namespace
// obs_enabled and an all-inline no-op stub in obs_disabled, selected by
// FLEXOS_OBS_DISABLED so instrumentation sites compile away without ifdefs.
// The obs layer sits below support/ — no other flexos headers here.
#ifndef FLEXOS_OBS_ATTRIB_H_
#define FLEXOS_OBS_ATTRIB_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/vcpu.h"

namespace flexos {
namespace obs {

// Identity of one in-flight request. id 0 means "no request".
struct TraceContext {
  uint64_t id = 0;
  uint64_t start_ns = 0;  // Virtual time when the request was minted.
  explicit operator bool() const { return id != 0; }
};

// Crossings that happen outside any bound request charge this record, so
// summing boundary_gate_ns over *all* records (including id 0) reproduces
// the gate.latency_ns.* histogram sums exactly.
inline constexpr uint64_t kUnattributedRequestId = 0;

struct RequestRecord {
  uint64_t id = 0;
  std::string name;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;  // 0 while open.
  bool open = false;
  // Cycles charged while a thread bound to this request was running.
  uint64_t execute_cycles = 0;
  // Of execute_cycles, spent inside gate entry/exit halves.
  uint64_t gate_cycles = 0;
  // Cycles the bound thread spent descheduled between begin and end.
  uint64_t queue_wait_cycles = 0;
  uint64_t crossings = 0;
  // Body cycles per compartment id (-1 = platform/run loop).
  std::map<int, uint64_t> comp_cycles;
  // Modeled gate overhead per boundary, keyed by the full
  // gate.latency_ns.<backend>.<from>.<to> metric name.
  std::map<std::string, uint64_t> boundary_gate_ns;

  uint64_t WallNanos() const { return end_ns >= start_ns ? end_ns - start_ns : 0; }
};

struct FlameEntry {
  std::string stack;  // "thread;lib;...;gate:<backend>"
  uint64_t cycles = 0;
};

#ifndef FLEXOS_OBS_DISABLED
inline namespace obs_enabled {

class Attributor {
 public:
  Attributor();
  Attributor(const Attributor&) = delete;
  Attributor& operator=(const Attributor&) = delete;

  // Turning the attributor on anchors the charge epoch at `now_cycles`;
  // turning it off charges the tail first. Idempotent.
  void SetEnabled(bool on, uint64_t now_cycles);
  bool enabled() const { return enabled_; }

  // Scheduler hook: thread `tid` starts running at `now_cycles`. Charges the
  // elapsed slice to the previously active thread. tid 0 is the platform
  // run loop (real thread ids start at 1).
  void ActivateThread(uint64_t tid, std::string_view name, uint64_t now_cycles);

  // Dispatch hooks, bracketing call bodies and gate halves on the active
  // thread. PopFrame on an empty stack is a no-op so the attributor can be
  // enabled mid-call without underflow.
  void PushFrame(std::string_view lib, int comp, uint64_t now_cycles);
  void PushGateFrame(std::string_view backend, uint64_t now_cycles);
  void PopFrame(uint64_t now_cycles);

  // Active thread's frame-stack depth; 0 when no thread is active. With
  // UnwindFramesTo this brackets non-local exits: a supervised gate call
  // that catches a TrapException pops every frame the aborted call pushed,
  // so the conservation invariant survives trap containment.
  size_t frame_depth() const;
  void UnwindFramesTo(size_t depth, uint64_t now_cycles);

  // Mints a request bound to the active thread (ids start at 1) / closes it.
  TraceContext BeginRequest(std::string_view name, uint64_t now_cycles,
                            uint64_t now_ns);
  void EndRequest(uint64_t id, uint64_t now_cycles, uint64_t now_ns);

  // Request bound to the active thread; 0 when none.
  uint64_t current_request() const;

  // One gate crossing completed on the active thread with `overhead_ns` of
  // modeled gate overhead (the exact value recorded into the boundary's
  // latency_ns histogram). Charged to the current request, else to the
  // unattributed record.
  void OnGateCrossing(std::string_view backend, int from_comp, int to_comp,
                      uint64_t overhead_ns);

  // Charges the tail [last event, now_cycles) on the current lane so
  // read-side totals are consistent. Call before reading. Multi-vCPU
  // callers should use Machine::SyncAttribution, which SyncLanes every
  // vCPU against its own clock.
  void Sync(uint64_t now_cycles);

  // --- Multi-vCPU lanes (DESIGN.md §12) ----------------------------------
  // Each vCPU charges into its own lane with its own clock epoch, so the
  // conservation invariant (attributed == elapsed while enabled) holds per
  // vCPU: lane_attributed_cycles(v) equals the cycles vCPU v's clock
  // advanced while the attributor was enabled and the lane anchored.
  // The Machine calls SwitchLane on every vCPU switch with both clocks'
  // "now" (the two timelines are not comparable, so each lane is charged
  // only against its own stamps). Lanes anchor lazily: a lane first
  // entered after enablement starts its epoch at that entry.
  void SwitchLane(int lane, uint64_t old_lane_now_cycles,
                  uint64_t new_lane_now_cycles);

  // Flushes one lane's tail against that lane's clock without switching.
  void SyncLane(int lane, uint64_t now_cycles);

  uint64_t lane_attributed_cycles(int lane) const {
    return lanes_[lane].attributed;
  }
  int current_lane() const { return current_lane_; }

  // Read side. Flame entries are sorted by stack; requests by id (the
  // unattributed record appears first iff any crossing charged it).
  std::vector<FlameEntry> Flame() const;
  std::string CollapsedStacks() const;  // "stack cycles\n" lines.
  std::map<int, uint64_t> CompartmentCycles() const { return comp_cycles_; }
  std::map<std::string, uint64_t> BackendGateCycles() const {
    return backend_cycles_;
  }
  std::vector<const RequestRecord*> Requests() const;
  const RequestRecord* FindRequest(uint64_t id) const;
  uint64_t requests_started() const { return next_request_id_ - 1; }

  // Total cycles attributed so far (== cycles elapsed while enabled, after
  // Sync — the conservation invariant the tests assert).
  uint64_t attributed_cycles() const { return attributed_cycles_; }

  void Reset(uint64_t now_cycles);

 private:
  struct Frame {
    std::string label;      // lib name, or "gate:<backend>".
    int comp = -1;          // Valid for lib frames.
    bool gate = false;
    uint32_t prev_path_len = 0;  // Path length before this frame was pushed.
  };

  struct ThreadState {
    uint64_t tid = 0;
    std::string path;  // Thread name + ";"-joined frame labels.
    std::vector<Frame> frames;
    uint64_t request = 0;         // Bound request id; 0 = none.
    uint64_t deactivated_at = 0;  // Cycle stamp of last deschedule.
    int deactivated_lane = -1;    // Lane the stamp belongs to: queue wait
                                  // accrues only when re-activated on the
                                  // same lane (stamps from different vCPU
                                  // clocks are not comparable).
    bool active_once = false;     // Has ever been scheduled in.
  };

  // Per-vCPU charge epoch. `active` points into states_ (node-stable map);
  // every lane starts on the shared platform state (tid 0).
  struct Lane {
    uint64_t last_cycles = 0;
    uint64_t attributed = 0;
    ThreadState* active = nullptr;
    bool anchored = false;  // Epoch valid since enablement.
  };

  // Charges [lane.last_cycles, now) to the lane's active thread's top frame.
  void ChargeLane(Lane& lane, uint64_t now_cycles);
  // Current lane's charge step (the pre-vCPU-aware hot path).
  void Charge(uint64_t now_cycles) { ChargeLane(lanes_[current_lane_], now_cycles); }
  ThreadState& ActiveState() { return *lanes_[current_lane_].active; }
  const ThreadState& ActiveState() const { return *lanes_[current_lane_].active; }
  RequestRecord& RecordFor(uint64_t id);

  bool enabled_ = false;
  uint64_t attributed_cycles_ = 0;
  // std::map: node-stable, so Lane::active stays valid across inserts.
  std::map<uint64_t, ThreadState> states_;
  Lane lanes_[kMaxVCpus];
  int current_lane_ = 0;
  std::map<std::string, uint64_t> flame_;
  std::map<int, uint64_t> comp_cycles_;
  std::map<std::string, uint64_t> backend_cycles_;
  std::map<uint64_t, RequestRecord> requests_;
  uint64_t next_request_id_ = 1;
};

}  // namespace obs_enabled
#else  // FLEXOS_OBS_DISABLED

inline namespace obs_disabled {

// No-op stub: every member compiles to nothing, so instrumentation sites in
// sched/core/net cost zero when observability is compiled out.
class Attributor {
 public:
  Attributor() = default;
  Attributor(const Attributor&) = delete;
  Attributor& operator=(const Attributor&) = delete;

  void SetEnabled(bool, uint64_t) {}
  static constexpr bool enabled() { return false; }

  void ActivateThread(uint64_t, std::string_view, uint64_t) {}
  void PushFrame(std::string_view, int, uint64_t) {}
  void PushGateFrame(std::string_view, uint64_t) {}
  void PopFrame(uint64_t) {}
  static constexpr size_t frame_depth() { return 0; }
  void UnwindFramesTo(size_t, uint64_t) {}

  TraceContext BeginRequest(std::string_view, uint64_t, uint64_t) {
    return TraceContext{};
  }
  void EndRequest(uint64_t, uint64_t, uint64_t) {}
  static constexpr uint64_t current_request() { return 0; }
  void OnGateCrossing(std::string_view, int, int, uint64_t) {}
  void Sync(uint64_t) {}
  void SwitchLane(int, uint64_t, uint64_t) {}
  void SyncLane(int, uint64_t) {}
  static constexpr uint64_t lane_attributed_cycles(int) { return 0; }
  static constexpr int current_lane() { return 0; }

  std::vector<FlameEntry> Flame() const { return {}; }
  std::string CollapsedStacks() const { return {}; }
  std::map<int, uint64_t> CompartmentCycles() const { return {}; }
  std::map<std::string, uint64_t> BackendGateCycles() const { return {}; }
  std::vector<const RequestRecord*> Requests() const { return {}; }
  const RequestRecord* FindRequest(uint64_t) const { return nullptr; }
  static constexpr uint64_t requests_started() { return 0; }
  static constexpr uint64_t attributed_cycles() { return 0; }
  void Reset(uint64_t) {}
};

}  // namespace obs_disabled
#endif  // FLEXOS_OBS_DISABLED

}  // namespace obs
}  // namespace flexos

#endif  // FLEXOS_OBS_ATTRIB_H_
