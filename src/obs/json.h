// Minimal JSON reader for the repo's own deterministic JSON artifacts
// (flexos-bench-v1 result sets, flexos-timeline-v1 window dumps,
// flexos-critpath-v1 reports). Factored out of tools/flexbench.cc so the
// exporters (obs/export.cc) and the diff tooling parse through one
// implementation instead of two drifting copies.
//
// Scope: exactly what our writers emit — objects, arrays, strings with the
// JsonEscape escape set, numbers via strtod, true/false/null. Numbers are
// held as doubles, so integers above 2^53 lose precision; every in-tree
// schema keeps its integral fields far below that (virtual cycle counts,
// window sequence numbers, metric values with <= 3 printed decimals).
//
// The obs layer sits below support/ — no other flexos headers here, no
// Status type: Parse returns false and the caller reports context.
#ifndef FLEXOS_OBS_JSON_H_
#define FLEXOS_OBS_JSON_H_

#include <string>
#include <utility>
#include <vector>

namespace flexos {
namespace obs {

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kObject, kArray } kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) {
        return &v;
      }
    }
    return nullptr;
  }
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  // Parses the whole input as one value (trailing whitespace allowed,
  // trailing garbage rejected). Returns false on any syntax error.
  bool Parse(JsonValue* out);

 private:
  void SkipWs();
  bool Consume(char c);
  bool ParseString(std::string* out);
  bool ParseValue(JsonValue* out);

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace obs
}  // namespace flexos

#endif  // FLEXOS_OBS_JSON_H_
