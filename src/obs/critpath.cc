#include "obs/critpath.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <utility>

#include "obs/export.h"
#include "obs/names.h"

namespace flexos {
namespace obs {

std::string_view SegmentKindName(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::kExecute:
      return "execute";
    case SegmentKind::kGate:
      return "gate";
    case SegmentKind::kQueueWait:
      return "queue_wait";
    case SegmentKind::kIpi:
      return "ipi";
  }
  return "unknown";
}

#ifndef FLEXOS_OBS_DISABLED

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

// Shares print with fixed precision so same-seed replays are
// byte-identical regardless of the double's shortest representation.
void AppendShare(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  *out += buf;
}

bool IsVmRpcBoundary(const std::string& name) {
  GateMetricParts parts;
  return ParseGateMetricName(name, &parts) && parts.backend == "vm-rpc";
}

}  // namespace

inline namespace obs_enabled {

void CriticalPath::Build(const Attributor& attrib,
                         const MetricsRegistry& metrics,
                         const std::vector<TraceEvent>& events,
                         CyclesToNs cycles_to_ns, uint64_t ipi_cycles) {
  requests_.clear();
  boundaries_.clear();
  total_path_ns_ = 0;
  reconciled_ = true;
  reconcile_detail_ = "ok";
  queue_edges_ = 0;
  steals_ = 0;
  ipis_ = 0;
  cycles_to_ns_ = std::move(cycles_to_ns);

  // Boundary rows come from the gate.latency_ns.* histograms — the metrics
  // side of the reconciliation. Entries() is name-sorted, so boundaries_
  // is deterministic. ParseGateMetricName rejects the per-vCPU 5th field
  // (gate.crossings.<...>.v<id>) by construction, so per-vCPU splits can
  // never double-count here.
  for (const MetricsRegistry::Entry& entry : metrics.Entries()) {
    if (entry.histogram == nullptr) {
      continue;
    }
    GateMetricParts parts;
    if (!ParseGateMetricName(entry.name, &parts) ||
        parts.family != "latency_ns") {
      continue;
    }
    BoundaryShare share;
    share.boundary = std::string(entry.name);
    share.backend = std::string(parts.backend);
    share.from = std::string(parts.from);
    share.to = std::string(parts.to);
    share.crossings = entry.histogram->count();
    share.gate_ns = entry.histogram->sum();
    boundaries_.push_back(std::move(share));
  }

  // Scheduler edges from the trace stream. Queue-wait edges pair each
  // EnqueueReady stamp with that thread's next switch-in; a ready stamp
  // still unpaired at snapshot time (thread never ran again) is not an
  // edge, hence min(). IPI instants carry the issuing request id in a1.
  std::map<uint64_t, uint64_t> ready_by_thread;
  std::map<uint64_t, uint64_t> slices_by_thread;
  std::map<uint64_t, uint64_t> ipis_by_request;
  std::map<uint64_t, std::vector<int>> vcpus_by_request;
  for (const TraceEvent& event : events) {
    if (event.cat == TraceCat::kSched && event.name != nullptr) {
      if (std::strcmp(event.name, "sched.ready") == 0) {
        ++ready_by_thread[event.a0];
      } else if (std::strcmp(event.name, "sched.run_slice") == 0) {
        ++slices_by_thread[event.a0];
      } else if (std::strcmp(event.name, "sched.steal") == 0) {
        ++steals_;
      } else if (std::strcmp(event.name, "sched.ipi") == 0) {
        ++ipis_;
        ++ipis_by_request[event.a1];
      }
    } else if (event.cat == TraceCat::kGate &&
               event.phase == TracePhase::kComplete) {
      std::vector<int>& vcpus = vcpus_by_request[event.req];
      const int vcpu = static_cast<int>(event.vcpu);
      if (std::find(vcpus.begin(), vcpus.end(), vcpu) == vcpus.end()) {
        vcpus.push_back(vcpu);
      }
    }
  }
  for (const auto& [tid, ready] : ready_by_thread) {
    const auto it = slices_by_thread.find(tid);
    queue_edges_ += std::min(ready, it == slices_by_thread.end()
                                        ? uint64_t{0}
                                        : it->second);
  }

  // Per-request decomposition — the attribution side of the reconciliation.
  std::map<std::string, uint64_t> path_gate;
  std::map<std::string, uint64_t> unattributed_gate;
  uint64_t record_crossings_total = 0;
  const uint64_t ipi_ns_each =
      cycles_to_ns_ ? cycles_to_ns_(ipi_cycles) : 0;
  for (const RequestRecord* record : attrib.Requests()) {
    RequestPath path;
    path.id = record->id;
    path.name = record->name;
    path.crossings = record->crossings;
    record_crossings_total += record->crossings;
    for (const auto& [boundary, ns] : record->boundary_gate_ns) {
      path.gate_ns += ns;
      path_gate[boundary] += ns;
      if (record->id == kUnattributedRequestId) {
        unattributed_gate[boundary] += ns;
      }
    }
    const uint64_t body_cycles =
        record->execute_cycles >= record->gate_cycles
            ? record->execute_cycles - record->gate_cycles
            : 0;
    path.execute_ns = cycles_to_ns_ ? cycles_to_ns_(body_cycles) : 0;
    path.queue_wait_ns =
        cycles_to_ns_ ? cycles_to_ns_(record->queue_wait_cycles) : 0;
    if (record->id != kUnattributedRequestId && !record->open) {
      path.wall_ns = record->WallNanos();
      const uint64_t active =
          path.execute_ns + path.gate_ns + path.queue_wait_ns;
      path.slack_ns = path.wall_ns > active ? path.wall_ns - active : 0;
      total_path_ns_ += path.wall_ns;
    }
    if (const auto it = vcpus_by_request.find(record->id);
        it != vcpus_by_request.end()) {
      path.vcpus = it->second;
      std::sort(path.vcpus.begin(), path.vcpus.end());
    }

    // Segments. The IPI carve-out: vm-rpc cross-vCPU notifies charge their
    // cycles inside the gate halves (vm_gate.cc), so the recorded gate
    // overhead already contains them — the kIpi segment is display split,
    // subtracted from vm-rpc gate segments so segment nanoseconds still sum
    // to execute + gate + queue_wait.
    uint64_t ipi_count = 0;
    if (const auto it = ipis_by_request.find(record->id);
        it != ipis_by_request.end()) {
      ipi_count = it->second;
    }
    uint64_t ipi_remaining = ipi_count * ipi_ns_each;
    if (path.execute_ns > 0) {
      path.segments.push_back(
          PathSegment{SegmentKind::kExecute, "", path.execute_ns, 1});
    }
    for (const auto& [boundary, ns] : record->boundary_gate_ns) {
      PathSegment segment{SegmentKind::kGate, boundary, ns, 0};
      // Every crossing of a boundary costs the same modeled overhead, so
      // the per-record crossing count is exact integer arithmetic.
      for (const BoundaryShare& share : boundaries_) {
        if (share.boundary == boundary && share.crossings > 0) {
          const uint64_t per = share.gate_ns / share.crossings;
          segment.count = per > 0 ? ns / per : 0;
          break;
        }
      }
      if (ipi_remaining > 0 && IsVmRpcBoundary(boundary)) {
        const uint64_t carve = std::min(segment.ns, ipi_remaining);
        segment.ns -= carve;
        ipi_remaining -= carve;
      }
      path.segments.push_back(std::move(segment));
    }
    path.ipi_ns = ipi_count * ipi_ns_each - ipi_remaining;
    if (path.ipi_ns > 0) {
      path.segments.push_back(
          PathSegment{SegmentKind::kIpi, "", path.ipi_ns, ipi_count});
    }
    if (path.queue_wait_ns > 0) {
      path.segments.push_back(
          PathSegment{SegmentKind::kQueueWait, "", path.queue_wait_ns, 1});
    }
    requests_.push_back(std::move(path));
  }

  // Gate overhead outside any request has no enclosing wall time; it enters
  // the denominator directly so shares stay meaningful on request-free runs
  // (bench loops), where total_path_ns == sum of the histogram sums.
  for (const auto& [boundary, ns] : unattributed_gate) {
    (void)boundary;
    total_path_ns_ += ns;
  }

  // Reconcile: per-boundary path nanoseconds must equal the histogram sums
  // EXACTLY — both sides recorded the identical per-crossing overhead_ns —
  // and total crossings must match. Any mismatch means the attributor was
  // enabled after crossings already ran (or a recorder bypassed
  // OnGateCrossing), which would silently skew shares.
  uint64_t histogram_crossings_total = 0;
  for (BoundaryShare& share : boundaries_) {
    if (const auto it = path_gate.find(share.boundary);
        it != path_gate.end()) {
      share.path_gate_ns = it->second;
      path_gate.erase(it);
    }
    if (const auto it = unattributed_gate.find(share.boundary);
        it != unattributed_gate.end()) {
      share.unattributed_gate_ns = it->second;
    }
    share.critpath_share =
        total_path_ns_ > 0 ? static_cast<double>(share.gate_ns) /
                                 static_cast<double>(total_path_ns_)
                           : 0.0;
    histogram_crossings_total += share.crossings;
    if (reconciled_ && share.path_gate_ns != share.gate_ns) {
      reconciled_ = false;
      reconcile_detail_ = "boundary " + share.boundary + ": path ";
      AppendU64(&reconcile_detail_, share.path_gate_ns);
      reconcile_detail_ += " ns != histogram ";
      AppendU64(&reconcile_detail_, share.gate_ns);
      reconcile_detail_ += " ns";
    }
  }
  if (reconciled_ && !path_gate.empty()) {
    reconciled_ = false;
    reconcile_detail_ = "boundary " + path_gate.begin()->first +
                        " attributed but has no latency histogram";
  }
  if (reconciled_ && histogram_crossings_total != record_crossings_total) {
    reconciled_ = false;
    reconcile_detail_ = "crossings: histograms ";
    AppendU64(&reconcile_detail_, histogram_crossings_total);
    reconcile_detail_ += " != request records ";
    AppendU64(&reconcile_detail_, record_crossings_total);
  }
}

const BoundaryShare* CriticalPath::FindBoundary(
    std::string_view name) const {
  const BoundaryShare* match = nullptr;
  for (const BoundaryShare& share : boundaries_) {
    if (share.boundary == name) {
      return &share;
    }
    if (share.boundary.size() > name.size() + 1 &&
        share.boundary[share.boundary.size() - name.size() - 1] == '.' &&
        std::string_view(share.boundary)
                .substr(share.boundary.size() - name.size()) == name) {
      if (match != nullptr) {
        return nullptr;  // Ambiguous suffix.
      }
      match = &share;
    }
  }
  return match;
}

uint64_t CriticalPath::WhatIfTotalNs(
    std::string_view boundary, uint64_t new_cycles_per_crossing) const {
  const BoundaryShare* share = FindBoundary(boundary);
  if (share == nullptr || !cycles_to_ns_) {
    return total_path_ns_;
  }
  // Per-crossing conversion mirrors the recording path (each crossing's
  // cycles are converted, then summed), so a what-if back to the current
  // backend reproduces total_path_ns exactly.
  return total_path_ns_ - share->gate_ns +
         share->crossings * cycles_to_ns_(new_cycles_per_crossing);
}

std::string CriticalPath::ToJson() const {
  std::string out = "{\"schema\":\"";
  out += kCritpathSchema;
  out += "\",\"total_path_ns\":";
  AppendU64(&out, total_path_ns_);
  out += ",\"reconciled\":";
  out += reconciled_ ? "true" : "false";
  out += ",\"sched\":{\"queue_edges\":";
  AppendU64(&out, queue_edges_);
  out += ",\"steals\":";
  AppendU64(&out, steals_);
  out += ",\"ipis\":";
  AppendU64(&out, ipis_);
  out += "},\"requests\":[";
  bool first = true;
  for (const RequestPath& path : requests_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"id\":";
    AppendU64(&out, path.id);
    out += ",\"name\":\"";
    out += JsonEscape(path.name);
    out += "\",\"wall_ns\":";
    AppendU64(&out, path.wall_ns);
    out += ",\"execute_ns\":";
    AppendU64(&out, path.execute_ns);
    out += ",\"gate_ns\":";
    AppendU64(&out, path.gate_ns);
    out += ",\"queue_wait_ns\":";
    AppendU64(&out, path.queue_wait_ns);
    out += ",\"ipi_ns\":";
    AppendU64(&out, path.ipi_ns);
    out += ",\"slack_ns\":";
    AppendU64(&out, path.slack_ns);
    out += ",\"crossings\":";
    AppendU64(&out, path.crossings);
    out += ",\"vcpus\":[";
    for (size_t i = 0; i < path.vcpus.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      AppendU64(&out, static_cast<uint64_t>(path.vcpus[i]));
    }
    out += "],\"segments\":[";
    for (size_t i = 0; i < path.segments.size(); ++i) {
      const PathSegment& segment = path.segments[i];
      if (i > 0) {
        out += ',';
      }
      out += "{\"kind\":\"";
      out += SegmentKindName(segment.kind);
      out += "\",\"boundary\":\"";
      out += JsonEscape(segment.boundary);
      out += "\",\"ns\":";
      AppendU64(&out, segment.ns);
      out += ",\"count\":";
      AppendU64(&out, segment.count);
      out += '}';
    }
    out += "]}";
  }
  out += "],\"boundaries\":[";
  first = true;
  for (const BoundaryShare& share : boundaries_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"boundary\":\"";
    out += JsonEscape(share.boundary);
    out += "\",\"backend\":\"";
    out += JsonEscape(share.backend);
    out += "\",\"from\":\"";
    out += JsonEscape(share.from);
    out += "\",\"to\":\"";
    out += JsonEscape(share.to);
    out += "\",\"crossings\":";
    AppendU64(&out, share.crossings);
    out += ",\"gate_ns\":";
    AppendU64(&out, share.gate_ns);
    out += ",\"path_gate_ns\":";
    AppendU64(&out, share.path_gate_ns);
    out += ",\"unattributed_gate_ns\":";
    AppendU64(&out, share.unattributed_gate_ns);
    out += ",\"critpath_share\":";
    AppendShare(&out, share.critpath_share);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // inline namespace obs_enabled

#endif  // FLEXOS_OBS_DISABLED

}  // namespace obs
}  // namespace flexos
