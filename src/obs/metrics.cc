#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace flexos {
namespace obs {

uint64_t LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the sample we want, 1-based. p=50 with count=4 -> rank 2.
  uint64_t rank = static_cast<uint64_t>(std::ceil(p / 100.0 *
                                                  static_cast<double>(count_)));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      if (i == kOverflowBucket) {
        return max_;  // Overflow bucket's lower bound would understate badly.
      }
      // Exact buckets hold one value; log buckets report their lower bound,
      // clamped into [min_, max_] so tiny histograms read sensibly.
      const uint64_t bound = BucketLowerBound(i);
      return std::clamp(bound, count_ > 0 ? min_ : bound, max_);
    }
  }
  return max_;
}

LatencyHistogram LatencyHistogram::Delta(const LatencyHistogram& cur,
                                         const LatencyHistogram& prev) {
  if (cur.count_ < prev.count_) {
    return cur;  // Reset() between snapshots: cur is itself the window.
  }
  LatencyHistogram delta;
  if (cur.count_ == prev.count_) {
    return delta;  // Nothing recorded this window.
  }
  if (prev.count_ == 0) {
    return cur;  // First window: exact, including min/max.
  }
  delta.count_ = cur.count_ - prev.count_;
  delta.sum_ = cur.sum_ - prev.sum_;
  int first = -1;
  int last = -1;
  for (int i = 0; i < kBucketCount; ++i) {
    delta.buckets_[i] =
        cur.buckets_[i] >= prev.buckets_[i] ? cur.buckets_[i] - prev.buckets_[i]
                                            : cur.buckets_[i];
    if (delta.buckets_[i] != 0) {
      if (first < 0) {
        first = i;
      }
      last = i;
    }
  }
  // min: exact if the cumulative min moved (the new min arrived this
  // window); otherwise the lower bound of the lowest touched bucket.
  delta.min_ = cur.min_ != prev.min_ ? cur.min_ : BucketLowerBound(first);
  // max: exact if the cumulative max moved or the window touched the
  // overflow bucket (whose only known value is the cumulative max);
  // otherwise the top of the highest touched bucket, capped at cur max.
  if (cur.max_ != prev.max_ || last == kOverflowBucket) {
    delta.max_ = cur.max_;
  } else {
    const uint64_t upper = BucketLowerBound(last + 1) - 1;
    delta.max_ = upper < cur.max_ ? upper : cur.max_;
  }
  if (delta.min_ > delta.max_) {
    delta.min_ = delta.max_;
  }
  return delta;
}

void LatencyHistogram::Reset() {
  std::memset(buckets_, 0, sizeof(buckets_));
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

LatencyHistogram& MetricsRegistry::GetHistogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), LatencyHistogram{}).first;
  }
  return it->second;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const LatencyHistogram* MetricsRegistry::FindHistogram(
    std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<MetricsRegistry::Entry> MetricsRegistry::Entries() const {
  std::vector<Entry> out;
  out.reserve(size());
  for (const auto& [name, counter] : counters_) {
    out.push_back(Entry{name, &counter, nullptr, nullptr});
  }
  for (const auto& [name, gauge] : gauges_) {
    out.push_back(Entry{name, nullptr, &gauge, nullptr});
  }
  for (const auto& [name, histogram] : histograms_) {
    out.push_back(Entry{name, nullptr, nullptr, &histogram});
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.name < b.name; });
  return out;
}

}  // namespace obs
}  // namespace flexos
