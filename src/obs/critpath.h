// flexpath (DESIGN.md §15): cross-vCPU critical-path reconstruction over the
// deterministic trace stream + Attributor request records, a per-boundary
// what-if engine, and the data contract for the boundary-placement advisor.
//
// Offline analysis only: Build() consumes a finished run's Attributor,
// MetricsRegistry, and trace snapshot and never touches a clock — enabling
// it charges zero modeled cycles (hard-gated by bench/abl_obs_overhead.cc,
// variant 5).
//
// The model: requests in this simulator execute on one bound thread, so each
// request's causal DAG — activation spans chained by queue-wait edges
// (EnqueueReady -> switch-in), gate Enter/Exit frames nested inside them,
// and cross-vCPU IPI edges (vm-rpc notify) — degenerates to a single causal
// chain, and the critical path IS the request timeline. That makes the
// decomposition exact rather than heuristic:
//
//   wall = execute(body) + gate + queue_wait + slack
//
// where gate splits per boundary (and an IPI share is carved out of vm-rpc
// boundaries for display), execute = attributed execute cycles minus gate
// cycles, queue_wait comes from the deschedule stamps, and slack is the
// wall-clock remainder the request spent blocked on something other than
// the CPU (e.g. virtual socket waits). Per-boundary gate nanoseconds
// reconcile EXACTLY (==) against the gate.latency_ns.* histogram sums
// because both sides record the same per-crossing overhead_ns value — the
// Attributor's conservation invariant extended to the path decomposition.
//
// The what-if engine exploits that every crossing of a boundary costs the
// same modeled overhead: replacing the boundary's backend replaces
// crossings * per-crossing-cost, so
//
//   whatif_total(b, c') = total - gate_ns(b) + crossings(b) * ns(c')
//
// with c' predicted by core/gate_costs.h (PredictedCrossingCycles mirrors
// the gate implementations' charge sequences exactly). flexstat ranks these
// deltas into the promote/demote advisor; the ROADMAP's runtime-adaptive
// policy engine consumes the same BoundaryShare rows as its input contract.
//
// Layering: obs sits below hw/, so this header cannot name Clock or
// CostModel — callers pass a cycles->ns conversion and the modeled IPI cost
// as plain values.
//
// Compile-time stub parity: with -DFLEXOS_OBS_DISABLED CriticalPath is an
// all-inline no-op in the obs_disabled inline namespace (the trace.h
// pattern); the path/share structs are shared plain data either way.
#ifndef FLEXOS_OBS_CRITPATH_H_
#define FLEXOS_OBS_CRITPATH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/attrib.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace flexos {
namespace obs {

inline constexpr std::string_view kCritpathSchema = "flexos-critpath-v1";

// --- Shared plain data (valid in disabled builds too) ---------------------

enum class SegmentKind : uint8_t {
  kExecute = 0,    // Compartment body cycles (gate halves excluded).
  kGate = 1,       // Modeled gate overhead, one segment per boundary.
  kQueueWait = 2,  // Ready but descheduled (EnqueueReady -> switch-in).
  kIpi = 3,        // Cross-vCPU notify cost, carved out of vm-rpc gates.
};

std::string_view SegmentKindName(SegmentKind kind);

struct PathSegment {
  SegmentKind kind = SegmentKind::kExecute;
  // Full gate.latency_ns.<backend>.<from>.<to> name for kGate; empty
  // otherwise.
  std::string boundary;
  uint64_t ns = 0;
  uint64_t count = 0;  // Crossings / IPIs / 1 for execute & wait.
};

// One request's critical-path decomposition. Segment nanoseconds sum to
// execute_ns + gate_ns + queue_wait_ns (the IPI segment is carved out of
// gate segments, never added on top); wall_ns additionally includes
// slack_ns.
struct RequestPath {
  uint64_t id = 0;  // kUnattributedRequestId for out-of-request crossings.
  std::string name;
  uint64_t wall_ns = 0;
  uint64_t execute_ns = 0;     // Body only (gate cycles subtracted).
  uint64_t gate_ns = 0;        // Sum over boundary_gate_ns.
  uint64_t queue_wait_ns = 0;
  uint64_t ipi_ns = 0;         // Informational share of gate_ns.
  uint64_t slack_ns = 0;       // wall - execute - gate - wait, clamped.
  uint64_t crossings = 0;
  std::vector<PathSegment> segments;
  std::vector<int> vcpus;  // Distinct vCPUs the request's gates ran on.
};

// Aggregated per-boundary critical-path share — the advisor's (and the
// future policy engine's) input row.
struct BoundaryShare {
  std::string boundary;  // Full gate.latency_ns.<backend>.<from>.<to> name.
  std::string backend;
  std::string from;
  std::string to;
  uint64_t crossings = 0;           // gate.latency_ns histogram count.
  uint64_t gate_ns = 0;             // gate.latency_ns histogram sum.
  uint64_t path_gate_ns = 0;        // Sum over ALL request records (== gate_ns
                                    // when reconciled).
  uint64_t unattributed_gate_ns = 0;  // Portion charged to record id 0.
  double critpath_share = 0;        // gate_ns / total_path_ns.
};

#ifndef FLEXOS_OBS_DISABLED

inline namespace obs_enabled {

class CriticalPath {
 public:
  using CyclesToNs = std::function<uint64_t(uint64_t)>;

  CriticalPath() = default;
  CriticalPath(const CriticalPath&) = delete;
  CriticalPath& operator=(const CriticalPath&) = delete;

  // Rebuilds the analysis from a finished run. Callers must have synced the
  // attributor first (Machine::SyncAttribution) so the conservation
  // invariant holds at read time. `cycles_to_ns` is the machine clock's
  // exact CyclesToNanos; `ipi_cycles` is CostModel::ipi (used to size the
  // IPI carve-out of vm-rpc gate segments).
  void Build(const Attributor& attrib, const MetricsRegistry& metrics,
             const std::vector<TraceEvent>& events, CyclesToNs cycles_to_ns,
             uint64_t ipi_cycles);

  // Requests sorted by id; the unattributed record (id 0) appears first iff
  // any crossing charged it.
  const std::vector<RequestPath>& requests() const { return requests_; }

  // Boundaries sorted by metric name.
  const std::vector<BoundaryShare>& boundaries() const { return boundaries_; }

  // Denominator of critpath_share: closed requests' wall time plus gate
  // overhead that ran outside any request.
  uint64_t total_path_ns() const { return total_path_ns_; }

  // Exact (==) reconciliation of the path decomposition against the
  // gate.latency_ns.* histograms: per-boundary path_gate_ns == histogram
  // sum, and total path crossings == total histogram count. detail() is
  // "ok" or the first mismatch, human-readable.
  bool reconciled() const { return reconciled_; }
  const std::string& reconcile_detail() const { return reconcile_detail_; }

  // Predicted end-to-end path nanoseconds if `boundary` cost
  // `new_cycles_per_crossing` per crossing instead (every crossing of one
  // boundary costs the same modeled overhead, so the replay is exact
  // arithmetic). Returns total_path_ns() for an unknown boundary.
  uint64_t WhatIfTotalNs(std::string_view boundary,
                         uint64_t new_cycles_per_crossing) const;

  // Exact metric name, or a ".<from>.<to>" / "<backend>.<from>.<to>"
  // suffix ("c0.c1" names the c0->c1 boundary). nullptr when absent or
  // ambiguous.
  const BoundaryShare* FindBoundary(std::string_view name) const;

  // Global scheduler edge counts recovered from the trace stream.
  uint64_t queue_edges() const { return queue_edges_; }
  uint64_t steals() const { return steals_; }
  uint64_t ipis() const { return ipis_; }

  // flexos-critpath-v1: deterministic (same seed -> byte-identical; shares
  // printed %.6f, everything else exact integers).
  std::string ToJson() const;

 private:
  std::vector<RequestPath> requests_;
  std::vector<BoundaryShare> boundaries_;
  uint64_t total_path_ns_ = 0;
  bool reconciled_ = true;
  std::string reconcile_detail_ = "ok";
  uint64_t queue_edges_ = 0;
  uint64_t steals_ = 0;
  uint64_t ipis_ = 0;
  CyclesToNs cycles_to_ns_;
};

}  // inline namespace obs_enabled

#else  // FLEXOS_OBS_DISABLED

inline namespace obs_disabled {

// Zero-cost stub: same surface, every member inline and empty.
class CriticalPath {
 public:
  using CyclesToNs = std::function<uint64_t(uint64_t)>;

  CriticalPath() = default;
  CriticalPath(const CriticalPath&) = delete;
  CriticalPath& operator=(const CriticalPath&) = delete;

  void Build(const Attributor&, const MetricsRegistry&,
             const std::vector<TraceEvent>&, CyclesToNs, uint64_t) {}
  const std::vector<RequestPath>& requests() const {
    static const std::vector<RequestPath> kEmpty;
    return kEmpty;
  }
  const std::vector<BoundaryShare>& boundaries() const {
    static const std::vector<BoundaryShare> kEmpty;
    return kEmpty;
  }
  static constexpr uint64_t total_path_ns() { return 0; }
  static constexpr bool reconciled() { return true; }
  const std::string& reconcile_detail() const {
    static const std::string kOk = "ok";
    return kOk;
  }
  static constexpr uint64_t WhatIfTotalNs(std::string_view, uint64_t) {
    return 0;
  }
  const BoundaryShare* FindBoundary(std::string_view) const {
    return nullptr;
  }
  static constexpr uint64_t queue_edges() { return 0; }
  static constexpr uint64_t steals() { return 0; }
  static constexpr uint64_t ipis() { return 0; }
  std::string ToJson() const { return "{}"; }
};

}  // inline namespace obs_disabled

#endif  // FLEXOS_OBS_DISABLED

}  // namespace obs
}  // namespace flexos

#endif  // FLEXOS_OBS_CRITPATH_H_
