#include "obs/race.h"

#include <cstdio>

namespace flexos {
namespace obs {

namespace {

const char* AccessWord(bool write) { return write ? "write" : "read"; }

}  // namespace

std::string RaceReport::ToString() const {
  // snprintf, not support/strings.h: the obs layer sits below support.
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "data race on shared gaddr=0x%llx (%llu bytes): %s by comp%d on "
      "vCPU%d @%lluns is unordered with %s by comp%d on vCPU%d @%lluns",
      static_cast<unsigned long long>(addr),
      static_cast<unsigned long long>(size), AccessWord(cur.write),
      cur.compartment, cur.vcpu,
      static_cast<unsigned long long>(cur.ts_ns), AccessWord(prev.write),
      prev.compartment, prev.vcpu,
      static_cast<unsigned long long>(prev.ts_ns));
  return buf;
}

void RaceDetector::Reset(int vcpus) {
  if (vcpus < 1) vcpus = 1;
  if (vcpus > kMaxVCpus) vcpus = kMaxVCpus;
  vcpus_ = vcpus;
  for (VectorClock& clock : clocks_) clock.fill(0);
  // Lane epochs start at 1 so epoch 0 can mean "no recorded access".
  for (int v = 0; v < kMaxVCpus; ++v) clocks_[v][v] = 1;
  shadow_.clear();
  released_.clear();
  next_handle_ = 1;
  races_found_ = 0;
  accesses_checked_ = 0;
  hb_edges_ = 0;
  last_race_.reset();
}

uint64_t RaceDetector::Release(int vcpu) {
  if (!enabled_ || vcpu < 0 || vcpu >= vcpus_) return 0;
  const uint64_t handle = next_handle_++;
  released_[handle] = clocks_[vcpu];
  // Tick past the snapshot: accesses after the release are not covered by
  // this edge.
  ++clocks_[vcpu][vcpu];
  ++hb_edges_;
  return handle;
}

void RaceDetector::Acquire(int vcpu, uint64_t handle) {
  if (!enabled_ || handle == 0 || vcpu < 0 || vcpu >= vcpus_) return;
  const auto it = released_.find(handle);
  if (it == released_.end()) return;
  VectorClock& mine = clocks_[vcpu];
  for (int v = 0; v < kMaxVCpus; ++v) {
    if (it->second[v] > mine[v]) mine[v] = it->second[v];
  }
  released_.erase(it);
}

void RaceDetector::Join(int from, int to) {
  if (!enabled_ || from == to || from < 0 || to < 0 || from >= vcpus_ ||
      to >= vcpus_) {
    return;
  }
  VectorClock& dst = clocks_[to];
  for (int v = 0; v < kMaxVCpus; ++v) {
    if (clocks_[from][v] > dst[v]) dst[v] = clocks_[from][v];
  }
  ++clocks_[from][from];
  ++hb_edges_;
}

void RaceDetector::JoinAll() {
  if (!enabled_) return;
  VectorClock merged{};
  for (int v = 0; v < vcpus_; ++v) {
    for (int u = 0; u < kMaxVCpus; ++u) {
      if (clocks_[v][u] > merged[u]) merged[u] = clocks_[v][u];
    }
  }
  for (int v = 0; v < vcpus_; ++v) {
    clocks_[v] = merged;
    ++clocks_[v][v];
  }
  ++hb_edges_;
}

std::optional<RaceReport> RaceDetector::OnAccess(int vcpu, int compartment,
                                                uint64_t addr, uint64_t size,
                                                bool is_write,
                                                uint64_t ts_ns) {
  if (!enabled_ || size == 0 || vcpu < 0 || vcpu >= vcpus_) {
    return std::nullopt;
  }
  ++accesses_checked_;
  RaceAccess cur;
  cur.vcpu = vcpu;
  cur.compartment = compartment;
  cur.epoch = clocks_[vcpu][vcpu];
  cur.ts_ns = ts_ns;
  cur.write = is_write;

  std::optional<RaceReport> found;
  const uint64_t first = addr / kRaceGranule;
  const uint64_t last = (addr + size - 1) / kRaceGranule;
  for (uint64_t granule = first; granule <= last; ++granule) {
    Shadow& shadow = shadow_[granule];
    const RaceAccess& write = shadow.write;
    if (!found.has_value() && write.epoch != 0 && write.vcpu != vcpu &&
        !Ordered(vcpu, write)) {
      found = RaceReport{addr, size, write, cur};
    }
    if (is_write) {
      if (!found.has_value()) {
        for (int v = 0; v < vcpus_; ++v) {
          const RaceAccess& read = shadow.reads[v];
          if (read.epoch != 0 && v != vcpu && !Ordered(vcpu, read)) {
            found = RaceReport{addr, size, read, cur};
            break;
          }
        }
      }
      shadow.write = cur;
      shadow.reads.fill(RaceAccess{});
    } else {
      shadow.reads[vcpu] = cur;
    }
  }
  if (found.has_value()) {
    ++races_found_;
    last_race_ = found;
  }
  return found;
}

}  // namespace obs
}  // namespace flexos
