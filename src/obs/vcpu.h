// The compile-time cap on simulated vCPUs, shared by the hw layer (per-vCPU
// clocks and execution contexts), the scheduler (per-vCPU run queues), and
// the obs layer (per-vCPU boundary counters and attribution lanes). It
// lives here — the bottom of the layering — because obs cannot include hw
// headers; hw/machine.h re-exports it as flexos::kMaxVCpus.
#ifndef FLEXOS_OBS_VCPU_H_
#define FLEXOS_OBS_VCPU_H_

namespace flexos {
namespace obs {

inline constexpr int kMaxVCpus = 8;

}  // namespace obs
}  // namespace flexos

#endif  // FLEXOS_OBS_VCPU_H_
