#ifndef FLEXOS_OBS_DISABLED

#include "obs/attrib.h"

#include "obs/names.h"

namespace flexos {
namespace obs {
inline namespace obs_enabled {

Attributor::Attributor() {
  ThreadState& platform = states_[0];
  platform.tid = 0;
  platform.path = "platform";
  platform.active_once = true;
  active_ = &platform;
}

void Attributor::SetEnabled(bool on, uint64_t now_cycles) {
  if (on == enabled_) {
    return;
  }
  if (on) {
    last_cycles_ = now_cycles;
    enabled_ = true;
  } else {
    Charge(now_cycles);
    enabled_ = false;
  }
}

void Attributor::Charge(uint64_t now_cycles) {
  if (!enabled_ || now_cycles <= last_cycles_) {
    return;
  }
  const uint64_t delta = now_cycles - last_cycles_;
  last_cycles_ = now_cycles;
  attributed_cycles_ += delta;
  flame_[active_->path] += delta;
  const Frame* top = active_->frames.empty() ? nullptr : &active_->frames.back();
  const bool in_gate = top != nullptr && top->gate;
  // Lib frames charge their compartment; an empty stack charges the thread's
  // ambient context (platform, comp -1) so cycles are never dropped.
  const int comp = (top != nullptr && !in_gate) ? top->comp : -1;
  if (in_gate) {
    backend_cycles_[top->label.substr(5)] += delta;  // strip "gate:"
  } else {
    comp_cycles_[comp] += delta;
  }
  if (active_->request != 0) {
    RequestRecord& rec = RecordFor(active_->request);
    rec.execute_cycles += delta;
    if (in_gate) {
      rec.gate_cycles += delta;
    } else {
      rec.comp_cycles[comp] += delta;
    }
  }
}

RequestRecord& Attributor::RecordFor(uint64_t id) {
  RequestRecord& rec = requests_[id];
  if (rec.id == 0 && id == kUnattributedRequestId && rec.name.empty()) {
    rec.name = "unattributed";
  }
  rec.id = id;
  return rec;
}

void Attributor::ActivateThread(uint64_t tid, std::string_view name,
                                uint64_t now_cycles) {
  if (!enabled_) {
    return;
  }
  Charge(now_cycles);
  if (active_->tid == tid) {
    return;
  }
  active_->deactivated_at = now_cycles;
  auto [it, inserted] = states_.try_emplace(tid);
  ThreadState& state = it->second;
  if (inserted || !state.active_once) {
    state.tid = tid;
    state.path = name.empty() ? "t" + std::to_string(tid) : std::string(name);
    state.active_once = true;
  }
  // Time spent descheduled while a request was bound counts as queue wait.
  if (state.request != 0 && state.deactivated_at != 0 &&
      now_cycles > state.deactivated_at) {
    RecordFor(state.request).queue_wait_cycles +=
        now_cycles - state.deactivated_at;
  }
  state.deactivated_at = 0;
  active_ = &state;
}

void Attributor::PushFrame(std::string_view lib, int comp,
                           uint64_t now_cycles) {
  if (!enabled_) {
    return;
  }
  Charge(now_cycles);
  Frame frame;
  frame.label = std::string(lib);
  frame.comp = comp;
  frame.gate = false;
  frame.prev_path_len = static_cast<uint32_t>(active_->path.size());
  active_->path += ';';
  active_->path += frame.label;
  active_->frames.push_back(std::move(frame));
}

void Attributor::PushGateFrame(std::string_view backend, uint64_t now_cycles) {
  if (!enabled_) {
    return;
  }
  Charge(now_cycles);
  Frame frame;
  frame.label = "gate:";
  frame.label += backend;
  frame.gate = true;
  frame.prev_path_len = static_cast<uint32_t>(active_->path.size());
  active_->path += ';';
  active_->path += frame.label;
  active_->frames.push_back(std::move(frame));
}

void Attributor::PopFrame(uint64_t now_cycles) {
  if (!enabled_) {
    return;
  }
  Charge(now_cycles);
  if (active_->frames.empty()) {
    return;  // Enabled mid-call: unmatched pop, ignore.
  }
  active_->path.resize(active_->frames.back().prev_path_len);
  active_->frames.pop_back();
}

size_t Attributor::frame_depth() const {
  if (!enabled_ || active_ == nullptr) {
    return 0;
  }
  return active_->frames.size();
}

void Attributor::UnwindFramesTo(size_t depth, uint64_t now_cycles) {
  if (!enabled_ || active_ == nullptr) {
    return;
  }
  while (active_->frames.size() > depth) {
    PopFrame(now_cycles);
  }
}

TraceContext Attributor::BeginRequest(std::string_view name,
                                      uint64_t now_cycles, uint64_t now_ns) {
  if (!enabled_) {
    return TraceContext{};
  }
  Charge(now_cycles);
  const uint64_t id = next_request_id_++;
  RequestRecord& rec = requests_[id];
  rec.id = id;
  rec.name = std::string(name);
  rec.start_ns = now_ns;
  rec.open = true;
  active_->request = id;
  return TraceContext{id, now_ns};
}

void Attributor::EndRequest(uint64_t id, uint64_t now_cycles,
                            uint64_t now_ns) {
  if (!enabled_ || id == 0) {
    return;
  }
  Charge(now_cycles);
  auto it = requests_.find(id);
  if (it == requests_.end() || !it->second.open) {
    return;
  }
  it->second.open = false;
  it->second.end_ns = now_ns;
  for (auto& [tid, state] : states_) {
    if (state.request == id) {
      state.request = 0;
    }
  }
}

uint64_t Attributor::current_request() const {
  return active_ == nullptr ? 0 : active_->request;
}

void Attributor::OnGateCrossing(std::string_view backend, int from_comp,
                                int to_comp, uint64_t overhead_ns) {
  if (!enabled_) {
    return;
  }
  RequestRecord& rec = RecordFor(active_->request);
  rec.crossings += 1;
  rec.boundary_gate_ns[GateMetricName("latency_ns", backend, from_comp,
                                      to_comp)] += overhead_ns;
}

void Attributor::Sync(uint64_t now_cycles) { Charge(now_cycles); }

std::vector<FlameEntry> Attributor::Flame() const {
  std::vector<FlameEntry> out;
  out.reserve(flame_.size());
  for (const auto& [stack, cycles] : flame_) {
    out.push_back(FlameEntry{stack, cycles});
  }
  return out;
}

std::string Attributor::CollapsedStacks() const {
  std::string out;
  for (const auto& [stack, cycles] : flame_) {
    out += stack;
    out += ' ';
    out += std::to_string(cycles);
    out += '\n';
  }
  return out;
}

std::vector<const RequestRecord*> Attributor::Requests() const {
  std::vector<const RequestRecord*> out;
  out.reserve(requests_.size());
  for (const auto& [id, rec] : requests_) {
    out.push_back(&rec);
  }
  return out;
}

const RequestRecord* Attributor::FindRequest(uint64_t id) const {
  auto it = requests_.find(id);
  return it == requests_.end() ? nullptr : &it->second;
}

void Attributor::Reset(uint64_t now_cycles) {
  flame_.clear();
  comp_cycles_.clear();
  backend_cycles_.clear();
  requests_.clear();
  next_request_id_ = 1;
  attributed_cycles_ = 0;
  states_.clear();
  ThreadState& platform = states_[0];
  platform.tid = 0;
  platform.path = "platform";
  platform.active_once = true;
  active_ = &platform;
  last_cycles_ = now_cycles;
}

}  // namespace obs_enabled
}  // namespace obs
}  // namespace flexos

#endif  // FLEXOS_OBS_DISABLED
