#ifndef FLEXOS_OBS_DISABLED

#include "obs/attrib.h"

#include "obs/names.h"

namespace flexos {
namespace obs {
inline namespace obs_enabled {

Attributor::Attributor() {
  ThreadState& platform = states_[0];
  platform.tid = 0;
  platform.path = "platform";
  platform.active_once = true;
  for (Lane& lane : lanes_) lane.active = &platform;
}

void Attributor::SetEnabled(bool on, uint64_t now_cycles) {
  if (on == enabled_) {
    return;
  }
  if (on) {
    // Anchor the current lane at now; the others anchor lazily on first
    // switch-in so their epochs start on their own clocks.
    for (Lane& lane : lanes_) lane.anchored = false;
    lanes_[current_lane_].last_cycles = now_cycles;
    lanes_[current_lane_].anchored = true;
    enabled_ = true;
  } else {
    Charge(now_cycles);
    enabled_ = false;
  }
}

void Attributor::ChargeLane(Lane& lane, uint64_t now_cycles) {
  if (!enabled_ || !lane.anchored || now_cycles <= lane.last_cycles) {
    return;
  }
  const uint64_t delta = now_cycles - lane.last_cycles;
  lane.last_cycles = now_cycles;
  lane.attributed += delta;
  attributed_cycles_ += delta;
  ThreadState& active = *lane.active;
  flame_[active.path] += delta;
  const Frame* top = active.frames.empty() ? nullptr : &active.frames.back();
  const bool in_gate = top != nullptr && top->gate;
  // Lib frames charge their compartment; an empty stack charges the thread's
  // ambient context (platform, comp -1) so cycles are never dropped.
  const int comp = (top != nullptr && !in_gate) ? top->comp : -1;
  if (in_gate) {
    backend_cycles_[top->label.substr(5)] += delta;  // strip "gate:"
  } else {
    comp_cycles_[comp] += delta;
  }
  if (active.request != 0) {
    RequestRecord& rec = RecordFor(active.request);
    rec.execute_cycles += delta;
    if (in_gate) {
      rec.gate_cycles += delta;
    } else {
      rec.comp_cycles[comp] += delta;
    }
  }
}

void Attributor::SwitchLane(int lane, uint64_t old_lane_now_cycles,
                            uint64_t new_lane_now_cycles) {
  if (lane == current_lane_ || lane < 0 || lane >= kMaxVCpus) {
    return;
  }
  if (enabled_) {
    ChargeLane(lanes_[current_lane_], old_lane_now_cycles);
  }
  current_lane_ = lane;
  Lane& next = lanes_[lane];
  if (enabled_ && !next.anchored) {
    next.last_cycles = new_lane_now_cycles;
    next.anchored = true;
  }
  // An already-anchored lane keeps its old epoch: the gap since we left it
  // (idle skips via AdvanceAllClocksTo) is charged to its active state —
  // the platform run loop — at the next charge, so per-lane conservation
  // holds.
}

void Attributor::SyncLane(int lane, uint64_t now_cycles) {
  if (lane < 0 || lane >= kMaxVCpus) {
    return;
  }
  ChargeLane(lanes_[lane], now_cycles);
}

RequestRecord& Attributor::RecordFor(uint64_t id) {
  RequestRecord& rec = requests_[id];
  if (rec.id == 0 && id == kUnattributedRequestId && rec.name.empty()) {
    rec.name = "unattributed";
  }
  rec.id = id;
  return rec;
}

void Attributor::ActivateThread(uint64_t tid, std::string_view name,
                                uint64_t now_cycles) {
  if (!enabled_) {
    return;
  }
  Charge(now_cycles);
  Lane& lane = lanes_[current_lane_];
  if (lane.active->tid == tid) {
    return;
  }
  lane.active->deactivated_at = now_cycles;
  lane.active->deactivated_lane = current_lane_;
  auto [it, inserted] = states_.try_emplace(tid);
  ThreadState& state = it->second;
  if (inserted || !state.active_once) {
    state.tid = tid;
    state.path = name.empty() ? "t" + std::to_string(tid) : std::string(name);
    state.active_once = true;
  }
  // Time spent descheduled while a request was bound counts as queue wait —
  // but only when the deschedule stamp came from this lane's clock; stamps
  // from another vCPU are not comparable.
  if (state.request != 0 && state.deactivated_at != 0 &&
      state.deactivated_lane == current_lane_ &&
      now_cycles > state.deactivated_at) {
    RecordFor(state.request).queue_wait_cycles +=
        now_cycles - state.deactivated_at;
  }
  state.deactivated_at = 0;
  state.deactivated_lane = -1;
  lane.active = &state;
}

void Attributor::PushFrame(std::string_view lib, int comp,
                           uint64_t now_cycles) {
  if (!enabled_) {
    return;
  }
  Charge(now_cycles);
  ThreadState& active = ActiveState();
  Frame frame;
  frame.label = std::string(lib);
  frame.comp = comp;
  frame.gate = false;
  frame.prev_path_len = static_cast<uint32_t>(active.path.size());
  active.path += ';';
  active.path += frame.label;
  active.frames.push_back(std::move(frame));
}

void Attributor::PushGateFrame(std::string_view backend, uint64_t now_cycles) {
  if (!enabled_) {
    return;
  }
  Charge(now_cycles);
  ThreadState& active = ActiveState();
  Frame frame;
  frame.label = "gate:";
  frame.label += backend;
  frame.gate = true;
  frame.prev_path_len = static_cast<uint32_t>(active.path.size());
  active.path += ';';
  active.path += frame.label;
  active.frames.push_back(std::move(frame));
}

void Attributor::PopFrame(uint64_t now_cycles) {
  if (!enabled_) {
    return;
  }
  Charge(now_cycles);
  ThreadState& active = ActiveState();
  if (active.frames.empty()) {
    return;  // Enabled mid-call: unmatched pop, ignore.
  }
  active.path.resize(active.frames.back().prev_path_len);
  active.frames.pop_back();
}

size_t Attributor::frame_depth() const {
  if (!enabled_) {
    return 0;
  }
  return ActiveState().frames.size();
}

void Attributor::UnwindFramesTo(size_t depth, uint64_t now_cycles) {
  if (!enabled_) {
    return;
  }
  while (ActiveState().frames.size() > depth) {
    PopFrame(now_cycles);
  }
}

TraceContext Attributor::BeginRequest(std::string_view name,
                                      uint64_t now_cycles, uint64_t now_ns) {
  if (!enabled_) {
    return TraceContext{};
  }
  Charge(now_cycles);
  const uint64_t id = next_request_id_++;
  RequestRecord& rec = requests_[id];
  rec.id = id;
  rec.name = std::string(name);
  rec.start_ns = now_ns;
  rec.open = true;
  ActiveState().request = id;
  return TraceContext{id, now_ns};
}

void Attributor::EndRequest(uint64_t id, uint64_t now_cycles,
                            uint64_t now_ns) {
  if (!enabled_ || id == 0) {
    return;
  }
  Charge(now_cycles);
  auto it = requests_.find(id);
  if (it == requests_.end() || !it->second.open) {
    return;
  }
  it->second.open = false;
  it->second.end_ns = now_ns;
  for (auto& [tid, state] : states_) {
    if (state.request == id) {
      state.request = 0;
    }
  }
}

uint64_t Attributor::current_request() const {
  return ActiveState().request;
}

void Attributor::OnGateCrossing(std::string_view backend, int from_comp,
                                int to_comp, uint64_t overhead_ns) {
  if (!enabled_) {
    return;
  }
  RequestRecord& rec = RecordFor(ActiveState().request);
  rec.crossings += 1;
  rec.boundary_gate_ns[GateMetricName("latency_ns", backend, from_comp,
                                      to_comp)] += overhead_ns;
}

void Attributor::Sync(uint64_t now_cycles) { Charge(now_cycles); }

std::vector<FlameEntry> Attributor::Flame() const {
  std::vector<FlameEntry> out;
  out.reserve(flame_.size());
  for (const auto& [stack, cycles] : flame_) {
    out.push_back(FlameEntry{stack, cycles});
  }
  return out;
}

std::string Attributor::CollapsedStacks() const {
  std::string out;
  for (const auto& [stack, cycles] : flame_) {
    out += stack;
    out += ' ';
    out += std::to_string(cycles);
    out += '\n';
  }
  return out;
}

std::vector<const RequestRecord*> Attributor::Requests() const {
  std::vector<const RequestRecord*> out;
  out.reserve(requests_.size());
  for (const auto& [id, rec] : requests_) {
    out.push_back(&rec);
  }
  return out;
}

const RequestRecord* Attributor::FindRequest(uint64_t id) const {
  auto it = requests_.find(id);
  return it == requests_.end() ? nullptr : &it->second;
}

void Attributor::Reset(uint64_t now_cycles) {
  flame_.clear();
  comp_cycles_.clear();
  backend_cycles_.clear();
  requests_.clear();
  next_request_id_ = 1;
  attributed_cycles_ = 0;
  states_.clear();
  ThreadState& platform = states_[0];
  platform.tid = 0;
  platform.path = "platform";
  platform.active_once = true;
  for (Lane& lane : lanes_) {
    lane.active = &platform;
    lane.attributed = 0;
    lane.anchored = false;
  }
  lanes_[current_lane_].last_cycles = now_cycles;
  lanes_[current_lane_].anchored = true;
}

}  // namespace obs_enabled
}  // namespace obs
}  // namespace flexos

#endif  // FLEXOS_OBS_DISABLED
