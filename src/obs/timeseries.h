// flexwatch (DESIGN.md §14): windowed time-series telemetry over the
// MetricsRegistry, plus deterministic SLO watchdogs.
//
// The cumulative registry answers "what happened over the whole run"; this
// layer answers "what is happening *right now*" — the signal a runtime-
// adaptive isolation policy needs. A TimeSeries is owned by the Machine and
// driven purely by virtual time: every `window_cycles` of machine-wide
// progress it closes a window, capturing the per-window *delta* of every
// counter and a per-window copy of every histogram (so p50/p99 are
// per-interval, not lifetime-cumulative), into a fixed ring of the most
// recent windows.
//
// Cost story, same observe-never-charge contract as trace/attrib/race:
//   * Capture observes clocks and metrics; it never charges a cycle.
//     bench/abl_obs_overhead.cc hard-gates that modeled cycles are
//     bit-identical with windowing + watchdogs on vs off.
//   * Disabled (the default), MaybeCapture is one branch. Enabled, the
//     capture path is allocation-free in steady state: the ring and every
//     per-window vector are sized when the metric set is bound; a rebind
//     (re-sizing pass) happens only on the first window after new metrics
//     registered — amortized, like registration itself.
//   * Windows close at deterministic virtual-time boundaries (multiples of
//     window_cycles), so the same seed yields a byte-identical timeline at
//     any poll cadence. A poll that finds several boundaries passed (an
//     idle jump) closes ONE window spanning them — deltas are never lost,
//     and long sleeps cannot flush the ring with empty windows.
//
// SLO watchdogs are declared in configs ("slo <pattern> <stat> <op> <N>",
// parsed by core/config_parser) and evaluated at every window close, in
// declaration order, over that window's deltas. A violation bumps
// slo.violations.<name>, emits a cat=slo trace instant, and invokes an
// optional hook (the testbed wires it to the fault supervisor).
//
// Compile-time stub parity: with -DFLEXOS_OBS_DISABLED the TimeSeries is an
// all-inline no-op in the obs_disabled inline namespace (the trace.h
// pattern). SloSpec, its parser, and the snapshot types are plain shared
// data — config parsing and exporters keep working either way.
#ifndef FLEXOS_OBS_TIMESERIES_H_
#define FLEXOS_OBS_TIMESERIES_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flexos {
namespace obs {

// Default window when a config declares SLOs but no window_cycles: 1 ms of
// virtual time (converted by the clock that owns the timeseries).
inline constexpr uint64_t kDefaultWindowNs = 1'000'000;

// Matches '*' against any run of characters (any number of '*'s, anywhere).
bool GlobMatch(std::string_view pattern, std::string_view text);

// --- SLO specs (shared plain data; parsed even in disabled builds) --------

enum class SloStat : uint8_t {
  kP50,
  kP90,
  kP99,
  kMean,
  kMax,
  kCount,
  kSum,
  kValue,  // Counter window delta / gauge instantaneous value.
};

enum class SloOp : uint8_t { kLt, kLe, kGt, kGe };

std::string_view SloStatName(SloStat stat);
std::string_view SloOpName(SloOp op);

// One watchdog: "pattern stat op threshold". The SLO states the *good*
// condition (p99 < 4000); a window where the measured stat fails the
// comparison is a violation.
struct SloSpec {
  std::string pattern;  // Glob over metric names, e.g. "gate.latency_ns.*".
  SloStat stat = SloStat::kP99;
  SloOp op = SloOp::kLt;
  double threshold = 0;

  // Violation counter suffix: slo.violations.<name>. Defaults to
  // "<pattern>.<stat>" when empty.
  std::string name;

  std::string EffectiveName() const {
    return name.empty() ? pattern + "." + std::string(SloStatName(stat))
                        : name;
  }

  bool operator==(const SloSpec& other) const {
    return pattern == other.pattern && stat == other.stat &&
           op == other.op && threshold == other.threshold;
  }
};

// Parses "gate.latency_ns.mpk-shared.* p99 < 4000". Returns false with a
// human-readable reason in *error (no Status: obs sits below support/).
bool ParseSloSpec(std::string_view text, SloSpec* out, std::string* error);

// Round-trips through ParseSloSpec (config re-emission).
std::string SloSpecToString(const SloSpec& spec);

// --- Window snapshots (shared plain data) ---------------------------------

struct WindowCounterSample {
  std::string name;
  uint64_t delta = 0;  // Counter increase over this window.
};

struct WindowGaugeSample {
  std::string name;
  int64_t value = 0;  // Instantaneous value at window close.
};

struct WindowHistSample {
  std::string name;
  LatencyHistogram delta;  // Only this window's recordings.
};

// One closed window. Samples are name-sorted; zero-delta counters, zero
// gauges, and empty histograms are omitted (idle windows stay small).
struct WindowSnapshot {
  uint64_t seq = 0;  // 1-based capture sequence (survives ring wrap).
  uint64_t start_cycles = 0;
  uint64_t end_cycles = 0;
  std::vector<WindowCounterSample> counters;
  std::vector<WindowGaugeSample> gauges;
  std::vector<WindowHistSample> histograms;
};

// Passed to the violation hook at window close.
struct SloViolation {
  std::string slo_name;  // SloSpec::EffectiveName().
  std::string metric;    // The concrete metric that violated.
  uint64_t window_seq = 0;
  double measured = 0;
  double threshold = 0;
};

#ifndef FLEXOS_OBS_DISABLED

inline namespace obs_enabled {

class TimeSeries {
 public:
  static constexpr size_t kDefaultRingWindows = 64;

  TimeSeries() = default;
  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  // Wired by the Machine at construction (like FaultInjector::BindObs).
  void BindObs(MetricsRegistry* registry, Tracer* tracer) {
    registry_ = registry;
    tracer_ = tracer;
  }

  // Starts windowing: boundaries at multiples of `window_cycles`, ring of
  // the most recent `ring_windows` windows. Binds the current metric set
  // (metrics registered later are picked up by an amortized rebind at the
  // next window close). window_cycles == 0 leaves the series disabled.
  void Enable(uint64_t window_cycles,
              size_t ring_windows = kDefaultRingWindows);
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }
  uint64_t window_cycles() const { return window_cycles_; }

  // Installs a watchdog; resolves its slo.violations.<name> counter now so
  // window-close evaluation is allocation-free.
  void AddWatchdog(const SloSpec& spec);
  const std::vector<SloSpec>& watchdogs() const { return specs_; }

  // Called once per violation, after the counter bump and trace instant.
  void SetViolationHook(std::function<void(const SloViolation&)> hook) {
    hook_ = std::move(hook);
  }

  // Called once per closed window (after watchdog evaluation) with that
  // window's snapshot — the flexadapt policy engine's input feed. Metrics
  // the hook itself creates are picked up by the amortized rebind at the
  // next window close, like any other late registration.
  void SetWindowHook(std::function<void(const WindowSnapshot&)> hook) {
    window_hook_ = std::move(hook);
  }

  // Polled from deterministic points (scheduler loop, idle jumps, bench
  // loops). Closes one window when `now_cycles` has reached the next
  // boundary; a multi-boundary jump closes one window spanning it.
  void MaybeCapture(uint64_t now_cycles) {
    if (!enabled_ || now_cycles < next_close_) {
      return;
    }
    Capture(now_cycles);
  }

  // Closes the trailing partial window (end = now, not boundary-aligned)
  // so end-of-run totals cover the whole run. No-op if nothing elapsed.
  void FinalizeTail(uint64_t now_cycles);

  uint64_t windows_captured() const { return seq_; }
  uint64_t violations_total() const { return violations_total_; }

  // Retained windows, oldest first. Export-time (allocates).
  std::vector<WindowSnapshot> Snapshot() const;

 private:
  // The bound metric set, immutable per generation. Windows keep a
  // shared_ptr to the generation they were captured under, so a rebind
  // never invalidates retained windows.
  struct Binding {
    std::vector<std::string> counter_names;
    std::vector<const Counter*> counters;
    std::vector<std::string> gauge_names;
    std::vector<const Gauge*> gauges;
    std::vector<std::string> hist_names;
    std::vector<const LatencyHistogram*> hists;
    // Per watchdog: indexes (into the vectors above) of matching metrics.
    struct SloTargets {
      std::vector<size_t> counter_idx;
      std::vector<size_t> gauge_idx;
      std::vector<size_t> hist_idx;
    };
    std::vector<SloTargets> slo_targets;  // Parallel to specs_.
  };

  struct Window {
    uint64_t seq = 0;
    uint64_t start_cycles = 0;
    uint64_t end_cycles = 0;
    std::shared_ptr<const Binding> binding;
    std::vector<uint64_t> counter_deltas;
    std::vector<int64_t> gauge_values;
    std::vector<LatencyHistogram> hist_deltas;
  };

  void Rebind();
  void Capture(uint64_t now_cycles);
  WindowSnapshot MakeSnapshot(const Window& window) const;
  void EvaluateWatchdogs(const Window& window);
  void ReportViolation(const Window& window, size_t spec_idx,
                       const std::string& metric, double measured);

  MetricsRegistry* registry_ = nullptr;
  Tracer* tracer_ = nullptr;
  bool enabled_ = false;
  uint64_t window_cycles_ = 0;
  uint64_t next_close_ = 0;
  uint64_t last_close_ = 0;  // End of the previous window (= next start).
  uint64_t seq_ = 0;
  uint64_t violations_total_ = 0;

  std::shared_ptr<const Binding> binding_;
  size_t bound_metric_count_ = 0;  // registry_->size() at last (re)bind.
  // Cumulative values at the previous capture, parallel to binding_.
  std::vector<uint64_t> prev_counters_;
  std::vector<LatencyHistogram> prev_hists_;

  std::vector<Window> ring_;  // seq_ % ring_.size() indexes the ring.

  std::vector<SloSpec> specs_;
  std::vector<Counter*> violation_counters_;  // Parallel to specs_.
  std::function<void(const SloViolation&)> hook_;
  std::function<void(const WindowSnapshot&)> window_hook_;
};

}  // inline namespace obs_enabled

#else  // FLEXOS_OBS_DISABLED

inline namespace obs_disabled {

// Zero-cost stub: same surface, every member inline and empty, so poll
// sites and testbed wiring compile to nothing.
class TimeSeries {
 public:
  static constexpr size_t kDefaultRingWindows = 64;

  TimeSeries() = default;
  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  void BindObs(MetricsRegistry*, Tracer*) {}
  void Enable(uint64_t, size_t = kDefaultRingWindows) {}
  void Disable() {}
  bool enabled() const { return false; }
  uint64_t window_cycles() const { return 0; }
  void AddWatchdog(const SloSpec&) {}
  const std::vector<SloSpec>& watchdogs() const {
    static const std::vector<SloSpec> kEmpty;
    return kEmpty;
  }
  void SetViolationHook(std::function<void(const SloViolation&)>) {}
  void SetWindowHook(std::function<void(const WindowSnapshot&)>) {}
  void MaybeCapture(uint64_t) {}
  void FinalizeTail(uint64_t) {}
  uint64_t windows_captured() const { return 0; }
  uint64_t violations_total() const { return 0; }
  std::vector<WindowSnapshot> Snapshot() const { return {}; }
};

}  // inline namespace obs_disabled

#endif  // FLEXOS_OBS_DISABLED

}  // namespace obs
}  // namespace flexos

#endif  // FLEXOS_OBS_TIMESERIES_H_
