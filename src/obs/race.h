// flexrace runtime side (DESIGN.md §13): a FastTrack-style happens-before
// race detector over per-vCPU lanes. The simulated machine multiplexes
// guest threads onto N vCPUs through one host run loop, so within a vCPU
// every access is program-ordered; the only unordered pairs are accesses on
// *different* vCPU lanes with no happens-before edge between them. Edges
// come from the scheduler (enqueue -> activation as release/acquire pairs),
// cross-vCPU IPIs (direct joins), and machine-wide idle quiescence (a
// barrier join). Shared-region (key 0) reads and writes are probed by the
// checked access layer; an unsynchronized cross-vCPU write/write or
// write/read pair produces a RaceReport with both access stamps.
//
// In the mold of Image::EnableDispatchValidation, this is a debug-mode
// validator behind a runtime flag: it observes the model and never charges
// the clock, so enabling it leaves modeled cycles bit-identical
// (bench/abl_smp.cc gates this). Like TraceBuffer, the detector is plain
// data machinery and is not compiled out under FLEXOS_OBS_DISABLED — only
// the trace emission used for offline replay goes through the Tracer stub.
#ifndef FLEXOS_OBS_RACE_H_
#define FLEXOS_OBS_RACE_H_

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "obs/vcpu.h"

namespace flexos {
namespace obs {

// Shared-region accesses are tracked at this granularity (one cache line);
// two accesses to the same granule are treated as overlapping.
inline constexpr uint64_t kRaceGranule = 64;

// One side of a detected race: where, when, and under which compartment
// the access happened. `epoch` is the accessing vCPU's logical clock.
struct RaceAccess {
  int vcpu = 0;
  int compartment = -1;
  uint64_t epoch = 0;
  uint64_t ts_ns = 0;
  bool write = false;
};

struct RaceReport {
  uint64_t addr = 0;  // Guest address of the probed access (current side).
  uint64_t size = 0;
  RaceAccess prev;  // Earlier, unordered access.
  RaceAccess cur;   // The access that exposed the race.

  std::string ToString() const;
};

class RaceDetector {
 public:
  using VectorClock = std::array<uint64_t, kMaxVCpus>;

  // Drops all shadow/clock state and re-dimensions to `vcpus` lanes.
  void Reset(int vcpus);

  // Runtime knob; every probe checks this first. Enabling does not reset.
  void SetEnabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }
  int vcpus() const { return vcpus_; }

  // Message-passing edge, split in two: Release snapshots `vcpu`'s vector
  // clock and returns a handle; Acquire joins the snapshot into another
  // lane. The scheduler releases at enqueue/switch-out and acquires at
  // switch-in, so an edge carries only what happened *before* the wakeup,
  // not everything the waking lane did until the wakee ran.
  uint64_t Release(int vcpu);
  void Acquire(int vcpu, uint64_t handle);

  // Synchronous edge from `from`'s current clock into `to` (cross-vCPU IPI).
  void Join(int from, int to);

  // Machine-wide quiescent point: every lane joins every other. Models the
  // testbed idle sleep, where no vCPU has runnable work.
  void JoinAll();

  // Probes one shared-region access. Returns the first race found across
  // the covered granules (shadow state is updated regardless, so one bad
  // access does not cascade). Never charges the clock.
  std::optional<RaceReport> OnAccess(int vcpu, int compartment, uint64_t addr,
                                     uint64_t size, bool is_write,
                                     uint64_t ts_ns);

  uint64_t races_found() const { return races_found_; }
  uint64_t accesses_checked() const { return accesses_checked_; }
  uint64_t hb_edges() const { return hb_edges_; }
  const std::optional<RaceReport>& last_race() const { return last_race_; }

 private:
  // Per-granule shadow: the last write and the last read per vCPU lane.
  struct Shadow {
    RaceAccess write;                            // write.epoch == 0: none.
    std::array<RaceAccess, kMaxVCpus> reads{};   // reads[v].epoch == 0: none.
  };

  bool Ordered(int vcpu, const RaceAccess& prev) const {
    return prev.epoch <= clocks_[vcpu][prev.vcpu];
  }

  bool enabled_ = false;
  int vcpus_ = 1;
  std::array<VectorClock, kMaxVCpus> clocks_{};
  std::map<uint64_t, Shadow> shadow_;            // granule index -> state
  std::map<uint64_t, VectorClock> released_;     // handle -> snapshot
  uint64_t next_handle_ = 1;
  uint64_t races_found_ = 0;
  uint64_t accesses_checked_ = 0;
  uint64_t hb_edges_ = 0;
  std::optional<RaceReport> last_race_;
};

}  // namespace obs
}  // namespace flexos

#endif  // FLEXOS_OBS_RACE_H_
