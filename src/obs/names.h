// Metric naming convention (DESIGN.md §7). One scheme shared by the runtime
// instrumentation, flexstat's table renderer, and flexlint's --json output,
// so dashboards and lint can never disagree about what a boundary is called.
//
// Gate boundary metrics:
//   gate.crossings.<backend>.<from>.<to>   counter  entry/exit pairs
//   gate.batched.<backend>.<from>.<to>     counter  bodies inside batches
//   gate.bytes.<backend>.<from>.<to>       counter  marshalled bytes
//   gate.latency_ns.<backend>.<from>.<to>  histogram gate overhead / crossing
// where <backend> is the image's IsolationBackendName spelling, as used by
// configs (none, mpk-shared, mpk-switched, vm-rpc) and <from>/<to> are
// `c<id>` for
// compartments or `platform` for calls originating outside any compartment
// (SpawnApp's platform->app entry edge uses from_comp = -1).
#ifndef FLEXOS_OBS_NAMES_H_
#define FLEXOS_OBS_NAMES_H_

#include <string>
#include <string_view>

namespace flexos {
namespace obs {

// Well-known non-boundary metrics. Components and tests share these
// constants instead of scattering string literals.
inline constexpr std::string_view kMetricContextSwitches =
    "sched.context_switches";
inline constexpr std::string_view kMetricSchedSliceNs = "sched.run_slice_ns";
inline constexpr std::string_view kMetricSchedContractChecks =
    "sched.contract_checks";
inline constexpr std::string_view kMetricAllocCount = "alloc.allocations";
inline constexpr std::string_view kMetricFreeCount = "alloc.frees";
inline constexpr std::string_view kMetricAllocBytes = "alloc.bytes_allocated";
inline constexpr std::string_view kMetricAllocLive = "alloc.bytes_live";
inline constexpr std::string_view kMetricQuarantineBytes =
    "alloc.quarantine_bytes";
inline constexpr std::string_view kMetricFramesPolled = "net.frames_polled";
inline constexpr std::string_view kMetricParseErrors = "net.parse_errors";
inline constexpr std::string_view kMetricUnhandledFrames =
    "net.unhandled_frames";
inline constexpr std::string_view kMetricIcmpEchoes =
    "net.icmp_echoes_answered";
inline constexpr std::string_view kMetricTcpSegmentsRx = "net.tcp.segments_rx";
inline constexpr std::string_view kMetricTcpSegmentsTx = "net.tcp.segments_tx";
inline constexpr std::string_view kMetricTcpBytesRx = "net.tcp.bytes_rx";
inline constexpr std::string_view kMetricTcpBytesTx = "net.tcp.bytes_tx";
inline constexpr std::string_view kMetricTcpRetransmits =
    "net.tcp.retransmits";
inline constexpr std::string_view kMetricTcpOooDrops =
    "net.tcp.out_of_order_drops";
inline constexpr std::string_view kMetricTcpConnsAccepted =
    "net.tcp.conns_accepted";
inline constexpr std::string_view kMetricTcpResets = "net.tcp.resets";
inline constexpr std::string_view kMetricFaultInjected = "fault.injected";
inline constexpr std::string_view kMetricFaultDropped = "fault.dropped";
inline constexpr std::string_view kMetricFaultTrapped = "fault.trapped";
inline constexpr std::string_view kMetricFaultRestarts = "fault.restarts";
inline constexpr std::string_view kMetricFaultQuarantined =
    "fault.quarantined";
inline constexpr std::string_view kMetricFaultSloNotices =
    "fault.slo_notices";

// flexadapt policy-engine counters (DESIGN.md §16).
inline constexpr std::string_view kMetricAdaptPromotions =
    "adapt.promotions";
inline constexpr std::string_view kMetricAdaptDemotions = "adapt.demotions";
inline constexpr std::string_view kMetricAdaptVetoes = "adapt.vetoes";
inline constexpr std::string_view kMetricAdaptFlaps = "adapt.flaps";

// The four per-boundary metric families, in the order flexstat prints them.
inline constexpr std::string_view kGateFamilies[] = {
    "crossings", "batched", "bytes", "latency_ns"};

// Per-vCPU scheduler/utilization metrics (flexwatch, DESIGN.md §14):
//   sched.vcpu<N>.busy_cycles   counter  cycles inside run slices
//   sched.vcpu<N>.idle_cycles   counter  cycles jumped over while idle
//   sched.vcpu<N>.steals        counter  threads this vCPU stole
//   sched.vcpu<N>.queue_depth   gauge    ready-queue depth at last dispatch
inline constexpr std::string_view kVCpuBusyCycles = "busy_cycles";
inline constexpr std::string_view kVCpuIdleCycles = "idle_cycles";
inline constexpr std::string_view kVCpuSteals = "steals";
inline constexpr std::string_view kVCpuQueueDepth = "queue_depth";

// slo.violations.<name> counters bumped by flexwatch watchdogs.
inline constexpr std::string_view kMetricSloViolationsPrefix =
    "slo.violations.";

// sched.vcpu<N>.<family>
std::string SchedVCpuMetricName(int vcpu, std::string_view family);

// "c3", or "platform" for compartment id < 0.
std::string CompartmentLabel(int comp);

// gate.<family>.<backend>.<from>.<to>
std::string GateMetricName(std::string_view family, std::string_view backend,
                           int from_comp, int to_comp);

// Parsed form of a gate boundary metric name.
struct GateMetricParts {
  std::string_view family;   // crossings | batched | bytes | latency_ns
  std::string_view backend;  // direct | mpk-shared | ...
  std::string_view from;     // "c0" | "platform"
  std::string_view to;
};

// Splits a "gate.<family>.<backend>.<from>.<to>" name; returns false for
// anything else. Views point into `name`.
bool ParseGateMetricName(std::string_view name, GateMetricParts* out);

}  // namespace obs
}  // namespace flexos

#endif  // FLEXOS_OBS_NAMES_H_
