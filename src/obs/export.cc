#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace flexos {
namespace obs {

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

const char* CategoryName(TraceCat cat) {
  switch (cat) {
    case TraceCat::kGate:
      return "gate";
    case TraceCat::kSched:
      return "sched";
    case TraceCat::kAlloc:
      return "alloc";
    case TraceCat::kNet:
      return "net";
    case TraceCat::kLog:
      return "log";
    case TraceCat::kFault:
      return "fault";
    case TraceCat::kRace:
      return "race";
  }
  return "other";
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsToJson(const MetricsRegistry& registry) {
  std::string counters;
  std::string gauges;
  std::string histograms;
  for (const MetricsRegistry::Entry& entry : registry.Entries()) {
    if (entry.counter != nullptr) {
      if (!counters.empty()) {
        counters += ',';
      }
      counters += '"';
      counters += JsonEscape(entry.name);
      counters += "\":";
      AppendU64(&counters, entry.counter->value());
    } else if (entry.gauge != nullptr) {
      if (!gauges.empty()) {
        gauges += ',';
      }
      gauges += '"';
      gauges += JsonEscape(entry.name);
      gauges += "\":";
      AppendI64(&gauges, entry.gauge->value());
    } else if (entry.histogram != nullptr) {
      if (!histograms.empty()) {
        histograms += ',';
      }
      const LatencyHistogram& h = *entry.histogram;
      histograms += '"';
      histograms += JsonEscape(entry.name);
      histograms += "\":{\"count\":";
      AppendU64(&histograms, h.count());
      histograms += ",\"sum\":";
      AppendU64(&histograms, h.sum());
      histograms += ",\"min\":";
      AppendU64(&histograms, h.min());
      histograms += ",\"max\":";
      AppendU64(&histograms, h.max());
      histograms += ",\"mean\":";
      AppendDouble(&histograms, h.Mean());
      histograms += ",\"p50\":";
      AppendU64(&histograms, h.Percentile(50));
      histograms += ",\"p90\":";
      AppendU64(&histograms, h.Percentile(90));
      histograms += ",\"p99\":";
      AppendU64(&histograms, h.Percentile(99));
      histograms += ",\"overflow\":";
      AppendU64(&histograms, h.overflow());
      histograms += '}';
    }
  }
  std::string out = "{\"counters\":{";
  out += counters;
  out += "},\"gauges\":{";
  out += gauges;
  out += "},\"histograms\":{";
  out += histograms;
  out += "}}";
  return out;
}

std::string TraceToChromeJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(event.name != nullptr ? event.name : "event");
    out += "\",\"cat\":\"";
    out += CategoryName(event.cat);
    out += "\",\"ph\":\"";
    out += event.phase == TracePhase::kComplete ? 'X' : 'i';
    out += "\",\"pid\":1,\"tid\":";
    AppendI64(&out, event.tid);
    out += ",\"ts\":";
    AppendDouble(&out, static_cast<double>(event.ts_ns) / 1000.0);
    if (event.phase == TracePhase::kComplete) {
      out += ",\"dur\":";
      AppendDouble(&out, static_cast<double>(event.dur_ns) / 1000.0);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"args\":{\"a0\":";
    AppendU64(&out, event.a0);
    out += ",\"a1\":";
    AppendU64(&out, event.a1);
    if (event.req != 0) {
      out += ",\"req\":";
      AppendU64(&out, event.req);
    }
    // Omitted at vCPU 0 so single-vCPU traces stay byte-identical to
    // pre-multi-vCPU exports.
    if (event.vcpu != 0) {
      out += ",\"vcpu\":";
      AppendU64(&out, event.vcpu);
    }
    if (event.text[0] != '\0') {
      out += ",\"msg\":\"";
      out += JsonEscape(event.text);
      out += '"';
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace flexos
