#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

#include "obs/json.h"

namespace flexos {
namespace obs {

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

const char* CategoryName(TraceCat cat) {
  switch (cat) {
    case TraceCat::kGate:
      return "gate";
    case TraceCat::kSched:
      return "sched";
    case TraceCat::kAlloc:
      return "alloc";
    case TraceCat::kNet:
      return "net";
    case TraceCat::kLog:
      return "log";
    case TraceCat::kFault:
      return "fault";
    case TraceCat::kRace:
      return "race";
    case TraceCat::kSlo:
      return "slo";
    case TraceCat::kAdapt:
      return "adapt";
  }
  return "other";
}

// Prometheus metric names allow only [a-zA-Z0-9_:].
std::string PromName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

void AppendHistBody(std::string* out, const LatencyHistogram& h) {
  *out += "{\"count\":";
  AppendU64(out, h.count());
  *out += ",\"sum\":";
  AppendU64(out, h.sum());
  *out += ",\"min\":";
  AppendU64(out, h.min());
  *out += ",\"max\":";
  AppendU64(out, h.max());
  *out += ",\"mean\":";
  AppendDouble(out, h.Mean());
  *out += ",\"p50\":";
  AppendU64(out, h.Percentile(50));
  *out += ",\"p90\":";
  AppendU64(out, h.Percentile(90));
  *out += ",\"p99\":";
  AppendU64(out, h.Percentile(99));
  *out += '}';
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string MetricsToJson(const MetricsRegistry& registry) {
  std::string counters;
  std::string gauges;
  std::string histograms;
  for (const MetricsRegistry::Entry& entry : registry.Entries()) {
    if (entry.counter != nullptr) {
      if (!counters.empty()) {
        counters += ',';
      }
      counters += '"';
      counters += JsonEscape(entry.name);
      counters += "\":";
      AppendU64(&counters, entry.counter->value());
    } else if (entry.gauge != nullptr) {
      if (!gauges.empty()) {
        gauges += ',';
      }
      gauges += '"';
      gauges += JsonEscape(entry.name);
      gauges += "\":";
      AppendI64(&gauges, entry.gauge->value());
    } else if (entry.histogram != nullptr) {
      if (!histograms.empty()) {
        histograms += ',';
      }
      const LatencyHistogram& h = *entry.histogram;
      histograms += '"';
      histograms += JsonEscape(entry.name);
      histograms += "\":{\"count\":";
      AppendU64(&histograms, h.count());
      histograms += ",\"sum\":";
      AppendU64(&histograms, h.sum());
      histograms += ",\"min\":";
      AppendU64(&histograms, h.min());
      histograms += ",\"max\":";
      AppendU64(&histograms, h.max());
      histograms += ",\"mean\":";
      AppendDouble(&histograms, h.Mean());
      histograms += ",\"p50\":";
      AppendU64(&histograms, h.Percentile(50));
      histograms += ",\"p90\":";
      AppendU64(&histograms, h.Percentile(90));
      histograms += ",\"p99\":";
      AppendU64(&histograms, h.Percentile(99));
      histograms += ",\"overflow\":";
      AppendU64(&histograms, h.overflow());
      histograms += '}';
    }
  }
  std::string out = "{\"counters\":{";
  out += counters;
  out += "},\"gauges\":{";
  out += gauges;
  out += "},\"histograms\":{";
  out += histograms;
  out += "}}";
  return out;
}

std::string MetricsToPrometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const MetricsRegistry::Entry& entry : registry.Entries()) {
    const std::string name = PromName(entry.name);
    if (entry.counter != nullptr) {
      out += "# TYPE ";
      out += name;
      out += " counter\n";
      out += name;
      out += ' ';
      AppendU64(&out, entry.counter->value());
      out += '\n';
    } else if (entry.gauge != nullptr) {
      out += "# TYPE ";
      out += name;
      out += " gauge\n";
      out += name;
      out += ' ';
      AppendI64(&out, entry.gauge->value());
      out += '\n';
    } else if (entry.histogram != nullptr) {
      const LatencyHistogram& h = *entry.histogram;
      out += "# TYPE ";
      out += name;
      out += " summary\n";
      static constexpr struct {
        const char* quantile;
        double p;
      } kQuantiles[] = {{"0.5", 50}, {"0.9", 90}, {"0.99", 99}};
      for (const auto& q : kQuantiles) {
        out += name;
        out += "{quantile=\"";
        out += q.quantile;
        out += "\"} ";
        AppendU64(&out, h.Percentile(q.p));
        out += '\n';
      }
      out += name;
      out += "_sum ";
      AppendU64(&out, h.sum());
      out += '\n';
      out += name;
      out += "_count ";
      AppendU64(&out, h.count());
      out += '\n';
    }
  }
  return out;
}

std::string TimelineToJson(const std::vector<WindowSnapshot>& windows,
                           uint64_t window_cycles) {
  std::string out = "{\"schema\":\"flexos-timeline-v1\",\"window_cycles\":";
  AppendU64(&out, window_cycles);
  out += ",\"windows\":[";
  bool first_window = true;
  for (const WindowSnapshot& window : windows) {
    if (!first_window) {
      out += ',';
    }
    first_window = false;
    out += "{\"seq\":";
    AppendU64(&out, window.seq);
    out += ",\"start_cycles\":";
    AppendU64(&out, window.start_cycles);
    out += ",\"end_cycles\":";
    AppendU64(&out, window.end_cycles);
    out += ",\"counters\":{";
    bool first = true;
    for (const WindowCounterSample& sample : window.counters) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      out += JsonEscape(sample.name);
      out += "\":";
      AppendU64(&out, sample.delta);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const WindowGaugeSample& sample : window.gauges) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      out += JsonEscape(sample.name);
      out += "\":";
      AppendI64(&out, sample.value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const WindowHistSample& sample : window.histograms) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      out += JsonEscape(sample.name);
      out += "\":";
      AppendHistBody(&out, sample.delta);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

namespace {

uint64_t U64Field(const JsonValue& object, const char* key) {
  const JsonValue* field = object.Find(key);
  return field != nullptr && field->kind == JsonValue::kNumber
             ? static_cast<uint64_t>(field->number)
             : 0;
}

}  // namespace

bool TimelineFromJson(const std::string& text, TimelineDoc* out,
                      std::string* error) {
  JsonValue root;
  if (!JsonReader(text).Parse(&root) || root.kind != JsonValue::kObject) {
    *error = "malformed JSON";
    return false;
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || schema->kind != JsonValue::kString) {
    *error = "no \"schema\" field (expected \"flexos-timeline-v1\")";
    return false;
  }
  if (schema->str != "flexos-timeline-v1") {
    *error = "schema \"" + schema->str + "\" is not \"flexos-timeline-v1\"";
    return false;
  }
  out->windows.clear();
  out->window_cycles = U64Field(root, "window_cycles");
  const JsonValue* windows = root.Find("windows");
  if (windows == nullptr || windows->kind != JsonValue::kArray) {
    *error = "missing \"windows\" array";
    return false;
  }
  for (const JsonValue& window_json : windows->array) {
    if (window_json.kind != JsonValue::kObject) {
      *error = "window entry is not an object";
      return false;
    }
    TimelineWindow window;
    window.seq = U64Field(window_json, "seq");
    window.start_cycles = U64Field(window_json, "start_cycles");
    window.end_cycles = U64Field(window_json, "end_cycles");
    if (const JsonValue* counters = window_json.Find("counters");
        counters != nullptr && counters->kind == JsonValue::kObject) {
      for (const auto& [name, value] : counters->object) {
        window.counters.emplace_back(name,
                                     static_cast<uint64_t>(value.number));
      }
    }
    if (const JsonValue* gauges = window_json.Find("gauges");
        gauges != nullptr && gauges->kind == JsonValue::kObject) {
      for (const auto& [name, value] : gauges->object) {
        window.gauges.emplace_back(name, static_cast<int64_t>(value.number));
      }
    }
    if (const JsonValue* hists = window_json.Find("histograms");
        hists != nullptr && hists->kind == JsonValue::kObject) {
      for (const auto& [name, value] : hists->object) {
        if (value.kind != JsonValue::kObject) {
          *error = "histogram \"" + name + "\" is not an object";
          return false;
        }
        TimelineHistStats stats;
        stats.count = U64Field(value, "count");
        stats.sum = U64Field(value, "sum");
        stats.min = U64Field(value, "min");
        stats.max = U64Field(value, "max");
        if (const JsonValue* mean = value.Find("mean"); mean != nullptr) {
          stats.mean = mean->number;
        }
        stats.p50 = U64Field(value, "p50");
        stats.p90 = U64Field(value, "p90");
        stats.p99 = U64Field(value, "p99");
        window.histograms.emplace_back(name, stats);
      }
    }
    out->windows.push_back(std::move(window));
  }
  return true;
}

std::string TimelineDocToJson(const TimelineDoc& doc) {
  std::string out = "{\"schema\":\"flexos-timeline-v1\",\"window_cycles\":";
  AppendU64(&out, doc.window_cycles);
  out += ",\"windows\":[";
  bool first_window = true;
  for (const TimelineWindow& window : doc.windows) {
    if (!first_window) {
      out += ',';
    }
    first_window = false;
    out += "{\"seq\":";
    AppendU64(&out, window.seq);
    out += ",\"start_cycles\":";
    AppendU64(&out, window.start_cycles);
    out += ",\"end_cycles\":";
    AppendU64(&out, window.end_cycles);
    out += ",\"counters\":{";
    bool first = true;
    for (const auto& [name, delta] : window.counters) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      out += JsonEscape(name);
      out += "\":";
      AppendU64(&out, delta);
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, value] : window.gauges) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      out += JsonEscape(name);
      out += "\":";
      AppendI64(&out, value);
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, stats] : window.histograms) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      out += JsonEscape(name);
      out += "\":{\"count\":";
      AppendU64(&out, stats.count);
      out += ",\"sum\":";
      AppendU64(&out, stats.sum);
      out += ",\"min\":";
      AppendU64(&out, stats.min);
      out += ",\"max\":";
      AppendU64(&out, stats.max);
      out += ",\"mean\":";
      AppendDouble(&out, stats.mean);
      out += ",\"p50\":";
      AppendU64(&out, stats.p50);
      out += ",\"p90\":";
      AppendU64(&out, stats.p90);
      out += ",\"p99\":";
      AppendU64(&out, stats.p99);
      out += '}';
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string TraceToChromeJson(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(event.name != nullptr ? event.name : "event");
    out += "\",\"cat\":\"";
    out += CategoryName(event.cat);
    out += "\",\"ph\":\"";
    out += event.phase == TracePhase::kComplete ? 'X' : 'i';
    out += "\",\"pid\":1,\"tid\":";
    AppendI64(&out, event.tid);
    out += ",\"ts\":";
    AppendDouble(&out, static_cast<double>(event.ts_ns) / 1000.0);
    if (event.phase == TracePhase::kComplete) {
      out += ",\"dur\":";
      AppendDouble(&out, static_cast<double>(event.dur_ns) / 1000.0);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"args\":{\"a0\":";
    AppendU64(&out, event.a0);
    out += ",\"a1\":";
    AppendU64(&out, event.a1);
    if (event.req != 0) {
      out += ",\"req\":";
      AppendU64(&out, event.req);
    }
    // Omitted at vCPU 0 so single-vCPU traces stay byte-identical to
    // pre-multi-vCPU exports.
    if (event.vcpu != 0) {
      out += ",\"vcpu\":";
      AppendU64(&out, event.vcpu);
    }
    if (event.text[0] != '\0') {
      out += ",\"msg\":\"";
      out += JsonEscape(event.text);
      out += '"';
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace flexos
