// Exporters: snapshot a MetricsRegistry to JSON, and dump trace events in
// Chrome trace-event format (the JSON object form, {"traceEvents":[...]}),
// loadable in Perfetto / chrome://tracing. Schema notes in DESIGN.md §7.
#ifndef FLEXOS_OBS_EXPORT_H_
#define FLEXOS_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace flexos {
namespace obs {

// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
// mean,p50,p90,p99,overflow}}} — keys sorted, stable across runs.
std::string MetricsToJson(const MetricsRegistry& registry);

// Prometheus text exposition format (version 0.0.4), written to a file the
// node_exporter textfile collector (or any scrape sidecar) can serve.
// Counters export as counters, gauges as gauges, histograms as summaries
// with 0.5/0.9/0.99 quantiles plus _sum and _count. Metric names are
// sanitized: every character outside [a-zA-Z0-9_:] becomes '_'
// (gate.latency_ns.mpk-shared.c0.c1 -> gate_latency_ns_mpk_shared_c0_c1).
std::string MetricsToPrometheus(const MetricsRegistry& registry);

// flexwatch timeline: {"schema":"flexos-timeline-v1","window_cycles":W,
// "windows":[{seq,start_cycles,end_cycles,counters,gauges,histograms}]}.
// Deterministic: same seed + same window_cycles -> byte-identical output
// (hard-gated by bench/abl_obs_overhead.cc).
std::string TimelineToJson(const std::vector<WindowSnapshot>& windows,
                           uint64_t window_cycles);

// Chrome trace-event JSON. ts/dur are microseconds (doubles; the format's
// unit), pid is always 1, tid is the event's track id (compartment + 1).
// Complete spans use ph "X"; instants use ph "i" with scope "t". Event args
// carry a0/a1 and, when present, the inline text payload as "msg".
std::string TraceToChromeJson(const std::vector<TraceEvent>& events);

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(std::string_view s);

}  // namespace obs
}  // namespace flexos

#endif  // FLEXOS_OBS_EXPORT_H_
