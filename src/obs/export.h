// Exporters: snapshot a MetricsRegistry to JSON, and dump trace events in
// Chrome trace-event format (the JSON object form, {"traceEvents":[...]}),
// loadable in Perfetto / chrome://tracing. Schema notes in DESIGN.md §7.
#ifndef FLEXOS_OBS_EXPORT_H_
#define FLEXOS_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace flexos {
namespace obs {

// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
// mean,p50,p90,p99,overflow}}} — keys sorted, stable across runs.
std::string MetricsToJson(const MetricsRegistry& registry);

// Chrome trace-event JSON. ts/dur are microseconds (doubles; the format's
// unit), pid is always 1, tid is the event's track id (compartment + 1).
// Complete spans use ph "X"; instants use ph "i" with scope "t". Event args
// carry a0/a1 and, when present, the inline text payload as "msg".
std::string TraceToChromeJson(const std::vector<TraceEvent>& events);

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(std::string_view s);

}  // namespace obs
}  // namespace flexos

#endif  // FLEXOS_OBS_EXPORT_H_
