// Exporters: snapshot a MetricsRegistry to JSON, and dump trace events in
// Chrome trace-event format (the JSON object form, {"traceEvents":[...]}),
// loadable in Perfetto / chrome://tracing. Schema notes in DESIGN.md §7.
#ifndef FLEXOS_OBS_EXPORT_H_
#define FLEXOS_OBS_EXPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace flexos {
namespace obs {

// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,min,max,
// mean,p50,p90,p99,overflow}}} — keys sorted, stable across runs.
std::string MetricsToJson(const MetricsRegistry& registry);

// Prometheus text exposition format (version 0.0.4), written to a file the
// node_exporter textfile collector (or any scrape sidecar) can serve.
// Counters export as counters, gauges as gauges, histograms as summaries
// with 0.5/0.9/0.99 quantiles plus _sum and _count. Metric names are
// sanitized: every character outside [a-zA-Z0-9_:] becomes '_'
// (gate.latency_ns.mpk-shared.c0.c1 -> gate_latency_ns_mpk_shared_c0_c1).
std::string MetricsToPrometheus(const MetricsRegistry& registry);

// flexwatch timeline: {"schema":"flexos-timeline-v1","window_cycles":W,
// "windows":[{seq,start_cycles,end_cycles,counters,gauges,histograms}]}.
// Deterministic: same seed + same window_cycles -> byte-identical output
// (hard-gated by bench/abl_obs_overhead.cc).
std::string TimelineToJson(const std::vector<WindowSnapshot>& windows,
                           uint64_t window_cycles);

// Parsed form of a flexos-timeline-v1 document (the diff reader's view).
// Histograms come back as their exported summary stats, not bucket arrays —
// the export is lossy by design and the diff tooling compares summaries.
struct TimelineHistStats {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
};

struct TimelineWindow {
  uint64_t seq = 0;
  uint64_t start_cycles = 0;
  uint64_t end_cycles = 0;
  // Insertion-ordered as written (name-sorted by the exporter).
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, TimelineHistStats>> histograms;
};

struct TimelineDoc {
  uint64_t window_cycles = 0;
  std::vector<TimelineWindow> windows;
};

// Parses TimelineToJson output back into a TimelineDoc. Rejects missing or
// mismatched "schema" fields with a human-readable *error. Integral fields
// round-trip exactly below 2^53 (the reader holds numbers as doubles);
// every value the exporter writes is far below that.
bool TimelineFromJson(const std::string& text, TimelineDoc* out,
                      std::string* error);

// Re-serializes a TimelineDoc byte-identically to the TimelineToJson output
// it was parsed from (locked by obs_test's round-trip test).
std::string TimelineDocToJson(const TimelineDoc& doc);

// Chrome trace-event JSON. ts/dur are microseconds (doubles; the format's
// unit), pid is always 1, tid is the event's track id (compartment + 1).
// Complete spans use ph "X"; instants use ph "i" with scope "t". Event args
// carry a0/a1 and, when present, the inline text payload as "msg".
std::string TraceToChromeJson(const std::vector<TraceEvent>& events);

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(std::string_view s);

}  // namespace obs
}  // namespace flexos

#endif  // FLEXOS_OBS_EXPORT_H_
