#include "obs/json.h"

#include <cctype>
#include <cstdlib>

namespace flexos {
namespace obs {

bool JsonReader::Parse(JsonValue* out) {
  pos_ = 0;
  return ParseValue(out) && (SkipWs(), pos_ == text_.size());
}

void JsonReader::SkipWs() {
  while (pos_ < text_.size() &&
         std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
    ++pos_;
  }
}

bool JsonReader::Consume(char c) {
  SkipWs();
  if (pos_ < text_.size() && text_[pos_] == c) {
    ++pos_;
    return true;
  }
  return false;
}

bool JsonReader::ParseString(std::string* out) {
  SkipWs();
  if (pos_ >= text_.size() || text_[pos_] != '"') {
    return false;
  }
  ++pos_;
  out->clear();
  while (pos_ < text_.size() && text_[pos_] != '"') {
    char c = text_[pos_++];
    if (c == '\\' && pos_ < text_.size()) {
      const char esc = text_[pos_++];
      switch (esc) {
        case 'n':
          c = '\n';
          break;
        case 't':
          c = '\t';
          break;
        default:
          c = esc;
      }
    }
    *out += c;
  }
  if (pos_ >= text_.size()) {
    return false;  // Unterminated string.
  }
  ++pos_;  // Closing quote.
  return true;
}

bool JsonReader::ParseValue(JsonValue* out) {
  SkipWs();
  if (pos_ >= text_.size()) {
    return false;
  }
  const char c = text_[pos_];
  if (c == '{') {
    ++pos_;
    out->kind = JsonValue::kObject;
    SkipWs();
    if (Consume('}')) {
      return true;
    }
    for (;;) {
      std::string key;
      JsonValue value;
      if (!ParseString(&key) || !Consume(':') || !ParseValue(&value)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) {
        continue;
      }
      return Consume('}');
    }
  }
  if (c == '[') {
    ++pos_;
    out->kind = JsonValue::kArray;
    SkipWs();
    if (Consume(']')) {
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->array.push_back(std::move(value));
      if (Consume(',')) {
        continue;
      }
      return Consume(']');
    }
  }
  if (c == '"') {
    out->kind = JsonValue::kString;
    return ParseString(&out->str);
  }
  if (text_.compare(pos_, 4, "true") == 0) {
    out->kind = JsonValue::kBool;
    out->boolean = true;
    pos_ += 4;
    return true;
  }
  if (text_.compare(pos_, 5, "false") == 0) {
    out->kind = JsonValue::kBool;
    pos_ += 5;
    return true;
  }
  if (text_.compare(pos_, 4, "null") == 0) {
    pos_ += 4;
    return true;
  }
  char* end = nullptr;
  const double value = std::strtod(text_.c_str() + pos_, &end);
  if (end == text_.c_str() + pos_) {
    return false;
  }
  out->kind = JsonValue::kNumber;
  out->number = value;
  pos_ = static_cast<size_t>(end - text_.c_str());
  return true;
}

}  // namespace obs
}  // namespace flexos
