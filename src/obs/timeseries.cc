#include "obs/timeseries.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace flexos {
namespace obs {

bool GlobMatch(std::string_view pattern, std::string_view text) {
  // Iterative star-backtracking: '*' matches any (possibly empty) run.
  size_t pi = 0;
  size_t ti = 0;
  size_t star = std::string_view::npos;
  size_t match = 0;
  while (ti < text.size()) {
    if (pi < pattern.size() && pattern[pi] == '*') {
      star = pi++;
      match = ti;
    } else if (pi < pattern.size() && pattern[pi] == text[ti]) {
      ++pi;
      ++ti;
    } else if (star != std::string_view::npos) {
      pi = star + 1;
      ti = ++match;
    } else {
      return false;
    }
  }
  while (pi < pattern.size() && pattern[pi] == '*') {
    ++pi;
  }
  return pi == pattern.size();
}

std::string_view SloStatName(SloStat stat) {
  switch (stat) {
    case SloStat::kP50:
      return "p50";
    case SloStat::kP90:
      return "p90";
    case SloStat::kP99:
      return "p99";
    case SloStat::kMean:
      return "mean";
    case SloStat::kMax:
      return "max";
    case SloStat::kCount:
      return "count";
    case SloStat::kSum:
      return "sum";
    case SloStat::kValue:
      return "value";
  }
  return "?";
}

std::string_view SloOpName(SloOp op) {
  switch (op) {
    case SloOp::kLt:
      return "<";
    case SloOp::kLe:
      return "<=";
    case SloOp::kGt:
      return ">";
    case SloOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

bool ParseStat(std::string_view token, SloStat* out) {
  if (token == "p50") {
    *out = SloStat::kP50;
  } else if (token == "p90") {
    *out = SloStat::kP90;
  } else if (token == "p99") {
    *out = SloStat::kP99;
  } else if (token == "mean") {
    *out = SloStat::kMean;
  } else if (token == "max") {
    *out = SloStat::kMax;
  } else if (token == "count") {
    *out = SloStat::kCount;
  } else if (token == "sum") {
    *out = SloStat::kSum;
  } else if (token == "value") {
    *out = SloStat::kValue;
  } else {
    return false;
  }
  return true;
}

bool ParseOp(std::string_view token, SloOp* out) {
  if (token == "<") {
    *out = SloOp::kLt;
  } else if (token == "<=") {
    *out = SloOp::kLe;
  } else if (token == ">") {
    *out = SloOp::kGt;
  } else if (token == ">=") {
    *out = SloOp::kGe;
  } else {
    return false;
  }
  return true;
}

// "good" direction of the spec; a window failing this is a violation.
bool Satisfies(SloOp op, double measured, double threshold) {
  switch (op) {
    case SloOp::kLt:
      return measured < threshold;
    case SloOp::kLe:
      return measured <= threshold;
    case SloOp::kGt:
      return measured > threshold;
    case SloOp::kGe:
      return measured >= threshold;
  }
  return true;
}

}  // namespace

bool ParseSloSpec(std::string_view text, SloSpec* out, std::string* error) {
  // Whitespace-split into exactly four tokens.
  std::vector<std::string_view> tokens;
  size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) {
      ++pos;
    }
    size_t end = pos;
    while (end < text.size() && text[end] != ' ' && text[end] != '\t') {
      ++end;
    }
    if (end > pos) {
      tokens.push_back(text.substr(pos, end - pos));
    }
    pos = end;
  }
  if (tokens.size() != 4) {
    *error = "slo wants: <metric-pattern> <stat> <op> <value>";
    return false;
  }
  SloSpec spec;
  spec.pattern = std::string(tokens[0]);
  if (!ParseStat(tokens[1], &spec.stat)) {
    *error = "unknown slo stat (p50|p90|p99|mean|max|count|sum|value): " +
             std::string(tokens[1]);
    return false;
  }
  if (!ParseOp(tokens[2], &spec.op)) {
    *error = "unknown slo comparator (<|<=|>|>=): " + std::string(tokens[2]);
    return false;
  }
  const std::string value(tokens[3]);
  char* end = nullptr;
  spec.threshold = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || !std::isfinite(spec.threshold)) {
    *error = "bad slo threshold: " + value;
    return false;
  }
  *out = std::move(spec);
  return true;
}

std::string SloSpecToString(const SloSpec& spec) {
  char threshold[40];
  std::snprintf(threshold, sizeof(threshold), "%.10g", spec.threshold);
  std::string out = spec.pattern;
  out += ' ';
  out += SloStatName(spec.stat);
  out += ' ';
  out += SloOpName(spec.op);
  out += ' ';
  out += threshold;
  return out;
}

#ifndef FLEXOS_OBS_DISABLED

inline namespace obs_enabled {

void TimeSeries::Enable(uint64_t window_cycles, size_t ring_windows) {
  if (window_cycles == 0 || registry_ == nullptr) {
    // Zero-length windows would close at every poll; stay disabled.
    return;
  }
  window_cycles_ = window_cycles;
  ring_.clear();
  ring_.resize(ring_windows == 0 ? 1 : ring_windows);
  seq_ = 0;
  violations_total_ = 0;
  last_close_ = 0;
  next_close_ = window_cycles_;
  enabled_ = true;
  binding_ = nullptr;  // Force a fresh binding (ring slots were resized).
  Rebind();
  // Baseline at enable time: accrual from before windowing started (boot,
  // config build, bench warmup) belongs to no window. Metrics registered
  // *after* this keep the start-from-zero rebind rule — their whole life
  // fits inside the windowed era.
  for (size_t i = 0; i < binding_->counters.size(); ++i) {
    prev_counters_[i] = binding_->counters[i]->value();
  }
  for (size_t i = 0; i < binding_->hists.size(); ++i) {
    prev_hists_[i] = *binding_->hists[i];
  }
}

void TimeSeries::AddWatchdog(const SloSpec& spec) {
  specs_.push_back(spec);
  violation_counters_.push_back(
      registry_ == nullptr
          ? nullptr
          : &registry_->GetCounter("slo.violations." + spec.EffectiveName()));
  if (enabled_) {
    Rebind();  // Re-resolve targets; also binds the new violation counter.
  }
}

void TimeSeries::Rebind() {
  auto binding = std::make_shared<Binding>();
  for (const MetricsRegistry::Entry& entry : registry_->Entries()) {
    if (entry.counter != nullptr) {
      binding->counter_names.emplace_back(entry.name);
      binding->counters.push_back(entry.counter);
    } else if (entry.gauge != nullptr) {
      binding->gauge_names.emplace_back(entry.name);
      binding->gauges.push_back(entry.gauge);
    } else if (entry.histogram != nullptr) {
      binding->hist_names.emplace_back(entry.name);
      binding->hists.push_back(entry.histogram);
    }
  }

  // Carry the previous capture's cumulative values across by name (both
  // name lists are sorted), so a rebind never double-counts. Metrics new
  // to this binding start from zero: everything they accrued since
  // registration belongs to the window being closed.
  std::vector<uint64_t> prev_counters(binding->counters.size(), 0);
  std::vector<LatencyHistogram> prev_hists(binding->hists.size());
  if (binding_ != nullptr) {
    for (size_t i = 0, j = 0; i < binding_->counter_names.size() &&
                              j < binding->counter_names.size();) {
      const int cmp =
          binding_->counter_names[i].compare(binding->counter_names[j]);
      if (cmp == 0) {
        prev_counters[j++] = prev_counters_[i++];
      } else if (cmp < 0) {
        ++i;
      } else {
        ++j;
      }
    }
    for (size_t i = 0, j = 0;
         i < binding_->hist_names.size() && j < binding->hist_names.size();) {
      const int cmp = binding_->hist_names[i].compare(binding->hist_names[j]);
      if (cmp == 0) {
        prev_hists[j++] = prev_hists_[i++];
      } else if (cmp < 0) {
        ++i;
      } else {
        ++j;
      }
    }
  }

  // Resolve watchdog targets against this binding. Percentile-family stats
  // watch histograms; "value" watches counters (window delta) and gauges
  // (instantaneous).
  binding->slo_targets.resize(specs_.size());
  for (size_t s = 0; s < specs_.size(); ++s) {
    Binding::SloTargets& targets = binding->slo_targets[s];
    const SloSpec& spec = specs_[s];
    if (spec.stat == SloStat::kValue) {
      for (size_t k = 0; k < binding->counter_names.size(); ++k) {
        if (GlobMatch(spec.pattern, binding->counter_names[k])) {
          targets.counter_idx.push_back(k);
        }
      }
      for (size_t k = 0; k < binding->gauge_names.size(); ++k) {
        if (GlobMatch(spec.pattern, binding->gauge_names[k])) {
          targets.gauge_idx.push_back(k);
        }
      }
    } else {
      for (size_t k = 0; k < binding->hist_names.size(); ++k) {
        if (GlobMatch(spec.pattern, binding->hist_names[k])) {
          targets.hist_idx.push_back(k);
        }
      }
    }
  }

  binding_ = std::move(binding);
  prev_counters_ = std::move(prev_counters);
  prev_hists_ = std::move(prev_hists);
  bound_metric_count_ = registry_->size();
  // Pre-size every ring slot: Capture's resize calls then stay within
  // capacity, keeping the steady-state capture path allocation-free.
  for (Window& window : ring_) {
    window.counter_deltas.reserve(binding_->counters.size());
    window.gauge_values.reserve(binding_->gauges.size());
    window.hist_deltas.reserve(binding_->hists.size());
  }
}

void TimeSeries::Capture(uint64_t now_cycles) {
  if (registry_->size() != bound_metric_count_) {
    Rebind();  // New metrics appeared mid-window (e.g. lazy route resolve).
  }
  // Latest boundary at or before now. A multi-window idle jump closes one
  // window spanning [last_close_, that boundary].
  const uint64_t end = now_cycles - (now_cycles % window_cycles_);

  const Binding& binding = *binding_;
  Window& window = ring_[seq_ % ring_.size()];
  ++seq_;
  window.seq = seq_;
  window.start_cycles = last_close_;
  window.end_cycles = end;
  window.binding = binding_;
  window.counter_deltas.resize(binding.counters.size());
  for (size_t i = 0; i < binding.counters.size(); ++i) {
    const uint64_t cur = binding.counters[i]->value();
    // A counter that went backwards was Reset(); treat it as fresh.
    window.counter_deltas[i] =
        cur >= prev_counters_[i] ? cur - prev_counters_[i] : cur;
    prev_counters_[i] = cur;
  }
  window.gauge_values.resize(binding.gauges.size());
  for (size_t i = 0; i < binding.gauges.size(); ++i) {
    window.gauge_values[i] = binding.gauges[i]->value();
  }
  window.hist_deltas.resize(binding.hists.size());
  for (size_t i = 0; i < binding.hists.size(); ++i) {
    window.hist_deltas[i] =
        LatencyHistogram::Delta(*binding.hists[i], prev_hists_[i]);
    prev_hists_[i] = *binding.hists[i];
  }
  last_close_ = end;
  next_close_ = end + window_cycles_;
  EvaluateWatchdogs(window);
  if (window_hook_) {
    window_hook_(MakeSnapshot(window));
  }
}

void TimeSeries::FinalizeTail(uint64_t now_cycles) {
  if (!enabled_ || now_cycles <= last_close_) {
    return;
  }
  // Same capture, but the window ends at `now` instead of a boundary, so
  // end-of-run totals cover the full run. The next boundary stays aligned.
  const uint64_t saved_window = window_cycles_;
  window_cycles_ = 1;  // Makes every cycle a boundary for this one capture.
  Capture(now_cycles);
  window_cycles_ = saved_window;
  next_close_ = (now_cycles / window_cycles_ + 1) * window_cycles_;
}

void TimeSeries::EvaluateWatchdogs(const Window& window) {
  const Binding& binding = *window.binding;
  for (size_t s = 0; s < specs_.size(); ++s) {
    const SloSpec& spec = specs_[s];
    const Binding::SloTargets& targets = binding.slo_targets[s];
    for (const size_t k : targets.counter_idx) {
      const double measured = static_cast<double>(window.counter_deltas[k]);
      if (!Satisfies(spec.op, measured, spec.threshold)) {
        ReportViolation(window, s, binding.counter_names[k], measured);
      }
    }
    for (const size_t k : targets.gauge_idx) {
      const double measured = static_cast<double>(window.gauge_values[k]);
      if (!Satisfies(spec.op, measured, spec.threshold)) {
        ReportViolation(window, s, binding.gauge_names[k], measured);
      }
    }
    for (const size_t k : targets.hist_idx) {
      const LatencyHistogram& hist = window.hist_deltas[k];
      if (hist.count() == 0) {
        continue;  // No samples this window: nothing to judge.
      }
      double measured = 0;
      switch (spec.stat) {
        case SloStat::kP50:
          measured = static_cast<double>(hist.Percentile(50));
          break;
        case SloStat::kP90:
          measured = static_cast<double>(hist.Percentile(90));
          break;
        case SloStat::kP99:
          measured = static_cast<double>(hist.Percentile(99));
          break;
        case SloStat::kMean:
          measured = hist.Mean();
          break;
        case SloStat::kMax:
          measured = static_cast<double>(hist.max());
          break;
        case SloStat::kCount:
          measured = static_cast<double>(hist.count());
          break;
        case SloStat::kSum:
          measured = static_cast<double>(hist.sum());
          break;
        case SloStat::kValue:
          continue;  // Resolved against counters/gauges only.
      }
      if (!Satisfies(spec.op, measured, spec.threshold)) {
        ReportViolation(window, s, binding.hist_names[k], measured);
      }
    }
  }
}

void TimeSeries::ReportViolation(const Window& window, size_t spec_idx,
                                 const std::string& metric, double measured) {
  ++violations_total_;
  if (violation_counters_[spec_idx] != nullptr) {
    violation_counters_[spec_idx]->Add();
  }
  if (tracer_ != nullptr) {
    tracer_->RecordInstant(TraceCat::kSlo, "slo.violation", /*tid=*/0,
                           /*a0=*/window.seq,
                           /*a1=*/static_cast<uint64_t>(measured));
  }
  if (hook_) {
    SloViolation violation;
    violation.slo_name = specs_[spec_idx].EffectiveName();
    violation.metric = metric;
    violation.window_seq = window.seq;
    violation.measured = measured;
    violation.threshold = specs_[spec_idx].threshold;
    hook_(violation);
  }
}

WindowSnapshot TimeSeries::MakeSnapshot(const Window& window) const {
  WindowSnapshot snap;
  snap.seq = window.seq;
  snap.start_cycles = window.start_cycles;
  snap.end_cycles = window.end_cycles;
  const Binding& binding = *window.binding;
  for (size_t i = 0; i < window.counter_deltas.size(); ++i) {
    if (window.counter_deltas[i] != 0) {
      snap.counters.push_back(
          {binding.counter_names[i], window.counter_deltas[i]});
    }
  }
  for (size_t i = 0; i < window.gauge_values.size(); ++i) {
    if (window.gauge_values[i] != 0) {
      snap.gauges.push_back({binding.gauge_names[i], window.gauge_values[i]});
    }
  }
  for (size_t i = 0; i < window.hist_deltas.size(); ++i) {
    if (window.hist_deltas[i].count() != 0) {
      snap.histograms.push_back({binding.hist_names[i], window.hist_deltas[i]});
    }
  }
  return snap;
}

std::vector<WindowSnapshot> TimeSeries::Snapshot() const {
  std::vector<WindowSnapshot> out;
  const uint64_t retained =
      std::min<uint64_t>(seq_, static_cast<uint64_t>(ring_.size()));
  out.reserve(retained);
  for (uint64_t s = seq_ - retained + 1; s <= seq_ && retained > 0; ++s) {
    out.push_back(MakeSnapshot(ring_[(s - 1) % ring_.size()]));
  }
  return out;
}

}  // inline namespace obs_enabled

#endif  // FLEXOS_OBS_DISABLED

}  // namespace obs
}  // namespace flexos
