// The FlexOS build-configuration front end. The paper: "FlexOS's build
// system extends Unikraft's to allow specifying how many compartments the
// resulting image should have, how they should be isolated, and whether SH
// techniques should be applied to one or multiple of these." This parser
// reads that specification from a Kconfig-flavored text format:
//
//   # iperf with an untrusted network stack
//   backend = mpk-shared            # none | mpk-shared | mpk-switched | vm-rpc
//   compartment net                 # one directive per compartment
//   compartment app sched libc alloc
//   harden net                      # ASAN-class SH for these libraries
//   cfi sched                       # CFI-checked entry points
//   allocators = per-compartment    # per-compartment | global
//   heap = freelist                 # freelist | buddy
//   heap_bytes = 48M
//   shared_bytes = 64M
//
// and produces an ImageConfig for ImageBuilder.
#ifndef FLEXOS_CORE_CONFIG_PARSER_H_
#define FLEXOS_CORE_CONFIG_PARSER_H_

#include <string>

#include "core/image_builder.h"

namespace flexos {

// Parses the configuration text. Errors carry the offending line number.
// With "compat = strict" in the text, a config whose compartments cohabit
// metadata-incompatible libraries is rejected with the violated [Requires]
// clauses spelled out (CheckConfigCompat below).
Result<ImageConfig> ParseImageConfig(const std::string& text);

// Pairwise SatisfiesRequires over every compartment of `config`, resolving
// metadata with BuiltinLibraryMeta (libraries without builtin metadata are
// skipped — flexlint flags those separately). On failure the status message
// lists each violated Requires clause, not just a bare code.
Status CheckConfigCompat(const ImageConfig& config);

// Serializes a config back to the text format (round-trips ParseImageConfig
// up to comments and ordering).
std::string ImageConfigToString(const ImageConfig& config);

}  // namespace flexos

#endif  // FLEXOS_CORE_CONFIG_PARSER_H_
