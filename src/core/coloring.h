// Graph coloring for compartment derivation (paper §2): "selecting the
// smallest number of compartments in a FlexOS image can be reduced to the
// classical graph coloring problem." Vertices are libraries; an edge joins
// incompatible pairs; each color becomes a compartment.
//
// Two algorithms: DSATUR (fast, near-optimal greedy) and an exact
// branch-and-bound for the library counts a LibOS image actually has.
#ifndef FLEXOS_CORE_COLORING_H_
#define FLEXOS_CORE_COLORING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "support/status.h"

namespace flexos {

struct ColoringResult {
  int num_colors = 0;
  std::vector<int> color_of;  // color_of[v] in [0, num_colors).
};

// DSATUR greedy coloring. O(V^2) with adjacency bitsets; proper but not
// necessarily minimal.
ColoringResult ColorGraphDsatur(int num_vertices,
                                const std::vector<std::pair<int, int>>& edges);

// Exact minimum coloring by branch-and-bound seeded with the DSATUR upper
// bound. Exponential worst case; intended for n <= ~32 (a LibOS image has
// a few dozen micro-libraries at most).
ColoringResult ColorGraphExact(int num_vertices,
                               const std::vector<std::pair<int, int>>& edges);

// True if `coloring` assigns different colors across every edge.
bool IsProperColoring(const ColoringResult& coloring,
                      const std::vector<std::pair<int, int>>& edges);

}  // namespace flexos

#endif  // FLEXOS_CORE_COLORING_H_
