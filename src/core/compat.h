// Pairwise compartment-compatibility checking (paper §2): "Given two
// libraries and their metadata, we now have enough information to
// automatically decide whether they can run in the same compartment."
#ifndef FLEXOS_CORE_COMPAT_H_
#define FLEXOS_CORE_COMPAT_H_

#include <string>
#include <utility>
#include <vector>

#include "core/metadata.h"

namespace flexos {

struct CompatVerdict {
  bool compatible = true;
  // Human-readable reasons for the first few violations found.
  std::vector<std::string> violations;
};

// Checks whether `other`'s worst-case behavior satisfies `holder`'s
// Requires clauses. One-directional; full compatibility needs both ways.
CompatVerdict SatisfiesRequires(const LibraryMeta& holder,
                                const LibraryMeta& other);

// Both directions: can the two libraries share a compartment?
CompatVerdict CanShareCompartment(const LibraryMeta& a,
                                  const LibraryMeta& b);

// Builds the conflict graph over `libs`: an edge (i, j) means libs[i] and
// libs[j] must NOT share a compartment. Feed this to ColorGraph
// (core/coloring.h) to derive the minimal compartmentalization.
std::vector<std::pair<int, int>> ConflictEdges(
    const std::vector<LibraryMeta>& libs);

}  // namespace flexos

#endif  // FLEXOS_CORE_COMPAT_H_
