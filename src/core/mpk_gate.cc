#include "core/mpk_gate.h"

#include "support/panic.h"

namespace flexos {

GateSession MpkSharedStackGate::EnterImpl(Machine& machine,
                                      const GateCrossing& crossing) {
  FLEXOS_CHECK(crossing.target_context != nullptr,
               "MPK gate needs a target context");
  ++machine.stats().gate_crossings;
  GateSession session{.caller = machine.context()};

  // Entry: scrub caller-saved registers, then WRPKRU into the target
  // domain. The ExecContext swap carries the instrumentation flags.
  machine.clock().Charge(machine.costs().register_clear);
  machine.context() = *crossing.target_context;
  machine.Wrpkru(crossing.target_context->pkru);
  return session;
}

void MpkSharedStackGate::ExitImpl(Machine& machine, const GateCrossing& crossing,
                              const GateSession& session) {
  (void)crossing;
  // Exit: WRPKRU back and clear registers again (no data may leak).
  machine.clock().Charge(machine.costs().register_clear);
  machine.context() = session.caller;
  machine.Wrpkru(session.caller.pkru);
}

GateSession MpkSwitchedStackGate::EnterImpl(Machine& machine,
                                        const GateCrossing& crossing) {
  FLEXOS_CHECK(crossing.target_context != nullptr,
               "MPK gate needs a target context");
  ++machine.stats().gate_crossings;
  GateSession session{.caller = machine.context()};

  // Entry: scrub registers, switch to the target compartment's stack, copy
  // by-value arguments onto it, then WRPKRU.
  machine.clock().Charge(machine.costs().register_clear);
  machine.clock().Charge(machine.costs().stack_switch);
  if (crossing.arg_bytes > 0) {
    machine.ChargeMemOp(crossing.arg_bytes);
  }
  machine.context() = *crossing.target_context;
  machine.Wrpkru(crossing.target_context->pkru);
  return session;
}

void MpkSwitchedStackGate::ExitImpl(Machine& machine,
                                const GateCrossing& crossing,
                                const GateSession& session) {
  // Exit: copy the return value back, switch stacks, WRPKRU, scrub.
  if (crossing.ret_bytes > 0) {
    machine.ChargeMemOp(crossing.ret_bytes);
  }
  machine.clock().Charge(machine.costs().stack_switch);
  machine.clock().Charge(machine.costs().register_clear);
  machine.context() = session.caller;
  machine.Wrpkru(session.caller.pkru);
}

void MpkSwitchedStackGate::ChargeBatchItem(Machine& machine,
                                           uint64_t arg_bytes,
                                           uint64_t ret_bytes) {
  // Batched items still copy their payloads to/from the target stack; the
  // stack switch and PKRU writes were paid once at Enter/Exit.
  machine.clock().Charge(machine.costs().direct_call);
  if (arg_bytes > 0) {
    machine.ChargeMemOp(arg_bytes);
  }
  if (ret_bytes > 0) {
    machine.ChargeMemOp(ret_bytes);
  }
}

}  // namespace flexos
