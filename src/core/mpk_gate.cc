#include "core/mpk_gate.h"

#include "support/panic.h"

namespace flexos {

void MpkSharedStackGate::Cross(Machine& machine, const GateCrossing& crossing,
                               const std::function<void()>& body) {
  FLEXOS_CHECK(crossing.target_context != nullptr,
               "MPK gate needs a target context");
  ++machine.stats().gate_crossings;
  const ExecContext caller = machine.context();

  // Entry: scrub caller-saved registers, then WRPKRU into the target
  // domain. The ExecContext swap carries the instrumentation flags.
  machine.clock().Charge(machine.costs().register_clear);
  ExecContext target = *crossing.target_context;
  machine.context() = target;
  machine.Wrpkru(target.pkru);

  body();

  // Exit: WRPKRU back and clear registers again (no data may leak).
  machine.clock().Charge(machine.costs().register_clear);
  machine.context() = caller;
  machine.Wrpkru(caller.pkru);
}

void MpkSwitchedStackGate::Cross(Machine& machine,
                                 const GateCrossing& crossing,
                                 const std::function<void()>& body) {
  FLEXOS_CHECK(crossing.target_context != nullptr,
               "MPK gate needs a target context");
  ++machine.stats().gate_crossings;
  const ExecContext caller = machine.context();

  // Entry: scrub registers, switch to the target compartment's stack, copy
  // by-value arguments onto it, then WRPKRU.
  machine.clock().Charge(machine.costs().register_clear);
  machine.clock().Charge(machine.costs().stack_switch);
  if (crossing.arg_bytes > 0) {
    machine.ChargeMemOp(crossing.arg_bytes);
  }
  ExecContext target = *crossing.target_context;
  machine.context() = target;
  machine.Wrpkru(target.pkru);

  body();

  // Exit: copy the return value back, switch stacks, WRPKRU, scrub.
  if (crossing.ret_bytes > 0) {
    machine.ChargeMemOp(crossing.ret_bytes);
  }
  machine.clock().Charge(machine.costs().stack_switch);
  machine.clock().Charge(machine.costs().register_clear);
  machine.context() = caller;
  machine.Wrpkru(caller.pkru);
}

}  // namespace flexos
