#include "core/coloring.h"

#include <algorithm>

#include "support/panic.h"

namespace flexos {
namespace {

std::vector<std::vector<bool>> BuildAdjacency(
    int n, const std::vector<std::pair<int, int>>& edges) {
  std::vector<std::vector<bool>> adj(n, std::vector<bool>(n, false));
  for (const auto& [a, b] : edges) {
    FLEXOS_CHECK(a >= 0 && a < n && b >= 0 && b < n, "edge out of range");
    if (a != b) {
      adj[a][b] = true;
      adj[b][a] = true;
    }
  }
  return adj;
}

// Branch-and-bound minimum coloring.
class ExactColorer {
 public:
  ExactColorer(int n, const std::vector<std::vector<bool>>& adj)
      : n_(n), adj_(adj), color_of_(n, -1) {}

  ColoringResult Solve(const ColoringResult& upper_bound) {
    best_ = upper_bound;
    // Order vertices by degree (descending) to fail fast.
    order_.resize(n_);
    for (int i = 0; i < n_; ++i) {
      order_[i] = i;
    }
    std::vector<int> degree(n_, 0);
    for (int i = 0; i < n_; ++i) {
      for (int j = 0; j < n_; ++j) {
        if (adj_[i][j]) {
          ++degree[i];
        }
      }
    }
    std::sort(order_.begin(), order_.end(),
              [&](int a, int b) { return degree[a] > degree[b]; });
    Branch(0, 0);
    return best_;
  }

 private:
  void Branch(int index, int colors_used) {
    if (colors_used >= best_.num_colors) {
      return;  // Cannot beat the incumbent.
    }
    if (index == n_) {
      best_.num_colors = colors_used;
      best_.color_of = color_of_;
      // Re-map to the DSATUR order? Not needed: color_of_ indexed by vertex.
      return;
    }
    const int v = order_[index];
    // Try existing colors, then (at most) one fresh color — trying more
    // than one fresh color only explores symmetric duplicates.
    const int limit = std::min(colors_used + 1, best_.num_colors - 1);
    for (int c = 0; c < limit; ++c) {
      bool feasible = true;
      for (int u = 0; u < n_; ++u) {
        if (adj_[v][u] && color_of_[u] == c) {
          feasible = false;
          break;
        }
      }
      if (!feasible) {
        continue;
      }
      color_of_[v] = c;
      Branch(index + 1, std::max(colors_used, c + 1));
      color_of_[v] = -1;
    }
  }

  int n_;
  const std::vector<std::vector<bool>>& adj_;
  std::vector<int> color_of_;
  std::vector<int> order_;
  ColoringResult best_;
};

}  // namespace

ColoringResult ColorGraphDsatur(
    int num_vertices, const std::vector<std::pair<int, int>>& edges) {
  ColoringResult result;
  result.color_of.assign(num_vertices, -1);
  if (num_vertices == 0) {
    return result;
  }
  const auto adj = BuildAdjacency(num_vertices, edges);

  std::vector<int> degree(num_vertices, 0);
  for (int v = 0; v < num_vertices; ++v) {
    for (int u = 0; u < num_vertices; ++u) {
      if (adj[v][u]) {
        ++degree[v];
      }
    }
  }
  // saturation[v] = set of neighbor colors, tracked as a bitset in a u64
  // (plenty: compartments are few).
  std::vector<uint64_t> saturation(num_vertices, 0);

  for (int step = 0; step < num_vertices; ++step) {
    // Pick the uncolored vertex with max saturation, tie-break max degree.
    int pick = -1;
    int pick_sat = -1;
    for (int v = 0; v < num_vertices; ++v) {
      if (result.color_of[v] != -1) {
        continue;
      }
      const int sat = __builtin_popcountll(saturation[v]);
      if (sat > pick_sat ||
          (sat == pick_sat && (pick == -1 || degree[v] > degree[pick]))) {
        pick = v;
        pick_sat = sat;
      }
    }
    // Lowest color absent from the neighborhood.
    int color = 0;
    while ((saturation[pick] >> color) & 1) {
      ++color;
    }
    result.color_of[pick] = color;
    result.num_colors = std::max(result.num_colors, color + 1);
    for (int u = 0; u < num_vertices; ++u) {
      if (adj[pick][u]) {
        saturation[u] |= uint64_t{1} << color;
      }
    }
  }
  return result;
}

ColoringResult ColorGraphExact(
    int num_vertices, const std::vector<std::pair<int, int>>& edges) {
  ColoringResult upper = ColorGraphDsatur(num_vertices, edges);
  if (num_vertices == 0 || upper.num_colors <= 1) {
    return upper;  // Trivially optimal.
  }
  const auto adj = BuildAdjacency(num_vertices, edges);
  ExactColorer colorer(num_vertices, adj);
  ColoringResult result = colorer.Solve(upper);
  FLEXOS_CHECK(IsProperColoring(result, edges), "exact coloring not proper");
  return result;
}

bool IsProperColoring(const ColoringResult& coloring,
                      const std::vector<std::pair<int, int>>& edges) {
  for (const auto& [a, b] : edges) {
    if (a < 0 || b < 0 ||
        static_cast<size_t>(a) >= coloring.color_of.size() ||
        static_cast<size_t>(b) >= coloring.color_of.size()) {
      return false;
    }
    if (coloring.color_of[a] == coloring.color_of[b] ||
        coloring.color_of[a] < 0 || coloring.color_of[b] < 0) {
      return false;
    }
  }
  return true;
}

}  // namespace flexos
