#include "core/image.h"

#include <algorithm>
#include <new>
#include <type_traits>

#include "core/gate_costs.h"
#include "core/mpk_gate.h"
#include "core/vm_gate.h"
#include "fault/fault.h"
#include "hw/trap.h"
#include "obs/names.h"
#include "support/strings.h"

namespace flexos {

namespace {

// Opaque per-batch state parked in GateBatch's session storage: the gate
// session plus the cycles the batch's Enter half cost, so BatchExit can
// record one amortized entry+exit latency sample for the whole batch. The
// gate/backend pair is pinned at BatchEnter so a backend swap landing
// mid-batch (deferred until the batch drains) can never tear the
// entry/exit pairing.
struct BatchState {
  GateSession session;
  uint64_t entry_cycles = 0;
  Gate* gate = nullptr;
  std::string_view backend;
  BoundaryRuntime* boundary = nullptr;
};

}  // namespace

// Tracks one crossing through its boundary's gate; when the last in-flight
// crossing drains (normal exit or TrapException unwind), a deferred
// backend swap is applied.
class Image::InflightGuard {
 public:
  InflightGuard(Image& image, BoundaryRuntime& b) : image_(image), b_(b) {
    ++b_.inflight;
  }
  ~InflightGuard() {
    if (--b_.inflight == 0 && b_.has_pending) {
      b_.has_pending = false;
      ++image_.deferred_swaps_applied_;
      image_.ApplyBoundaryBackend(b_, b_.pending);
    }
  }

  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

 private:
  Image& image_;
  BoundaryRuntime& b_;
};

std::string_view IsolationBackendName(IsolationBackend backend) {
  switch (backend) {
    case IsolationBackend::kNone:
      return "none";
    case IsolationBackend::kMpkSharedStack:
      return "mpk-shared";
    case IsolationBackend::kMpkSwitchedStack:
      return "mpk-switched";
    case IsolationBackend::kVmRpc:
      return "vm-rpc";
  }
  return "?";
}

Image::Image(Machine& machine, IsolationBackend backend)
    : machine_(machine), backend_(backend) {
  // The platform context is trusted and unrestricted (boot CPU state).
  platform_exec_ = ExecContext{};
  platform_exec_.compartment = -1;
}

Image::~Image() = default;

Image::LibRuntime& Image::LibOf(std::string_view name) {
  auto it = libs_.find(name);
  FLEXOS_CHECK(it != libs_.end(), "library '%s' is not part of this image",
               std::string(name).c_str());
  return it->second;
}

const Image::LibRuntime* Image::FindLib(std::string_view name) const {
  auto it = libs_.find(name);
  return it == libs_.end() ? nullptr : &it->second;
}

int Image::CompartmentOf(std::string_view lib) const {
  if (lib == kLibPlatform) {
    return -1;
  }
  const LibRuntime* runtime = FindLib(lib);
  FLEXOS_CHECK(runtime != nullptr, "library '%s' is not part of this image",
               std::string(lib).c_str());
  return runtime->compartment;
}

CompartmentRuntime& Image::compartment(int id) {
  FLEXOS_CHECK(id >= 0 && id < compartment_count(), "bad compartment id %d",
               id);
  return comps_[static_cast<size_t>(id)];
}

const CompartmentRuntime& Image::compartment(int id) const {
  FLEXOS_CHECK(id >= 0 && id < compartment_count(), "bad compartment id %d",
               id);
  return comps_[static_cast<size_t>(id)];
}

AddressSpace& Image::SpaceOf(std::string_view lib) {
  if (lib == kLibPlatform) {
    return *spaces_.front();
  }
  return *compartment(CompartmentOf(lib)).space;
}

Allocator& Image::AllocatorOf(std::string_view lib) {
  return registry_.For(CompartmentOf(lib));
}

Allocator& Image::shared_allocator() {
  FLEXOS_CHECK(shared_allocator_ != nullptr, "image has no shared region");
  return *shared_allocator_;
}

bool Image::IsHardened(std::string_view lib) const {
  const LibRuntime* runtime = FindLib(lib);
  return runtime != nullptr && runtime->hardened;
}

std::vector<std::string> Image::LibraryNames() const {
  std::vector<std::string> names;
  names.reserve(libs_.size());
  for (const auto& [name, runtime] : libs_) {
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool Image::IsCfiEnforced(std::string_view lib) const {
  const LibRuntime* runtime = FindLib(lib);
  return runtime != nullptr && runtime->cfi_enforced;
}

std::vector<std::string> Image::RegisteredApi(std::string_view lib) const {
  const LibRuntime* runtime = FindLib(lib);
  if (runtime == nullptr) {
    return {};
  }
  return std::vector<std::string>(runtime->api.begin(), runtime->api.end());
}

void Image::EnableDispatchValidation(
    std::set<std::string, std::less<>> allowed) {
  validate_dispatch_ = true;
  allowed_dispatch_pairs_ = std::move(allowed);
}

void Image::DisableDispatchValidation() {
  validate_dispatch_ = false;
  allowed_dispatch_pairs_.clear();
}

void Image::ValidateDispatch(std::string_view from, std::string_view to) {
  if (from == kLibPlatform || to == kLibPlatform || from == to) {
    return;
  }
  ++validated_dispatches_;
  const std::string key = std::string(from) + "->" + std::string(to);
  if (allowed_dispatch_pairs_.count(key) != 0) {
    return;
  }
  ++machine_.stats().traps;
  RaiseTrap(TrapInfo{
      .kind = TrapKind::kCfiViolation,
      .detail = StrFormat(
          "cross-compartment dispatch %s not in the lint-derived "
          "allowed-call set (metadata drift: declare the call in %s's "
          "[Call] list or co-locate the libraries)",
          key.c_str(), std::string(from).c_str())});
}

void Image::CallLeaf(std::string_view from, std::string_view to,
                     FunctionRef<void()> body) {
  (void)from;
  ++stats_.leaf_calls;
  machine_.clock().Charge(machine_.costs().direct_call);
  if (to == kLibPlatform) {
    body();
    return;
  }
  const LibRuntime& target = LibOf(to);
  // Caller's protection domain, target's instrumentation.
  ExecContext leaf = machine_.context();
  if (target.hardened) {
    machine_.clock().Charge(machine_.costs().sh_call_overhead);
    leaf.mem_cost_multiplier = machine_.costs().sh_mem_multiplier;
    leaf.shadow_checks = true;
  } else {
    leaf.mem_cost_multiplier = 1.0;
    leaf.shadow_checks = false;
  }
  ScopedExecContext scope(machine_, leaf);
  body();
}

RouteHandle Image::Resolve(std::string_view from, std::string_view to) {
  RouteHandle route;
  route.from = from;
  route.to = to;
  // Under the VM backend, replicated libraries are local to every VM: the
  // call never leaves the caller's VM (paper §3: each VM image carries its
  // own platform code, allocator, and scheduler). Mirrors Call(): the
  // source library is not consulted on this path.
  if (backend_ == IsolationBackend::kVmRpc &&
      vm_replicated_libs_.count(to) != 0) {
    route.vm_local = true;
    if (to == kLibPlatform) {
      route.to_platform = true;
    } else {
      const LibRuntime& target = LibOf(to);
      route.target_exec = &target.exec;
      route.to_comp = target.compartment;
      route.hardened = target.hardened;
    }
    return route;
  }

  route.from_comp = CompartmentOf(from);
  if (to == kLibPlatform) {
    route.target_exec = &platform_exec_;
    route.to_comp = -1;
    route.to_platform = true;
  } else {
    const LibRuntime& target = LibOf(to);
    route.target_exec = &target.exec;
    route.to_comp = target.compartment;
    route.hardened = target.hardened;
  }
  route.cross = route.from_comp != route.to_comp;
  if (route.cross) {
    BoundaryRuntime& b = BoundaryFor(route.from_comp, route.to_comp);
    route.boundary = &b;
    route.obs = &b.recorder;
    route.gate = &GateForBackend(b.backend);
    route.epoch = route_epoch_;
  } else {
    route.gate = &direct_gate_;
  }
  return route;
}

BoundaryRuntime& Image::BoundaryFor(int from_comp, int to_comp) {
  auto it = boundaries_.find({from_comp, to_comp});
  if (it == boundaries_.end()) {
    BoundaryRuntime b;
    b.from_comp = from_comp;
    b.to_comp = to_comp;
    b.backend = backend_;
    it = boundaries_.emplace(std::make_pair(from_comp, to_comp),
                             std::move(b))
             .first;
    BindRecorder(it->second);
  }
  return it->second;
}

void Image::BindRecorder(BoundaryRuntime& b) {
  const std::string_view backend = IsolationBackendName(b.backend);
  obs::MetricsRegistry& metrics = machine_.metrics();
  b.recorder.crossings = &metrics.GetCounter(
      obs::GateMetricName("crossings", backend, b.from_comp, b.to_comp));
  b.recorder.batched = &metrics.GetCounter(
      obs::GateMetricName("batched", backend, b.from_comp, b.to_comp));
  b.recorder.bytes = &metrics.GetCounter(
      obs::GateMetricName("bytes", backend, b.from_comp, b.to_comp));
  b.recorder.latency_ns = &metrics.GetHistogram(
      obs::GateMetricName("latency_ns", backend, b.from_comp, b.to_comp));
  if (machine_.vcpu_count() > 1) {
    // Per-vCPU crossing split. The ".v<id>" suffix adds a fifth dot-field
    // after "gate.", which ParseGateMetricName rejects — so generic
    // boundary collection (flexstat tables, flexbench rows) never double
    // counts these.
    for (int v = 0; v < machine_.vcpu_count(); ++v) {
      b.recorder.vcpu_crossings[v] = &metrics.GetCounter(
          obs::GateMetricName("crossings", backend, b.from_comp, b.to_comp) +
          ".v" + std::to_string(v));
    }
  }
}

Gate& Image::GateForBackend(IsolationBackend backend) {
  if (backend == IsolationBackend::kNone) {
    return direct_gate_;
  }
  if (backend == backend_ && gate_ != nullptr) {
    // The builder's gate: object identity preserved so pre-adapt behavior
    // (and pointer-compared baselines) is bit-for-bit unchanged.
    return *gate_;
  }
  std::unique_ptr<Gate>& slot = gate_pool_[static_cast<size_t>(backend)];
  if (slot == nullptr) {
    switch (backend) {
      case IsolationBackend::kMpkSharedStack:
        slot = std::make_unique<MpkSharedStackGate>();
        break;
      case IsolationBackend::kMpkSwitchedStack:
        slot = std::make_unique<MpkSwitchedStackGate>();
        break;
      case IsolationBackend::kVmRpc:
        slot = std::make_unique<VmRpcGate>();
        break;
      case IsolationBackend::kNone:
        return direct_gate_;
    }
  }
  return *slot;
}

IsolationBackend Image::BoundaryBackend(int from_comp, int to_comp) const {
  const auto it = boundaries_.find({from_comp, to_comp});
  return it != boundaries_.end() ? it->second.backend : backend_;
}

IsolationBackend Image::EffectiveBackend(const RouteHandle& route) const {
  // route.boundary stays valid across swaps (node-stable map), so even a
  // stale-epoch handle reads the boundary's current backend.
  if (route.boundary != nullptr) {
    return route.boundary->backend;
  }
  return BoundaryBackend(route.from_comp, route.to_comp);
}

bool Image::SetBoundaryBackend(int from_comp, int to_comp,
                               IsolationBackend target) {
  FLEXOS_CHECK(from_comp >= -1 && from_comp < compartment_count() &&
                   to_comp >= -1 && to_comp < compartment_count(),
               "SetBoundaryBackend: bad boundary %d -> %d", from_comp,
               to_comp);
  BoundaryRuntime& b = BoundaryFor(from_comp, to_comp);
  if (b.inflight > 0) {
    // Crossings are mid-gate (coop threads suspend inside bodies): drain on
    // the old backend, swap when the last one exits.
    b.pending = target;
    b.has_pending = true;
    return false;
  }
  b.has_pending = false;
  ApplyBoundaryBackend(b, target);
  return true;
}

void Image::ApplyBoundaryBackend(BoundaryRuntime& b,
                                 IsolationBackend target) {
  if (b.backend == target) {
    return;
  }
  // The one-time re-placement cost (pkey re-program / ring setup) lands on
  // the clock, not in the gate latency histograms — realized per-crossing
  // cost under the new backend stays directly comparable to the
  // prediction.
  machine_.clock().Charge(
      TransitionCycles(machine_.costs(), b.backend, target));
  b.backend = target;
  BindRecorder(b);
  ++route_epoch_;
}

void Image::Call(std::string_view from, std::string_view to,
                 FunctionRef<void()> body) {
  Call(Resolve(from, to), body);
}

void Image::Call(const RouteHandle& route, FunctionRef<void()> body) {
  if (route.cross && route.epoch != route_epoch_) {
    // The handle predates a backend swap: re-resolve by names and dispatch
    // through the boundary's current gate (the flexadapt route-cache flush
    // contract, DESIGN.md §16).
    ++route_reresolves_;
    Call(Resolve(route.from, route.to), body);
    return;
  }
  if (route.vm_local) {
    CallLeaf(route, body);
    return;
  }
  if (route.hardened) {
    machine_.clock().Charge(machine_.costs().sh_call_overhead);
  }
  if (!route.cross) {
    // Same protection domain: a direct call (still swaps instrumentation
    // flags so per-library SH composes within one compartment).
    ++stats_.same_compartment_calls;
    GateCrossing crossing{.target_context = route.target_exec};
    obs::Attributor& attrib = machine_.attrib();
    if (attrib.enabled()) {
      attrib.PushFrame(route.to, route.to_comp, machine_.clock().cycles());
      direct_gate_.Cross(machine_, crossing, body);
      attrib.PopFrame(machine_.clock().cycles());
    } else {
      direct_gate_.Cross(machine_, crossing, body);
    }
    return;
  }

  if (validate_dispatch_) {
    ValidateDispatch(route.from, route.to);
  }
  if (machine_.injector().armed(fault::FaultSite::kGateCross)) {
    MaybeInjectGateFault(route);
  }
  ++stats_.cross_compartment_calls;
  BoundaryRuntime& boundary =
      route.boundary != nullptr
          ? *route.boundary
          : BoundaryFor(route.from_comp, route.to_comp);
  const obs::BoundaryRecorder* recorder = &boundary.recorder;
  recorder->crossings->Add();
  if (recorder->vcpu_crossings[0] != nullptr) {
    recorder->vcpu_crossings[machine_.current_vcpu()]->Add();
  }
  recorder->bytes->Add(kGateArgBytes + kGateRetBytes);
  GateCrossing crossing{.target_context = route.target_exec,
                        .arg_bytes = kGateArgBytes,
                        .ret_bytes = kGateRetBytes};
  Gate* gate = route.gate != nullptr ? route.gate : &direct_gate_;
  // Holds any swap requested while this crossing is inside the gate until
  // it (and every other in-flight crossing) drains — even via trap unwind.
  InflightGuard inflight(*this, boundary);
  // Enter/body/Exit inlined (vs gate->Cross) so the latency histogram can
  // capture the gate's own overhead — entry half + exit half, in modeled
  // cycles — while excluding the body. The attributor frames mirror that
  // split exactly: gate halves charge gate:<backend>, the body charges the
  // target compartment, and the caller's frame resumes after Exit.
  // machine_.clock() is re-read at each step, not cached: the body may
  // block and resume on a different vCPU, and each overhead half must be
  // measured as a delta on whichever vCPU clock ran it.
  obs::Attributor& attrib = machine_.attrib();
  const bool profiling = attrib.enabled();
  const std::string_view backend = IsolationBackendName(boundary.backend);
  const uint64_t t0 = machine_.clock().cycles();
  if (profiling) {
    attrib.PushGateFrame(backend, t0);
  }
  const GateSession session = gate->Enter(machine_, crossing);
  // Enter never blocks, so this delta stays on the entry vCPU's clock.
  const uint64_t entry_cycles = machine_.clock().cycles() - t0;
  if (profiling) {
    attrib.PopFrame(machine_.clock().cycles());
    attrib.PushFrame(route.to, route.to_comp, machine_.clock().cycles());
  }
  body();
  const uint64_t t1 = machine_.clock().cycles();
  if (profiling) {
    attrib.PopFrame(t1);
    attrib.PushGateFrame(backend, t1);
  }
  gate->Exit(machine_, crossing, session);
  const uint64_t overhead_ns = machine_.clock().CyclesToNanos(
      entry_cycles + (machine_.clock().cycles() - t1));
  recorder->latency_ns->Record(overhead_ns);
  if (profiling) {
    attrib.PopFrame(machine_.clock().cycles());
    attrib.OnGateCrossing(backend, route.from_comp, route.to_comp,
                          overhead_ns);
  }
}

void Image::CallLeaf(const RouteHandle& route, FunctionRef<void()> body) {
  ++stats_.leaf_calls;
  machine_.clock().Charge(machine_.costs().direct_call);
  if (route.to_platform) {
    body();
    return;
  }
  ExecContext leaf = machine_.context();
  if (route.hardened) {
    machine_.clock().Charge(machine_.costs().sh_call_overhead);
    leaf.mem_cost_multiplier = machine_.costs().sh_mem_multiplier;
    leaf.shadow_checks = true;
  } else {
    leaf.mem_cost_multiplier = 1.0;
    leaf.shadow_checks = false;
  }
  ScopedExecContext scope(machine_, leaf);
  body();
}

void Image::BatchEnter(const RouteHandle& route, GateBatch& batch) {
  static_assert(sizeof(BatchState) <= GateBatch::kSessionBytes,
                "BatchState must fit the batch's opaque storage");
  static_assert(std::is_trivially_destructible_v<BatchState>,
                "BatchExit does not run a BatchState destructor");
  FLEXOS_CHECK(route.cross && route.gate != nullptr && !route.vm_local,
               "GateBatch needs a resolved cross-compartment route");
  if (validate_dispatch_) {
    ValidateDispatch(route.from, route.to);
  }
  if (machine_.injector().armed(fault::FaultSite::kGateCross)) {
    MaybeInjectGateFault(route);
  }
  ++stats_.cross_compartment_calls;
  BoundaryRuntime& boundary =
      route.boundary != nullptr
          ? *route.boundary
          : BoundaryFor(route.from_comp, route.to_comp);
  if (route.epoch != route_epoch_) {
    // Stale handle: the batch transparently runs on the boundary's current
    // backend (gate and attribution name are taken from the boundary, not
    // the handle, below).
    ++route_reresolves_;
  }
  // Pin the gate/backend for the batch's whole lifetime; a swap requested
  // mid-batch defers until BatchExit drains the in-flight count.
  Gate* gate = &GateForBackend(boundary.backend);
  const std::string_view backend = IsolationBackendName(boundary.backend);
  boundary.recorder.crossings->Add();
  if (boundary.recorder.vcpu_crossings[0] != nullptr) {
    boundary.recorder.vcpu_crossings[machine_.current_vcpu()]->Add();
  }
  // Notification-only entry: the batch opens the boundary with no argument
  // payload; each item marshals its own (ChargeBatchItem).
  GateCrossing entry{.target_context = route.target_exec};
  obs::Attributor& attrib = machine_.attrib();
  const bool profiling = attrib.enabled();
  const uint64_t t0 = machine_.clock().cycles();
  if (profiling) {
    attrib.PushGateFrame(backend, t0);
  }
  ++boundary.inflight;
  GateSession session = gate->Enter(machine_, entry);
  auto* state = new (batch.session()) BatchState{};
  state->session = session;
  state->entry_cycles = machine_.clock().cycles() - t0;
  state->gate = gate;
  state->backend = backend;
  state->boundary = &boundary;
  if (profiling) {
    attrib.PopFrame(machine_.clock().cycles());
  }
  // Caller code keeps running between items under its own context; the
  // restore is free — the modeled domain stays open for the batch.
  machine_.context() = session.caller;
}

void Image::BatchItem(const RouteHandle& route, GateBatch& batch,
                      FunctionRef<void()> body) {
  const auto* state = static_cast<const BatchState*>(batch.session());
  const obs::BoundaryRecorder* recorder = &state->boundary->recorder;
  recorder->batched->Add();
  recorder->bytes->Add(kGateArgBytes + kGateRetBytes);
  if (route.hardened) {
    machine_.clock().Charge(machine_.costs().sh_call_overhead);
  }
  // Per-item payload marshalling, priced by the open gate (no entry/exit,
  // no PKRU writes, no VM notifications). Charged under the caller's
  // context, where the item is queued.
  obs::Attributor& attrib = machine_.attrib();
  const bool profiling = attrib.enabled();
  if (profiling) {
    attrib.PushGateFrame(state->backend, machine_.clock().cycles());
  }
  state->gate->ChargeBatchItem(machine_, kGateArgBytes, kGateRetBytes);
  if (profiling) {
    attrib.PopFrame(machine_.clock().cycles());
    attrib.PushFrame(route.to, route.to_comp, machine_.clock().cycles());
  }
  machine_.context() = *route.target_exec;
  body();
  machine_.context() = state->session.caller;
  if (profiling) {
    attrib.PopFrame(machine_.clock().cycles());
  }
}

void Image::BatchExit(const RouteHandle& route, GateBatch& batch) {
  const auto* state = static_cast<const BatchState*>(batch.session());
  // Notification-only exit: return payloads were charged per item.
  GateCrossing exit{.target_context = route.target_exec};
  obs::Attributor& attrib = machine_.attrib();
  const bool profiling = attrib.enabled();
  const std::string_view backend = state->backend;
  const uint64_t t0 = machine_.clock().cycles();
  if (profiling) {
    attrib.PushGateFrame(backend, t0);
  }
  state->gate->Exit(machine_, exit, state->session);
  // One latency sample per batched crossing: the amortized entry+exit
  // overhead the batch paid for all of its items.
  const obs::BoundaryRecorder* recorder = &state->boundary->recorder;
  const uint64_t overhead_ns = machine_.clock().CyclesToNanos(
      state->entry_cycles + (machine_.clock().cycles() - t0));
  recorder->latency_ns->Record(overhead_ns);
  if (profiling) {
    attrib.PopFrame(machine_.clock().cycles());
    attrib.OnGateCrossing(backend, route.from_comp, route.to_comp,
                          overhead_ns);
  }
  BoundaryRuntime& boundary = *state->boundary;
  if (--boundary.inflight == 0 && boundary.has_pending) {
    boundary.has_pending = false;
    ++deferred_swaps_applied_;
    ApplyBoundaryBackend(boundary, boundary.pending);
  }
}

void Image::MaybeInjectGateFault(const RouteHandle& route) {
  const auto decision =
      machine_.injector().Check(fault::FaultSite::kGateCross, route.to_comp);
  if (!decision.has_value()) {
    return;
  }
  switch (decision->kind) {
    case fault::FaultKind::kProtectionFault:
      ++machine_.stats().traps;
      RaiseTrap(TrapInfo{
          .kind = TrapKind::kProtectionFault,
          .access = AccessKind::kWrite,
          .pkru = machine_.context().pkru.raw(),
          .detail = StrFormat("injected protection fault crossing into "
                              "compartment %d",
                              route.to_comp)});
    case fault::FaultKind::kPageFault:
      ++machine_.stats().traps;
      RaiseTrap(TrapInfo{
          .kind = TrapKind::kPageFault,
          .detail = StrFormat("injected page fault crossing into "
                              "compartment %d",
                              route.to_comp)});
    case fault::FaultKind::kHeapCorruption:
      ++machine_.stats().traps;
      RaiseTrap(TrapInfo{
          .kind = TrapKind::kAsanViolation,
          .detail = StrFormat("injected heap corruption surfacing at the "
                              "gate into compartment %d",
                              route.to_comp)});
    case fault::FaultKind::kRpcTimeout: {
      // The RPC stalls for the timeout window before the caller gives up:
      // charge the wait, then deliver the timeout as a containable trap.
      const uint64_t wait_ns = decision->arg != 0 ? decision->arg : 1'000'000;
      machine_.clock().Charge(machine_.clock().NanosToCycles(wait_ns));
      ++machine_.stats().traps;
      RaiseTrap(TrapInfo{
          .kind = TrapKind::kRpcTimeout,
          .detail = StrFormat("injected vm-rpc timeout (%llu ns) crossing "
                              "into compartment %d",
                              static_cast<unsigned long long>(wait_ns),
                              route.to_comp)});
    }
    default:
      // Absorb-class kinds have no gate-site effect; the injector already
      // counted them as dropped.
      break;
  }
}

void Image::RegisterApiContract(std::string_view lib, std::string_view func,
                                std::function<bool()> precondition,
                                std::string description) {
  contracts_[std::string(lib) + "::" + std::string(func)] =
      ApiContract{std::move(precondition), std::move(description)};
}

void Image::CallNamed(std::string_view from, std::string_view to,
                      std::string_view func, FunctionRef<void()> body) {
  // API contract wrappers: included only across trust-domain boundaries
  // (paper §5) — within one compartment the caller is trusted and the
  // check is compiled out.
  const auto contract_it =
      contracts_.find(std::string(to) + "::" + std::string(func));
  if (contract_it != contracts_.end()) {
    if (CompartmentOf(from) != CompartmentOf(to)) {
      ++contract_checks_run_;
      machine_.clock().Charge(machine_.costs().sh_call_overhead);
      if (!contract_it->second.precondition()) {
        ++machine_.stats().traps;
        RaiseTrap(TrapInfo{
            .kind = TrapKind::kContractViolation,
            .detail = StrFormat(
                "API contract on %s::%s violated by %s: %s",
                std::string(to).c_str(), std::string(func).c_str(),
                std::string(from).c_str(),
                contract_it->second.description.c_str())});
      }
    } else {
      ++contract_checks_skipped_;
    }
  }
  if (to != kLibPlatform) {
    const LibRuntime& target = LibOf(to);
    if (target.cfi_enforced) {
      ++stats_.cfi_checks;
      machine_.clock().Charge(machine_.costs().sh_call_overhead);
      if (target.api.count(func) == 0) {
        ++machine_.stats().traps;
        RaiseTrap(TrapInfo{
            .kind = TrapKind::kCfiViolation,
            .detail = StrFormat(
                "call %s -> %s::%s outside the declared entry points",
                std::string(from).c_str(), std::string(to).c_str(),
                std::string(func).c_str())});
      }
    }
  }
  Call(from, to, body);
}

Status Image::TryCall(std::string_view from, std::string_view to,
                      FunctionRef<void()> body) {
  return TryCall(Resolve(from, to), body);
}

Status Image::TryCall(const RouteHandle& route, FunctionRef<void()> body) {
  if (fault_handler_ == nullptr || !IsIsolatingBoundary(route)) {
    // Unsupervised, or a boundary with no containment story (trusted
    // function call, VM-local leaf): behave exactly like Call.
    Call(route, body);
    return Status::Ok();
  }
  FLEXOS_RETURN_IF_ERROR(fault_handler_->Admit(route.to_comp));
  obs::Attributor& attrib = machine_.attrib();
  const ExecContext saved = machine_.context();
  const size_t depth = attrib.frame_depth();
  try {
    Call(route, body);
  } catch (const TrapException& trap) {
    // The gate never ran its Exit half: restore the caller's context and
    // unwind the attributor frames the aborted call pushed, then let the
    // handler decide what the caller sees. Nested unsupervised Calls
    // unwound to here too — containment happens at the outermost
    // supervised boundary, like a real fault delivered to the monitor.
    machine_.context() = saved;
    attrib.UnwindFramesTo(depth, machine_.clock().cycles());
    return fault_handler_->OnTrap(route.from_comp, route.to_comp,
                                  trap.info());
  }
  return Status::Ok();
}

Status Image::ResetCompartmentHeap(int comp) {
  if (comp < 0 || comp >= compartment_count()) {
    return Status(ErrorCode::kInvalidArgument,
                  StrFormat("bad compartment id %d", comp));
  }
  if (!registry_.HasDedicated(comp)) {
    return Status(ErrorCode::kFailedPrecondition,
                  StrFormat("compartment %d shares a global allocator; "
                            "per-compartment reset would destroy other "
                            "compartments' state",
                            comp));
  }
  return registry_.For(comp).Reset();
}

std::string Image::Describe() const {
  std::string out = StrFormat("image backend=%s compartments=%d\n",
                              std::string(IsolationBackendName(backend_)).c_str(),
                              compartment_count());
  for (const CompartmentRuntime& comp : comps_) {
    out += "  " + comp.ToString() + "\n";
  }
  return out;
}

const ImageStats& Image::stats() const {
  // Refresh the per-boundary view from the registry-backed recorders; the
  // scalar members are maintained in place. Returning a long-lived
  // reference keeps range-for over stats().crossings valid (C++20 range
  // initializers don't extend the lifetime of a by-value return).
  for (const auto& [boundary, runtime] : boundaries_) {
    BoundaryStats& view = stats_.crossings[boundary];
    view.crossings = runtime.recorder.crossings->value();
    view.batched = runtime.recorder.batched->value();
    view.bytes = runtime.recorder.bytes->value();
  }
  return stats_;
}

std::string Image::DescribeCrossings() const {
  std::string out;
  for (const auto& [boundary, counters] : stats().crossings) {
    out += StrFormat(
        "  boundary %d -> %d: crossings=%llu batched=%llu bytes=%llu\n",
        boundary.first, boundary.second,
        static_cast<unsigned long long>(counters.crossings),
        static_cast<unsigned long long>(counters.batched),
        static_cast<unsigned long long>(counters.bytes));
  }
  return out;
}

}  // namespace flexos
