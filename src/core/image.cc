#include "core/image.h"

#include "hw/trap.h"
#include "support/strings.h"

namespace flexos {

std::string_view IsolationBackendName(IsolationBackend backend) {
  switch (backend) {
    case IsolationBackend::kNone:
      return "none";
    case IsolationBackend::kMpkSharedStack:
      return "mpk-shared";
    case IsolationBackend::kMpkSwitchedStack:
      return "mpk-switched";
    case IsolationBackend::kVmRpc:
      return "vm-rpc";
  }
  return "?";
}

Image::Image(Machine& machine, IsolationBackend backend)
    : machine_(machine), backend_(backend) {
  // The platform context is trusted and unrestricted (boot CPU state).
  platform_exec_ = ExecContext{};
  platform_exec_.compartment = -1;
}

Image::~Image() = default;

Image::LibRuntime& Image::LibOf(std::string_view name) {
  auto it = libs_.find(std::string(name));
  FLEXOS_CHECK(it != libs_.end(), "library '%s' is not part of this image",
               std::string(name).c_str());
  return it->second;
}

const Image::LibRuntime* Image::FindLib(std::string_view name) const {
  auto it = libs_.find(std::string(name));
  return it == libs_.end() ? nullptr : &it->second;
}

int Image::CompartmentOf(std::string_view lib) const {
  if (lib == kLibPlatform) {
    return -1;
  }
  const LibRuntime* runtime = FindLib(lib);
  FLEXOS_CHECK(runtime != nullptr, "library '%s' is not part of this image",
               std::string(lib).c_str());
  return runtime->compartment;
}

CompartmentRuntime& Image::compartment(int id) {
  FLEXOS_CHECK(id >= 0 && id < compartment_count(), "bad compartment id %d",
               id);
  return comps_[static_cast<size_t>(id)];
}

const CompartmentRuntime& Image::compartment(int id) const {
  FLEXOS_CHECK(id >= 0 && id < compartment_count(), "bad compartment id %d",
               id);
  return comps_[static_cast<size_t>(id)];
}

AddressSpace& Image::SpaceOf(std::string_view lib) {
  if (lib == kLibPlatform) {
    return *spaces_.front();
  }
  return *compartment(CompartmentOf(lib)).space;
}

Allocator& Image::AllocatorOf(std::string_view lib) {
  return registry_.For(CompartmentOf(lib));
}

Allocator& Image::shared_allocator() {
  FLEXOS_CHECK(shared_allocator_ != nullptr, "image has no shared region");
  return *shared_allocator_;
}

bool Image::IsHardened(std::string_view lib) const {
  const LibRuntime* runtime = FindLib(lib);
  return runtime != nullptr && runtime->hardened;
}

void Image::CallLeaf(std::string_view from, std::string_view to,
                     const std::function<void()>& body) {
  (void)from;
  ++stats_.leaf_calls;
  machine_.clock().Charge(machine_.costs().direct_call);
  if (to == kLibPlatform) {
    body();
    return;
  }
  const LibRuntime& target = LibOf(to);
  // Caller's protection domain, target's instrumentation.
  ExecContext leaf = machine_.context();
  if (target.hardened) {
    machine_.clock().Charge(machine_.costs().sh_call_overhead);
    leaf.mem_cost_multiplier = machine_.costs().sh_mem_multiplier;
    leaf.shadow_checks = true;
  } else {
    leaf.mem_cost_multiplier = 1.0;
    leaf.shadow_checks = false;
  }
  ScopedExecContext scope(machine_, leaf);
  body();
}

void Image::Call(std::string_view from, std::string_view to,
                 const std::function<void()>& body) {
  // Under the VM backend, replicated libraries are local to every VM: the
  // call never leaves the caller's VM (paper §3: each VM image carries its
  // own platform code, allocator, and scheduler).
  if (backend_ == IsolationBackend::kVmRpc &&
      vm_replicated_libs_.count(std::string(to)) != 0) {
    CallLeaf(from, to, body);
    return;
  }
  const int from_comp = CompartmentOf(from);

  const ExecContext* target_exec;
  int to_comp;
  if (to == kLibPlatform) {
    target_exec = &platform_exec_;
    to_comp = -1;
  } else {
    const LibRuntime& target = LibOf(to);
    target_exec = &target.exec;
    to_comp = target.compartment;
    if (target.hardened) {
      machine_.clock().Charge(machine_.costs().sh_call_overhead);
    }
  }

  if (from_comp == to_comp && backend_ != IsolationBackend::kVmRpc) {
    // Same protection domain: a direct call (still swaps instrumentation
    // flags so per-library SH composes within one compartment).
    ++stats_.same_compartment_calls;
    GateCrossing crossing{.target_context = target_exec};
    direct_gate_.Cross(machine_, crossing, body);
    return;
  }
  if (from_comp == to_comp) {
    // VM backend, same VM.
    ++stats_.same_compartment_calls;
    GateCrossing crossing{.target_context = target_exec};
    direct_gate_.Cross(machine_, crossing, body);
    return;
  }

  ++stats_.cross_compartment_calls;
  ++stats_.crossings[{from_comp, to_comp}];
  // Default by-value argument footprint of a gate call: a few registers
  // spilled per the ABI (switched-stack/VM gates charge the copy).
  GateCrossing crossing{
      .target_context = target_exec, .arg_bytes = 64, .ret_bytes = 16};
  Gate* gate = gate_ != nullptr ? gate_.get() : &direct_gate_;
  gate->Cross(machine_, crossing, body);
}

void Image::RegisterApiContract(std::string_view lib, std::string_view func,
                                std::function<bool()> precondition,
                                std::string description) {
  contracts_[std::string(lib) + "::" + std::string(func)] =
      ApiContract{std::move(precondition), std::move(description)};
}

void Image::CallNamed(std::string_view from, std::string_view to,
                      std::string_view func,
                      const std::function<void()>& body) {
  // API contract wrappers: included only across trust-domain boundaries
  // (paper §5) — within one compartment the caller is trusted and the
  // check is compiled out.
  const auto contract_it =
      contracts_.find(std::string(to) + "::" + std::string(func));
  if (contract_it != contracts_.end()) {
    if (CompartmentOf(from) != CompartmentOf(to)) {
      ++contract_checks_run_;
      machine_.clock().Charge(machine_.costs().sh_call_overhead);
      if (!contract_it->second.precondition()) {
        ++machine_.stats().traps;
        RaiseTrap(TrapInfo{
            .kind = TrapKind::kContractViolation,
            .detail = StrFormat(
                "API contract on %s::%s violated by %s: %s",
                std::string(to).c_str(), std::string(func).c_str(),
                std::string(from).c_str(),
                contract_it->second.description.c_str())});
      }
    } else {
      ++contract_checks_skipped_;
    }
  }
  if (to != kLibPlatform) {
    const LibRuntime& target = LibOf(to);
    if (target.cfi_enforced) {
      ++stats_.cfi_checks;
      machine_.clock().Charge(machine_.costs().sh_call_overhead);
      if (target.api.count(std::string(func)) == 0) {
        ++machine_.stats().traps;
        RaiseTrap(TrapInfo{
            .kind = TrapKind::kCfiViolation,
            .detail = StrFormat(
                "call %s -> %s::%s outside the declared entry points",
                std::string(from).c_str(), std::string(to).c_str(),
                std::string(func).c_str())});
      }
    }
  }
  Call(from, to, body);
}

std::string Image::Describe() const {
  std::string out = StrFormat("image backend=%s compartments=%d\n",
                              std::string(IsolationBackendName(backend_)).c_str(),
                              compartment_count());
  for (const CompartmentRuntime& comp : comps_) {
    out += "  " + comp.ToString() + "\n";
  }
  return out;
}

}  // namespace flexos
