// Design-space exploration (paper §2). The two strategies the paper
// sketches:
//   1. "Given a performance target ... find the combination of isolation
//      primitives that maximizes security within a certain performance
//      budget."
//   2. "Given a set of safety requirements ... find a compliant
//      instantiation that yields the best performance."
//
// The explorer enumerates SH-variant deployments (core/sh_transform.h)
// crossed with isolation backends, prices each with an analytic cost model
// driven by a workload profile, scores security, and filters/ranks.
#ifndef FLEXOS_CORE_EXPLORER_H_
#define FLEXOS_CORE_EXPLORER_H_

#include <optional>
#include <string>
#include <vector>

#include "core/image.h"
#include "core/sh_transform.h"
#include "hw/cost_model.h"

namespace flexos {

// Per-operation workload characteristics (e.g. one request of the target
// app), used to price a configuration analytically before building it.
struct WorkloadProfile {
  // Cross-library calls per operation that would cross a compartment
  // boundary if the involved libraries are separated.
  uint64_t cross_lib_calls_per_op = 12;
  // Bulk bytes moved per operation by each library (indexed like the
  // library vector). Hardened libraries pay the SH multiplier on these.
  std::vector<uint64_t> memop_bytes_per_op;
  // Allocations per operation (instrumented malloc tax when hardened).
  uint64_t allocs_per_op = 2;
  // Baseline compute per operation.
  uint64_t base_cycles_per_op = 6000;
};

struct CandidateConfig {
  Deployment deployment;
  IsolationBackend backend;

  std::string Describe(const std::vector<std::string>& lib_names) const;
};

struct ConfigEstimate {
  double cycles_per_op = 0;
  // Heuristic security score: boundaries broken + hardened coverage +
  // backend strength. Higher is safer.
  double security_score = 0;
};

// Cycle cost of one crossing of `backend`'s gate (entry + exit).
double GateRoundTripCycles(IsolationBackend backend, const CostModel& costs);

ConfigEstimate EstimateConfig(const CandidateConfig& config,
                              const WorkloadProfile& profile,
                              const CostModel& costs);

struct ExplorationQuery {
  // Strategy 1: keep only configurations within this budget, rank by
  // security (descending). Unset => strategy 2: rank by performance.
  std::optional<double> max_cycles_per_op;
  // Safety floor: every library whose (possibly transformed) behavior
  // still writes arbitrary memory must be alone in its compartment.
  bool require_unsafe_isolated = true;
};

struct RankedConfig {
  CandidateConfig config;
  ConfigEstimate estimate;
};

// Enumerates deployments x backends, prices, filters, and ranks.
std::vector<RankedConfig> ExploreDesignSpace(
    const std::vector<LibraryMeta>& libs, const ShAnalysis& analysis,
    const std::vector<IsolationBackend>& backends,
    const WorkloadProfile& profile, const CostModel& costs,
    const ExplorationQuery& query);

}  // namespace flexos

#endif  // FLEXOS_CORE_EXPLORER_H_
