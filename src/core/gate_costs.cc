#include "core/gate_costs.h"

namespace flexos {

uint64_t PredictedCrossingCycles(const CostModel& costs,
                                 IsolationBackend backend,
                                 uint64_t arg_bytes, uint64_t ret_bytes,
                                 bool cross_vcpu) {
  switch (backend) {
    case IsolationBackend::kNone:
      // DirectGate: Enter charges the near call, Exit charges nothing.
      return costs.direct_call;
    case IsolationBackend::kMpkSharedStack:
      // Scrub + WRPKRU per half; arguments stay on the shared stack.
      return 2 * (costs.register_clear + costs.wrpkru);
    case IsolationBackend::kMpkSwitchedStack:
      // Per half: scrub, stack switch, payload copy onto the target stack,
      // WRPKRU (args in, returns out).
      return 2 * (costs.register_clear + costs.stack_switch + costs.wrpkru) +
             costs.CopyCycles(arg_bytes) + costs.CopyCycles(ret_bytes);
    case IsolationBackend::kVmRpc: {
      // Per half: marshal the payload into the ring, exit + notify +
      // re-entry. A cross-vCPU target adds the remote wakeup IPI each way.
      uint64_t cycles = costs.CopyCycles(arg_bytes) +
                        costs.CopyCycles(ret_bytes) +
                        2 * (2 * costs.vmexit + costs.vm_notify);
      if (cross_vcpu) {
        cycles += 2 * costs.ipi;
      }
      return cycles;
    }
  }
  return 0;
}

uint64_t TransitionCycles(const CostModel& costs, IsolationBackend from,
                          IsolationBackend to) {
  if (from == to) {
    return 0;
  }
  const auto is_mpk = [](IsolationBackend b) {
    return b == IsolationBackend::kMpkSharedStack ||
           b == IsolationBackend::kMpkSwitchedStack;
  };
  uint64_t cycles = 0;
  if (is_mpk(from) || is_mpk(to)) {
    cycles += costs.adapt_mpk_reprogram;
  }
  if (from == IsolationBackend::kVmRpc || to == IsolationBackend::kVmRpc) {
    cycles += costs.adapt_vm_setup;
  }
  return cycles;
}

bool IsolationBackendFromName(std::string_view name, IsolationBackend* out) {
  if (name == "none") {
    *out = IsolationBackend::kNone;
  } else if (name == "mpk-shared") {
    *out = IsolationBackend::kMpkSharedStack;
  } else if (name == "mpk-switched") {
    *out = IsolationBackend::kMpkSwitchedStack;
  } else if (name == "vm-rpc") {
    *out = IsolationBackend::kVmRpc;
  } else {
    return false;
  }
  return true;
}

}  // namespace flexos
