// Intel MPK gate backends (paper §3, "Intel MPK Backend"). Both flavors
// write PKRU on entry and exit (modeled via Machine::Wrpkru, which the
// protection checks in vmem/ actually honor).
//
//   Shared-stack (ERIM-like): heap/static memory isolated, thread stacks
//   live in a domain shared by all compartments; crossing scrubs
//   caller-saved registers but keeps the stack.
//
//   Switched-stack (HODOR-like): stacks are per-compartment too; crossing
//   switches stacks and copies by-value arguments to the target stack,
//   with shared stack data promoted to a shared heap.
#ifndef FLEXOS_CORE_MPK_GATE_H_
#define FLEXOS_CORE_MPK_GATE_H_

#include "core/gate.h"

namespace flexos {

class MpkSharedStackGate final : public Gate {
 public:
  GateKind kind() const override { return GateKind::kMpkSharedStack; }

 protected:
  GateSession EnterImpl(Machine& machine,
                        const GateCrossing& crossing) override;
  void ExitImpl(Machine& machine, const GateCrossing& crossing,
                const GateSession& session) override;
};

class MpkSwitchedStackGate final : public Gate {
 public:
  GateKind kind() const override { return GateKind::kMpkSwitchedStack; }

  void ChargeBatchItem(Machine& machine, uint64_t arg_bytes,
                       uint64_t ret_bytes) override;

 protected:
  GateSession EnterImpl(Machine& machine,
                        const GateCrossing& crossing) override;
  void ExitImpl(Machine& machine, const GateCrossing& crossing,
                const GateSession& session) override;
};

}  // namespace flexos

#endif  // FLEXOS_CORE_MPK_GATE_H_
