#include "core/config_parser.h"

#include <cstdlib>

#include "core/compat.h"
#include "core/gate_costs.h"
#include "core/metadata.h"
#include "obs/names.h"
#include "support/strings.h"

namespace flexos {
namespace {

Status LineError(int line, const std::string& message) {
  return Status(ErrorCode::kInvalidArgument,
                StrFormat("line %d: %s", line, message.c_str()));
}

// Parses "48M", "64K", "1G", or plain bytes.
Result<uint64_t> ParseByteSize(std::string_view text, int line) {
  if (text.empty()) {
    return LineError(line, "empty size");
  }
  uint64_t multiplier = 1;
  char suffix = text.back();
  if (suffix == 'K' || suffix == 'k') {
    multiplier = 1ull << 10;
  } else if (suffix == 'M' || suffix == 'm') {
    multiplier = 1ull << 20;
  } else if (suffix == 'G' || suffix == 'g') {
    multiplier = 1ull << 30;
  }
  if (multiplier != 1) {
    text.remove_suffix(1);
  }
  const std::optional<uint64_t> value = ParseU64(text);
  if (!value.has_value()) {
    return LineError(line, "bad size: " + std::string(text));
  }
  if (*value > UINT64_MAX / multiplier) {
    return LineError(line, "size overflows");
  }
  return *value * multiplier;
}

// Parses "0.25" and friends; rejects trailing junk and negatives.
std::optional<double> ParseFraction(std::string_view text) {
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end == copy.c_str() || *end != '\0' || value < 0) {
    return std::nullopt;
  }
  return value;
}

// "c3" -> 3, "platform" -> -1 (the adapt-allow compartment spelling matches
// obs::CompartmentLabel).
std::optional<int> ParseCompartmentLabel(std::string_view text) {
  if (text == "platform") {
    return -1;
  }
  if (text.size() < 2 || text[0] != 'c') {
    return std::nullopt;
  }
  const std::optional<uint64_t> id = ParseU64(text.substr(1));
  if (!id.has_value() || *id > 1000) {
    return std::nullopt;
  }
  return static_cast<int>(*id);
}

}  // namespace

Result<ImageConfig> ParseImageConfig(const std::string& text) {
  ImageConfig config;
  config.compartments.clear();
  bool backend_set = false;

  int line_number = 0;
  for (std::string_view raw_line : SplitString(text, '\n')) {
    ++line_number;
    // Strip comments and whitespace.
    const size_t hash = raw_line.find('#');
    if (hash != std::string_view::npos) {
      raw_line = raw_line.substr(0, hash);
    }
    const std::string_view line = TrimWhitespace(raw_line);
    if (line.empty()) {
      continue;
    }

    // "key = value" directives. slo lines carry '<=' / '>=' comparators,
    // so they must reach the directive parser before this split eats the
    // '='.
    const bool is_slo = line == "slo" || line.substr(0, 4) == "slo ";
    const size_t eq = is_slo ? std::string_view::npos : line.find('=');
    if (eq != std::string_view::npos) {
      const std::string_view key = TrimWhitespace(line.substr(0, eq));
      const std::string_view value = TrimWhitespace(line.substr(eq + 1));
      if (key == "backend") {
        if (value == "none") {
          config.backend = IsolationBackend::kNone;
        } else if (value == "mpk-shared") {
          config.backend = IsolationBackend::kMpkSharedStack;
        } else if (value == "mpk-switched") {
          config.backend = IsolationBackend::kMpkSwitchedStack;
        } else if (value == "vm-rpc") {
          config.backend = IsolationBackend::kVmRpc;
        } else {
          return LineError(line_number,
                           "unknown backend: " + std::string(value));
        }
        backend_set = true;
      } else if (key == "allocators") {
        if (value == "per-compartment") {
          config.per_compartment_allocators = true;
        } else if (value == "global") {
          config.per_compartment_allocators = false;
        } else {
          return LineError(line_number,
                           "unknown allocator policy: " + std::string(value));
        }
      } else if (key == "heap") {
        if (value == "freelist") {
          config.heap_kind = HeapKind::kFreelist;
        } else if (value == "buddy") {
          config.heap_kind = HeapKind::kBuddy;
        } else {
          return LineError(line_number,
                           "unknown heap kind: " + std::string(value));
        }
      } else if (key == "compat") {
        if (value == "strict") {
          config.strict_compat = true;
        } else if (value == "off") {
          config.strict_compat = false;
        } else {
          return LineError(line_number,
                           "unknown compat mode: " + std::string(value));
        }
      } else if (key == "heap_bytes") {
        FLEXOS_ASSIGN_OR_RETURN(config.heap_bytes_per_compartment,
                                ParseByteSize(value, line_number));
      } else if (key == "shared_bytes") {
        FLEXOS_ASSIGN_OR_RETURN(config.shared_bytes,
                                ParseByteSize(value, line_number));
      } else if (key == "vcpus") {
        const std::optional<uint64_t> count = ParseU64(value);
        if (!count.has_value() || *count < 1 ||
            *count > static_cast<uint64_t>(kMaxVCpus)) {
          return LineError(line_number,
                           StrFormat("vcpus must be in [1, %d]", kMaxVCpus));
        }
        config.vcpus = static_cast<int>(*count);
      } else if (key == "window_cycles") {
        FLEXOS_ASSIGN_OR_RETURN(config.window_cycles,
                                ParseByteSize(value, line_number));
        if (config.window_cycles == 0) {
          return LineError(line_number, "window_cycles must be > 0");
        }
      } else {
        return LineError(line_number, "unknown key: " + std::string(key));
      }
      continue;
    }

    // "directive arg..." forms.
    const auto words = SplitAndTrim(line, ' ');
    const std::string_view directive = words[0];
    if (directive == "compartment") {
      if (words.size() < 2) {
        return LineError(line_number, "compartment needs members");
      }
      std::vector<std::string> members;
      for (size_t i = 1; i < words.size(); ++i) {
        members.emplace_back(words[i]);
      }
      config.compartments.push_back(std::move(members));
    } else if (directive == "harden") {
      if (words.size() < 2) {
        return LineError(line_number, "harden needs library names");
      }
      for (size_t i = 1; i < words.size(); ++i) {
        config.hardened_libs.insert(std::string(words[i]));
      }
    } else if (directive == "cfi") {
      if (words.size() < 2) {
        return LineError(line_number, "cfi needs library names");
      }
      for (size_t i = 1; i < words.size(); ++i) {
        config.cfi_libs.insert(std::string(words[i]));
      }
    } else if (directive == "restart_hook") {
      if (words.size() < 2) {
        return LineError(line_number, "restart_hook needs library names");
      }
      for (size_t i = 1; i < words.size(); ++i) {
        config.restart_hook_libs.insert(std::string(words[i]));
      }
    } else if (directive == "pin") {
      // "pin <lib> <vcpu>" — compartment-to-vCPU affinity, by member.
      if (words.size() != 3) {
        return LineError(line_number, "pin needs a library and a vcpu id");
      }
      const std::optional<uint64_t> vcpu = ParseU64(words[2]);
      if (!vcpu.has_value() || *vcpu >= static_cast<uint64_t>(kMaxVCpus)) {
        return LineError(line_number,
                         "bad pin vcpu: " + std::string(words[2]));
      }
      const std::string lib(words[1]);
      const auto [it, inserted] =
          config.pins.emplace(lib, static_cast<int>(*vcpu));
      if (!inserted && it->second != static_cast<int>(*vcpu)) {
        return LineError(line_number,
                         "conflicting pin for library: " + lib);
      }
    } else if (directive == "reentrant") {
      if (words.size() < 2) {
        return LineError(line_number, "reentrant needs library names");
      }
      for (size_t i = 1; i < words.size(); ++i) {
        config.reentrant_libs.insert(std::string(words[i]));
      }
    } else if (directive == "api") {
      // "api <lib> <func>..." — CFI entry points.
      if (words.size() < 3) {
        return LineError(line_number, "api needs a library and functions");
      }
      auto& funcs = config.apis[std::string(words[1])];
      for (size_t i = 2; i < words.size(); ++i) {
        funcs.insert(std::string(words[i]));
      }
    } else if (directive == "slo") {
      // "slo <pattern> <stat> <op> <value>" — flexwatch watchdog.
      std::string joined;
      for (size_t i = 1; i < words.size(); ++i) {
        if (!joined.empty()) {
          joined += ' ';
        }
        joined += words[i];
      }
      obs::SloSpec spec;
      std::string error;
      if (!obs::ParseSloSpec(joined, &spec, &error)) {
        return LineError(line_number, "bad slo: " + error);
      }
      config.slos.push_back(std::move(spec));
    } else if (directive == "adapt") {
      // flexadapt policy directives (DESIGN.md §16), word form:
      //   adapt on|off
      //   adapt cooldown <windows> | min_crossings <n> | max_flaps <n>
      //   adapt demote_share <frac> | min_delta <frac>
      //   adapt allow <cX|platform> <cY|platform> <backend>
      if (words.size() < 2) {
        return LineError(line_number, "adapt needs a subdirective");
      }
      const std::string_view sub = words[1];
      if (sub == "on" || sub == "off") {
        if (words.size() != 2) {
          return LineError(line_number, "adapt on/off takes no arguments");
        }
        config.adapt.enabled = (sub == "on");
      } else if (sub == "cooldown" || sub == "min_crossings" ||
                 sub == "max_flaps") {
        if (words.size() != 3) {
          return LineError(line_number,
                           "adapt " + std::string(sub) + " needs one value");
        }
        const std::optional<uint64_t> value = ParseU64(words[2]);
        if (!value.has_value()) {
          return LineError(line_number, "bad adapt " + std::string(sub) +
                                            ": " + std::string(words[2]));
        }
        if (sub == "cooldown") {
          config.adapt.cooldown_windows = static_cast<int>(*value);
        } else if (sub == "min_crossings") {
          config.adapt.min_crossings = *value;
        } else {
          config.adapt.max_flaps = static_cast<int>(*value);
        }
      } else if (sub == "demote_share" || sub == "min_delta") {
        if (words.size() != 3) {
          return LineError(line_number,
                           "adapt " + std::string(sub) + " needs one value");
        }
        const std::optional<double> value = ParseFraction(words[2]);
        if (!value.has_value() || *value > 1.0) {
          return LineError(line_number,
                           "adapt " + std::string(sub) +
                               " needs a fraction in [0, 1], got " +
                               std::string(words[2]));
        }
        if (sub == "demote_share") {
          config.adapt.demote_share = *value;
        } else {
          config.adapt.min_delta_frac = *value;
        }
      } else if (sub == "allow") {
        if (words.size() != 5) {
          return LineError(
              line_number,
              "adapt allow needs <from> <to> <backend> (e.g. c0 c1 "
              "mpk-shared)");
        }
        AdaptAllowRule rule;
        const std::optional<int> from = ParseCompartmentLabel(words[2]);
        const std::optional<int> to = ParseCompartmentLabel(words[3]);
        if (!from.has_value() || !to.has_value()) {
          return LineError(line_number,
                           "adapt allow compartments must be cN or platform");
        }
        rule.from = *from;
        rule.to = *to;
        if (!IsolationBackendFromName(words[4], &rule.target)) {
          return LineError(line_number, "unknown adapt allow backend: " +
                                            std::string(words[4]));
        }
        config.adapt.allow.push_back(rule);
      } else {
        return LineError(line_number,
                         "unknown adapt subdirective: " + std::string(sub));
      }
    } else {
      return LineError(line_number,
                       "unknown directive: " + std::string(directive));
    }
  }

  if (config.compartments.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "config declares no compartments");
  }
  for (const auto& [lib, vcpu] : config.pins) {
    if (vcpu >= config.vcpus) {
      return Status(ErrorCode::kInvalidArgument,
                    StrFormat("pin %s %d exceeds vcpus = %d", lib.c_str(),
                              vcpu, config.vcpus));
    }
    bool member = false;
    for (const auto& group : config.compartments) {
      for (const std::string& name : group) {
        if (name == lib) {
          member = true;
        }
      }
    }
    if (!member) {
      return Status(ErrorCode::kInvalidArgument,
                    "pin names a library in no compartment: " + lib);
    }
  }
  // A compartment is the placement unit: all of its pinned members must
  // agree on the vCPU.
  for (const auto& group : config.compartments) {
    int pinned = -1;
    std::string pinned_lib;
    for (const std::string& lib : group) {
      const auto it = config.pins.find(lib);
      if (it == config.pins.end()) {
        continue;
      }
      if (pinned >= 0 && it->second != pinned) {
        return Status(
            ErrorCode::kInvalidArgument,
            StrFormat("compartment pins disagree: %s -> %d but %s -> %d",
                      pinned_lib.c_str(), pinned, lib.c_str(), it->second));
      }
      pinned = it->second;
      pinned_lib = lib;
    }
  }
  if (!backend_set && config.compartments.size() > 1) {
    return Status(ErrorCode::kInvalidArgument,
                  "multiple compartments but no isolation backend");
  }
  if (config.strict_compat) {
    FLEXOS_RETURN_IF_ERROR(CheckConfigCompat(config));
  }
  return config;
}

Status CheckConfigCompat(const ImageConfig& config) {
  std::vector<std::string> violations;
  for (size_t c = 0; c < config.compartments.size(); ++c) {
    const auto& group = config.compartments[c];
    std::vector<LibraryMeta> metas;
    for (const std::string& lib : group) {
      std::optional<LibraryMeta> meta = BuiltinLibraryMeta(lib);
      if (meta.has_value()) {
        metas.push_back(*std::move(meta));
      }
    }
    for (size_t i = 0; i < metas.size(); ++i) {
      for (size_t j = 0; j < metas.size(); ++j) {
        if (i == j) {
          continue;
        }
        const CompatVerdict verdict = SatisfiesRequires(metas[i], metas[j]);
        for (const std::string& violation : verdict.violations) {
          violations.push_back(
              StrFormat("compartment %d: %s", static_cast<int>(c),
                        violation.c_str()));
        }
      }
    }
  }
  if (violations.empty()) {
    return Status::Ok();
  }
  return Status(ErrorCode::kFailedPrecondition,
                "incompatible cohabitation: " + JoinStrings(violations, "; "));
}

std::string ImageConfigToString(const ImageConfig& config) {
  std::string out;
  out += "backend = ";
  out += IsolationBackendName(config.backend);
  out += '\n';
  for (const auto& group : config.compartments) {
    out += "compartment";
    for (const std::string& lib : group) {
      out += ' ';
      out += lib;
    }
    out += '\n';
  }
  if (!config.hardened_libs.empty()) {
    out += "harden";
    for (const std::string& lib : config.hardened_libs) {
      out += ' ';
      out += lib;
    }
    out += '\n';
  }
  if (!config.cfi_libs.empty()) {
    out += "cfi";
    for (const std::string& lib : config.cfi_libs) {
      out += ' ';
      out += lib;
    }
    out += '\n';
  }
  for (const auto& [lib, funcs] : config.apis) {
    out += "api " + lib;
    for (const std::string& func : funcs) {
      out += ' ';
      out += func;
    }
    out += '\n';
  }
  if (!config.restart_hook_libs.empty()) {
    out += "restart_hook";
    for (const std::string& lib : config.restart_hook_libs) {
      out += ' ';
      out += lib;
    }
    out += '\n';
  }
  if (config.vcpus != 1) {
    out += StrFormat("vcpus = %d\n", config.vcpus);
  }
  for (const auto& [lib, vcpu] : config.pins) {
    out += StrFormat("pin %s %d\n", lib.c_str(), vcpu);
  }
  if (!config.reentrant_libs.empty()) {
    out += "reentrant";
    for (const std::string& lib : config.reentrant_libs) {
      out += ' ';
      out += lib;
    }
    out += '\n';
  }
  if (config.strict_compat) {
    out += "compat = strict\n";
  }
  if (config.window_cycles != 0) {
    out += StrFormat("window_cycles = %llu\n",
                     static_cast<unsigned long long>(config.window_cycles));
  }
  for (const obs::SloSpec& spec : config.slos) {
    out += "slo " + obs::SloSpecToString(spec) + '\n';
  }
  {
    const AdaptConfig defaults;
    if (config.adapt.enabled) {
      out += "adapt on\n";
    }
    if (config.adapt.cooldown_windows != defaults.cooldown_windows) {
      out += StrFormat("adapt cooldown %d\n", config.adapt.cooldown_windows);
    }
    if (config.adapt.min_crossings != defaults.min_crossings) {
      out += StrFormat(
          "adapt min_crossings %llu\n",
          static_cast<unsigned long long>(config.adapt.min_crossings));
    }
    if (config.adapt.max_flaps != defaults.max_flaps) {
      out += StrFormat("adapt max_flaps %d\n", config.adapt.max_flaps);
    }
    if (config.adapt.demote_share != defaults.demote_share) {
      out += StrFormat("adapt demote_share %g\n", config.adapt.demote_share);
    }
    if (config.adapt.min_delta_frac != defaults.min_delta_frac) {
      out += StrFormat("adapt min_delta %g\n", config.adapt.min_delta_frac);
    }
    for (const AdaptAllowRule& rule : config.adapt.allow) {
      out += StrFormat("adapt allow %s %s %s\n",
                       obs::CompartmentLabel(rule.from).c_str(),
                       obs::CompartmentLabel(rule.to).c_str(),
                       std::string(IsolationBackendName(rule.target)).c_str());
    }
  }
  out += StrFormat("allocators = %s\n", config.per_compartment_allocators
                                            ? "per-compartment"
                                            : "global");
  out += StrFormat("heap = %s\n", config.heap_kind == HeapKind::kFreelist
                                      ? "freelist"
                                      : "buddy");
  out += StrFormat("heap_bytes = %llu\n",
                   static_cast<unsigned long long>(
                       config.heap_bytes_per_compartment));
  out += StrFormat("shared_bytes = %llu\n",
                   static_cast<unsigned long long>(config.shared_bytes));
  return out;
}

}  // namespace flexos
