// Image: an instantiated FlexOS kernel. Holds the compartments, their
// address spaces, allocators, and the gate that implements every
// cross-compartment boundary. Implements GateRouter, so it IS the seam the
// substrate libraries call through — the builder "replacing the call gate
// placeholders with the relevant code" at runtime instead of link time.
#ifndef FLEXOS_CORE_IMAGE_H_
#define FLEXOS_CORE_IMAGE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "alloc/allocator_registry.h"
#include "core/compartment.h"
#include "core/gate.h"
#include "obs/metrics.h"
#include "support/gate_router.h"

namespace flexos {

namespace fault {
class FaultDomainHandler;
}  // namespace fault

enum class IsolationBackend : uint8_t {
  kNone,              // Single protection domain, direct calls.
  kMpkSharedStack,    // MPK, ERIM-style shared stacks.
  kMpkSwitchedStack,  // MPK, HODOR-style per-compartment stacks.
  kVmRpc,             // One VM per compartment, RPC gates.
};

std::string_view IsolationBackendName(IsolationBackend backend);

// Default by-value payload of a gate call: a few registers spilled per the
// ABI (switched-stack/VM gates charge the copies).
inline constexpr uint64_t kGateArgBytes = 64;
inline constexpr uint64_t kGateRetBytes = 16;

// Traffic accounting for one (from-compartment, to-compartment) boundary.
// Since PR 3 this is a read-only VIEW: the live counters are
// gate.{crossings,batched,bytes}.* in the machine's MetricsRegistry
// (obs/names.h); Image::stats() refreshes the view from the registry.
struct BoundaryStats {
  uint64_t crossings = 0;  // Gate entry/exit pairs (one per batch entry).
  uint64_t batched = 0;    // Bodies executed inside batched crossings.
  uint64_t bytes = 0;      // Marshalled argument + return payload bytes.
};

struct ImageStats {
  uint64_t same_compartment_calls = 0;
  uint64_t cross_compartment_calls = 0;
  uint64_t leaf_calls = 0;
  // Per-boundary crossing counters, keyed by (from, to) compartment ids.
  std::map<std::pair<int, int>, BoundaryStats> crossings;
  uint64_t cfi_checks = 0;
};

// Per-(from, to) boundary runtime state. Since flexadapt (DESIGN.md §16)
// each boundary carries its *own* backend — initialized to the image-wide
// backend at first resolve, re-placed live by Image::SetBoundaryBackend.
// Nodes live in a std::map inside the image, so pointers parked in
// RouteHandles stay valid across later inserts and backend swaps.
struct BoundaryRuntime {
  int from_comp = -1;
  int to_comp = -1;
  IsolationBackend backend = IsolationBackend::kNone;
  // Registry-backed metric recorder, re-pointed in place on a backend swap
  // so post-swap crossings land under the new backend's metric names while
  // every outstanding RouteHandle::obs keeps working.
  obs::BoundaryRecorder recorder;
  // Crossings currently inside this boundary's gate (coop threads can
  // suspend mid-crossing). A swap requested while nonzero is deferred and
  // applied when the last in-flight call drains.
  int inflight = 0;
  bool has_pending = false;
  IsolationBackend pending = IsolationBackend::kNone;
};

class Image final : public GateRouter {
 public:
  Image(Machine& machine, IsolationBackend backend);
  ~Image() override;

  Image(const Image&) = delete;
  Image& operator=(const Image&) = delete;

  Machine& machine() { return machine_; }
  const Machine& machine() const { return machine_; }
  IsolationBackend backend() const { return backend_; }

  // --- GateRouter --------------------------------------------------------

  // Routes a cross-library call through the configured gate. Unknown
  // library names panic: an image must know its members (a mis-built
  // image, not a runtime condition).
  void Call(std::string_view from, std::string_view to,
            FunctionRef<void()> body) override;

  // Leaf-routine call: runs in the caller's protection domain with the
  // target library's instrumentation (see GateRouter::CallLeaf). Also the
  // path taken by Call() for per-VM-replicated libraries under the VM
  // backend (the paper gives every VM its own allocator/scheduler/libc).
  void CallLeaf(std::string_view from, std::string_view to,
                FunctionRef<void()> body) override;

  // --- Dispatch fast path ------------------------------------------------
  //
  // Resolve computes the route once (compartment pair, target context,
  // gate, hardening flags) against state fixed at image build; the
  // route-keyed Call/CallLeaf charge exactly what the string-keyed forms
  // charge, minus the per-call name hashing. Hot components resolve their
  // routes at construction.

  RouteHandle Resolve(std::string_view from, std::string_view to) override;

  void Call(const RouteHandle& route, FunctionRef<void()> body) override;
  void CallLeaf(const RouteHandle& route, FunctionRef<void()> body) override;

  // Batched crossings: one gate entry/exit pair for N bodies, plus
  // per-item marshalling (GateBatch drives these).
  void BatchEnter(const RouteHandle& route, GateBatch& batch) override;
  void BatchItem(const RouteHandle& route, GateBatch& batch,
                 FunctionRef<void()> body) override;
  void BatchExit(const RouteHandle& route, GateBatch& batch) override;

  // Like Call, but names the target function so per-library CFI policies
  // can be enforced: calling a function outside the target's declared API
  // raises a kCfiViolation trap when CFI is enabled for that library.
  void CallNamed(std::string_view from, std::string_view to,
                 std::string_view func, FunctionRef<void()> body);

  // --- Fault containment (DESIGN.md §11) ---------------------------------
  //
  // With a handler installed, TryCall on an *isolating* boundary (a real
  // mpk/vm gate — not a trusted direct call, not a VM-local leaf) becomes a
  // supervised dispatch: the handler gates admission, and a TrapException
  // raised inside the crossing is contained at this boundary and converted
  // into the handler's Status instead of unwinding further. Everywhere
  // else TryCall behaves exactly like Call (traps propagate — the paper's
  // threat model says a function-call boundary offers no containment).

  void SetFaultHandler(fault::FaultDomainHandler* handler) {
    fault_handler_ = handler;
  }
  fault::FaultDomainHandler* fault_handler() const { return fault_handler_; }

  // True when `route` crosses a boundary the supervisor can contain. Uses
  // the boundary's *current* backend, so a func-call boundary promoted to
  // MPK at runtime becomes containable from the swap on.
  bool IsIsolatingBoundary(const RouteHandle& route) const {
    return route.cross && !route.vm_local &&
           EffectiveBackend(route) != IsolationBackend::kNone;
  }

  // --- Runtime backend re-placement (flexadapt, DESIGN.md §16) -----------
  //
  // SetBoundaryBackend installs `target` as the (from, to) boundary's gate.
  // If the boundary has in-flight crossings the swap is deferred (returns
  // false) and applied when the last one drains; otherwise it applies
  // immediately (returns true): the transition cost is charged to the
  // clock, the boundary's metric recorder is re-pointed at the new
  // backend's names, and the route-cache epoch is bumped so every
  // outstanding RouteHandle transparently re-resolves on its next dispatch.

  bool SetBoundaryBackend(int from_comp, int to_comp,
                          IsolationBackend target);

  // The boundary's current backend (the image-wide backend until the
  // boundary is first resolved or swapped).
  IsolationBackend BoundaryBackend(int from_comp, int to_comp) const;

  // Current backend of the boundary `route` crosses.
  IsolationBackend EffectiveBackend(const RouteHandle& route) const;

  uint64_t route_epoch() const { return route_epoch_; }
  // Dispatches that found a stale epoch and re-resolved transparently.
  uint64_t route_reresolves() const { return route_reresolves_; }
  // Deferred swaps applied after their last in-flight crossing drained.
  uint64_t deferred_swaps_applied() const { return deferred_swaps_applied_; }

  Status TryCall(std::string_view from, std::string_view to,
                 FunctionRef<void()> body);
  Status TryCall(const RouteHandle& route, FunctionRef<void()> body);

  // Value-returning supervised dispatch; mirrors GateRouter::CallR.
  template <typename F>
  auto TryCallR(const RouteHandle& route, F&& body)
      -> Result<decltype(body())> {
    using T = decltype(body());
    std::optional<T> slot;
    FLEXOS_RETURN_IF_ERROR(
        TryCall(route, [&slot, &body] { slot.emplace(body()); }));
    FLEXOS_CHECK(slot.has_value(), "TryCallR body did not run");
    return *std::move(slot);
  }

  // Resets compartment `comp`'s dedicated heap to its boot state (all
  // allocations gone, accounting zeroed). kFailedPrecondition when the
  // compartment shares a global allocator — resetting it would destroy
  // other compartments' state.
  Status ResetCompartmentHeap(int comp);

  // --- API contracts (paper §5, "Isolation alone is not enough") ---------
  //
  // "If component A is together with component B in the same trust domain,
  // then checks are not necessary, but they are when component C (in
  // another domain) calls component B." The image generates the wrapper:
  // a registered precondition runs on CallNamed only when the caller sits
  // in a different compartment than the target; violations raise
  // kContractViolation.

  // `precondition` returns true when the call is legal. `description`
  // appears in the trap on violation.
  void RegisterApiContract(std::string_view lib, std::string_view func,
                           std::function<bool()> precondition,
                           std::string description);

  uint64_t contract_checks_run() const { return contract_checks_run_; }
  uint64_t contract_checks_skipped() const {
    return contract_checks_skipped_;
  }

  // --- Introspection / wiring --------------------------------------------

  int CompartmentOf(std::string_view lib) const;
  CompartmentRuntime& compartment(int id);
  const CompartmentRuntime& compartment(int id) const;
  int compartment_count() const { return static_cast<int>(comps_.size()); }

  AddressSpace& SpaceOf(std::string_view lib);
  Allocator& AllocatorOf(std::string_view lib);

  // The shared region (key 0 / mapped in every VM): base, size, and an
  // allocator for cross-compartment buffers.
  Gaddr shared_base() const { return shared_base_; }
  uint64_t shared_bytes() const { return shared_bytes_; }
  Allocator& shared_allocator();

  // Image call statistics. The per-boundary map inside is refreshed from
  // the metrics registry on each call (the registry is the single source of
  // truth; this accessor is a compatibility view). The reference stays
  // valid for the image's lifetime.
  const ImageStats& stats() const;

  // True if `lib` runs with software hardening in this image.
  bool IsHardened(std::string_view lib) const;

  // Member library names, sorted (deterministic iteration for analysis
  // passes that walk a built image).
  std::vector<std::string> LibraryNames() const;

  // True if calls into `lib` are CFI-checked against its registered API.
  bool IsCfiEnforced(std::string_view lib) const;

  // The entry points registered for `lib` at build time (config `api`
  // directives); empty when none were registered.
  std::vector<std::string> RegisteredApi(std::string_view lib) const;

  // --- Dispatch validation (flexlint's runtime counterpart) --------------
  //
  // Opt-in debug hook: every cross-compartment dispatch is checked against
  // `allowed` — "from->to" pairs, normally AllowedCallPairs() derived from
  // the same metadata flexlint lints. A dispatch outside the set raises a
  // kCfiViolation trap, turning metadata drift into a deterministic
  // failure instead of silently unaccounted crossings. Platform and
  // same-library routes are always allowed.
  void EnableDispatchValidation(std::set<std::string, std::less<>> allowed);
  void DisableDispatchValidation();
  uint64_t validated_dispatches() const { return validated_dispatches_; }

  std::string Describe() const;

  // One line per (from, to) compartment boundary with its crossing,
  // batched-body, and marshalled-byte counters; empty string when no
  // boundary was ever crossed.
  std::string DescribeCrossings() const;

 private:
  friend class ImageBuilder;

  struct LibRuntime {
    std::string name;
    int compartment = -1;
    bool hardened = false;
    ExecContext exec;  // Compartment context + SH instrumentation flags.
    bool cfi_enforced = false;
    // Allowed entry points when CFI is on (transparent comparator: lookups
    // by string_view allocate nothing).
    std::set<std::string, std::less<>> api;
  };

  // Heterogeneous string hashing so name lookups by string_view never
  // materialize a std::string.
  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view text) const {
      return std::hash<std::string_view>{}(text);
    }
  };

  LibRuntime& LibOf(std::string_view name);
  const LibRuntime* FindLib(std::string_view name) const;

  // Trap unless `from` -> `to` is in the allowed-dispatch set.
  void ValidateDispatch(std::string_view from, std::string_view to);

  // Cold path behind the injector's armed-site check: applies a gate-cross
  // fault decision (raise a trap / charge a timeout), if one fires.
  void MaybeInjectGateFault(const RouteHandle& route);

  // The gate implementing `backend`: the builder's gate when it matches the
  // image-wide backend, otherwise a lazily-built pooled instance (gates are
  // stateless and never destroyed, so pointers parked in RouteHandles and
  // open batches stay valid across swaps).
  Gate& GateForBackend(IsolationBackend backend);

  // Find-or-create the runtime state for one boundary. The returned
  // reference is stable (node-based map + node-stable registry), so Resolve
  // can park it in RouteHandle::boundary/obs.
  BoundaryRuntime& BoundaryFor(int from_comp, int to_comp);

  // (Re-)points `b.recorder` at the registry metrics named for b.backend.
  void BindRecorder(BoundaryRuntime& b);

  // Immediate half of SetBoundaryBackend: charge, re-point, bump epoch.
  void ApplyBoundaryBackend(BoundaryRuntime& b, IsolationBackend target);

  // RAII in-flight tracking for one crossing; applies a deferred swap when
  // the last crossing drains (including on TrapException unwind).
  class InflightGuard;

  Machine& machine_;
  IsolationBackend backend_;

  std::vector<std::unique_ptr<AddressSpace>> spaces_;
  std::vector<CompartmentRuntime> comps_;
  std::unordered_map<std::string, LibRuntime, StringHash, std::equal_to<>>
      libs_;
  AllocatorRegistry registry_;
  std::unique_ptr<Gate> gate_;       // Cross-compartment gate.
  DirectGate direct_gate_;           // Same-compartment calls.
  Gaddr shared_base_ = 0;
  uint64_t shared_bytes_ = 0;
  Allocator* shared_allocator_ = nullptr;
  // Libraries replicated into every VM under the kVmRpc backend; calls to
  // them never cross the VM boundary. Transparent comparator: the per-call
  // membership test takes a string_view, not a std::string temporary.
  std::set<std::string, std::less<>> vm_replicated_libs_;
  // Pseudo-context for the platform/boot "library".
  ExecContext platform_exec_;
  // Scalar call counters live here; the per-boundary map is a view
  // refreshed from boundaries_ by stats() (hence mutable — refreshing is
  // logically const).
  mutable ImageStats stats_;
  // Per-boundary runtime state (backend + registry-backed recorder), keyed
  // by (from, to) compartment ids. std::map: node-stable, so
  // RouteHandle::boundary/obs pointers survive later inserts.
  std::map<std::pair<int, int>, BoundaryRuntime> boundaries_;
  // Lazily-built gates for backends other than the builder's, indexed by
  // IsolationBackend value (runtime re-placement only; empty otherwise).
  std::unique_ptr<Gate> gate_pool_[4];
  // Bumped on every applied backend swap; RouteHandles stamped with an
  // older epoch re-resolve transparently on their next dispatch.
  uint64_t route_epoch_ = 0;
  uint64_t route_reresolves_ = 0;
  uint64_t deferred_swaps_applied_ = 0;

  struct ApiContract {
    std::function<bool()> precondition;
    std::string description;
  };
  // Keyed by "lib::func".
  std::map<std::string, ApiContract> contracts_;
  uint64_t contract_checks_run_ = 0;
  uint64_t contract_checks_skipped_ = 0;

  // Dispatch validation (debug): "from->to" pairs allowed to cross.
  bool validate_dispatch_ = false;
  std::set<std::string, std::less<>> allowed_dispatch_pairs_;
  uint64_t validated_dispatches_ = 0;

  // Fault-domain handler for supervised TryCall dispatches; nullptr (the
  // default) keeps every path trap-transparent.
  fault::FaultDomainHandler* fault_handler_ = nullptr;
};

}  // namespace flexos

#endif  // FLEXOS_CORE_IMAGE_H_
