// VM/EPT gate backend (paper §3, "VM-based Backend"): each compartment is
// its own VM image with a thin RPC layer over inter-VM notifications and a
// shared memory area mapped at an identical address in every compartment.
//
// In the deterministic single-vCPU simulation the RPC executes
// synchronously — the caller "vCPU" exits, the callee runs, the caller
// re-enters — while charging two exit/entry pairs plus notification and
// marshalling costs, which is the latency a synchronous cross-VM call pays.
#ifndef FLEXOS_CORE_VM_GATE_H_
#define FLEXOS_CORE_VM_GATE_H_

#include "core/gate.h"

namespace flexos {

class VmRpcGate final : public Gate {
 public:
  GateKind kind() const override { return GateKind::kVmRpc; }

  void ChargeBatchItem(Machine& machine, uint64_t arg_bytes,
                       uint64_t ret_bytes) override;

 protected:
  GateSession EnterImpl(Machine& machine,
                        const GateCrossing& crossing) override;
  void ExitImpl(Machine& machine, const GateCrossing& crossing,
                const GateSession& session) override;
};

}  // namespace flexos

#endif  // FLEXOS_CORE_VM_GATE_H_
