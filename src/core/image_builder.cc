#include "core/image_builder.h"

#include <unordered_set>

#include "alloc/buddy_allocator.h"
#include "alloc/freelist_heap.h"
#include "alloc/hardened_heap.h"
#include "core/mpk_gate.h"
#include "core/vm_gate.h"
#include "support/strings.h"

namespace flexos {
namespace {

constexpr Gaddr kHeapBase = 16ull << 20;  // Compartment heaps start here.
constexpr uint64_t kRegionGap = 16ull << 20;

uint64_t RoundUpPow2(uint64_t value) {
  uint64_t out = 1;
  while (out < value) {
    out <<= 1;
  }
  return out;
}

std::unique_ptr<Allocator> MakeHeap(HeapKind kind, AddressSpace& space,
                                    Gaddr base, uint64_t size) {
  if (kind == HeapKind::kBuddy) {
    return std::make_unique<BuddyAllocator>(space, base, RoundUpPow2(size) / 2);
  }
  return std::make_unique<FreelistHeap>(space, base, size);
}

}  // namespace

ImageConfig BaselineConfig(const std::vector<std::string>& libs) {
  ImageConfig config;
  config.backend = IsolationBackend::kNone;
  config.compartments.push_back(libs);
  return config;
}

Result<std::unique_ptr<Image>> ImageBuilder::Build(const ImageConfig& config) {
  // --- Validate -----------------------------------------------------------
  if (config.compartments.empty()) {
    return Status(ErrorCode::kInvalidArgument, "no compartments configured");
  }
  if (config.compartments.size() > kNumPkeys - 1) {
    return Status(ErrorCode::kInvalidArgument,
                  "more compartments than protection keys");
  }
  std::unordered_set<std::string> seen;
  for (const auto& group : config.compartments) {
    if (group.empty()) {
      return Status(ErrorCode::kInvalidArgument, "empty compartment");
    }
    for (const std::string& lib : group) {
      if (lib == kLibPlatform) {
        return Status(ErrorCode::kInvalidArgument,
                      "'platform' is implicit and cannot be assigned");
      }
      if (!seen.insert(lib).second) {
        return Status(ErrorCode::kAlreadyExists,
                      "library in two compartments: " + lib);
      }
    }
  }
  for (const std::string& lib : config.hardened_libs) {
    if (seen.count(lib) == 0) {
      return Status(ErrorCode::kNotFound, "hardened unknown library: " + lib);
    }
  }
  for (const std::string& lib : config.cfi_libs) {
    if (seen.count(lib) == 0) {
      return Status(ErrorCode::kNotFound, "cfi on unknown library: " + lib);
    }
  }

  const int num_comps = static_cast<int>(config.compartments.size());
  const bool vm_backend = config.backend == IsolationBackend::kVmRpc;
  const uint64_t heap_bytes = config.heap_bytes_per_compartment;

  auto image = std::unique_ptr<Image>(new Image(machine_, config.backend));

  // --- Address spaces and memory layout ------------------------------------
  const Gaddr shared_base =
      kHeapBase +
      static_cast<uint64_t>(num_comps) * (heap_bytes + kRegionGap);
  // Optional global-allocator region sits after the shared region.
  const Gaddr global_heap_base = shared_base + config.shared_bytes +
                                 kRegionGap;
  const uint64_t space_bytes =
      global_heap_base + heap_bytes + kRegionGap;

  if (!vm_backend) {
    // One space for everything; compartments are MPK key regions.
    image->spaces_.push_back(std::make_unique<AddressSpace>(
        machine_, "flexos", space_bytes));
  } else {
    for (int c = 0; c < num_comps; ++c) {
      image->spaces_.push_back(std::make_unique<AddressSpace>(
          machine_, StrFormat("vm%d", c), space_bytes));
    }
  }

  image->shared_base_ = shared_base;
  image->shared_bytes_ = config.shared_bytes;

  // Map compartment heaps.
  for (int c = 0; c < num_comps; ++c) {
    AddressSpace& space = vm_backend ? *image->spaces_[static_cast<size_t>(c)]
                                     : *image->spaces_.front();
    const Gaddr base =
        vm_backend ? kHeapBase
                   : kHeapBase + static_cast<uint64_t>(c) *
                                     (heap_bytes + kRegionGap);
    const Pkey key =
        (config.backend == IsolationBackend::kNone || vm_backend)
            ? 0
            : static_cast<Pkey>(c + 1);
    FLEXOS_RETURN_IF_ERROR(space.Map(base, heap_bytes, key));

    CompartmentRuntime comp;
    comp.id = c;
    comp.name = StrFormat("comp%d", c);
    comp.libs = config.compartments[static_cast<size_t>(c)];
    comp.pkey = key;
    comp.space = &space;
    comp.heap_base = base;
    comp.heap_bytes = heap_bytes;
    for (const std::string& lib : comp.libs) {
      if (config.hardened_libs.count(lib) != 0) {
        comp.hardened = true;
      }
    }
    // Switched-stack backend: each compartment owns stack pages (tagged
    // with its key) behind a guard page, which the gates switch to on
    // crossing. The shared-stack backend leaves stacks in the shared
    // domain — exactly ERIM vs HODOR.
    if (config.backend == IsolationBackend::kMpkSwitchedStack) {
      const uint64_t stack_bytes = 64 * kPageSize;
      const Gaddr guard = base + heap_bytes + kPageSize;
      FLEXOS_RETURN_IF_ERROR(space.MapGuard(guard, kPageSize));
      comp.stack_base = guard + kPageSize;
      comp.stack_bytes = stack_bytes;
      FLEXOS_RETURN_IF_ERROR(space.Map(comp.stack_base, stack_bytes, key));
    }

    // Execution context: MPK backends confine each compartment to its own
    // key plus the shared key 0; other backends run PKRU-permissive.
    comp.exec = ExecContext{};
    comp.exec.compartment = c;
    if (config.backend == IsolationBackend::kMpkSharedStack ||
        config.backend == IsolationBackend::kMpkSwitchedStack) {
      Pkru pkru = Pkru::DenyAll()
                      .WithAccess(0, /*allow_read=*/true, /*allow_write=*/true)
                      .WithAccess(key, true, true);
      comp.exec.pkru = pkru;
    }
    // Compartment-to-vCPU affinity: the parser guarantees all pinned
    // members of a compartment agree, so the first pinned member decides.
    for (const std::string& lib : comp.libs) {
      const auto pin = config.pins.find(lib);
      if (pin != config.pins.end()) {
        machine_.SetCompartmentAffinity(c, pin->second);
        break;
      }
    }
    image->comps_.push_back(comp);
  }

  // Map the shared region (key 0 everywhere; identical address in all VMs).
  {
    AddressSpace& first = *image->spaces_.front();
    FLEXOS_RETURN_IF_ERROR(first.Map(shared_base, config.shared_bytes, 0));
    for (size_t s = 1; s < image->spaces_.size(); ++s) {
      FLEXOS_RETURN_IF_ERROR(image->spaces_[s]->MapAlias(
          shared_base, first, shared_base, config.shared_bytes));
    }
  }

  // --- Allocators -----------------------------------------------------------
  const bool any_hardened = !config.hardened_libs.empty();
  if (config.per_compartment_allocators) {
    for (int c = 0; c < num_comps; ++c) {
      CompartmentRuntime& comp = image->comps_[static_cast<size_t>(c)];
      Allocator& backing = image->registry_.Adopt(MakeHeap(
          config.heap_kind, *comp.space, comp.heap_base, comp.heap_bytes));
      Allocator* heap = &backing;
      if (comp.hardened) {
        heap = &image->registry_.Adopt(
            std::make_unique<HardenedHeap>(backing));
      }
      comp.allocator = heap;
      image->registry_.SetForCompartment(c, *heap);
    }
  } else {
    // Global allocator: lives in the shared region's tail so every
    // compartment can reach it. Instrumented if anything is hardened —
    // the whole system then pays (paper Fig. 4).
    AddressSpace& first = *image->spaces_.front();
    FLEXOS_RETURN_IF_ERROR(first.Map(global_heap_base, heap_bytes, 0));
    for (size_t s = 1; s < image->spaces_.size(); ++s) {
      FLEXOS_RETURN_IF_ERROR(image->spaces_[s]->MapAlias(
          global_heap_base, first, global_heap_base, heap_bytes));
    }
    Allocator& backing = image->registry_.Adopt(
        MakeHeap(config.heap_kind, first, global_heap_base, heap_bytes));
    Allocator* heap = &backing;
    if (any_hardened) {
      heap = &image->registry_.Adopt(std::make_unique<HardenedHeap>(backing));
    }
    image->registry_.SetGlobal(*heap);
    for (int c = 0; c < num_comps; ++c) {
      image->comps_[static_cast<size_t>(c)].allocator = heap;
    }
  }

  // Shared-region allocator for cross-compartment buffers.
  image->shared_allocator_ = &image->registry_.Adopt(
      MakeHeap(config.heap_kind, *image->spaces_.front(), shared_base,
               config.shared_bytes));

  // --- Library runtimes -----------------------------------------------------
  for (int c = 0; c < num_comps; ++c) {
    const CompartmentRuntime& comp = image->comps_[static_cast<size_t>(c)];
    for (const std::string& lib : comp.libs) {
      Image::LibRuntime runtime;
      runtime.name = lib;
      runtime.compartment = c;
      runtime.hardened = config.hardened_libs.count(lib) != 0;
      runtime.exec = comp.exec;
      if (runtime.hardened) {
        runtime.exec.mem_cost_multiplier =
            machine_.costs().sh_mem_multiplier;
        runtime.exec.shadow_checks = true;
      }
      runtime.cfi_enforced = config.cfi_libs.count(lib) != 0;
      auto api_it = config.apis.find(lib);
      if (api_it != config.apis.end()) {
        runtime.api.insert(api_it->second.begin(), api_it->second.end());
      }
      image->libs_[lib] = std::move(runtime);
    }
  }

  if (vm_backend) {
    image->vm_replicated_libs_.insert(config.vm_replicated_libs.begin(),
                                      config.vm_replicated_libs.end());
  }

  // --- Gate ----------------------------------------------------------------
  switch (config.backend) {
    case IsolationBackend::kNone:
      image->gate_ = std::make_unique<DirectGate>();
      break;
    case IsolationBackend::kMpkSharedStack:
      image->gate_ = std::make_unique<MpkSharedStackGate>();
      break;
    case IsolationBackend::kMpkSwitchedStack:
      image->gate_ = std::make_unique<MpkSwitchedStackGate>();
      break;
    case IsolationBackend::kVmRpc:
      image->gate_ = std::make_unique<VmRpcGate>();
      break;
  }

  return image;
}

}  // namespace flexos
