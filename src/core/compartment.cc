#include "core/compartment.h"

#include "support/strings.h"

namespace flexos {

std::string CompartmentRuntime::ToString() const {
  std::vector<std::string> members(libs.begin(), libs.end());
  return StrFormat("compartment %d '%s' pkey=%u hardened=%d libs=[%s]", id,
                   name.c_str(), pkey, hardened ? 1 : 0,
                   JoinStrings(members, ",").c_str());
}

}  // namespace flexos
