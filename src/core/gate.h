// Gates: the compartment-crossing primitives (paper §3). A gate performs a
// call into a foreign compartment — switching the protection domain,
// handling stacks/registers per its backend, and copying arguments and
// return values as needed. "Implementations vary from cheap function calls
// all the way to expensive RPC across VM boundaries."
//
// Backends implemented:
//   DirectGate          — same compartment / no-isolation baseline.
//   MpkSharedStackGate  — ERIM-style: WRPKRU in/out + register scrubbing,
//                         thread stacks shared across compartments.
//   MpkSwitchedStackGate— HODOR-style: adds a per-compartment stack switch
//                         and argument copy.  (core/mpk_gate.h)
//   VmRpcGate           — Xen/KVM-style RPC over a shared ring with
//                         inter-VM notifications.  (core/vm_gate.h)
#ifndef FLEXOS_CORE_GATE_H_
#define FLEXOS_CORE_GATE_H_

#include <functional>
#include <string_view>

#include "hw/machine.h"

namespace flexos {

enum class GateKind : uint8_t {
  kDirect,
  kMpkSharedStack,
  kMpkSwitchedStack,
  kVmRpc,
};

std::string_view GateKindName(GateKind kind);

// A single domain crossing: the call and its matching return.
struct GateCrossing {
  const ExecContext* target_context;  // Context to run the body under.
  uint64_t arg_bytes = 0;             // By-value argument payload size.
  uint64_t ret_bytes = 0;             // Return payload size.
};

class Gate {
 public:
  virtual ~Gate() = default;

  virtual GateKind kind() const = 0;

  // Executes `body` in the target compartment per this backend's
  // mechanics, charging its modeled costs on entry and exit.
  virtual void Cross(Machine& machine, const GateCrossing& crossing,
                     const std::function<void()>& body) = 0;
};

// Same-compartment (or no-isolation) call: a near call, nothing more.
class DirectGate final : public Gate {
 public:
  GateKind kind() const override { return GateKind::kDirect; }

  void Cross(Machine& machine, const GateCrossing& crossing,
             const std::function<void()>& body) override;
};

}  // namespace flexos

#endif  // FLEXOS_CORE_GATE_H_
