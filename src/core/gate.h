// Gates: the compartment-crossing primitives (paper §3). A gate performs a
// call into a foreign compartment — switching the protection domain,
// handling stacks/registers per its backend, and copying arguments and
// return values as needed. "Implementations vary from cheap function calls
// all the way to expensive RPC across VM boundaries."
//
// Backends implemented:
//   DirectGate          — same compartment / no-isolation baseline.
//   MpkSharedStackGate  — ERIM-style: WRPKRU in/out + register scrubbing,
//                         thread stacks shared across compartments.
//   MpkSwitchedStackGate— HODOR-style: adds a per-compartment stack switch
//                         and argument copy.  (core/mpk_gate.h)
//   VmRpcGate           — Xen/KVM-style RPC over a shared ring with
//                         inter-VM notifications.  (core/vm_gate.h)
//
// Each backend implements the crossing as an Enter/Exit pair so a crossing
// can be held open across a batch of bodies (GateBatch): Enter charges the
// entry half and installs the target context, Exit charges the exit half
// and restores the caller. Cross is the ordinary single-call composition.
#ifndef FLEXOS_CORE_GATE_H_
#define FLEXOS_CORE_GATE_H_

#include <string_view>

#include "hw/machine.h"
#include "support/function_ref.h"

namespace flexos {

enum class GateKind : uint8_t {
  kDirect,
  kMpkSharedStack,
  kMpkSwitchedStack,
  kVmRpc,
};

std::string_view GateKindName(GateKind kind);

// A single domain crossing: the call and its matching return.
struct GateCrossing {
  const ExecContext* target_context;  // Context to run the body under.
  uint64_t arg_bytes = 0;             // By-value argument payload size.
  uint64_t ret_bytes = 0;             // Return payload size.
};

// State saved by Enter that Exit needs to restore the caller's domain.
struct GateSession {
  ExecContext caller;
  bool swapped = true;  // Whether Enter installed a target context.
};

class Gate {
 public:
  virtual ~Gate() = default;

  virtual GateKind kind() const = 0;

  // Entry half of a crossing: charges this backend's entry costs (including
  // argument marshalling for crossing.arg_bytes) and installs the target
  // context. Counts as one gate crossing in the machine stats.
  virtual GateSession Enter(Machine& machine,
                            const GateCrossing& crossing) = 0;

  // Exit half: charges the exit costs (including return marshalling for
  // crossing.ret_bytes) and restores the caller context saved at Enter.
  virtual void Exit(Machine& machine, const GateCrossing& crossing,
                    const GateSession& session) = 0;

  // Cost of one body run inside an entered (batched) crossing: the near
  // call, plus — for backends that copy payloads across the boundary — the
  // per-item argument/return marshalling through the shared ring or target
  // stack. Domain-switch costs are NOT charged here; the batch already paid
  // them at Enter/Exit.
  virtual void ChargeBatchItem(Machine& machine, uint64_t arg_bytes,
                               uint64_t ret_bytes) {
    (void)arg_bytes;
    (void)ret_bytes;
    machine.clock().Charge(machine.costs().direct_call);
  }

  // Executes `body` in the target compartment per this backend's
  // mechanics, charging its modeled costs on entry and exit.
  void Cross(Machine& machine, const GateCrossing& crossing,
             FunctionRef<void()> body) {
    const GateSession session = Enter(machine, crossing);
    body();
    Exit(machine, crossing, session);
  }
};

// Same-compartment (or no-isolation) call: a near call, nothing more.
class DirectGate final : public Gate {
 public:
  GateKind kind() const override { return GateKind::kDirect; }

  GateSession Enter(Machine& machine, const GateCrossing& crossing) override;
  void Exit(Machine& machine, const GateCrossing& crossing,
            const GateSession& session) override;
};

}  // namespace flexos

#endif  // FLEXOS_CORE_GATE_H_
