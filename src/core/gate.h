// Gates: the compartment-crossing primitives (paper §3). A gate performs a
// call into a foreign compartment — switching the protection domain,
// handling stacks/registers per its backend, and copying arguments and
// return values as needed. "Implementations vary from cheap function calls
// all the way to expensive RPC across VM boundaries."
//
// Backends implemented:
//   DirectGate          — same compartment / no-isolation baseline.
//   MpkSharedStackGate  — ERIM-style: WRPKRU in/out + register scrubbing,
//                         thread stacks shared across compartments.
//   MpkSwitchedStackGate— HODOR-style: adds a per-compartment stack switch
//                         and argument copy.  (core/mpk_gate.h)
//   VmRpcGate           — Xen/KVM-style RPC over a shared ring with
//                         inter-VM notifications.  (core/vm_gate.h)
//
// Each backend implements the crossing as an Enter/Exit pair so a crossing
// can be held open across a batch of bodies (GateBatch): Enter charges the
// entry half and installs the target context, Exit charges the exit half
// and restores the caller. Cross is the ordinary single-call composition.
//
// Key state is per vCPU: Machine::context() resolves to the current vCPU's
// ExecContext (its simulated PKRU register), so gates need no per-core
// bookkeeping of their own — installing a target context only ever touches
// the core the crossing runs on, and RouteHandles stay valid across vCPUs
// (they point at compartment contexts, not per-core registers). The
// scheduler reinstalls a migrating thread's PKRU (one WRPKRU), and the
// vm-rpc backend charges CostModel::ipi when its notification must reach a
// compartment pinned to a different vCPU.
#ifndef FLEXOS_CORE_GATE_H_
#define FLEXOS_CORE_GATE_H_

#include <string_view>

#include "hw/machine.h"
#include "support/function_ref.h"

namespace flexos {

enum class GateKind : uint8_t {
  kDirect,
  kMpkSharedStack,
  kMpkSwitchedStack,
  kVmRpc,
};

std::string_view GateKindName(GateKind kind);

// A single domain crossing: the call and its matching return.
struct GateCrossing {
  const ExecContext* target_context;  // Context to run the body under.
  uint64_t arg_bytes = 0;             // By-value argument payload size.
  uint64_t ret_bytes = 0;             // Return payload size.
};

// State saved by Enter that Exit needs to restore the caller's domain.
struct GateSession {
  ExecContext caller;
  bool swapped = true;  // Whether Enter installed a target context.
  // Virtual timestamp at Enter; Exit emits the crossing as one complete
  // trace span (avoids begin/end pairs torn by ring wraparound). 0 when
  // tracing was off at Enter.
  uint64_t enter_ns = 0;
};

class Gate {
 public:
  virtual ~Gate() = default;

  virtual GateKind kind() const = 0;

  // Entry half of a crossing: charges this backend's entry costs (including
  // argument marshalling for crossing.arg_bytes) and installs the target
  // context. Counts as one gate crossing in the machine stats.
  GateSession Enter(Machine& machine, const GateCrossing& crossing) {
    const bool tracing = machine.tracer().enabled();
    const uint64_t t0 = tracing ? machine.tracer().NowNs() : 0;
    GateSession session = EnterImpl(machine, crossing);
    session.enter_ns = t0;
    return session;
  }

  // Exit half: charges the exit costs (including return marshalling for
  // crossing.ret_bytes) and restores the caller context saved at Enter.
  // When tracing, emits the whole crossing (entry + body/batch + exit) as a
  // complete span on the target compartment's track.
  void Exit(Machine& machine, const GateCrossing& crossing,
            const GateSession& session) {
    ExitImpl(machine, crossing, session);
    obs::Tracer& tracer = machine.tracer();
    if (tracer.enabled()) {
      const int target = crossing.target_context != nullptr
                             ? crossing.target_context->compartment
                             : session.caller.compartment;
      tracer.RecordComplete(obs::TraceCat::kGate, GateKindName(kind()).data(),
                            session.enter_ns,
                            tracer.NowNs() - session.enter_ns,
                            /*tid=*/target + 1, crossing.arg_bytes,
                            crossing.ret_bytes,
                            machine.attrib().current_request());
    }
  }

  // Cost of one body run inside an entered (batched) crossing: the near
  // call, plus — for backends that copy payloads across the boundary — the
  // per-item argument/return marshalling through the shared ring or target
  // stack. Domain-switch costs are NOT charged here; the batch already paid
  // them at Enter/Exit.
  virtual void ChargeBatchItem(Machine& machine, uint64_t arg_bytes,
                               uint64_t ret_bytes) {
    (void)arg_bytes;
    (void)ret_bytes;
    machine.clock().Charge(machine.costs().direct_call);
  }

  // Executes `body` in the target compartment per this backend's
  // mechanics, charging its modeled costs on entry and exit.
  void Cross(Machine& machine, const GateCrossing& crossing,
             FunctionRef<void()> body) {
    const GateSession session = Enter(machine, crossing);
    body();
    Exit(machine, crossing, session);
  }

 protected:
  // Backend mechanics; cost charging and context swaps live here. The
  // public Enter/Exit wrappers add the trace span around them.
  virtual GateSession EnterImpl(Machine& machine,
                                const GateCrossing& crossing) = 0;
  virtual void ExitImpl(Machine& machine, const GateCrossing& crossing,
                        const GateSession& session) = 0;
};

// Same-compartment (or no-isolation) call: a near call, nothing more.
class DirectGate final : public Gate {
 public:
  GateKind kind() const override { return GateKind::kDirect; }

 protected:
  GateSession EnterImpl(Machine& machine,
                        const GateCrossing& crossing) override;
  void ExitImpl(Machine& machine, const GateCrossing& crossing,
                const GateSession& session) override;
};

}  // namespace flexos

#endif  // FLEXOS_CORE_GATE_H_
