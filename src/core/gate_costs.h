// Cost-model query hooks for offline analysis (flexpath, DESIGN.md §15):
// predict what one gate crossing of a boundary costs under a given backend
// WITHOUT running it. The what-if engine and the promote/demote advisor
// replay a measured run's crossing counts against these predictions, so the
// formulas here must mirror the gate implementations' charge sequences
// exactly — gate_costs_test.cc locks that by comparing the prediction
// against the gate.latency_ns.* histograms of a real run, per backend.
#ifndef FLEXOS_CORE_GATE_COSTS_H_
#define FLEXOS_CORE_GATE_COSTS_H_

#include <string_view>

#include "core/image.h"
#include "hw/cost_model.h"

namespace flexos {

// Modeled cycles for one entry+exit crossing carrying `arg_bytes` in and
// `ret_bytes` back, with uninstrumented (mem multiplier 1.0) caller and
// callee. Mirrors DirectGate / MpkSharedStackGate / MpkSwitchedStackGate /
// VmRpcGate::Enter+Exit:
//   none          direct_call
//   mpk-shared    2 * (register_clear + wrpkru)
//   mpk-switched  2 * (register_clear + stack_switch + wrpkru)
//                   + CopyCycles(arg) + CopyCycles(ret)
//   vm-rpc        CopyCycles(arg) + CopyCycles(ret)
//                   + 2 * (2 * vmexit + vm_notify)
// `cross_vcpu` adds the two IPIs a vm-rpc gate charges when caller and
// target are pinned to different vCPUs (no other backend issues IPIs).
uint64_t PredictedCrossingCycles(const CostModel& costs,
                                 IsolationBackend backend,
                                 uint64_t arg_bytes, uint64_t ret_bytes,
                                 bool cross_vcpu = false);

// Parses the config spelling (IsolationBackendName round-trip): "none",
// "mpk-shared", "mpk-switched", "vm-rpc". Returns false for anything else.
bool IsolationBackendFromName(std::string_view name, IsolationBackend* out);

// Modeled one-time cycles for re-placing a boundary's backend live
// (flexadapt, DESIGN.md §16): pkey re-program when either side is an MPK
// backend, ring/event-channel setup or teardown when either side is vm-rpc,
// zero for from == to. Image::SetBoundaryBackend charges exactly this, and
// the adaptive engine budgets proposed transitions against it, so predicted
// and realized deltas reconcile by construction.
uint64_t TransitionCycles(const CostModel& costs, IsolationBackend from,
                          IsolationBackend to);

}  // namespace flexos

#endif  // FLEXOS_CORE_GATE_COSTS_H_
