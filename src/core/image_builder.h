// ImageBuilder: FlexOS's build system, at runtime. Takes a configuration —
// which micro-libraries share which compartment, which isolation backend
// implements the boundaries, which libraries run hardened, and the
// allocator policy — and instantiates protection domains, heaps, the
// shared region, and gates ("FlexOS's builder will generate the required
// protection domains (one per compartment) and replace the call gate
// placeholders with the relevant code", paper §3).
#ifndef FLEXOS_CORE_IMAGE_BUILDER_H_
#define FLEXOS_CORE_IMAGE_BUILDER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/image.h"
#include "obs/timeseries.h"
#include "support/status.h"

namespace flexos {

enum class HeapKind : uint8_t { kFreelist, kBuddy };

// One "adapt allow <cX> <cY> <backend>" row: the (from, to) boundary may be
// re-placed onto `target` at runtime. An empty allow list permits every
// legal re-placement; a non-empty list is a whitelist. flexlint's FL015
// rejects rows whose compartment pair can never legally host the target.
struct AdaptAllowRule {
  int from = -1;
  int to = -1;
  IsolationBackend target = IsolationBackend::kNone;

  bool operator==(const AdaptAllowRule& other) const {
    return from == other.from && to == other.to && target == other.target;
  }
};

// flexadapt policy knobs (DESIGN.md §16), set by "adapt" config directives.
struct AdaptConfig {
  bool enabled = false;        // "adapt on"
  int cooldown_windows = 2;    // "adapt cooldown N": windows between moves.
  uint64_t min_crossings = 16;  // "adapt min_crossings N": ignore sparser.
  double demote_share = 0.25;  // "adapt demote_share X": gate-time share
                               // of the window below which no demotion.
  double min_delta_frac = 0.10;  // "adapt min_delta X": predicted saving
                                 // must beat this fraction of gate time.
  int max_flaps = 4;  // "adapt max_flaps N": transitions before freezing.
  std::vector<AdaptAllowRule> allow;  // "adapt allow cX cY <backend>"

  bool operator==(const AdaptConfig& other) const {
    return enabled == other.enabled &&
           cooldown_windows == other.cooldown_windows &&
           min_crossings == other.min_crossings &&
           demote_share == other.demote_share &&
           min_delta_frac == other.min_delta_frac &&
           max_flaps == other.max_flaps && allow == other.allow;
  }
};

struct ImageConfig {
  IsolationBackend backend = IsolationBackend::kNone;

  // Compartment membership: one inner vector per compartment.
  std::vector<std::vector<std::string>> compartments;

  // Libraries built with software hardening (ASAN-class instrumentation).
  std::set<std::string> hardened_libs;

  // Libraries built with CFI: calls into them are checked against `apis`.
  std::set<std::string> cfi_libs;

  // Declared API (entry points) per library, for CFI enforcement.
  std::map<std::string, std::set<std::string>> apis;

  // true  -> one allocator per compartment (hardened only where needed).
  // false -> a single global allocator in the shared region; if *any*
  //          library is hardened, everyone pays for instrumented malloc
  //          (the paper's Fig. 4 "global allocator" configuration).
  bool per_compartment_allocators = true;

  // Under kVmRpc these libraries are replicated into every VM image (the
  // paper's VM builder ships "the minimum set of micro-libraries necessary
  // to run the VM independently": platform code, allocator, scheduler).
  // Calls to them stay inside the caller's VM.
  std::set<std::string> vm_replicated_libs = {"sched", "alloc", "libc"};

  // Libraries whose compartments declare a restart/init hook (fault/): the
  // application promises to re-register state-rebuilding hooks with the
  // supervisor when these compartments restart. flexlint's FL009 warns
  // about restartable compartments that declare none.
  std::set<std::string> restart_hook_libs;

  HeapKind heap_kind = HeapKind::kFreelist;

  uint64_t heap_bytes_per_compartment = 48ull << 20;
  uint64_t shared_bytes = 64ull << 20;

  // "compat = strict": the parser rejects the config when any compartment
  // cohabits libraries whose builtin metadata fails SatisfiesRequires,
  // with the concrete violated clauses in the error message.
  bool strict_compat = false;

  // "vcpus = N": how many vCPUs the image expects to run across. Purely
  // declarative for the builder (the testbed sizes the machine); flexlint's
  // SMP rules (FL010-FL014) key off it.
  int vcpus = 1;

  // "pin <lib> <vcpu>": library-to-vCPU affinity. All libraries of one
  // compartment must agree (a compartment is the placement unit); the
  // builder forwards the pin to Machine::SetCompartmentAffinity so vm-rpc
  // crossings into the compartment model a cross-core IPI.
  std::map<std::string, int> pins;

  // "reentrant <lib>...": config-level override of the [Reentrant] metadata
  // flag, for deployments that wrap a library in their own locking.
  std::set<std::string> reentrant_libs;

  // "window_cycles = N": flexwatch window length (DESIGN.md §14). 0 means
  // no explicit window; the testbed falls back to 1 ms of virtual time
  // (obs::kDefaultWindowNs) when SLOs are declared.
  uint64_t window_cycles = 0;

  // "slo <pattern> <stat> <op> <value>": SLO watchdogs evaluated at every
  // window close (obs/timeseries.h). Declaring any turns windowing on.
  std::vector<obs::SloSpec> slos;

  // "adapt ..." directives: runtime-adaptive isolation (DESIGN.md §16).
  // Enabling turns windowing on too (decisions fire at window closes).
  AdaptConfig adapt;
};

// Convenience: the standard micro-library split used by the in-tree
// experiments ({app, net, sched, libc, alloc} and friends).
ImageConfig BaselineConfig(const std::vector<std::string>& libs);

class ImageBuilder {
 public:
  explicit ImageBuilder(Machine& machine) : machine_(machine) {}

  Result<std::unique_ptr<Image>> Build(const ImageConfig& config);

 private:
  Machine& machine_;
};

}  // namespace flexos

#endif  // FLEXOS_CORE_IMAGE_BUILDER_H_
