// CompartmentRuntime: the instantiated form of one compartment inside a
// built FlexOS image — its protection key, address space, execution
// context, heap, and membership.
#ifndef FLEXOS_CORE_COMPARTMENT_H_
#define FLEXOS_CORE_COMPARTMENT_H_

#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "hw/machine.h"
#include "vmem/address_space.h"

namespace flexos {

struct CompartmentRuntime {
  int id = -1;
  std::string name;
  std::vector<std::string> libs;

  // MPK backends: the key tagging this compartment's private memory.
  Pkey pkey = 0;
  // The address space this compartment's code uses. One shared space for
  // the MPK/baseline backends; a per-compartment space for the VM backend.
  AddressSpace* space = nullptr;
  // Protection/instrumentation state installed when code of this
  // compartment runs (libraries may add SH flags on top).
  ExecContext exec;
  // This compartment's heap.
  Allocator* allocator = nullptr;
  Gaddr heap_base = 0;
  uint64_t heap_bytes = 0;
  // Per-compartment thread stacks (mapped under the switched-stack
  // backend; zero otherwise). A guard page below stack_base catches
  // overflow.
  Gaddr stack_base = 0;
  uint64_t stack_bytes = 0;
  bool hardened = false;  // Any member library runs with SH.

  std::string ToString() const;
};

}  // namespace flexos

#endif  // FLEXOS_CORE_COMPARTMENT_H_
