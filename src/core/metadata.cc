#include "core/metadata.h"

#include "support/strings.h"

namespace flexos {
namespace {

// Splits on `sep` at paren depth zero (Requires items contain commas
// inside parentheses).
std::vector<std::string_view> SplitTopLevel(std::string_view text, char sep) {
  std::vector<std::string_view> pieces;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || (text[i] == sep && depth == 0)) {
      std::string_view piece = TrimWhitespace(text.substr(start, i - start));
      if (!piece.empty()) {
        pieces.push_back(piece);
      }
      start = i + 1;
    } else if (text[i] == '(') {
      ++depth;
    } else if (text[i] == ')') {
      if (depth > 0) {
        --depth;
      }
    }
  }
  return pieces;
}

// Parses "Name(arg1,arg2)" into name + args. Returns false on malformed
// input.
bool ParseCallLike(std::string_view item, std::string_view* name,
                   std::vector<std::string_view>* args) {
  const size_t open = item.find('(');
  if (open == std::string_view::npos || item.back() != ')') {
    return false;
  }
  *name = TrimWhitespace(item.substr(0, open));
  const std::string_view inner =
      item.substr(open + 1, item.size() - open - 2);
  args->clear();
  for (std::string_view arg : SplitTopLevel(inner, ',')) {
    args->push_back(arg);
  }
  return true;
}

Status ParseMemoryAccess(std::string_view body, LibBehavior* behavior) {
  for (std::string_view item : SplitTopLevel(body, ';')) {
    std::string_view op;
    std::vector<std::string_view> args;
    if (!ParseCallLike(item, &op, &args)) {
      return Status(ErrorCode::kInvalidArgument,
                    "bad [Memory access] item: " + std::string(item));
    }
    const bool is_read = op == "Read";
    const bool is_write = op == "Write";
    if (!is_read && !is_write) {
      return Status(ErrorCode::kInvalidArgument,
                    "unknown memory op: " + std::string(op));
    }
    for (std::string_view arg : args) {
      if (arg == "Own") {
        (is_read ? behavior->reads_own : behavior->writes_own) = true;
      } else if (arg == "Shared") {
        (is_read ? behavior->reads_shared : behavior->writes_shared) = true;
      } else if (arg == "*") {
        (is_read ? behavior->reads_all : behavior->writes_all) = true;
      } else {
        return Status(ErrorCode::kInvalidArgument,
                      "unknown memory scope: " + std::string(arg));
      }
    }
  }
  return Status::Ok();
}

Status ParseCalls(std::string_view body, LibBehavior* behavior) {
  for (std::string_view item : SplitTopLevel(body, ',')) {
    if (item == "*") {
      behavior->calls_any = true;
    } else {
      behavior->calls.insert(std::string(item));
    }
  }
  return Status::Ok();
}

Status ParseApi(std::string_view body, std::vector<ApiFunc>* api) {
  for (std::string_view item : SplitTopLevel(body, ';')) {
    std::string_view name;
    std::vector<std::string_view> args;
    std::string func;
    if (ParseCallLike(item, &name, &args)) {
      func = std::string(name);
    } else {
      func = std::string(TrimWhitespace(item));
    }
    // Duplicate declarations collapse to one entry point (keeps ToString
    // canonical and membership checks set-like).
    bool seen = false;
    for (const ApiFunc& existing : *api) {
      if (existing.name == func) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      api->push_back(ApiFunc{std::move(func)});
    }
  }
  return Status::Ok();
}

Status ParseRequires(std::string_view body, LibRequires* requires_spec) {
  requires_spec->present = true;
  requires_spec->others_may_read_own = false;
  requires_spec->others_may_write_own = false;
  requires_spec->others_may_read_shared = false;
  requires_spec->others_may_write_shared = false;
  for (std::string_view item : SplitTopLevel(body, ',')) {
    if (item == "*" || item == "*...") {
      continue;  // Trailing ellipsis in the paper's example.
    }
    std::string_view subject;
    std::vector<std::string_view> args;
    if (!ParseCallLike(item, &subject, &args)) {
      return Status(ErrorCode::kInvalidArgument,
                    "bad [Requires] item: " + std::string(item));
    }
    if (subject != "*") {
      return Status(ErrorCode::kUnimplemented,
                    "only *(...) requires-subjects are supported");
    }
    if (args.size() < 2) {
      return Status(ErrorCode::kInvalidArgument,
                    "requires clause needs (Kind, Arg)");
    }
    const std::string_view kind = args[0];
    const std::string_view arg = args[1];
    if (kind == "Read") {
      if (arg == "Own") {
        requires_spec->others_may_read_own = true;
      } else if (arg == "Shared") {
        requires_spec->others_may_read_shared = true;
      } else {
        return Status(ErrorCode::kInvalidArgument,
                      "bad Read scope: " + std::string(arg));
      }
    } else if (kind == "Write") {
      if (arg == "Own") {
        requires_spec->others_may_write_own = true;
      } else if (arg == "Shared") {
        requires_spec->others_may_write_shared = true;
      } else {
        return Status(ErrorCode::kInvalidArgument,
                      "bad Write scope: " + std::string(arg));
      }
    } else if (kind == "Call") {
      if (arg == "*") {
        requires_spec->others_may_call_any = true;
      } else {
        requires_spec->callable_funcs.insert(std::string(arg));
      }
    } else {
      return Status(ErrorCode::kInvalidArgument,
                    "unknown requires kind: " + std::string(kind));
    }
  }
  return Status::Ok();
}

}  // namespace

Result<LibraryMeta> ParseLibraryMeta(const std::string& name,
                                     const std::string& text) {
  LibraryMeta meta;
  meta.name = name;

  // Gather section bodies: a section header is "[Title]"; its body runs to
  // the next header.
  struct Section {
    std::string title;
    std::string body;
  };
  std::vector<Section> sections;
  for (std::string_view line : SplitString(text, '\n')) {
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty()) {
      continue;
    }
    size_t cursor = 0;
    while (cursor < trimmed.size()) {
      if (trimmed[cursor] == '[') {
        const size_t close = trimmed.find(']', cursor);
        if (close == std::string_view::npos) {
          return Status(ErrorCode::kInvalidArgument, "unterminated section");
        }
        sections.push_back(Section{
            std::string(trimmed.substr(cursor + 1, close - cursor - 1)),
            ""});
        cursor = close + 1;
      } else {
        const size_t next = trimmed.find('[', cursor);
        const size_t end =
            next == std::string_view::npos ? trimmed.size() : next;
        if (sections.empty()) {
          return Status(ErrorCode::kInvalidArgument,
                        "content before first section header");
        }
        sections.back().body += ' ';
        sections.back().body += trimmed.substr(cursor, end - cursor);
        cursor = end;
      }
    }
  }

  for (const Section& section : sections) {
    const std::string_view body = TrimWhitespace(section.body);
    Status status;
    if (section.title == "Memory access") {
      status = ParseMemoryAccess(body, &meta.behavior);
    } else if (section.title == "Call") {
      status = ParseCalls(body, &meta.behavior);
    } else if (section.title == "API") {
      status = ParseApi(body, &meta.api);
    } else if (section.title == "Requires") {
      status = ParseRequires(body, &meta.requires_spec);
    } else if (section.title == "Reentrant") {
      // Flag section; an (ignored) body reads as author commentary.
      meta.reentrant = true;
    } else if (section.title == "Device") {
      for (std::string_view item : SplitTopLevel(body, ',')) {
        meta.devices.insert(std::string(item));
      }
    } else {
      status = Status(ErrorCode::kInvalidArgument,
                      "unknown section [" + section.title + "]");
    }
    if (!status.ok()) {
      return status;
    }
  }
  return meta;
}

std::string LibraryMeta::ToString() const {
  std::string out;
  // [Memory access]
  auto scopes = [](bool own, bool shared, bool all) {
    std::vector<std::string> parts;
    if (all) {
      parts.push_back("*");
    } else {
      if (own) {
        parts.push_back("Own");
      }
      if (shared) {
        parts.push_back("Shared");
      }
    }
    return JoinStrings(parts, ",");
  };
  out += "[Memory access] Read(" +
         scopes(behavior.reads_own, behavior.reads_shared,
                behavior.reads_all) +
         "); Write(" +
         scopes(behavior.writes_own, behavior.writes_shared,
                behavior.writes_all) +
         ")\n";
  // [Call]
  if (behavior.calls_any) {
    out += "[Call] *\n";
  } else if (!behavior.calls.empty()) {
    std::vector<std::string> calls(behavior.calls.begin(),
                                   behavior.calls.end());
    out += "[Call] " + JoinStrings(calls, ", ") + "\n";
  }
  // [API]
  if (!api.empty()) {
    std::vector<std::string> funcs;
    funcs.reserve(api.size());
    for (const ApiFunc& func : api) {
      funcs.push_back(func.name + "(...)");
    }
    out += "[API] " + JoinStrings(funcs, "; ") + "\n";
  }
  // [Requires]
  if (requires_spec.present) {
    std::vector<std::string> clauses;
    if (requires_spec.others_may_read_own) {
      clauses.push_back("*(Read,Own)");
    }
    if (requires_spec.others_may_write_own) {
      clauses.push_back("*(Write,Own)");
    }
    if (requires_spec.others_may_read_shared) {
      clauses.push_back("*(Read,Shared)");
    }
    if (requires_spec.others_may_write_shared) {
      clauses.push_back("*(Write,Shared)");
    }
    if (requires_spec.others_may_call_any) {
      clauses.push_back("*(Call, *)");
    }
    for (const std::string& func : requires_spec.callable_funcs) {
      clauses.push_back("*(Call, " + func + ")");
    }
    out += "[Requires] " + JoinStrings(clauses, ", ") + "\n";
  }
  // [Reentrant] / [Device]
  if (reentrant) {
    out += "[Reentrant]\n";
  }
  if (!devices.empty()) {
    std::vector<std::string> names(devices.begin(), devices.end());
    out += "[Device] " + JoinStrings(names, ", ") + "\n";
  }
  return out;
}

LibraryMeta SchedulerMeta() {
  // Verbatim from the paper's §2 example (the Dafny-verified scheduler).
  Result<LibraryMeta> meta = ParseLibraryMeta(
      "sched",
      "[Memory access] Read(Own,Shared); Write(Own,Shared)\n"
      "[Call] alloc::malloc, alloc::free\n"
      "[API] thread_add(...); thread_rm(...); yield(...)\n"
      "[Requires] *(Read,Own), *(Write,Shared), *(Call, thread_add), "
      "*(Call, thread_rm), *(Call, yield)");
  FLEXOS_CHECK(meta.ok(), "builtin scheduler metadata failed to parse: %s",
               meta.status().ToString().c_str());
  return meta.value();
}

LibraryMeta UnsafeCLibMeta(const std::string& name) {
  Result<LibraryMeta> meta = ParseLibraryMeta(
      name,
      "[Memory access] Read(*); Write(*)\n"
      "[Call] *");
  FLEXOS_CHECK(meta.ok(), "builtin unsafe metadata failed to parse: %s",
               meta.status().ToString().c_str());
  return meta.value();
}

LibraryMeta NetStackMeta() {
  Result<LibraryMeta> meta = ParseLibraryMeta(
      "net",
      "[Memory access] Read(Own,Shared); Write(*)\n"
      "[Call] libc::memcpy, libc::sem_wait, libc::sem_signal, "
      "alloc::malloc, alloc::free\n"
      "[API] listen(...); accept(...); send(...); recv(...); close(...)\n"
      "[Device] nic, timer");
  FLEXOS_CHECK(meta.ok(), "builtin net metadata failed to parse: %s",
               meta.status().ToString().c_str());
  return meta.value();
}

LibraryMeta LibcMeta() {
  Result<LibraryMeta> meta = ParseLibraryMeta(
      "libc",
      "[Memory access] Read(Own,Shared); Write(Own,Shared)\n"
      "[Call] sched::yield, alloc::malloc, alloc::free\n"
      "[API] memcpy(...); memset(...); strlen(...); sem_wait(...); "
      "sem_signal(...)\n"
      "[Requires] *(Read,Own), *(Write,Shared), *(Call, memcpy), "
      "*(Call, memset), *(Call, strlen), *(Call, sem_wait), "
      "*(Call, sem_signal)");
  FLEXOS_CHECK(meta.ok(), "builtin libc metadata failed to parse: %s",
               meta.status().ToString().c_str());
  return meta.value();
}

LibraryMeta AllocMeta() {
  Result<LibraryMeta> meta = ParseLibraryMeta(
      "alloc",
      "[Memory access] Read(Own,Shared); Write(Own,Shared)\n"
      "[API] malloc(...); free(...)\n"
      "[Requires] *(Read,Own), *(Write,Shared), *(Call, malloc), "
      "*(Call, free)");
  FLEXOS_CHECK(meta.ok(), "builtin alloc metadata failed to parse: %s",
               meta.status().ToString().c_str());
  return meta.value();
}

LibraryMeta FsMeta() {
  // The ramfs micro-library: copies file chunks through libc, allocates
  // chunk storage, exposes the file operations apps/http use.
  Result<LibraryMeta> meta = ParseLibraryMeta(
      "fs",
      "[Memory access] Read(Own,Shared); Write(Own,Shared)\n"
      "[Call] libc::memcpy, alloc::malloc, alloc::free\n"
      "[API] write_file(...); read_file(...); append(...); delete(...); "
      "file_size(...)\n"
      "[Requires] *(Read,Own), *(Write,Shared), *(Call, write_file), "
      "*(Call, read_file), *(Call, append), *(Call, delete), "
      "*(Call, file_size)");
  FLEXOS_CHECK(meta.ok(), "builtin fs metadata failed to parse: %s",
               meta.status().ToString().c_str());
  return meta.value();
}

LibraryMeta AppMeta(const std::string& name) {
  // The http server also serves files from the ramfs; those calls are part
  // of the app's worst-case behavior (flexlint's dispatch validation keeps
  // this list honest against what the apps actually route).
  Result<LibraryMeta> meta = ParseLibraryMeta(
      name,
      "[Memory access] Read(Own,Shared); Write(Own,Shared)\n"
      "[Call] net::listen, net::accept, net::send, net::recv, net::close, "
      "libc::memcpy, alloc::malloc, alloc::free, fs::write_file, "
      "fs::read_file, fs::file_size");
  FLEXOS_CHECK(meta.ok(), "builtin app metadata failed to parse: %s",
               meta.status().ToString().c_str());
  return meta.value();
}

std::optional<LibraryMeta> BuiltinLibraryMeta(std::string_view name) {
  if (name == "sched") {
    return SchedulerMeta();
  }
  if (name == "net") {
    return NetStackMeta();
  }
  if (name == "libc") {
    return LibcMeta();
  }
  if (name == "alloc") {
    return AllocMeta();
  }
  if (name == "fs") {
    return FsMeta();
  }
  if (name == "app") {
    return AppMeta("app");
  }
  // appN (app1, app2, ...): replicated application instances, e.g. the
  // per-vCPU workers of an SMP image. Same worst-case behavior as "app".
  if (name.size() > 3 && name.substr(0, 3) == "app") {
    bool digits = true;
    for (const char c : name.substr(3)) {
      if (c < '0' || c > '9') {
        digits = false;
        break;
      }
    }
    if (digits) {
      return AppMeta(std::string(name));
    }
  }
  return std::nullopt;
}

}  // namespace flexos
