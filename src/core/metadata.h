// The FlexOS per-library metadata DSL (paper §2). Each micro-library ships
// a description of (1) its memory-access behavior, (2) the functions it
// calls, (3) its exposed API, and (4) what it *requires* of other libraries
// sharing its compartment. The concrete syntax is the paper's:
//
//   [Memory access] Read(Own,Shared); Write(Own,Shared)
//   [Call] alloc::malloc, alloc::free
//   [API] thread_add(...); thread_rm(...); yield(...)
//   [Requires] *(Read,Own), *(Write,Shared), *(Call, thread_add)
//
// and the "deemed unsafe C component" example:
//
//   [Memory access] Read(*); Write(*)
//   [Call] *
#ifndef FLEXOS_CORE_METADATA_H_
#define FLEXOS_CORE_METADATA_H_

#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.h"

namespace flexos {

// What a library does to memory / control flow (worst case, adversarial
// operation included).
struct LibBehavior {
  bool reads_own = false;
  bool reads_shared = false;
  bool reads_all = false;  // Read(*)
  bool writes_own = false;
  bool writes_shared = false;
  bool writes_all = false;  // Write(*)

  bool calls_any = false;          // Call contains '*'
  std::set<std::string> calls;     // Qualified "lib::func" names.
};

// One exposed API function.
struct ApiFunc {
  std::string name;

  bool operator==(const ApiFunc&) const = default;
};

// Constraints this library places on compartment cohabitants. Absence of
// any Requires clause means "others may do anything" (the library has no
// safety properties to protect).
struct LibRequires {
  bool present = false;

  bool others_may_read_own = false;   // *(Read,Own)
  bool others_may_write_own = false;  // *(Write,Own)
  // *(Read,Shared) parses but is informational: shared data is readable by
  // construction. Shared *writes* are policy.
  bool others_may_read_shared = true;
  bool others_may_write_shared = false;  // *(Write,Shared)

  bool others_may_call_any = false;       // *(Call, *)
  std::set<std::string> callable_funcs;   // *(Call, <func>)
};

struct LibraryMeta {
  std::string name;
  LibBehavior behavior;
  std::vector<ApiFunc> api;
  LibRequires requires_spec;
  // [Reentrant]: the library's API tolerates concurrent activation from
  // more than one vCPU (internally synchronized or stateless). Absent means
  // the author promises nothing — flexlint FL012 flags cross-vCPU callers.
  bool reentrant = false;
  // [Device] <name>, ...: hardware the library programs directly (nic,
  // timer, ...). Devices live on the boot vCPU in this model; flexlint
  // FL014 flags device libraries pinned elsewhere.
  std::set<std::string> devices;

  // Serializes back to the paper's concrete syntax (round-trips Parse).
  std::string ToString() const;
};

// Parses the DSL text for one library. `name` is the library's own name
// (the DSL body does not repeat it).
Result<LibraryMeta> ParseLibraryMeta(const std::string& name,
                                     const std::string& text);

// Convenience constructors for the in-tree micro-libraries (the metadata a
// library author would write by hand; see paper §2 "created manually ...
// a one-time and relatively low effort").
LibraryMeta SchedulerMeta();      // The verified scheduler of the paper.
LibraryMeta UnsafeCLibMeta(const std::string& name);  // Read(*);Write(*);Call *
LibraryMeta NetStackMeta();
LibraryMeta LibcMeta();
LibraryMeta AllocMeta();
LibraryMeta FsMeta();
LibraryMeta AppMeta(const std::string& name);

// Resolves a well-known library name (app, net, sched, libc, alloc, fs) to
// its builtin metadata; nullopt for names this tree ships no metadata for.
// The canonical resolver for config validation and flexlint.
std::optional<LibraryMeta> BuiltinLibraryMeta(std::string_view name);

}  // namespace flexos

#endif  // FLEXOS_CORE_METADATA_H_
