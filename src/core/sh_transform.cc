#include "core/sh_transform.h"

namespace flexos {

std::string_view ShTechniqueName(ShTechnique technique) {
  switch (technique) {
    case ShTechnique::kAsan:
      return "ASAN";
    case ShTechnique::kDfi:
      return "DFI";
    case ShTechnique::kCfi:
      return "CFI";
    case ShTechnique::kStackProtector:
      return "StackProtector";
    case ShTechnique::kUbsan:
      return "UBSAN";
    case ShTechnique::kSafeStack:
      return "SafeStack";
  }
  return "?";
}

LibraryMeta ApplyShTransform(const LibraryMeta& meta, ShTechnique technique,
                             const ShAnalysis& analysis) {
  LibraryMeta out = meta;
  switch (technique) {
    case ShTechnique::kCfi:
      // Call(*) becomes the concrete target list recovered by control-flow
      // analysis; runtime CFI checks enforce it.
      if (out.behavior.calls_any) {
        out.behavior.calls_any = false;
        out.behavior.calls.insert(analysis.cfi_call_targets.begin(),
                                  analysis.cfi_call_targets.end());
      }
      break;
    case ShTechnique::kAsan:
    case ShTechnique::kDfi:
      // Writes(*) narrows to what the data-flow graph supports once the
      // inserted checks bound every store.
      if (out.behavior.writes_all) {
        out.behavior.writes_all = false;
        out.behavior.writes_own = true;
        out.behavior.writes_shared = analysis.dfi_writes_shared;
      }
      if (out.behavior.reads_all && technique == ShTechnique::kAsan) {
        // ASAN also bounds loads.
        out.behavior.reads_all = false;
        out.behavior.reads_own = true;
        out.behavior.reads_shared = true;
      }
      break;
    case ShTechnique::kStackProtector:
    case ShTechnique::kUbsan:
    case ShTechnique::kSafeStack:
      // These harden the library internally without changing its declared
      // external behavior; they still matter for cost modeling.
      break;
  }
  return out;
}

std::vector<std::vector<LibVariant>> EnumerateShVariants(
    const std::vector<LibraryMeta>& libs, const ShAnalysis& analysis) {
  std::vector<std::vector<LibVariant>> variants;
  variants.reserve(libs.size());
  for (const LibraryMeta& lib : libs) {
    std::vector<LibVariant> options;
    options.push_back(LibVariant{.meta = lib, .applied = {}});

    // Paper policy: Write(*) -> DFI/ASAN version; Call(*) -> CFI version.
    const bool needs_dfi = lib.behavior.writes_all;
    const bool needs_cfi = lib.behavior.calls_any;
    if (needs_dfi || needs_cfi) {
      LibraryMeta hardened = lib;
      std::set<ShTechnique> applied;
      if (needs_dfi) {
        hardened = ApplyShTransform(hardened, ShTechnique::kAsan, analysis);
        applied.insert(ShTechnique::kAsan);
      }
      if (needs_cfi) {
        hardened = ApplyShTransform(hardened, ShTechnique::kCfi, analysis);
        applied.insert(ShTechnique::kCfi);
      }
      options.push_back(
          LibVariant{.meta = std::move(hardened), .applied = applied});
    }
    variants.push_back(std::move(options));
  }
  return variants;
}

std::vector<Deployment> EnumerateDeployments(
    const std::vector<std::vector<LibVariant>>& variants,
    bool exact_coloring) {
  std::vector<Deployment> deployments;
  const size_t n = variants.size();
  std::vector<size_t> choice(n, 0);

  for (;;) {
    // Materialize this combination.
    Deployment deployment;
    deployment.chosen.reserve(n);
    std::vector<LibraryMeta> metas;
    metas.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      deployment.chosen.push_back(variants[i][choice[i]]);
      metas.push_back(deployment.chosen.back().meta);
    }
    const auto edges = ConflictEdges(metas);
    deployment.coloring =
        exact_coloring ? ColorGraphExact(static_cast<int>(n), edges)
                       : ColorGraphDsatur(static_cast<int>(n), edges);
    deployments.push_back(std::move(deployment));

    // Odometer increment over the choice vector.
    size_t idx = 0;
    while (idx < n) {
      if (++choice[idx] < variants[idx].size()) {
        break;
      }
      choice[idx] = 0;
      ++idx;
    }
    if (idx == n) {
      break;
    }
  }
  return deployments;
}

}  // namespace flexos
