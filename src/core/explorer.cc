#include "core/explorer.h"

#include <algorithm>

#include "support/strings.h"

namespace flexos {

double GateRoundTripCycles(IsolationBackend backend, const CostModel& costs) {
  switch (backend) {
    case IsolationBackend::kNone:
      return static_cast<double>(costs.direct_call);
    case IsolationBackend::kMpkSharedStack:
      return static_cast<double>(2 * costs.wrpkru + 2 * costs.register_clear);
    case IsolationBackend::kMpkSwitchedStack:
      return static_cast<double>(2 * costs.wrpkru + 2 * costs.register_clear +
                                 2 * costs.stack_switch +
                                 costs.CopyCycles(64) + costs.CopyCycles(16));
    case IsolationBackend::kVmRpc:
      return static_cast<double>(2 * (2 * costs.vmexit + costs.vm_notify) +
                                 costs.CopyCycles(64) + costs.CopyCycles(16));
  }
  return 0;
}

namespace {

double BackendStrength(IsolationBackend backend) {
  switch (backend) {
    case IsolationBackend::kNone:
      return 0.0;
    case IsolationBackend::kMpkSharedStack:
      return 1.0;
    case IsolationBackend::kMpkSwitchedStack:
      return 1.5;  // Stacks isolated too.
    case IsolationBackend::kVmRpc:
      return 2.5;  // Hardware-virtualization-grade separation.
  }
  return 0;
}

}  // namespace

std::string CandidateConfig::Describe(
    const std::vector<std::string>& lib_names) const {
  std::vector<std::string> groups(
      static_cast<size_t>(deployment.coloring.num_colors));
  for (size_t i = 0; i < deployment.chosen.size(); ++i) {
    const int color = deployment.coloring.color_of[i];
    std::string name =
        i < lib_names.size() ? lib_names[i] : deployment.chosen[i].meta.name;
    if (deployment.chosen[i].hardened()) {
      name += "+SH";
    }
    std::string& group = groups[static_cast<size_t>(color)];
    if (!group.empty()) {
      group += ",";
    }
    group += name;
  }
  std::string out = std::string(IsolationBackendName(backend)) + ": ";
  for (size_t g = 0; g < groups.size(); ++g) {
    out += "{" + groups[g] + "}";
  }
  return out;
}

ConfigEstimate EstimateConfig(const CandidateConfig& config,
                              const WorkloadProfile& profile,
                              const CostModel& costs) {
  ConfigEstimate estimate;
  const Deployment& deployment = config.deployment;
  const size_t n = deployment.chosen.size();

  double cycles = static_cast<double>(profile.base_cycles_per_op);

  // Gate costs: assume cross-lib calls distribute uniformly over library
  // pairs; a pair in different compartments pays the gate.
  const size_t total_pairs = n * (n - 1) / 2;
  size_t split_pairs = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (deployment.coloring.color_of[i] != deployment.coloring.color_of[j]) {
        ++split_pairs;
      }
    }
  }
  if (total_pairs > 0) {
    const double crossing_fraction =
        static_cast<double>(split_pairs) / static_cast<double>(total_pairs);
    cycles += static_cast<double>(profile.cross_lib_calls_per_op) *
              crossing_fraction * GateRoundTripCycles(config.backend, costs);
  }

  // SH costs: hardened libraries pay the memory-op multiplier on their
  // bulk bytes and the instrumented allocator on their allocations.
  for (size_t i = 0; i < n; ++i) {
    const uint64_t bytes = i < profile.memop_bytes_per_op.size()
                               ? profile.memop_bytes_per_op[i]
                               : 0;
    const double copy_cycles = static_cast<double>(costs.CopyCycles(bytes));
    if (deployment.chosen[i].hardened()) {
      cycles += copy_cycles * costs.sh_mem_multiplier;
      cycles += static_cast<double>(profile.allocs_per_op *
                                    costs.sh_alloc_overhead);
    } else {
      cycles += copy_cycles;
    }
  }
  estimate.cycles_per_op = cycles;

  // Security: every separated pair is a broken attack path; hardened
  // libraries contribute (less than isolation does); stronger backends
  // multiply the value of separation.
  estimate.security_score =
      static_cast<double>(split_pairs) *
          (1.0 + BackendStrength(config.backend)) +
      0.5 * static_cast<double>(deployment.num_hardened());
  return estimate;
}

std::vector<RankedConfig> ExploreDesignSpace(
    const std::vector<LibraryMeta>& libs, const ShAnalysis& analysis,
    const std::vector<IsolationBackend>& backends,
    const WorkloadProfile& profile, const CostModel& costs,
    const ExplorationQuery& query) {
  const auto variants = EnumerateShVariants(libs, analysis);
  auto deployments = EnumerateDeployments(variants, /*exact_coloring=*/true);

  // Safety floor: an untransformed Write(*) library must sit alone. This is
  // a *requirement*, so it joins the conflict graph before coloring —
  // otherwise the minimum coloring happily groups two no-Requires
  // libraries and the configuration would have to be discarded.
  if (query.require_unsafe_isolated) {
    for (Deployment& deployment : deployments) {
      std::vector<LibraryMeta> metas;
      metas.reserve(deployment.chosen.size());
      for (const LibVariant& variant : deployment.chosen) {
        metas.push_back(variant.meta);
      }
      auto edges = ConflictEdges(metas);
      const int n = static_cast<int>(metas.size());
      for (int i = 0; i < n; ++i) {
        if (!metas[static_cast<size_t>(i)].behavior.writes_all) {
          continue;
        }
        for (int j = 0; j < n; ++j) {
          if (i != j) {
            edges.emplace_back(std::min(i, j), std::max(i, j));
          }
        }
      }
      deployment.coloring = ColorGraphExact(n, edges);
    }
  }

  std::vector<RankedConfig> ranked;
  for (const Deployment& deployment : deployments) {
    for (IsolationBackend backend : backends) {
      // A multi-compartment layout needs a real isolation backend.
      if (backend == IsolationBackend::kNone &&
          deployment.coloring.num_colors > 1) {
        continue;
      }
      CandidateConfig config{.deployment = deployment, .backend = backend};
      const ConfigEstimate estimate =
          EstimateConfig(config, profile, costs);
      if (query.max_cycles_per_op.has_value() &&
          estimate.cycles_per_op > *query.max_cycles_per_op) {
        continue;
      }
      ranked.push_back(RankedConfig{.config = std::move(config),
                                    .estimate = estimate});
    }
  }

  if (query.max_cycles_per_op.has_value()) {
    // Strategy 1: maximize security within the budget.
    std::sort(ranked.begin(), ranked.end(),
              [](const RankedConfig& a, const RankedConfig& b) {
                if (a.estimate.security_score != b.estimate.security_score) {
                  return a.estimate.security_score >
                         b.estimate.security_score;
                }
                return a.estimate.cycles_per_op < b.estimate.cycles_per_op;
              });
  } else {
    // Strategy 2: best performance among compliant configurations.
    std::sort(ranked.begin(), ranked.end(),
              [](const RankedConfig& a, const RankedConfig& b) {
                if (a.estimate.cycles_per_op != b.estimate.cycles_per_op) {
                  return a.estimate.cycles_per_op < b.estimate.cycles_per_op;
                }
                return a.estimate.security_score > b.estimate.security_score;
              });
  }
  return ranked;
}

}  // namespace flexos
