#include "core/vm_gate.h"

#include "support/panic.h"

namespace flexos {

GateSession VmRpcGate::EnterImpl(Machine& machine,
                             const GateCrossing& crossing) {
  FLEXOS_CHECK(crossing.target_context != nullptr,
               "VM gate needs a target context");
  ++machine.stats().gate_crossings;
  GateSession session{.caller = machine.context()};

  // Request: marshal arguments into the shared ring, notify the callee VM
  // (vmexit + event + vmentry on the callee side).
  if (crossing.arg_bytes > 0) {
    machine.ChargeMemOp(crossing.arg_bytes);
  }
  machine.VmExitEnter();
  // When the callee compartment is pinned to another vCPU, the notification
  // is a cross-core IPI / remote wakeup, not a same-core event delivery.
  if (machine.vcpu_count() > 1) {
    const int target_vcpu =
        machine.CompartmentAffinityOf(crossing.target_context->compartment);
    if (target_vcpu >= 0 && target_vcpu != machine.current_vcpu()) {
      machine.ChargeIpi(target_vcpu);
    }
  }
  machine.context() = *crossing.target_context;
  return session;
}

void VmRpcGate::ExitImpl(Machine& machine, const GateCrossing& crossing,
                     const GateSession& session) {
  // Response: marshal the return value back, notify the caller VM.
  if (crossing.ret_bytes > 0) {
    machine.ChargeMemOp(crossing.ret_bytes);
  }
  machine.VmExitEnter();
  // Mirror of the entry half: waking a caller pinned to another vCPU costs
  // an IPI.
  if (machine.vcpu_count() > 1) {
    const int caller_vcpu =
        machine.CompartmentAffinityOf(session.caller.compartment);
    if (caller_vcpu >= 0 && caller_vcpu != machine.current_vcpu()) {
      machine.ChargeIpi(caller_vcpu);
    }
  }
  machine.context() = session.caller;
}

void VmRpcGate::ChargeBatchItem(Machine& machine, uint64_t arg_bytes,
                                uint64_t ret_bytes) {
  // Batched RPC items ride the already-open shared ring: per-item payload
  // marshalling, no extra exit/entry or notification.
  machine.clock().Charge(machine.costs().direct_call);
  if (arg_bytes > 0) {
    machine.ChargeMemOp(arg_bytes);
  }
  if (ret_bytes > 0) {
    machine.ChargeMemOp(ret_bytes);
  }
}

}  // namespace flexos
