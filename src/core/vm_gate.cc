#include "core/vm_gate.h"

#include "support/panic.h"

namespace flexos {

void VmRpcGate::Cross(Machine& machine, const GateCrossing& crossing,
                      const std::function<void()>& body) {
  FLEXOS_CHECK(crossing.target_context != nullptr,
               "VM gate needs a target context");
  ++machine.stats().gate_crossings;
  const ExecContext caller = machine.context();

  // Request: marshal arguments into the shared ring, notify the callee VM
  // (vmexit + event + vmentry on the callee side).
  if (crossing.arg_bytes > 0) {
    machine.ChargeMemOp(crossing.arg_bytes);
  }
  machine.VmExitEnter();

  {
    ExecContext target = *crossing.target_context;
    machine.context() = target;
    body();
  }

  // Response: marshal the return value back, notify the caller VM.
  if (crossing.ret_bytes > 0) {
    machine.ChargeMemOp(crossing.ret_bytes);
  }
  machine.VmExitEnter();
  machine.context() = caller;
}

}  // namespace flexos
