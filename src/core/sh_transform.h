// Software-hardening (SH) metadata transformations (paper §2, "When to
// Enable SH?"). Each SH technique is "a transformation that takes as input
// a library definition and outputs a changed definition describing the
// safety behavior of the library when the SH technique is enabled":
//
//   * CFI  : Call(*)  -> Call(<concrete list from control-flow analysis>)
//   * DFI / ASAN : Write(*) -> Write(Own[,Shared]) per the data-flow graph
//
// EnumerateShVariants applies the paper's policy — "1) for each library
// that writes to all memory, enable DFI/ASAN; 2) for each library that can
// execute arbitrary code, enable CFI" — producing per-library hardened
// variants whose combinations EnumerateDeployments colors one by one.
#ifndef FLEXOS_CORE_SH_TRANSFORM_H_
#define FLEXOS_CORE_SH_TRANSFORM_H_

#include <set>
#include <string>
#include <vector>

#include "core/coloring.h"
#include "core/compat.h"
#include "core/metadata.h"

namespace flexos {

enum class ShTechnique : uint8_t {
  kAsan,            // Address sanitizer (redzones, quarantine).
  kDfi,             // Data-flow integrity.
  kCfi,             // Control-flow integrity.
  kStackProtector,  // Canaries.
  kUbsan,           // Undefined-behavior checks.
  kSafeStack,       // Split safe/unsafe stacks.
};

std::string_view ShTechniqueName(ShTechnique technique);

// Inputs a SH transformation may need from static analysis.
struct ShAnalysis {
  // CFI: the concrete call targets control-flow analysis recovered.
  std::set<std::string> cfi_call_targets;
  // DFI: whether the data-flow graph shows writes stay within own (and
  // optionally shared) memory once checks are inserted.
  bool dfi_writes_own_only = true;
  bool dfi_writes_shared = true;
};

// Applies one technique to a library definition, returning the
// transformed definition.
LibraryMeta ApplyShTransform(const LibraryMeta& meta, ShTechnique technique,
                             const ShAnalysis& analysis);

// One buildable flavor of a library: original or hardened.
struct LibVariant {
  LibraryMeta meta;
  std::set<ShTechnique> applied;  // Empty = original.

  bool hardened() const { return !applied.empty(); }
};

// The per-library variant lists, in the input library order.
std::vector<std::vector<LibVariant>> EnumerateShVariants(
    const std::vector<LibraryMeta>& libs, const ShAnalysis& analysis);

// One fully resolved deployment: a variant choice per library plus the
// minimal coloring of the resulting conflict graph.
struct Deployment {
  std::vector<LibVariant> chosen;  // chosen[i] is libs[i]'s variant.
  ColoringResult coloring;

  int num_compartments() const { return coloring.num_colors; }
  int num_hardened() const {
    int count = 0;
    for (const LibVariant& variant : chosen) {
      if (variant.hardened()) {
        ++count;
      }
    }
    return count;
  }
};

// Iterates every combination of library versions (paper §2: "We then
// iterate through all combinations of such library versions and run the
// graph coloring algorithm") and colors each. Exponential in the number of
// libraries with variants; fine for LibOS-scale inputs.
std::vector<Deployment> EnumerateDeployments(
    const std::vector<std::vector<LibVariant>>& variants, bool exact_coloring);

}  // namespace flexos

#endif  // FLEXOS_CORE_SH_TRANSFORM_H_
