#include "core/compat.h"

#include "support/strings.h"

namespace flexos {
namespace {

void AddViolation(CompatVerdict* verdict, std::string reason) {
  verdict->compatible = false;
  if (verdict->violations.size() < 8) {
    verdict->violations.push_back(std::move(reason));
  }
}

}  // namespace

CompatVerdict SatisfiesRequires(const LibraryMeta& holder,
                                const LibraryMeta& other) {
  CompatVerdict verdict;
  const LibRequires& req = holder.requires_spec;
  if (!req.present) {
    return verdict;  // No safety expectations: anything goes.
  }
  const LibBehavior& behavior = other.behavior;

  // Memory: a library that can write anywhere can write the holder's own
  // memory; same for reads.
  if (behavior.writes_all && !req.others_may_write_own) {
    AddViolation(&verdict,
                 StrFormat("%s may Write(*) but %s forbids writes to its "
                           "own memory",
                           other.name.c_str(), holder.name.c_str()));
  }
  if (behavior.reads_all && !req.others_may_read_own) {
    AddViolation(&verdict,
                 StrFormat("%s may Read(*) but %s forbids reads of its own "
                           "memory",
                           other.name.c_str(), holder.name.c_str()));
  }
  if (behavior.writes_shared && !behavior.writes_all &&
      !req.others_may_write_shared) {
    AddViolation(&verdict,
                 StrFormat("%s writes Shared but %s forbids shared writes",
                           other.name.c_str(), holder.name.c_str()));
  }
  // Note: *reading* shared memory is always permitted — data placed in the
  // shared area is shared by construction; only writes are policy.

  // Control flow: arbitrary code execution in the same compartment can
  // enter the holder anywhere, not only at declared entry points.
  const bool holder_restricts_calls =
      !req.others_may_call_any;
  if (behavior.calls_any && holder_restricts_calls) {
    AddViolation(
        &verdict,
        StrFormat("%s may Call(*) but %s restricts entry points",
                  other.name.c_str(), holder.name.c_str()));
  }
  // Named calls into the holder must be within the allowed set (when the
  // holder lists one).
  if (!req.others_may_call_any && !req.callable_funcs.empty()) {
    const std::string prefix = holder.name + "::";
    for (const std::string& call : behavior.calls) {
      if (!StartsWith(call, prefix)) {
        continue;
      }
      const std::string func = call.substr(prefix.size());
      if (req.callable_funcs.count(func) == 0) {
        AddViolation(&verdict,
                     StrFormat("%s calls %s which %s does not allow",
                               other.name.c_str(), call.c_str(),
                               holder.name.c_str()));
      }
    }
  }
  return verdict;
}

CompatVerdict CanShareCompartment(const LibraryMeta& a,
                                  const LibraryMeta& b) {
  CompatVerdict forward = SatisfiesRequires(a, b);
  CompatVerdict backward = SatisfiesRequires(b, a);
  CompatVerdict verdict;
  verdict.compatible = forward.compatible && backward.compatible;
  verdict.violations = std::move(forward.violations);
  for (std::string& violation : backward.violations) {
    if (verdict.violations.size() >= 8) {
      break;
    }
    verdict.violations.push_back(std::move(violation));
  }
  return verdict;
}

std::vector<std::pair<int, int>> ConflictEdges(
    const std::vector<LibraryMeta>& libs) {
  std::vector<std::pair<int, int>> edges;
  for (size_t i = 0; i < libs.size(); ++i) {
    for (size_t j = i + 1; j < libs.size(); ++j) {
      if (!CanShareCompartment(libs[i], libs[j]).compatible) {
        edges.emplace_back(static_cast<int>(i), static_cast<int>(j));
      }
    }
  }
  return edges;
}

}  // namespace flexos
