#include "core/gate.h"

namespace flexos {

std::string_view GateKindName(GateKind kind) {
  switch (kind) {
    case GateKind::kDirect:
      return "direct";
    case GateKind::kMpkSharedStack:
      return "mpk-shared-stack";
    case GateKind::kMpkSwitchedStack:
      return "mpk-switched-stack";
    case GateKind::kVmRpc:
      return "vm-rpc";
  }
  return "?";
}

GateSession DirectGate::EnterImpl(Machine& machine,
                              const GateCrossing& crossing) {
  machine.clock().Charge(machine.costs().direct_call);
  ++machine.stats().gate_crossings;
  GateSession session{.caller = machine.context(),
                      .swapped = crossing.target_context != nullptr};
  if (session.swapped) {
    machine.context() = *crossing.target_context;
  }
  return session;
}

void DirectGate::ExitImpl(Machine& machine, const GateCrossing& crossing,
                      const GateSession& session) {
  (void)crossing;
  if (session.swapped) {
    machine.context() = session.caller;
  }
}

}  // namespace flexos
