#include "core/gate.h"

namespace flexos {

std::string_view GateKindName(GateKind kind) {
  switch (kind) {
    case GateKind::kDirect:
      return "direct";
    case GateKind::kMpkSharedStack:
      return "mpk-shared-stack";
    case GateKind::kMpkSwitchedStack:
      return "mpk-switched-stack";
    case GateKind::kVmRpc:
      return "vm-rpc";
  }
  return "?";
}

void DirectGate::Cross(Machine& machine, const GateCrossing& crossing,
                       const std::function<void()>& body) {
  machine.clock().Charge(machine.costs().direct_call);
  ++machine.stats().gate_crossings;
  if (crossing.target_context != nullptr) {
    ScopedExecContext scope(machine, *crossing.target_context);
    body();
  } else {
    body();
  }
}

}  // namespace flexos
