#include "sched/coop_scheduler.h"

#include "fault/fault.h"
#include "obs/names.h"
#include "support/log.h"

#if defined(__SANITIZE_ADDRESS__)
#define FLEXOS_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define FLEXOS_ASAN_FIBERS 1
#endif
#endif
#ifdef FLEXOS_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif

#if defined(__SANITIZE_THREAD__)
#define FLEXOS_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define FLEXOS_TSAN_FIBERS 1
#endif
#endif
#ifdef FLEXOS_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace flexos {

void CoopScheduler::StartFiberSwitch(const void* dest_bottom,
                                     size_t dest_size,
                                     bool destroying_source) {
#ifdef FLEXOS_ASAN_FIBERS
  __sanitizer_start_switch_fiber(
      destroying_source ? nullptr : &fiber_fake_stack_, dest_bottom,
      dest_size);
  if (destroying_source) {
    fiber_fake_stack_ = nullptr;
  }
#else
  (void)dest_bottom;
  (void)dest_size;
  (void)destroying_source;
#endif
}

void CoopScheduler::FinishFiberSwitch(const void** source_bottom,
                                      size_t* source_size) {
#ifdef FLEXOS_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(fiber_fake_stack_, source_bottom,
                                  source_size);
#else
  (void)source_bottom;
  (void)source_size;
#endif
}

void CoopScheduler::TsanSwitchToThread(Thread* thread) {
#ifdef FLEXOS_TSAN_FIBERS
  if (thread->tsan_fiber_ == nullptr) {
    thread->tsan_fiber_ = __tsan_create_fiber(0);
  }
  if (tsan_run_loop_fiber_ == nullptr) {
    tsan_run_loop_fiber_ = __tsan_get_current_fiber();
  }
  __tsan_switch_to_fiber(thread->tsan_fiber_, 0);
#else
  (void)thread;
#endif
}

void CoopScheduler::TsanSwitchToRunLoop() {
#ifdef FLEXOS_TSAN_FIBERS
  if (tsan_run_loop_fiber_ != nullptr) {
    __tsan_switch_to_fiber(tsan_run_loop_fiber_, 0);
  }
#endif
}

void CoopScheduler::TsanDestroyThreadFiber(Thread* thread) {
#ifdef FLEXOS_TSAN_FIBERS
  if (thread->tsan_fiber_ != nullptr) {
    __tsan_destroy_fiber(thread->tsan_fiber_);
    thread->tsan_fiber_ = nullptr;
  }
#else
  (void)thread;
#endif
}

CoopScheduler* CoopScheduler::active_ = nullptr;

CoopScheduler::CoopScheduler(Machine& machine)
    : machine_(machine),
      switch_counter_(
          &machine.metrics().GetCounter(obs::kMetricContextSwitches)),
      slice_hist_(&machine.metrics().GetHistogram(obs::kMetricSchedSliceNs)) {
  for (int v = 0; v < machine.vcpu_count(); ++v) {
    vcpu_busy_cycles_[v] = &machine.metrics().GetCounter(
        obs::SchedVCpuMetricName(v, obs::kVCpuBusyCycles));
    vcpu_steals_[v] = &machine.metrics().GetCounter(
        obs::SchedVCpuMetricName(v, obs::kVCpuSteals));
    vcpu_queue_depth_[v] = &machine.metrics().GetGauge(
        obs::SchedVCpuMetricName(v, obs::kVCpuQueueDepth));
  }
}

CoopScheduler::~CoopScheduler() {
  if (active_ == this) {
    active_ = nullptr;
  }
}

Result<Thread*> CoopScheduler::Spawn(std::string name,
                                     std::function<void()> entry) {
  return Spawn(std::move(name), std::move(entry), /*affinity=*/-1);
}

Result<Thread*> CoopScheduler::Spawn(std::string name,
                                     std::function<void()> entry,
                                     int affinity) {
  auto thread = std::make_unique<Thread>(next_thread_id_++, std::move(name),
                                         std::move(entry));
  Thread* raw = thread.get();
  if (affinity >= machine_.vcpu_count()) {
    affinity = -1;  // Pin beyond the machine: treat as unpinned.
  }
  raw->affinity_ = affinity;
  raw->home_vcpu_ = affinity >= 0 ? affinity : 0;
  CheckAddPrecondition(raw);
  threads_.push_back(std::move(thread));
  EnqueueReady(raw);
  CheckRunQueueInvariant();
  return raw;
}

Status CoopScheduler::Remove(Thread* thread) {
  if (thread == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "Remove(nullptr)");
  }
  if (thread->state_ != ThreadState::kReady) {
    return Status(ErrorCode::kFailedPrecondition,
                  "thread_rm: thread is not in the ready state");
  }
  ready_queues_[QueueOf(thread)].Remove(thread);
  thread->state_ = ThreadState::kExited;
  CheckRunQueueInvariant();
  return Status::Ok();
}

Status CoopScheduler::Add(Thread* thread) {
  if (thread == nullptr) {
    return Status(ErrorCode::kInvalidArgument, "Add(nullptr)");
  }
  CheckAddPrecondition(thread);
  if (thread->queued() || thread->state_ == ThreadState::kRunning ||
      thread->state_ == ThreadState::kBlocked) {
    // Already added (ready/running/blocked). The unverified scheduler
    // tolerates the buggy call; the verified one has already trapped above.
    return Status::Ok();
  }
  EnqueueReady(thread);
  CheckRunQueueInvariant();
  return Status::Ok();
}

int CoopScheduler::QueueOf(const Thread* thread) const {
  return thread->affinity_ >= 0 ? thread->affinity_ : thread->home_vcpu_;
}

void CoopScheduler::EnqueueReady(Thread* thread) {
  thread->state_ = ThreadState::kReady;
  thread->ready_since_cycles_ = machine_.clock().cycles();
  // flexrace: snapshot the enqueuer's lane *now*. The switch-in acquires
  // this snapshot, giving wake-up its happens-before edge without pulling in
  // anything the waker does after the enqueue (no-op while detection is
  // off).
  thread->hb_ready_handle_ = machine_.RaceRelease();
  ready_queues_[QueueOf(thread)].PushBack(thread);
  // flexpath queue-wait edge: this stamp pairs with the thread's next
  // sched.run_slice span (matched by thread id in a0) to recover
  // ready->switch-in latency offline. a1 = the queue it was enqueued on.
  obs::Tracer& tracer = machine_.tracer();
  if (tracer.enabled()) {
    tracer.RecordInstant(obs::TraceCat::kSched, "sched.ready",
                         /*tid=*/thread->exec_context_.compartment + 1,
                         /*a0=*/thread->id(),
                         /*a1=*/static_cast<uint64_t>(QueueOf(thread)));
  }
}

int CoopScheduler::PickVCpu() const {
  int best = -1;
  uint64_t best_cycles = 0;
  for (int v = 0; v < machine_.vcpu_count(); ++v) {
    if (ready_queues_[v].empty()) {
      continue;
    }
    const uint64_t cycles = machine_.clock_of(v).cycles();
    if (best < 0 || cycles < best_cycles) {
      best = v;
      best_cycles = cycles;
    }
  }
  return best;
}

void CoopScheduler::StealWork() {
  for (int v = 0; v < machine_.vcpu_count(); ++v) {
    if (!ready_queues_[v].empty()) {
      continue;
    }
    // Fullest donor queue with at least two entries, ties to the lowest id.
    int donor = -1;
    size_t donor_size = 1;
    for (int d = 0; d < machine_.vcpu_count(); ++d) {
      if (d != v && ready_queues_[d].size() > donor_size) {
        donor = d;
        donor_size = ready_queues_[d].size();
      }
    }
    if (donor < 0) {
      continue;
    }
    // First unpinned thread, front to back (oldest first).
    Thread* stolen = nullptr;
    for (Thread& candidate : ready_queues_[donor]) {
      if (candidate.affinity_ < 0) {
        stolen = &candidate;
        break;
      }
    }
    if (stolen == nullptr) {
      continue;
    }
    ready_queues_[donor].Remove(stolen);
    stolen->home_vcpu_ = v;
    // The ready stamp survives the move: it is the causal lower bound from
    // when the thread became runnable, not a queue-position property.
    ready_queues_[v].PushBack(stolen);
    if (vcpu_steals_[v] != nullptr) {
      vcpu_steals_[v]->Add();
    }
    // flexpath cross-vCPU edge: thread a0 migrated donor (a1) -> thief (v).
    obs::Tracer& tracer = machine_.tracer();
    if (tracer.enabled()) {
      tracer.RecordInstant(obs::TraceCat::kSched, "sched.steal",
                           /*tid=*/stolen->exec_context_.compartment + 1,
                           /*a0=*/stolen->id(),
                           /*a1=*/static_cast<uint64_t>(donor));
    }
  }
}

void CoopScheduler::Trampoline() {
  CoopScheduler* self = active_;
  FLEXOS_CHECK(self != nullptr, "trampoline without active scheduler");
  // First instruction on this fiber's stack: complete the annotated switch,
  // capturing the run-loop stack bounds for the switches back out.
  self->FinishFiberSwitch(&self->run_loop_stack_bottom_,
                          &self->run_loop_stack_size_);
  Thread* thread = self->current_;
  FLEXOS_CHECK(thread != nullptr, "trampoline without current thread");
  try {
    thread->entry_();
  } catch (const TrapException& trap) {
    // An unhandled trap escaping a thread is a compartment crash; record it
    // so Run() can surface kernel-panic semantics.
    thread->fatal_trap_ = trap.info();
    self->fatal_trap_ = trap.info();
    FLEXOS_WARN("thread '%s' killed by trap: %s", thread->name().c_str(),
                trap.info().ToString().c_str());
  }
  self->SwitchToRunLoop(SwitchReason::kExit);
  FLEXOS_PANIC("exited thread resumed");
}

CoopScheduler::SwitchReason CoopScheduler::SwitchTo(Thread* thread) {
  // Everything this vCPU's clock accrues until the thread switches back —
  // switch cost, migration WRPKRU, and the slice itself — is busy time.
  // The vCPU cannot change mid-slice (SwitchVCpu happens only in Run).
  const int run_vcpu = machine_.current_vcpu();
  const uint64_t busy_start_cycles = machine_.clock().cycles();
  machine_.clock().Charge(SwitchCost());
  if (machine_.vcpu_count() > 1 && thread->last_ran_vcpu_ >= 0 &&
      thread->last_ran_vcpu_ != machine_.current_vcpu()) {
    // Migration: the protection-key register is per core, so landing on a
    // different vCPU reinstalls the thread's PKRU (as BULKHEAD's per-CPU
    // key design does on every cross-core resume).
    machine_.Wrpkru(thread->exec_context_.pkru);
  }
  thread->last_ran_vcpu_ = machine_.current_vcpu();
  // flexrace: join the waker's snapshot (wake-up edge) and the thread's own
  // switch-out snapshot (program order across a migration) into the lane
  // about to run it. Both are no-ops while detection is off.
  machine_.RaceAcquire(thread->hb_ready_handle_);
  thread->hb_ready_handle_ = 0;
  machine_.RaceAcquire(thread->hb_migrate_handle_);
  thread->hb_migrate_handle_ = 0;
  if (machine_.injector().armed(fault::FaultSite::kSchedActivate)) {
    // Models a preemption/interrupt storm stalling this activation.
    const std::optional<fault::FaultDecision> decision = machine_.injector().Check(
        fault::FaultSite::kSchedActivate, thread->exec_context_.compartment);
    if (decision.has_value() &&
        decision->kind == fault::FaultKind::kSchedDelay) {
      machine_.clock().Charge(machine_.clock().NanosToCycles(
          decision->arg != 0 ? decision->arg : 10'000));
    }
  }
  ++context_switches_;
  switch_counter_->Add();
  obs::Tracer& tracer = machine_.tracer();
  const uint64_t slice_start_ns = tracer.enabled() ? tracer.NowNs() : 0;
  current_ = thread;
  thread->state_ = ThreadState::kRunning;
  obs::Attributor& attrib = machine_.attrib();
  if (attrib.enabled()) {
    // Thread ids start at 1; id 0 names the platform run loop below.
    attrib.ActivateThread(thread->id(), thread->name(),
                          machine_.clock().cycles());
  }
  const ExecContext run_loop_context = machine_.context();
  machine_.context() = thread->exec_context_;
  if (thread->context_.uc_stack.ss_sp == nullptr) {
    // First run: materialize the ucontext.
    FLEXOS_CHECK(getcontext(&thread->context_) == 0, "getcontext failed");
    thread->context_.uc_stack.ss_sp = thread->host_stack_.get();
    thread->context_.uc_stack.ss_size = Thread::kHostStackSize;
    thread->context_.uc_link = nullptr;
    makecontext(&thread->context_, &CoopScheduler::Trampoline, 0);
  }
  StartFiberSwitch(thread->host_stack_.get(), Thread::kHostStackSize,
                   /*destroying_source=*/false);
  TsanSwitchToThread(thread);
  FLEXOS_CHECK(swapcontext(&run_loop_context_, &thread->context_) == 0,
               "swapcontext into thread failed");
  FinishFiberSwitch(nullptr, nullptr);
  // flexrace: the thread just left this lane; snapshot its program order so
  // a resume on a different vCPU carries it along (self-edge).
  thread->hb_migrate_handle_ = machine_.RaceRelease();
  thread->exec_context_ = machine_.context();
  machine_.context() = run_loop_context;
  current_ = nullptr;
  if (attrib.enabled()) {
    attrib.ActivateThread(0, "platform", machine_.clock().cycles());
  }
  // The slice this thread just ran, in virtual time. Static span name +
  // thread id in a0: the event must not reference the thread's name, whose
  // storage can die before the trace is exported. Track = the compartment
  // the thread ended its slice in.
  if (tracer.enabled()) {
    const uint64_t now_ns = tracer.NowNs();
    slice_hist_->Record(now_ns - slice_start_ns);
    tracer.RecordComplete(obs::TraceCat::kSched, "sched.run_slice",
                          slice_start_ns, now_ns - slice_start_ns,
                          /*tid=*/thread->exec_context_.compartment + 1,
                          /*a0=*/thread->id(),
                          /*a1=*/static_cast<uint64_t>(pending_reason_));
  }
  if (vcpu_busy_cycles_[run_vcpu] != nullptr) {
    vcpu_busy_cycles_[run_vcpu]->Add(machine_.clock().cycles() -
                                     busy_start_cycles);
  }
  return pending_reason_;
}

void CoopScheduler::SwitchToRunLoop(SwitchReason reason) {
  Thread* thread = current_;
  FLEXOS_CHECK(thread != nullptr, "SwitchToRunLoop outside a thread");
  pending_reason_ = reason;
  StartFiberSwitch(run_loop_stack_bottom_, run_loop_stack_size_,
                   /*destroying_source=*/reason == SwitchReason::kExit);
  TsanSwitchToRunLoop();
  FLEXOS_CHECK(swapcontext(&thread->context_, &run_loop_context_) == 0,
               "swapcontext to run loop failed");
  // Resumed (the thread was rescheduled): complete the switch back in.
  FinishFiberSwitch(&run_loop_stack_bottom_, &run_loop_stack_size_);
}

void CoopScheduler::Yield() {
  Thread* thread = current_;
  FLEXOS_CHECK(thread != nullptr, "Yield outside a thread");
  machine_.ChargeMemOp(16);  // Run-queue manipulation.
  thread->state_ = ThreadState::kReady;
  SwitchToRunLoop(SwitchReason::kYield);
}

void CoopScheduler::BlockOn(WaitQueue& queue) {
  Thread* thread = current_;
  FLEXOS_CHECK(thread != nullptr, "BlockOn outside a thread");
  machine_.ChargeMemOp(16);  // Wait-queue manipulation.
  thread->state_ = ThreadState::kBlocked;
  pending_block_queue_ = &queue;
  SwitchToRunLoop(SwitchReason::kBlock);
}

Thread* CoopScheduler::WakeOne(WaitQueue& queue) {
  machine_.ChargeMemOp(16);  // Wait-queue manipulation.
  Thread* thread = queue.Dequeue();
  if (thread == nullptr) {
    return nullptr;
  }
  FLEXOS_CHECK(thread->state_ == ThreadState::kBlocked,
               "waking a non-blocked thread '%s'", thread->name().c_str());
  EnqueueReady(thread);
  CheckRunQueueInvariant();
  return thread;
}

size_t CoopScheduler::live_threads() const {
  size_t count = 0;
  for (const auto& thread : threads_) {
    if (thread->state() != ThreadState::kExited) {
      ++count;
    }
  }
  return count;
}

Status CoopScheduler::Run() {
  FLEXOS_CHECK(!in_run_loop_, "Run() is not reentrant");
  in_run_loop_ = true;
  CoopScheduler* previous_active = active_;
  active_ = this;
  Status result = Status::Ok();

  for (;;) {
    machine_.PollTimeSeries();
    if (fatal_trap_.has_value()) {
      result = Status(ErrorCode::kBadState,
                      "fatal trap: " + fatal_trap_->ToString());
      break;
    }
    Thread* next = nullptr;
    if (machine_.vcpu_count() > 1) {
      StealWork();
      const int vcpu = PickVCpu();
      if (vcpu >= 0) {
        machine_.SwitchVCpu(vcpu);
        next = ready_queues_[vcpu].PopFront();
      }
    } else {
      next = ready_queues_[0].PopFront();
    }
    if (next == nullptr) {
      // No runnable thread: let the platform make progress (deliver
      // packets, fire timers, advance virtual time). This also drains
      // in-flight I/O after the last thread exits — a server may close
      // with a full send buffer still on the wire. Devices and timers
      // live on the boot vCPU.
      machine_.SwitchVCpu(0);
      if (idle_handler_ && idle_handler_()) {
        continue;
      }
      if (live_threads() == 0) {
        break;  // Everything exited and the platform is quiescent.
      }
      result = Status(ErrorCode::kTimedOut,
                      "no runnable threads and idle handler cannot advance");
      break;
    }
    next->home_vcpu_ = machine_.current_vcpu();
    if (vcpu_queue_depth_[machine_.current_vcpu()] != nullptr) {
      // Depth after the dequeue: threads left waiting behind this dispatch.
      vcpu_queue_depth_[machine_.current_vcpu()]->Set(static_cast<int64_t>(
          ready_queues_[machine_.current_vcpu()].size()));
    }
    // Causality across vCPU clocks: the thread cannot run before the
    // (global virtual) time it became ready. No-op at one vCPU — a single
    // clock is monotone past every enqueue stamp.
    machine_.clock().AdvanceTo(next->ready_since_cycles_);
    CheckRunQueueInvariant();
    const SwitchReason reason = SwitchTo(next);
    switch (reason) {
      case SwitchReason::kYield:
        EnqueueReady(next);
        break;
      case SwitchReason::kBlock:
        FLEXOS_CHECK(pending_block_queue_ != nullptr, "block without queue");
        pending_block_queue_->Enqueue(next);
        pending_block_queue_ = nullptr;
        break;
      case SwitchReason::kExit:
        next->state_ = ThreadState::kExited;
        TsanDestroyThreadFiber(next);
        break;
    }
  }

  active_ = previous_active;
  in_run_loop_ = false;
  return result;
}

void CoopScheduler::CheckAddPrecondition(const Thread* thread) {
  (void)thread;  // The C scheduler trusts its callers.
}

void CoopScheduler::CheckRunQueueInvariant() {}

uint64_t CoopScheduler::SwitchCost() const {
  return machine_.costs().context_switch;
}

}  // namespace flexos
