// VerifiedScheduler: the runtime twin of the paper's Dafny-verified
// cooperative scheduler. Dafny discharges the invariants statically; our
// substitution (DESIGN.md §2) enforces the same invariants as runtime
// contracts in the glue code — which is also where the paper's prototype
// places its precondition checks ("we add these checks manually in our
// scheduler code", §2). Violations raise a kContractViolation trap.
//
// Contracts enforced:
//   pre(thread_add): the thread is not already added (paper's example).
//   inv(run queue):  each ready thread appears exactly once; every queued
//                    thread is in the kReady state; the running thread is
//                    never simultaneously queued.
//   cost:            each context switch pays verified_sched_extra cycles
//                    on top of the C scheduler's cost (218.6 ns vs 76.6 ns
//                    on the paper's testbed).
#ifndef FLEXOS_SCHED_VERIFIED_SCHEDULER_H_
#define FLEXOS_SCHED_VERIFIED_SCHEDULER_H_

#include "sched/coop_scheduler.h"

namespace flexos {

class VerifiedScheduler final : public CoopScheduler {
 public:
  explicit VerifiedScheduler(Machine& machine);

  uint64_t contract_checks() const { return contract_checks_; }

 protected:
  void CheckAddPrecondition(const Thread* thread) override;
  void CheckRunQueueInvariant() override;
  uint64_t SwitchCost() const override;

 private:
  uint64_t contract_checks_ = 0;
  obs::Counter* contract_counter_;  // sched.contract_checks
};

}  // namespace flexos

#endif  // FLEXOS_SCHED_VERIFIED_SCHEDULER_H_
