// Cooperative green threads. The execution vehicle is a host ucontext; the
// *guest* stacks that MPK isolates are modeled separately by the gate layer
// (each compartment owns stack regions in guest memory and the
// switched-stack gate copies arguments between them).
#ifndef FLEXOS_SCHED_THREAD_H_
#define FLEXOS_SCHED_THREAD_H_

#include <ucontext.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "hw/machine.h"
#include "hw/trap.h"
#include "support/intrusive_list.h"

namespace flexos {

enum class ThreadState : uint8_t {
  kReady,
  kRunning,
  kBlocked,
  kExited,
};

std::string_view ThreadStateName(ThreadState state);

class Scheduler;

class Thread {
 public:
  static constexpr size_t kHostStackSize = 256 * 1024;

  Thread(uint64_t id, std::string name, std::function<void()> entry);

  Thread(const Thread&) = delete;
  Thread& operator=(const Thread&) = delete;

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }
  ThreadState state() const { return state_; }

  // The trap that killed this thread, if it exited via an unhandled trap.
  const std::optional<TrapInfo>& fatal_trap() const { return fatal_trap_; }

  // True while the thread sits on the scheduler's ready queue.
  bool queued() const { return run_node_.linked(); }

  // vCPU this thread is pinned to; -1 means unpinned (eligible for work
  // stealing). Set at Spawn time.
  int affinity() const { return affinity_; }

  // Run queue the thread currently belongs to (its pin, or wherever work
  // stealing last placed it).
  int home_vcpu() const { return home_vcpu_; }

 private:
  friend class CoopScheduler;

  uint64_t id_;
  std::string name_;
  ThreadState state_ = ThreadState::kReady;
  std::function<void()> entry_;
  std::unique_ptr<char[]> host_stack_;
  ucontext_t context_{};
  std::optional<TrapInfo> fatal_trap_;
  int affinity_ = -1;
  int home_vcpu_ = 0;
  // Last vCPU this thread executed on; -1 before first run. A switch-in on
  // a different vCPU models reinstalling the per-core protection-key
  // register (one WRPKRU).
  int last_ran_vcpu_ = -1;
  // Cycle stamp (on the enqueueing vCPU's clock) of the last transition to
  // ready; the run loop advances the executing vCPU's clock to at least
  // this before the thread runs, preserving causality across vCPUs.
  uint64_t ready_since_cycles_ = 0;
  // The machine execution context (PKRU, instrumentation) this thread was
  // running under; saved on switch-out, restored on switch-in so protection
  // state is per-thread, as on real hardware.
  ExecContext exec_context_;
  // flexrace happens-before snapshots (Machine::RaceRelease handles, 0 =
  // none). `hb_ready_handle_` carries the waker's clock from EnqueueReady to
  // the switch-in; `hb_migrate_handle_` carries the thread's own program
  // order across a switch-out so a resume on another vCPU stays ordered.
  uint64_t hb_ready_handle_ = 0;
  uint64_t hb_migrate_handle_ = 0;
  // TSan fiber handle for this thread's ucontext stack (thread-sanitizer
  // builds only; null otherwise).
  void* tsan_fiber_ = nullptr;

  ListNode run_node_;   // Run-queue linkage.
  ListNode wait_node_;  // Wait-queue linkage.

 public:
  // Exposed for IntrusiveList member-pointer template arguments.
  static constexpr ListNode Thread::* kRunNode = &Thread::run_node_;
  static constexpr ListNode Thread::* kWaitNode = &Thread::wait_node_;
};

}  // namespace flexos

#endif  // FLEXOS_SCHED_THREAD_H_
