// Scheduler interface. The API mirrors the micro-library the paper
// describes (thread_add / thread_rm / yield) plus the run loop that stands
// in for the boot CPU. Two implementations exist:
//   * CoopScheduler      — the fast C scheduler.
//   * VerifiedScheduler  — the contract-checked analog of the paper's
//                          Dafny-verified scheduler (see DESIGN.md §2).
#ifndef FLEXOS_SCHED_SCHEDULER_H_
#define FLEXOS_SCHED_SCHEDULER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hw/machine.h"
#include "sched/thread.h"
#include "support/status.h"

namespace flexos {

class WaitQueue;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // Creates a thread and adds it to the run queue (paper API: thread_add).
  virtual Result<Thread*> Spawn(std::string name,
                                std::function<void()> entry) = 0;

  // Removes a thread that has not started running (paper API: thread_rm).
  virtual Status Remove(Thread* thread) = 0;

  // Re-adds a previously removed thread to the run queue (paper API:
  // thread_add). Its precondition — the thread must not already be added —
  // is exactly the example the paper gives for contract checking: the
  // verified scheduler traps on violation, the C scheduler silently
  // tolerates the buggy call.
  virtual Status Add(Thread* thread) = 0;

  // Cooperatively yields the current thread (paper API: yield). Must be
  // called from inside a running thread.
  virtual void Yield() = 0;

  // Blocks the current thread on `queue` until woken.
  virtual void BlockOn(WaitQueue& queue) = 0;

  // Moves one waiter (FIFO) from `queue` to the run queue. Returns the
  // woken thread or nullptr if the queue was empty.
  virtual Thread* WakeOne(WaitQueue& queue) = 0;

  // Thread currently executing, or nullptr when in the run loop.
  virtual Thread* Current() = 0;

  // Runs until all threads exit, a fatal trap occurs, or no progress is
  // possible. Returns kBadState with the trap detail on a fatal trap and
  // kTimedOut if runnable work remains but the idle handler cannot advance.
  virtual Status Run() = 0;

  // Installed by the platform: invoked when no thread is runnable. Returns
  // true if it made progress (e.g. advanced virtual time and delivered
  // packets that woke threads); false means the system is idle/deadlocked.
  virtual void SetIdleHandler(std::function<bool()> handler) = 0;

  // Number of context switches performed (microbenchmark hook).
  virtual uint64_t context_switches() const = 0;
};

}  // namespace flexos

#endif  // FLEXOS_SCHED_SCHEDULER_H_
