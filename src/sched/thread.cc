#include "sched/thread.h"

namespace flexos {

std::string_view ThreadStateName(ThreadState state) {
  switch (state) {
    case ThreadState::kReady:
      return "ready";
    case ThreadState::kRunning:
      return "running";
    case ThreadState::kBlocked:
      return "blocked";
    case ThreadState::kExited:
      return "exited";
  }
  return "?";
}

Thread::Thread(uint64_t id, std::string name, std::function<void()> entry)
    : id_(id),
      name_(std::move(name)),
      entry_(std::move(entry)),
      host_stack_(new char[kHostStackSize]) {}

}  // namespace flexos
