// The cooperative round-robin scheduler ("the C scheduler" in the paper's
// §4 microbenchmark: 76.6 ns per context switch on the testbed).
#ifndef FLEXOS_SCHED_COOP_SCHEDULER_H_
#define FLEXOS_SCHED_COOP_SCHEDULER_H_

#include <memory>
#include <vector>

#include "obs/metrics.h"
#include "sched/scheduler.h"
#include "sched/wait_queue.h"

namespace flexos {

class CoopScheduler : public Scheduler {
 public:
  explicit CoopScheduler(Machine& machine);
  ~CoopScheduler() override;

  Result<Thread*> Spawn(std::string name,
                        std::function<void()> entry) override;
  // Spawn with a vCPU pin: the thread only ever runs (and is never stolen
  // from) run queue `affinity`. -1 or an id beyond the machine's vCPU count
  // means unpinned.
  Result<Thread*> Spawn(std::string name, std::function<void()> entry,
                        int affinity);
  Status Remove(Thread* thread) override;
  Status Add(Thread* thread) override;
  void Yield() override;
  void BlockOn(WaitQueue& queue) override;
  Thread* WakeOne(WaitQueue& queue) override;
  Thread* Current() override { return current_; }
  Status Run() override;
  void SetIdleHandler(std::function<bool()> handler) override {
    idle_handler_ = std::move(handler);
  }
  uint64_t context_switches() const override { return context_switches_; }

  Machine& machine() { return machine_; }
  const Machine& machine() const { return machine_; }

  // Threads alive (ready, running, or blocked).
  size_t live_threads() const;

 protected:
  // Hook points for the contract-checked subclass. Defaults are no-ops /
  // base costs.
  virtual void CheckAddPrecondition(const Thread* thread);
  virtual void CheckRunQueueInvariant();
  virtual uint64_t SwitchCost() const;

  // Exposes one vCPU's ready queue to invariant checks.
  IntrusiveList<Thread, Thread::kRunNode>& ready_queue(int vcpu) {
    return ready_queues_[vcpu];
  }
  const std::vector<std::unique_ptr<Thread>>& threads() const {
    return threads_;
  }

 private:
  enum class SwitchReason : uint8_t { kYield, kBlock, kExit };

  static void Trampoline();

  // Switches from the run loop into `thread` and back; returns why the
  // thread came back.
  SwitchReason SwitchTo(Thread* thread);

  // Switches from the current thread back to the run loop.
  void SwitchToRunLoop(SwitchReason reason);

  // Run queue a thread belongs on (its pin, else its home queue).
  int QueueOf(const Thread* thread) const;

  // Marks `thread` ready on its queue, stamping ready_since_cycles_ from
  // the current vCPU's clock.
  void EnqueueReady(Thread* thread);

  // Deterministic pick: the non-empty run queue whose vCPU clock is
  // furthest behind; ties break toward the lowest vCPU id. -1 if all
  // queues are empty.
  int PickVCpu() const;

  // Deterministic work stealing: each idle vCPU (ascending) takes the first
  // unpinned thread from the fullest queue (>= 2 entries, ties toward the
  // lowest donor id). No-op at one vCPU.
  void StealWork();

  // ASan fiber annotations around swapcontext (no-ops in regular builds).
  // Without them ASan keeps tracking the old stack across a switch, and a
  // TrapException thrown on a fiber stack makes __asan_handle_no_return
  // scribble over dead frames (stack-use-after-scope in sigaltstack; see
  // google/sanitizers#189). `destroying_source` releases the source
  // fiber's fake stack on its final exit switch.
  void StartFiberSwitch(const void* dest_bottom, size_t dest_size,
                        bool destroying_source);
  void FinishFiberSwitch(const void** source_bottom, size_t* source_size);

  // TSan fiber annotations (no-ops outside -fsanitize=thread builds): TSan
  // models each ucontext stack as a fiber, so every swapcontext must be
  // bracketed by a __tsan_switch_to_fiber or TSan reports false races
  // between frames of unrelated fibers.
  void TsanSwitchToThread(Thread* thread);
  void TsanSwitchToRunLoop();
  void TsanDestroyThreadFiber(Thread* thread);

  Machine& machine_;
  // Registry-resolved metrics (obs/names.h): context-switch counter and
  // run-slice length histogram, recorded per SwitchTo.
  obs::Counter* switch_counter_;
  obs::LatencyHistogram* slice_hist_;
  // Per-vCPU utilization telemetry (flexwatch, DESIGN.md §14), resolved for
  // [0, machine.vcpu_count()) at construction; null beyond that, so a
  // vCPU-count change after construction degrades to uncounted, not UB.
  obs::Counter* vcpu_busy_cycles_[kMaxVCpus] = {};
  obs::Counter* vcpu_steals_[kMaxVCpus] = {};
  obs::Gauge* vcpu_queue_depth_[kMaxVCpus] = {};
  std::vector<std::unique_ptr<Thread>> threads_;
  // One run queue per vCPU; only [0, machine().vcpu_count()) are used.
  // A C array because IntrusiveList is pinned (sentinel self-pointers).
  IntrusiveList<Thread, Thread::kRunNode> ready_queues_[kMaxVCpus];
  Thread* current_ = nullptr;
  ucontext_t run_loop_context_{};
  SwitchReason pending_reason_ = SwitchReason::kYield;
  WaitQueue* pending_block_queue_ = nullptr;
  std::function<bool()> idle_handler_;
  uint64_t next_thread_id_ = 1;
  uint64_t context_switches_ = 0;
  std::optional<TrapInfo> fatal_trap_;
  bool in_run_loop_ = false;

  // Fiber-annotation state: the fake-stack handle handed across each
  // swapcontext, and the run-loop stack bounds captured on first fiber
  // entry (needed to annotate switches back out of a fiber).
  void* fiber_fake_stack_ = nullptr;
  const void* run_loop_stack_bottom_ = nullptr;
  size_t run_loop_stack_size_ = 0;
  // TSan fiber handle of the run loop's native stack (captured lazily on the
  // first switch into a thread; null outside TSan builds).
  void* tsan_run_loop_fiber_ = nullptr;

  // makecontext(3) passes only ints; the trampoline recovers the scheduler
  // through this (single-CPU simulator, so one active scheduler at a time).
  static CoopScheduler* active_;
};

}  // namespace flexos

#endif  // FLEXOS_SCHED_COOP_SCHEDULER_H_
