#include "sched/wait_queue.h"

// WaitQueue is header-only today; this TU anchors the target.
