// A FIFO wait queue of blocked threads. Pure container: the scheduler owns
// the state transitions.
#ifndef FLEXOS_SCHED_WAIT_QUEUE_H_
#define FLEXOS_SCHED_WAIT_QUEUE_H_

#include <string>

#include "sched/thread.h"
#include "support/intrusive_list.h"

namespace flexos {

class WaitQueue {
 public:
  explicit WaitQueue(std::string name = "waitq") : name_(std::move(name)) {}

  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  const std::string& name() const { return name_; }
  bool empty() const { return waiters_.empty(); }
  size_t size() const { return waiters_.size(); }

  void Enqueue(Thread* thread) { waiters_.PushBack(thread); }
  Thread* Dequeue() { return waiters_.PopFront(); }
  void Remove(Thread* thread) { waiters_.Remove(thread); }
  bool Contains(const Thread* thread) const {
    return waiters_.Contains(thread);
  }

 private:
  std::string name_;
  // Mutable so Contains can stay const with the minimal iterator API.
  mutable IntrusiveList<Thread, Thread::kWaitNode> waiters_;
};

}  // namespace flexos

#endif  // FLEXOS_SCHED_WAIT_QUEUE_H_
