#include "sched/verified_scheduler.h"

#include <unordered_set>

#include "obs/names.h"
#include "support/strings.h"

namespace flexos {

VerifiedScheduler::VerifiedScheduler(Machine& machine)
    : CoopScheduler(machine),
      contract_counter_(
          &machine.metrics().GetCounter(obs::kMetricSchedContractChecks)) {}

void VerifiedScheduler::CheckAddPrecondition(const Thread* thread) {
  ++contract_checks_;
  contract_counter_->Add();
  if (thread == nullptr) {
    return;  // Reported as a Status by the caller.
  }
  if (thread->queued() || thread->state() == ThreadState::kRunning ||
      thread->state() == ThreadState::kBlocked) {
    RaiseTrap(TrapInfo{
        .kind = TrapKind::kContractViolation,
        .detail = StrFormat(
            "thread_add precondition: thread '%s' (state=%s) already added",
            thread->name().c_str(),
            std::string(ThreadStateName(thread->state())).c_str())});
  }
}

void VerifiedScheduler::CheckRunQueueInvariant() {
  ++contract_checks_;
  contract_counter_->Add();
  std::unordered_set<const Thread*> seen;
  for (int vcpu = 0; vcpu < machine().vcpu_count(); ++vcpu) {
    for (Thread& thread : ready_queue(vcpu)) {
      if (!seen.insert(&thread).second) {
        RaiseTrap(TrapInfo{
            .kind = TrapKind::kContractViolation,
            .detail = StrFormat("run-queue invariant: thread '%s' queued twice",
                                thread.name().c_str())});
      }
      if (thread.state() != ThreadState::kReady) {
        RaiseTrap(TrapInfo{
            .kind = TrapKind::kContractViolation,
            .detail = StrFormat(
                "run-queue invariant: queued thread '%s' has state %s",
                thread.name().c_str(),
                std::string(ThreadStateName(thread.state())).c_str())});
      }
      if (thread.affinity() >= 0 && thread.affinity() != vcpu) {
        RaiseTrap(TrapInfo{
            .kind = TrapKind::kContractViolation,
            .detail = StrFormat(
                "run-queue invariant: thread '%s' pinned to vCPU %d found on "
                "queue %d",
                thread.name().c_str(), thread.affinity(), vcpu)});
      }
    }
  }
  const Thread* running = Current();
  if (running != nullptr && seen.count(running) != 0) {
    RaiseTrap(TrapInfo{
        .kind = TrapKind::kContractViolation,
        .detail = StrFormat(
            "run-queue invariant: running thread '%s' is also queued",
            running->name().c_str())});
  }
}

uint64_t VerifiedScheduler::SwitchCost() const {
  const CostModel& costs = machine().costs();
  return costs.context_switch + costs.verified_sched_extra;
}

}  // namespace flexos
