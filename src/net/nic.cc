#include "net/nic.h"

namespace flexos {

void Nic::AttachTo(Link& link, bool is_side_a) {
  link_ = &link;
  is_side_a_ = is_side_a;
  if (is_side_a) {
    link.AttachA(this);
  } else {
    link.AttachB(this);
  }
}

void Nic::DeliverFrame(std::vector<uint8_t> frame) {
  if (rx_queue_.size() >= kDefaultRxQueueDepth) {
    ++stats_.rx_dropped;
    return;
  }
  ++stats_.rx_frames;
  stats_.rx_bytes += frame.size();
  rx_queue_.push_back(std::move(frame));
}

std::vector<uint8_t> Nic::PopRx() {
  FLEXOS_CHECK(!rx_queue_.empty(), "PopRx on empty queue");
  std::vector<uint8_t> frame = std::move(rx_queue_.front());
  rx_queue_.pop_front();
  return frame;
}

void Nic::Transmit(std::vector<uint8_t> frame) {
  FLEXOS_CHECK(link_ != nullptr, "NIC '%s' not attached", name_.c_str());
  ++stats_.tx_frames;
  stats_.tx_bytes += frame.size();
  if (is_side_a_) {
    link_->SendFromA(std::move(frame));
  } else {
    link_->SendFromB(std::move(frame));
  }
}

}  // namespace flexos
