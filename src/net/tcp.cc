#include "net/tcp.h"

#include <algorithm>

#include "obs/names.h"
#include "support/log.h"
#include "support/strings.h"

namespace flexos {
namespace {

// Deterministic initial sequence numbers, spaced out per connection.
constexpr uint32_t kIssBase = 10'000;
constexpr uint32_t kIssStride = 1 << 16;

}  // namespace

std::string_view TcpStateName(TcpState state) {
  switch (state) {
    case TcpState::kListen:
      return "LISTEN";
    case TcpState::kSynSent:
      return "SYN_SENT";
    case TcpState::kSynReceived:
      return "SYN_RCVD";
    case TcpState::kEstablished:
      return "ESTABLISHED";
    case TcpState::kFinWait1:
      return "FIN_WAIT_1";
    case TcpState::kFinWait2:
      return "FIN_WAIT_2";
    case TcpState::kCloseWait:
      return "CLOSE_WAIT";
    case TcpState::kLastAck:
      return "LAST_ACK";
    case TcpState::kClosed:
      return "CLOSED";
  }
  return "?";
}

TcpEngine::TcpEngine(const Deps& deps, TcpConfig config)
    : machine_(deps.machine),
      space_(deps.space),
      allocator_(deps.allocator),
      scheduler_(deps.scheduler),
      nic_(deps.nic),
      router_(deps.router),
      config_(config),
      net_to_libc_(router_.Resolve(kLibNet, kLibLibc)),
      libc_to_sched_(router_.Resolve(kLibLibc, kLibSched)) {
  obs::MetricsRegistry& metrics = machine_.metrics();
  counters_.segments_rx = &metrics.GetCounter(obs::kMetricTcpSegmentsRx);
  counters_.segments_tx = &metrics.GetCounter(obs::kMetricTcpSegmentsTx);
  counters_.bytes_rx = &metrics.GetCounter(obs::kMetricTcpBytesRx);
  counters_.bytes_tx = &metrics.GetCounter(obs::kMetricTcpBytesTx);
  counters_.retransmits = &metrics.GetCounter(obs::kMetricTcpRetransmits);
  counters_.out_of_order_drops =
      &metrics.GetCounter(obs::kMetricTcpOooDrops);
  counters_.conns_accepted =
      &metrics.GetCounter(obs::kMetricTcpConnsAccepted);
  counters_.resets = &metrics.GetCounter(obs::kMetricTcpResets);
}

const TcpStats& TcpEngine::stats() const {
  stats_.segments_rx = counters_.segments_rx->value();
  stats_.segments_tx = counters_.segments_tx->value();
  stats_.bytes_rx = counters_.bytes_rx->value();
  stats_.bytes_tx = counters_.bytes_tx->value();
  stats_.retransmits = counters_.retransmits->value();
  stats_.out_of_order_drops = counters_.out_of_order_drops->value();
  stats_.conns_accepted = counters_.conns_accepted->value();
  stats_.resets = counters_.resets->value();
  return stats_;
}

void TcpEngine::SignalSem(Semaphore* sem) {
  if (!signal_scope_) {
    router_.Call(net_to_libc_, [sem] { sem->Signal(); });
    return;
  }
  if (!signal_batch_.has_value() && deferred_signal_ == nullptr) {
    // A lone wakeup must not pay for a batch entry/exit; park it until we
    // know whether this scope produces a second one.
    deferred_signal_ = sem;
    return;
  }
  if (!signal_batch_.has_value()) {
    signal_batch_.emplace(router_, net_to_libc_);
    Semaphore* first = deferred_signal_;
    deferred_signal_ = nullptr;
    signal_batch_->Run([first] { first->Signal(); });
  }
  signal_batch_->Run([sem] { sem->Signal(); });
}

void TcpEngine::BeginSignalScope() {
  if (config_.batch_crossings && net_to_libc_.cross) {
    signal_scope_ = true;
  }
}

void TcpEngine::EndSignalScope() {
  if (signal_batch_.has_value()) {
    signal_batch_.reset();  // Flushes the batch's exit crossing.
  } else if (deferred_signal_ != nullptr) {
    // Only one wakeup this scope: identical cost to the unbatched path.
    Semaphore* sem = deferred_signal_;
    router_.Call(net_to_libc_, [sem] { sem->Signal(); });
  }
  deferred_signal_ = nullptr;
  signal_scope_ = false;
}

TcpEngine::~TcpEngine() {
  for (auto& [id, conn] : conns_) {
    if (conn->rings_base != 0) {
      (void)allocator_.Free(conn->rings_base);
      conn->rings_base = 0;
    }
  }
}

Result<TcpEngine::Conn*> TcpEngine::CreateConn(const ConnKey& key,
                                               const MacAddr& remote_mac) {
  if (conn_by_key_.count(key) != 0) {
    return Status(ErrorCode::kAlreadyExists, "connection already exists");
  }
  auto conn = std::make_unique<Conn>();
  conn->id = next_id_++;
  conn->key = key;
  conn->remote_mac = remote_mac;
  conn->iss = kIssBase + static_cast<uint32_t>(conn->id) * kIssStride;

  const uint64_t footprint = RingBuffer::FootprintBytes(config_.ring_bytes);
  FLEXOS_ASSIGN_OR_RETURN(conn->rings_base,
                          allocator_.Allocate(2 * footprint, kShadowGranule));
  conn->send_ring =
      RingBuffer::Create(space_, conn->rings_base, config_.ring_bytes);
  conn->recv_ring = RingBuffer::Create(space_, conn->rings_base + footprint,
                                       config_.ring_bytes);
  conn->recv_sem = std::make_unique<Semaphore>(
      scheduler_, StrFormat("tcp.%d.recv", conn->id), 0, &router_);
  conn->send_sem = std::make_unique<Semaphore>(
      scheduler_, StrFormat("tcp.%d.send", conn->id), 0, &router_);

  Conn* raw = conn.get();
  conn_by_key_[key] = raw->id;
  conns_[raw->id] = std::move(conn);
  return raw;
}

Result<int> TcpEngine::Connect(Ipv4Addr dst_ip, const MacAddr& dst_mac,
                               Port dst_port) {
  machine_.ChargeCompute(machine_.costs().syscall_ish);
  const Port local_port = next_ephemeral_++;
  FLEXOS_ASSIGN_OR_RETURN(
      Conn * conn, CreateConn(ConnKey{.local_port = local_port,
                                      .remote_ip = dst_ip,
                                      .remote_port = dst_port},
                              dst_mac));
  conn->state = TcpState::kSynSent;
  conn->snd_una = conn->iss;
  conn->snd_nxt = conn->iss + 1;
  conn->inflight.push_back(InFlightSeg{.seq = conn->iss,
                                       .len = 0,
                                       .fin = false,
                                       .sent_at_cycles =
                                           machine_.clock().cycles()});
  TransmitSegment(*conn, kTcpSyn, conn->iss, nullptr, 0);

  // Block until established or aborted (recv_sem doubles as the
  // connection-event signal while in SYN_SENT).
  while (conn->state == TcpState::kSynSent) {
    Semaphore* sem = conn->recv_sem.get();
    router_.Call(net_to_libc_, [sem] { sem->Wait(); });
  }
  if (conn->state != TcpState::kEstablished) {
    return Status(ErrorCode::kConnectionRefused,
                  StrFormat("connect failed in state %s",
                            std::string(TcpStateName(conn->state)).c_str()));
  }
  return conn->id;
}

TcpEngine::Conn* TcpEngine::FindConn(int conn_id) {
  auto it = conns_.find(conn_id);
  return it == conns_.end() ? nullptr : it->second.get();
}

const TcpEngine::Conn* TcpEngine::FindConn(int conn_id) const {
  auto it = conns_.find(conn_id);
  return it == conns_.end() ? nullptr : it->second.get();
}

uint32_t TcpEngine::InFlightBytes(const Conn& conn) const {
  uint32_t bytes = conn.snd_nxt - conn.snd_una;
  if (conn.fin_sent) {
    bytes -= 1;  // The FIN occupies one phantom sequence number.
  }
  return bytes;
}

uint16_t TcpEngine::AdvertisedWindow(Conn& conn) const {
  const uint64_t free_space = conn.recv_ring->WritableBytes();
  return static_cast<uint16_t>(std::min<uint64_t>(free_space, 0xffff));
}

uint64_t TcpEngine::RtoCycles(const Conn& conn) const {
  const int backoff = std::min(conn.retries, 6);
  return machine_.clock().NanosToCycles(config_.rto_ns) << backoff;
}

Result<int> TcpEngine::Listen(Port port, int backlog) {
  if (backlog <= 0) {
    return Status(ErrorCode::kInvalidArgument, "backlog must be positive");
  }
  for (const auto& [id, listener] : listeners_) {
    if (listener->port == port) {
      return Status(ErrorCode::kAlreadyExists, "port already bound");
    }
  }
  auto listener = std::make_unique<Listener>();
  listener->id = next_id_++;
  listener->port = port;
  listener->backlog = backlog;
  listener->accept_sem = std::make_unique<Semaphore>(
      scheduler_, StrFormat("tcp.accept.%u", port), 0, &router_);
  const int id = listener->id;
  listeners_[id] = std::move(listener);
  return id;
}

Result<int> TcpEngine::Accept(int listener_id) {
  auto it = listeners_.find(listener_id);
  if (it == listeners_.end()) {
    return Status(ErrorCode::kNotFound, "no such listener");
  }
  Listener& listener = *it->second;
  machine_.ChargeCompute(machine_.costs().syscall_ish);
  while (listener.pending.empty()) {
    Semaphore* sem = listener.accept_sem.get();
    router_.Call(net_to_libc_, [sem] { sem->Wait(); });
  }
  const int conn_id = listener.pending.front();
  listener.pending.pop_front();
  Conn* conn = FindConn(conn_id);
  FLEXOS_CHECK(conn != nullptr, "pending conn vanished");
  conn->listener_id = -1;
  counters_.conns_accepted->Add();
  // Each accepted connection is one request: the attributor charges every
  // cycle between here and Close to it (DESIGN.md §8).
  obs::Attributor& attrib = machine_.attrib();
  if (attrib.enabled()) {
    conn->trace_request =
        attrib
            .BeginRequest(StrFormat("tcp:%u", conn->key.local_port),
                          machine_.clock().cycles(),
                          machine_.clock().NowNanos())
            .id;
  }
  return conn_id;
}

void TcpEngine::TransmitSegment(Conn& conn, uint8_t flags, uint32_t seq,
                                const uint8_t* payload,
                                uint32_t payload_len) {
  machine_.ChargeCompute(machine_.costs().pkt_tx_fixed);
  machine_.ChargeCompute(static_cast<uint64_t>(
      machine_.costs().pkt_per_byte * static_cast<double>(payload_len)));
  // Header construction touches a cache line of guest state.
  machine_.ChargeMemOp(64);
  // pbufs come from a per-stack pool (lwip-style), not malloc: a pointer
  // bump, so SH allocator instrumentation does not tax the packet path —
  // consistent with Table 1's tiny scheduler/netstack SH overheads.
  machine_.ChargeCompute(30);

  TcpHeader header;
  header.src_port = conn.key.local_port;
  header.dst_port = conn.key.remote_port;
  header.seq = seq;
  header.ack = conn.rcv_nxt;
  header.flags = flags;
  header.window = AdvertisedWindow(conn);
  conn.last_advertised_wnd = header.window;

  std::vector<uint8_t> frame =
      BuildTcpFrame(nic_.mac(), conn.remote_mac, nic_.ip(),
                    conn.key.remote_ip, header, payload, payload_len);
  counters_.segments_tx->Add();
  counters_.bytes_tx->Add(payload_len);
  machine_.tracer().RecordInstant(obs::TraceCat::kNet, "net.tcp.tx",
                                  machine_.context().compartment + 1,
                                  payload_len, flags);
  nic_.Transmit(std::move(frame));
}

void TcpEngine::SendAck(Conn& conn) {
  TransmitSegment(conn, kTcpAck, conn.snd_nxt, nullptr, 0);
}

void TcpEngine::TrySend(Conn& conn) {
  if (conn.state != TcpState::kEstablished &&
      conn.state != TcpState::kCloseWait &&
      conn.state != TcpState::kFinWait1 &&
      conn.state != TcpState::kLastAck) {
    return;
  }
  std::vector<uint8_t> scratch(config_.mss);
  for (;;) {
    const uint32_t in_flight = InFlightBytes(conn);
    const uint64_t queued = conn.send_ring->ReadableBytes();
    const uint64_t unsent = queued - in_flight;
    const uint64_t window_left =
        conn.peer_wnd > in_flight ? conn.peer_wnd - in_flight : 0;
    const uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>({unsent, window_left, config_.mss}));
    if (len == 0) {
      break;
    }
    // Copy the payload out of the send ring (a LibC memcpy).
    router_.CallLeaf(net_to_libc_, [&] {
      conn.send_ring->Peek(in_flight, scratch.data(), len);
    });
    const uint32_t seq = conn.snd_nxt;
    conn.inflight.push_back(InFlightSeg{.seq = seq,
                                        .len = len,
                                        .fin = false,
                                        .sent_at_cycles =
                                            machine_.clock().cycles()});
    conn.snd_nxt += len;
    TransmitSegment(conn, kTcpAck | kTcpPsh, seq, scratch.data(), len);
  }
  // Emit the FIN once all queued data is out.
  if (conn.fin_pending && !conn.fin_sent &&
      conn.send_ring->ReadableBytes() == InFlightBytes(conn)) {
    const uint32_t seq = conn.snd_nxt;
    conn.inflight.push_back(InFlightSeg{.seq = seq,
                                        .len = 0,
                                        .fin = true,
                                        .sent_at_cycles =
                                            machine_.clock().cycles()});
    conn.snd_nxt += 1;
    conn.fin_sent = true;
    TransmitSegment(conn, kTcpFin | kTcpAck, seq, nullptr, 0);
  }
  // Arm the persist timer on a closed peer window with pending data.
  if (conn.peer_wnd == 0 && conn.inflight.empty() &&
      conn.send_ring->ReadableBytes() > 0 && conn.persist_deadline == 0) {
    conn.persist_deadline = machine_.clock().cycles() + RtoCycles(conn);
  }
}

Result<uint64_t> TcpEngine::Send(int conn_id, Gaddr addr, uint64_t len) {
  Conn* conn = FindConn(conn_id);
  if (conn == nullptr) {
    return Status(ErrorCode::kNotFound, "no such connection");
  }
  machine_.ChargeCompute(machine_.costs().syscall_ish);
  machine_.ChargeMemOp(64);  // Socket/TCB state touch.
  // Socket-layer lock: a LibC mutex acquire/release guards every socket
  // op — one of the per-call crossings that make small-buffer recv loops
  // expensive under isolation (Fig. 3) and keep the LibC compartment on
  // Redis' hot path (Fig. 5).
  router_.Call(net_to_libc_, [this] {
    machine_.ChargeMemOp(32);
    // The mutex itself is built on scheduler wait queues (Unikraft's
    // uk_mutex), so even the uncontended path touches the scheduler.
    router_.Call(libc_to_sched_, [this] { machine_.ChargeMemOp(16); });
  });
  uint64_t queued = 0;
  while (queued < len) {
    if (conn->state != TcpState::kEstablished &&
        conn->state != TcpState::kCloseWait) {
      return Status(ErrorCode::kNotConnected,
                    StrFormat("send in state %s",
                              std::string(TcpStateName(conn->state)).c_str()));
    }
    uint64_t pushed = 0;
    router_.CallLeaf(net_to_libc_, [&] {
      pushed = conn->send_ring->PushFromGuest(addr + queued, len - queued);
    });
    queued += pushed;
    TrySend(*conn);
    if (queued < len) {
      Semaphore* sem = conn->send_sem.get();
      router_.Call(net_to_libc_, [sem] { sem->Wait(); });
    }
  }
  return queued;
}

Result<uint64_t> TcpEngine::Recv(int conn_id, Gaddr addr, uint64_t len) {
  Conn* conn = FindConn(conn_id);
  if (conn == nullptr) {
    return Status(ErrorCode::kNotFound, "no such connection");
  }
  machine_.ChargeCompute(machine_.costs().syscall_ish);
  machine_.ChargeMemOp(64);  // Socket/TCB state touch.
  // Socket-layer lock (see Send).
  router_.Call(net_to_libc_, [this] {
    machine_.ChargeMemOp(32);
    // The mutex itself is built on scheduler wait queues (Unikraft's
    // uk_mutex), so even the uncontended path touches the scheduler.
    router_.Call(libc_to_sched_, [this] { machine_.ChargeMemOp(16); });
  });
  for (;;) {
    if (!conn->recv_ring->Empty()) {
      break;
    }
    if (conn->fin_received) {
      return uint64_t{0};  // Orderly EOF.
    }
    if (conn->state == TcpState::kClosed) {
      return Status(ErrorCode::kConnectionReset, "connection aborted");
    }
    Semaphore* sem = conn->recv_sem.get();
    router_.Call(net_to_libc_, [sem] { sem->Wait(); });
  }
  uint64_t copied = 0;
  router_.CallLeaf(net_to_libc_, [&] {
    copied = conn->recv_ring->PopToGuest(addr, len);
  });
  counters_.bytes_rx->Add(copied);
  // Window update: if we had clamped the advertised window and reading
  // reopened it, tell the peer (otherwise a zero-window stall can only be
  // broken by the peer's persist probe).
  if (conn->state != TcpState::kClosed &&
      conn->last_advertised_wnd < config_.window_update_threshold &&
      AdvertisedWindow(*conn) >= config_.window_update_threshold) {
    SendAck(*conn);
  }
  return copied;
}

Status TcpEngine::Close(int conn_id) {
  // Closing a listener?
  auto listener_it = listeners_.find(conn_id);
  if (listener_it != listeners_.end()) {
    listeners_.erase(listener_it);
    return Status::Ok();
  }
  Conn* conn = FindConn(conn_id);
  if (conn == nullptr) {
    return Status(ErrorCode::kNotFound, "no such connection");
  }
  if (conn->trace_request != 0) {
    machine_.attrib().EndRequest(conn->trace_request,
                                 machine_.clock().cycles(),
                                 machine_.clock().NowNanos());
    conn->trace_request = 0;
  }
  switch (conn->state) {
    case TcpState::kEstablished:
      conn->state = TcpState::kFinWait1;
      break;
    case TcpState::kCloseWait:
      conn->state = TcpState::kLastAck;
      break;
    case TcpState::kClosed:
      return Status::Ok();
    default:
      conn->state = TcpState::kClosed;
      return Status::Ok();
  }
  conn->fin_pending = true;
  TrySend(*conn);
  return Status::Ok();
}

TcpState TcpEngine::StateOf(int conn_id) const {
  const Conn* conn = FindConn(conn_id);
  return conn == nullptr ? TcpState::kClosed : conn->state;
}

void TcpEngine::HandleSyn(const ParsedFrame& frame) {
  const TcpHeader& tcp = *frame.tcp;
  Listener* listener = nullptr;
  for (auto& [id, candidate] : listeners_) {
    if (candidate->port == tcp.dst_port) {
      listener = candidate.get();
      break;
    }
  }
  if (listener == nullptr) {
    return;  // No listener: drop (a full stack would send RST).
  }
  // Enforce the backlog across pending-accept and half-open connections.
  int half_open = 0;
  for (const auto& [id, conn] : conns_) {
    if (conn->listener_id == listener->id) {
      ++half_open;
    }
  }
  if (half_open >= listener->backlog) {
    return;  // Drop: client will retransmit the SYN.
  }

  Result<Conn*> created =
      CreateConn(ConnKey{.local_port = tcp.dst_port,
                         .remote_ip = frame.ip.src,
                         .remote_port = tcp.src_port},
                 frame.eth.src);
  if (!created.ok()) {
    FLEXOS_WARN("tcp: connection setup failed: %s",
                created.status().ToString().c_str());
    return;
  }
  Conn& ref = *created.value();
  ref.state = TcpState::kSynReceived;
  ref.snd_una = ref.iss;
  ref.snd_nxt = ref.iss + 1;  // SYN consumes one sequence number.
  ref.rcv_nxt = tcp.seq + 1;
  ref.peer_wnd = tcp.window;
  ref.listener_id = listener->id;

  // SYN-ACK (tracked in-flight so a lost one is retransmitted).
  TransmitSegment(ref, kTcpSyn | kTcpAck, ref.iss, nullptr, 0);
  ref.inflight.push_back(InFlightSeg{.seq = ref.iss,
                                     .len = 0,
                                     .fin = false,
                                     .sent_at_cycles =
                                         machine_.clock().cycles()});
}

void TcpEngine::ProcessAck(Conn& conn, const TcpHeader& header) {
  if ((header.flags & kTcpAck) == 0) {
    return;
  }
  conn.peer_wnd = header.window;
  const uint32_t ack = header.ack;
  if (!SeqLt(conn.snd_una, ack) || !SeqLe(ack, conn.snd_nxt)) {
    return;  // Duplicate or out-of-range ACK; window update already taken.
  }
  const uint32_t acked = ack - conn.snd_una;
  conn.snd_una = ack;
  conn.retries = 0;

  // Pop acknowledged payload bytes from the send ring. SYN/FIN occupy
  // phantom sequence numbers that have no ring backing.
  const uint64_t ring_bytes =
      std::min<uint64_t>(acked, conn.send_ring->ReadableBytes());
  if (ring_bytes > 0) {
    conn.send_ring->Discard(ring_bytes);
    Semaphore* sem = conn.send_sem.get();
    SignalSem(sem);
  }
  // Prune fully acknowledged in-flight segments. (The SYN-ACK pseudo
  // segment never reaches this path: it is cleared on the transition to
  // ESTABLISHED.)
  while (!conn.inflight.empty()) {
    const InFlightSeg& seg = conn.inflight.front();
    const uint32_t seg_end = seg.seq + seg.len + (seg.fin ? 1 : 0);
    if (SeqLe(seg_end, conn.snd_una)) {
      conn.inflight.pop_front();
    } else {
      break;
    }
  }

  // State transitions driven by our FIN being acknowledged.
  if (conn.fin_sent && conn.snd_una == conn.snd_nxt) {
    if (conn.state == TcpState::kFinWait1) {
      conn.state =
          conn.fin_received ? TcpState::kClosed : TcpState::kFinWait2;
    } else if (conn.state == TcpState::kLastAck) {
      conn.state = TcpState::kClosed;
      conn_by_key_.erase(conn.key);
    }
  }
  (void)acked;
}

void TcpEngine::AcceptPayload(Conn& conn, const ParsedFrame& frame) {
  const TcpHeader& tcp = *frame.tcp;
  const uint32_t len = static_cast<uint32_t>(frame.payload.size());
  bool need_ack = false;

  if (len > 0) {
    if (tcp.seq == conn.rcv_nxt) {
      machine_.ChargeCompute(30);  // pbuf pool alloc (pointer bump).
      uint64_t accepted = 0;
      {
        // Driver/stack copy from the DMA'd pbuf into the socket buffer —
        // a LibC memcpy (instrumented when libc is hardened), executed in
        // the stack's protection domain but exempt from PKRU like the rest
        // of the receive path (the ring is the stack's own memory).
        router_.CallLeaf(net_to_libc_, [&] {
          accepted = conn.recv_ring->Push(frame.payload.data(), len);
        });
      }
      conn.rcv_nxt += static_cast<uint32_t>(accepted);
      if (accepted > 0) {
        Semaphore* sem = conn.recv_sem.get();
        SignalSem(sem);
      }
      need_ack = true;
    } else {
      // Out-of-order or duplicate: drop and re-ACK (go-back-N receiver).
      counters_.out_of_order_drops->Add();
      need_ack = true;
    }
  }

  // FIN handling: only once every in-order byte before it has arrived.
  if ((tcp.flags & kTcpFin) != 0) {
    const uint32_t fin_seq = tcp.seq + len;
    if (fin_seq == conn.rcv_nxt && !conn.fin_received) {
      conn.rcv_nxt += 1;
      conn.fin_received = true;
      Semaphore* sem = conn.recv_sem.get();
      SignalSem(sem);
      switch (conn.state) {
        case TcpState::kEstablished:
          conn.state = TcpState::kCloseWait;
          break;
        case TcpState::kFinWait1:
          // Our FIN not yet acked: stay, ProcessAck finishes the close.
          break;
        case TcpState::kFinWait2:
          conn.state = TcpState::kClosed;
          conn_by_key_.erase(conn.key);
          break;
        default:
          break;
      }
    }
    need_ack = true;
  }

  if (need_ack) {
    SendAck(conn);
  }
}

void TcpEngine::AbortConn(Conn& conn) {
  counters_.resets->Add();
  conn.state = TcpState::kClosed;
  conn_by_key_.erase(conn.key);
  // A reset signals both directions — a classic signal storm. The two
  // wakeups always share one crossing: the scope's batch when earlier
  // wakeups already opened (or parked toward) one, else a single combined
  // Call, as the paper-figure configurations model it.
  Semaphore* recv_sem = conn.recv_sem.get();
  Semaphore* send_sem = conn.send_sem.get();
  if (signal_scope_ &&
      (signal_batch_.has_value() || deferred_signal_ != nullptr)) {
    SignalSem(recv_sem);
    SignalSem(send_sem);
  } else {
    router_.Call(net_to_libc_, [recv_sem, send_sem] {
      recv_sem->Signal();
      send_sem->Signal();
    });
  }
}

void TcpEngine::HandleSegment(Conn& conn, const ParsedFrame& frame) {
  const TcpHeader& tcp = *frame.tcp;
  if ((tcp.flags & kTcpRst) != 0) {
    AbortConn(conn);
    return;
  }
  if (conn.state == TcpState::kSynSent) {
    if ((tcp.flags & (kTcpSyn | kTcpAck)) == (kTcpSyn | kTcpAck) &&
        tcp.ack == conn.snd_nxt) {
      conn.rcv_nxt = tcp.seq + 1;
      conn.snd_una = tcp.ack;
      conn.peer_wnd = tcp.window;
      conn.inflight.clear();
      conn.retries = 0;
      conn.state = TcpState::kEstablished;
      SendAck(conn);
      Semaphore* sem = conn.recv_sem.get();
      SignalSem(sem);
    }
    return;
  }
  if (conn.state == TcpState::kSynReceived) {
    if ((tcp.flags & kTcpSyn) != 0) {
      // Retransmitted SYN: our SYN-ACK was lost; resend it.
      TransmitSegment(conn, kTcpSyn | kTcpAck, conn.iss, nullptr, 0);
      return;
    }
    if ((tcp.flags & kTcpAck) != 0 && tcp.ack == conn.snd_nxt) {
      conn.state = TcpState::kEstablished;
      conn.snd_una = tcp.ack;
      conn.inflight.clear();
      conn.peer_wnd = tcp.window;
      auto listener_it = listeners_.find(conn.listener_id);
      if (listener_it != listeners_.end()) {
        listener_it->second->pending.push_back(conn.id);
        Semaphore* sem = listener_it->second->accept_sem.get();
        SignalSem(sem);
      }
      // Fall through: the handshake ACK may carry data.
    } else {
      return;
    }
  }
  ProcessAck(conn, tcp);
  AcceptPayload(conn, frame);
  // New window or freed buffer space may unblock queued data.
  if (conn.persist_deadline != 0 && conn.peer_wnd > 0) {
    conn.persist_deadline = 0;
  }
  TrySend(conn);
}

bool TcpEngine::OnFrame(const ParsedFrame& frame) {
  if (!frame.tcp.has_value()) {
    return false;
  }
  counters_.segments_rx->Add();
  machine_.tracer().RecordInstant(obs::TraceCat::kNet, "net.tcp.rx",
                                  machine_.context().compartment + 1,
                                  frame.payload.size(), frame.tcp->flags);
  machine_.ChargeCompute(machine_.costs().pkt_rx_fixed);
  machine_.ChargeCompute(
      static_cast<uint64_t>(machine_.costs().pkt_per_byte *
                            static_cast<double>(frame.payload.size())));
  machine_.ChargeMemOp(64);  // Header-touch working set.

  const TcpHeader& tcp = *frame.tcp;
  const ConnKey key{.local_port = tcp.dst_port,
                    .remote_ip = frame.ip.src,
                    .remote_port = tcp.src_port};
  auto it = conn_by_key_.find(key);
  if (it != conn_by_key_.end()) {
    Conn* conn = FindConn(it->second);
    FLEXOS_CHECK(conn != nullptr, "conn_by_key_ out of sync");
    HandleSegment(*conn, frame);
  } else if ((tcp.flags & kTcpSyn) != 0 && (tcp.flags & kTcpAck) == 0) {
    HandleSyn(frame);
  }
  // Anything else: segment for an unknown connection, swallowed.
  return true;
}

bool TcpEngine::ProcessTimers() {
  const uint64_t now = machine_.clock().cycles();
  bool fired = false;
  for (auto& [id, conn] : conns_) {
    if (conn->state == TcpState::kClosed) {
      continue;
    }
    if (!conn->inflight.empty()) {
      const uint64_t deadline =
          conn->inflight.front().sent_at_cycles + RtoCycles(*conn);
      if (now >= deadline) {
        RetransmitFrom(*conn);
        fired = true;
      }
    } else if (conn->persist_deadline != 0 &&
               now >= conn->persist_deadline) {
      // Zero-window probe: one byte past the window.
      std::vector<uint8_t> probe(1);
      if (conn->send_ring->ReadableBytes() > InFlightBytes(*conn)) {
        router_.CallLeaf(net_to_libc_, [&] {
          conn->send_ring->Peek(InFlightBytes(*conn), probe.data(), 1);
        });
        const uint32_t seq = conn->snd_nxt;
        conn->inflight.push_back(
            InFlightSeg{.seq = seq, .len = 1, .fin = false,
                        .sent_at_cycles = now});
        conn->snd_nxt += 1;
        TransmitSegment(*conn, kTcpAck, seq, probe.data(), 1);
      }
      conn->persist_deadline = 0;
      fired = true;
    }
  }
  return fired;
}

void TcpEngine::RetransmitFrom(Conn& conn) {
  counters_.retransmits->Add();
  ++conn.retries;
  if (conn.retries > config_.max_retries) {
    AbortConn(conn);
    return;
  }
  const uint64_t now = machine_.clock().cycles();
  if (conn.state == TcpState::kSynReceived) {
    TransmitSegment(conn, kTcpSyn | kTcpAck, conn.iss, nullptr, 0);
    conn.inflight.front().sent_at_cycles = now;
    return;
  }
  if (conn.state == TcpState::kSynSent) {
    TransmitSegment(conn, kTcpSyn, conn.iss, nullptr, 0);
    conn.inflight.front().sent_at_cycles = now;
    return;
  }
  // Go-back-N: resend the first outstanding segment from the ring.
  InFlightSeg& first = conn.inflight.front();
  first.sent_at_cycles = now;
  if (first.fin) {
    TransmitSegment(conn, kTcpFin | kTcpAck, first.seq, nullptr, 0);
    return;
  }
  std::vector<uint8_t> scratch(first.len);
  router_.CallLeaf(net_to_libc_, [&] {
    conn.send_ring->Peek(first.seq - conn.snd_una, scratch.data(),
                         first.len);
  });
  TransmitSegment(conn, kTcpAck | kTcpPsh, first.seq, scratch.data(),
                  first.len);
}

std::optional<uint64_t> TcpEngine::NextTimerCycles() const {
  std::optional<uint64_t> next;
  for (const auto& [id, conn] : conns_) {
    if (conn->state == TcpState::kClosed) {
      continue;
    }
    std::optional<uint64_t> deadline;
    if (!conn->inflight.empty()) {
      deadline = conn->inflight.front().sent_at_cycles + RtoCycles(*conn);
    } else if (conn->persist_deadline != 0) {
      deadline = conn->persist_deadline;
    }
    if (deadline.has_value() && (!next.has_value() || *deadline < *next)) {
      next = deadline;
    }
  }
  return next;
}

}  // namespace flexos
