#include "net/checksum.h"

namespace flexos {

uint32_t ChecksumPartial(const uint8_t* data, size_t size, uint32_t initial) {
  uint32_t sum = initial;
  size_t i = 0;
  for (; i + 1 < size; i += 2) {
    sum += static_cast<uint32_t>(data[i]) << 8 | data[i + 1];
  }
  if (i < size) {
    sum += static_cast<uint32_t>(data[i]) << 8;  // Odd trailing byte.
  }
  return sum;
}

uint16_t ChecksumFinish(uint32_t partial) {
  while (partial >> 16) {
    partial = (partial & 0xffff) + (partial >> 16);
  }
  return static_cast<uint16_t>(~partial & 0xffff);
}

uint16_t Checksum(const uint8_t* data, size_t size) {
  return ChecksumFinish(ChecksumPartial(data, size, 0));
}

}  // namespace flexos
