// NetStack: the network micro-library facade. Owns the TCP and UDP engines
// and the receive pump. Applications reach it through app->net gates; the
// platform (scheduler idle loop) pumps Poll()/NextEventCycles().
#ifndef FLEXOS_NET_NETSTACK_H_
#define FLEXOS_NET_NETSTACK_H_

#include <memory>

#include "net/arp.h"
#include "net/tcp.h"
#include "net/udp.h"

namespace flexos {

// Read-only view of the stack's net.* registry counters (obs/names.h);
// refreshed by NetStack::stats(). The registry is the source of truth.
struct NetStackStats {
  uint64_t frames_polled = 0;
  uint64_t parse_errors = 0;
  uint64_t unhandled_frames = 0;
  uint64_t icmp_echoes_answered = 0;
};

class NetStack {
 public:
  struct Deps {
    Machine& machine;
    AddressSpace& space;
    Allocator& allocator;
    Scheduler& scheduler;
    Nic& nic;
    GateRouter& router;
  };

  NetStack(const Deps& deps, TcpConfig tcp_config = TcpConfig{});

  TcpEngine& tcp() { return tcp_; }
  UdpEngine& udp() { return udp_; }
  ArpEngine& arp() { return arp_; }
  Nic& nic() { return nic_; }
  AddressSpace& space() { return space_; }

  // Active open with ARP resolution: resolves the destination MAC (blocking
  // with retries), then completes the TCP handshake.
  Result<int> TcpConnect(Ipv4Addr dst_ip, Port dst_port);

  // Drains the NIC receive queue and fires due TCP/ARP timers, all in the
  // network compartment's execution context. Returns true on any progress.
  bool Poll();

  // Earliest TCP/ARP timer deadline, if any (for idle time-skipping).
  std::optional<uint64_t> NextEventCycles() const;

  // Refreshes and returns the stats view (reference valid for the stack's
  // lifetime; counters live in the machine's MetricsRegistry).
  const NetStackStats& stats() const;

 private:
  Machine& machine_;
  AddressSpace& space_;
  Nic& nic_;
  GateRouter& router_;
  RouteHandle platform_to_net_;  // Resolved once; Poll's entry crossing.
  TcpEngine tcp_;
  UdpEngine udp_;
  ArpEngine arp_;
  // Registry-resolved counters; the mutable struct is the compatibility
  // view stats() refreshes.
  obs::Counter* frames_polled_counter_;
  obs::Counter* parse_errors_counter_;
  obs::Counter* unhandled_frames_counter_;
  obs::Counter* icmp_echoes_counter_;
  mutable NetStackStats stats_;
};

}  // namespace flexos

#endif  // FLEXOS_NET_NETSTACK_H_
