// NetStack: the network micro-library facade. Owns the TCP and UDP engines
// and the receive pump. Applications reach it through app->net gates; the
// platform (scheduler idle loop) pumps Poll()/NextEventCycles().
#ifndef FLEXOS_NET_NETSTACK_H_
#define FLEXOS_NET_NETSTACK_H_

#include <memory>

#include "net/arp.h"
#include "net/tcp.h"
#include "net/udp.h"

namespace flexos {

struct NetStackStats {
  uint64_t frames_polled = 0;
  uint64_t parse_errors = 0;
  uint64_t unhandled_frames = 0;
  uint64_t icmp_echoes_answered = 0;
};

class NetStack {
 public:
  struct Deps {
    Machine& machine;
    AddressSpace& space;
    Allocator& allocator;
    Scheduler& scheduler;
    Nic& nic;
    GateRouter& router;
  };

  NetStack(const Deps& deps, TcpConfig tcp_config = TcpConfig{});

  TcpEngine& tcp() { return tcp_; }
  UdpEngine& udp() { return udp_; }
  ArpEngine& arp() { return arp_; }
  Nic& nic() { return nic_; }
  AddressSpace& space() { return space_; }

  // Active open with ARP resolution: resolves the destination MAC (blocking
  // with retries), then completes the TCP handshake.
  Result<int> TcpConnect(Ipv4Addr dst_ip, Port dst_port);

  // Drains the NIC receive queue and fires due TCP/ARP timers, all in the
  // network compartment's execution context. Returns true on any progress.
  bool Poll();

  // Earliest TCP/ARP timer deadline, if any (for idle time-skipping).
  std::optional<uint64_t> NextEventCycles() const;

  const NetStackStats& stats() const { return stats_; }

 private:
  Machine& machine_;
  AddressSpace& space_;
  Nic& nic_;
  GateRouter& router_;
  RouteHandle platform_to_net_;  // Resolved once; Poll's entry crossing.
  TcpEngine tcp_;
  UdpEngine udp_;
  ArpEngine arp_;
  NetStackStats stats_;
};

}  // namespace flexos

#endif  // FLEXOS_NET_NETSTACK_H_
