// Wire formats: Ethernet II, IPv4, TCP, UDP headers with big-endian
// serialization, plus frame build/parse helpers. Frames are host-side byte
// vectors ("bits on the wire"); guest memory enters the picture when the
// NIC and socket layers copy payloads in and out.
#ifndef FLEXOS_NET_WIRE_H_
#define FLEXOS_NET_WIRE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/status.h"

namespace flexos {

using Ipv4Addr = uint32_t;
using Port = uint16_t;

struct MacAddr {
  std::array<uint8_t, 6> bytes{};

  friend bool operator==(const MacAddr& a, const MacAddr& b) {
    return a.bytes == b.bytes;
  }
  std::string ToString() const;
};

// Builds 10.0.x.y style addresses without parsing.
constexpr Ipv4Addr MakeIpv4(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
  return static_cast<Ipv4Addr>(a) << 24 | static_cast<Ipv4Addr>(b) << 16 |
         static_cast<Ipv4Addr>(c) << 8 | static_cast<Ipv4Addr>(d);
}

std::string Ipv4ToString(Ipv4Addr addr);

inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr uint16_t kEtherTypeArp = 0x0806;

enum class IpProto : uint8_t { kIcmp = 1, kTcp = 6, kUdp = 17 };

struct EthHeader {
  static constexpr size_t kSize = 14;

  MacAddr dst;
  MacAddr src;
  uint16_t ethertype = kEtherTypeIpv4;

  void SerializeTo(uint8_t* out) const;
  static EthHeader Parse(const uint8_t* data);
};

struct Ipv4Header {
  static constexpr size_t kSize = 20;  // No options.

  uint16_t total_len = 0;
  uint16_t id = 0;
  uint8_t ttl = 64;
  IpProto proto = IpProto::kTcp;
  Ipv4Addr src = 0;
  Ipv4Addr dst = 0;

  // Serializes with a freshly computed header checksum.
  void SerializeTo(uint8_t* out) const;

  // Parses and verifies version/IHL/checksum.
  static Result<Ipv4Header> Parse(const uint8_t* data, size_t size);
};

// Standard TCP flag bits.
inline constexpr uint8_t kTcpFin = 0x01;
inline constexpr uint8_t kTcpSyn = 0x02;
inline constexpr uint8_t kTcpRst = 0x04;
inline constexpr uint8_t kTcpPsh = 0x08;
inline constexpr uint8_t kTcpAck = 0x10;

struct TcpHeader {
  static constexpr size_t kSize = 20;  // No options.

  Port src_port = 0;
  Port dst_port = 0;
  uint32_t seq = 0;
  uint32_t ack = 0;
  uint8_t flags = 0;
  uint16_t window = 0;

  void SerializeTo(uint8_t* out) const;
  static TcpHeader Parse(const uint8_t* data);

  std::string FlagsToString() const;
};

struct UdpHeader {
  static constexpr size_t kSize = 8;

  Port src_port = 0;
  Port dst_port = 0;
  uint16_t length = 0;  // Header + payload.

  void SerializeTo(uint8_t* out) const;
  static UdpHeader Parse(const uint8_t* data);
};

// ARP over Ethernet/IPv4 (RFC 826).
inline constexpr uint16_t kArpOpRequest = 1;
inline constexpr uint16_t kArpOpReply = 2;

struct ArpPacket {
  static constexpr size_t kSize = 28;

  uint16_t op = kArpOpRequest;
  MacAddr sender_mac;
  Ipv4Addr sender_ip = 0;
  MacAddr target_mac;  // All-zero in requests.
  Ipv4Addr target_ip = 0;

  void SerializeTo(uint8_t* out) const;
  static Result<ArpPacket> Parse(const uint8_t* data, size_t size);
};

// ICMP echo (RFC 792, types 8/0 only).
inline constexpr uint8_t kIcmpEchoRequest = 8;
inline constexpr uint8_t kIcmpEchoReply = 0;

struct IcmpEcho {
  static constexpr size_t kHeaderSize = 8;

  uint8_t type = kIcmpEchoRequest;
  uint16_t id = 0;
  uint16_t seq = 0;

  // Serializes header + payload with the ICMP checksum filled in.
  // `out` must hold kHeaderSize + payload_size bytes.
  void SerializeTo(uint8_t* out, const uint8_t* payload,
                   size_t payload_size) const;
  static Result<IcmpEcho> Parse(const uint8_t* data, size_t size);
};

// Sequence-number arithmetic (RFC 793 comparisons, wraparound-safe).
constexpr bool SeqLt(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) < 0;
}
constexpr bool SeqLe(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) <= 0;
}

// A fully parsed inbound frame.
struct ParsedFrame {
  EthHeader eth;
  Ipv4Header ip;  // Unset (zeroed) for ARP frames.
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<ArpPacket> arp;
  std::optional<IcmpEcho> icmp;
  // Payload bytes (copied out of the frame).
  std::vector<uint8_t> payload;
};

// Builds a complete Ethernet+IPv4+TCP frame.
std::vector<uint8_t> BuildTcpFrame(const MacAddr& src_mac,
                                   const MacAddr& dst_mac, Ipv4Addr src_ip,
                                   Ipv4Addr dst_ip, const TcpHeader& tcp,
                                   const uint8_t* payload,
                                   size_t payload_size);

// Builds a complete Ethernet+IPv4+UDP frame.
std::vector<uint8_t> BuildUdpFrame(const MacAddr& src_mac,
                                   const MacAddr& dst_mac, Ipv4Addr src_ip,
                                   Ipv4Addr dst_ip, Port src_port,
                                   Port dst_port, const uint8_t* payload,
                                   size_t payload_size);

// Builds a complete Ethernet+ARP frame.
std::vector<uint8_t> BuildArpFrame(const MacAddr& src_mac,
                                   const MacAddr& dst_mac,
                                   const ArpPacket& arp);

// Builds a complete Ethernet+IPv4+ICMP echo frame.
std::vector<uint8_t> BuildIcmpEchoFrame(const MacAddr& src_mac,
                                        const MacAddr& dst_mac,
                                        Ipv4Addr src_ip, Ipv4Addr dst_ip,
                                        const IcmpEcho& icmp,
                                        const uint8_t* payload,
                                        size_t payload_size);

// Parses an Ethernet frame down to the transport payload.
Result<ParsedFrame> ParseFrame(const std::vector<uint8_t>& frame);

}  // namespace flexos

#endif  // FLEXOS_NET_WIRE_H_
