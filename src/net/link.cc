#include "net/link.h"

#include <algorithm>

namespace flexos {

Link::Link(Machine& machine, LinkConfig config)
    : machine_(machine), config_(config), rng_(config.seed) {
  FLEXOS_CHECK(config_.bandwidth_bps > 0, "link bandwidth must be positive");
}

void Link::Send(std::vector<uint8_t> frame, bool to_b) {
  ++stats_.frames_sent;
  if (config_.loss_probability > 0.0 &&
      rng_.NextBool(config_.loss_probability)) {
    ++stats_.frames_dropped;
    return;
  }
  const uint64_t now = machine_.clock().cycles();
  const double cycles_per_byte =
      static_cast<double>(machine_.clock().freq_hz()) * 8.0 /
      config_.bandwidth_bps;
  const uint64_t tx_cycles = static_cast<uint64_t>(
      static_cast<double>(frame.size()) * cycles_per_byte) + 1;
  uint64_t& busy_until = to_b ? busy_until_to_b_ : busy_until_to_a_;
  const uint64_t tx_start = std::max(now, busy_until);
  busy_until = tx_start + tx_cycles;
  const uint64_t arrival =
      busy_until + machine_.clock().NanosToCycles(config_.latency_ns);
  in_flight_.push(InFlight{.arrival_cycles = arrival,
                           .sequence = next_sequence_++,
                           .to_b = to_b,
                           .frame = std::move(frame)});
}

size_t Link::DeliverDue() {
  const uint64_t now = machine_.clock().cycles();
  size_t delivered = 0;
  // Pop everything due first: endpoints may transmit replies synchronously
  // (the remote peer does), which pushes new entries while we work.
  std::vector<InFlight> due;
  while (!in_flight_.empty() && in_flight_.top().arrival_cycles <= now) {
    due.push_back(std::move(const_cast<InFlight&>(in_flight_.top())));
    in_flight_.pop();
  }
  for (InFlight& item : due) {
    LinkEndpoint* endpoint = item.to_b ? endpoint_b_ : endpoint_a_;
    if (endpoint == nullptr) {
      continue;  // Unattached side: the frame evaporates.
    }
    ++stats_.frames_delivered;
    stats_.bytes_delivered += item.frame.size();
    endpoint->DeliverFrame(std::move(item.frame));
    ++delivered;
  }
  return delivered;
}

std::optional<uint64_t> Link::NextArrivalCycles() const {
  if (in_flight_.empty()) {
    return std::nullopt;
  }
  return in_flight_.top().arrival_cycles;
}

}  // namespace flexos
