#include "net/link.h"

#include <algorithm>

#include "fault/fault.h"

namespace flexos {

Link::Link(Machine& machine, LinkConfig config)
    : machine_(machine), config_(config), rng_(config.seed) {
  FLEXOS_CHECK(config_.bandwidth_bps > 0, "link bandwidth must be positive");
}

void Link::Send(std::vector<uint8_t> frame, bool to_b) {
  ++stats_.frames_sent;
  if (config_.loss_probability > 0.0 &&
      rng_.NextBool(config_.loss_probability)) {
    ++stats_.frames_dropped;
    return;
  }
  // Fault injection (fault/): side A is the guest NIC by convention, so
  // to_b carries guest transmissions and !to_b guest-bound traffic.
  uint64_t injected_delay_cycles = 0;
  const fault::FaultSite site =
      to_b ? fault::FaultSite::kNicTx : fault::FaultSite::kNicRx;
  if (machine_.injector().armed(site)) {
    const std::optional<fault::FaultDecision> decision =
        machine_.injector().Check(site, machine_.context().compartment);
    if (decision.has_value()) {
      switch (decision->kind) {
        case fault::FaultKind::kPacketDrop:
          ++stats_.frames_dropped;
          return;
        case fault::FaultKind::kPacketCorrupt:
          // Flip one payload byte past the ethernet/IP/TCP headers so the
          // TCP checksum catches it downstream. Header-only frames have no
          // payload to corrupt; losing them models the same fault.
          if (frame.size() <= 60) {
            ++stats_.frames_dropped;
            return;
          }
          frame[54 + (decision->arg % (frame.size() - 54))] ^= 0xFF;
          break;
        case fault::FaultKind::kPacketDelay:
          injected_delay_cycles = machine_.clock().NanosToCycles(
              decision->arg != 0 ? decision->arg : 100'000);
          break;
        default:
          break;  // Other kinds have no meaning on the wire.
      }
    }
  }
  const uint64_t now = machine_.clock().cycles();
  const double cycles_per_byte =
      static_cast<double>(machine_.clock().freq_hz()) * 8.0 /
      config_.bandwidth_bps;
  const uint64_t tx_cycles = static_cast<uint64_t>(
      static_cast<double>(frame.size()) * cycles_per_byte) + 1;
  uint64_t& busy_until = to_b ? busy_until_to_b_ : busy_until_to_a_;
  const uint64_t tx_start = std::max(now, busy_until);
  busy_until = tx_start + tx_cycles;
  const uint64_t arrival = busy_until +
                           machine_.clock().NanosToCycles(config_.latency_ns) +
                           injected_delay_cycles;
  in_flight_.push(InFlight{.arrival_cycles = arrival,
                           .sequence = next_sequence_++,
                           .to_b = to_b,
                           .frame = std::move(frame)});
}

size_t Link::DeliverDue() {
  const uint64_t now = machine_.clock().cycles();
  size_t delivered = 0;
  // Pop everything due first: endpoints may transmit replies synchronously
  // (the remote peer does), which pushes new entries while we work.
  std::vector<InFlight> due;
  while (!in_flight_.empty() && in_flight_.top().arrival_cycles <= now) {
    due.push_back(std::move(const_cast<InFlight&>(in_flight_.top())));
    in_flight_.pop();
  }
  for (InFlight& item : due) {
    LinkEndpoint* endpoint = item.to_b ? endpoint_b_ : endpoint_a_;
    if (endpoint == nullptr) {
      continue;  // Unattached side: the frame evaporates.
    }
    ++stats_.frames_delivered;
    stats_.bytes_delivered += item.frame.size();
    endpoint->DeliverFrame(std::move(item.frame));
    ++delivered;
  }
  return delivered;
}

std::optional<uint64_t> Link::NextArrivalCycles() const {
  if (in_flight_.empty()) {
    return std::nullopt;
  }
  return in_flight_.top().arrival_cycles;
}

}  // namespace flexos
