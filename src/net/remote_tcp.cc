#include "net/remote_tcp.h"

#include <algorithm>

#include "support/log.h"

namespace flexos {

RemoteTcpPeer::RemoteTcpPeer(Machine& machine, Link& link,
                             RemoteTcpConfig config, RemoteApp& app,
                             bool attach)
    : machine_(machine), link_(link), config_(config), app_(app) {
  remote_port_ = config_.server_port;
  if (attach) {
    link_.AttachB(this);
  }
}

uint64_t RemoteTcpPeer::RtoCycles() const {
  const int backoff = std::min(retries_, 6);
  return machine_.clock().NanosToCycles(config_.rto_ns) << backoff;
}

void RemoteTcpPeer::SendSegment(uint8_t flags, uint32_t seq,
                                const uint8_t* payload, uint32_t len) {
  TcpHeader header;
  header.src_port = config_.local_port;
  header.dst_port = remote_port_;
  header.seq = seq;
  header.ack = rcv_nxt_;
  header.flags = flags;
  header.window = config_.advertised_window;
  std::vector<uint8_t> frame =
      BuildTcpFrame(config_.mac, config_.server_mac, config_.ip,
                    config_.server_ip, header, payload, len);
  ++stats_.segments_tx;
  stats_.bytes_sent += len;
  link_.SendFromB(std::move(frame));
}

void RemoteTcpPeer::SendAck() { SendSegment(kTcpAck, snd_nxt_, nullptr, 0); }

void RemoteTcpPeer::Listen() {
  FLEXOS_CHECK(state_ == RemoteTcpState::kClosed, "Listen after use");
  state_ = RemoteTcpState::kListen;
}

void RemoteTcpPeer::Connect() {
  FLEXOS_CHECK(state_ == RemoteTcpState::kClosed, "Connect twice");
  state_ = RemoteTcpState::kSynSent;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  inflight_.push_back(InFlightSeg{.seq = iss_,
                                  .len = 0,
                                  .syn = true,
                                  .fin = false,
                                  .sent_at_cycles =
                                      machine_.clock().cycles()});
  SendSegment(kTcpSyn, iss_, nullptr, 0);
}

void RemoteTcpPeer::Pump() {
  if (state_ != RemoteTcpState::kEstablished &&
      state_ != RemoteTcpState::kCloseWait) {
    return;
  }
  std::vector<uint8_t> scratch(config_.mss);
  for (;;) {
    // Refill from the app while we have window headroom.
    const uint32_t in_flight =
        snd_nxt_ - snd_una_ - (fin_sent_ ? 1 : 0);
    const uint32_t window =
        std::min<uint32_t>(peer_wnd_, config_.max_in_flight);
    const uint32_t headroom = window > in_flight ? window - in_flight : 0;
    if (headroom == 0) {
      break;
    }
    uint64_t unsent = buffer_.size() - unsent_offset_;
    if (unsent == 0 && !app_.Finished()) {
      const size_t produced = app_.ProduceData(
          scratch.data(), std::min<size_t>(scratch.size(), headroom));
      for (size_t i = 0; i < produced; ++i) {
        buffer_.push_back(scratch[i]);
      }
      unsent = buffer_.size() - unsent_offset_;
    }
    const uint32_t len = static_cast<uint32_t>(
        std::min<uint64_t>({unsent, static_cast<uint64_t>(headroom),
                            static_cast<uint64_t>(config_.mss)}));
    if (len == 0) {
      break;
    }
    for (uint32_t i = 0; i < len; ++i) {
      scratch[i] = buffer_[unsent_offset_ + i];
    }
    const uint32_t seq = snd_nxt_;
    inflight_.push_back(InFlightSeg{.seq = seq,
                                    .len = len,
                                    .syn = false,
                                    .fin = false,
                                    .sent_at_cycles =
                                        machine_.clock().cycles()});
    snd_nxt_ += len;
    unsent_offset_ += len;
    SendSegment(kTcpAck | kTcpPsh, seq, scratch.data(), len);
  }
  // Active close once the app is done and every sent byte is acknowledged
  // (keeping the FIN out of the go-back-N window simplifies resends).
  if (app_.Finished() && buffer_.empty() && !fin_sent_) {
    fin_sent_ = true;
    const uint32_t seq = snd_nxt_;
    snd_nxt_ += 1;
    inflight_.push_back(InFlightSeg{.seq = seq,
                                    .len = 0,
                                    .syn = false,
                                    .fin = true,
                                    .sent_at_cycles =
                                        machine_.clock().cycles()});
    SendSegment(kTcpFin | kTcpAck, seq, nullptr, 0);
    state_ = state_ == RemoteTcpState::kCloseWait ? RemoteTcpState::kLastAck
                                                  : RemoteTcpState::kFinWait1;
  }
}

void RemoteTcpPeer::ProcessAck(const TcpHeader& header) {
  if ((header.flags & kTcpAck) == 0) {
    return;
  }
  peer_wnd_ = header.window;
  const uint32_t ack = header.ack;
  if (!SeqLt(snd_una_, ack) || !SeqLe(ack, snd_nxt_)) {
    return;
  }
  uint32_t acked = ack - snd_una_;
  snd_una_ = ack;
  retries_ = 0;

  // Strip phantom SYN/FIN slots from the byte count.
  uint32_t data_acked = acked;
  for (const InFlightSeg& seg : inflight_) {
    if ((seg.syn || seg.fin) && SeqLt(seg.seq, snd_una_)) {
      if (data_acked > 0) {
        --data_acked;
      }
    }
  }
  const uint32_t from_buffer =
      static_cast<uint32_t>(std::min<uint64_t>(data_acked, buffer_.size()));
  buffer_.erase(buffer_.begin(), buffer_.begin() + from_buffer);
  unsent_offset_ -= from_buffer;
  stats_.bytes_acked += from_buffer;

  while (!inflight_.empty()) {
    const InFlightSeg& seg = inflight_.front();
    const uint32_t seg_end =
        seg.seq + seg.len + ((seg.syn || seg.fin) ? 1 : 0);
    if (SeqLe(seg_end, snd_una_)) {
      inflight_.pop_front();
    } else {
      break;
    }
  }

  if (fin_sent_ && snd_una_ == snd_nxt_) {
    if (state_ == RemoteTcpState::kFinWait1) {
      state_ = fin_received_ ? RemoteTcpState::kDone
                             : RemoteTcpState::kFinWait2;
    } else if (state_ == RemoteTcpState::kLastAck) {
      state_ = RemoteTcpState::kDone;
      app_.OnClosed();
    }
  }
}

void RemoteTcpPeer::HandleFrame(const ParsedFrame& frame) {
  const TcpHeader& tcp = *frame.tcp;
  ++stats_.segments_rx;

  if ((tcp.flags & kTcpRst) != 0) {
    state_ = RemoteTcpState::kDone;
    app_.OnClosed();
    return;
  }

  if (state_ == RemoteTcpState::kSynSent) {
    if ((tcp.flags & (kTcpSyn | kTcpAck)) == (kTcpSyn | kTcpAck) &&
        tcp.ack == snd_nxt_) {
      rcv_nxt_ = tcp.seq + 1;
      snd_una_ = tcp.ack;
      peer_wnd_ = tcp.window;
      inflight_.clear();
      state_ = RemoteTcpState::kEstablished;
      SendAck();
      app_.OnConnected();
      Pump();
    }
    return;
  }

  if (state_ == RemoteTcpState::kListen) {
    if ((tcp.flags & kTcpSyn) != 0 && (tcp.flags & kTcpAck) == 0) {
      remote_port_ = tcp.src_port;
      rcv_nxt_ = tcp.seq + 1;
      snd_una_ = iss_;
      snd_nxt_ = iss_ + 1;
      peer_wnd_ = tcp.window;
      state_ = RemoteTcpState::kSynReceived;
      inflight_.push_back(InFlightSeg{.seq = iss_,
                                      .len = 0,
                                      .syn = true,
                                      .fin = false,
                                      .sent_at_cycles =
                                          machine_.clock().cycles()});
      SendSegment(kTcpSyn | kTcpAck, iss_, nullptr, 0);
    }
    return;
  }

  if (state_ == RemoteTcpState::kSynReceived) {
    if ((tcp.flags & kTcpSyn) != 0) {
      // Lost SYN-ACK: the guest retransmitted its SYN.
      SendSegment(kTcpSyn | kTcpAck, iss_, nullptr, 0);
      return;
    }
    if ((tcp.flags & kTcpAck) != 0 && tcp.ack == snd_nxt_) {
      snd_una_ = tcp.ack;
      peer_wnd_ = tcp.window;
      inflight_.clear();
      retries_ = 0;
      state_ = RemoteTcpState::kEstablished;
      app_.OnConnected();
      // Fall through: the handshake ACK may carry data.
    } else {
      return;
    }
  }

  ProcessAck(tcp);

  const uint32_t len = static_cast<uint32_t>(frame.payload.size());
  bool need_ack = false;
  if (len > 0) {
    if (tcp.seq == rcv_nxt_) {
      rcv_nxt_ += len;
      stats_.bytes_received += len;
      app_.OnReceive(frame.payload.data(), len);
    }
    need_ack = true;  // ACK in-order data and dup-ACK everything else.
  }
  if ((tcp.flags & kTcpFin) != 0) {
    const uint32_t fin_seq = tcp.seq + len;
    if (fin_seq == rcv_nxt_ && !fin_received_) {
      rcv_nxt_ += 1;
      fin_received_ = true;
      switch (state_) {
        case RemoteTcpState::kEstablished:
          state_ = RemoteTcpState::kCloseWait;
          break;
        case RemoteTcpState::kFinWait1:
          break;  // Resolved when our FIN is acked.
        case RemoteTcpState::kFinWait2:
          state_ = RemoteTcpState::kDone;
          app_.OnClosed();
          break;
        default:
          break;
      }
    }
    need_ack = true;
  }
  if (need_ack) {
    SendAck();
  }
  Pump();
}

void RemoteTcpPeer::DeliverFrame(std::vector<uint8_t> frame) {
  Result<ParsedFrame> parsed = ParseFrame(frame);
  if (!parsed.ok()) {
    FLEXOS_DEBUG("remote peer: dropping frame: %s",
                 parsed.status().ToString().c_str());
    return;
  }
  // Answer ARP who-has queries for our address (any remote machine does).
  if (parsed->arp.has_value()) {
    const ArpPacket& arp = *parsed->arp;
    if (arp.op == kArpOpRequest && arp.target_ip == config_.ip) {
      ArpPacket reply;
      reply.op = kArpOpReply;
      reply.sender_mac = config_.mac;
      reply.sender_ip = config_.ip;
      reply.target_mac = arp.sender_mac;
      reply.target_ip = arp.sender_ip;
      link_.SendFromB(BuildArpFrame(config_.mac, arp.sender_mac, reply));
    }
    return;
  }
  if (!parsed->tcp.has_value() ||
      parsed->tcp->dst_port != config_.local_port) {
    return;
  }
  HandleFrame(parsed.value());
}

bool RemoteTcpPeer::OnTick() {
  if (inflight_.empty() || state_ == RemoteTcpState::kDone) {
    return false;
  }
  const uint64_t now = machine_.clock().cycles();
  const InFlightSeg& first = inflight_.front();
  if (now < first.sent_at_cycles + RtoCycles()) {
    return false;
  }
  ++retries_;
  ++stats_.retransmits;
  if (retries_ > config_.max_retries) {
    state_ = RemoteTcpState::kDone;
    app_.OnClosed();
    return true;
  }
  InFlightSeg& seg = inflight_.front();
  seg.sent_at_cycles = now;
  if (seg.syn) {
    SendSegment(state_ == RemoteTcpState::kSynReceived ? kTcpSyn | kTcpAck
                                                       : kTcpSyn,
                seg.seq, nullptr, 0);
  } else if (seg.fin) {
    SendSegment(kTcpFin | kTcpAck, seg.seq, nullptr, 0);
  } else {
    std::vector<uint8_t> scratch(seg.len);
    const uint32_t offset = seg.seq - snd_una_;
    for (uint32_t i = 0; i < seg.len; ++i) {
      scratch[i] = buffer_[offset + i];
    }
    SendSegment(kTcpAck | kTcpPsh, seg.seq, scratch.data(), seg.len);
  }
  return true;
}

std::optional<uint64_t> RemoteTcpPeer::NextEventCycles() const {
  if (inflight_.empty() || state_ == RemoteTcpState::kDone) {
    return std::nullopt;
  }
  return inflight_.front().sent_at_cycles + RtoCycles();
}

}  // namespace flexos
