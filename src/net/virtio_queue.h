// A virtio-flavored split virtqueue living entirely in guest memory:
// descriptor table + available ring + used ring, with the driver on one
// side and a device model on the other. This is the NIC/driver boundary
// of the paper's prototype (Unikraft's virtio-net); the descriptor
// structures are real guest data, so compartmentalizing the driver means
// the queue memory placement matters, like everything else.
//
// Simplifications vs. the virtio spec: no indirect descriptors, no event
// suppression, single-buffer chains.
#ifndef FLEXOS_NET_VIRTIO_QUEUE_H_
#define FLEXOS_NET_VIRTIO_QUEUE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "support/status.h"
#include "vmem/address_space.h"

namespace flexos {

class VirtioQueue {
 public:
  struct UsedElem {
    uint16_t desc_id;
    uint32_t written;  // Bytes the device wrote (0 for tx).
  };

  struct DescRef {
    uint16_t desc_id;
    Gaddr addr;
    uint32_t len;
    bool device_writable;
  };

  // Guest bytes needed for a queue of `depth` descriptors.
  static uint64_t FootprintBytes(uint16_t depth);

  // Initializes a fresh queue at `base` (which must be mapped).
  static Result<VirtioQueue> Create(AddressSpace& space, Gaddr base,
                                    uint16_t depth);

  uint16_t depth() const { return depth_; }
  uint16_t free_descriptors() const {
    return static_cast<uint16_t>(free_ids_.size());
  }

  // --- Driver side ---------------------------------------------------------

  // Posts one buffer; returns its descriptor id. kResourceExhausted when
  // no descriptor is free.
  Result<uint16_t> AddBuffer(Gaddr addr, uint32_t len, bool device_writable);

  // Doorbell: tells the device new buffers are available.
  void Kick() { ++kicks_; }
  uint64_t kicks() const { return kicks_; }

  // Completion reaping; frees the descriptor.
  std::optional<UsedElem> PopUsed();

  // --- Device side -----------------------------------------------------------

  // Next unprocessed available buffer, if any.
  std::optional<DescRef> DeviceNextAvail();

  // Marks a buffer consumed, recording how much the device wrote into it.
  void DevicePushUsed(uint16_t desc_id, uint32_t written);

 private:
  VirtioQueue(AddressSpace& space, Gaddr base, uint16_t depth);

  // Guest layout offsets.
  Gaddr DescAddr(uint16_t id) const;       // 16 bytes per descriptor.
  Gaddr AvailIdxAddr() const;              // u16 running index.
  Gaddr AvailRingAddr(uint16_t slot) const;
  Gaddr UsedIdxAddr() const;
  Gaddr UsedRingAddr(uint16_t slot) const;  // {u32 id, u32 len}.

  AddressSpace* space_;
  Gaddr base_;
  uint16_t depth_;
  std::vector<uint16_t> free_ids_;
  uint16_t avail_seen_ = 0;  // Device's cursor into the avail ring.
  uint16_t used_seen_ = 0;   // Driver's cursor into the used ring.
  uint64_t kicks_ = 0;
};

}  // namespace flexos

#endif  // FLEXOS_NET_VIRTIO_QUEUE_H_
