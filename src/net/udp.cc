#include "net/udp.h"

#include "support/strings.h"

namespace flexos {

Result<int> UdpEngine::Open(Port port) {
  if (by_port_.count(port) != 0) {
    return Status(ErrorCode::kAlreadyExists, "UDP port already bound");
  }
  auto socket = std::make_unique<Socket>();
  socket->id = next_id_++;
  socket->port = port;
  socket->rx_sem = std::make_unique<Semaphore>(
      scheduler_, StrFormat("udp.%u.rx", port), 0, &router_);
  const int id = socket->id;
  by_port_[port] = id;
  sockets_[id] = std::move(socket);
  return id;
}

Status UdpEngine::Close(int socket_id) {
  auto it = sockets_.find(socket_id);
  if (it == sockets_.end()) {
    return Status(ErrorCode::kNotFound, "no such UDP socket");
  }
  by_port_.erase(it->second->port);
  sockets_.erase(it);
  return Status::Ok();
}

Status UdpEngine::SendTo(int socket_id, Ipv4Addr dst_ip,
                         const MacAddr& dst_mac, Port dst_port, Gaddr addr,
                         uint64_t len) {
  auto it = sockets_.find(socket_id);
  if (it == sockets_.end()) {
    return Status(ErrorCode::kNotFound, "no such UDP socket");
  }
  if (len > 65507) {
    return Status(ErrorCode::kInvalidArgument, "datagram too large");
  }
  machine_.ChargeCompute(machine_.costs().syscall_ish);
  machine_.ChargeCompute(machine_.costs().pkt_tx_fixed);

  std::vector<uint8_t> data(len);
  router_.CallLeaf(net_to_libc_, [&] {
    if (!data.empty()) {
      space_.Read(addr, data.data(), data.size());
    }
  });
  std::vector<uint8_t> frame =
      BuildUdpFrame(nic_.mac(), dst_mac, nic_.ip(), dst_ip,
                    it->second->port, dst_port, data.data(), data.size());
  ++stats_.datagrams_tx;
  nic_.Transmit(std::move(frame));
  return Status::Ok();
}

Result<UdpDatagramInfo> UdpEngine::RecvFrom(int socket_id, Gaddr addr,
                                            uint64_t len) {
  auto it = sockets_.find(socket_id);
  if (it == sockets_.end()) {
    return Status(ErrorCode::kNotFound, "no such UDP socket");
  }
  Socket& socket = *it->second;
  machine_.ChargeCompute(machine_.costs().syscall_ish);
  while (socket.queue.empty()) {
    Semaphore* sem = socket.rx_sem.get();
    router_.Call(net_to_libc_, [sem] { sem->Wait(); });
  }
  Datagram datagram = std::move(socket.queue.front());
  socket.queue.pop_front();

  UdpDatagramInfo info;
  info.src_ip = datagram.src_ip;
  info.src_port = datagram.src_port;
  info.full_size = datagram.payload.size();
  info.bytes = std::min<uint64_t>(len, datagram.payload.size());
  router_.CallLeaf(net_to_libc_, [&] {
    if (info.bytes > 0) {
      space_.Write(addr, datagram.payload.data(), info.bytes);
    }
  });
  return info;
}

bool UdpEngine::OnFrame(const ParsedFrame& frame) {
  if (!frame.udp.has_value()) {
    return false;
  }
  machine_.ChargeCompute(machine_.costs().pkt_rx_fixed);
  machine_.ChargeMemOp(64);
  auto port_it = by_port_.find(frame.udp->dst_port);
  if (port_it == by_port_.end()) {
    return true;  // No socket: drop.
  }
  Socket& socket = *sockets_.at(port_it->second);
  if (socket.queue.size() >= kMaxQueuedDatagrams) {
    ++stats_.rx_dropped;
    return true;
  }
  ++stats_.datagrams_rx;
  socket.queue.push_back(Datagram{.src_ip = frame.ip.src,
                                  .src_port = frame.udp->src_port,
                                  .payload = frame.payload});
  Semaphore* sem = socket.rx_sem.get();
  router_.Call(net_to_libc_, [sem] { sem->Signal(); });
  return true;
}

}  // namespace flexos
