// RemoteTcpPeer: a host-side TCP endpoint modeling the *client machine* of
// the paper's testbed (the iperf/redis-benchmark box). Its processing is
// free — it is a different computer, so its cycles never hit the simulated
// server CPU — but its traffic is still subject to the link's bandwidth,
// latency, and loss. It is also an independent implementation of the wire
// format, so interop with the guest stack doubles as a protocol test.
#ifndef FLEXOS_NET_REMOTE_TCP_H_
#define FLEXOS_NET_REMOTE_TCP_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "hw/machine.h"
#include "net/link.h"
#include "net/wire.h"

namespace flexos {

// Host-side application logic driven by the peer (iperf sender, redis
// workload generator, ...).
class RemoteApp {
 public:
  virtual ~RemoteApp() = default;

  virtual void OnConnected() {}

  // Produces up to `max` bytes of application data to transmit. Returning 0
  // means nothing to send right now (more may come after OnReceive).
  virtual size_t ProduceData(uint8_t* out, size_t max) = 0;

  // True once the app will never produce more data (peer then sends FIN
  // after everything in flight is acknowledged).
  virtual bool Finished() const = 0;

  virtual void OnReceive(const uint8_t* data, size_t len) = 0;

  virtual void OnClosed() {}
};

enum class RemoteTcpState : uint8_t {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kDone,
};

struct RemoteTcpConfig {
  MacAddr mac{{0x02, 0, 0, 0, 0, 0xbb}};
  Ipv4Addr ip = 0x0a000002;  // 10.0.0.2
  MacAddr server_mac{{0x02, 0, 0, 0, 0, 0xaa}};
  Ipv4Addr server_ip = 0x0a000001;  // 10.0.0.1
  Port server_port = 5001;
  Port local_port = 40000;
  uint16_t mss = 1460;
  uint16_t advertised_window = 0xffff;
  uint64_t rto_ns = 200'000'000;
  int max_retries = 12;
  uint32_t max_in_flight = 0xffff;  // Cap independent of peer window.
};

struct RemoteTcpStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_acked = 0;
  uint64_t bytes_received = 0;
  uint64_t segments_tx = 0;
  uint64_t segments_rx = 0;
  uint64_t retransmits = 0;
};

class RemoteTcpPeer final : public LinkEndpoint {
 public:
  // Attaches to `link` side B (the guest NIC is conventionally side A).
  // Pass attach=false when frames are dispatched by a RemoteHub instead.
  RemoteTcpPeer(Machine& machine, Link& link, RemoteTcpConfig config,
                RemoteApp& app, bool attach = true);

  // Starts the three-way handshake (active open).
  void Connect();

  // Passive open: waits for the guest to connect to config.local_port and
  // answers ARP who-has queries for config.ip.
  void Listen();

  // LinkEndpoint: a frame from the server arrived. Processed immediately
  // and free of charge (remote machine).
  void DeliverFrame(std::vector<uint8_t> frame) override;

  // Fires due retransmission timers. Call from the platform idle loop.
  // Returns true if anything was sent.
  bool OnTick();

  // Earliest timer deadline (for idle time-skipping).
  std::optional<uint64_t> NextEventCycles() const;

  RemoteTcpState state() const { return state_; }
  bool established() const { return state_ == RemoteTcpState::kEstablished; }
  bool done() const { return state_ == RemoteTcpState::kDone; }
  const RemoteTcpStats& stats() const { return stats_; }

 private:
  struct InFlightSeg {
    uint32_t seq;
    uint32_t len;
    bool syn;
    bool fin;
    uint64_t sent_at_cycles;
  };

  void SendSegment(uint8_t flags, uint32_t seq, const uint8_t* payload,
                   uint32_t len);
  void SendAck();
  // Pulls app data and transmits as the window allows; sends FIN when done.
  void Pump();
  void HandleFrame(const ParsedFrame& frame);
  void ProcessAck(const TcpHeader& header);
  uint64_t RtoCycles() const;

  Machine& machine_;  // For the virtual clock only.
  Link& link_;
  RemoteTcpConfig config_;
  RemoteApp& app_;

  RemoteTcpState state_ = RemoteTcpState::kClosed;
  // Peer port we talk to: the configured server port when active, or the
  // guest's ephemeral source port once a SYN arrives when passive.
  Port remote_port_ = 0;
  uint32_t iss_ = 1;
  uint32_t snd_una_ = 0;
  uint32_t snd_nxt_ = 0;
  uint32_t rcv_nxt_ = 0;
  uint32_t peer_wnd_ = 0;
  bool fin_sent_ = false;
  bool fin_received_ = false;

  // Unacknowledged + unsent application bytes; front corresponds to
  // snd_una_ (minus phantom SYN/FIN sequence slots).
  std::deque<uint8_t> buffer_;
  uint64_t unsent_offset_ = 0;  // Bytes of buffer_ already transmitted.

  std::deque<InFlightSeg> inflight_;
  int retries_ = 0;
  RemoteTcpStats stats_;
};

// Fans one link endpoint out to many peers (one client machine running
// many connections, e.g. redis-benchmark). Each registered endpoint sees
// every frame and filters by its own port.
class RemoteHub final : public LinkEndpoint {
 public:
  explicit RemoteHub(Link& link) { link.AttachB(this); }

  void Register(LinkEndpoint* endpoint) { endpoints_.push_back(endpoint); }

  void DeliverFrame(std::vector<uint8_t> frame) override {
    for (LinkEndpoint* endpoint : endpoints_) {
      endpoint->DeliverFrame(frame);  // Copy: peers filter by port.
    }
  }

 private:
  std::vector<LinkEndpoint*> endpoints_;
};

}  // namespace flexos

#endif  // FLEXOS_NET_REMOTE_TCP_H_
