// RFC 1071 Internet checksum.
#ifndef FLEXOS_NET_CHECKSUM_H_
#define FLEXOS_NET_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace flexos {

// One's-complement sum folded to 16 bits; the caller decides when to invert.
// `initial` allows chaining (pseudo-header + payload).
uint32_t ChecksumPartial(const uint8_t* data, size_t size, uint32_t initial);

// Final Internet checksum of a buffer (inverted, folded).
uint16_t Checksum(const uint8_t* data, size_t size);

// Folds a partial sum and inverts it.
uint16_t ChecksumFinish(uint32_t partial);

}  // namespace flexos

#endif  // FLEXOS_NET_CHECKSUM_H_
