#include "net/virtio_queue.h"

namespace flexos {
namespace {

constexpr uint64_t kDescSize = 16;   // addr u64, len u32, flags u16, next u16.
constexpr uint64_t kRingHeader = 4;  // flags u16 + idx u16.

}  // namespace

uint64_t VirtioQueue::FootprintBytes(uint16_t depth) {
  const uint64_t desc_table = kDescSize * depth;
  const uint64_t avail = kRingHeader + 2ull * depth;
  const uint64_t used = kRingHeader + 8ull * depth;
  return desc_table + avail + used;
}

VirtioQueue::VirtioQueue(AddressSpace& space, Gaddr base, uint16_t depth)
    : space_(&space), base_(base), depth_(depth) {
  free_ids_.reserve(depth);
  for (uint16_t id = depth; id > 0; --id) {
    free_ids_.push_back(static_cast<uint16_t>(id - 1));
  }
}

Result<VirtioQueue> VirtioQueue::Create(AddressSpace& space, Gaddr base,
                                        uint16_t depth) {
  if (depth == 0) {
    return Status(ErrorCode::kInvalidArgument, "queue depth must be > 0");
  }
  VirtioQueue queue(space, base, depth);
  // Zero the control structures (descriptor table may stay stale).
  space.Fill(queue.AvailIdxAddr() - 2, 0, kRingHeader);
  space.Fill(queue.UsedIdxAddr() - 2, 0, kRingHeader);
  return queue;
}

Gaddr VirtioQueue::DescAddr(uint16_t id) const {
  return base_ + kDescSize * id;
}

Gaddr VirtioQueue::AvailIdxAddr() const {
  return base_ + kDescSize * depth_ + 2;  // Skip flags.
}

Gaddr VirtioQueue::AvailRingAddr(uint16_t slot) const {
  return AvailIdxAddr() + 2 + 2ull * slot;
}

Gaddr VirtioQueue::UsedIdxAddr() const {
  return base_ + kDescSize * depth_ + kRingHeader + 2ull * depth_ + 2;
}

Gaddr VirtioQueue::UsedRingAddr(uint16_t slot) const {
  return UsedIdxAddr() + 2 + 8ull * slot;
}

Result<uint16_t> VirtioQueue::AddBuffer(Gaddr addr, uint32_t len,
                                        bool device_writable) {
  if (free_ids_.empty()) {
    return Status(ErrorCode::kResourceExhausted, "no free descriptors");
  }
  const uint16_t id = free_ids_.back();
  free_ids_.pop_back();

  // Write the descriptor.
  const Gaddr desc = DescAddr(id);
  space_->WriteT<uint64_t>(desc, addr);
  space_->WriteT<uint32_t>(desc + 8, len);
  space_->WriteT<uint16_t>(desc + 12,
                           device_writable ? uint16_t{2} : uint16_t{0});
  space_->WriteT<uint16_t>(desc + 14, 0);  // No chaining.

  // Publish in the avail ring.
  const uint16_t avail_idx = space_->ReadT<uint16_t>(AvailIdxAddr());
  space_->WriteT<uint16_t>(AvailRingAddr(avail_idx % depth_), id);
  space_->WriteT<uint16_t>(AvailIdxAddr(),
                           static_cast<uint16_t>(avail_idx + 1));
  return id;
}

std::optional<VirtioQueue::DescRef> VirtioQueue::DeviceNextAvail() {
  const uint16_t avail_idx = space_->ReadT<uint16_t>(AvailIdxAddr());
  if (avail_seen_ == avail_idx) {
    return std::nullopt;
  }
  const uint16_t id =
      space_->ReadT<uint16_t>(AvailRingAddr(avail_seen_ % depth_));
  ++avail_seen_;
  const Gaddr desc = DescAddr(id);
  DescRef ref;
  ref.desc_id = id;
  ref.addr = space_->ReadT<uint64_t>(desc);
  ref.len = space_->ReadT<uint32_t>(desc + 8);
  ref.device_writable = (space_->ReadT<uint16_t>(desc + 12) & 2) != 0;
  return ref;
}

void VirtioQueue::DevicePushUsed(uint16_t desc_id, uint32_t written) {
  const uint16_t used_idx = space_->ReadT<uint16_t>(UsedIdxAddr());
  const Gaddr slot = UsedRingAddr(used_idx % depth_);
  space_->WriteT<uint32_t>(slot, desc_id);
  space_->WriteT<uint32_t>(slot + 4, written);
  space_->WriteT<uint16_t>(UsedIdxAddr(), static_cast<uint16_t>(used_idx + 1));
}

std::optional<VirtioQueue::UsedElem> VirtioQueue::PopUsed() {
  const uint16_t used_idx = space_->ReadT<uint16_t>(UsedIdxAddr());
  if (used_seen_ == used_idx) {
    return std::nullopt;
  }
  const Gaddr slot = UsedRingAddr(used_seen_ % depth_);
  ++used_seen_;
  UsedElem elem;
  elem.desc_id = static_cast<uint16_t>(space_->ReadT<uint32_t>(slot));
  elem.written = space_->ReadT<uint32_t>(slot + 4);
  free_ids_.push_back(elem.desc_id);
  return elem;
}

}  // namespace flexos
