#include "net/netstack.h"

#include "support/log.h"

namespace flexos {

NetStack::NetStack(const Deps& deps, TcpConfig tcp_config)
    : machine_(deps.machine),
      space_(deps.space),
      nic_(deps.nic),
      router_(deps.router),
      platform_to_net_(deps.router.Resolve(kLibPlatform, kLibNet)),
      tcp_(TcpEngine::Deps{.machine = deps.machine,
                           .space = deps.space,
                           .allocator = deps.allocator,
                           .scheduler = deps.scheduler,
                           .nic = deps.nic,
                           .router = deps.router},
           tcp_config),
      udp_(deps.machine, deps.space, deps.scheduler, deps.nic, deps.router),
      arp_(deps.machine, deps.scheduler, deps.nic, deps.router) {}

Result<int> NetStack::TcpConnect(Ipv4Addr dst_ip, Port dst_port) {
  FLEXOS_ASSIGN_OR_RETURN(MacAddr dst_mac, arp_.Resolve(dst_ip));
  return tcp_.Connect(dst_ip, dst_mac, dst_port);
}

std::optional<uint64_t> NetStack::NextEventCycles() const {
  std::optional<uint64_t> next = tcp_.NextTimerCycles();
  const std::optional<uint64_t> arp_next = arp_.NextTimerCycles();
  if (arp_next.has_value() && (!next.has_value() || *arp_next < *next)) {
    next = arp_next;
  }
  return next;
}

bool NetStack::Poll() {
  bool progress = false;
  router_.Call(platform_to_net_, [&] {
    // All semaphore wakeups this poll produces (data arrival, window
    // opening, accept, FIN, reset — across every frame drained below and
    // any timers that fire) may share one net -> libc crossing.
    tcp_.BeginSignalScope();
    while (nic_.HasRx()) {
      progress = true;
      ++stats_.frames_polled;
      const std::vector<uint8_t> raw = nic_.PopRx();
      Result<ParsedFrame> parsed = ParseFrame(raw);
      if (!parsed.ok()) {
        ++stats_.parse_errors;
        FLEXOS_DEBUG("netstack: dropping frame: %s",
                     parsed.status().ToString().c_str());
        continue;
      }
      const ParsedFrame& frame = parsed.value();
      if (arp_.OnFrame(frame)) {
        continue;
      }
      if (frame.icmp.has_value()) {
        // Answer echo requests addressed to us.
        if (frame.icmp->type == kIcmpEchoRequest &&
            frame.ip.dst == nic_.ip()) {
          ++stats_.icmp_echoes_answered;
          machine_.ChargeCompute(machine_.costs().pkt_rx_fixed / 2);
          machine_.ChargeCompute(machine_.costs().pkt_tx_fixed / 2);
          IcmpEcho reply;
          reply.type = kIcmpEchoReply;
          reply.id = frame.icmp->id;
          reply.seq = frame.icmp->seq;
          nic_.Transmit(BuildIcmpEchoFrame(
              nic_.mac(), frame.eth.src, nic_.ip(), frame.ip.src, reply,
              frame.payload.data(), frame.payload.size()));
        }
        continue;
      }
      if (!tcp_.OnFrame(frame) && !udp_.OnFrame(frame)) {
        ++stats_.unhandled_frames;
      }
    }
    if (tcp_.ProcessTimers()) {
      progress = true;
    }
    tcp_.EndSignalScope();
    if (arp_.ProcessTimers()) {
      progress = true;
    }
  });
  return progress;
}

}  // namespace flexos
