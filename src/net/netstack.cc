#include "net/netstack.h"

#include "obs/names.h"
#include "support/log.h"

namespace flexos {

NetStack::NetStack(const Deps& deps, TcpConfig tcp_config)
    : machine_(deps.machine),
      space_(deps.space),
      nic_(deps.nic),
      router_(deps.router),
      platform_to_net_(deps.router.Resolve(kLibPlatform, kLibNet)),
      tcp_(TcpEngine::Deps{.machine = deps.machine,
                           .space = deps.space,
                           .allocator = deps.allocator,
                           .scheduler = deps.scheduler,
                           .nic = deps.nic,
                           .router = deps.router},
           tcp_config),
      udp_(deps.machine, deps.space, deps.scheduler, deps.nic, deps.router),
      arp_(deps.machine, deps.scheduler, deps.nic, deps.router) {
  obs::MetricsRegistry& metrics = machine_.metrics();
  frames_polled_counter_ = &metrics.GetCounter(obs::kMetricFramesPolled);
  parse_errors_counter_ = &metrics.GetCounter(obs::kMetricParseErrors);
  unhandled_frames_counter_ = &metrics.GetCounter(obs::kMetricUnhandledFrames);
  icmp_echoes_counter_ = &metrics.GetCounter(obs::kMetricIcmpEchoes);
}

const NetStackStats& NetStack::stats() const {
  stats_.frames_polled = frames_polled_counter_->value();
  stats_.parse_errors = parse_errors_counter_->value();
  stats_.unhandled_frames = unhandled_frames_counter_->value();
  stats_.icmp_echoes_answered = icmp_echoes_counter_->value();
  return stats_;
}

Result<int> NetStack::TcpConnect(Ipv4Addr dst_ip, Port dst_port) {
  FLEXOS_ASSIGN_OR_RETURN(MacAddr dst_mac, arp_.Resolve(dst_ip));
  return tcp_.Connect(dst_ip, dst_mac, dst_port);
}

std::optional<uint64_t> NetStack::NextEventCycles() const {
  std::optional<uint64_t> next = tcp_.NextTimerCycles();
  const std::optional<uint64_t> arp_next = arp_.NextTimerCycles();
  if (arp_next.has_value() && (!next.has_value() || *arp_next < *next)) {
    next = arp_next;
  }
  return next;
}

bool NetStack::Poll() {
  bool progress = false;
  uint64_t frames = 0;
  // Stamped before the gate crossing so the poll span covers it.
  obs::Tracer& tracer = machine_.tracer();
  const bool tracing = tracer.enabled();
  const uint64_t poll_start_ns = tracing ? tracer.NowNs() : 0;
  const Status poll_status = router_.TryCall(platform_to_net_, [&] {
    // All semaphore wakeups this poll produces (data arrival, window
    // opening, accept, FIN, reset — across every frame drained below and
    // any timers that fire) may share one net -> libc crossing.
    tcp_.BeginSignalScope();
    while (nic_.HasRx()) {
      progress = true;
      ++frames;
      frames_polled_counter_->Add();
      const std::vector<uint8_t> raw = nic_.PopRx();
      Result<ParsedFrame> parsed = ParseFrame(raw);
      if (!parsed.ok()) {
        parse_errors_counter_->Add();
        FLEXOS_DEBUG("netstack: dropping frame: %s",
                     parsed.status().ToString().c_str());
        continue;
      }
      const ParsedFrame& frame = parsed.value();
      if (arp_.OnFrame(frame)) {
        continue;
      }
      if (frame.icmp.has_value()) {
        // Answer echo requests addressed to us.
        if (frame.icmp->type == kIcmpEchoRequest &&
            frame.ip.dst == nic_.ip()) {
          icmp_echoes_counter_->Add();
          machine_.ChargeCompute(machine_.costs().pkt_rx_fixed / 2);
          machine_.ChargeCompute(machine_.costs().pkt_tx_fixed / 2);
          IcmpEcho reply;
          reply.type = kIcmpEchoReply;
          reply.id = frame.icmp->id;
          reply.seq = frame.icmp->seq;
          nic_.Transmit(BuildIcmpEchoFrame(
              nic_.mac(), frame.eth.src, nic_.ip(), frame.ip.src, reply,
              frame.payload.data(), frame.payload.size()));
        }
        continue;
      }
      if (!tcp_.OnFrame(frame) && !udp_.OnFrame(frame)) {
        unhandled_frames_counter_->Add();
      }
    }
    if (tcp_.ProcessTimers()) {
      progress = true;
    }
    tcp_.EndSignalScope();
    if (arp_.ProcessTimers()) {
      progress = true;
    }
  });
  if (!poll_status.ok()) {
    // The net compartment is quarantined (or its poll trapped and was
    // contained): inbound frames stay queued on the NIC and drain after the
    // supervisor re-admits the compartment. No progress reported, so the
    // idle loop falls through to its next-event computation — which
    // includes the supervisor's restart deadline — instead of spinning.
    return false;
  }
  // Only productive polls get a span: the idle loop polls constantly and
  // would otherwise flood the trace ring with empty entries.
  if (tracing && progress) {
    tracer.RecordComplete(obs::TraceCat::kNet, "net.poll", poll_start_ns,
                          tracer.NowNs() - poll_start_ns,
                          platform_to_net_.to_comp + 1, frames, 0);
  }
  return progress;
}

}  // namespace flexos
