// Minimal UDP sockets: bind a port, send datagrams, block on receive.
#ifndef FLEXOS_NET_UDP_H_
#define FLEXOS_NET_UDP_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "libc/semaphore.h"
#include "net/nic.h"
#include "net/wire.h"
#include "sched/scheduler.h"
#include "support/gate_router.h"
#include "vmem/access.h"

namespace flexos {

struct UdpDatagramInfo {
  Ipv4Addr src_ip = 0;
  Port src_port = 0;
  uint64_t bytes = 0;      // Bytes copied into the caller's buffer.
  uint64_t full_size = 0;  // Original datagram size (truncation check).
};

struct UdpStats {
  uint64_t datagrams_rx = 0;
  uint64_t datagrams_tx = 0;
  uint64_t rx_dropped = 0;
};

class UdpEngine {
 public:
  static constexpr size_t kMaxQueuedDatagrams = 256;

  UdpEngine(Machine& machine, AddressSpace& space, Scheduler& scheduler,
            Nic& nic, GateRouter& router)
      : machine_(machine), space_(space), scheduler_(scheduler), nic_(nic),
        router_(router),
        net_to_libc_(router.Resolve(kLibNet, kLibLibc)) {}

  // Binds a UDP socket to `port`; returns a socket id.
  Result<int> Open(Port port);

  Status Close(int socket_id);

  // Sends one datagram (payload read through the network compartment's
  // address space; cross-compartment callers pass shared-region addresses).
  Status SendTo(int socket_id, Ipv4Addr dst_ip, const MacAddr& dst_mac,
                Port dst_port, Gaddr addr, uint64_t len);

  // Blocks until a datagram arrives; copies it into [addr, addr+len).
  Result<UdpDatagramInfo> RecvFrom(int socket_id, Gaddr addr, uint64_t len);

  // Platform: handles one inbound UDP frame.
  bool OnFrame(const ParsedFrame& frame);

  const UdpStats& stats() const { return stats_; }

 private:
  struct Datagram {
    Ipv4Addr src_ip;
    Port src_port;
    std::vector<uint8_t> payload;
  };

  struct Socket {
    int id;
    Port port;
    std::deque<Datagram> queue;
    std::unique_ptr<Semaphore> rx_sem;
  };

  Machine& machine_;
  AddressSpace& space_;
  Scheduler& scheduler_;
  Nic& nic_;
  GateRouter& router_;
  RouteHandle net_to_libc_;  // Resolved once; semaphore waits/wakeups.
  std::unordered_map<int, std::unique_ptr<Socket>> sockets_;
  std::unordered_map<Port, int> by_port_;
  int next_id_ = 1;
  UdpStats stats_;
};

}  // namespace flexos

#endif  // FLEXOS_NET_UDP_H_
