// A point-to-point link in virtual time: bandwidth-limited serialization,
// propagation latency, and optional random loss (deterministic seed). One
// endpoint is usually the guest NIC; the other is either a second NIC or a
// host-side remote peer (net/remote_tcp.h) modeling the client machine of
// the paper's testbed.
#ifndef FLEXOS_NET_LINK_H_
#define FLEXOS_NET_LINK_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "hw/machine.h"
#include "support/rng.h"

namespace flexos {

class LinkEndpoint {
 public:
  virtual ~LinkEndpoint() = default;

  // Called when a frame finishes arriving at this endpoint.
  virtual void DeliverFrame(std::vector<uint8_t> frame) = 0;
};

struct LinkConfig {
  double bandwidth_bps = 10e9;   // 10 GbE by default.
  uint64_t latency_ns = 5'000;   // One-way propagation.
  double loss_probability = 0.0;
  uint64_t seed = 42;
};

struct LinkStats {
  uint64_t frames_sent = 0;
  uint64_t frames_dropped = 0;
  uint64_t frames_delivered = 0;
  uint64_t bytes_delivered = 0;
};

class Link {
 public:
  Link(Machine& machine, LinkConfig config);

  void AttachA(LinkEndpoint* endpoint) { endpoint_a_ = endpoint; }
  void AttachB(LinkEndpoint* endpoint) { endpoint_b_ = endpoint; }

  // Transmits a frame from one side; it will arrive at the opposite side
  // after serialization + propagation (or be dropped by the loss model).
  void SendFromA(std::vector<uint8_t> frame) { Send(std::move(frame), true); }
  void SendFromB(std::vector<uint8_t> frame) { Send(std::move(frame), false); }

  // Delivers every frame whose arrival time has passed. Returns the number
  // of frames delivered.
  size_t DeliverDue();

  // Cycle timestamp of the next pending arrival, if any.
  std::optional<uint64_t> NextArrivalCycles() const;

  const LinkStats& stats() const { return stats_; }

 private:
  struct InFlight {
    uint64_t arrival_cycles;
    uint64_t sequence;  // Tie-break so delivery order is FIFO.
    bool to_b;
    std::vector<uint8_t> frame;

    bool operator>(const InFlight& other) const {
      if (arrival_cycles != other.arrival_cycles) {
        return arrival_cycles > other.arrival_cycles;
      }
      return sequence > other.sequence;
    }
  };

  void Send(std::vector<uint8_t> frame, bool to_b);

  Machine& machine_;
  LinkConfig config_;
  Rng rng_;
  LinkEndpoint* endpoint_a_ = nullptr;
  LinkEndpoint* endpoint_b_ = nullptr;
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>>
      in_flight_;
  uint64_t next_sequence_ = 0;
  // Wire-busy-until per direction (serialization discipline).
  uint64_t busy_until_to_b_ = 0;
  uint64_t busy_until_to_a_ = 0;
  LinkStats stats_;
};

}  // namespace flexos

#endif  // FLEXOS_NET_LINK_H_
