#include "net/arp.h"

#include "support/strings.h"

namespace flexos {
namespace {

const MacAddr kBroadcast{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};

}  // namespace

std::optional<MacAddr> ArpEngine::Lookup(Ipv4Addr ip) const {
  auto it = cache_.find(ip);
  if (it == cache_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void ArpEngine::SendRequest(Ipv4Addr ip) {
  ++stats_.requests_sent;
  machine_.ChargeCompute(machine_.costs().pkt_tx_fixed / 2);
  ArpPacket request;
  request.op = kArpOpRequest;
  request.sender_mac = nic_.mac();
  request.sender_ip = nic_.ip();
  request.target_ip = ip;
  nic_.Transmit(BuildArpFrame(nic_.mac(), kBroadcast, request));
}

Result<MacAddr> ArpEngine::Resolve(Ipv4Addr ip) {
  {
    auto cached = cache_.find(ip);
    if (cached != cache_.end()) {
      return cached->second;
    }
  }
  auto pending_it = pending_.find(ip);
  if (pending_it == pending_.end()) {
    Pending pending;
    pending.next_retry_cycles =
        machine_.clock().cycles() +
        machine_.clock().NanosToCycles(config_.retry_ns);
    pending.sem = std::make_unique<Semaphore>(
        scheduler_, StrFormat("arp.%s", Ipv4ToString(ip).c_str()), 0,
        &router_);
    pending_it = pending_.emplace(ip, std::move(pending)).first;
    SendRequest(ip);
  }
  Pending& pending = pending_it->second;
  ++pending.waiters;
  Result<MacAddr> result =
      Status(ErrorCode::kUnavailable,
             "ARP resolution failed for " + Ipv4ToString(ip));
  for (;;) {
    auto cached = cache_.find(ip);
    if (cached != cache_.end()) {
      result = cached->second;
      break;
    }
    if (pending.failed) {
      break;
    }
    Semaphore* sem = pending.sem.get();
    router_.Call(net_to_libc_, [sem] { sem->Wait(); });
  }
  if (--pending.waiters == 0) {
    pending_.erase(pending_it);
  } else {
    // Let the next waiter re-check the outcome.
    Semaphore* sem = pending.sem.get();
    router_.Call(net_to_libc_, [sem] { sem->Signal(); });
  }
  return result;
}

bool ArpEngine::OnFrame(const ParsedFrame& frame) {
  if (!frame.arp.has_value()) {
    return false;
  }
  const ArpPacket& arp = *frame.arp;
  machine_.ChargeCompute(machine_.costs().pkt_rx_fixed / 4);
  // Opportunistic learning from any ARP traffic.
  cache_[arp.sender_ip] = arp.sender_mac;

  if (arp.op == kArpOpRequest && arp.target_ip == nic_.ip()) {
    ++stats_.replies_sent;
    ArpPacket reply;
    reply.op = kArpOpReply;
    reply.sender_mac = nic_.mac();
    reply.sender_ip = nic_.ip();
    reply.target_mac = arp.sender_mac;
    reply.target_ip = arp.sender_ip;
    nic_.Transmit(BuildArpFrame(nic_.mac(), arp.sender_mac, reply));
  } else if (arp.op == kArpOpReply) {
    ++stats_.replies_received;
  }

  // Wake anyone waiting on this resolution.
  auto pending_it = pending_.find(arp.sender_ip);
  if (pending_it != pending_.end()) {
    Semaphore* sem = pending_it->second.sem.get();
    router_.Call(net_to_libc_, [sem] { sem->Signal(); });
  }
  return true;
}

bool ArpEngine::ProcessTimers() {
  const uint64_t now = machine_.clock().cycles();
  bool fired = false;
  for (auto& [ip, pending] : pending_) {
    if (pending.failed || cache_.count(ip) != 0 ||
        now < pending.next_retry_cycles) {
      continue;
    }
    fired = true;
    ++pending.retries;
    if (pending.retries >= config_.max_retries) {
      ++stats_.resolution_failures;
      pending.failed = true;
      Semaphore* sem = pending.sem.get();
      router_.Call(net_to_libc_, [sem] { sem->Signal(); });
      continue;
    }
    pending.next_retry_cycles =
        now + machine_.clock().NanosToCycles(config_.retry_ns);
    SendRequest(ip);
  }
  return fired;
}

std::optional<uint64_t> ArpEngine::NextTimerCycles() const {
  std::optional<uint64_t> next;
  for (const auto& [ip, pending] : pending_) {
    if (pending.failed || cache_.count(ip) != 0) {
      continue;
    }
    if (!next.has_value() || pending.next_retry_cycles < *next) {
      next = pending.next_retry_cycles;
    }
  }
  return next;
}

}  // namespace flexos
