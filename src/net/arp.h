// ARP: answers who-has requests for the guest's address and resolves
// next-hop MACs for guest-initiated connections, with retry timers in
// virtual time. Resolution blocks the calling thread on a LibC semaphore
// like every other wait in the stack.
#ifndef FLEXOS_NET_ARP_H_
#define FLEXOS_NET_ARP_H_

#include <map>
#include <memory>
#include <optional>

#include "libc/semaphore.h"
#include "net/nic.h"
#include "sched/scheduler.h"
#include "support/gate_router.h"

namespace flexos {

struct ArpConfig {
  uint64_t retry_ns = 100'000'000;  // Between request retransmissions.
  int max_retries = 5;
};

struct ArpStats {
  uint64_t requests_sent = 0;
  uint64_t replies_sent = 0;
  uint64_t replies_received = 0;
  uint64_t resolution_failures = 0;
};

class ArpEngine {
 public:
  ArpEngine(Machine& machine, Scheduler& scheduler, Nic& nic,
            GateRouter& router, ArpConfig config = ArpConfig{})
      : machine_(machine),
        scheduler_(scheduler),
        nic_(nic),
        router_(router),
        net_to_libc_(router.Resolve(kLibNet, kLibLibc)),
        config_(config) {}

  // Blocking resolve; sends requests with retries. kUnavailable after
  // max_retries unanswered requests.
  Result<MacAddr> Resolve(Ipv4Addr ip);

  // Static/learned entries.
  void Insert(Ipv4Addr ip, const MacAddr& mac) { cache_[ip] = mac; }
  std::optional<MacAddr> Lookup(Ipv4Addr ip) const;

  // Platform: handles one inbound ARP frame (request -> reply for our IP;
  // reply -> cache fill + waiter wakeup).
  bool OnFrame(const ParsedFrame& frame);

  // Fires due request retransmissions; returns true if any were sent.
  bool ProcessTimers();
  std::optional<uint64_t> NextTimerCycles() const;

  const ArpStats& stats() const { return stats_; }

 private:
  struct Pending {
    int retries = 0;
    uint64_t next_retry_cycles = 0;
    bool failed = false;
    int waiters = 0;  // Entry is erased when the last waiter leaves.
    std::unique_ptr<Semaphore> sem;
  };

  void SendRequest(Ipv4Addr ip);

  Machine& machine_;
  Scheduler& scheduler_;
  Nic& nic_;
  GateRouter& router_;
  RouteHandle net_to_libc_;  // Resolved once; semaphore waits/wakeups.
  ArpConfig config_;
  std::map<Ipv4Addr, MacAddr> cache_;
  std::map<Ipv4Addr, Pending> pending_;
  ArpStats stats_;
};

}  // namespace flexos

#endif  // FLEXOS_NET_ARP_H_
