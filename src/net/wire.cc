#include "net/wire.h"

#include <cstring>

#include "net/checksum.h"
#include "support/strings.h"

namespace flexos {
namespace {

void PutU16(uint8_t* out, uint16_t value) {
  out[0] = static_cast<uint8_t>(value >> 8);
  out[1] = static_cast<uint8_t>(value);
}

void PutU32(uint8_t* out, uint32_t value) {
  out[0] = static_cast<uint8_t>(value >> 24);
  out[1] = static_cast<uint8_t>(value >> 16);
  out[2] = static_cast<uint8_t>(value >> 8);
  out[3] = static_cast<uint8_t>(value);
}

uint16_t GetU16(const uint8_t* data) {
  return static_cast<uint16_t>(data[0]) << 8 | data[1];
}

uint32_t GetU32(const uint8_t* data) {
  return static_cast<uint32_t>(data[0]) << 24 |
         static_cast<uint32_t>(data[1]) << 16 |
         static_cast<uint32_t>(data[2]) << 8 | data[3];
}

// TCP/UDP pseudo-header checksum seed.
uint32_t PseudoHeaderSum(Ipv4Addr src, Ipv4Addr dst, IpProto proto,
                         uint16_t transport_len) {
  uint32_t sum = 0;
  sum += src >> 16;
  sum += src & 0xffff;
  sum += dst >> 16;
  sum += dst & 0xffff;
  sum += static_cast<uint32_t>(proto);
  sum += transport_len;
  return sum;
}

}  // namespace

std::string MacAddr::ToString() const {
  return StrFormat("%02x:%02x:%02x:%02x:%02x:%02x", bytes[0], bytes[1],
                   bytes[2], bytes[3], bytes[4], bytes[5]);
}

std::string Ipv4ToString(Ipv4Addr addr) {
  return StrFormat("%u.%u.%u.%u", addr >> 24 & 0xff, addr >> 16 & 0xff,
                   addr >> 8 & 0xff, addr & 0xff);
}

void EthHeader::SerializeTo(uint8_t* out) const {
  std::memcpy(out, dst.bytes.data(), 6);
  std::memcpy(out + 6, src.bytes.data(), 6);
  PutU16(out + 12, ethertype);
}

EthHeader EthHeader::Parse(const uint8_t* data) {
  EthHeader header;
  std::memcpy(header.dst.bytes.data(), data, 6);
  std::memcpy(header.src.bytes.data(), data + 6, 6);
  header.ethertype = GetU16(data + 12);
  return header;
}

void Ipv4Header::SerializeTo(uint8_t* out) const {
  out[0] = 0x45;  // Version 4, IHL 5.
  out[1] = 0;     // DSCP/ECN.
  PutU16(out + 2, total_len);
  PutU16(out + 4, id);
  PutU16(out + 6, 0x4000);  // Don't-fragment, offset 0.
  out[8] = ttl;
  out[9] = static_cast<uint8_t>(proto);
  PutU16(out + 10, 0);  // Checksum placeholder.
  PutU32(out + 12, src);
  PutU32(out + 16, dst);
  PutU16(out + 10, Checksum(out, kSize));
}

Result<Ipv4Header> Ipv4Header::Parse(const uint8_t* data, size_t size) {
  if (size < kSize) {
    return Status(ErrorCode::kInvalidArgument, "short IPv4 header");
  }
  if (data[0] != 0x45) {
    return Status(ErrorCode::kInvalidArgument, "unsupported IPv4 version/IHL");
  }
  if (Checksum(data, kSize) != 0) {
    return Status(ErrorCode::kInvalidArgument, "bad IPv4 header checksum");
  }
  Ipv4Header header;
  header.total_len = GetU16(data + 2);
  header.id = GetU16(data + 4);
  header.ttl = data[8];
  header.proto = static_cast<IpProto>(data[9]);
  header.src = GetU32(data + 12);
  header.dst = GetU32(data + 16);
  if (header.total_len < kSize || header.total_len > size) {
    return Status(ErrorCode::kInvalidArgument, "bad IPv4 total length");
  }
  return header;
}

void TcpHeader::SerializeTo(uint8_t* out) const {
  PutU16(out, src_port);
  PutU16(out + 2, dst_port);
  PutU32(out + 4, seq);
  PutU32(out + 8, ack);
  out[12] = 0x50;  // Data offset 5 words.
  out[13] = flags;
  PutU16(out + 14, window);
  PutU16(out + 16, 0);  // Checksum (filled by the frame builder).
  PutU16(out + 18, 0);  // Urgent pointer.
}

TcpHeader TcpHeader::Parse(const uint8_t* data) {
  TcpHeader header;
  header.src_port = GetU16(data);
  header.dst_port = GetU16(data + 2);
  header.seq = GetU32(data + 4);
  header.ack = GetU32(data + 8);
  header.flags = data[13];
  header.window = GetU16(data + 14);
  return header;
}

std::string TcpHeader::FlagsToString() const {
  std::string out;
  if (flags & kTcpSyn) out += 'S';
  if (flags & kTcpAck) out += 'A';
  if (flags & kTcpFin) out += 'F';
  if (flags & kTcpRst) out += 'R';
  if (flags & kTcpPsh) out += 'P';
  return out.empty() ? "-" : out;
}

void UdpHeader::SerializeTo(uint8_t* out) const {
  PutU16(out, src_port);
  PutU16(out + 2, dst_port);
  PutU16(out + 4, length);
  PutU16(out + 6, 0);  // Checksum optional over IPv4; we emit 0.
}

UdpHeader UdpHeader::Parse(const uint8_t* data) {
  UdpHeader header;
  header.src_port = GetU16(data);
  header.dst_port = GetU16(data + 2);
  header.length = GetU16(data + 4);
  return header;
}

void ArpPacket::SerializeTo(uint8_t* out) const {
  PutU16(out, 1);       // HTYPE: Ethernet.
  PutU16(out + 2, kEtherTypeIpv4);
  out[4] = 6;           // HLEN.
  out[5] = 4;           // PLEN.
  PutU16(out + 6, op);
  std::memcpy(out + 8, sender_mac.bytes.data(), 6);
  PutU32(out + 14, sender_ip);
  std::memcpy(out + 18, target_mac.bytes.data(), 6);
  PutU32(out + 24, target_ip);
}

Result<ArpPacket> ArpPacket::Parse(const uint8_t* data, size_t size) {
  if (size < kSize) {
    return Status(ErrorCode::kInvalidArgument, "short ARP packet");
  }
  if (GetU16(data) != 1 || GetU16(data + 2) != kEtherTypeIpv4 ||
      data[4] != 6 || data[5] != 4) {
    return Status(ErrorCode::kUnimplemented, "non-Ethernet/IPv4 ARP");
  }
  ArpPacket arp;
  arp.op = GetU16(data + 6);
  std::memcpy(arp.sender_mac.bytes.data(), data + 8, 6);
  arp.sender_ip = GetU32(data + 14);
  std::memcpy(arp.target_mac.bytes.data(), data + 18, 6);
  arp.target_ip = GetU32(data + 24);
  return arp;
}

void IcmpEcho::SerializeTo(uint8_t* out, const uint8_t* payload,
                           size_t payload_size) const {
  out[0] = type;
  out[1] = 0;  // Code.
  PutU16(out + 2, 0);
  PutU16(out + 4, id);
  PutU16(out + 6, seq);
  if (payload_size > 0) {
    std::memcpy(out + kHeaderSize, payload, payload_size);
  }
  PutU16(out + 2, Checksum(out, kHeaderSize + payload_size));
}

Result<IcmpEcho> IcmpEcho::Parse(const uint8_t* data, size_t size) {
  if (size < kHeaderSize) {
    return Status(ErrorCode::kInvalidArgument, "short ICMP message");
  }
  if (Checksum(data, size) != 0) {
    return Status(ErrorCode::kInvalidArgument, "bad ICMP checksum");
  }
  IcmpEcho icmp;
  icmp.type = data[0];
  if (icmp.type != kIcmpEchoRequest && icmp.type != kIcmpEchoReply) {
    return Status(ErrorCode::kUnimplemented, "unsupported ICMP type");
  }
  icmp.id = GetU16(data + 4);
  icmp.seq = GetU16(data + 6);
  return icmp;
}

std::vector<uint8_t> BuildArpFrame(const MacAddr& src_mac,
                                   const MacAddr& dst_mac,
                                   const ArpPacket& arp) {
  std::vector<uint8_t> frame(EthHeader::kSize + ArpPacket::kSize);
  EthHeader eth{.dst = dst_mac, .src = src_mac, .ethertype = kEtherTypeArp};
  eth.SerializeTo(frame.data());
  arp.SerializeTo(frame.data() + EthHeader::kSize);
  return frame;
}

std::vector<uint8_t> BuildIcmpEchoFrame(const MacAddr& src_mac,
                                        const MacAddr& dst_mac,
                                        Ipv4Addr src_ip, Ipv4Addr dst_ip,
                                        const IcmpEcho& icmp,
                                        const uint8_t* payload,
                                        size_t payload_size) {
  const size_t transport_len = IcmpEcho::kHeaderSize + payload_size;
  std::vector<uint8_t> frame(EthHeader::kSize + Ipv4Header::kSize +
                             transport_len);
  EthHeader eth{.dst = dst_mac, .src = src_mac};
  eth.SerializeTo(frame.data());
  Ipv4Header ip;
  ip.total_len = static_cast<uint16_t>(Ipv4Header::kSize + transport_len);
  ip.proto = IpProto::kIcmp;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.SerializeTo(frame.data() + EthHeader::kSize);
  icmp.SerializeTo(frame.data() + EthHeader::kSize + Ipv4Header::kSize,
                   payload, payload_size);
  return frame;
}

std::vector<uint8_t> BuildTcpFrame(const MacAddr& src_mac,
                                   const MacAddr& dst_mac, Ipv4Addr src_ip,
                                   Ipv4Addr dst_ip, const TcpHeader& tcp,
                                   const uint8_t* payload,
                                   size_t payload_size) {
  const size_t transport_len = TcpHeader::kSize + payload_size;
  std::vector<uint8_t> frame(EthHeader::kSize + Ipv4Header::kSize +
                             transport_len);
  EthHeader eth{.dst = dst_mac, .src = src_mac};
  eth.SerializeTo(frame.data());

  Ipv4Header ip;
  ip.total_len = static_cast<uint16_t>(Ipv4Header::kSize + transport_len);
  ip.proto = IpProto::kTcp;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.SerializeTo(frame.data() + EthHeader::kSize);

  uint8_t* tcp_out = frame.data() + EthHeader::kSize + Ipv4Header::kSize;
  tcp.SerializeTo(tcp_out);
  if (payload_size > 0) {
    std::memcpy(tcp_out + TcpHeader::kSize, payload, payload_size);
  }
  // Transport checksum over pseudo-header + segment.
  uint32_t sum = PseudoHeaderSum(src_ip, dst_ip, IpProto::kTcp,
                                 static_cast<uint16_t>(transport_len));
  sum = ChecksumPartial(tcp_out, transport_len, sum);
  PutU16(tcp_out + 16, ChecksumFinish(sum));
  return frame;
}

std::vector<uint8_t> BuildUdpFrame(const MacAddr& src_mac,
                                   const MacAddr& dst_mac, Ipv4Addr src_ip,
                                   Ipv4Addr dst_ip, Port src_port,
                                   Port dst_port, const uint8_t* payload,
                                   size_t payload_size) {
  const size_t transport_len = UdpHeader::kSize + payload_size;
  std::vector<uint8_t> frame(EthHeader::kSize + Ipv4Header::kSize +
                             transport_len);
  EthHeader eth{.dst = dst_mac, .src = src_mac};
  eth.SerializeTo(frame.data());

  Ipv4Header ip;
  ip.total_len = static_cast<uint16_t>(Ipv4Header::kSize + transport_len);
  ip.proto = IpProto::kUdp;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.SerializeTo(frame.data() + EthHeader::kSize);

  UdpHeader udp{.src_port = src_port,
                .dst_port = dst_port,
                .length = static_cast<uint16_t>(transport_len)};
  uint8_t* udp_out = frame.data() + EthHeader::kSize + Ipv4Header::kSize;
  udp.SerializeTo(udp_out);
  if (payload_size > 0) {
    std::memcpy(udp_out + UdpHeader::kSize, payload, payload_size);
  }
  return frame;
}

Result<ParsedFrame> ParseFrame(const std::vector<uint8_t>& frame) {
  if (frame.size() < EthHeader::kSize + Ipv4Header::kSize) {
    return Status(ErrorCode::kInvalidArgument, "frame too short");
  }
  ParsedFrame parsed;
  parsed.eth = EthHeader::Parse(frame.data());
  if (parsed.eth.ethertype == kEtherTypeArp) {
    FLEXOS_ASSIGN_OR_RETURN(
        parsed.arp, ArpPacket::Parse(frame.data() + EthHeader::kSize,
                                     frame.size() - EthHeader::kSize));
    return parsed;
  }
  if (parsed.eth.ethertype != kEtherTypeIpv4) {
    return Status(ErrorCode::kUnimplemented, "non-IPv4 ethertype");
  }
  FLEXOS_ASSIGN_OR_RETURN(
      parsed.ip, Ipv4Header::Parse(frame.data() + EthHeader::kSize,
                                   frame.size() - EthHeader::kSize));
  const uint8_t* transport =
      frame.data() + EthHeader::kSize + Ipv4Header::kSize;
  const size_t transport_len = parsed.ip.total_len - Ipv4Header::kSize;

  if (parsed.ip.proto == IpProto::kTcp) {
    if (transport_len < TcpHeader::kSize) {
      return Status(ErrorCode::kInvalidArgument, "short TCP segment");
    }
    // Verify the transport checksum end to end.
    uint32_t sum =
        PseudoHeaderSum(parsed.ip.src, parsed.ip.dst, IpProto::kTcp,
                        static_cast<uint16_t>(transport_len));
    if (ChecksumFinish(ChecksumPartial(transport, transport_len, sum)) != 0) {
      return Status(ErrorCode::kInvalidArgument, "bad TCP checksum");
    }
    parsed.tcp = TcpHeader::Parse(transport);
    parsed.payload.assign(transport + TcpHeader::kSize,
                          transport + transport_len);
  } else if (parsed.ip.proto == IpProto::kUdp) {
    if (transport_len < UdpHeader::kSize) {
      return Status(ErrorCode::kInvalidArgument, "short UDP datagram");
    }
    parsed.udp = UdpHeader::Parse(transport);
    if (parsed.udp->length < UdpHeader::kSize ||
        parsed.udp->length > transport_len) {
      return Status(ErrorCode::kInvalidArgument, "bad UDP length");
    }
    parsed.payload.assign(transport + UdpHeader::kSize,
                          transport + parsed.udp->length);
  } else if (parsed.ip.proto == IpProto::kIcmp) {
    FLEXOS_ASSIGN_OR_RETURN(parsed.icmp,
                            IcmpEcho::Parse(transport, transport_len));
    parsed.payload.assign(transport + IcmpEcho::kHeaderSize,
                          transport + transport_len);
  } else {
    return Status(ErrorCode::kUnimplemented, "unsupported IP protocol");
  }
  return parsed;
}

}  // namespace flexos
