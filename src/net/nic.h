// The guest-side NIC device model: a receive queue fed by the link and a
// transmit path onto it. Frame payloads are copied into guest memory by the
// netstack, not here; the NIC only charges DMA-ish per-frame costs.
#ifndef FLEXOS_NET_NIC_H_
#define FLEXOS_NET_NIC_H_

#include <deque>
#include <string>
#include <vector>

#include "net/link.h"
#include "net/wire.h"

namespace flexos {

struct NicStats {
  uint64_t rx_frames = 0;
  uint64_t tx_frames = 0;
  uint64_t rx_bytes = 0;
  uint64_t tx_bytes = 0;
  uint64_t rx_dropped = 0;
};

class Nic final : public LinkEndpoint {
 public:
  static constexpr size_t kDefaultRxQueueDepth = 1024;

  Nic(Machine& machine, std::string name, MacAddr mac, Ipv4Addr ip)
      : machine_(machine), name_(std::move(name)), mac_(mac), ip_(ip) {}

  const std::string& name() const { return name_; }
  const MacAddr& mac() const { return mac_; }
  Ipv4Addr ip() const { return ip_; }

  // Wires this NIC to a link side. `is_side_a` selects which direction
  // Transmit uses.
  void AttachTo(Link& link, bool is_side_a);

  // LinkEndpoint: frames arriving from the wire.
  void DeliverFrame(std::vector<uint8_t> frame) override;

  bool HasRx() const { return !rx_queue_.empty(); }
  std::vector<uint8_t> PopRx();

  // Sends a frame onto the wire.
  void Transmit(std::vector<uint8_t> frame);

  const NicStats& stats() const { return stats_; }

 private:
  Machine& machine_;
  std::string name_;
  MacAddr mac_;
  Ipv4Addr ip_;
  Link* link_ = nullptr;
  bool is_side_a_ = true;
  std::deque<std::vector<uint8_t>> rx_queue_;
  NicStats stats_;
};

}  // namespace flexos

#endif  // FLEXOS_NET_NIC_H_
