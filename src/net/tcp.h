// The server-side TCP engine ("TCP-lite"): three-way handshake, cumulative
// ACKs, sliding-window flow control, go-back-N retransmission with
// exponential backoff, zero-window persist probes, and orderly FIN
// teardown. No congestion control, SACK, or window scaling (documented
// simplifications; the paper's workloads run on a clean datacenter link).
//
// Socket buffers are RingBuffers in guest memory allocated from the network
// compartment's allocator; blocking is implemented with LibC semaphores so
// every wait crosses the net->libc->sched gate chain the paper's Fig. 5
// analysis depends on.
#ifndef FLEXOS_NET_TCP_H_
#define FLEXOS_NET_TCP_H_

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include "alloc/allocator.h"
#include "libc/ring_buffer.h"
#include "obs/metrics.h"
#include "libc/semaphore.h"
#include "net/nic.h"
#include "net/wire.h"
#include "sched/scheduler.h"
#include "support/gate_router.h"
#include "vmem/access.h"

namespace flexos {

enum class TcpState : uint8_t {
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kClosed,
};

std::string_view TcpStateName(TcpState state);

struct TcpConfig {
  uint16_t mss = 1460;
  uint64_t ring_bytes = 256 * 1024;     // Per-direction socket buffer.
  uint64_t rto_ns = 200'000'000;        // Initial retransmission timeout.
  int max_retries = 10;
  // Send a window-update ACK when the advertised window recovers by at
  // least this many bytes after having been clamped.
  uint32_t window_update_threshold = 2 * 1460;
  // Coalesce the net -> libc semaphore signals one NIC poll produces into
  // a single gate crossing (GateBatch) once there is more than one of
  // them. Off by default: batching changes the modeled cost of isolation,
  // so the paper-figure configurations leave it untouched and studies opt
  // in explicitly.
  bool batch_crossings = false;
};

// Read-only view of the engine's net.tcp.* registry counters (obs/names.h);
// refreshed by TcpEngine::stats(). The registry is the source of truth.
struct TcpStats {
  uint64_t segments_rx = 0;
  uint64_t segments_tx = 0;
  uint64_t bytes_rx = 0;
  uint64_t bytes_tx = 0;
  uint64_t retransmits = 0;
  uint64_t out_of_order_drops = 0;
  uint64_t conns_accepted = 0;
  uint64_t resets = 0;
};

class TcpEngine {
 public:
  struct Deps {
    Machine& machine;
    AddressSpace& space;
    Allocator& allocator;
    Scheduler& scheduler;
    Nic& nic;
    GateRouter& router;
  };

  TcpEngine(const Deps& deps, TcpConfig config);
  ~TcpEngine();

  TcpEngine(const TcpEngine&) = delete;
  TcpEngine& operator=(const TcpEngine&) = delete;

  // --- Socket-facing API (called in net context, may block) --------------

  Result<int> Listen(Port port, int backlog);

  // Blocks until a connection is established on the listener; returns its
  // connection id.
  Result<int> Accept(int listener_id);

  // Active open: connects to dst, blocking until the handshake completes
  // (kConnectionRefused/kConnectionReset if the peer aborts, kTimedOut if
  // the SYN retries exhaust). The destination MAC comes from ARP
  // resolution (NetStack::TcpConnect wires that up).
  Result<int> Connect(Ipv4Addr dst_ip, const MacAddr& dst_mac,
                      Port dst_port);

  // Queues [addr, addr+len) for transmission, blocking while the send
  // buffer is full. Returns bytes queued (== len on success). The buffer is
  // read through the *network compartment's* address space: callers in
  // another compartment must pass shared-region addresses, exactly as the
  // paper requires shared data to be annotated and placed in shared
  // sections — a private address faults under MPK and is unmapped under
  // the VM backend.
  Result<uint64_t> Send(int conn_id, Gaddr addr, uint64_t len);

  // Blocks until at least one byte is available (or EOF); returns bytes
  // copied into [addr, addr+len) (0 means the peer closed cleanly). Same
  // shared-buffer contract as Send.
  Result<uint64_t> Recv(int conn_id, Gaddr addr, uint64_t len);

  // Initiates an orderly close (FIN after queued data drains).
  Status Close(int conn_id);

  TcpState StateOf(int conn_id) const;

  // --- Platform-facing API (called from the poll loop) -------------------

  // Handles one inbound TCP frame. Returns true if it was consumed.
  bool OnFrame(const ParsedFrame& frame);

  // Fires due retransmission/persist timers. Returns true if any fired.
  bool ProcessTimers();

  // Signal-coalescing scope, bracketing one poll of the NIC (a no-op
  // unless config.batch_crossings is set and net -> libc is a real
  // boundary). A lone wakeup inside the scope costs exactly the unbatched
  // price; from the second wakeup on they all ride one GateBatch crossing.
  void BeginSignalScope();
  void EndSignalScope();

  // Earliest pending timer deadline in cycles, if any.
  std::optional<uint64_t> NextTimerCycles() const;

  // Refreshes and returns the stats view (reference valid for the engine's
  // lifetime; counters live in the machine's MetricsRegistry).
  const TcpStats& stats() const;

 private:
  struct ConnKey {
    Port local_port;
    Ipv4Addr remote_ip;
    Port remote_port;

    bool operator==(const ConnKey&) const = default;
  };
  struct ConnKeyHash {
    size_t operator()(const ConnKey& key) const {
      uint64_t state = (static_cast<uint64_t>(key.local_port) << 48) ^
                       (static_cast<uint64_t>(key.remote_port) << 32) ^
                       key.remote_ip;
      return static_cast<size_t>(SplitMix64(state));
    }
  };

  struct InFlightSeg {
    uint32_t seq;
    uint32_t len;   // Payload bytes (0 for a bare FIN).
    bool fin;
    uint64_t sent_at_cycles;
  };

  struct Conn {
    int id;
    ConnKey key;
    MacAddr remote_mac;
    TcpState state = TcpState::kSynReceived;

    uint32_t iss = 0;      // Our initial send sequence.
    uint32_t snd_una = 0;  // Oldest unacknowledged.
    uint32_t snd_nxt = 0;  // Next sequence to send.
    uint32_t rcv_nxt = 0;  // Next expected from peer.
    uint32_t peer_wnd = 0;

    bool fin_received = false;
    bool fin_pending = false;  // Close requested; FIN not yet sent.
    bool fin_sent = false;

    Gaddr rings_base = 0;  // Owning allocation for both rings.
    std::optional<RingBuffer> send_ring;
    std::optional<RingBuffer> recv_ring;

    std::deque<InFlightSeg> inflight;
    int retries = 0;
    uint64_t persist_deadline = 0;  // 0 = no persist timer armed.

    uint32_t last_advertised_wnd = 0;

    std::unique_ptr<Semaphore> recv_sem;
    std::unique_ptr<Semaphore> send_sem;

    int listener_id = -1;  // Set until accepted.

    // Request id minted at Accept when the attributor is enabled; closed at
    // Close. 0 = untracked.
    uint64_t trace_request = 0;
  };

  struct Listener {
    int id;
    Port port;
    int backlog;
    std::deque<int> pending;  // Established, not yet accepted.
    std::unique_ptr<Semaphore> accept_sem;
  };

  // Bytes currently in flight (snd_nxt - snd_una, excluding FIN).
  uint32_t InFlightBytes(const Conn& conn) const;
  uint16_t AdvertisedWindow(Conn& conn) const;

  void TransmitSegment(Conn& conn, uint8_t flags, uint32_t seq,
                       const uint8_t* payload, uint32_t payload_len);
  void SendAck(Conn& conn);
  void TrySend(Conn& conn);
  void RetransmitFrom(Conn& conn);

  void HandleSyn(const ParsedFrame& frame);
  void HandleSegment(Conn& conn, const ParsedFrame& frame);
  void ProcessAck(Conn& conn, const TcpHeader& header);
  void AcceptPayload(Conn& conn, const ParsedFrame& frame);
  void AbortConn(Conn& conn);

  // Signals `sem` across the net -> libc boundary, coalescing into the
  // scope's batch when one is active (see BeginSignalScope).
  void SignalSem(Semaphore* sem);

  Conn* FindConn(int conn_id);
  const Conn* FindConn(int conn_id) const;

  // Allocates a connection (rings + semaphores) and registers its key.
  Result<Conn*> CreateConn(const ConnKey& key, const MacAddr& remote_mac);

  uint64_t RtoCycles(const Conn& conn) const;

  Machine& machine_;
  AddressSpace& space_;
  Allocator& allocator_;
  Scheduler& scheduler_;
  Nic& nic_;
  GateRouter& router_;
  TcpConfig config_;
  // Routes resolved once at construction; Send/Recv/OnFrame dispatch
  // through them instead of string-keyed lookups.
  RouteHandle net_to_libc_;
  RouteHandle libc_to_sched_;
  // Signal-coalescing state (see BeginSignalScope): the first wakeup in a
  // scope is parked in deferred_signal_; a second one opens signal_batch_
  // and both (plus any later ones) ride it.
  bool signal_scope_ = false;
  Semaphore* deferred_signal_ = nullptr;
  std::optional<GateBatch> signal_batch_;

  std::unordered_map<ConnKey, int, ConnKeyHash> conn_by_key_;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::unordered_map<int, std::unique_ptr<Listener>> listeners_;
  int next_id_ = 1;
  Port next_ephemeral_ = 49152;
  // Registry-resolved counters; the mutable struct is the compatibility
  // view stats() refreshes.
  struct Counters {
    obs::Counter* segments_rx;
    obs::Counter* segments_tx;
    obs::Counter* bytes_rx;
    obs::Counter* bytes_tx;
    obs::Counter* retransmits;
    obs::Counter* out_of_order_drops;
    obs::Counter* conns_accepted;
    obs::Counter* resets;
  };
  Counters counters_{};
  mutable TcpStats stats_;
};

}  // namespace flexos

#endif  // FLEXOS_NET_TCP_H_
