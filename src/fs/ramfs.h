// RamFs: the in-memory filesystem micro-library (Unikraft's ramfs is the
// model; the FlexOS follow-up work compartmentalizes exactly this library).
// File contents live in guest memory as 4 KiB chunks from the library's
// compartment allocator; the name index is host-side metadata, like every
// allocator's bookkeeping in this simulator. Bulk copies route through
// LibC leaf calls so a hardened LibC taxes file I/O the same way it taxes
// socket I/O.
#ifndef FLEXOS_FS_RAMFS_H_
#define FLEXOS_FS_RAMFS_H_

#include <map>
#include <string>
#include <vector>

#include "alloc/allocator.h"
#include "support/gate_router.h"

namespace flexos {

struct RamFsStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

class RamFs {
 public:
  static constexpr uint64_t kChunkBytes = 4096;

  // `router` may be null (direct calls); with a router, bulk copies are
  // LibC leaf calls on a route resolved once here (chunked file IO issues
  // one leaf call per 4 KiB chunk).
  RamFs(Machine& machine, AddressSpace& space, Allocator& allocator,
        GateRouter* router = nullptr)
      : machine_(machine), space_(space), allocator_(allocator),
        router_(router) {
    if (router_ != nullptr) {
      libc_route_ = router_->Resolve(kLibFs, kLibLibc);
    }
  }

  ~RamFs();

  RamFs(const RamFs&) = delete;
  RamFs& operator=(const RamFs&) = delete;

  // Creates or truncates `path` and writes [src, src+size) into it.
  Status WriteFile(const std::string& path, Gaddr src, uint64_t size);

  // Appends [src, src+size) to an existing (or new) file.
  Status Append(const std::string& path, Gaddr src, uint64_t size);

  // Reads up to `cap` bytes starting at `offset` into [dst, dst+cap).
  // Returns bytes read (0 at/after EOF). kNotFound for missing files.
  Result<uint64_t> ReadFile(const std::string& path, uint64_t offset,
                            Gaddr dst, uint64_t cap);

  Result<uint64_t> FileSize(const std::string& path) const;
  bool Exists(const std::string& path) const {
    return files_.count(path) != 0;
  }
  Status Delete(const std::string& path);

  // Paths in lexicographic order.
  std::vector<std::string> List() const;

  // Host-side convenience (loaders, tests): contents pass through the same
  // charged guest-memory path.
  Status WriteFileFromHost(const std::string& path,
                           const std::string& content);
  Result<std::string> ReadFileToHost(const std::string& path);

  uint64_t file_count() const { return files_.size(); }
  const RamFsStats& stats() const { return stats_; }

 private:
  struct File {
    std::vector<Gaddr> chunks;
    uint64_t size = 0;
  };

  // Ensures `file` has capacity for `size` bytes.
  Status Reserve(File* file, uint64_t size);
  void ReleaseChunks(File* file);
  void LibcCopy(FunctionRef<void()> body);

  Machine& machine_;
  AddressSpace& space_;
  Allocator& allocator_;
  GateRouter* router_;
  RouteHandle libc_route_;
  std::map<std::string, File> files_;
  RamFsStats stats_;
};

}  // namespace flexos

#endif  // FLEXOS_FS_RAMFS_H_
