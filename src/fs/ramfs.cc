#include "fs/ramfs.h"

#include <algorithm>

namespace flexos {

RamFs::~RamFs() {
  for (auto& [path, file] : files_) {
    ReleaseChunks(&file);
  }
}

void RamFs::LibcCopy(FunctionRef<void()> body) {
  if (router_ != nullptr) {
    router_->CallLeaf(libc_route_, body);
  } else {
    body();
  }
}

void RamFs::ReleaseChunks(File* file) {
  for (Gaddr chunk : file->chunks) {
    (void)allocator_.Free(chunk);
  }
  file->chunks.clear();
  file->size = 0;
}

Status RamFs::Reserve(File* file, uint64_t size) {
  const uint64_t need = (size + kChunkBytes - 1) / kChunkBytes;
  while (file->chunks.size() < need) {
    FLEXOS_ASSIGN_OR_RETURN(Gaddr chunk,
                            allocator_.Allocate(kChunkBytes, kShadowGranule));
    file->chunks.push_back(chunk);
  }
  return Status::Ok();
}

Status RamFs::WriteFile(const std::string& path, Gaddr src, uint64_t size) {
  if (path.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty path");
  }
  File& file = files_[path];
  // Truncate then write (keeping chunks already allocated).
  file.size = 0;
  FLEXOS_RETURN_IF_ERROR(Reserve(&file, size));
  uint64_t done = 0;
  while (done < size) {
    const uint64_t span = std::min(size - done, kChunkBytes);
    const Gaddr chunk = file.chunks[done / kChunkBytes];
    LibcCopy([&] { space_.Copy(chunk, src + done, span); });
    done += span;
  }
  file.size = size;
  ++stats_.writes;
  stats_.bytes_written += size;
  return Status::Ok();
}

Status RamFs::Append(const std::string& path, Gaddr src, uint64_t size) {
  if (path.empty()) {
    return Status(ErrorCode::kInvalidArgument, "empty path");
  }
  File& file = files_[path];
  FLEXOS_RETURN_IF_ERROR(Reserve(&file, file.size + size));
  uint64_t done = 0;
  while (done < size) {
    const uint64_t pos = file.size + done;
    const uint64_t in_chunk = pos % kChunkBytes;
    const uint64_t span =
        std::min(size - done, kChunkBytes - in_chunk);
    const Gaddr chunk = file.chunks[pos / kChunkBytes];
    LibcCopy([&] { space_.Copy(chunk + in_chunk, src + done, span); });
    done += span;
  }
  file.size += size;
  ++stats_.writes;
  stats_.bytes_written += size;
  return Status::Ok();
}

Result<uint64_t> RamFs::ReadFile(const std::string& path, uint64_t offset,
                                 Gaddr dst, uint64_t cap) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status(ErrorCode::kNotFound, "no such file: " + path);
  }
  const File& file = it->second;
  if (offset >= file.size) {
    return uint64_t{0};
  }
  const uint64_t to_read = std::min(cap, file.size - offset);
  uint64_t done = 0;
  while (done < to_read) {
    const uint64_t pos = offset + done;
    const uint64_t in_chunk = pos % kChunkBytes;
    const uint64_t span = std::min(to_read - done, kChunkBytes - in_chunk);
    const Gaddr chunk = file.chunks[pos / kChunkBytes];
    LibcCopy([&] { space_.Copy(dst + done, chunk + in_chunk, span); });
    done += span;
  }
  ++stats_.reads;
  stats_.bytes_read += to_read;
  return to_read;
}

Result<uint64_t> RamFs::FileSize(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status(ErrorCode::kNotFound, "no such file: " + path);
  }
  return it->second.size;
}

Status RamFs::Delete(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status(ErrorCode::kNotFound, "no such file: " + path);
  }
  ReleaseChunks(&it->second);
  files_.erase(it);
  return Status::Ok();
}

std::vector<std::string> RamFs::List() const {
  std::vector<std::string> paths;
  paths.reserve(files_.size());
  for (const auto& [path, file] : files_) {
    paths.push_back(path);
  }
  return paths;
}

Status RamFs::WriteFileFromHost(const std::string& path,
                                const std::string& content) {
  // Stage through a transient guest buffer so charging matches guest I/O.
  FLEXOS_ASSIGN_OR_RETURN(
      Gaddr staging,
      allocator_.Allocate(std::max<uint64_t>(content.size(), 1)));
  if (!content.empty()) {
    space_.Write(staging, content.data(), content.size());
  }
  const Status status = WriteFile(path, staging, content.size());
  (void)allocator_.Free(staging);
  return status;
}

Result<std::string> RamFs::ReadFileToHost(const std::string& path) {
  FLEXOS_ASSIGN_OR_RETURN(uint64_t size, FileSize(path));
  std::string content(size, '\0');
  if (size == 0) {
    return content;
  }
  FLEXOS_ASSIGN_OR_RETURN(
      Gaddr staging, allocator_.Allocate(std::max<uint64_t>(size, 1)));
  Result<uint64_t> read = ReadFile(path, 0, staging, size);
  if (read.ok()) {
    space_.Read(staging, content.data(), size);
  }
  (void)allocator_.Free(staging);
  if (!read.ok()) {
    return read.status();
  }
  return content;
}

}  // namespace flexos
