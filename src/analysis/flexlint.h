// flexlint: static isolation-violation analysis (DESIGN.md §6). The
// paper's automation rests on per-library metadata ([Memory access],
// [Call], [API], [Requires]) being an accurate description of what the
// code does; flexlint cross-checks three artifacts that can silently
// drift apart — the metadata, the compartment spec, and the gate/API
// registrations of a built image — and refutes "safety" that is only
// declared, not real.
//
// Three layers:
//   1. Extraction (ExtractModel): walks an ImageConfig or a built Image
//      plus the metadata to recover the actual cross-library call graph,
//      the shared-data access map, and the gate registrations.
//   2. Rules (RunRules): structured diagnostics — rule id, severity,
//      offending entity, fix hint. Catalog below and in DESIGN.md §6.
//   3. Frontends: LintConfig / LintImage / LintMetaText, driven by the
//      tools/flexlint CLI and by ctest.
//
// Runtime counterpart: AllowedCallPairs() derives the set of declared
// cross-library dispatch pairs; Image::EnableDispatchValidation checks
// every gate dispatch against it, so metadata drift becomes a
// deterministic trap instead of an unaccounted crossing.
#ifndef FLEXOS_ANALYSIS_FLEXLINT_H_
#define FLEXOS_ANALYSIS_FLEXLINT_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/image.h"
#include "core/image_builder.h"
#include "core/metadata.h"

namespace flexos {

enum class LintSeverity : uint8_t { kWarning, kError };

std::string_view LintSeverityName(LintSeverity severity);

// Stable rule ids (catalog with worked examples: DESIGN.md §6).
inline constexpr std::string_view kRuleParse = "FL000";
inline constexpr std::string_view kRuleUndeclaredCrossCall = "FL001";
inline constexpr std::string_view kRuleRequiresViolation = "FL002";
inline constexpr std::string_view kRuleTrustedGate = "FL003";
inline constexpr std::string_view kRuleSharedWriteConflict = "FL004";
inline constexpr std::string_view kRuleOverCompartmentalized = "FL005";
inline constexpr std::string_view kRuleApiDrift = "FL006";
inline constexpr std::string_view kRuleUnknownLibrary = "FL007";
inline constexpr std::string_view kRuleRedundantCallList = "FL008";
inline constexpr std::string_view kRuleNoInitHook = "FL009";
// SMP sharing-safety rules (flexrace static side, DESIGN.md §13).
inline constexpr std::string_view kRuleSharedVcpuRace = "FL010";
inline constexpr std::string_view kRuleVmStateDivergence = "FL011";
inline constexpr std::string_view kRuleNonReentrant = "FL012";
inline constexpr std::string_view kRuleKeyBudget = "FL013";
inline constexpr std::string_view kRuleDeviceAffinity = "FL014";
// flexadapt static side (DESIGN.md §16): an "adapt allow" row names a
// boundary whose compartment pair can never legally host the target backend.
inline constexpr std::string_view kRuleAdaptIllegalTarget = "FL015";

struct LintDiagnostic {
  std::string rule;  // "FL001" ...
  LintSeverity severity = LintSeverity::kError;
  std::string entity;    // Offending entity, e.g. "app -> net::poll".
  std::string message;   // What is wrong.
  std::string fix_hint;  // How to make it right.

  bool operator==(const LintDiagnostic&) const = default;
};

struct LintReport {
  std::vector<LintDiagnostic> diagnostics;

  bool HasErrors() const;
  size_t CountForRule(std::string_view rule) const;

  // Canonicalizes the report: sorts by (rule, entity, severity, message,
  // fix_hint) and drops exact duplicates. Every frontend normalizes before
  // emission, so text and --json output are byte-stable across extraction
  // orders and repeated model edges.
  void Normalize();

  // One "RULE severity entity: message (hint)" line per diagnostic.
  std::string ToText() const;
  // A JSON array of diagnostic objects.
  std::string ToJson() const;
};

// Resolves a library name to its metadata; nullopt marks the library
// unknown (rule FL007). The default is BuiltinLibraryMeta; tests and the
// CLI substitute their own.
using MetaResolver =
    std::function<std::optional<LibraryMeta>(std::string_view)>;

MetaResolver BuiltinMetaResolver();

// One recovered cross-library call edge: `caller` declares a call to
// `callee`::`func`, and `cross` says whether the spec separates them.
struct LintCallEdge {
  std::string caller;
  std::string callee;
  std::string func;
  bool cross = false;
};

// Layer-1 output: everything the rules need, extracted once.
struct LintModel {
  IsolationBackend backend = IsolationBackend::kNone;
  int num_compartments = 0;

  // Placed libraries with metadata, in placement order.
  std::vector<LibraryMeta> metas;
  std::map<std::string, int> compartment_of;
  // Placed libraries the resolver knows nothing about.
  std::vector<std::string> unknown_libs;

  // The actual cross-library call graph (edges into placed libraries).
  std::vector<LintCallEdge> calls;

  // Shared-data access map: who writes the shared region, and whose
  // [Requires] forbids *(Write,Shared).
  std::set<std::string> shared_writers;
  std::set<std::string> shared_write_forbidders;

  // Gate registrations: CFI-enforced libraries and their registered entry
  // points (from the config's `cfi`/`api` directives or the built image).
  std::set<std::string> cfi_libs;
  std::map<std::string, std::set<std::string>> registered_apis;

  // Compartments declaring restart/init hooks (the config's `restart_hook`
  // directive, or the installed fault handler of a built image). nullopt
  // when a built image carries no fault handler — restarts cannot happen,
  // so rule FL009 does not apply.
  std::optional<std::set<int>> restart_hook_comps;

  // --- SMP topology (flexrace rules FL010-FL014, DESIGN.md §13) ----------
  // Declared vCPU count ("vcpus = N" / the built machine). 1 keeps every
  // SMP rule silent.
  int vcpus = 1;
  // Library-to-vCPU affinity ("pin <lib> <vcpu>" / compartment affinity of
  // a built image). Absent = unpinned: the scheduler may run it anywhere.
  std::map<std::string, int> vcpu_pins;
  // Config-level reentrancy overrides ("reentrant <lib>"); a library is
  // reentrant when this or its [Reentrant] metadata says so.
  std::set<std::string> reentrant_libs;
  // Libraries replicated per VM under the vm-rpc backend (FL011).
  std::set<std::string> vm_replicated_libs;

  // --- flexadapt (FL015, DESIGN.md §16) ----------------------------------
  // Declared runtime re-placement whitelist ("adapt allow cX cY <backend>").
  // Populated from configs; a built image does not retain its allow list,
  // so image extraction leaves this empty and FL015 stays silent — the
  // runtime veto path re-lints the *proposed* placement instead.
  std::vector<AdaptAllowRule> adapt_allow;
};

// Extracts the model from a compartment spec (pre-build) ...
LintModel ExtractModel(const ImageConfig& config,
                       const MetaResolver& resolver);
// ... or by walking a built image (post-build introspection).
LintModel ExtractModel(const Image& image, const MetaResolver& resolver);

// Layer 2: the rule engine.
LintReport RunRules(const LintModel& model);

// Convenience frontends.
LintReport LintConfig(const ImageConfig& config,
                      const MetaResolver& resolver = BuiltinMetaResolver());
LintReport LintImage(const Image& image,
                     const MetaResolver& resolver = BuiltinMetaResolver());

// Lints one metadata DSL file: parse errors (FL000), redundant call lists
// (FL008), and ToString round-trip stability (FL000 warning).
LintReport LintMetaText(const std::string& lib_name, const std::string& text);

// The lint-derived allowed-call set: "from->to" pairs some placed
// library's metadata declares (Call * expands to every placed target and
// the platform). Feed to Image::EnableDispatchValidation.
std::set<std::string, std::less<>> AllowedCallPairs(const LintModel& model);

// JSON array describing every cross-compartment boundary the declared call
// graph will exercise, with the gate.* metric names (obs/names.h) a built
// image emits for it — one entry per (from, to) compartment direction,
// listing the library edges that cross it. Lets dashboards subscribe to a
// config's metrics before the image ever runs (DESIGN.md §6/§7).
std::string BoundaryMetricNamesJson(const LintModel& model);

}  // namespace flexos

#endif  // FLEXOS_ANALYSIS_FLEXLINT_H_
