// flexrace offline side (DESIGN.md §13): replays the cat=race instants of a
// captured Chrome-format trace (obs::TraceToChromeJson) through a fresh
// RaceDetector and reports every unordered cross-vCPU pair. Because the
// live validator and the exporter share one ordered trace buffer, a replay
// of a fully-traced run reaches the same verdict as the in-situ detector —
// `flexlint --races trace.json` is the post-mortem entry point.
#ifndef FLEXOS_ANALYSIS_RACE_REPLAY_H_
#define FLEXOS_ANALYSIS_RACE_REPLAY_H_

#include <string>
#include <vector>

#include "obs/race.h"
#include "support/status.h"

namespace flexos {
namespace analysis {

struct RaceReplayResult {
  int vcpus = 1;                       // Lanes seen in the trace.
  uint64_t events = 0;                 // cat=race instants replayed.
  uint64_t accesses = 0;               // shared_read/shared_write probes.
  uint64_t recorded_races = 0;         // "race" instants the live run logged.
  std::vector<obs::RaceReport> races;  // Races found by this replay.
};

// Parses `chrome_json` (a TraceToChromeJson document) and replays its race
// events in trace order. Non-race events are ignored; a document with no
// race events yields an empty, successful result. Fails only on input that
// is not a trace document at all.
Result<RaceReplayResult> ReplayRaces(const std::string& chrome_json);

// Renders a replay result as a human-readable report (one race per line,
// stable order) or as JSON for tooling.
std::string RaceReplayToText(const RaceReplayResult& result);
std::string RaceReplayToJson(const RaceReplayResult& result);

}  // namespace analysis
}  // namespace flexos

#endif  // FLEXOS_ANALYSIS_RACE_REPLAY_H_
