#include "analysis/race_replay.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>

#include "obs/export.h"
#include "support/strings.h"

namespace flexos {
namespace analysis {

namespace {

// One parsed trace event; only the fields the race replay needs.
struct RawEvent {
  std::string name;
  int tid = 0;
  int vcpu = 0;
  uint64_t a0 = 0;
  uint64_t a1 = 0;
  uint64_t ts_ns = 0;
};

// Extracts the quoted string value following `key` in `chunk`, or "" if the
// key is absent. The exporter never escapes the fields we read (event names
// and categories are C identifiers).
std::string FindString(const std::string& chunk, const char* key) {
  const size_t at = chunk.find(key);
  if (at == std::string::npos) return "";
  const size_t begin = at + std::strlen(key);
  const size_t end = chunk.find('"', begin);
  if (end == std::string::npos) return "";
  return chunk.substr(begin, end - begin);
}

// Extracts the numeric value following `key`, or `fallback` if absent.
double FindNumber(const std::string& chunk, const char* key, double fallback) {
  const size_t at = chunk.find(key);
  if (at == std::string::npos) return fallback;
  return std::strtod(chunk.c_str() + at + std::strlen(key), nullptr);
}

}  // namespace

Result<RaceReplayResult> ReplayRaces(const std::string& chrome_json) {
  if (chrome_json.find("\"traceEvents\"") == std::string::npos) {
    return Status(ErrorCode::kInvalidArgument,
                  "not a Chrome trace document (no \"traceEvents\" key)");
  }

  // Pass 1: cut the document into per-event chunks on the exporter's stable
  // object prefix and keep the cat=race ones, in order.
  static constexpr const char* kEventPrefix = "{\"name\":\"";
  std::vector<RawEvent> events;
  int max_vcpu = 0;
  size_t at = chrome_json.find(kEventPrefix);
  while (at != std::string::npos) {
    const size_t next = chrome_json.find(kEventPrefix, at + 1);
    const std::string chunk = chrome_json.substr(
        at, next == std::string::npos ? std::string::npos : next - at);
    at = next;
    if (FindString(chunk, "\"cat\":\"") != "race") continue;
    RawEvent event;
    event.name = FindString(chunk, "{\"name\":\"");
    event.tid = static_cast<int>(FindNumber(chunk, "\"tid\":", 0));
    event.vcpu = static_cast<int>(FindNumber(chunk, "\"vcpu\":", 0));
    event.a0 = static_cast<uint64_t>(FindNumber(chunk, "\"a0\":", 0));
    event.a1 = static_cast<uint64_t>(FindNumber(chunk, "\"a1\":", 0));
    event.ts_ns = static_cast<uint64_t>(
        std::llround(FindNumber(chunk, "\"ts\":", 0) * 1000.0));
    if (event.vcpu > max_vcpu) max_vcpu = event.vcpu;
    // hb_join names both lanes by number, not by the event's vcpu stamp.
    if (event.name == "hb_join") {
      max_vcpu = std::max(max_vcpu, static_cast<int>(
                                        std::max(event.a0, event.a1)));
    }
    events.push_back(std::move(event));
  }

  // Pass 2: replay in trace order. Handles are renumbered on replay, so map
  // the recorded release handle (a0) to the one this detector hands out.
  RaceReplayResult result;
  result.vcpus = max_vcpu + 1;
  obs::RaceDetector detector;
  detector.Reset(result.vcpus);
  detector.SetEnabled(true);
  std::map<uint64_t, uint64_t> handles;
  for (const RawEvent& event : events) {
    ++result.events;
    if (event.name == "hb_release") {
      handles[event.a0] = detector.Release(event.vcpu);
    } else if (event.name == "hb_acquire") {
      const auto it = handles.find(event.a0);
      if (it != handles.end()) {
        detector.Acquire(event.vcpu, it->second);
        handles.erase(it);
      }
    } else if (event.name == "hb_join") {
      detector.Join(static_cast<int>(event.a0), static_cast<int>(event.a1));
    } else if (event.name == "hb_barrier") {
      detector.JoinAll();
    } else if (event.name == "shared_read" || event.name == "shared_write") {
      ++result.accesses;
      const std::optional<obs::RaceReport> race = detector.OnAccess(
          event.vcpu, /*compartment=*/event.tid - 1, event.a0, event.a1,
          /*is_write=*/event.name == "shared_write", event.ts_ns);
      if (race.has_value()) {
        result.races.push_back(*race);
      }
    } else if (event.name == "race") {
      ++result.recorded_races;
    }
  }
  return result;
}

std::string RaceReplayToText(const RaceReplayResult& result) {
  std::string out = StrFormat(
      "flexrace replay: %d vCPU lane(s), %llu race event(s), %llu shared "
      "access(es), %llu race(s) found\n",
      result.vcpus, static_cast<unsigned long long>(result.events),
      static_cast<unsigned long long>(result.accesses),
      static_cast<unsigned long long>(result.races.size()));
  for (const obs::RaceReport& race : result.races) {
    out += "  ";
    out += race.ToString();
    out += '\n';
  }
  if (result.recorded_races != result.races.size()) {
    out += StrFormat(
        "  note: live run recorded %llu race(s); a mismatch usually means "
        "the trace is truncated or tracing was off for part of the run\n",
        static_cast<unsigned long long>(result.recorded_races));
  }
  return out;
}

std::string RaceReplayToJson(const RaceReplayResult& result) {
  std::string races;
  for (const obs::RaceReport& race : result.races) {
    if (!races.empty()) races += ',';
    races += StrFormat(
        "{\"addr\":%llu,\"size\":%llu,\"prev\":{\"vcpu\":%d,"
        "\"compartment\":%d,\"write\":%s,\"ts_ns\":%llu},\"cur\":{"
        "\"vcpu\":%d,\"compartment\":%d,\"write\":%s,\"ts_ns\":%llu},"
        "\"report\":\"%s\"}",
        static_cast<unsigned long long>(race.addr),
        static_cast<unsigned long long>(race.size), race.prev.vcpu,
        race.prev.compartment, race.prev.write ? "true" : "false",
        static_cast<unsigned long long>(race.prev.ts_ns), race.cur.vcpu,
        race.cur.compartment, race.cur.write ? "true" : "false",
        static_cast<unsigned long long>(race.cur.ts_ns),
        obs::JsonEscape(race.ToString()).c_str());
  }
  return StrFormat(
      "{\"vcpus\":%d,\"events\":%llu,\"accesses\":%llu,"
      "\"recorded_races\":%llu,\"races\":[%s]}",
      result.vcpus, static_cast<unsigned long long>(result.events),
      static_cast<unsigned long long>(result.accesses),
      static_cast<unsigned long long>(result.recorded_races), races.c_str());
}

}  // namespace analysis
}  // namespace flexos
