#include "analysis/flexlint.h"

#include <algorithm>

#include "core/coloring.h"
#include "core/compat.h"
#include "fault/fault.h"
#include "obs/names.h"
#include "support/strings.h"

namespace flexos {
namespace {

void Add(LintReport* report, std::string_view rule, LintSeverity severity,
         std::string entity, std::string message, std::string fix_hint) {
  report->diagnostics.push_back(LintDiagnostic{
      std::string(rule), severity, std::move(entity), std::move(message),
      std::move(fix_hint)});
}

const LibraryMeta* FindMeta(const LintModel& model, std::string_view name) {
  for (const LibraryMeta& meta : model.metas) {
    if (meta.name == name) {
      return &meta;
    }
  }
  return nullptr;
}

// Fills the derived parts of a model whose placement (compartment_of,
// metas, unknown_libs) and registrations are already populated.
void FinishModel(LintModel* model) {
  for (const LibraryMeta& meta : model->metas) {
    const LibBehavior& behavior = meta.behavior;
    if (behavior.writes_shared || behavior.writes_all) {
      model->shared_writers.insert(meta.name);
    }
    if (meta.requires_spec.present &&
        !meta.requires_spec.others_may_write_shared) {
      model->shared_write_forbidders.insert(meta.name);
    }
    for (const std::string& call : behavior.calls) {
      const size_t sep = call.find("::");
      if (sep == std::string::npos) {
        continue;  // Unqualified: not a cross-library call.
      }
      const std::string callee = call.substr(0, sep);
      if (callee == meta.name) {
        continue;  // Self-calls never cross a gate.
      }
      const auto target = model->compartment_of.find(callee);
      if (target == model->compartment_of.end() ||
          FindMeta(*model, callee) == nullptr) {
        continue;  // Target not linked into this image.
      }
      LintCallEdge edge;
      edge.caller = meta.name;
      edge.callee = callee;
      edge.func = call.substr(sep + 2);
      edge.cross =
          model->compartment_of.at(meta.name) != target->second;
      model->calls.push_back(edge);
    }
  }
}

// Compartment-to-vCPU pin map derived from the per-library pins (the config
// parser guarantees cohabiting pins agree, and a built image stores the pin
// per compartment already).
std::map<int, int> CompartmentPins(const LintModel& model) {
  std::map<int, int> pins;
  for (const auto& [lib, vcpu] : model.vcpu_pins) {
    const auto comp = model.compartment_of.find(lib);
    if (comp != model.compartment_of.end()) {
      pins.emplace(comp->second, vcpu);
    }
  }
  return pins;
}

// Whether `lib` declares reentrancy, via config directive or [Reentrant].
bool IsReentrant(const LintModel& model, const LibraryMeta& meta) {
  return meta.reentrant || model.reentrant_libs.count(meta.name) != 0;
}

// The entry points a cross-compartment call into `lib` can actually reach:
// the CFI-registered set when CFI narrows the gate, else the metadata API.
std::set<std::string> EffectiveApi(const LintModel& model,
                                   const LibraryMeta& meta, bool* narrowed) {
  *narrowed = model.cfi_libs.count(meta.name) != 0;
  if (*narrowed) {
    const auto it = model.registered_apis.find(meta.name);
    return it == model.registered_apis.end() ? std::set<std::string>{}
                                             : it->second;
  }
  std::set<std::string> api;
  for (const ApiFunc& func : meta.api) {
    api.insert(func.name);
  }
  return api;
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += StrFormat("\\u%04x",
                           static_cast<unsigned>(static_cast<unsigned char>(ch)));
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace

std::string_view LintSeverityName(LintSeverity severity) {
  return severity == LintSeverity::kError ? "error" : "warning";
}

bool LintReport::HasErrors() const {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [](const LintDiagnostic& diagnostic) {
                       return diagnostic.severity == LintSeverity::kError;
                     });
}

void LintReport::Normalize() {
  std::sort(diagnostics.begin(), diagnostics.end(),
            [](const LintDiagnostic& a, const LintDiagnostic& b) {
              if (a.rule != b.rule) {
                return a.rule < b.rule;
              }
              if (a.entity != b.entity) {
                return a.entity < b.entity;
              }
              if (a.severity != b.severity) {
                return static_cast<int>(a.severity) <
                       static_cast<int>(b.severity);
              }
              if (a.message != b.message) {
                return a.message < b.message;
              }
              return a.fix_hint < b.fix_hint;
            });
  diagnostics.erase(std::unique(diagnostics.begin(), diagnostics.end()),
                    diagnostics.end());
}

size_t LintReport::CountForRule(std::string_view rule) const {
  return static_cast<size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [rule](const LintDiagnostic& diagnostic) {
                      return diagnostic.rule == rule;
                    }));
}

std::string LintReport::ToText() const {
  std::string out;
  for (const LintDiagnostic& diagnostic : diagnostics) {
    out += StrFormat(
        "%s %s %s: %s", diagnostic.rule.c_str(),
        std::string(LintSeverityName(diagnostic.severity)).c_str(),
        diagnostic.entity.c_str(), diagnostic.message.c_str());
    if (!diagnostic.fix_hint.empty()) {
      out += " (fix: " + diagnostic.fix_hint + ")";
    }
    out += '\n';
  }
  return out;
}

std::string LintReport::ToJson() const {
  std::string out = "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const LintDiagnostic& diagnostic = diagnostics[i];
    if (i > 0) {
      out += ',';
    }
    out += StrFormat(
        "{\"rule\":\"%s\",\"severity\":\"%s\",\"entity\":\"%s\","
        "\"message\":\"%s\",\"fix_hint\":\"%s\"}",
        JsonEscape(diagnostic.rule).c_str(),
        std::string(LintSeverityName(diagnostic.severity)).c_str(),
        JsonEscape(diagnostic.entity).c_str(),
        JsonEscape(diagnostic.message).c_str(),
        JsonEscape(diagnostic.fix_hint).c_str());
  }
  out += "]";
  return out;
}

MetaResolver BuiltinMetaResolver() {
  return [](std::string_view name) { return BuiltinLibraryMeta(name); };
}

LintModel ExtractModel(const ImageConfig& config,
                       const MetaResolver& resolver) {
  LintModel model;
  model.backend = config.backend;
  model.num_compartments = static_cast<int>(config.compartments.size());
  for (size_t c = 0; c < config.compartments.size(); ++c) {
    for (const std::string& lib : config.compartments[c]) {
      if (model.compartment_of.count(lib) != 0) {
        continue;  // Duplicate placement is the builder's error to report.
      }
      model.compartment_of[lib] = static_cast<int>(c);
      std::optional<LibraryMeta> meta = resolver(lib);
      if (meta.has_value()) {
        model.metas.push_back(*std::move(meta));
      } else {
        model.unknown_libs.push_back(lib);
      }
    }
  }
  model.cfi_libs = config.cfi_libs;
  for (const auto& [lib, funcs] : config.apis) {
    model.registered_apis[lib] = funcs;
  }
  model.restart_hook_comps.emplace();
  for (const std::string& lib : config.restart_hook_libs) {
    const auto it = model.compartment_of.find(lib);
    if (it != model.compartment_of.end()) {
      model.restart_hook_comps->insert(it->second);
    }
  }
  model.vcpus = config.vcpus;
  for (const auto& [lib, vcpu] : config.pins) {
    if (model.compartment_of.count(lib) != 0) {
      model.vcpu_pins[lib] = vcpu;
    }
  }
  model.reentrant_libs = config.reentrant_libs;
  model.vm_replicated_libs = config.vm_replicated_libs;
  model.adapt_allow = config.adapt.allow;
  FinishModel(&model);
  return model;
}

LintModel ExtractModel(const Image& image, const MetaResolver& resolver) {
  LintModel model;
  model.backend = image.backend();
  model.num_compartments = image.compartment_count();
  for (const std::string& lib : image.LibraryNames()) {
    model.compartment_of[lib] = image.CompartmentOf(lib);
    std::optional<LibraryMeta> meta = resolver(lib);
    if (meta.has_value()) {
      model.metas.push_back(*std::move(meta));
    } else {
      model.unknown_libs.push_back(lib);
    }
    if (image.IsCfiEnforced(lib)) {
      model.cfi_libs.insert(lib);
    }
    const std::vector<std::string> api = image.RegisteredApi(lib);
    if (!api.empty()) {
      model.registered_apis[lib] =
          std::set<std::string>(api.begin(), api.end());
    }
  }
  if (image.fault_handler() != nullptr) {
    model.restart_hook_comps.emplace();
    for (int c = 0; c < image.compartment_count(); ++c) {
      if (image.fault_handler()->HasInitHook(c)) {
        model.restart_hook_comps->insert(c);
      }
    }
  }
  model.vcpus = image.machine().vcpu_count();
  for (const auto& [lib, comp] : model.compartment_of) {
    const int pin = image.machine().CompartmentAffinityOf(comp);
    if (pin >= 0) {
      model.vcpu_pins[lib] = pin;
    }
  }
  // A built image no longer records the config's reentrant overrides; only
  // [Reentrant] metadata survives. The replication set is the vm-rpc
  // builder's default.
  model.vm_replicated_libs = ImageConfig{}.vm_replicated_libs;
  FinishModel(&model);
  return model;
}

LintReport RunRules(const LintModel& model) {
  LintReport report;

  // FL007 — placed libraries without metadata. Everything else the linter
  // proves is conditional on the metadata existing, so this goes first.
  for (const std::string& lib : model.unknown_libs) {
    Add(&report, kRuleUnknownLibrary, LintSeverity::kError, lib,
        "library is placed in a compartment but has no metadata; its "
        "behavior cannot be checked",
        "write [Memory access]/[Call]/[API] metadata for '" + lib +
            "' or remove it from the spec");
  }

  // FL001 — cross-compartment calls into entry points the callee does not
  // expose (metadata [API], or the CFI-registered set when CFI narrows it).
  for (const LintCallEdge& edge : model.calls) {
    if (!edge.cross) {
      continue;
    }
    const LibraryMeta* callee = FindMeta(model, edge.callee);
    bool narrowed = false;
    const std::set<std::string> exposed =
        EffectiveApi(model, *callee, &narrowed);
    if (exposed.count(edge.func) != 0) {
      continue;
    }
    Add(&report, kRuleUndeclaredCrossCall, LintSeverity::kError,
        edge.caller + " -> " + edge.callee + "::" + edge.func,
        narrowed
            ? "cross-compartment call targets an entry point outside " +
                  edge.callee + "'s CFI-registered API; the dispatch will "
                  "trap at runtime"
            : "cross-compartment call targets an entry point " +
                  edge.callee + "'s [API] does not expose",
        narrowed ? "register the function with 'api " + edge.callee + " " +
                       edge.func + "' or drop the call"
                 : "add " + edge.func + "(...) to " + edge.callee +
                       "'s [API] or co-locate the libraries");
  }

  // FL002 — cohabitation violating a [Requires] clause, re-checked per
  // ordered pair on the final placement (not just the conflict graph).
  for (size_t i = 0; i < model.metas.size(); ++i) {
    for (size_t j = 0; j < model.metas.size(); ++j) {
      if (i == j) {
        continue;
      }
      const LibraryMeta& holder = model.metas[i];
      const LibraryMeta& other = model.metas[j];
      const int comp = model.compartment_of.at(holder.name);
      if (comp != model.compartment_of.at(other.name)) {
        continue;
      }
      const CompatVerdict verdict = SatisfiesRequires(holder, other);
      for (const std::string& violation : verdict.violations) {
        Add(&report, kRuleRequiresViolation, LintSeverity::kError,
            StrFormat("comp%d: %s|%s", comp, holder.name.c_str(),
                      other.name.c_str()),
            violation,
            "separate the libraries or relax " + holder.name +
                "'s [Requires]");
      }
    }
  }

  // FL003 — a trusted function-call gate on a boundary whose endpoint
  // metadata demands isolation: the spec promises separation the direct
  // gate cannot enforce.
  if (model.backend == IsolationBackend::kNone &&
      model.num_compartments > 1) {
    for (size_t i = 0; i < model.metas.size(); ++i) {
      for (size_t j = i + 1; j < model.metas.size(); ++j) {
        const LibraryMeta& a = model.metas[i];
        const LibraryMeta& b = model.metas[j];
        if (model.compartment_of.at(a.name) ==
            model.compartment_of.at(b.name)) {
          continue;
        }
        if (CanShareCompartment(a, b).compatible) {
          continue;
        }
        Add(&report, kRuleTrustedGate, LintSeverity::kError,
            a.name + " | " + b.name,
            "metadata demands isolation between these libraries but "
            "backend 'none' joins their compartments with a trusted "
            "function call",
            "pick a real isolation backend (mpk-shared, mpk-switched, "
            "vm-rpc)");
      }
    }
  }

  // FL004 — shared-region writes reaching a library that forbids
  // *(Write,Shared). Compartment gates do not protect the shared region
  // (key 0 is mapped writable everywhere), so separation cannot fix this.
  for (const std::string& writer : model.shared_writers) {
    for (const std::string& forbidder : model.shared_write_forbidders) {
      if (writer == forbidder ||
          model.compartment_of.at(writer) ==
              model.compartment_of.at(forbidder)) {
        continue;  // Cohabiting pairs are FL002's to report.
      }
      Add(&report, kRuleSharedWriteConflict, LintSeverity::kWarning,
          writer + " ~> " + forbidder,
          writer + " writes the shared region, which " + forbidder +
              " forbids (*(Write,Shared) absent) — isolation does not "
              "cover shared data",
          "move the data off the shared region or add *(Write,Shared) to " +
              forbidder + "'s [Requires]");
    }
  }

  // FL005 — more compartments than the declared safety requirements need
  // (every extra compartment is gate overhead without a safety payoff).
  if (model.unknown_libs.empty() && !model.metas.empty()) {
    const auto edges = ConflictEdges(model.metas);
    const int minimum =
        ColorGraphExact(static_cast<int>(model.metas.size()), edges)
            .num_colors;
    if (model.num_compartments > minimum) {
      Add(&report, kRuleOverCompartmentalized, LintSeverity::kWarning,
          StrFormat("%d compartments", model.num_compartments),
          StrFormat("the declared metadata is satisfiable with %d "
                    "compartment(s)",
                    minimum),
          "merge compatible compartments to save gate crossings, or keep "
          "them and accept the cost");
    }
  }

  // FL006 — gate/API registration drift against the metadata.
  for (const auto& [lib, funcs] : model.registered_apis) {
    const LibraryMeta* meta = FindMeta(model, lib);
    if (meta == nullptr) {
      continue;  // Unplaced or unknown: FL007 / the builder report those.
    }
    std::set<std::string> declared;
    for (const ApiFunc& func : meta->api) {
      declared.insert(func.name);
    }
    for (const std::string& func : funcs) {
      if (declared.count(func) == 0) {
        Add(&report, kRuleApiDrift, LintSeverity::kError,
            lib + "::" + func,
            "config registers an entry point absent from " + lib +
                "'s [API] metadata",
            "add " + func + "(...) to the [API] or drop the registration");
      }
    }
    if (model.cfi_libs.count(lib) != 0) {
      for (const std::string& func : declared) {
        if (funcs.count(func) == 0) {
          Add(&report, kRuleApiDrift, LintSeverity::kWarning,
              lib + "::" + func,
              "[API] entry point is not CFI-registered; legitimate "
              "callers will trap",
              "register it with 'api " + lib + " " + func + "'");
        }
      }
    }
  }
  for (const std::string& lib : model.cfi_libs) {
    if (model.registered_apis.count(lib) == 0 &&
        FindMeta(model, lib) != nullptr) {
      Add(&report, kRuleApiDrift, LintSeverity::kError, lib,
          "CFI is enabled but no entry points are registered: every "
          "cross-compartment call into " + lib + " will trap",
          "add an 'api " + lib + " <func>...' registration");
    }
  }

  // FL008 — 'Call *' alongside a concrete call list: the wildcard already
  // subsumes the list, and the list stops being maintained.
  for (const LibraryMeta& meta : model.metas) {
    if (meta.behavior.calls_any && !meta.behavior.calls.empty()) {
      Add(&report, kRuleRedundantCallList, LintSeverity::kWarning,
          meta.name,
          "[Call] mixes '*' with a concrete call list; the wildcard "
          "subsumes the list",
          "drop '*' if the list is exhaustive, or drop the list");
    }
  }

  // FL009 — compartments behind a restartable isolation boundary with no
  // declared restart/init hook. A supervised restart resets the heap and
  // re-admits callers; with nothing re-running the compartment's setup, the
  // restart "succeeds" into a world with no state.
  if (model.backend != IsolationBackend::kNone &&
      model.restart_hook_comps.has_value()) {
    std::map<int, std::vector<std::string>> libs_by_comp;
    for (const auto& [lib, comp] : model.compartment_of) {
      libs_by_comp[comp].push_back(lib);
    }
    for (const auto& [comp, libs] : libs_by_comp) {
      if (model.restart_hook_comps->count(comp) != 0) {
        continue;
      }
      Add(&report, kRuleNoInitHook, LintSeverity::kWarning,
          StrFormat("compartment %d (%s)", comp,
                    JoinStrings(libs, ", ").c_str()),
          "compartment sits behind a restartable isolation boundary but "
          "declares no restart/init hook; a supervised restart resets its "
          "heap and re-enters it with no state rebuilt",
          "declare 'restart_hook <lib>' and RegisterInitHook on the "
          "supervisor, or set reset_heap=false in its restart policy");
    }
  }

  // --- SMP sharing-safety rules (FL010-FL014, DESIGN.md §13) -------------
  const std::map<int, int> comp_pins = CompartmentPins(model);

  // FL010 — writable shared state reachable from compartments pinned to
  // different vCPUs with *no isolating boundary at all*: under backend
  // 'none' nothing even marks the crossing, so concurrent writers from two
  // cores interleave silently. (With a real backend the boundary is still
  // no lock — that is FL004/flexrace territory — but the spec at least
  // names the sharing.)
  if (model.backend == IsolationBackend::kNone && model.vcpus > 1) {
    for (const std::string& a : model.shared_writers) {
      for (const std::string& b : model.shared_writers) {
        if (a >= b) {
          continue;  // Unordered pairs once.
        }
        const int comp_a = model.compartment_of.at(a);
        const int comp_b = model.compartment_of.at(b);
        if (comp_a == comp_b) {
          continue;
        }
        const auto pin_a = comp_pins.find(comp_a);
        const auto pin_b = comp_pins.find(comp_b);
        if (pin_a == comp_pins.end() || pin_b == comp_pins.end() ||
            pin_a->second == pin_b->second) {
          continue;
        }
        Add(&report, kRuleSharedVcpuRace, LintSeverity::kError,
            a + " | " + b,
            StrFormat("both write the shared region from compartments "
                      "pinned to vCPU%d and vCPU%d, and backend 'none' "
                      "puts no isolating boundary between them",
                      pin_a->second, pin_b->second),
            "pick a real isolation backend, or pin both compartments to "
            "one vCPU");
      }
    }
  }

  // FL011 — state shared across a vm boundary: vm-rpc replicates these
  // libraries into every VM, so callers pinned to different vCPUs each
  // mutate their *own replica* and the copies diverge.
  if (model.backend == IsolationBackend::kVmRpc) {
    for (const std::string& replicated : model.vm_replicated_libs) {
      const LibraryMeta* meta = FindMeta(model, replicated);
      if (meta == nullptr) {
        continue;  // Not placed in this image.
      }
      std::set<int> caller_pins;
      for (const LintCallEdge& edge : model.calls) {
        if (edge.callee != replicated) {
          continue;
        }
        const auto pin =
            comp_pins.find(model.compartment_of.at(edge.caller));
        if (pin != comp_pins.end()) {
          caller_pins.insert(pin->second);
        }
      }
      if (caller_pins.size() < 2) {
        continue;
      }
      Add(&report, kRuleVmStateDivergence, LintSeverity::kError, replicated,
          StrFormat("'%s' is replicated into every VM under vm-rpc, but "
                    "callers span %d differently-pinned vCPUs — each vCPU "
                    "mutates its own replica and the copies diverge",
                    replicated.c_str(),
                    static_cast<int>(caller_pins.size())),
          "move '" + replicated +
              "' out of vm_replicated_libs (route calls through the RPC "
              "gate), or pin all its callers to one vCPU");
    }
  }

  // FL012 — a library callable concurrently from two or more vCPUs without
  // declaring reentrancy. Gated code runs on the *caller's* vCPU, so two
  // callers pinned apart (or any unpinned caller on an SMP machine) can be
  // inside the callee at the same virtual time.
  if (model.vcpus > 1) {
    for (const LibraryMeta& callee : model.metas) {
      if (IsReentrant(model, callee)) {
        continue;
      }
      std::set<int> caller_pins;
      bool unpinned_caller = false;
      for (const LintCallEdge& edge : model.calls) {
        if (edge.callee != callee.name || !edge.cross) {
          continue;
        }
        const auto pin =
            comp_pins.find(model.compartment_of.at(edge.caller));
        if (pin == comp_pins.end()) {
          unpinned_caller = true;
        } else {
          caller_pins.insert(pin->second);
        }
      }
      const bool concurrent =
          caller_pins.size() >= 2 ||
          (unpinned_caller && (!caller_pins.empty() || model.vcpus > 1));
      if (!concurrent) {
        continue;
      }
      Add(&report, kRuleNonReentrant, LintSeverity::kError, callee.name,
          "cross-compartment callers can enter '" + callee.name +
              "' from two or more vCPUs concurrently, and it declares no "
              "reentrancy",
          "add [Reentrant] to its metadata or 'reentrant " + callee.name +
              "' to the config after auditing its locking, or pin every "
              "caller to one vCPU");
    }
  }

  // FL013 — per-core protection-key budget. MPK keys are a per-core
  // resource: a core needs one key per compartment that can execute on it
  // *plus* one per compartment its residents call into (the gate grants the
  // callee key on that core), plus the shared key 0.
  if ((model.backend == IsolationBackend::kMpkSharedStack ||
       model.backend == IsolationBackend::kMpkSwitchedStack) &&
      model.vcpus > 1) {
    for (int v = 0; v < model.vcpus; ++v) {
      std::set<int> resident;
      for (const auto& [lib, comp] : model.compartment_of) {
        const auto pin = comp_pins.find(comp);
        if (pin == comp_pins.end() || pin->second == v) {
          resident.insert(comp);
        }
      }
      std::set<int> demand = resident;
      for (const LintCallEdge& edge : model.calls) {
        if (!edge.cross ||
            resident.count(model.compartment_of.at(edge.caller)) == 0) {
          continue;
        }
        demand.insert(model.compartment_of.at(edge.callee));
      }
      const int keys = static_cast<int>(demand.size()) + 1;  // + shared key.
      if (keys <= kNumPkeys) {
        continue;
      }
      Add(&report, kRuleKeyBudget, LintSeverity::kError,
          StrFormat("vCPU%d", v),
          StrFormat("compartments resident on or routed through vCPU%d "
                    "need %d protection keys, but MPK provides %d per "
                    "core",
                    v, keys, kNumPkeys),
          "spread compartments across vCPUs with 'pin', merge compatible "
          "compartments, or use the vm-rpc backend for the overflow");
    }
  }

  // FL014 — device-programming libraries pinned off the boot vCPU. Devices
  // and timers live on vCPU 0 in this model (and on most uniprocessor-IRQ
  // unikernels); a compartment pinned elsewhere polls hardware it can
  // never observe interrupts from.
  for (const LibraryMeta& meta : model.metas) {
    if (meta.devices.empty()) {
      continue;
    }
    const auto pin = comp_pins.find(model.compartment_of.at(meta.name));
    if (pin == comp_pins.end() || pin->second == 0) {
      continue;
    }
    std::vector<std::string> devices(meta.devices.begin(),
                                     meta.devices.end());
    Add(&report, kRuleDeviceAffinity, LintSeverity::kError, meta.name,
        StrFormat("'%s' programs device(s) %s but its compartment is "
                  "pinned to vCPU%d; devices and timers are serviced on "
                  "boot vCPU 0",
                  meta.name.c_str(), JoinStrings(devices, ", ").c_str(),
                  pin->second),
        "pin '" + meta.name + "' to vCPU 0, or leave it unpinned");
  }

  // FL015 — "adapt allow" rows naming a boundary that can never legally
  // host the target backend: the runtime policy engine would either sit on
  // a dead whitelist entry or be steered toward a placement every veto
  // rejects. Caught at lint time, before the image ever runs.
  for (const AdaptAllowRule& rule : model.adapt_allow) {
    const std::string entity =
        StrFormat("adapt allow %s %s %s", obs::CompartmentLabel(rule.from).c_str(),
                  obs::CompartmentLabel(rule.to).c_str(),
                  std::string(IsolationBackendName(rule.target)).c_str());
    if (rule.from < -1 || rule.from >= model.num_compartments ||
        rule.to < -1 || rule.to >= model.num_compartments) {
      Add(&report, kRuleAdaptIllegalTarget, LintSeverity::kError, entity,
          StrFormat("allow rule names a compartment outside the spec's "
                    "range [platform, c%d]",
                    model.num_compartments - 1),
          "fix the compartment ids or drop the rule");
      continue;
    }
    if (rule.from == rule.to) {
      Add(&report, kRuleAdaptIllegalTarget, LintSeverity::kError, entity,
          "allow rule names a self-boundary; calls inside one compartment "
          "never cross a gate, so no backend can be hosted there",
          "name a (from, to) pair of distinct compartments");
      continue;
    }
    if (rule.target == IsolationBackend::kNone) {
      // Demoting to a trusted function call merges the endpoints' trust:
      // legal only when every (caller-side, callee-side) metadata pair
      // could cohabit a compartment.
      for (const LibraryMeta& a : model.metas) {
        if (model.compartment_of.at(a.name) != rule.from) {
          continue;
        }
        for (const LibraryMeta& b : model.metas) {
          if (model.compartment_of.at(b.name) != rule.to) {
            continue;
          }
          const CompatVerdict verdict = CanShareCompartment(a, b);
          if (verdict.compatible) {
            continue;
          }
          Add(&report, kRuleAdaptIllegalTarget, LintSeverity::kError,
              entity,
              StrFormat("demotion to a trusted function-call gate is never "
                        "legal here: %s and %s cannot share trust (%s)",
                        a.name.c_str(), b.name.c_str(),
                        JoinStrings(verdict.violations, "; ").c_str()),
              "allow mpk-shared as the demotion floor instead of none");
        }
      }
    }
    if (rule.target == IsolationBackend::kVmRpc && rule.to >= 0) {
      // A callee compartment made up entirely of vm-replicated libraries
      // never takes the RPC path — every caller owns a local replica — so
      // the boundary cannot host vm-rpc.
      bool has_lib = false;
      bool all_replicated = true;
      for (const auto& [lib, comp] : model.compartment_of) {
        if (comp != rule.to) {
          continue;
        }
        has_lib = true;
        if (model.vm_replicated_libs.count(lib) == 0) {
          all_replicated = false;
        }
      }
      if (has_lib && all_replicated) {
        Add(&report, kRuleAdaptIllegalTarget, LintSeverity::kError, entity,
            StrFormat("compartment %s holds only vm-replicated libraries; "
                      "under vm-rpc every caller uses its local replica and "
                      "the boundary never hosts an RPC gate",
                      obs::CompartmentLabel(rule.to).c_str()),
            "take the callee out of vm_replicated_libs or drop the rule");
      }
    }
  }

  report.Normalize();
  return report;
}

LintReport LintConfig(const ImageConfig& config,
                      const MetaResolver& resolver) {
  return RunRules(ExtractModel(config, resolver));
}

LintReport LintImage(const Image& image, const MetaResolver& resolver) {
  return RunRules(ExtractModel(image, resolver));
}

LintReport LintMetaText(const std::string& lib_name,
                        const std::string& text) {
  LintReport report;
  Result<LibraryMeta> meta = ParseLibraryMeta(lib_name, text);
  if (!meta.ok()) {
    Add(&report, kRuleParse, LintSeverity::kError, lib_name,
        "metadata does not parse: " + meta.status().ToString(),
        "fix the DSL syntax (see src/core/metadata.h)");
    report.Normalize();
    return report;
  }
  if (meta->behavior.calls_any && !meta->behavior.calls.empty()) {
    Add(&report, kRuleRedundantCallList, LintSeverity::kWarning, lib_name,
        "[Call] mixes '*' with a concrete call list; the wildcard "
        "subsumes the list",
        "drop '*' if the list is exhaustive, or drop the list");
  }
  const std::string first = meta->ToString();
  Result<LibraryMeta> reparsed = ParseLibraryMeta(lib_name, first);
  if (!reparsed.ok() || reparsed->ToString() != first) {
    Add(&report, kRuleParse, LintSeverity::kWarning, lib_name,
        "metadata does not round-trip through ToString()",
        "report this: the serializer and parser disagree");
  }
  report.Normalize();
  return report;
}

std::set<std::string, std::less<>> AllowedCallPairs(const LintModel& model) {
  std::set<std::string, std::less<>> pairs;
  for (const LibraryMeta& meta : model.metas) {
    if (meta.behavior.calls_any) {
      for (const auto& [target, comp] : model.compartment_of) {
        if (target != meta.name) {
          pairs.insert(meta.name + "->" + target);
        }
      }
      continue;
    }
    for (const std::string& call : meta.behavior.calls) {
      const size_t sep = call.find("::");
      if (sep == std::string::npos) {
        continue;
      }
      const std::string callee = call.substr(0, sep);
      if (callee != meta.name && model.compartment_of.count(callee) != 0) {
        pairs.insert(meta.name + "->" + callee);
      }
    }
  }
  return pairs;
}

std::string BoundaryMetricNamesJson(const LintModel& model) {
  const std::string_view backend = IsolationBackendName(model.backend);
  // Distinct cross-compartment call directions, with the library edges
  // that exercise each one.
  std::map<std::pair<int, int>, std::set<std::string>> boundaries;
  for (const LintCallEdge& edge : model.calls) {
    if (!edge.cross) {
      continue;
    }
    const auto from_it = model.compartment_of.find(edge.caller);
    const auto to_it = model.compartment_of.find(edge.callee);
    if (from_it == model.compartment_of.end() ||
        to_it == model.compartment_of.end()) {
      continue;
    }
    boundaries[{from_it->second, to_it->second}].insert(edge.caller + "->" +
                                                        edge.callee);
  }
  std::string out = "[";
  bool first_boundary = true;
  for (const auto& [pair, edges] : boundaries) {
    if (!first_boundary) {
      out += ',';
    }
    first_boundary = false;
    out += "{\"from\":\"" + obs::CompartmentLabel(pair.first) +
           "\",\"to\":\"" + obs::CompartmentLabel(pair.second) +
           "\",\"edges\":[";
    bool first_edge = true;
    for (const std::string& edge : edges) {
      if (!first_edge) {
        out += ',';
      }
      first_edge = false;
      out += '"' + JsonEscape(edge) + '"';
    }
    out += "],\"metrics\":[";
    bool first_metric = true;
    for (std::string_view family : obs::kGateFamilies) {
      if (!first_metric) {
        out += ',';
      }
      first_metric = false;
      out += '"' +
             obs::GateMetricName(family, backend, pair.first, pair.second) +
             '"';
    }
    out += "]}";
  }
  out += "]";
  return out;
}

}  // namespace flexos
