#include "hw/cost_model.h"

// CostModel is a plain aggregate; this translation unit exists so the target
// has a stable home if calibration helpers grow later.
