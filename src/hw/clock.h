// Virtual cycle clock. All modeled work charges cycles here; wall-clock time
// never enters the simulation, so results are deterministic and
// host-independent.
#ifndef FLEXOS_HW_CLOCK_H_
#define FLEXOS_HW_CLOCK_H_

#include <cstdint>

namespace flexos {

class Clock {
 public:
  // Defaults to the paper's testbed CPU, a Xeon Silver 4110 at 2.1 GHz.
  static constexpr uint64_t kDefaultFreqHz = 2'100'000'000ULL;

  explicit Clock(uint64_t freq_hz = kDefaultFreqHz)
      : freq_hz_(freq_hz),
        ns_per_cycle_int_(1'000'000'000ULL / freq_hz),
        ns_per_cycle_q64_(static_cast<uint64_t>(
            (static_cast<unsigned __int128>(1'000'000'000ULL % freq_hz)
             << 64) /
            freq_hz)) {}

  void Charge(uint64_t cycles) { cycles_ += cycles; }

  // Jumps virtual time forward to an absolute cycle count (idle skip).
  // No-op if `abs_cycles` is in the past.
  void AdvanceTo(uint64_t abs_cycles) {
    if (abs_cycles > cycles_) {
      cycles_ = abs_cycles;
    }
  }

  uint64_t cycles() const { return cycles_; }
  uint64_t freq_hz() const { return freq_hz_; }

  // Current virtual time in nanoseconds (rounded down).
  uint64_t NowNanos() const;

  // Converts a cycle count (typically a small delta) to nanoseconds,
  // rounded down — exactly floor(cycles * 1e9 / freq). Division-free: this
  // sits on the gate-dispatch record path, where two runtime 64-bit divides
  // per crossing cost more wall time than the rest of the dispatch. The Q64
  // reciprocal underestimates by less than one ns over the full 64-bit
  // range, so a single compare-and-bump restores the exact floor.
  uint64_t CyclesToNanos(uint64_t cycles) const {
    const uint64_t approx =
        cycles * ns_per_cycle_int_ +
        static_cast<uint64_t>(
            (static_cast<unsigned __int128>(cycles) * ns_per_cycle_q64_) >>
            64);
    const unsigned __int128 exact_num =
        static_cast<unsigned __int128>(cycles) * 1'000'000'000ULL;
    const unsigned __int128 next =
        static_cast<unsigned __int128>(approx + 1) * freq_hz_;
    return next <= exact_num ? approx + 1 : approx;
  }

  // Current virtual time in seconds.
  double NowSeconds() const {
    return static_cast<double>(cycles_) / static_cast<double>(freq_hz_);
  }

  // Converts a duration to cycles (rounded up so durations are never free).
  uint64_t NanosToCycles(uint64_t nanos) const;

  void Reset() { cycles_ = 0; }

 private:
  uint64_t freq_hz_;
  // floor(1e9 / freq) and the Q64 fixed-point fraction of the remainder:
  // together the exact ns-per-cycle ratio used by CyclesToNanos.
  uint64_t ns_per_cycle_int_;
  uint64_t ns_per_cycle_q64_;
  uint64_t cycles_ = 0;
};

}  // namespace flexos

#endif  // FLEXOS_HW_CLOCK_H_
