// Virtual cycle clock. All modeled work charges cycles here; wall-clock time
// never enters the simulation, so results are deterministic and
// host-independent.
#ifndef FLEXOS_HW_CLOCK_H_
#define FLEXOS_HW_CLOCK_H_

#include <cstdint>

namespace flexos {

class Clock {
 public:
  // Defaults to the paper's testbed CPU, a Xeon Silver 4110 at 2.1 GHz.
  static constexpr uint64_t kDefaultFreqHz = 2'100'000'000ULL;

  explicit Clock(uint64_t freq_hz = kDefaultFreqHz) : freq_hz_(freq_hz) {}

  void Charge(uint64_t cycles) { cycles_ += cycles; }

  // Jumps virtual time forward to an absolute cycle count (idle skip).
  // No-op if `abs_cycles` is in the past.
  void AdvanceTo(uint64_t abs_cycles) {
    if (abs_cycles > cycles_) {
      cycles_ = abs_cycles;
    }
  }

  uint64_t cycles() const { return cycles_; }
  uint64_t freq_hz() const { return freq_hz_; }

  // Current virtual time in nanoseconds (rounded down).
  uint64_t NowNanos() const;

  // Current virtual time in seconds.
  double NowSeconds() const {
    return static_cast<double>(cycles_) / static_cast<double>(freq_hz_);
  }

  // Converts a duration to cycles (rounded up so durations are never free).
  uint64_t NanosToCycles(uint64_t nanos) const;

  void Reset() { cycles_ = 0; }

 private:
  uint64_t freq_hz_;
  uint64_t cycles_ = 0;
};

}  // namespace flexos

#endif  // FLEXOS_HW_CLOCK_H_
