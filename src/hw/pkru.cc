#include "hw/pkru.h"

#include "support/strings.h"

namespace flexos {

std::string Pkru::ToString() const {
  std::string rw;
  std::string ro;
  for (Pkey key = 0; key < kNumPkeys; ++key) {
    if (CanWrite(key)) {
      if (!rw.empty()) {
        rw += ',';
      }
      rw += std::to_string(key);
    } else if (CanRead(key)) {
      if (!ro.empty()) {
        ro += ',';
      }
      ro += std::to_string(key);
    }
  }
  return StrFormat("pkru{rw:%s r:%s}", rw.empty() ? "-" : rw.c_str(),
                   ro.empty() ? "-" : ro.c_str());
}

}  // namespace flexos
