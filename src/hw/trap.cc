#include "hw/trap.h"

#include "support/log.h"
#include "support/strings.h"

namespace flexos {

std::string_view TrapKindName(TrapKind kind) {
  switch (kind) {
    case TrapKind::kPageFault:
      return "PAGE_FAULT";
    case TrapKind::kProtectionFault:
      return "PROTECTION_FAULT";
    case TrapKind::kAsanViolation:
      return "ASAN_VIOLATION";
    case TrapKind::kCfiViolation:
      return "CFI_VIOLATION";
    case TrapKind::kStackOverflow:
      return "STACK_OVERFLOW";
    case TrapKind::kContractViolation:
      return "CONTRACT_VIOLATION";
    case TrapKind::kUbsanViolation:
      return "UBSAN_VIOLATION";
    case TrapKind::kRpcTimeout:
      return "RPC_TIMEOUT";
    case TrapKind::kDataRace:
      return "DATA_RACE";
  }
  return "UNKNOWN_TRAP";
}

std::optional<TrapKind> TrapKindFromName(std::string_view name) {
  for (int k = 0; k < kNumTrapKinds; ++k) {
    const TrapKind kind = static_cast<TrapKind>(k);
    if (TrapKindName(kind) == name) {
      return kind;
    }
  }
  return std::nullopt;
}

namespace {

const char* AccessName(AccessKind access) {
  switch (access) {
    case AccessKind::kRead:
      return "read";
    case AccessKind::kWrite:
      return "write";
    case AccessKind::kExecute:
      return "execute";
  }
  return "?";
}

}  // namespace

std::string TrapInfo::ToString() const {
  return StrFormat("%s: %s at gaddr=0x%llx pkey=%u pkru=0x%08x%s%s",
                   std::string(TrapKindName(kind)).c_str(), AccessName(access),
                   static_cast<unsigned long long>(guest_addr), pkey, pkru,
                   detail.empty() ? "" : " -- ", detail.c_str());
}

void RaiseTrap(TrapInfo info) {
  FLEXOS_DEBUG("trap raised: %s", info.ToString().c_str());
  throw TrapException(std::move(info));
}

}  // namespace flexos
