// Simulated CPU traps. These are the *only* exceptions in FlexOS: they model
// asynchronous hardware faults (#PF/#GP, PKU violations) and the synchronous
// aborts software hardening inserts (ASAN, CFI, stack protector, contract
// checks). They are thrown by the checked access layer and caught at
// compartment or thread boundaries — the places a real fault would be
// delivered. Expected errors use Status/Result (support/status.h).
#ifndef FLEXOS_HW_TRAP_H_
#define FLEXOS_HW_TRAP_H_

#include <cstdint>
#include <optional>
#include <string>

namespace flexos {

enum class TrapKind : uint8_t {
  kPageFault,          // Access to an unmapped guest page.
  kProtectionFault,    // MPK/PKRU or write-protection violation.
  kAsanViolation,      // Redzone / use-after-free caught by ASAN-lite.
  kCfiViolation,       // Indirect-call target outside the allowed set.
  kStackOverflow,      // Guest stack guard page hit.
  kContractViolation,  // Verified-scheduler pre/post-condition failure.
  kUbsanViolation,     // Modeled undefined-behavior check failure.
  kRpcTimeout,         // VM-RPC crossing exceeded its deadline (fault/).
  kDataRace,           // flexrace validator: unsynchronized cross-vCPU pair.
};

// Number of TrapKind values; keep in sync with the enum (the taxonomy
// round-trip test walks [0, kNumTrapKinds)).
inline constexpr int kNumTrapKinds =
    static_cast<int>(TrapKind::kDataRace) + 1;

std::string_view TrapKindName(TrapKind kind);

// Inverse of TrapKindName; nullopt for unrecognized names.
std::optional<TrapKind> TrapKindFromName(std::string_view name);

enum class AccessKind : uint8_t { kRead, kWrite, kExecute };

struct TrapInfo {
  TrapKind kind;
  AccessKind access = AccessKind::kRead;
  uint64_t guest_addr = 0;  // Faulting guest address, if meaningful.
  uint8_t pkey = 0;         // Protection key of the page, if meaningful.
  uint32_t pkru = 0;        // PKRU at fault time, if meaningful.
  std::string detail;       // Free-form context for diagnostics.

  std::string ToString() const;
};

// Thrown to model a trap. Catch sites: gate dispatch, thread trampolines,
// and tests that assert fault behavior.
class TrapException {
 public:
  explicit TrapException(TrapInfo info) : info_(std::move(info)) {}
  const TrapInfo& info() const { return info_; }

 private:
  TrapInfo info_;
};

// Raises a trap (throws TrapException). Marked noreturn; never returns.
[[noreturn]] void RaiseTrap(TrapInfo info);

}  // namespace flexos

#endif  // FLEXOS_HW_TRAP_H_
