// The calibrated cycle-cost model. Every constant carries a source note; see
// DESIGN.md §9 for the calibration table. Absolute values are estimates —
// the reproduction targets are orderings, ratios, and crossover points.
#ifndef FLEXOS_HW_COST_MODEL_H_
#define FLEXOS_HW_COST_MODEL_H_

#include <cstdint>

namespace flexos {

struct CostModel {
  // --- Plain execution ---------------------------------------------------
  // Near call + argument spill for a same-compartment (direct) gate.
  uint64_t direct_call = 5;
  // Base cost of one checked guest memory access batch (TLB/issue overhead).
  uint64_t mem_access_base = 2;
  // Cycles per byte for bulk guest memory copies. Deliberately NOT a
  // vectorized-memcpy figure: the paper's prototype is Unikraft v0.4 with
  // newlib's byte-wise string routines, and Table 1's LibC numbers only
  // reproduce if copies carry real weight.
  double mem_copy_per_byte = 0.6;

  // --- Intel MPK (per ERIM, USENIX Security '19; HODOR, ATC '19) ---------
  // One WRPKRU instruction including serialization + the surrounding
  // entry-checks; ERIM measures 99-260 cycles per protection-domain switch.
  uint64_t wrpkru = 99;
  // Scrubbing caller-saved registers on a shared-stack domain crossing.
  uint64_t register_clear = 20;
  // Switching to the per-compartment stack (switched-stack gate), excluding
  // the per-byte argument copy.
  uint64_t stack_switch = 40;

  // --- VM/EPT isolation (typical KVM/Xen exit latencies) -----------------
  // One VM exit or entry.
  uint64_t vmexit = 1800;
  // Posting the inter-VM notification (event channel / posted interrupt).
  uint64_t vm_notify = 400;
  // Delivering a cross-vCPU IPI / remote wakeup: the sender's APIC write
  // plus the remote interrupt dispatch (measured IPI round trips run
  // 1-2k cycles on Skylake-class parts). Charged only when a vm-isolated
  // gate targets a compartment pinned to a *different* vCPU — never on a
  // single-vCPU machine, keeping the N=1 cost model bit-identical.
  uint64_t ipi = 1600;

  // --- Runtime backend transitions (flexadapt, DESIGN.md §16) ------------
  // One-time cost of re-placing a boundary's backend live. MPK transitions
  // re-program the pkey permissions of the target compartment's pages
  // (pkey_mprotect sweep + PKRU reinstall on every core); VM transitions
  // additionally set up or tear down the shared ring + event channel.
  uint64_t adapt_mpk_reprogram = 6000;
  uint64_t adapt_vm_setup = 50000;

  // --- Scheduling (paper §4 microbenchmark) -------------------------------
  // C scheduler context switch: 76.6 ns at 2.1 GHz ~= 161 cycles, of which
  // ~11 are charged as run-queue memory ops at the yield site.
  uint64_t context_switch = 150;
  // Extra cycles the contract-checked ("verified") scheduler spends per
  // switch: total 218.6 ns ~= 459 cycles.
  uint64_t verified_sched_extra = 298;

  // --- Software hardening ------------------------------------------------
  // Multiplier applied to memory-op costs of instrumented libraries.
  // KASAN-class instrumentation costs 4-10x on memory-op-dense code; 6x
  // lands Table 1's per-component ratios (see bench/abl_sh_sensitivity).
  double sh_mem_multiplier = 6.0;
  // Extra per-call instrumentation (function entry/exit checks, stack
  // protector, CFI target check).
  uint64_t sh_call_overhead = 14;
  // Extra malloc/free cost for redzone poisoning, shadow updates, and
  // quarantine management (ASAN's allocator is far heavier than a
  // free-list fast path).
  uint64_t sh_alloc_overhead = 1800;

  // --- Memory allocation (uninstrumented fast paths) ----------------------
  uint64_t malloc_cost = 90;
  uint64_t free_cost = 60;

  // --- Network processing (per-packet/per-byte costs inside the stack) ---
  // Per-packet protocol processing. Calibrated so the baseline iperf
  // throughput lands in the paper's ~3 Gb/s regime on the virtual 2.1 GHz
  // CPU (the prototype is an unoptimized Unikraft + virtio path).
  uint64_t pkt_rx_fixed = 4000;
  uint64_t pkt_tx_fixed = 2400;
  // Header-touch cost per payload byte (checksums are offloaded to the
  // NIC model, so this is small).
  double pkt_per_byte = 0.02;
  uint64_t syscall_ish = 80;  // Socket-layer entry bookkeeping.

  // Cycles for copying `bytes` bytes of guest memory (excluding the
  // per-access base).
  uint64_t CopyCycles(uint64_t bytes) const {
    return static_cast<uint64_t>(static_cast<double>(bytes) *
                                 mem_copy_per_byte) +
           mem_access_base;
  }
};

}  // namespace flexos

#endif  // FLEXOS_HW_COST_MODEL_H_
