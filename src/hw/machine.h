// The simulated machine: one virtual CPU with a cycle clock, a PKRU
// register, and the execution context the access layer consults on every
// guest memory operation. Address spaces (vmem/) and devices (net/) attach
// to a Machine.
#ifndef FLEXOS_HW_MACHINE_H_
#define FLEXOS_HW_MACHINE_H_

#include <cstdint>

#include "fault/injector.h"
#include "hw/clock.h"
#include "hw/cost_model.h"
#include "hw/pkru.h"
#include "obs/attrib.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace flexos {

// Per-"instruction-stream" execution state. Gates swap this on every
// compartment crossing; software hardening sets the instrumentation fields
// for the duration of hardened-library code.
struct ExecContext {
  Pkru pkru = Pkru::AllowAll();
  // Multiplier on guest memory-op costs (1.0 = uninstrumented; the SH value
  // comes from CostModel::sh_mem_multiplier).
  double mem_cost_multiplier = 1.0;
  // Whether ASAN-lite shadow checks are active for this stream.
  bool shadow_checks = false;
  // Compartment executing now; -1 before an image is entered.
  int compartment = -1;
};

struct MachineStats {
  uint64_t wrpkru_count = 0;
  uint64_t vmexit_count = 0;
  uint64_t gate_crossings = 0;
  uint64_t traps = 0;
};

class Machine {
 public:
  explicit Machine(uint64_t freq_hz = Clock::kDefaultFreqHz,
                   CostModel costs = CostModel{});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  Clock& clock() { return clock_; }
  const Clock& clock() const { return clock_; }
  const CostModel& costs() const { return costs_; }
  CostModel& mutable_costs() { return costs_; }

  ExecContext& context() { return context_; }
  const ExecContext& context() const { return context_; }

  // Models the WRPKRU instruction: charges its cost and installs the value.
  void Wrpkru(Pkru pkru);

  // Models a VM exit + re-entry pair plus the inter-VM notification; used by
  // the VM/EPT gate backend.
  void VmExitEnter();

  MachineStats& stats() { return stats_; }
  const MachineStats& stats() const { return stats_; }

  // Unified metrics (DESIGN.md §7). Components resolve their counters /
  // histograms here once at construction and record through pointers.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Event tracer; records in virtual (modeled) time. Disabled by default —
  // enable with tracer().SetEnabled(true) or compile out entirely with
  // -DFLEXOS_OBS_DISABLED.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

  // Cycle/request attributor (DESIGN.md §8); observes the clock, never
  // charges it. Disabled by default — flexstat --flame/--request and the
  // profiler tests enable it via attrib().SetEnabled(true, cycles).
  obs::Attributor& attrib() { return attrib_; }
  const obs::Attributor& attrib() const { return attrib_; }

  // Deterministic fault injector (DESIGN.md §11). Idle (no plan loaded)
  // unless a chaos harness arms it; probe sites across alloc/net/sched/core
  // consult it through this accessor.
  fault::FaultInjector& injector() { return injector_; }
  const fault::FaultInjector& injector() const { return injector_; }

  // Charges `cycles` of modeled computation. Compute charges are
  // instrumentation-insensitive: ASAN-class hardening taxes memory
  // operations (ChargeMemOp), not stall/branch-dominated fixed work.
  void ChargeCompute(uint64_t cycles);

  // Charges a guest memory operation covering `bytes` bytes.
  void ChargeMemOp(uint64_t bytes);

 private:
  Clock clock_;
  CostModel costs_;
  ExecContext context_;
  MachineStats stats_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  obs::Attributor attrib_;
  fault::FaultInjector injector_;
};

// RAII guard that installs an ExecContext and restores the previous one;
// used by gates and the SH layer.
class ScopedExecContext {
 public:
  ScopedExecContext(Machine& machine, const ExecContext& context)
      : machine_(machine), saved_(machine.context()) {
    machine_.context() = context;
  }
  ~ScopedExecContext() { machine_.context() = saved_; }

  ScopedExecContext(const ScopedExecContext&) = delete;
  ScopedExecContext& operator=(const ScopedExecContext&) = delete;

 private:
  Machine& machine_;
  ExecContext saved_;
};

}  // namespace flexos

#endif  // FLEXOS_HW_MACHINE_H_
