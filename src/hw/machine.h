// The simulated machine: N virtual CPUs (default 1), each with its own
// cycle clock, PKRU register, and the execution context the access layer
// consults on every guest memory operation. Address spaces (vmem/) and
// devices (net/) attach to a Machine. All charging APIs operate on the
// *current* vCPU; the scheduler selects it via SwitchVCpu.
#ifndef FLEXOS_HW_MACHINE_H_
#define FLEXOS_HW_MACHINE_H_

#include <cstdint>
#include <map>

#include "fault/injector.h"
#include "hw/clock.h"
#include "hw/cost_model.h"
#include "hw/pkru.h"
#include "obs/attrib.h"
#include "obs/metrics.h"
#include "obs/race.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/vcpu.h"

namespace flexos {

// Compile-time cap on simulated vCPUs (defined in obs/vcpu.h so the obs
// layer can size per-vCPU state without including hw headers).
inline constexpr int kMaxVCpus = obs::kMaxVCpus;

// Per-"instruction-stream" execution state. Gates swap this on every
// compartment crossing; software hardening sets the instrumentation fields
// for the duration of hardened-library code.
struct ExecContext {
  Pkru pkru = Pkru::AllowAll();
  // Multiplier on guest memory-op costs (1.0 = uninstrumented; the SH value
  // comes from CostModel::sh_mem_multiplier).
  double mem_cost_multiplier = 1.0;
  // Whether ASAN-lite shadow checks are active for this stream.
  bool shadow_checks = false;
  // Compartment executing now; -1 before an image is entered.
  int compartment = -1;
};

struct MachineStats {
  uint64_t wrpkru_count = 0;
  uint64_t vmexit_count = 0;
  uint64_t gate_crossings = 0;
  uint64_t traps = 0;
  // Cross-vCPU IPIs delivered by vm-isolated gates (always 0 at N=1).
  uint64_t ipi_count = 0;
};

class Machine {
 public:
  explicit Machine(uint64_t freq_hz = Clock::kDefaultFreqHz,
                   CostModel costs = CostModel{});
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  // Clock and execution context of the *current* vCPU.
  Clock& clock() { return vcpus_[current_vcpu_].clock; }
  const Clock& clock() const { return vcpus_[current_vcpu_].clock; }
  ExecContext& context() { return vcpus_[current_vcpu_].context; }
  const ExecContext& context() const { return vcpus_[current_vcpu_].context; }

  const CostModel& costs() const { return costs_; }
  CostModel& mutable_costs() { return costs_; }

  // --- Multi-vCPU control (DESIGN.md §12) --------------------------------
  // Sets the number of simulated vCPUs; clamps to [1, kMaxVCpus]. Call
  // before building an image or spawning threads — per-vCPU boundary
  // counters and affinity are resolved against this count.
  void SetVCpuCount(int n);
  int vcpu_count() const { return vcpu_count_; }
  int current_vcpu() const { return current_vcpu_; }

  // Switches the current vCPU. The scheduler calls this when it picks the
  // next runnable thread; attribution is handed over to the new vCPU's
  // lane and the tracer stamps subsequent events with the new id. No-op
  // when `v` is already current — at N=1 this never does anything.
  void SwitchVCpu(int v);

  // Clock of a specific vCPU (for merge rules and reporting).
  Clock& clock_of(int v) { return vcpus_[v].clock; }
  const Clock& clock_of(int v) const { return vcpus_[v].clock; }

  // Advances every vCPU's clock to at least `cycles` (max-preserving, like
  // Clock::AdvanceTo). Used by the testbed idle handler when the whole
  // machine sleeps until the next device event.
  void AdvanceAllClocksTo(uint64_t cycles);

  // The machine-wide "now": the furthest-ahead vCPU clock. This is the
  // wall-clock equivalent for throughput math at N>1 (and exactly
  // clock().cycles() at N=1).
  uint64_t max_cycles() const;

  // Compartment-to-vCPU pinning, consulted by the vm gate backend to decide
  // whether a crossing leaves the current vCPU (and must pay ChargeIpi).
  // -1 (the default) means unpinned: no IPI is ever modeled.
  void SetCompartmentAffinity(int compartment, int vcpu);
  int CompartmentAffinityOf(int compartment) const;

  // Charges the cross-vCPU notification cost on the current vCPU's clock.
  // When `target_vcpu` >= 0 the IPI is also a happens-before edge from the
  // current vCPU into the target lane (flexrace, DESIGN.md §13).
  void ChargeIpi(int target_vcpu = -1);

  // --- flexrace runtime validator (DESIGN.md §13) ------------------------
  // Debug-mode happens-before race detection over per-vCPU lanes, in the
  // mold of Image::EnableDispatchValidation: off by default, observes the
  // model without charging any clock, and turns an unsynchronized
  // cross-vCPU shared-region pair into a deterministic kDataRace trap.
  void SetRaceDetection(bool on);
  bool race_detection() const { return race_.enabled(); }
  obs::RaceDetector& race() { return race_; }
  const obs::RaceDetector& race() const { return race_; }

  // Happens-before edges, forwarded to the detector and (when tracing is
  // on) recorded as cat=race instants so `flexlint --races` can replay the
  // trace offline to the same verdict. All no-ops while detection is off.
  uint64_t RaceRelease();             // Snapshot the current lane.
  void RaceAcquire(uint64_t handle);  // Join a snapshot into the current lane.
  void RaceJoin(int from, int to);    // Synchronous edge (IPI).

  // Probes one shared-region (key 0) access on the current vCPU. Raises a
  // TrapKind::kDataRace trap when the access is unordered with a prior
  // access from another lane; the trap detail carries both access stamps
  // and the compartments involved.
  void ProbeSharedAccess(uint64_t gaddr, uint64_t size, bool is_write);

  // Flushes attribution on every vCPU lane up to its own clock; call before
  // reading attrib() totals on a multi-vCPU machine.
  void SyncAttribution();

  // Models the WRPKRU instruction: charges its cost and installs the value.
  void Wrpkru(Pkru pkru);

  // Models a VM exit + re-entry pair plus the inter-VM notification; used by
  // the VM/EPT gate backend.
  void VmExitEnter();

  MachineStats& stats() { return stats_; }
  const MachineStats& stats() const { return stats_; }

  // Unified metrics (DESIGN.md §7). Components resolve their counters /
  // histograms here once at construction and record through pointers.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Event tracer; records in virtual (modeled) time. Disabled by default —
  // enable with tracer().SetEnabled(true) or compile out entirely with
  // -DFLEXOS_OBS_DISABLED.
  obs::Tracer& tracer() { return tracer_; }
  const obs::Tracer& tracer() const { return tracer_; }

  // Cycle/request attributor (DESIGN.md §8); observes the clock, never
  // charges it. Disabled by default — flexstat --flame/--request and the
  // profiler tests enable it via attrib().SetEnabled(true, cycles).
  obs::Attributor& attrib() { return attrib_; }
  const obs::Attributor& attrib() const { return attrib_; }

  // Deterministic fault injector (DESIGN.md §11). Idle (no plan loaded)
  // unless a chaos harness arms it; probe sites across alloc/net/sched/core
  // consult it through this accessor.
  fault::FaultInjector& injector() { return injector_; }
  const fault::FaultInjector& injector() const { return injector_; }

  // flexwatch windowed time series (DESIGN.md §14); disabled by default —
  // the testbed enables it when the config declares window_cycles/slo
  // directives or flexstat passes --watch. Observes, never charges.
  obs::TimeSeries& timeseries() { return timeseries_; }
  const obs::TimeSeries& timeseries() const { return timeseries_; }

  // Closes any windows whose boundary the machine-wide clock (max_cycles)
  // has passed. Called from the scheduler loop and idle jumps; bench loops
  // that bypass the scheduler call it directly. One branch when disabled.
  void PollTimeSeries() { timeseries_.MaybeCapture(max_cycles()); }

  // Charges `cycles` of modeled computation. Compute charges are
  // instrumentation-insensitive: ASAN-class hardening taxes memory
  // operations (ChargeMemOp), not stall/branch-dominated fixed work.
  void ChargeCompute(uint64_t cycles);

  // Charges a guest memory operation covering `bytes` bytes.
  void ChargeMemOp(uint64_t bytes);

 private:
  struct VCpu {
    Clock clock;
    ExecContext context;
  };

  // Resolves sched.vcpu<i>.idle_cycles counters for the active vCPU count.
  void ResolveIdleCounters();

  VCpu vcpus_[kMaxVCpus];
  int vcpu_count_ = 1;
  int current_vcpu_ = 0;
  CostModel costs_;
  MachineStats stats_;
  std::map<int, int> compartment_affinity_;
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  obs::Attributor attrib_;
  obs::RaceDetector race_;
  fault::FaultInjector injector_;
  obs::TimeSeries timeseries_;
  // Cycles each vCPU jumps over in AdvanceAllClocksTo (no runnable work).
  obs::Counter* vcpu_idle_cycles_[kMaxVCpus] = {};
};

// RAII guard that installs an ExecContext and restores the previous one;
// used by gates and the SH layer.
class ScopedExecContext {
 public:
  ScopedExecContext(Machine& machine, const ExecContext& context)
      : machine_(machine), saved_(machine.context()) {
    machine_.context() = context;
  }
  ~ScopedExecContext() { machine_.context() = saved_; }

  ScopedExecContext(const ScopedExecContext&) = delete;
  ScopedExecContext& operator=(const ScopedExecContext&) = delete;

 private:
  Machine& machine_;
  ExecContext saved_;
};

}  // namespace flexos

#endif  // FLEXOS_HW_MACHINE_H_
