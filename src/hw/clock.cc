#include "hw/clock.h"

namespace flexos {

uint64_t Clock::NowNanos() const {
  // cycles * 1e9 / freq, avoiding overflow for large cycle counts by
  // splitting into whole seconds and remainder.
  const uint64_t whole_seconds = cycles_ / freq_hz_;
  const uint64_t remainder_cycles = cycles_ % freq_hz_;
  return whole_seconds * 1'000'000'000ULL +
         remainder_cycles * 1'000'000'000ULL / freq_hz_;
}

uint64_t Clock::NanosToCycles(uint64_t nanos) const {
  const uint64_t whole_seconds = nanos / 1'000'000'000ULL;
  const uint64_t remainder_nanos = nanos % 1'000'000'000ULL;
  return whole_seconds * freq_hz_ +
         (remainder_nanos * freq_hz_ + 999'999'999ULL) / 1'000'000'000ULL;
}

}  // namespace flexos
