// Model of the x86 PKRU register: 16 protection keys, 2 bits each
// (AD = access disable, WD = write disable), mirroring Intel SDM Vol. 3A
// §4.6.2. Key 0 conventionally tags memory accessible to everyone.
#ifndef FLEXOS_HW_PKRU_H_
#define FLEXOS_HW_PKRU_H_

#include <cstdint>
#include <string>

namespace flexos {

using Pkey = uint8_t;
inline constexpr Pkey kNumPkeys = 16;

class Pkru {
 public:
  // All keys readable and writable (PKRU = 0).
  constexpr Pkru() : value_(0) {}
  constexpr explicit Pkru(uint32_t raw) : value_(raw) {}

  static constexpr Pkru AllowAll() { return Pkru(0); }

  // Every key fully disabled (both AD and WD set for all 16 keys).
  static constexpr Pkru DenyAll() { return Pkru(0xffffffffu); }

  uint32_t raw() const { return value_; }

  bool CanRead(Pkey key) const { return (value_ & AdBit(key)) == 0; }

  bool CanWrite(Pkey key) const {
    return (value_ & (AdBit(key) | WdBit(key))) == 0;
  }

  // Grants or revokes access for one key and returns the updated value
  // (value semantics; PKRU is small).
  Pkru WithAccess(Pkey key, bool allow_read, bool allow_write) const {
    uint32_t v = value_ | AdBit(key) | WdBit(key);
    if (allow_read) {
      v &= ~AdBit(key);
    }
    if (allow_write) {
      v &= ~(AdBit(key) | WdBit(key));
    }
    return Pkru(v);
  }

  friend bool operator==(Pkru a, Pkru b) { return a.value_ == b.value_; }

  // e.g. "pkru{rw:0,2 r:1}" — keys absent from the list are inaccessible.
  std::string ToString() const;

 private:
  static constexpr uint32_t AdBit(Pkey key) { return 1u << (2 * key); }
  static constexpr uint32_t WdBit(Pkey key) { return 1u << (2 * key + 1); }

  uint32_t value_;
};

}  // namespace flexos

#endif  // FLEXOS_HW_PKRU_H_
