#include "hw/machine.h"

namespace flexos {

Machine::Machine(uint64_t freq_hz, CostModel costs)
    : clock_(freq_hz), costs_(costs) {
  // Trace timestamps are virtual nanoseconds from this machine's clock, so
  // traces are deterministic. Non-capturing lambda: the obs layer cannot
  // include hw/ headers (it sits below support/).
  tracer_.SetTimeSource(
      [](void* ctx) {
        return static_cast<const Clock*>(ctx)->NowNanos();
      },
      &clock_);
  // Newest machine wins the global slot used by the log->trace bridge;
  // multi-machine tests only trace the machine under test.
  obs::Tracer::SetActive(&tracer_);
  injector_.BindObs(&metrics_, &tracer_);
  injector_.SetCycleSource(
      [](void* ctx) { return static_cast<const Clock*>(ctx)->cycles(); },
      &clock_);
}

Machine::~Machine() = default;

void Machine::Wrpkru(Pkru pkru) {
  clock_.Charge(costs_.wrpkru);
  ++stats_.wrpkru_count;
  context_.pkru = pkru;
}

void Machine::VmExitEnter() {
  clock_.Charge(2 * costs_.vmexit + costs_.vm_notify);
  ++stats_.vmexit_count;
}

void Machine::ChargeCompute(uint64_t cycles) { clock_.Charge(cycles); }

void Machine::ChargeMemOp(uint64_t bytes) {
  const uint64_t raw = costs_.CopyCycles(bytes);
  clock_.Charge(static_cast<uint64_t>(static_cast<double>(raw) *
                                      context_.mem_cost_multiplier));
}

}  // namespace flexos
