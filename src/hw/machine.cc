#include "hw/machine.h"

namespace flexos {

void Machine::Wrpkru(Pkru pkru) {
  clock_.Charge(costs_.wrpkru);
  ++stats_.wrpkru_count;
  context_.pkru = pkru;
}

void Machine::VmExitEnter() {
  clock_.Charge(2 * costs_.vmexit + costs_.vm_notify);
  ++stats_.vmexit_count;
}

void Machine::ChargeCompute(uint64_t cycles) { clock_.Charge(cycles); }

void Machine::ChargeMemOp(uint64_t bytes) {
  const uint64_t raw = costs_.CopyCycles(bytes);
  clock_.Charge(static_cast<uint64_t>(static_cast<double>(raw) *
                                      context_.mem_cost_multiplier));
}

}  // namespace flexos
