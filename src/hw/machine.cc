#include "hw/machine.h"

#include "hw/trap.h"
#include "obs/names.h"

namespace flexos {

Machine::Machine(uint64_t freq_hz, CostModel costs) : costs_(costs) {
  for (VCpu& v : vcpus_) v.clock = Clock(freq_hz);
  // Trace timestamps are virtual nanoseconds from the *current* vCPU's
  // clock, so traces stay deterministic across vCPU switches. Non-capturing
  // lambda: the obs layer cannot include hw/ headers (it sits below
  // support/).
  tracer_.SetTimeSource(
      [](void* ctx) {
        return static_cast<const Machine*>(ctx)->clock().NowNanos();
      },
      this);
  // Newest machine wins the global slot used by the log->trace bridge;
  // multi-machine tests only trace the machine under test.
  obs::Tracer::SetActive(&tracer_);
  injector_.BindObs(&metrics_, &tracer_);
  injector_.SetCycleSource(
      [](void* ctx) {
        return static_cast<const Machine*>(ctx)->clock().cycles();
      },
      this);
  timeseries_.BindObs(&metrics_, &tracer_);
  ResolveIdleCounters();
}

void Machine::ResolveIdleCounters() {
  for (int v = 0; v < vcpu_count_; ++v) {
    vcpu_idle_cycles_[v] =
        &metrics_.GetCounter(obs::SchedVCpuMetricName(v, obs::kVCpuIdleCycles));
  }
}

Machine::~Machine() = default;

void Machine::SetVCpuCount(int n) {
  if (n < 1) n = 1;
  if (n > kMaxVCpus) n = kMaxVCpus;
  vcpu_count_ = n;
  ResolveIdleCounters();
}

void Machine::SwitchVCpu(int v) {
  if (v == current_vcpu_ || v < 0 || v >= vcpu_count_) return;
  const uint64_t old_now = vcpus_[current_vcpu_].clock.cycles();
  current_vcpu_ = v;
  tracer_.SetCurrentVCpu(v);
  attrib_.SwitchLane(v, old_now, vcpus_[v].clock.cycles());
}

void Machine::AdvanceAllClocksTo(uint64_t cycles) {
  for (int v = 0; v < vcpu_count_; ++v) {
    // Cycles jumped over are idle time for that vCPU: it had no runnable
    // work until the machine-wide wakeup target.
    const uint64_t before = vcpus_[v].clock.cycles();
    if (cycles > before && vcpu_idle_cycles_[v] != nullptr) {
      vcpu_idle_cycles_[v]->Add(cycles - before);
    }
    vcpus_[v].clock.AdvanceTo(cycles);
  }
  PollTimeSeries();
  if (race_.enabled()) {
    // The whole machine slept until the next device event: every vCPU was
    // out of runnable work, so this is a modeled quiescent point — a
    // barrier join across all lanes (DESIGN.md §13).
    race_.JoinAll();
    tracer_.RecordInstant(obs::TraceCat::kRace, "hb_barrier", /*tid=*/0);
  }
}

uint64_t Machine::max_cycles() const {
  uint64_t max = 0;
  for (int v = 0; v < vcpu_count_; ++v) {
    if (vcpus_[v].clock.cycles() > max) max = vcpus_[v].clock.cycles();
  }
  return max;
}

void Machine::SetCompartmentAffinity(int compartment, int vcpu) {
  compartment_affinity_[compartment] = vcpu;
}

int Machine::CompartmentAffinityOf(int compartment) const {
  auto it = compartment_affinity_.find(compartment);
  return it == compartment_affinity_.end() ? -1 : it->second;
}

void Machine::ChargeIpi(int target_vcpu) {
  clock().Charge(costs_.ipi);
  ++stats_.ipi_count;
  // flexpath cross-vCPU edge: a0 = target vCPU + 1 (0 = broadcast/none),
  // a1 = the issuing request id (RecordInstant has no req parameter).
  tracer_.RecordInstant(obs::TraceCat::kSched, "sched.ipi", /*tid=*/0,
                        /*a0=*/static_cast<uint64_t>(target_vcpu + 1),
                        /*a1=*/attrib_.current_request());
  if (target_vcpu >= 0) {
    RaceJoin(current_vcpu_, target_vcpu);
  }
}

void Machine::SetRaceDetection(bool on) {
  if (on) {
    race_.Reset(vcpu_count_);
  }
  race_.SetEnabled(on);
}

uint64_t Machine::RaceRelease() {
  if (!race_.enabled()) return 0;
  const uint64_t handle = race_.Release(current_vcpu_);
  tracer_.RecordInstant(obs::TraceCat::kRace, "hb_release", /*tid=*/0,
                        /*a0=*/handle);
  return handle;
}

void Machine::RaceAcquire(uint64_t handle) {
  if (!race_.enabled() || handle == 0) return;
  race_.Acquire(current_vcpu_, handle);
  tracer_.RecordInstant(obs::TraceCat::kRace, "hb_acquire", /*tid=*/0,
                        /*a0=*/handle);
}

void Machine::RaceJoin(int from, int to) {
  if (!race_.enabled() || from == to) return;
  race_.Join(from, to);
  tracer_.RecordInstant(obs::TraceCat::kRace, "hb_join", /*tid=*/0,
                        /*a0=*/static_cast<uint64_t>(from),
                        /*a1=*/static_cast<uint64_t>(to));
}

void Machine::ProbeSharedAccess(uint64_t gaddr, uint64_t size,
                                bool is_write) {
  if (!race_.enabled()) return;
  const int compartment = context().compartment;
  tracer_.RecordInstant(obs::TraceCat::kRace,
                        is_write ? "shared_write" : "shared_read",
                        /*tid=*/compartment + 1, /*a0=*/gaddr, /*a1=*/size);
  const std::optional<obs::RaceReport> race = race_.OnAccess(
      current_vcpu_, compartment, gaddr, size, is_write, clock().NowNanos());
  if (!race.has_value()) return;
  tracer_.RecordInstant(obs::TraceCat::kRace, "race", /*tid=*/compartment + 1,
                        /*a0=*/gaddr, /*a1=*/size);
  RaiseTrap(TrapInfo{.kind = TrapKind::kDataRace,
                     .access = is_write ? AccessKind::kWrite : AccessKind::kRead,
                     .guest_addr = gaddr,
                     .pkey = 0,
                     .pkru = context().pkru.raw(),
                     .detail = race->ToString()});
}

void Machine::SyncAttribution() {
  for (int v = 0; v < vcpu_count_; ++v) {
    attrib_.SyncLane(v, vcpus_[v].clock.cycles());
  }
}

void Machine::Wrpkru(Pkru pkru) {
  clock().Charge(costs_.wrpkru);
  ++stats_.wrpkru_count;
  context().pkru = pkru;
}

void Machine::VmExitEnter() {
  clock().Charge(2 * costs_.vmexit + costs_.vm_notify);
  ++stats_.vmexit_count;
}

void Machine::ChargeCompute(uint64_t cycles) { clock().Charge(cycles); }

void Machine::ChargeMemOp(uint64_t bytes) {
  const uint64_t raw = costs_.CopyCycles(bytes);
  clock().Charge(static_cast<uint64_t>(static_cast<double>(raw) *
                                       context().mem_cost_multiplier));
}

}  // namespace flexos
