#include "hw/machine.h"

namespace flexos {

Machine::Machine(uint64_t freq_hz, CostModel costs) : costs_(costs) {
  for (VCpu& v : vcpus_) v.clock = Clock(freq_hz);
  // Trace timestamps are virtual nanoseconds from the *current* vCPU's
  // clock, so traces stay deterministic across vCPU switches. Non-capturing
  // lambda: the obs layer cannot include hw/ headers (it sits below
  // support/).
  tracer_.SetTimeSource(
      [](void* ctx) {
        return static_cast<const Machine*>(ctx)->clock().NowNanos();
      },
      this);
  // Newest machine wins the global slot used by the log->trace bridge;
  // multi-machine tests only trace the machine under test.
  obs::Tracer::SetActive(&tracer_);
  injector_.BindObs(&metrics_, &tracer_);
  injector_.SetCycleSource(
      [](void* ctx) {
        return static_cast<const Machine*>(ctx)->clock().cycles();
      },
      this);
}

Machine::~Machine() = default;

void Machine::SetVCpuCount(int n) {
  if (n < 1) n = 1;
  if (n > kMaxVCpus) n = kMaxVCpus;
  vcpu_count_ = n;
}

void Machine::SwitchVCpu(int v) {
  if (v == current_vcpu_ || v < 0 || v >= vcpu_count_) return;
  const uint64_t old_now = vcpus_[current_vcpu_].clock.cycles();
  current_vcpu_ = v;
  tracer_.SetCurrentVCpu(v);
  attrib_.SwitchLane(v, old_now, vcpus_[v].clock.cycles());
}

void Machine::AdvanceAllClocksTo(uint64_t cycles) {
  for (int v = 0; v < vcpu_count_; ++v) vcpus_[v].clock.AdvanceTo(cycles);
}

uint64_t Machine::max_cycles() const {
  uint64_t max = 0;
  for (int v = 0; v < vcpu_count_; ++v) {
    if (vcpus_[v].clock.cycles() > max) max = vcpus_[v].clock.cycles();
  }
  return max;
}

void Machine::SetCompartmentAffinity(int compartment, int vcpu) {
  compartment_affinity_[compartment] = vcpu;
}

int Machine::CompartmentAffinityOf(int compartment) const {
  auto it = compartment_affinity_.find(compartment);
  return it == compartment_affinity_.end() ? -1 : it->second;
}

void Machine::ChargeIpi() {
  clock().Charge(costs_.ipi);
  ++stats_.ipi_count;
}

void Machine::SyncAttribution() {
  for (int v = 0; v < vcpu_count_; ++v) {
    attrib_.SyncLane(v, vcpus_[v].clock.cycles());
  }
}

void Machine::Wrpkru(Pkru pkru) {
  clock().Charge(costs_.wrpkru);
  ++stats_.wrpkru_count;
  context().pkru = pkru;
}

void Machine::VmExitEnter() {
  clock().Charge(2 * costs_.vmexit + costs_.vm_notify);
  ++stats_.vmexit_count;
}

void Machine::ChargeCompute(uint64_t cycles) { clock().Charge(cycles); }

void Machine::ChargeMemOp(uint64_t bytes) {
  const uint64_t raw = costs_.CopyCycles(bytes);
  clock().Charge(static_cast<uint64_t>(static_cast<double>(raw) *
                                       context().mem_cost_multiplier));
}

}  // namespace flexos
