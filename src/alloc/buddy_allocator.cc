#include "alloc/buddy_allocator.h"

#include "alloc/fault_hooks.h"

namespace flexos {
namespace {

constexpr bool IsPow2(uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

int Log2Floor(uint64_t value) { return 63 - __builtin_clzll(value); }

}  // namespace

BuddyAllocator::BuddyAllocator(AddressSpace& space, Gaddr base, uint64_t size)
    : space_(space), base_(base), size_(size) {
  FLEXOS_CHECK(IsPow2(size) && size >= kMinBlock,
               "buddy arena must be a power of two >= %llu",
               static_cast<unsigned long long>(kMinBlock));
  max_order_ = Log2Floor(size / kMinBlock);
  free_lists_.resize(static_cast<size_t>(max_order_) + 1);
  free_lists_[static_cast<size_t>(max_order_)].insert(0);
}

int BuddyAllocator::OrderFor(uint64_t size) const {
  uint64_t block = kMinBlock;
  int order = 0;
  while (block < size) {
    block <<= 1;
    ++order;
  }
  return order;
}

Result<Gaddr> BuddyAllocator::Allocate(uint64_t size, uint64_t align) {
  if (!IsPow2(align)) {
    return Status(ErrorCode::kInvalidArgument, "align not a power of two");
  }
  if (size == 0) {
    size = 1;
  }
  // Buddy blocks are naturally aligned to their size, so alignment demands
  // above the block size bump the request.
  if (align > size) {
    size = align;
  }
  if (size > size_) {
    return Status(ErrorCode::kOutOfMemory, "request exceeds arena");
  }
  space_.machine().clock().Charge(space_.machine().costs().malloc_cost);
  FLEXOS_RETURN_IF_ERROR(
      MaybeInjectAllocFault(space_.machine(), fault::FaultSite::kAlloc));

  const int want = OrderFor(size);
  if (want > max_order_) {
    return Status(ErrorCode::kOutOfMemory, "request exceeds arena");
  }
  // Find the smallest order >= want with a free block.
  int order = want;
  while (order <= max_order_ &&
         free_lists_[static_cast<size_t>(order)].empty()) {
    ++order;
  }
  if (order > max_order_) {
    return Status(ErrorCode::kOutOfMemory, "buddy arena exhausted");
  }
  uint64_t offset = *free_lists_[static_cast<size_t>(order)].begin();
  free_lists_[static_cast<size_t>(order)].erase(offset);
  // Split down to the wanted order, freeing the upper halves.
  while (order > want) {
    --order;
    const uint64_t half = kMinBlock << order;
    free_lists_[static_cast<size_t>(order)].insert(offset + half);
  }
  live_[offset] = want;
  stats_.OnAlloc(kMinBlock << want);
  return base_ + offset;
}

Status BuddyAllocator::Free(Gaddr addr) {
  if (addr < base_ || addr - base_ >= size_) {
    return Status(ErrorCode::kInvalidArgument, "not a buddy pointer");
  }
  uint64_t offset = addr - base_;
  auto it = live_.find(offset);
  if (it == live_.end()) {
    return Status(ErrorCode::kInvalidArgument, "double free or bad pointer");
  }
  space_.machine().clock().Charge(space_.machine().costs().free_cost);
  FLEXOS_RETURN_IF_ERROR(
      MaybeInjectAllocFault(space_.machine(), fault::FaultSite::kFree));
  int order = it->second;
  live_.erase(it);
  stats_.OnFree(kMinBlock << order);

  // Coalesce with the buddy while it is free.
  while (order < max_order_) {
    const uint64_t block = kMinBlock << order;
    const uint64_t buddy = offset ^ block;
    auto& list = free_lists_[static_cast<size_t>(order)];
    auto buddy_it = list.find(buddy);
    if (buddy_it == list.end()) {
      break;
    }
    list.erase(buddy_it);
    offset = offset < buddy ? offset : buddy;
    ++order;
  }
  free_lists_[static_cast<size_t>(order)].insert(offset);
  return Status::Ok();
}

Result<uint64_t> BuddyAllocator::UsableSize(Gaddr addr) const {
  if (addr < base_ || addr - base_ >= size_) {
    return Status(ErrorCode::kNotFound, "not a buddy pointer");
  }
  auto it = live_.find(addr - base_);
  if (it == live_.end()) {
    return Status(ErrorCode::kNotFound, "not live");
  }
  return kMinBlock << it->second;
}

Status BuddyAllocator::Reset() {
  for (auto& list : free_lists_) {
    list.clear();
  }
  free_lists_[static_cast<size_t>(max_order_)].insert(0);
  live_.clear();
  stats_.bytes_in_use = 0;
  return Status::Ok();
}

uint64_t BuddyAllocator::FreeBytes() const {
  uint64_t total = 0;
  for (int order = 0; order <= max_order_; ++order) {
    total += free_lists_[static_cast<size_t>(order)].size() *
             (kMinBlock << order);
  }
  return total;
}

bool BuddyAllocator::CheckInvariants() const {
  // 1. Free bytes + live bytes == arena size.
  uint64_t live_bytes = 0;
  for (const auto& [offset, order] : live_) {
    if (offset + (kMinBlock << order) > size_) {
      return false;
    }
    live_bytes += kMinBlock << order;
  }
  if (FreeBytes() + live_bytes != size_) {
    return false;
  }
  // 2. No buddy pair is simultaneously free (would mean missed coalescing).
  for (int order = 0; order < max_order_; ++order) {
    const auto& list = free_lists_[static_cast<size_t>(order)];
    for (uint64_t offset : list) {
      const uint64_t buddy = offset ^ (kMinBlock << order);
      if (list.count(buddy) != 0) {
        return false;
      }
    }
  }
  // 3. Free blocks are naturally aligned.
  for (int order = 0; order <= max_order_; ++order) {
    for (uint64_t offset : free_lists_[static_cast<size_t>(order)]) {
      if (offset % (kMinBlock << order) != 0) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace flexos
