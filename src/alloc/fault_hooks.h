// Allocator-side fault-injection entry points (fault/). Heaps call
// MaybeInjectAllocFault at the top of Allocate/Free; the armed-bitmask
// check keeps the disabled path to a single load so benchmark runs with an
// empty plan stay bit-identical.
#ifndef FLEXOS_ALLOC_FAULT_HOOKS_H_
#define FLEXOS_ALLOC_FAULT_HOOKS_H_

#include "fault/fault.h"
#include "hw/machine.h"
#include "hw/trap.h"

namespace flexos {

// Consults the machine's injector for `site` (kAlloc or kFree). Absorb-class
// kinds (kAllocFail) surface as a non-OK status the caller returns verbatim;
// trap-class kinds raise in place and do not return.
inline Status MaybeInjectAllocFault(Machine& machine, fault::FaultSite site) {
  if (!machine.injector().armed(site)) {
    return Status::Ok();
  }
  const std::optional<fault::FaultDecision> decision =
      machine.injector().Check(site, machine.context().compartment);
  if (!decision.has_value()) {
    return Status::Ok();
  }
  switch (decision->kind) {
    case fault::FaultKind::kAllocFail:
      return Status(ErrorCode::kOutOfMemory, "injected allocation failure");
    case fault::FaultKind::kHeapCorruption:
      ++machine.stats().traps;
      RaiseTrap(TrapInfo{.kind = TrapKind::kAsanViolation,
                         .access = AccessKind::kWrite,
                         .pkru = machine.context().pkru.raw(),
                         .detail = "injected heap corruption"});
    case fault::FaultKind::kPageFault:
      ++machine.stats().traps;
      RaiseTrap(TrapInfo{.kind = TrapKind::kPageFault,
                         .access = AccessKind::kWrite,
                         .pkru = machine.context().pkru.raw(),
                         .detail = "injected page fault"});
    default:
      break;  // Other kinds have no meaning at an allocator site.
  }
  return Status::Ok();
}

}  // namespace flexos

#endif  // FLEXOS_ALLOC_FAULT_HOOKS_H_
