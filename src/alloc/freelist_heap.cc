#include "alloc/freelist_heap.h"

#include "alloc/fault_hooks.h"
#include "obs/names.h"

namespace flexos {
namespace {

constexpr uint64_t kMinChunk = 32;

constexpr uint64_t AlignUp(uint64_t value, uint64_t align) {
  return (value + align - 1) & ~(align - 1);
}

constexpr bool IsPow2(uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

}  // namespace

FreelistHeap::FreelistHeap(AddressSpace& space, Gaddr base, uint64_t size)
    : space_(space), base_(base), size_(size) {
  FLEXOS_CHECK(size >= kMinChunk, "heap too small");
  chunks_[0] = Chunk{.size = size, .free = true, .user_offset = 0};
  obs::MetricsRegistry& metrics = space.machine().metrics();
  alloc_counter_ = &metrics.GetCounter(obs::kMetricAllocCount);
  free_counter_ = &metrics.GetCounter(obs::kMetricFreeCount);
  alloc_bytes_counter_ = &metrics.GetCounter(obs::kMetricAllocBytes);
  live_bytes_gauge_ = &metrics.GetGauge(obs::kMetricAllocLive);
}

Result<Gaddr> FreelistHeap::Allocate(uint64_t size, uint64_t align) {
  if (!IsPow2(align)) {
    return Status(ErrorCode::kInvalidArgument, "align not a power of two");
  }
  if (size == 0) {
    size = 1;
  }
  space_.machine().clock().Charge(space_.machine().costs().malloc_cost);
  FLEXOS_RETURN_IF_ERROR(
      MaybeInjectAllocFault(space_.machine(), fault::FaultSite::kAlloc));
  const uint64_t need = AlignUp(size, 16);

  for (auto it = chunks_.begin(); it != chunks_.end(); ++it) {
    Chunk& chunk = it->second;
    if (!chunk.free) {
      continue;
    }
    const uint64_t chunk_off = it->first;
    const uint64_t user_off =
        AlignUp(base_ + chunk_off, align) - base_;  // Aligned user offset.
    const uint64_t pad = user_off - chunk_off;
    if (pad + need > chunk.size) {
      continue;
    }
    // Split the tail if the remainder is worth keeping.
    const uint64_t used = pad + need;
    const uint64_t remainder = chunk.size - used;
    uint64_t live_size = chunk.size;
    if (remainder >= kMinChunk) {
      chunks_[chunk_off + used] =
          Chunk{.size = remainder, .free = true, .user_offset = 0};
      live_size = used;
    }
    chunk.size = live_size;
    chunk.free = false;
    chunk.user_offset = pad;
    user_to_chunk_[user_off] = chunk_off;
    stats_.OnAlloc(live_size);
    alloc_counter_->Add();
    alloc_bytes_counter_->Add(live_size);
    live_bytes_gauge_->Add(static_cast<int64_t>(live_size));
    Machine& machine = space_.machine();
    machine.tracer().RecordInstant(obs::TraceCat::kAlloc, "alloc.alloc",
                                   machine.context().compartment + 1,
                                   live_size);
    return base_ + user_off;
  }
  return Status(ErrorCode::kOutOfMemory, "freelist heap exhausted");
}

Status FreelistHeap::Free(Gaddr addr) {
  if (addr < base_ || addr - base_ >= size_) {
    return Status(ErrorCode::kInvalidArgument, "not a heap pointer");
  }
  const uint64_t user_off = addr - base_;
  auto user_it = user_to_chunk_.find(user_off);
  if (user_it == user_to_chunk_.end()) {
    return Status(ErrorCode::kInvalidArgument, "double free or bad pointer");
  }
  space_.machine().clock().Charge(space_.machine().costs().free_cost);
  FLEXOS_RETURN_IF_ERROR(
      MaybeInjectAllocFault(space_.machine(), fault::FaultSite::kFree));
  const uint64_t chunk_off = user_it->second;
  user_to_chunk_.erase(user_it);

  auto it = chunks_.find(chunk_off);
  FLEXOS_CHECK(it != chunks_.end() && !it->second.free,
               "heap metadata corrupt");
  it->second.free = true;
  it->second.user_offset = 0;
  stats_.OnFree(it->second.size);
  free_counter_->Add();
  live_bytes_gauge_->Add(-static_cast<int64_t>(it->second.size));
  Machine& machine = space_.machine();
  machine.tracer().RecordInstant(obs::TraceCat::kAlloc, "alloc.free",
                                 machine.context().compartment + 1,
                                 it->second.size);

  // Coalesce with the next chunk.
  auto next = std::next(it);
  if (next != chunks_.end() && next->second.free) {
    it->second.size += next->second.size;
    chunks_.erase(next);
  }
  // Coalesce with the previous chunk.
  if (it != chunks_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.free &&
        prev->first + prev->second.size == it->first) {
      prev->second.size += it->second.size;
      chunks_.erase(it);
    }
  }
  return Status::Ok();
}

Result<uint64_t> FreelistHeap::UsableSize(Gaddr addr) const {
  if (addr < base_ || addr - base_ >= size_) {
    return Status(ErrorCode::kNotFound, "not a heap pointer");
  }
  auto user_it = user_to_chunk_.find(addr - base_);
  if (user_it == user_to_chunk_.end()) {
    return Status(ErrorCode::kNotFound, "not live");
  }
  const auto it = chunks_.find(user_it->second);
  return it->second.size - it->second.user_offset;
}

Status FreelistHeap::Reset() {
  live_bytes_gauge_->Add(-static_cast<int64_t>(stats_.bytes_in_use));
  chunks_.clear();
  chunks_[0] = Chunk{.size = size_, .free = true, .user_offset = 0};
  user_to_chunk_.clear();
  stats_.bytes_in_use = 0;
  return Status::Ok();
}

uint64_t FreelistHeap::FreeBytes() const {
  uint64_t total = 0;
  for (const auto& [offset, chunk] : chunks_) {
    if (chunk.free) {
      total += chunk.size;
    }
  }
  return total;
}

bool FreelistHeap::CheckInvariants() const {
  uint64_t expected = 0;
  bool prev_free = false;
  for (const auto& [offset, chunk] : chunks_) {
    if (offset != expected) {
      return false;  // Gap or overlap in the tiling.
    }
    if (chunk.size == 0) {
      return false;
    }
    if (chunk.free && prev_free) {
      return false;  // Missed coalescing.
    }
    prev_free = chunk.free;
    expected = offset + chunk.size;
  }
  if (expected != size_) {
    return false;
  }
  // Every live user pointer maps to a live chunk containing it.
  for (const auto& [user_off, chunk_off] : user_to_chunk_) {
    auto it = chunks_.find(chunk_off);
    if (it == chunks_.end() || it->second.free) {
      return false;
    }
    if (user_off != chunk_off + it->second.user_offset) {
      return false;
    }
  }
  return true;
}

}  // namespace flexos
