#include "alloc/region_allocator.h"

namespace flexos {
namespace {

constexpr Gaddr AlignUp(Gaddr value, uint64_t align) {
  return (value + align - 1) & ~(align - 1);
}

constexpr bool IsPow2(uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

}  // namespace

RegionAllocator::RegionAllocator(AddressSpace& space, Gaddr base,
                                 uint64_t size)
    : space_(space), base_(base), size_(size), cursor_(base) {}

Result<Gaddr> RegionAllocator::Allocate(uint64_t size, uint64_t align) {
  if (!IsPow2(align)) {
    return Status(ErrorCode::kInvalidArgument, "align not a power of two");
  }
  if (size == 0) {
    size = 1;
  }
  space_.machine().clock().Charge(space_.machine().costs().malloc_cost / 4);
  const Gaddr start = AlignUp(cursor_, align);
  if (start + size > base_ + size_ || start < cursor_) {
    return Status(ErrorCode::kOutOfMemory, "region exhausted");
  }
  cursor_ = start + size;
  stats_.OnAlloc(size);
  return start;
}

Status RegionAllocator::Free(Gaddr addr) {
  if (addr < base_ || addr >= cursor_) {
    return Status(ErrorCode::kInvalidArgument, "not a region pointer");
  }
  return Status::Ok();
}

Result<uint64_t> RegionAllocator::UsableSize(Gaddr addr) const {
  if (addr < base_ || addr >= cursor_) {
    return Status(ErrorCode::kNotFound, "not a region pointer");
  }
  // The region does not track per-object sizes; report the remainder of the
  // bump area, which is the safe upper bound for the last allocation only.
  return cursor_ - addr;
}

Status RegionAllocator::Reset() {
  cursor_ = base_;
  stats_.bytes_in_use = 0;
  return Status::Ok();
}

}  // namespace flexos
