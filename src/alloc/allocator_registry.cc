#include "alloc/allocator_registry.h"

namespace flexos {

Allocator& AllocatorRegistry::Adopt(std::unique_ptr<Allocator> allocator) {
  FLEXOS_CHECK(allocator != nullptr, "Adopt(nullptr)");
  owned_.push_back(std::move(allocator));
  return *owned_.back();
}

Allocator& AllocatorRegistry::For(int compartment) const {
  auto it = per_compartment_.find(compartment);
  if (it != per_compartment_.end()) {
    return *it->second;
  }
  FLEXOS_CHECK(global_ != nullptr,
               "no allocator for compartment %d and no global allocator",
               compartment);
  return *global_;
}

}  // namespace flexos
