// The allocator interface all FlexOS heaps implement. Allocators hand out
// guest addresses within one address space; their metadata lives host-side
// (the simulator plays the role of the allocator's internal structures).
#ifndef FLEXOS_ALLOC_ALLOCATOR_H_
#define FLEXOS_ALLOC_ALLOCATOR_H_

#include <cstdint>

#include "support/status.h"
#include "vmem/address_space.h"

namespace flexos {

struct AllocStats {
  uint64_t allocations = 0;
  uint64_t frees = 0;
  uint64_t bytes_in_use = 0;
  uint64_t peak_bytes = 0;

  void OnAlloc(uint64_t size) {
    ++allocations;
    bytes_in_use += size;
    if (bytes_in_use > peak_bytes) {
      peak_bytes = bytes_in_use;
    }
  }
  void OnFree(uint64_t size) {
    ++frees;
    bytes_in_use -= size;
  }
};

class Allocator {
 public:
  virtual ~Allocator() = default;

  // Returns a guest address of at least `size` bytes aligned to `align`
  // (a power of two). size == 0 is treated as 1.
  virtual Result<Gaddr> Allocate(uint64_t size, uint64_t align = 16) = 0;

  // Frees a pointer previously returned by Allocate. Freeing an address this
  // allocator does not own returns kInvalidArgument.
  virtual Status Free(Gaddr addr) = 0;

  // Size usable at `addr` (as allocated). kNotFound if not live.
  virtual Result<uint64_t> UsableSize(Gaddr addr) const = 0;

  // Restores the heap to its boot state: every live allocation is gone,
  // bytes_in_use accounting returns to zero (cumulative counters keep
  // counting). Compartment restart (fault/supervisor.h) calls this instead
  // of freeing object-by-object — a crashed compartment cannot be trusted
  // to enumerate its own pointers. Allocators that cannot be rebuilt
  // wholesale return kUnimplemented.
  virtual Status Reset() {
    return Status(ErrorCode::kUnimplemented,
                  "allocator does not support wholesale reset");
  }

  virtual AddressSpace& space() = 0;
  virtual const AllocStats& stats() const = 0;
};

}  // namespace flexos

#endif  // FLEXOS_ALLOC_ALLOCATOR_H_
