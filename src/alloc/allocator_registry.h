// AllocatorRegistry: FlexOS's per-compartment allocator policy. The paper
// (§3, "SH Support") requires the build system to instantiate a separate
// memory allocator per compartment when only some compartments are
// hardened, so that uninstrumented compartments do not pay for instrumented
// malloc. The registry maps compartment id -> allocator, with an optional
// global fallback allocator modeling the single-global-allocator
// configuration (Fig. 4's "SH global alloc" bar).
#ifndef FLEXOS_ALLOC_ALLOCATOR_REGISTRY_H_
#define FLEXOS_ALLOC_ALLOCATOR_REGISTRY_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "alloc/allocator.h"

namespace flexos {

class AllocatorRegistry {
 public:
  AllocatorRegistry() = default;

  // Wrappers (HardenedHeap) are adopted after their backing heap and may
  // touch it during destruction (quarantine drain), so adopted allocators
  // must be destroyed in reverse adoption order.
  ~AllocatorRegistry() {
    while (!owned_.empty()) {
      owned_.pop_back();
    }
  }

  AllocatorRegistry(const AllocatorRegistry&) = delete;
  AllocatorRegistry& operator=(const AllocatorRegistry&) = delete;

  // Takes ownership and returns a handle for wiring.
  Allocator& Adopt(std::unique_ptr<Allocator> allocator);

  // Sets the fallback used by compartments with no dedicated allocator.
  void SetGlobal(Allocator& allocator) { global_ = &allocator; }

  // Dedicates an allocator to a compartment.
  void SetForCompartment(int compartment, Allocator& allocator) {
    per_compartment_[compartment] = &allocator;
  }

  // The allocator compartment `compartment` must use. Panics if neither a
  // dedicated nor a global allocator is configured (a mis-built image).
  Allocator& For(int compartment) const;

  // True if `compartment` has its own allocator (vs. the shared global).
  bool HasDedicated(int compartment) const {
    return per_compartment_.count(compartment) != 0;
  }

 private:
  std::vector<std::unique_ptr<Allocator>> owned_;
  std::unordered_map<int, Allocator*> per_compartment_;
  Allocator* global_ = nullptr;
};

}  // namespace flexos

#endif  // FLEXOS_ALLOC_ALLOCATOR_REGISTRY_H_
